// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (§6), plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark regenerates its table's data on every
// iteration; run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/constprop"
	"repro/internal/deptest"
	"repro/internal/heapconn"
	"repro/internal/interp"
	"repro/internal/pta"
	"repro/internal/report"
	"repro/internal/simple"
)

func loadSuite(b *testing.B) []*simple.Program {
	b.Helper()
	progs := make([]*simple.Program, 0, len(bench.Suite))
	for _, p := range bench.Suite {
		prog, err := bench.Load(p.Name)
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, prog)
	}
	return progs
}

func analyzeAll(b *testing.B, progs []*simple.Program, opts pta.Options) []*report.BenchStats {
	b.Helper()
	out := make([]*report.BenchStats, 0, len(progs))
	for i, prog := range progs {
		res, err := pta.Analyze(prog, opts)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, report.Compute(bench.Suite[i].Name, res))
	}
	return out
}

// BenchmarkTable2 regenerates the benchmark characteristics (frontend +
// simplifier + abstract stack sizing).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		progs := loadSuite(b)
		stats := analyzeAll(b, progs, pta.Options{})
		report.WriteTable2(io.Discard, stats)
	}
}

// BenchmarkTable3 regenerates the indirect-reference resolution statistics.
func BenchmarkTable3(b *testing.B) {
	progs := loadSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := analyzeAll(b, progs, pta.Options{})
		report.WriteTable3(io.Discard, stats)
	}
}

// BenchmarkTable4 regenerates the points-to pair categorization.
func BenchmarkTable4(b *testing.B) {
	progs := loadSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := analyzeAll(b, progs, pta.Options{})
		report.WriteTable4(io.Discard, stats)
	}
}

// BenchmarkTable5 regenerates the per-statement pair totals.
func BenchmarkTable5(b *testing.B) {
	progs := loadSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := analyzeAll(b, progs, pta.Options{})
		report.WriteTable5(io.Discard, stats)
	}
}

// BenchmarkTable6 regenerates the invocation graph statistics.
func BenchmarkTable6(b *testing.B) {
	progs := loadSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := analyzeAll(b, progs, pta.Options{})
		report.WriteTable6(io.Discard, stats)
	}
}

// BenchmarkLivc regenerates the function-pointer strategy experiment
// (invocation graph sizes: precise vs address-taken vs all-functions).
func BenchmarkLivc(b *testing.B) {
	prog, err := bench.Load("livc")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.CompareFnPtrStrategies(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the invocation graph construction for the
// three calling-structure shapes of Figure 2 (plain, recursive, mutual).
func BenchmarkFigure2(b *testing.B) {
	progs := []string{"csuite", "xref", "stanford"}
	loaded := make([]*simple.Program, len(progs))
	for i, n := range progs {
		p, err := bench.Load(n)
		if err != nil {
			b.Fatal(err)
		}
		loaded[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range loaded {
			res, err := pta.Analyze(p, pta.Options{})
			if err != nil {
				b.Fatal(err)
			}
			res.Graph.WriteDot(io.Discard)
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationMemoization measures the cost of disabling IN/OUT
// memoization on invocation graph nodes.
func BenchmarkAblationMemoization(b *testing.B) {
	progs := loadSuite(b)
	b.Run("memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeAll(b, progs, pta.Options{})
		}
	})
	b.Run("nomemo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeAll(b, progs, pta.Options{NoMemo: true})
		}
	})
}

// BenchmarkWorkers measures the parallel evaluator across pool sizes: the
// suite analyzed serially, with two workers, and with GOMAXPROCS workers.
// Results are bit-identical across pool sizes (see the determinism tests);
// only wall time may differ.
func BenchmarkWorkers(b *testing.B) {
	progs := loadSuite(b)
	for _, w := range []int{1, 2, 0} {
		name := fmt.Sprintf("workers-%d", w)
		if w == 0 {
			name = "workers-gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				analyzeAll(b, progs, pta.Options{Workers: w})
			}
		})
	}
}

// BenchmarkAblationDefinite measures the cost of carrying definite
// relationships (the precision effect is reported by ptabench -ablation).
func BenchmarkAblationDefinite(b *testing.B) {
	progs := loadSuite(b)
	b.Run("with-definite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeAll(b, progs, pta.Options{})
		}
	})
	b.Run("no-definite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeAll(b, progs, pta.Options{NoDefinite: true})
		}
	})
}

// BenchmarkAblationArrayAbstraction compares the two-location array
// abstraction against a single location per array.
func BenchmarkAblationArrayAbstraction(b *testing.B) {
	progs := loadSuite(b)
	b.Run("head-tail", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeAll(b, progs, pta.Options{})
		}
	})
	b.Run("single-loc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeAll(b, progs, pta.Options{SingleArrayLoc: true})
		}
	})
}

// BenchmarkAblationContext compares context-sensitive analysis against the
// merged-context (context-insensitive) variant.
func BenchmarkAblationContext(b *testing.B) {
	progs := loadSuite(b)
	b.Run("context-sensitive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeAll(b, progs, pta.Options{})
		}
	})
	b.Run("context-insensitive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeAll(b, progs, pta.Options{ContextInsensitive: true})
		}
	})
}

// BenchmarkContextSharing measures the paper's §6 future-work optimization
// (summary-cache subtree sharing) on livc under the pathological
// all-functions strategy, where identical contexts abound.
func BenchmarkContextSharing(b *testing.B) {
	prog, err := bench.Load("livc")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("allfuncs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pta.Analyze(prog, pta.Options{FnPtr: pta.AllFuncs}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("allfuncs-shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pta.Analyze(prog, pta.Options{FnPtr: pta.AllFuncs, ShareContexts: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAndersen measures the flow-insensitive baseline.
func BenchmarkAndersen(b *testing.B) {
	progs := loadSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			baseline.Andersen(p)
		}
	}
}

// BenchmarkFrontend isolates parsing+simplification.
func BenchmarkFrontend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loadSuite(b)
	}
}

// BenchmarkConstProp measures the constant-propagation client analysis
// built on the points-to results (§6.1's framework application).
func BenchmarkConstProp(b *testing.B) {
	progs := loadSuite(b)
	results := make([]*pta.Result, len(progs))
	for i, p := range progs {
		r, err := pta.Analyze(p, pta.Options{})
		if err != nil {
			b.Fatal(err)
		}
		results[i] = r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range results {
			constprop.Run(r)
		}
	}
}

// BenchmarkHeapConnection measures the companion connection analysis for
// heap-directed pointers (the paper's conclusions, reference [16]).
func BenchmarkHeapConnection(b *testing.B) {
	progs := loadSuite(b)
	results := make([]*pta.Result, len(progs))
	for i, p := range progs {
		r, err := pta.Analyze(p, pta.Options{})
		if err != nil {
			b.Fatal(err)
		}
		results[i] = r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range results {
			heapconn.Run(r)
		}
	}
}

// BenchmarkDependenceTesting measures the array dependence client (§6.1).
func BenchmarkDependenceTesting(b *testing.B) {
	progs := loadSuite(b)
	results := make([]*pta.Result, len(progs))
	for i, p := range progs {
		r, err := pta.Analyze(p, pta.Options{})
		if err != nil {
			b.Fatal(err)
		}
		results[i] = r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range results {
			deptest.Run(r)
		}
	}
}

// BenchmarkInterpreter measures concrete execution of the whole suite (the
// soundness-oracle substrate).
func BenchmarkInterpreter(b *testing.B) {
	progs := loadSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			ip := interp.New(p)
			if _, err := ip.Run(); err != nil {
				if _, isExit := interp.ExitCode(err); !isExit {
					b.Fatal(err)
				}
			}
		}
	}
}
