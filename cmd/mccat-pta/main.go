// mccat-pta is the analysis driver: it parses a C file (or a named builtin
// benchmark), runs the context-sensitive points-to analysis, and prints the
// requested views — points-to sets, the simplified program, the invocation
// graph, pointer replacements or alias pairs.
//
// Usage:
//
//	mccat-pta [flags] file.c
//	mccat-pta [flags] -bench hash
//
// Flags:
//
//	-pts       print the points-to set at the exit of main (default)
//	-simple    print the SIMPLE intermediate representation
//	-dot       print the invocation graph in Graphviz DOT form
//	-replace   print indirect references replaceable via definite info
//	-alias     print alias pairs implied at main's exit (depth 2)
//	-stats     print invocation graph and analysis statistics (steps,
//	           memoization hit rate, hash-consing, peak set size)
//	-workers N worker pool size (0 = GOMAXPROCS, 1 = serial; results are
//	           bit-identical for every worker count)
//	-check     run the memory-safety checker (NULL/uninit deref, UAF, dangling)
//	-race      run the lockset-based data-race detector over pthread threads
//	-taint     run the context-sensitive taint analysis (sources -> sinks)
//	-exit-code exit 1 when -check/-race/-taint report any error-level diagnostic
//	-modref    print per-function MOD/REF accesses with source positions
//	-fnptr S   function pointer strategy: precise|addr-taken|all
//	-ci        context-insensitive ablation
//	-nodef     disable definite relationships
//	-demand    demand-driven, liveness-pruned mode: the fixpoint keeps
//	           facts only for live-and-demanded pointers; the demand is
//	           derived from the enabled clients (-check/-race/-taint) and
//	           the -query flags, and the reported facts are bit-identical
//	           to the exhaustive run's
//	-query Q   answer the points-to query "file:line[:col]:var" after the
//	           run (repeatable; in -demand mode queries also seed the
//	           demand)
//
// Observability flags:
//
//	-metrics        print the full metrics report (engine counters, memo and
//	                intern hit rates, set-cardinality distribution, per-function
//	                cost table)
//	-metrics-out F  write the metrics snapshot to F as JSON
//	-trace F        record a structured execution trace and write it to F as
//	                Chrome trace_event JSON (open in ui.perfetto.dev)
//	-trace-jsonl F  write the trace to F as a JSON-lines stream instead
//	-trace-buf N    per-shard trace ring capacity in events (drop-oldest)
//	-cpuprofile F   write a CPU profile of the run to F
//	-memprofile F   write a heap profile at exit to F
//	-debug-addr A   serve net/http/pprof AND a live Prometheus /metrics
//	                endpoint on A (e.g. localhost:6060) — an in-flight
//	                analysis can be scraped mid-run
//	-flight F       write the flight record (last spans, progress samples)
//	                to F after the run; on a panic, step-budget blowout or
//	                stall the record is dumped to stderr automatically
//	-no-flight      disable the always-on flight recorder
//	-watchdog D     arm the stall watchdog: after D without step progress,
//	                dump goroutine stacks plus the flight record to stderr
//	-watchdog-kill  make a detected stall abort the analysis
//	-max-steps N    basic-statement evaluation budget (0 = engine default)
//	-log-json       write stderr diagnostics as JSON log lines
//	-log-level L    stderr log level: debug|info|warn|error
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strings"

	"repro/internal/alias"
	"repro/internal/bench"
	"repro/internal/check"
	"repro/internal/constprop"
	"repro/internal/deptest"
	"repro/internal/heapconn"
	"repro/internal/modref"
	"repro/internal/obsv"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/race"
	"repro/internal/report"
	"repro/pointsto"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fatalErr unwinds run() to its top-level recover with exit code 1.
type fatalErr struct{ err error }

func fatal(err error) {
	panic(fatalErr{err})
}

// run is the driver body, separated from main so tests can exercise the CLI
// end to end with captured output and exit codes.
func run(argv []string, stdout, stderr io.Writer) (code int) {
	// logger is set right after flag parsing; the recover falls back to a
	// plain print for failures before that point.
	var logger *slog.Logger
	defer func() {
		if r := recover(); r != nil {
			fe, ok := r.(fatalErr)
			if !ok {
				panic(r)
			}
			if logger != nil {
				logger.Error("fatal", "err", fe.err)
			} else {
				fmt.Fprintln(stderr, "mccat-pta:", fe.err)
			}
			code = 1
		}
	}()

	fs := flag.NewFlagSet("mccat-pta", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "", "analyze the named builtin benchmark instead of a file")
		doPts     = fs.Bool("pts", false, "print the points-to set at main's exit")
		doSimple  = fs.Bool("simple", false, "print the SIMPLE IR")
		doDot     = fs.Bool("dot", false, "print the invocation graph as DOT")
		doRepl    = fs.Bool("replace", false, "print pointer replacement opportunities")
		doAlias   = fs.Bool("alias", false, "print implied alias pairs")
		doStats   = fs.Bool("stats", false, "print invocation graph statistics")
		doConst   = fs.Bool("const", false, "run constant propagation over the points-to results")
		doConn    = fs.Bool("conn", false, "run the heap connection analysis")
		doCheck   = fs.Bool("check", false, "run the memory-safety checker")
		doRace    = fs.Bool("race", false, "run the data-race detector")
		doTaint   = fs.Bool("taint", false, "run the context-sensitive taint analysis")
		exitCode  = fs.Bool("exit-code", false, "exit 1 when any checker reports an error-level diagnostic")
		doModRef  = fs.Bool("modref", false, "print per-function MOD/REF accesses with positions")
		doDep     = fs.Bool("dep", false, "run array dependence testing over the loops")
		fnptr     = fs.String("fnptr", "precise", "function pointer strategy: precise|addr-taken|all")
		ci        = fs.Bool("ci", false, "context-insensitive ablation")
		nodef     = fs.Bool("nodef", false, "disable definite relationships")
		workers   = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		demand    = fs.Bool("demand", false, "demand-driven, liveness-pruned analysis mode")

		doMetrics  = fs.Bool("metrics", false, "print the full metrics report")
		metricsOut = fs.String("metrics-out", "", "write the metrics snapshot to this file as JSON")
		traceOut   = fs.String("trace", "", "write a Chrome trace_event JSON execution trace to this file")
		traceJSONL = fs.String("trace-jsonl", "", "write a JSON-lines execution trace to this file")
		traceBuf   = fs.Int("trace-buf", 0, "per-shard trace ring capacity in events (0 = default)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile at exit to this file")
		debugAddr  = fs.String("debug-addr", "", "serve net/http/pprof and a live /metrics endpoint on this address")
		flightOut  = fs.String("flight", "", "write the flight record to this file after the run")
		noFlight   = fs.Bool("no-flight", false, "disable the always-on flight recorder")
		watchdog   = fs.Duration("watchdog", 0, "stall watchdog window (0 disables)")
		wdKill     = fs.Bool("watchdog-kill", false, "abort the analysis when the watchdog detects a stall")
		maxSteps   = fs.Int("max-steps", 0, "basic-statement evaluation budget (0 = engine default)")
		logJSON    = fs.Bool("log-json", false, "write stderr diagnostics as JSON log lines")
		logLevel   = fs.String("log-level", "info", "stderr log level: debug|info|warn|error")
	)
	var queryFlags multiFlag
	fs.Var(&queryFlags, "query", "answer the points-to query \"file:line[:col]:var\" (repeatable)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	lg, err := obsv.NewLogger(stderr, obsv.LogOptions{JSON: *logJSON, Level: *logLevel})
	if err != nil {
		fmt.Fprintln(stderr, "mccat-pta:", err)
		return 2
	}
	logger = lg

	var name, src string
	switch {
	case *benchName != "":
		s, err := bench.Source(*benchName)
		if err != nil {
			fatal(err)
		}
		name, src = *benchName+".c", s
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		name, src = fs.Arg(0), string(data)
	default:
		fmt.Fprintln(stderr, "usage: mccat-pta [flags] file.c | -bench name")
		fs.PrintDefaults()
		return 2
	}

	prof, err := obsv.StartProfiles(*cpuprofile, *memprofile, *debugAddr)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil && code == 0 {
			logger.Error("profile shutdown", "err", err)
			code = 1
		}
	}()

	// The live registry exists before the analysis starts so a -debug-addr
	// scraper sees counters advance mid-run rather than a 503 until the end.
	liveMetrics := obsv.NewMetrics()
	if *debugAddr != "" {
		obsv.ServeMetrics(liveMetrics.Snapshot)
	}
	var flight *obsv.FlightRecorder
	if !*noFlight {
		flight = obsv.NewFlightRecorder(0, 0)
	}

	queries := make([]pointsto.Query, len(queryFlags))
	for i, q := range queryFlags {
		pq, err := pointsto.ParseQuery(q)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		queries[i] = pq
	}
	var demandClients []string
	if *demand {
		for _, c := range []struct {
			on   bool
			name string
		}{{*doCheck, "check"}, {*doRace, "race"}, {*doTaint, "taint"}} {
			if c.on {
				demandClients = append(demandClients, c.name)
			}
		}
	}

	cfg := &pointsto.Config{
		FnPtrStrategy:      *fnptr,
		ContextInsensitive: *ci,
		NoDefinite:         *nodef,
		Workers:            *workers,
		Demand:             *demand,
		Queries:            queries,
		DemandClients:      demandClients,
		Trace:              *traceOut != "" || *traceJSONL != "",
		TraceBuffer:        *traceBuf,
		MaxSteps:           *maxSteps,
		Metrics:            liveMetrics,
		Flight:             flight,
		FlightDump:         stderr,
		StallWindow:        *watchdog,
		StallKill:          *wdKill,
	}
	a, err := pointsto.AnalyzeSource(name, src, cfg)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		writeFileWith(*traceOut, a.WriteChromeTrace)
	}
	if *traceJSONL != "" {
		writeFileWith(*traceJSONL, a.WriteTraceJSONL)
	}
	if *flightOut != "" {
		if flight == nil {
			fatal(fmt.Errorf("-flight needs the flight recorder (drop -no-flight)"))
		}
		writeFileWith(*flightOut, func(w io.Writer) error {
			return flight.Dump(w, "end of run")
		})
	}
	if *metricsOut != "" {
		writeFileWith(*metricsOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(a.Metrics())
		})
	}

	any := false
	hadErrors := false
	if *doSimple {
		a.WriteSimple(stdout)
		any = true
	}
	if *doDot {
		a.WriteInvocationGraph(stdout)
		any = true
	}
	if *doStats {
		st := a.InvocationGraphStats()
		fmt.Fprintf(stdout, "ig nodes %d, call sites %d, functions %d, recursive %d, approximate %d, threads %d\n",
			st.Nodes, st.CallSites, st.Functions, st.Recursive, st.Approximate, st.Threads)
		fmt.Fprintf(stdout, "avg nodes/call-site %.2f, avg nodes/function %.2f\n",
			st.AvgPerCallSite(), st.AvgPerFunction())
		m := a.Metrics()
		fmt.Fprintf(stdout, "workers %d, steps %d, peak set %d\n", a.Result.Workers, m.Steps, m.PeakSet)
		fmt.Fprintf(stdout, "memo: %d hits / %d misses (%.1f%% hit rate)\n",
			m.MemoHits, m.MemoMisses, 100*m.MemoHitRate)
		fmt.Fprintf(stdout, "interning: %d distinct sets, %.1f%% hit rate\n",
			m.InternDistinct, 100*m.InternHitRate)
		fmt.Fprintf(stdout, "set cardinality: p50 %d, p90 %d, max %d\n",
			m.Cardinality.P50, m.Cardinality.P90, m.Cardinality.Max)
		fmt.Fprintf(stdout, "sched: %d tasks, %d steals, %d parks\n",
			m.SchedTasks, m.SchedSteals, m.SchedParks)
		fmt.Fprintf(stdout, "shards: intern %d (%d contended), loc %d (%d contended)\n",
			m.InternShards, m.InternContended, m.LocShards, m.LocContended)
		if m.TraceDropped > 0 {
			fmt.Fprintf(stdout, "trace: %d events dropped by ring overflow (raise -trace-buf)\n", m.TraceDropped)
		}
		any = true
	}
	if *doMetrics {
		report.WriteMetrics(stdout, a.Metrics())
		any = true
	}
	if *doRepl {
		for _, r := range a.Replacements() {
			fmt.Fprintln(stdout, r)
		}
		any = true
	}
	if *doAlias {
		fmt.Fprintln(stdout, alias.Format(a.AliasPairs(2)))
		any = true
	}
	if *doConst {
		cp := constprop.RunWithMod(a.Result, modref.Compute(a.Result))
		fmt.Fprintf(stdout, "constant statements: %d\n", len(cp.Constants))
		for _, f := range cp.Constants {
			fmt.Fprintln(stdout, " ", f)
		}
		any = true
	}
	if *doDep {
		dp := deptest.Run(a.Result)
		fmt.Fprintln(stdout, dp.Summary())
		for _, l := range dp.SortedLoops() {
			if len(l.Pairs) == 0 {
				continue
			}
			disj, sub, dep, unk := l.Counts()
			fmt.Fprintf(stdout, "  %s %s (trip %d, admissible %v): disjoint %d, indep-subscript %d, dependent %d, unknown %d\n",
				l.Fn.Name(), l.Loop.Pos, l.Trip, l.Admissible, disj, sub, dep, unk)
		}
		any = true
	}
	if *doConn {
		hc := heapconn.Run(a.Result)
		names := make([]string, 0, len(hc.Funcs))
		for n := range hc.Funcs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fr := hc.Funcs[n]
			if len(fr.HeapPtrs) == 0 {
				continue
			}
			fmt.Fprintf(stdout, "%s: %d heap pointers, %d connected pairs (naive %d), %d provably disjoint\n",
				n, len(fr.HeapPtrs), fr.Exit.Len(), fr.NaivePairs, fr.DisjointPairs())
		}
		any = true
	}
	if *doCheck {
		diags, err := a.Check()
		if err != nil {
			fatal(err)
		}
		report.WriteDiags(stdout, diags)
		report.WriteDiagSummary(stdout, diags)
		for _, d := range diags {
			if d.Sev == check.Error {
				hadErrors = true
			}
		}
		any = true
	}
	if *doRace {
		diags, err := a.Races()
		if err != nil {
			fatal(err)
		}
		report.WriteRaceDiags(stdout, diags)
		report.WriteRaceDiagSummary(stdout, diags)
		for _, d := range diags {
			if d.Sev == race.Error {
				hadErrors = true
			}
		}
		any = true
	}
	if *doTaint {
		diags, err := a.Taint()
		if err != nil {
			fatal(err)
		}
		report.WriteTaintDiags(stdout, diags)
		report.WriteTaintDiagSummary(stdout, diags)
		if errs, _ := report.TaintDiagCounts(diags); errs > 0 {
			hadErrors = true
		}
		any = true
	}
	if *doModRef {
		printModRef(stdout, a)
		any = true
	}
	if len(queries) > 0 {
		for _, r := range a.QueryAll(queries) {
			if r.Err != "" {
				fmt.Fprintf(stdout, "query %s %s: %s\n", r.Pos, r.Var, r.Err)
				hadErrors = true
				continue
			}
			parts := make([]string, len(r.Targets))
			for i, t := range r.Targets {
				parts[i] = t.String()
			}
			fmt.Fprintf(stdout, "query %s %s -> %s\n", r.Pos, r.Var, strings.Join(parts, " "))
		}
		any = true
	}
	if *demand {
		m := a.Metrics()
		fmt.Fprintf(stdout, "demand: %d facts kept at seeded statements, %d pruned, live vars p50 %d\n",
			m.DemandFactsKept, m.FactsPruned, m.LiveVars.P50)
		any = true
	}
	if *doPts || !any {
		printPts(stdout, a)
	}
	for _, d := range a.Diagnostics() {
		logger.Info("note", "msg", d)
	}
	if *exitCode && hadErrors {
		return 1
	}
	return 0
}

// printModRef renders the MOD/REF summary and positioned access records of
// the first invocation-graph node of each function, in graph walk order.
func printModRef(w io.Writer, a *pointsto.Analysis) {
	mr := a.ModRef()
	seen := make(map[string]bool)
	a.Result.Graph.Walk(func(n *invgraph.Node) {
		name := n.Fn.Name()
		if seen[name] {
			return
		}
		seen[name] = true
		fmt.Fprintf(w, "%s:\n", name)
		fmt.Fprintf(w, "  MOD: %s\n", locNames(mr.ModOf(n)))
		fmt.Fprintf(w, "  REF: %s\n", locNames(mr.RefOf(n)))
		for _, acc := range mr.Accesses(n) {
			fmt.Fprintf(w, "  %s\n", acc)
		}
	})
}

func locNames(ls []*loc.Location) string {
	if len(ls) == 0 {
		return "{}"
	}
	names := make([]string, len(ls))
	for i, l := range ls {
		names[i] = l.Name()
	}
	return "{" + strings.Join(names, ", ") + "}"
}

func printPts(w io.Writer, a *pointsto.Analysis) {
	fmt.Fprintln(w, "points-to set at exit of main (NULL targets omitted):")
	for _, t := range a.Result.MainOut.Triples() {
		if t.Dst.Kind == loc.Null {
			continue
		}
		fmt.Fprintf(w, "  (%s, %s, %s)\n", t.Src.Name(), t.Dst.Name(), t.Def)
	}
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := fn(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// multiFlag collects the values of a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
