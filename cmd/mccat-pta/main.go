// mccat-pta is the analysis driver: it parses a C file (or a named builtin
// benchmark), runs the context-sensitive points-to analysis, and prints the
// requested views — points-to sets, the simplified program, the invocation
// graph, pointer replacements or alias pairs.
//
// Usage:
//
//	mccat-pta [flags] file.c
//	mccat-pta [flags] -bench hash
//
// Flags:
//
//	-pts       print the points-to set at the exit of main (default)
//	-simple    print the SIMPLE intermediate representation
//	-dot       print the invocation graph in Graphviz DOT form
//	-replace   print indirect references replaceable via definite info
//	-alias     print alias pairs implied at main's exit (depth 2)
//	-stats     print invocation graph and analysis statistics (steps,
//	           memoization hit rate, hash-consing, peak set size)
//	-workers N worker pool size (0 = GOMAXPROCS, 1 = serial; results are
//	           bit-identical for every worker count)
//	-check     run the memory-safety checker (NULL/uninit deref, UAF, dangling)
//	-race      run the lockset-based data-race detector over pthread threads
//	-modref    print per-function MOD/REF accesses with source positions
//	-fnptr S   function pointer strategy: precise|addr-taken|all
//	-ci        context-insensitive ablation
//	-nodef     disable definite relationships
//
// Observability flags:
//
//	-metrics        print the full metrics report (engine counters, memo and
//	                intern hit rates, set-cardinality distribution, per-function
//	                cost table)
//	-trace F        record a structured execution trace and write it to F as
//	                Chrome trace_event JSON (open in ui.perfetto.dev)
//	-trace-jsonl F  write the trace to F as a JSON-lines stream instead
//	-trace-buf N    per-shard trace ring capacity in events (drop-oldest)
//	-cpuprofile F   write a CPU profile of the run to F
//	-memprofile F   write a heap profile at exit to F
//	-debug-addr A   serve net/http/pprof on A (e.g. localhost:6060)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/alias"
	"repro/internal/bench"
	"repro/internal/constprop"
	"repro/internal/deptest"
	"repro/internal/heapconn"
	"repro/internal/modref"
	"repro/internal/obsv"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/report"
	"repro/pointsto"
)

func main() {
	var (
		benchName = flag.String("bench", "", "analyze the named builtin benchmark instead of a file")
		doPts     = flag.Bool("pts", false, "print the points-to set at main's exit")
		doSimple  = flag.Bool("simple", false, "print the SIMPLE IR")
		doDot     = flag.Bool("dot", false, "print the invocation graph as DOT")
		doRepl    = flag.Bool("replace", false, "print pointer replacement opportunities")
		doAlias   = flag.Bool("alias", false, "print implied alias pairs")
		doStats   = flag.Bool("stats", false, "print invocation graph statistics")
		doConst   = flag.Bool("const", false, "run constant propagation over the points-to results")
		doConn    = flag.Bool("conn", false, "run the heap connection analysis")
		doCheck   = flag.Bool("check", false, "run the memory-safety checker")
		doRace    = flag.Bool("race", false, "run the data-race detector")
		doModRef  = flag.Bool("modref", false, "print per-function MOD/REF accesses with positions")
		doDep     = flag.Bool("dep", false, "run array dependence testing over the loops")
		fnptr     = flag.String("fnptr", "precise", "function pointer strategy: precise|addr-taken|all")
		ci        = flag.Bool("ci", false, "context-insensitive ablation")
		nodef     = flag.Bool("nodef", false, "disable definite relationships")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")

		doMetrics  = flag.Bool("metrics", false, "print the full metrics report")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON execution trace to this file")
		traceJSONL = flag.String("trace-jsonl", "", "write a JSON-lines execution trace to this file")
		traceBuf   = flag.Int("trace-buf", 0, "per-shard trace ring capacity in events (0 = default)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this address")
	)
	flag.Parse()

	var name, src string
	switch {
	case *benchName != "":
		s, err := bench.Source(*benchName)
		if err != nil {
			fatal(err)
		}
		name, src = *benchName+".c", s
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: mccat-pta [flags] file.c | -bench name")
		flag.PrintDefaults()
		os.Exit(2)
	}

	prof, err := obsv.StartProfiles(*cpuprofile, *memprofile, *debugAddr)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fatal(err)
		}
	}()

	cfg := &pointsto.Config{
		FnPtrStrategy:      *fnptr,
		ContextInsensitive: *ci,
		NoDefinite:         *nodef,
		Workers:            *workers,
		Trace:              *traceOut != "" || *traceJSONL != "",
		TraceBuffer:        *traceBuf,
	}
	a, err := pointsto.AnalyzeSource(name, src, cfg)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		writeFileWith(*traceOut, a.WriteChromeTrace)
	}
	if *traceJSONL != "" {
		writeFileWith(*traceJSONL, a.WriteTraceJSONL)
	}

	any := false
	if *doSimple {
		a.WriteSimple(os.Stdout)
		any = true
	}
	if *doDot {
		a.WriteInvocationGraph(os.Stdout)
		any = true
	}
	if *doStats {
		st := a.InvocationGraphStats()
		fmt.Printf("ig nodes %d, call sites %d, functions %d, recursive %d, approximate %d, threads %d\n",
			st.Nodes, st.CallSites, st.Functions, st.Recursive, st.Approximate, st.Threads)
		fmt.Printf("avg nodes/call-site %.2f, avg nodes/function %.2f\n",
			st.AvgPerCallSite(), st.AvgPerFunction())
		m := a.Metrics()
		fmt.Printf("workers %d, steps %d, peak set %d\n", a.Result.Workers, m.Steps, m.PeakSet)
		fmt.Printf("memo: %d hits / %d misses (%.1f%% hit rate)\n",
			m.MemoHits, m.MemoMisses, 100*m.MemoHitRate)
		fmt.Printf("interning: %d distinct sets, %.1f%% hit rate\n",
			m.InternDistinct, 100*m.InternHitRate)
		fmt.Printf("set cardinality: p50 %d, p90 %d, max %d\n",
			m.Cardinality.P50, m.Cardinality.P90, m.Cardinality.Max)
		if m.TraceDropped > 0 {
			fmt.Printf("trace: %d events dropped by ring overflow (raise -trace-buf)\n", m.TraceDropped)
		}
		any = true
	}
	if *doMetrics {
		report.WriteMetrics(os.Stdout, a.Metrics())
		any = true
	}
	if *doRepl {
		for _, r := range a.Replacements() {
			fmt.Println(r)
		}
		any = true
	}
	if *doAlias {
		fmt.Println(alias.Format(a.AliasPairs(2)))
		any = true
	}
	if *doConst {
		cp := constprop.RunWithMod(a.Result, modref.Compute(a.Result))
		fmt.Printf("constant statements: %d\n", len(cp.Constants))
		for _, f := range cp.Constants {
			fmt.Println(" ", f)
		}
		any = true
	}
	if *doDep {
		dp := deptest.Run(a.Result)
		fmt.Println(dp.Summary())
		for _, l := range dp.SortedLoops() {
			if len(l.Pairs) == 0 {
				continue
			}
			disj, sub, dep, unk := l.Counts()
			fmt.Printf("  %s %s (trip %d, admissible %v): disjoint %d, indep-subscript %d, dependent %d, unknown %d\n",
				l.Fn.Name(), l.Loop.Pos, l.Trip, l.Admissible, disj, sub, dep, unk)
		}
		any = true
	}
	if *doConn {
		hc := heapconn.Run(a.Result)
		names := make([]string, 0, len(hc.Funcs))
		for n := range hc.Funcs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fr := hc.Funcs[n]
			if len(fr.HeapPtrs) == 0 {
				continue
			}
			fmt.Printf("%s: %d heap pointers, %d connected pairs (naive %d), %d provably disjoint\n",
				n, len(fr.HeapPtrs), fr.Exit.Len(), fr.NaivePairs, fr.DisjointPairs())
		}
		any = true
	}
	if *doCheck {
		diags, err := a.Check()
		if err != nil {
			fatal(err)
		}
		report.WriteDiags(os.Stdout, diags)
		report.WriteDiagSummary(os.Stdout, diags)
		any = true
	}
	if *doRace {
		diags, err := a.Races()
		if err != nil {
			fatal(err)
		}
		report.WriteRaceDiags(os.Stdout, diags)
		report.WriteRaceDiagSummary(os.Stdout, diags)
		any = true
	}
	if *doModRef {
		printModRef(a)
		any = true
	}
	if *doPts || !any {
		printPts(a)
	}
	for _, d := range a.Diagnostics() {
		fmt.Fprintln(os.Stderr, "note:", d)
	}
}

// printModRef renders the MOD/REF summary and positioned access records of
// the first invocation-graph node of each function, in graph walk order.
func printModRef(a *pointsto.Analysis) {
	mr := a.ModRef()
	seen := make(map[string]bool)
	a.Result.Graph.Walk(func(n *invgraph.Node) {
		name := n.Fn.Name()
		if seen[name] {
			return
		}
		seen[name] = true
		fmt.Printf("%s:\n", name)
		fmt.Printf("  MOD: %s\n", locNames(mr.ModOf(n)))
		fmt.Printf("  REF: %s\n", locNames(mr.RefOf(n)))
		for _, acc := range mr.Accesses(n) {
			fmt.Printf("  %s\n", acc)
		}
	})
}

func locNames(ls []*loc.Location) string {
	if len(ls) == 0 {
		return "{}"
	}
	names := make([]string, len(ls))
	for i, l := range ls {
		names[i] = l.Name()
	}
	return "{" + strings.Join(names, ", ") + "}"
}

func printPts(a *pointsto.Analysis) {
	fmt.Println("points-to set at exit of main (NULL targets omitted):")
	for _, t := range a.Result.MainOut.Triples() {
		if t.Dst.Kind == loc.Null {
			continue
		}
		fmt.Printf("  (%s, %s, %s)\n", t.Src.Name(), t.Dst.Name(), t.Def)
	}
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := fn(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mccat-pta:", err)
	os.Exit(1)
}
