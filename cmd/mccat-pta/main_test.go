package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestTaintExitCode drives the CLI end to end: a seeded fixture with
// -exit-code exits 1 and prints the diagnostic, its clean twin exits 0.
func TestTaintExitCode(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "taint")

	code, out, stderr := runCLI(t, "-taint", "-exit-code", filepath.Join(dir, "direct.c"))
	if code != 1 {
		t.Fatalf("direct.c: exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(out, "tainted-exec") || !strings.Contains(out, "1 error, 0 warnings") {
		t.Errorf("direct.c output missing diagnostic or summary:\n%s", out)
	}

	code, out, _ = runCLI(t, "-taint", "-exit-code", filepath.Join(dir, "direct_ok.c"))
	if code != 0 {
		t.Fatalf("direct_ok.c: exit code = %d, want 0", code)
	}
	if !strings.Contains(out, "no taint flows found") {
		t.Errorf("direct_ok.c output missing clean summary:\n%s", out)
	}

	// Warnings alone must not flip the exit code.
	code, out, _ = runCLI(t, "-taint", "-exit-code", filepath.Join(dir, "ctx.c"))
	if code != 0 {
		t.Fatalf("ctx.c: exit code = %d, want 0 (warnings only):\n%s", code, out)
	}

	// Without -exit-code even errors exit 0.
	code, _, _ = runCLI(t, "-taint", filepath.Join(dir, "direct.c"))
	if code != 0 {
		t.Fatalf("direct.c without -exit-code: exit code = %d, want 0", code)
	}
}

// TestExitCodeCoversCheck: -exit-code also reacts to the memory-safety
// checker's error-level diagnostics.
func TestExitCodeCoversCheck(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "check")
	code, _, _ := runCLI(t, "-check", "-exit-code", filepath.Join(dir, "nullderef.c"))
	if code != 1 {
		t.Fatalf("nullderef.c: exit code = %d, want 1", code)
	}
	code, _, _ = runCLI(t, "-check", "-exit-code", filepath.Join(dir, "nullderef_ok.c"))
	if code != 0 {
		t.Fatalf("nullderef_ok.c: exit code = %d, want 0", code)
	}
}

// TestUsageExitCode: no input file is a usage error (2), and a missing file
// is a runtime failure (1).
func TestUsageExitCode(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 || !strings.Contains(stderr, "usage:") {
		t.Fatalf("no args: code=%d stderr=%q, want 2 with usage", code, stderr)
	}
	code, _, _ = runCLI(t, "-taint", "no-such-file.c")
	if code != 1 {
		t.Fatalf("missing file: code=%d, want 1", code)
	}
}

// TestLogFlags checks the structured-logging wiring: -log-json turns the
// fatal path into a JSON log line, and a bad -log-level is a usage error.
func TestLogFlags(t *testing.T) {
	code, _, stderr := runCLI(t, "-log-json", "does-not-exist.c")
	if code != 1 {
		t.Fatalf("missing file exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, `"msg":"fatal"`) || !strings.Contains(stderr, "does-not-exist.c") {
		t.Errorf("fatal not logged as JSON:\n%s", stderr)
	}

	code, _, stderr = runCLI(t, "-log-level", "shouty", "-bench", "hash")
	if code != 2 || !strings.Contains(stderr, "shouty") {
		t.Errorf("bad -log-level: code=%d stderr=%q, want 2 naming the level", code, stderr)
	}
}

// TestDemandFlags drives -demand and -query end to end: demand-mode check
// diagnostics match exhaustive ones (minus the demand stats line), queries
// resolve identically in both modes, and a malformed query is a usage error.
func TestDemandFlags(t *testing.T) {
	uaf := filepath.Join("..", "..", "examples", "check", "uaf.c")

	code, exOut, _ := runCLI(t, "-check", uaf)
	if code != 0 {
		t.Fatalf("exhaustive check exit = %d", code)
	}
	code, dmOut, stderr := runCLI(t, "-demand", "-check", uaf)
	if code != 0 {
		t.Fatalf("demand check exit = %d (stderr: %s)", code, stderr)
	}
	var kept []string
	for _, line := range strings.Split(dmOut, "\n") {
		if !strings.HasPrefix(line, "demand: ") {
			kept = append(kept, line)
		}
	}
	if got := strings.Join(kept, "\n"); got != exOut {
		t.Errorf("demand diagnostics diverge\nexhaustive:\n%s\ndemand:\n%s", exOut, got)
	}
	if !strings.Contains(dmOut, "demand: ") {
		t.Errorf("demand run missing its stats line:\n%s", dmOut)
	}

	q := uaf + ":9:p"
	code, exOut, _ = runCLI(t, "-query", q, uaf)
	if code != 0 {
		t.Fatalf("exhaustive query exit = %d", code)
	}
	code, dmOut, _ = runCLI(t, "-demand", "-query", q, uaf)
	if code != 0 {
		t.Fatalf("demand query exit = %d", code)
	}
	want := "query " + uaf + ":9 p -> "
	if !strings.Contains(exOut, want) || !strings.Contains(dmOut, want) {
		t.Fatalf("query answer missing\nexhaustive:\n%s\ndemand:\n%s", exOut, dmOut)
	}
	exAns := exOut[strings.Index(exOut, "query "):]
	exAns = exAns[:strings.Index(exAns, "\n")]
	if !strings.Contains(dmOut, exAns) {
		t.Errorf("demand answer diverges from exhaustive %q:\n%s", exAns, dmOut)
	}

	if code, _, _ = runCLI(t, "-query", "nonsense", uaf); code != 2 {
		t.Errorf("malformed -query exit = %d, want 2", code)
	}
}
