package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMetricsOut writes the metrics snapshot JSON and checks the keys a
// downstream consumer depends on.
func TestMetricsOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.json")
	code, _, stderr := runCLI(t, "-bench", "hash", "-metrics-out", out)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics-out is not JSON: %v", err)
	}
	for _, key := range []string{"steps", "memo_hits", "memo_misses", "memo_hit_rate",
		"node_evals", "peak_set", "intern_distinct", "set_cardinality"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("metrics JSON missing key %q", key)
		}
	}
	if steps, _ := snap["steps"].(float64); steps <= 0 {
		t.Errorf("steps = %v, want > 0", snap["steps"])
	}
}

// TestStatsIncludesSchedAndShards: the -stats view surfaces scheduler and
// shard-contention counters.
func TestStatsIncludesSchedAndShards(t *testing.T) {
	code, out, stderr := runCLI(t, "-bench", "hash", "-stats", "-workers", "4")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"sched: ", " tasks, ", " steals, ", " parks",
		"shards: intern ", "contended"} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q:\n%s", want, out)
		}
	}
}

// TestFlightOut writes the end-of-run flight record to a file.
func TestFlightOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "flight.txt")
	code, _, stderr := runCLI(t, "-bench", "hash", "-flight", out)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "=== flight record: end of run ===") {
		t.Errorf("flight file missing record header:\n%s", data)
	}
	if !strings.Contains(string(data), "counters: steps=") {
		t.Errorf("flight file missing counters:\n%s", data)
	}

	// -flight with -no-flight is a usage error.
	code, _, stderr = runCLI(t, "-bench", "hash", "-no-flight", "-flight", out)
	if code != 1 || !strings.Contains(stderr, "-no-flight") {
		t.Errorf("contradictory flags: code=%d stderr=%s", code, stderr)
	}
}

// TestMaxStepsDumpsFlightRecord forces the step budget to blow through the
// CLI and requires the automatic flight dump on stderr plus a nonzero exit.
func TestMaxStepsDumpsFlightRecord(t *testing.T) {
	code, _, stderr := runCLI(t, "-bench", "hash", "-max-steps", "50")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr, "exceeded 50 steps") {
		t.Errorf("stderr missing budget error:\n%s", stderr)
	}
	if !strings.Contains(stderr, "=== flight record: steps exceeded (budget 50) ===") {
		t.Errorf("stderr missing flight record:\n%s", stderr)
	}
}

// TestWatchdogFlagParses: a long-window watchdog must not disturb a normal
// run.
func TestWatchdogFlagParses(t *testing.T) {
	code, out, stderr := runCLI(t, "-bench", "hash", "-watchdog", "1h", "-watchdog-kill", "-pts")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "points-to set at exit of main") {
		t.Errorf("normal output missing:\n%s", out)
	}
	if strings.Contains(stderr, "stall watchdog") {
		t.Errorf("watchdog fired on a healthy run:\n%s", stderr)
	}
}
