// pta-server runs the points-to analysis as a long-lived HTTP/JSON service.
//
// Endpoints:
//
//	POST /v1/analyze   analyze C source, return points-to triples + metrics
//	POST /v1/check     memory-safety findings over the same run
//	POST /v1/race      data-race findings
//	POST /v1/taint     taint findings
//	GET  /metrics      Prometheus text: aggregated analysis counters plus
//	                   http_requests_total / http_request_duration_seconds /
//	                   inflight_requests
//	GET  /healthz      process liveness
//	GET  /readyz       ready only after the warmup self-analysis passes
//	GET  /debug/pprof  net/http/pprof
//
// Every request is stamped with an X-Request-ID (propagated or generated);
// the same ID appears in the JSON response, the structured access log, the
// per-request trace, and — when a run panics, blows its step budget, or
// stalls — names the flight-record dump spooled under -spool.
//
// Flags:
//
//	-addr A               listen address (default localhost:8321)
//	-pool N               max concurrent analyses (0 = GOMAXPROCS)
//	-workers N            per-analysis worker cap (0 = GOMAXPROCS)
//	-spool DIR            flight-record spool directory
//	-max-source-bytes N   request body limit (0 = 8 MiB)
//	-max-steps N          per-request step-budget ceiling (0 = engine default)
//	-log-json             access log as JSON lines (default true)
//	-log-level L          debug|info|warn|error (default info)
//	-drain-timeout D      graceful-shutdown drain budget (default 30s)
//
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/obsv"
	"repro/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the daemon body, separated from main so tests can drive the full
// lifecycle: sigs is the shutdown trigger (nil installs the real
// SIGINT/SIGTERM handler).
func run(argv []string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("pta-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "localhost:8321", "listen address")
		poolSize = fs.Int("pool", 0, "max concurrent analyses (0 = GOMAXPROCS)")
		workers  = fs.Int("workers", 0, "per-analysis worker cap (0 = GOMAXPROCS)")
		spoolDir = fs.String("spool", "", "flight-record spool dir (default <tmp>/pta-server-spool)")
		maxBytes = fs.Int64("max-source-bytes", 0, "request body limit in bytes (0 = 8 MiB)")
		maxSteps = fs.Int("max-steps", 0, "per-request step-budget ceiling (0 = engine default)")
		logJSON  = fs.Bool("log-json", true, "write the access log as JSON lines")
		logLevel = fs.String("log-level", "info", "log level: debug|info|warn|error")
		drain    = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	log, err := obsv.NewLogger(stderr, obsv.LogOptions{JSON: *logJSON, Level: *logLevel})
	if err != nil {
		fmt.Fprintln(stderr, "pta-server:", err)
		return 2
	}
	if *spoolDir == "" {
		*spoolDir = filepath.Join(os.TempDir(), "pta-server-spool")
	}

	srv, err := server.New(server.Config{
		PoolSize:        *poolSize,
		AnalysisWorkers: *workers,
		SpoolDir:        *spoolDir,
		MaxSourceBytes:  *maxBytes,
		MaxSteps:        *maxSteps,
		Logger:          log,
	})
	if err != nil {
		log.Error("startup", "err", err)
		return 1
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Error("listen", "addr", *addr, "err", err)
		return 1
	}
	// The bound address on stdout is the script interface (with -addr :0 the
	// port is kernel-assigned); everything else goes to the structured log.
	fmt.Fprintf(stdout, "pta-server listening on %s\n", bound)
	log.Info("listening", "addr", bound.String(), "spool", *spoolDir)

	if sigs == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		sigs = ch
	}
	sig := <-sigs
	log.Info("shutdown", "signal", fmt.Sprint(sig))
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Error("drain", "err", err)
		return 1
	}
	log.Info("stopped")
	return 0
}
