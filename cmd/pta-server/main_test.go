package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServerLifecycle drives the daemon end to end: start on an ephemeral
// port, wait for readiness, analyze one program, then deliver the shutdown
// signal and require a clean graceful exit.
func TestServerLifecycle(t *testing.T) {
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	sigs := make(chan os.Signal, 1)
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run([]string{
			"-addr", "127.0.0.1:0",
			"-spool", t.TempDir(),
			"-log-json",
		}, stdout, stderr, sigs)
	}()

	// The bound address is announced on stdout.
	var base string
	waitFor(t, "listen line", func() bool {
		out := stdout.String()
		i := strings.Index(out, "listening on ")
		if i < 0 {
			return false
		}
		base = "http://" + strings.TrimSpace(out[i+len("listening on "):])
		return true
	})

	waitFor(t, "readiness", func() bool {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == 200
	})

	body := `{"filename":"t.c","source":"int g; int *p; int main() { p = &g; return 0; }"}`
	resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ar struct {
		RequestID string `json:"request_id"`
		PointsTo  []any  `json:"points_to"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(ar.PointsTo) == 0 {
		t.Fatalf("analyze: status %d, %d triples", resp.StatusCode, len(ar.PointsTo))
	}
	if ar.RequestID == "" {
		t.Error("no request id in response")
	}

	sigs <- os.Interrupt
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("exit code %d after graceful signal; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after signal")
	}

	// The structured log saw the whole lifecycle.
	log := stderr.String()
	for _, want := range []string{`"msg":"listening"`, `"msg":"request"`, ar.RequestID, `"msg":"stopped"`} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-log-level", "shouty"}, &out, &errb, nil); code != 2 {
		t.Errorf("bad -log-level exit = %d, want 2", code)
	}
	if code := run([]string{"-nonsense"}, &out, &errb, nil); code != 2 {
		t.Errorf("unknown flag exit = %d, want 2", code)
	}
}

func TestListenFailure(t *testing.T) {
	var out bytes.Buffer
	errb := &syncBuffer{}
	if code := run([]string{"-addr", "256.256.256.256:1", "-spool", t.TempDir()}, &out, errb, nil); code != 1 {
		t.Errorf("unlistenable addr exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), `"msg":"listen"`) {
		t.Errorf("listen failure not logged:\n%s", errb.String())
	}
}
