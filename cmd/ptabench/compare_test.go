package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perf"
)

// writeReport generates a real perf report for one small benchmark and
// writes it to dir, returning the path and the parsed report for mutation.
func writeReport(t *testing.T, dir, name string, mutate func(*perf.PerfReport)) string {
	t.Helper()
	rep, err := perf.RunPerf([]string{"hash"}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(rep)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareGate drives the regression gate end to end: identical reports
// pass, a synthetically regressed report fails with exit 1, and loosened
// thresholds let it pass again.
func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", nil)

	// Self-comparison passes.
	stdout, stderr, code := runCLI(t, "-compare", old, old)
	if code != 0 {
		t.Fatalf("self-compare exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "no regressions") {
		t.Errorf("missing pass line:\n%s", stdout)
	}

	// A 2x step-count regression fails the gate.
	bad := writeReport(t, dir, "bad.json", func(r *perf.PerfReport) {
		for i := range r.Programs {
			r.Programs[i].Steps *= 2
		}
	})
	stdout, stderr, code = runCLI(t, "-compare", old, bad)
	if code != 1 {
		t.Fatalf("regressed compare exit %d, want 1\nstdout:\n%s", code, stdout)
	}
	if !strings.Contains(stderr, "msg=regression") || !strings.Contains(stderr, "steps") {
		t.Errorf("missing steps regression on stderr:\n%s", stderr)
	}
	if !strings.Contains(stdout, "FAIL") {
		t.Errorf("missing FAIL line:\n%s", stdout)
	}

	// Loosening the threshold past the regression lets it pass.
	_, _, code = runCLI(t, "-compare", "-steps-tol", "3.0", old, bad)
	if code != 0 {
		t.Errorf("loosened threshold still fails (exit %d)", code)
	}
}

// TestCompareHostMismatchWarns rewrites the baseline's host record and
// checks the cross-host warning path.
func TestCompareHostMismatchWarns(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", func(r *perf.PerfReport) {
		r.Host.NumCPU = r.Host.NumCPU + 64
		// Wall times from the "other host" are absurd; the gate must warn
		// and skip them rather than fail.
		for i := range r.Programs {
			r.Programs[i].WallSerialMS /= 100
		}
	})
	nw := writeReport(t, dir, "new.json", nil)
	stdout, stderr, code := runCLI(t, "-compare", old, nw)
	if code != 0 {
		t.Fatalf("cross-host compare exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "different hosts") {
		t.Errorf("missing host-mismatch warning:\n%s", stderr)
	}
}

// TestCompareUsageErrors: wrong arity and unreadable files exit nonzero
// with a diagnostic.
func TestCompareUsageErrors(t *testing.T) {
	_, stderr, code := runCLI(t, "-compare", "only-one.json")
	if code != 1 || !strings.Contains(stderr, "exactly two") {
		t.Errorf("arity error: code=%d stderr=%s", code, stderr)
	}
	_, stderr, code = runCLI(t, "-compare", "/nonexistent/a.json", "/nonexistent/b.json")
	if code != 1 || stderr == "" {
		t.Errorf("unreadable file: code=%d stderr=%s", code, stderr)
	}
}
