// ptabench regenerates the paper's evaluation (§6): Tables 2-6 over the
// 17-benchmark suite, the livc function-pointer case study, and the
// ablation comparisons described in DESIGN.md.
//
// Usage:
//
//	ptabench            # all tables
//	ptabench -table 3   # one table
//	ptabench -livc      # the function-pointer strategy experiment
//	ptabench -ablation  # precision ablations (definite info, arrays, context)
//	ptabench -perf      # wall-time/memoization report (serial vs parallel vs
//	                    # unmemoized); -out writes BENCH_pta.json, -verify
//	                    # exits nonzero on divergence or a cold memo cache
//	ptabench -scale     # wall-time trajectory at workers 1/2/4/8 over a
//	                    # generated program (-scale-preset) or a C file
//	                    # (-scale-file) or builtins (-progs); -out writes
//	                    # BENCH_scale.json, -verify exits nonzero if any
//	                    # worker count diverges from the serial result
//	ptabench -trace F   # trace the suite (one Perfetto process per program)
//
//	ptabench -compare old.json new.json
//	                    # bench regression gate: diff two BENCH_pta.json or
//	                    # BENCH_scale.json reports with per-metric thresholds
//	                    # (-wall-tol, -steps-tol, -memo-tol, -peak-tol) and
//	                    # exit 1 on any regression; host mismatches downgrade
//	                    # wall-time checks to warnings
//
// Profiling flags usable with any mode: -cpuprofile, -memprofile,
// -debug-addr (net/http/pprof).
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/obsv"
	"repro/internal/perf"
	"repro/internal/pta"
	"repro/internal/ptagen"
	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fatalErr carries an error up to run's recover, which turns it into an
// exit code — keeping the deep helper call chains free of error plumbing
// while staying testable (run never calls os.Exit itself).
type fatalErr struct{ err error }

func fatal(err error) {
	panic(fatalErr{err})
}

func run(argv []string, stdout, stderr io.Writer) (code int) {
	// logger is set right after flag parsing; the recover falls back to a
	// plain print for failures before that point.
	var logger *slog.Logger
	defer func() {
		if r := recover(); r != nil {
			fe, ok := r.(fatalErr)
			if !ok {
				panic(r)
			}
			if logger != nil {
				logger.Error("fatal", "err", fe.err)
			} else {
				fmt.Fprintln(stderr, "ptabench:", fe.err)
			}
			code = 1
		}
	}()

	fs := flag.NewFlagSet("ptabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tableN   = fs.Int("table", 0, "print only the given table (2-6)")
		livc     = fs.Bool("livc", false, "run the livc function-pointer experiment")
		ablation = fs.Bool("ablation", false, "run the precision ablations")
		perfMode = fs.Bool("perf", false, "run the performance report (wall time, memoization, parallel speedup)")
		workers  = fs.Int("workers", 0, "worker pool size for -perf, or the largest worker count for -scale (0 = GOMAXPROCS / 8)")
		repeats  = fs.Int("repeats", 3, "timing repetitions per variant (best kept)")
		progs    = fs.String("progs", "", "comma-separated benchmark names for -perf/-scale/-trace (default: all / generated)")
		out      = fs.String("out", "", "also write the -perf/-scale report as JSON to this file")
		verify   = fs.Bool("verify", false, "exit 1 on any result divergence (and, with -perf, on a cold memo cache)")

		scaleMode   = fs.Bool("scale", false, "run the worker-scaling report")
		scaleFile   = fs.String("scale-file", "", "with -scale: measure this C file (e.g. ptagen output)")
		scalePreset = fs.String("scale-preset", "large", "with -scale: ptagen preset to generate when no -scale-file/-progs is given")

		compareMode = fs.Bool("compare", false, "compare two bench report JSON files (old new) and exit 1 on regression")
		wallTol     = fs.Float64("wall-tol", 0, "with -compare: wall-time growth ratio tolerated (0 = default 1.5)")
		stepsTol    = fs.Float64("steps-tol", 0, "with -compare: step-count growth ratio tolerated (0 = default 1.10)")
		memoTol     = fs.Float64("memo-tol", 0, "with -compare: absolute memo hit-rate drop tolerated (0 = default 0.05)")
		peakTol     = fs.Float64("peak-tol", 0, "with -compare: peak-set growth ratio tolerated (0 = default 1.10)")

		traceOut   = fs.String("trace", "", "trace the suite and write Chrome trace_event JSON to this file")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile at exit to this file")
		debugAddr  = fs.String("debug-addr", "", "serve net/http/pprof on this address")

		logJSON  = fs.Bool("log-json", false, "write stderr diagnostics as JSON log lines")
		logLevel = fs.String("log-level", "info", "stderr log level: debug|info|warn|error")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	lg, err := obsv.NewLogger(stderr, obsv.LogOptions{JSON: *logJSON, Level: *logLevel})
	if err != nil {
		fmt.Fprintln(stderr, "ptabench:", err)
		return 2
	}
	logger = lg

	if *compareMode {
		// No profile setup: -compare reads two JSON files and exits.
		return runCompare(stdout, logger, fs.Args(), perf.Thresholds{
			WallRatio:  *wallTol,
			StepsRatio: *stepsTol,
			MemoDrop:   *memoTol,
			PeakRatio:  *peakTol,
		})
	}

	prof, err := obsv.StartProfiles(*cpuprofile, *memprofile, *debugAddr)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			logger.Error("profile shutdown", "err", err)
			code = 1
		}
	}()

	switch {
	case *traceOut != "":
		runTrace(stdout, *traceOut, *progs, *workers)
	case *scaleMode:
		runScale(stdout, logger, *progs, *scaleFile, *scalePreset, *workers, *repeats, *out, *verify)
	case *perfMode:
		runPerf(stdout, stderr, logger, *progs, *workers, *repeats, *out, *verify)
	case *livc:
		runLivc(stdout)
	case *ablation:
		runAblation(stdout)
	default:
		runTables(stdout, *tableN)
	}
	return 0
}

// runCompare is the bench regression gate: it diffs an old (baseline) and a
// new (candidate) report under the thresholds, prints every warning and
// regression, and returns 1 when the gate fails.
func runCompare(stdout io.Writer, log *slog.Logger, args []string, th perf.Thresholds) int {
	if len(args) != 2 {
		fatal(fmt.Errorf("-compare needs exactly two report files: old.json new.json"))
	}
	oldData, err := os.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	newData, err := os.ReadFile(args[1])
	if err != nil {
		fatal(err)
	}
	c, err := perf.CompareReports(oldData, newData, th)
	if err != nil {
		fatal(err)
	}
	for _, w := range c.Warnings {
		log.Warn("compare warning", "detail", w)
	}
	for _, r := range c.Regressions {
		log.Error("regression", "detail", r)
	}
	if !c.OK() {
		fmt.Fprintf(stdout, "compare (%s): FAIL — %d regression(s) vs %s\n",
			c.Kind, len(c.Regressions), args[0])
		return 1
	}
	fmt.Fprintf(stdout, "compare (%s): ok — no regressions vs %s (%d warning(s))\n",
		c.Kind, args[0], len(c.Warnings))
	return 0
}

// runTrace analyzes the selected benchmarks with tracing enabled and writes
// one Chrome trace file with a Perfetto process per program.
func runTrace(w io.Writer, path, progs string, workers int) {
	var names []string
	if progs != "" {
		names = strings.Split(progs, ",")
	}
	procs, err := perf.TracePrograms(names, workers)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := obsv.WriteChromeTraceProcs(f, procs...); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	var events int
	for _, p := range procs {
		events += len(p.Events)
	}
	fmt.Fprintf(w, "traced %d programs (%d events) to %s\n", len(procs), events, path)
}

// runPerf times the suite under the serial, parallel and unmemoized
// configurations and renders the report (optionally as JSON). With verify
// it enforces the two smoke invariants: every program's variants agree
// byte-for-byte, and the input-keyed memo cache is not universally cold.
func runPerf(stdout, stderr io.Writer, log *slog.Logger, progs string, workers, repeats int, out string, verify bool) {
	var names []string
	if progs != "" {
		names = strings.Split(progs, ",")
	}
	rep, err := perf.RunPerf(names, workers, repeats)
	if err != nil {
		fatal(err)
	}
	rep.WriteTable(stdout)
	if out != "" {
		writeJSONFile(stdout, out, rep.WriteJSON)
	}
	if verify {
		anyMemoHit := false
		failed := false
		for _, p := range rep.Programs {
			if !p.Identical {
				// Explain the divergence before failing: re-run the
				// variants and show where the fingerprints split and how
				// the per-function effort differed.
				failed = true
				log.Error("verify failed", "bench", p.Name,
					"reason", "serial, parallel and unmemoized results diverge")
				if err := perf.ExplainDivergence(stderr, p.Name, rep.Workers); err != nil {
					log.Error("verify explain failed", "bench", p.Name, "err", err)
				}
			}
			if p.MemoHits > 0 {
				anyMemoHit = true
			}
		}
		if failed {
			fatal(fmt.Errorf("verify: results diverged (reports above)"))
		}
		if !anyMemoHit {
			fatal(fmt.Errorf("verify: memo cache was cold on every program (hit rate zero)"))
		}
		fmt.Fprintln(stdout, "verify: all variants byte-identical, memo cache warm")
	}
}

// runScale measures the worker-scaling trajectory. Target selection, in
// priority order: an explicit C file (-scale-file), named builtins (-progs),
// or a ptagen-generated program (-scale-preset). The worker set is the
// powers of two up to -workers (default 8), with the serial baseline always
// included.
func runScale(stdout io.Writer, log *slog.Logger, progs, file, preset string, maxWorkers, repeats int, out string, verify bool) {
	var targets []perf.ScaleTarget
	switch {
	case file != "":
		t, err := perf.ScaleTargetFromFile(file)
		if err != nil {
			fatal(err)
		}
		targets = append(targets, t)
	case progs != "":
		for _, name := range strings.Split(progs, ",") {
			t, err := perf.ScaleTargetFromBench(name)
			if err != nil {
				fatal(err)
			}
			targets = append(targets, t)
		}
	default:
		cfg, ok := ptagen.Presets[preset]
		if !ok {
			fatal(fmt.Errorf("unknown -scale-preset %q (want small|mid|large|xlarge)", preset))
		}
		t, err := perf.ScaleTargetFromGen(cfg)
		if err != nil {
			fatal(err)
		}
		targets = append(targets, t)
	}

	rep, err := perf.RunScale(targets, workerSet(maxWorkers), repeats)
	if err != nil {
		fatal(err)
	}
	rep.WriteTable(stdout)
	if out != "" {
		writeJSONFile(stdout, out, rep.WriteJSON)
	}
	if verify {
		failed := false
		for _, p := range rep.Programs {
			for _, pt := range p.Points {
				if !pt.Identical {
					failed = true
					log.Error("verify failed", "bench", p.Name, "workers", pt.Workers,
						"reason", "result diverges from serial")
				}
			}
		}
		if failed {
			fatal(fmt.Errorf("verify: results diverged across worker counts"))
		}
		fmt.Fprintln(stdout, "verify: results byte-identical at every worker count")
	}
}

// workerSet expands a maximum worker count into the measured set: powers of
// two up to max, plus max itself when it is not a power of two.
func workerSet(max int) []int {
	if max <= 0 {
		max = 8
	}
	var set []int
	for w := 1; w < max; w *= 2 {
		set = append(set, w)
	}
	return append(set, max)
}

// writeJSONFile writes a report through enc and notes the path on stdout.
func writeJSONFile(stdout io.Writer, path string, enc func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := enc(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(stdout, "\nwrote %s\n", path)
}

func analyzeSuite(opts pta.Options) []*report.BenchStats {
	var all []*report.BenchStats
	for _, p := range bench.Suite {
		prog, err := bench.Load(p.Name)
		if err != nil {
			fatal(err)
		}
		res, err := pta.Analyze(prog, opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", p.Name, err))
		}
		bs := report.Compute(p.Name, res)
		bs.Description = p.Description
		all = append(all, bs)
	}
	return all
}

func runTables(w io.Writer, n int) {
	all := analyzeSuite(pta.Options{})
	switch n {
	case 0:
		report.WriteAll(w, all)
	case 2:
		report.WriteTable2(w, all)
	case 3:
		report.WriteTable3(w, all)
	case 4:
		report.WriteTable4(w, all)
	case 5:
		report.WriteTable5(w, all)
	case 6:
		report.WriteTable6(w, all)
	default:
		fatal(fmt.Errorf("no such table %d (want 2-6)", n))
	}
}

func runLivc(w io.Writer) {
	prog, err := bench.Load("livc")
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "livc: %d functions, %d address-taken, 3 indirect call sites\n",
		len(prog.Functions), baseline.AddrTakenCount(prog))
	sizes, err := baseline.CompareFnPtrStrategies(prog)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(w, "\nInvocation graph sizes by function-pointer strategy (paper: 203 / 589 / 619):")
	fmt.Fprintf(w, "  %-22s %6d nodes (R=%d A=%d)\n", "precise (points-to):",
		sizes.Precise.Nodes, sizes.Precise.Recursive, sizes.Precise.Approximate)
	fmt.Fprintf(w, "  %-22s %6d nodes (R=%d A=%d)\n", "address-taken:",
		sizes.AddrTaken.Nodes, sizes.AddrTaken.Recursive, sizes.AddrTaken.Approximate)
	fmt.Fprintf(w, "  %-22s %6d nodes (R=%d A=%d)\n", "all functions:",
		sizes.AllFuncs.Nodes, sizes.AllFuncs.Recursive, sizes.AllFuncs.Approximate)
}

func runAblation(w io.Writer) {
	fmt.Fprintln(w, "Ablations: average points-to pairs per indirect reference (Table 3 Avg)")
	fmt.Fprintln(w, "and definite resolutions (1D column), per configuration.")
	fmt.Fprintln(w)
	configs := []struct {
		name string
		opts pta.Options
	}{
		{"paper algorithm", pta.Options{}},
		{"no definite info", pta.Options{NoDefinite: true}},
		{"single array loc", pta.Options{SingleArrayLoc: true}},
		{"context-insensitive", pta.Options{ContextInsensitive: true}},
	}
	type row struct {
		avg  float64
		oneD int
		rep  int
	}
	results := make(map[string][]row)
	var names []string
	for _, p := range bench.Suite {
		names = append(names, p.Name)
	}
	for _, cfg := range configs {
		all := analyzeSuite(cfg.opts)
		for i, bs := range all {
			results[names[i]] = append(results[names[i]], row{
				avg:  bs.Indirect.Avg(),
				oneD: bs.Indirect.Norm.OneD + bs.Indirect.Arr.OneD,
				rep:  bs.Indirect.ScalarRep,
			})
		}
	}
	fmt.Fprintf(w, "%-11s", "Benchmark")
	for _, c := range configs {
		fmt.Fprintf(w, "  %-22s", c.name)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-11s", "")
	for range configs {
		fmt.Fprintf(w, "  %-22s", "avg / 1D / replace")
	}
	fmt.Fprintln(w)
	for _, n := range names {
		fmt.Fprintf(w, "%-11s", n)
		for _, r := range results[n] {
			fmt.Fprintf(w, "  %-22s", fmt.Sprintf("%.2f / %d / %d", r.avg, r.oneD, r.rep))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\nFlow-insensitive (Andersen-style) baseline: avg targets per indirect ref")
	for _, n := range names {
		prog, err := bench.Load(n)
		if err != nil {
			fatal(err)
		}
		and := baseline.Andersen(prog)
		fmt.Fprintf(w, "  %-11s %.2f (in %d passes)\n", n, and.AvgTargetsPerIndirectRef(), and.Iterations)
	}
}
