// ptabench regenerates the paper's evaluation (§6): Tables 2-6 over the
// 17-benchmark suite, the livc function-pointer case study, and the
// ablation comparisons described in DESIGN.md.
//
// Usage:
//
//	ptabench            # all tables
//	ptabench -table 3   # one table
//	ptabench -livc      # the function-pointer strategy experiment
//	ptabench -ablation  # precision ablations (definite info, arrays, context)
//	ptabench -perf      # wall-time/memoization report (serial vs parallel vs
//	                    # unmemoized); -out writes BENCH_pta.json, -verify
//	                    # exits nonzero on divergence or a cold memo cache
//	ptabench -trace F   # trace the suite (one Perfetto process per program)
//
// Profiling flags usable with any mode: -cpuprofile, -memprofile,
// -debug-addr (net/http/pprof).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/obsv"
	"repro/internal/perf"
	"repro/internal/pta"
	"repro/internal/report"
)

func main() {
	var (
		tableN   = flag.Int("table", 0, "print only the given table (2-6)")
		livc     = flag.Bool("livc", false, "run the livc function-pointer experiment")
		ablation = flag.Bool("ablation", false, "run the precision ablations")
		perfMode = flag.Bool("perf", false, "run the performance report (wall time, memoization, parallel speedup)")
		workers  = flag.Int("workers", 0, "worker pool size for the parallel perf runs (0 = GOMAXPROCS)")
		repeats  = flag.Int("repeats", 3, "timing repetitions per variant (best kept)")
		progs    = flag.String("progs", "", "comma-separated benchmark names for -perf/-trace (default: all)")
		out      = flag.String("out", "", "also write the -perf report as JSON to this file")
		verify   = flag.Bool("verify", false, "with -perf: exit 1 if any variant diverges or no program hits the memo cache")

		traceOut   = flag.String("trace", "", "trace the suite and write Chrome trace_event JSON to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this address")
	)
	flag.Parse()

	prof, err := obsv.StartProfiles(*cpuprofile, *memprofile, *debugAddr)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fatal(err)
		}
	}()

	switch {
	case *traceOut != "":
		runTrace(*traceOut, *progs, *workers)
	case *perfMode:
		runPerf(*progs, *workers, *repeats, *out, *verify)
	case *livc:
		runLivc()
	case *ablation:
		runAblation()
	default:
		runTables(*tableN)
	}
}

// runTrace analyzes the selected benchmarks with tracing enabled and writes
// one Chrome trace file with a Perfetto process per program.
func runTrace(path, progs string, workers int) {
	var names []string
	if progs != "" {
		names = strings.Split(progs, ",")
	}
	procs, err := perf.TracePrograms(names, workers)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := obsv.WriteChromeTraceProcs(f, procs...); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	var events int
	for _, p := range procs {
		events += len(p.Events)
	}
	fmt.Printf("traced %d programs (%d events) to %s\n", len(procs), events, path)
}

// runPerf times the suite under the serial, parallel and unmemoized
// configurations and renders the report (optionally as JSON). With verify
// it enforces the two smoke invariants: every program's variants agree
// byte-for-byte, and the input-keyed memo cache is not universally cold.
func runPerf(progs string, workers, repeats int, out string, verify bool) {
	var names []string
	if progs != "" {
		names = strings.Split(progs, ",")
	}
	rep, err := perf.RunPerf(names, workers, repeats)
	if err != nil {
		fatal(err)
	}
	rep.WriteTable(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stdout, "\nwrote %s\n", out)
	}
	if verify {
		anyMemoHit := false
		failed := false
		for _, p := range rep.Programs {
			if !p.Identical {
				// Explain the divergence before failing: re-run the
				// variants and show where the fingerprints split and how
				// the per-function effort differed.
				failed = true
				fmt.Fprintf(os.Stderr, "verify: %s: serial, parallel and unmemoized results diverge\n", p.Name)
				if err := perf.ExplainDivergence(os.Stderr, p.Name, rep.Workers); err != nil {
					fmt.Fprintf(os.Stderr, "verify: %s: explaining divergence failed: %v\n", p.Name, err)
				}
			}
			if p.MemoHits > 0 {
				anyMemoHit = true
			}
		}
		if failed {
			fatal(fmt.Errorf("verify: results diverged (reports above)"))
		}
		if !anyMemoHit {
			fatal(fmt.Errorf("verify: memo cache was cold on every program (hit rate zero)"))
		}
		fmt.Println("verify: all variants byte-identical, memo cache warm")
	}
}

func analyzeSuite(opts pta.Options) []*report.BenchStats {
	var all []*report.BenchStats
	for _, p := range bench.Suite {
		prog, err := bench.Load(p.Name)
		if err != nil {
			fatal(err)
		}
		res, err := pta.Analyze(prog, opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", p.Name, err))
		}
		bs := report.Compute(p.Name, res)
		bs.Description = p.Description
		all = append(all, bs)
	}
	return all
}

func runTables(n int) {
	all := analyzeSuite(pta.Options{})
	w := os.Stdout
	switch n {
	case 0:
		report.WriteAll(w, all)
	case 2:
		report.WriteTable2(w, all)
	case 3:
		report.WriteTable3(w, all)
	case 4:
		report.WriteTable4(w, all)
	case 5:
		report.WriteTable5(w, all)
	case 6:
		report.WriteTable6(w, all)
	default:
		fatal(fmt.Errorf("no such table %d (want 2-6)", n))
	}
}

func runLivc() {
	prog, err := bench.Load("livc")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("livc: %d functions, %d address-taken, 3 indirect call sites\n",
		len(prog.Functions), baseline.AddrTakenCount(prog))
	sizes, err := baseline.CompareFnPtrStrategies(prog)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nInvocation graph sizes by function-pointer strategy (paper: 203 / 589 / 619):")
	fmt.Printf("  %-22s %6d nodes (R=%d A=%d)\n", "precise (points-to):",
		sizes.Precise.Nodes, sizes.Precise.Recursive, sizes.Precise.Approximate)
	fmt.Printf("  %-22s %6d nodes (R=%d A=%d)\n", "address-taken:",
		sizes.AddrTaken.Nodes, sizes.AddrTaken.Recursive, sizes.AddrTaken.Approximate)
	fmt.Printf("  %-22s %6d nodes (R=%d A=%d)\n", "all functions:",
		sizes.AllFuncs.Nodes, sizes.AllFuncs.Recursive, sizes.AllFuncs.Approximate)
}

func runAblation() {
	fmt.Println("Ablations: average points-to pairs per indirect reference (Table 3 Avg)")
	fmt.Println("and definite resolutions (1D column), per configuration.")
	fmt.Println()
	configs := []struct {
		name string
		opts pta.Options
	}{
		{"paper algorithm", pta.Options{}},
		{"no definite info", pta.Options{NoDefinite: true}},
		{"single array loc", pta.Options{SingleArrayLoc: true}},
		{"context-insensitive", pta.Options{ContextInsensitive: true}},
	}
	type row struct {
		avg  float64
		oneD int
		rep  int
	}
	results := make(map[string][]row)
	var names []string
	for _, p := range bench.Suite {
		names = append(names, p.Name)
	}
	for _, cfg := range configs {
		all := analyzeSuite(cfg.opts)
		for i, bs := range all {
			results[names[i]] = append(results[names[i]], row{
				avg:  bs.Indirect.Avg(),
				oneD: bs.Indirect.Norm.OneD + bs.Indirect.Arr.OneD,
				rep:  bs.Indirect.ScalarRep,
			})
		}
	}
	fmt.Printf("%-11s", "Benchmark")
	for _, c := range configs {
		fmt.Printf("  %-22s", c.name)
	}
	fmt.Println()
	fmt.Printf("%-11s", "")
	for range configs {
		fmt.Printf("  %-22s", "avg / 1D / replace")
	}
	fmt.Println()
	for _, n := range names {
		fmt.Printf("%-11s", n)
		for _, r := range results[n] {
			fmt.Printf("  %-22s", fmt.Sprintf("%.2f / %d / %d", r.avg, r.oneD, r.rep))
		}
		fmt.Println()
	}

	fmt.Println("\nFlow-insensitive (Andersen-style) baseline: avg targets per indirect ref")
	for _, n := range names {
		prog, err := bench.Load(n)
		if err != nil {
			fatal(err)
		}
		and := baseline.Andersen(prog)
		fmt.Printf("  %-11s %.2f (in %d passes)\n", n, and.AvgTargetsPerIndirectRef(), and.Iterations)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptabench:", err)
	os.Exit(1)
}
