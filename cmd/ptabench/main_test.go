package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// TestScaleOnBuiltin runs the scaling mode end to end on a small builtin
// benchmark: table output, JSON artifact, and -verify all succeed.
func TestScaleOnBuiltin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scale.json")
	stdout, stderr, code := runCLI(t,
		"-scale", "-progs", "hash", "-workers", "4", "-repeats", "1",
		"-out", path, "-verify")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "byte-identical at every worker count") {
		t.Errorf("missing verify confirmation in:\n%s", stdout)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		WorkerSet []int `json:"worker_set"`
		Programs  []struct {
			Name      string `json:"name"`
			Identical bool   `json:"identical"`
			Points    []struct {
				Workers int     `json:"workers"`
				WallMS  float64 `json:"wall_ms"`
				Speedup float64 `json:"speedup"`
			} `json:"points"`
		} `json:"programs"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_scale JSON does not parse: %v", err)
	}
	if want := []int{1, 2, 4}; len(rep.WorkerSet) != len(want) {
		t.Errorf("worker_set = %v, want %v", rep.WorkerSet, want)
	}
	if len(rep.Programs) != 1 || rep.Programs[0].Name != "hash" {
		t.Fatalf("programs = %+v, want one entry for hash", rep.Programs)
	}
	p := rep.Programs[0]
	if !p.Identical {
		t.Error("identical = false on a deterministic analysis")
	}
	if len(p.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(p.Points))
	}
	for _, pt := range p.Points {
		if pt.WallMS <= 0 {
			t.Errorf("workers=%d: wall_ms = %v, want > 0", pt.Workers, pt.WallMS)
		}
	}
	if p.Points[0].Speedup != 1 {
		t.Errorf("serial speedup = %v, want exactly 1", p.Points[0].Speedup)
	}
}

// TestScaleOnFile exercises the CI path: an on-disk C file (the smoke job
// feeds a ptagen-emitted one) measured through -scale-file.
func TestScaleOnFile(t *testing.T) {
	src := filepath.Join(t.TempDir(), "gen.c")
	if err := os.WriteFile(src, []byte(tinyProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runCLI(t,
		"-scale", "-scale-file", src, "-workers", "2", "-repeats", "1", "-verify")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, src) {
		t.Errorf("report does not mention the input file:\n%s", stdout)
	}
}

const tinyProgram = `
int g;
int *gp;

int touch(int *p) {
	gp = p;
	return *p;
}

int main() {
	int x;
	int (*fp)(int *);
	fp = touch;
	x = fp(&g);
	return x;
}
`

// TestScaleVerifyFailsOnDivergence can't force a real divergence (the
// analysis is deterministic), so it checks the other verify-mode exit paths:
// a bad preset and a bad file both exit nonzero with a diagnostic.
func TestScaleBadInputs(t *testing.T) {
	if _, stderr, code := runCLI(t, "-scale", "-scale-preset", "bogus"); code != 1 ||
		!strings.Contains(stderr, "unknown -scale-preset") {
		t.Errorf("bad preset: code=%d stderr=%q", code, stderr)
	}
	if _, _, code := runCLI(t, "-scale", "-scale-file", "/no/such/file.c"); code != 1 {
		t.Errorf("missing file: code=%d, want 1", code)
	}
	if _, _, code := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: code=%d, want 2", code)
	}
}

// TestPerfVerifySmoke keeps the existing -perf -verify contract covered at
// the CLI level: small program, JSON out, zero exit.
func TestPerfVerifySmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perf.json")
	stdout, stderr, code := runCLI(t,
		"-perf", "-progs", "hash", "-repeats", "1", "-out", path, "-verify")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "memo cache warm") {
		t.Errorf("missing verify confirmation in:\n%s", stdout)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("JSON artifact missing: %v", err)
	}
}
