// ptagen generates synthetic C-subset benchmark programs for the points-to
// analysis: seeded, deterministic, and guaranteed to parse through the
// project's own front end. The dials control the call-graph shape
// (depth/width), the straight-line statement mix (heap churn, struct
// walking), function-pointer dispatch density, self-recursion, struct
// nesting depth and the number of spawned pthreads.
//
// Usage:
//
//	ptagen [flags] > prog.c
//	ptagen -preset large -o prog.c -meta
//
// Flags:
//
//	-preset P        small | mid | large | xlarge base configuration
//	-seed N          RNG seed (default 1)
//	-depth N         call-tree depth
//	-width N         call-tree fan-out per node
//	-stmts N         straight-line statements per function
//	-fnptr-density F fraction of nodes dispatching through fn-ptr tables
//	-recursion F     fraction of functions that self-recurse
//	-heap-churn F    fraction of statement draws doing malloc/free
//	-struct-depth N  nesting depth of the struct chain (1..6)
//	-threads N       pthread_create spawns in main
//	-o FILE          write the program to FILE instead of stdout
//	-meta            print the generation metadata as JSON to stderr
//
// The same configuration always produces byte-identical output, so a
// (preset, seed) pair is a stable name for a corpus program.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ptagen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ptagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset  = fs.String("preset", "small", "base configuration: small|mid|large|xlarge")
		seed    = fs.Int64("seed", 0, "RNG seed")
		depth   = fs.Int("depth", 0, "call-tree depth")
		width   = fs.Int("width", 0, "call-tree fan-out per node")
		stmts   = fs.Int("stmts", 0, "straight-line statements per function")
		fnptr   = fs.Float64("fnptr-density", -1, "fraction of nodes dispatching through fn-ptr tables")
		rec     = fs.Float64("recursion", -1, "fraction of functions that self-recurse")
		churn   = fs.Float64("heap-churn", -1, "fraction of statement draws doing malloc/free")
		sdepth  = fs.Int("struct-depth", 0, "struct chain nesting depth (1..6)")
		threads = fs.Int("threads", -1, "pthread_create spawns in main")
		out     = fs.String("o", "", "write the program to this file instead of stdout")
		meta    = fs.Bool("meta", false, "print generation metadata as JSON to stderr")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "ptagen: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	cfg, ok := ptagen.Presets[*preset]
	if !ok {
		fmt.Fprintf(stderr, "ptagen: unknown preset %q (want small|mid|large|xlarge)\n", *preset)
		return 2
	}
	// Explicitly set flags override the preset's dial.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			cfg.Seed = *seed
		case "depth":
			cfg.Depth = *depth
		case "width":
			cfg.Width = *width
		case "stmts":
			cfg.StmtsPerFunc = *stmts
		case "fnptr-density":
			cfg.FnPtrDensity = *fnptr
		case "recursion":
			cfg.Recursion = *rec
		case "heap-churn":
			cfg.HeapChurn = *churn
		case "struct-depth":
			cfg.StructDepth = *sdepth
		case "threads":
			cfg.Threads = *threads
		}
	})

	src, m := ptagen.Generate(cfg)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
			fmt.Fprintln(stderr, "ptagen:", err)
			return 1
		}
	} else {
		io.WriteString(stdout, src)
	}
	if *meta {
		enc := json.NewEncoder(stderr)
		enc.SetIndent("", "  ")
		enc.Encode(m)
	}
	return 0
}
