package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestRunDeterministicStdout(t *testing.T) {
	a, _, code := runCLI(t, "-preset", "small", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	b, _, _ := runCLI(t, "-preset", "small", "-seed", "3")
	if a != b {
		t.Fatal("two runs with identical flags produced different output")
	}
	if !strings.Contains(a, "int main(") {
		t.Fatal("output has no main")
	}
}

func TestRunWritesFileAndMeta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.c")
	stdout, stderrS, code := runCLI(t, "-preset", "small", "-o", path, "-meta")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderrS)
	}
	if stdout != "" {
		t.Errorf("-o should leave stdout empty, got %d bytes", len(stdout))
	}
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(src) == 0 {
		t.Fatal("wrote empty file")
	}
	var m struct {
		Name  string `json:"name"`
		Stmts int    `json:"source_stmts"`
	}
	if err := json.Unmarshal([]byte(stderrS), &m); err != nil {
		t.Fatalf("-meta stderr is not JSON: %v\n%s", err, stderrS)
	}
	if m.Name == "" || m.Stmts == 0 {
		t.Fatalf("meta incomplete: %+v", m)
	}
}

func TestRunFlagOverridesPreset(t *testing.T) {
	base, _, _ := runCLI(t, "-preset", "small")
	wider, _, code := runCLI(t, "-preset", "small", "-width", "5")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if base == wider {
		t.Fatal("-width override had no effect on output")
	}
}

func TestRunBadArgs(t *testing.T) {
	if _, _, code := runCLI(t, "-preset", "nope"); code != 2 {
		t.Errorf("unknown preset: exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, "stray.c"); code != 2 {
		t.Errorf("stray positional arg: exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}
