// Aliaspairs reproduces the comparison of Figures 8 and 9 in the paper: the
// points-to abstraction versus exhaustive alias pairs. The alias pairs
// implied by a points-to set are derived by transitive closure; Figure 8
// shows a case where points-to avoids a spurious pair that alias-pair
// propagation reports, and Figure 9 the converse.
package main

import (
	"fmt"
	"log"

	"repro/internal/alias"
	"repro/pointsto"
)

// Figure 8: after S3, points-to holds (x,y,D) (y,w,D); the Landi/Ryder
// alias-pair algorithm also reports the spurious (**x, z) at S3.
const fig8 = `
int main() {
	int **x, *y, z, w;
	x = &y;     /* S1: (x,y,D) */
	y = &z;     /* S2: + (y,z,D) */
	y = &w;     /* S3: (x,y,D) (y,w,D) */
	return 0;
}
`

// Figure 9: after the if, points-to holds (a,b,P) (b,c,P); transitive
// closure over them implies the spurious (**a, c), which alias pairs avoid.
const fig9 = `
int main() {
	int **a, *b, c;
	int cond;
	if (cond)
		a = &b;     /* S1: (a,b,D) */
	else
		b = &c;     /* S2: (b,c,D) */
	/* S3: (a,b,P) (b,c,P) */
	return 0;
}
`

func show(name, src string) {
	a, err := pointsto.AnalyzeSource(name, src, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  points-to: %s\n", a.Result.MainOut.StringNoNull())
	fmt.Printf("  implied alias pairs (closure depth 2): %s\n",
		alias.Format(a.AliasPairs(2)))
	fmt.Println()
}

func main() {
	show("figure8.c", fig8)
	show("figure9.c", fig9)
	fmt.Println("Figure 8: the transitive closure of the points-to pairs does not")
	fmt.Println("contain (**x, z) — the spurious pair the alias-pair method reports.")
	fmt.Println("Figure 9: the closure DOES imply the spurious (**a, c), which the")
	fmt.Println("alias-pair method avoids — the trade-off §7.1 discusses.")
}
