/* Context-sensitivity demo: deref is safe from the first call site and a
 * definite NULL dereference from the second, so the merged severity is a
 * warning — bad in some but not all calling contexts. */
int deref(int *p) {
    return *p;
}
int main(void) {
    int x;
    int r;
    x = 1;
    r = deref(&x);
    r = r + deref(0);
    return r;
}
