/* Dangling stack pointer: store publishes the address of its local in a
 * global, which outlives the invocation. */
int *g;
void store(void) {
    int local;
    local = 2;
    g = &local;
}
int main(void) {
    store();
    return 0;
}
