/* Clean: the published address is a global's, which never dies. */
int g;
int *addr(void) {
    return &g;
}
int main(void) {
    int *p;
    p = addr();
    return *p;
}
