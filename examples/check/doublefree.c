/* Double free: the second free sees only already-freed storage. */
int main(void) {
    int *p;
    p = (int *) malloc(4);
    free(p);
    free(p);
    return 0;
}
