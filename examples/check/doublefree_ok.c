/* Clean: free-then-null; the second free is free(NULL), a no-op. */
int main(void) {
    int *p;
    p = (int *) malloc(4);
    free(p);
    p = 0;
    free(p);
    return 0;
}
