/* Definite NULL dereference: p can only be NULL at the load. */
int main(void) {
    int *p;
    int x;
    p = 0;
    x = *p;
    return x;
}
