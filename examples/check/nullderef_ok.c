/* Clean: p definitely points to x when dereferenced. */
int x;
int main(void) {
    int *p;
    p = &x;
    return *p;
}
