/* Use after free: p's storage is freed in main, then dereferenced in use. */
int use(int *q) {
    return *q;
}
int main(void) {
    int *p;
    p = (int *) malloc(4);
    *p = 1;
    free(p);
    return use(p);
}
