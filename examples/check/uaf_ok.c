/* Clean: the object is used only while live, and p is nulled after free. */
int main(void) {
    int *p;
    int x;
    p = (int *) malloc(4);
    *p = 1;
    x = *p;
    free(p);
    p = 0;
    return x;
}
