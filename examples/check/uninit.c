/* Dereference of a pointer with no remaining targets: leak returns the
 * address of a dead local, which the analysis drops at unmap time, so p has
 * an empty points-to set at the load. */
int *leak(void) {
    int x;
    x = 1;
    return &x;
}
int main(void) {
    int *p;
    p = leak();
    return *p;
}
