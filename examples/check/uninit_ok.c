/* Clean: the callee returns heap storage, which outlives the call. */
int *make(void) {
    int *q;
    q = (int *) malloc(4);
    *q = 1;
    return q;
}
int main(void) {
    int *p;
    p = make();
    return *p;
}
