// Dependence demonstrates §6.1's array dependence testing client: the
// points-to analysis resolves pointer-based array accesses to the arrays
// they reach, so loops whose pointers address disjoint arrays need no
// subscript test at all, and head/tail alignment makes subscripts through
// pointers comparable with direct accesses.
package main

import (
	"fmt"
	"log"

	"repro/internal/deptest"
	"repro/pointsto"
)

const src = `
double a[64], b[64];

/* The callee cannot know which arrays p and q address — only the
 * context-sensitive points-to analysis can. */
void daxpy(double *p, double *q, int n) {
	int i;
	for (i = 0; i < n; i++)
		p[i] = p[i] + 2.0 * q[i];
}

int main() {
	int i;
	daxpy(a, b, 64);      /* disjoint arrays: fully parallel */
	for (i = 0; i < 60; i++)
		a[i] = a[i + 4];  /* same array, distance 4 */
	return 0;
}
`

func main() {
	an, err := pointsto.AnalyzeSource("dep.c", src, nil)
	if err != nil {
		log.Fatal(err)
	}
	r := deptest.Run(an.Result)
	fmt.Println(r.Summary())
	fmt.Println()
	for _, l := range r.SortedLoops() {
		fmt.Printf("loop in %s at %s (induction %s, trip %d):\n",
			l.Fn.Name(), l.Loop.Pos, l.Induction.Name, l.Trip)
		for _, p := range l.Pairs {
			fmt.Printf("  %-14s [%s]  vs  %-14s [%s]  => %s",
				p.A.Ref, p.A.Sub, p.B.Ref, p.B.Sub, p.Outcome)
			if p.Outcome == deptest.Dependent {
				fmt.Printf(" (distance %d)", p.Distance)
			}
			fmt.Println()
		}
	}
}
