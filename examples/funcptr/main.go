// Funcptr reproduces the paper's Figure 6/7 walkthrough: points-to analysis
// resolves a function-pointer call site to exactly the functions the
// pointer can point to, builds the invocation graph during the analysis,
// and analyzes each target with the pointer definitely bound to it.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/pointsto"
)

// The exact program of the paper's Figure 6.
const src = `
int a, b, c;
int *pa, *pb, *pc;
int (*fp)();
int foo();
int bar();

int main() {
	int cond;
	pc = &c;
	if (cond)
		fp = foo;
	else
		fp = bar;
	/* Point A: (fp,foo,P) (fp,bar,P) (pc,c,D) */
	fp();
	/* Point B: + (pa,a,P) (pb,b,P) */
	return 0;
}

int foo() {
	int cond;
	pa = &a;
	if (cond)
		fp();        /* recursive: fp definitely points to foo here */
	/* Point C */
	return 0;
}

int bar() {
	pb = &b;
	/* Point D */
	return 0;
}
`

func main() {
	a, err := pointsto.AnalyzeSource("figure6.c", src, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Point B (end of main), as in Figure 6:")
	for _, v := range []string{"fp", "pa", "pb", "pc"} {
		fmt.Printf("  %-3s -> %s\n", v, a.PointsToString("", v))
	}

	fmt.Printf("\nfp() resolves to: %v\n", a.CallTargets("fp"))

	st := a.InvocationGraphStats()
	fmt.Printf("invocation graph: %d nodes, %d recursive, %d approximate (Figure 7(c))\n",
		st.Nodes, st.Recursive, st.Approximate)

	fmt.Println("\nInvocation graph (DOT):")
	a.WriteInvocationGraph(os.Stdout)
}
