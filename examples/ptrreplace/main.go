// Ptrreplace demonstrates the pointer-replacement transformation of §6.1:
// when q definitely points to y, the indirect reference *q can be replaced
// by a direct reference to y, reducing loads in the backend.
package main

import (
	"fmt"
	"log"

	"repro/pointsto"
)

const src = `
int main() {
	int x, y, z, c;
	int *q, *r;
	q = &y;
	x = *q;      /* q definitely points to y: replaceable by x = y */
	*q = 3;      /* replaceable by y = 3 */
	if (c)
		r = &y;
	else
		r = &z;
	x = *r;      /* r has two possible targets: NOT replaceable */
	return x;
}
`

func main() {
	a, err := pointsto.AnalyzeSource("replace.c", src, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Simplified program:")
	a.WriteSimple(log.Writer())

	reps := a.Replacements()
	fmt.Printf("replaceable indirect references: %d\n", len(reps))
	for _, r := range reps {
		fmt.Printf("  in `%s`: replace %s with %s\n", r.Stmt, r.Ref, r.Target.Name())
	}
}
