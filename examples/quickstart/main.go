// Quickstart: analyze a small C program and query points-to relationships
// through the public API.
package main

import (
	"fmt"
	"log"

	"repro/pointsto"
)

const src = `
int g;
int *gp;

void store(int **h, int *v) {
	*h = v;          /* writes through an invisible variable */
}

int main() {
	int x, y, c;
	int *p;
	if (c)
		p = &x;
	else
		p = &y;
	store(&gp, p);   /* gp now possibly points to x or y */
	gp = &g;         /* strong update: definitely g */
	return 0;
}
`

func main() {
	a, err := pointsto.AnalyzeSource("quickstart.c", src, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("After main:")
	fmt.Printf("  p  -> %s\n", a.PointsToString("main", "p"))
	fmt.Printf("  gp -> %s\n", a.PointsToString("", "gp"))

	st := a.InvocationGraphStats()
	fmt.Printf("invocation graph: %d nodes over %d call sites\n", st.Nodes, st.CallSites)
}
