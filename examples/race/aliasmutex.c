/* Aliased mutex, imprecise: pm may point to m1 or m2, so the thread's
 * lock acquires only possibly; main holds m1 definitely. The common lock
 * is merely possible — a possible race (warning). */
int g;
int flag;
pthread_mutex_t m1;
pthread_mutex_t m2;
pthread_mutex_t *pm;
long t;

void *worker(void *arg) {
    pthread_mutex_lock(pm);
    g = g + 1;
    pthread_mutex_unlock(pm);
    return 0;
}

int main(void) {
    if (flag) {
        pm = &m1;
    } else {
        pm = &m2;
    }
    pthread_create(&t, 0, worker, 0);
    pthread_mutex_lock(&m1);
    g = g + 1;
    pthread_mutex_unlock(&m1);
    pthread_join(t, 0);
    return 0;
}
