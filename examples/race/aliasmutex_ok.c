/* Clean: pm definitely points to m, so locking through the alias and
 * locking m directly acquire the same definite mutex location. */
int g;
pthread_mutex_t m;
pthread_mutex_t *pm;
long t;

void *worker(void *arg) {
    pthread_mutex_lock(pm);
    g = g + 1;
    pthread_mutex_unlock(pm);
    return 0;
}

int main(void) {
    pm = &m;
    pthread_create(&t, 0, worker, 0);
    pthread_mutex_lock(&m);
    g = g + 1;
    pthread_mutex_unlock(&m);
    pthread_join(t, 0);
    return 0;
}
