/* Function-pointer-selected entry: the thread entry is resolved through
 * the points-to results (fp -> worker1 or worker2); both candidates update
 * g unprotected while main does the same. */
int g;
int flag;
long t;

void *worker1(void *arg) {
    g = g + 1;
    return 0;
}

void *worker2(void *arg) {
    g = g + 2;
    return 0;
}

int main(void) {
    void *(*fp)(void *);
    if (flag) {
        fp = worker1;
    } else {
        fp = worker2;
    }
    pthread_create(&t, 0, fp, 0);
    g = g + 3;
    pthread_join(t, 0);
    return 0;
}
