/* Clean: whichever entry the function pointer selects, every update of g
 * holds the same mutex. */
int g;
int flag;
pthread_mutex_t m;
long t;

void *worker1(void *arg) {
    pthread_mutex_lock(&m);
    g = g + 1;
    pthread_mutex_unlock(&m);
    return 0;
}

void *worker2(void *arg) {
    pthread_mutex_lock(&m);
    g = g + 2;
    pthread_mutex_unlock(&m);
    return 0;
}

int main(void) {
    void *(*fp)(void *);
    if (flag) {
        fp = worker1;
    } else {
        fp = worker2;
    }
    pthread_create(&t, 0, fp, 0);
    pthread_mutex_lock(&m);
    g = g + 3;
    pthread_mutex_unlock(&m);
    pthread_join(t, 0);
    return 0;
}
