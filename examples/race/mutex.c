/* Wrong mutex: both sides lock, but different mutexes — the locksets
 * ({m1} vs {m2}) never intersect, so the g updates still race. */
int g;
pthread_mutex_t m1;
pthread_mutex_t m2;
long t;

void *worker(void *arg) {
    pthread_mutex_lock(&m1);
    g = g + 1;
    pthread_mutex_unlock(&m1);
    return 0;
}

int main(void) {
    pthread_create(&t, 0, worker, 0);
    pthread_mutex_lock(&m2);
    g = g + 1;
    pthread_mutex_unlock(&m2);
    pthread_join(t, 0);
    return 0;
}
