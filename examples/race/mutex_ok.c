/* Clean: both sides lock the same mutex m1 around the g update; the
 * second mutex guards unrelated state. */
int g;
int other;
pthread_mutex_t m1;
pthread_mutex_t m2;
long t;

void *worker(void *arg) {
    pthread_mutex_lock(&m1);
    g = g + 1;
    pthread_mutex_unlock(&m1);
    return 0;
}

int main(void) {
    pthread_create(&t, 0, worker, 0);
    pthread_mutex_lock(&m1);
    g = g + 1;
    pthread_mutex_unlock(&m1);
    pthread_join(t, 0);
    pthread_mutex_lock(&m2);
    other = g;
    pthread_mutex_unlock(&m2);
    return other;
}
