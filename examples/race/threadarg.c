/* Thread-argument escape: main's local counter is shared by passing its
 * address to pthread_create; the thread writes through the argument while
 * main writes the local directly before joining — a race on a stack cell. */
long t;

void *worker(void *arg) {
    int *p;
    p = (int *) arg;
    *p = 1;
    return 0;
}

int main(void) {
    int counter;
    counter = 0;
    pthread_create(&t, 0, worker, &counter);
    counter = 2;
    pthread_join(t, 0);
    return counter;
}
