/* Clean: main touches the escaped local only before the spawn and after
 * the join, when no thread is live. */
long t;

void *worker(void *arg) {
    int *p;
    p = (int *) arg;
    *p = 1;
    return 0;
}

int main(void) {
    int counter;
    counter = 0;
    pthread_create(&t, 0, worker, &counter);
    pthread_join(t, 0);
    counter = counter + 2;
    return counter;
}
