/* Unprotected global counter: the spawned thread and main both update g
 * with no lock while the thread is live — a definite write-write race. */
int g;
long t;

void *worker(void *arg) {
    g = g + 1;
    return 0;
}

int main(void) {
    pthread_create(&t, 0, worker, 0);
    g = g + 1;
    pthread_join(t, 0);
    return 0;
}
