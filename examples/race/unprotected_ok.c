/* Clean: both updates of g hold the same mutex, so the locksets'
 * definite intersection is never empty. */
int g;
pthread_mutex_t m;
long t;

void *worker(void *arg) {
    pthread_mutex_lock(&m);
    g = g + 1;
    pthread_mutex_unlock(&m);
    return 0;
}

int main(void) {
    pthread_create(&t, 0, worker, 0);
    pthread_mutex_lock(&m);
    g = g + 1;
    pthread_mutex_unlock(&m);
    pthread_join(t, 0);
    return 0;
}
