/* Context-sensitivity demo: runit() executes a trusted literal from the
 * first call and attacker-controlled environment data from the second. The
 * per-context verdicts stay separate, so the shared sink reports a warning
 * (bad in some but not all contexts), not an error. */
void runit(char *c) {
    system(c);
}
int main(void) {
    char *e;
    runit("echo ok");
    e = getenv("CMD");
    runit(e);
    return 0;
}
