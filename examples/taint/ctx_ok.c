/* Clean twin of ctx.c: both calling contexts hand runit() trusted
 * literals. */
void runit(char *c) {
    system(c);
}
int main(void) {
    runit("echo ok");
    runit("echo done");
    return 0;
}
