/* Command-line injection: an argv string flows straight into system().
 * The argv character data is seeded definitely tainted, so the flow is
 * definite in the only context and reports as an error. */
int main(int argc, char **argv) {
    char *cmd;
    cmd = argv[1];
    system(cmd);
    return 0;
}
