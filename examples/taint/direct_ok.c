/* Clean twin of direct.c: the command is a program literal, so nothing
 * attacker-controlled reaches system(). */
int main(int argc, char **argv) {
    char *cmd;
    cmd = "echo ok";
    system(cmd);
    return 0;
}
