/* Taint across a function-pointer call: the points-to analysis resolves fp
 * to run(), and the tainted argv string crosses the indirect call site into
 * run's system() sink. */
void run(char *c) {
    system(c);
}
int main(int argc, char **argv) {
    void (*fp)(char *);
    fp = &run;
    fp(argv[1]);
    return 0;
}
