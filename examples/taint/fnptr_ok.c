/* Clean twin of fnptr.c: the function pointer resolves to note(), which only
 * prints its argument as %s data — no sink receives the tainted string as a
 * command or format. */
void note(char *c) {
    printf("%s\n", c);
}
int main(int argc, char **argv) {
    void (*fp)(char *);
    fp = &note;
    fp(argv[1]);
    return 0;
}
