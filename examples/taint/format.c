/* User-controlled format string: fgets() definitely taints the buffer that
 * printf() then interprets as its format. */
int main(void) {
    char buf[16];
    fgets(buf, 16, 0);
    printf(buf);
    return 0;
}
