/* Clean twin of format.c: the format is a literal and the tainted buffer is
 * only %s data, which printf does not interpret. */
int main(void) {
    char buf[16];
    fgets(buf, 16, 0);
    printf("%s\n", buf);
    return 0;
}
