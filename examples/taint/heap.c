/* Taint through heap storage and an alias: read() fills a stack buffer,
 * strcpy() moves the bytes into malloc'd storage through p, and the alias q
 * hands the same storage to system(). */
int main(void) {
    char *p;
    char *q;
    char buf[8];
    p = (char *) malloc(8);
    q = p;
    read(0, buf, 8);
    strcpy(p, buf);
    system(q);
    return 0;
}
