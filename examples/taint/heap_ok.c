/* Clean twin of heap.c: the heap storage is filled from a literal, so the
 * aliased system() call executes trusted data. */
int main(void) {
    char *p;
    char *q;
    p = (char *) malloc(8);
    q = p;
    strcpy(p, "echo ok");
    system(q);
    return 0;
}
