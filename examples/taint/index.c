/* Attacker-controlled array subscript: the index is computed from bytes
 * read() put into the buffer. */
int main(void) {
    char buf[4];
    int a[10];
    int i;
    read(0, buf, 4);
    i = buf[0];
    a[i] = 1;
    return a[0];
}
