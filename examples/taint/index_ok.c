/* Clean twin of index.c: the subscript is a program constant; the tainted
 * buffer is never used as an index. */
int main(void) {
    char buf[4];
    int a[10];
    int i;
    read(0, buf, 4);
    i = 3;
    a[i] = 1;
    return a[0];
}
