/* quote() passes its argument through unchanged; without a sanitizer pragma
 * the taint pass walks the body and the environment string reaches
 * system(). */
char *quote(char *s) {
    return s;
}
int main(void) {
    char *e;
    char *c;
    e = getenv("CMD");
    c = quote(e);
    system(c);
    return 0;
}
