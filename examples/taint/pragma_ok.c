/* taint:sanitizes quote */
/* Clean twin of pragma.c: the pragma above declares quote() a sanitizer, so
 * the taint pass trusts it to neutralize its argument instead of walking the
 * body. */
char *quote(char *s) {
    return s;
}
int main(void) {
    char *e;
    char *c;
    e = getenv("CMD");
    c = quote(e);
    system(c);
    return 0;
}
