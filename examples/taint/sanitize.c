/* Unsanitized input reaches system(): read() definitely taints the buffer
 * and nothing clears it before the sink. */
int main(void) {
    char buf[8];
    read(0, buf, 8);
    system(buf);
    return 0;
}
