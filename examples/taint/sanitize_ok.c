/* Clean twin of sanitize.c: the recognized sanitizer strongly kills the
 * buffer's taint before the sink. */
int main(void) {
    char buf[8];
    read(0, buf, 8);
    sanitize(buf);
    system(buf);
    return 0;
}
