// Package alias derives traditional alias pairs from points-to sets (paper
// §7.1, Figures 8 and 9): the alias pairs implied by a points-to set are
// obtained by transitive closure over the points-to relationships, producing
// pairs like (*x, y) for (x,y,·) and (**x, *y)/(**x, z) for chains.
package alias

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
)

// Pair is one alias pair: two access paths that may denote the same
// location.
type Pair struct {
	A, B string
}

func (p Pair) String() string { return fmt.Sprintf("(%s,%s)", p.A, p.B) }

// normalize orders the two access paths deterministically.
func normalize(a, b string) Pair {
	if b < a {
		a, b = b, a
	}
	return Pair{a, b}
}

// FromPointsTo computes the alias pairs implied by a points-to set by
// transitive closure, up to maxDepth levels of dereference (the paper's
// examples use two). For every chain x ->^i l and y ->^j l reaching the
// same location l, the access paths *^i x and *^j y are aliased; and every
// points-to pair (x, y) yields the basic alias (*x, y).
func FromPointsTo(s ptset.Set, maxDepth int) []Pair {
	if maxDepth < 1 {
		maxDepth = 1
	}
	type reach struct {
		src   *loc.Location
		depth int
	}
	// reachers[l] = all (pointer, depth) that reach l via points-to chains.
	reachers := make(map[*loc.Location][]reach)
	// Seed: depth-1 reachability from the raw pairs.
	cur := make(map[*loc.Location][]reach)
	for _, t := range s.Triples() {
		if t.Dst.Kind == loc.Null {
			continue
		}
		r := reach{t.Src, 1}
		reachers[t.Dst] = append(reachers[t.Dst], r)
		cur[t.Dst] = append(cur[t.Dst], r)
	}
	for d := 2; d <= maxDepth; d++ {
		next := make(map[*loc.Location][]reach)
		for _, t := range s.Triples() {
			if t.Dst.Kind == loc.Null {
				continue
			}
			// Everything reaching t.Src at depth d-1 reaches t.Dst at d.
			for _, r := range cur[t.Src] {
				if r.depth == d-1 {
					nr := reach{r.src, d}
					reachers[t.Dst] = append(reachers[t.Dst], nr)
					next[t.Dst] = append(next[t.Dst], nr)
				}
			}
		}
		cur = next
	}

	deref := func(name string, depth int) string {
		if depth == 0 {
			return name
		}
		return strings.Repeat("*", depth) + name
	}

	set := make(map[Pair]bool)
	for l, rs := range reachers {
		// Each reacher aliases the plain location (unless the location is
		// anonymous like the heap).
		for _, r := range rs {
			if l.Kind == loc.Var || l.Kind == loc.Symbolic {
				set[normalize(deref(r.src.Name(), r.depth), l.Name())] = true
			}
		}
		// Each pair of distinct reachers aliases each other.
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				a, b := rs[i], rs[j]
				if a.src == b.src && a.depth == b.depth {
					continue
				}
				set[normalize(deref(a.src.Name(), a.depth), deref(b.src.Name(), b.depth))] = true
			}
		}
	}
	out := make([]Pair, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Format renders pairs space-separated, like the paper's figures.
func Format(pairs []Pair) string {
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}
