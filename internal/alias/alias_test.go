package alias

import (
	"strings"
	"testing"

	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/simplify"
)

func analyzeAndClose(t *testing.T, src string, depth int) []Pair {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	res, err := pta.Analyze(prog, pta.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return FromPointsTo(res.MainOut, depth)
}

func contains(pairs []Pair, a, b string) bool {
	want := normalize(a, b)
	for _, p := range pairs {
		if p == want {
			return true
		}
	}
	return false
}

// Figure 8 of the paper: at S3 the points-to closure must NOT contain the
// spurious (**x, z) that the alias-pair algorithm reports.
func TestFigure8NoSpuriousPair(t *testing.T) {
	pairs := analyzeAndClose(t, `
int main() {
	int **x, *y, z, w;
	x = &y;
	y = &z;
	y = &w;
	return 0;
}
`, 2)
	if contains(pairs, "**x", "z") {
		t.Errorf("spurious pair (**x,z) present: %v", Format(pairs))
	}
	for _, want := range [][2]string{{"*x", "y"}, {"*y", "w"}, {"**x", "w"}, {"**x", "*y"}} {
		if !contains(pairs, want[0], want[1]) {
			t.Errorf("missing pair (%s,%s): %v", want[0], want[1], Format(pairs))
		}
	}
}

// Figure 9: the closure of (a,b,P) (b,c,P) implies the spurious (**a, c) —
// the price of the points-to abstraction the paper discusses in §7.1.
func TestFigure9SpuriousPairFromClosure(t *testing.T) {
	pairs := analyzeAndClose(t, `
int main() {
	int **a, *b, c;
	int cond;
	if (cond)
		a = &b;
	else
		b = &c;
	return 0;
}
`, 2)
	if !contains(pairs, "**a", "c") {
		t.Errorf("expected the closure to imply (**a,c): %v", Format(pairs))
	}
	if !contains(pairs, "*a", "b") || !contains(pairs, "*b", "c") {
		t.Errorf("missing basic pairs: %v", Format(pairs))
	}
}

func TestTwoPointersSameTarget(t *testing.T) {
	pairs := analyzeAndClose(t, `
int main() {
	int x;
	int *p, *q;
	p = &x;
	q = &x;
	return 0;
}
`, 1)
	if !contains(pairs, "*p", "*q") {
		t.Errorf("aliased pointers missing (*p,*q): %v", Format(pairs))
	}
	if !contains(pairs, "*p", "x") || !contains(pairs, "*q", "x") {
		t.Errorf("basic pairs missing: %v", Format(pairs))
	}
}

func TestHeapTargetsExcludedFromNamedPairs(t *testing.T) {
	pairs := analyzeAndClose(t, `
int main() {
	int *p, *q;
	p = (int *) malloc(4);
	q = p;
	return 0;
}
`, 1)
	// p and q alias each other through the heap…
	if !contains(pairs, "*p", "*q") {
		t.Errorf("(*p,*q) missing: %v", Format(pairs))
	}
	// …but the anonymous heap location itself is not a named alias side.
	for _, p := range pairs {
		if strings.Contains(p.A+p.B, "heap") {
			t.Errorf("heap must not appear as a named access path: %v", p)
		}
	}
}

func TestDepthLimiting(t *testing.T) {
	src := `
int main() {
	int x;
	int *p;
	int **pp;
	int ***ppp;
	p = &x;
	pp = &p;
	ppp = &pp;
	return 0;
}
`
	d1 := analyzeAndClose(t, src, 1)
	d3 := analyzeAndClose(t, src, 3)
	if len(d3) <= len(d1) {
		t.Errorf("depth 3 should find more pairs than depth 1 (%d vs %d)", len(d3), len(d1))
	}
	if !contains(d3, "***ppp", "x") {
		t.Errorf("deep chain pair (***ppp,x) missing: %v", Format(d3))
	}
}

func TestFormatAndOrdering(t *testing.T) {
	pairs := []Pair{normalize("b", "a"), normalize("*q", "*p")}
	if pairs[0].A != "a" || pairs[0].B != "b" {
		t.Error("normalize should order sides")
	}
	s := Format(pairs)
	if s != "(a,b) (*p,*q)" {
		t.Errorf("Format = %q", s)
	}
}
