// Package baseline implements the comparison points of the paper's
// evaluation: an Andersen-style flow- and context-insensitive points-to
// analysis over the same abstract location domain, and the naive
// function-pointer resolution strategies (all functions / address-taken
// functions) whose invocation graph sizes §6 contrasts with the precise
// algorithm on the livc study.
package baseline

import (
	"repro/internal/cc/ast"
	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// AndersenResult is the single flow-insensitive points-to solution.
type AndersenResult struct {
	Prog  *simple.Program
	Table *loc.Table
	Sol   ptset.Set
	// Iterations is the number of global passes until the fixed point.
	Iterations int

	shell *pta.Result
}

// Andersen computes a whole-program, flow- and context-insensitive
// points-to solution: all statements are treated as may-hold constraints
// (no kills), formals are unioned with all actuals (no symbolic names — one
// global namespace), and the single solution set grows monotonically until
// fixpoint. Indirect calls are resolved against the current solution each
// pass.
func Andersen(prog *simple.Program) *AndersenResult {
	shell := pta.NewShellResult(prog, pta.Options{})
	r := &AndersenResult{
		Prog:  prog,
		Table: shell.Table,
		Sol:   ptset.New(),
		shell: shell,
	}
	for {
		r.Iterations++
		before := r.Sol.Len()
		prog.ForEachBasic(func(b *simple.Basic) { r.apply(b) })
		if r.Sol.Len() == before || r.Iterations > 10000 {
			break
		}
	}
	return r
}

// insertAll adds every (l, r) combination as a possible relationship.
func (r *AndersenResult) insertAll(lls, rls []pta.BaseLoc) {
	for _, l := range lls {
		for _, x := range rls {
			r.Sol.Insert(l.Loc, x.Loc, ptset.P)
		}
	}
}

func (r *AndersenResult) apply(b *simple.Basic) {
	switch b.Kind {
	case simple.AsgnCall:
		callee := r.Prog.Lookup(b.Callee.Name)
		if callee == nil {
			r.applyExternal(b)
			return
		}
		r.applyCall(b, callee)
	case simple.AsgnCallInd:
		fp := r.Table.VarLoc(b.FnPtr, nil)
		for _, t := range r.Sol.Targets(fp) {
			if t.Dst.Kind != loc.Func {
				continue
			}
			if callee := r.Prog.Lookup(t.Dst.Obj.Name); callee != nil {
				r.applyCall(b, callee)
			}
		}
	default:
		if b.LHS == nil {
			return
		}
		lls := pta.EvalLLocs(r.shell, b.LHS, r.Sol)
		rls := pta.EvalRLocs(r.shell, b, r.Sol)
		r.insertAll(lls, rls)
	}
}

// applyExternal models calls to functions with no body in the program the
// same way the context-sensitive analysis does: library functions that
// return one of their pointer arguments (strcpy and friends) union that
// argument's R-locations into the call LHS. Other externals contribute
// nothing to the may-point-to solution (the context-sensitive analysis
// binds their results to NULL, which reported results exclude).
func (r *AndersenResult) applyExternal(b *simple.Basic) {
	if b.Callee.Name == pta.PthreadCreate {
		r.applyPthreadCreate(b)
		return
	}
	if b.LHS == nil {
		return
	}
	idx, ok := pta.ExternalReturnsArg(b.Callee.Name)
	if !ok || idx >= len(b.Args) {
		return
	}
	var rls []pta.BaseLoc
	switch a := b.Args[idx].(type) {
	case *simple.Ref:
		rls = pta.EvalRLocsOfRef(r.shell, a, r.Sol)
	case *simple.ConstString:
		rls = []pta.BaseLoc{{Loc: r.Table.StrLoc(), Def: ptset.P}}
	}
	r.insertAll(pta.EvalLLocs(r.shell, b.LHS, r.Sol), rls)
}

// applyPthreadCreate models pthread_create(&t, attr, fn, arg) the same way
// the context-sensitive analysis does (pta's processPthreadCreate), minus
// contexts: every function the entry argument can denote is treated as
// called with arg as its single actual. A direct function name resolves
// immediately; a function-pointer expression resolves through the current
// solution each pass, like an ordinary indirect call site.
func (r *AndersenResult) applyPthreadCreate(b *simple.Basic) {
	if len(b.Args) < 4 {
		return
	}
	ref, ok := b.Args[2].(*simple.Ref)
	if !ok {
		return
	}
	var entries []*simple.Function
	if ref.Var.Kind == ast.FuncObj {
		if fn := r.Prog.Lookup(ref.Var.Name); fn != nil {
			entries = append(entries, fn)
		}
	} else {
		for _, bl := range pta.EvalRLocsOfRef(r.shell, ref, r.Sol) {
			if bl.Loc.Kind != loc.Func {
				continue
			}
			if fn := r.Prog.Lookup(bl.Loc.Obj.Name); fn != nil {
				entries = append(entries, fn)
			}
		}
	}
	for _, fn := range entries {
		if len(fn.Params) == 0 {
			continue
		}
		formal := fn.Params[0]
		if formal.Type == nil || !formal.Type.HasPointers() {
			continue
		}
		fl := []pta.BaseLoc{{Loc: r.Table.VarLoc(formal, nil), Def: ptset.D}}
		switch a := b.Args[3].(type) {
		case *simple.Ref:
			r.insertAll(fl, pta.EvalRLocsOfRef(r.shell, a, r.Sol))
		case *simple.ConstString:
			r.insertAll(fl, []pta.BaseLoc{{Loc: r.Table.StrLoc(), Def: ptset.P}})
		}
	}
}

// applyCall unions actual targets into formals and retval targets into the
// call LHS — directly, with no caller/callee name translation (the
// flow-insensitive solution has a single global namespace).
func (r *AndersenResult) applyCall(b *simple.Basic, callee *simple.Function) {
	for i, arg := range b.Args {
		if i >= len(callee.Params) {
			break
		}
		formal := callee.Params[i]
		if formal.Type == nil || !formal.Type.HasPointers() {
			continue
		}
		fl := []pta.BaseLoc{{Loc: r.Table.VarLoc(formal, nil), Def: ptset.D}}
		switch a := arg.(type) {
		case *simple.Ref:
			rls := pta.EvalRLocsOfRef(r.shell, a, r.Sol)
			r.insertAll(fl, rls)
		case *simple.ConstString:
			r.insertAll(fl, []pta.BaseLoc{{Loc: r.Table.StrLoc(), Def: ptset.P}})
		}
	}
	if b.LHS != nil && callee.RetVal != nil {
		rv := r.Table.VarLoc(callee.RetVal, nil)
		lls := pta.EvalLLocs(r.shell, b.LHS, r.Sol)
		var rls []pta.BaseLoc
		for _, t := range r.Sol.Targets(rv) {
			rls = append(rls, pta.BaseLoc{Loc: t.Dst, Def: ptset.P})
		}
		r.insertAll(lls, rls)
	}
}

// AvgTargetsPerIndirectRef computes the precision metric of Table 3 (the
// Avg column) under the flow-insensitive solution, for comparison with the
// context-sensitive result.
func (r *AndersenResult) AvgTargetsPerIndirectRef() float64 {
	refs, pairs := 0, 0
	r.Prog.ForEachBasic(func(b *simple.Basic) {
		for _, ref := range b.Refs() {
			if !ref.Deref {
				continue
			}
			refs++
			seen := make(map[*loc.Location]bool)
			for _, bl := range pta.EvalBaseLocs(r.shell, ref) {
				for _, t := range r.Sol.Targets(bl.Loc) {
					if t.Dst.Kind == loc.Null || seen[t.Dst] {
						continue
					}
					seen[t.Dst] = true
					pairs++
				}
			}
		}
	})
	if refs == 0 {
		return 0
	}
	return float64(pairs) / float64(refs)
}

// FnPtrIGSizes runs the analysis under each function-pointer resolution
// strategy and reports the resulting invocation graph statistics — the livc
// experiment of §6.
type FnPtrIGSizes struct {
	Precise, AddrTaken, AllFuncs invgraph.Stats
}

// CompareFnPtrStrategies measures invocation graph sizes under the three
// strategies.
func CompareFnPtrStrategies(prog *simple.Program) (FnPtrIGSizes, error) {
	var out FnPtrIGSizes
	for _, cfg := range []struct {
		strat pta.FnPtrStrategy
		dst   *invgraph.Stats
	}{
		{pta.Precise, &out.Precise},
		{pta.AddrTaken, &out.AddrTaken},
		{pta.AllFuncs, &out.AllFuncs},
	} {
		res, err := pta.Analyze(prog, pta.Options{FnPtr: cfg.strat})
		if err != nil {
			return out, err
		}
		*cfg.dst = res.Graph.ComputeStats()
	}
	return out, nil
}

// AddrTakenCount counts the defined functions whose address is taken.
func AddrTakenCount(prog *simple.Program) int {
	n := 0
	for _, f := range prog.Functions {
		if f.Obj.AddrTaken {
			n++
		}
	}
	return n
}
