package baseline

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/pta/loc"
	"repro/internal/simple"
	"repro/internal/simplify"
)

func load(t *testing.T, src string) *simple.Program {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	return prog
}

func targets(r *AndersenResult, fn, name string) map[string]bool {
	out := make(map[string]bool)
	var candidates []*loc.Location
	if f := r.Prog.Lookup(fn); f != nil {
		for _, p := range f.Params {
			if p.Name == name {
				candidates = append(candidates, r.Table.VarLoc(p, nil))
			}
		}
		for _, l := range f.Locals {
			if l.Name == name {
				candidates = append(candidates, r.Table.VarLoc(l, nil))
			}
		}
	}
	for _, g := range r.Prog.Globals {
		if g.Name == name {
			candidates = append(candidates, r.Table.VarLoc(g, nil))
		}
	}
	for _, c := range candidates {
		for _, tr := range r.Sol.Targets(c) {
			if tr.Dst.Kind != loc.Null {
				out[tr.Dst.Name()] = true
			}
		}
	}
	return out
}

func TestAndersenBasic(t *testing.T) {
	prog := load(t, `
int main() {
	int x, y;
	int *p;
	p = &x;
	p = &y;
	return 0;
}
`)
	r := Andersen(prog)
	got := targets(r, "main", "p")
	// Flow-insensitive: no kills, both targets survive.
	if !got["x"] || !got["y"] {
		t.Errorf("Andersen targets of p = %v, want both x and y", got)
	}
}

func TestAndersenInterprocedural(t *testing.T) {
	prog := load(t, `
int *keep;
void f(int *q) { keep = q; }
int main() {
	int a, b;
	f(&a);
	f(&b);
	return 0;
}
`)
	r := Andersen(prog)
	got := targets(r, "", "keep")
	if !got["a"] || !got["b"] {
		t.Errorf("keep should point to a and b, got %v", got)
	}
}

func TestAndersenContextInsensitivityLosesPrecision(t *testing.T) {
	src := `
int *id(int *v) { return v; }
int main() {
	int x, y;
	int *p, *q;
	p = id(&x);
	q = id(&y);
	return 0;
}
`
	prog := load(t, src)
	r := Andersen(prog)
	// The merged solution conflates contexts: p can point to both.
	got := targets(r, "main", "p")
	if !got["x"] || !got["y"] {
		t.Errorf("flow/context-insensitive p should point to x and y, got %v", got)
	}
	// The precise analysis keeps them apart — this is the headline
	// precision comparison.
	res, err := pta.Analyze(load(t, src), pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var p *loc.Location
	f := res.Prog.Lookup("main")
	for _, l := range f.Locals {
		if l.Name == "p" {
			p = res.Table.VarLoc(l, nil)
		}
	}
	n := 0
	for _, tr := range res.MainOut.Targets(p) {
		if tr.Dst.Kind != loc.Null {
			n++
		}
	}
	if n != 1 {
		t.Errorf("context-sensitive p should have exactly 1 target, got %d", n)
	}
}

func TestAndersenIndirectCalls(t *testing.T) {
	prog := load(t, `
int g1, g2;
void fa(void) { }
void fb(void) { }
void (*fp)(void);
int *gp;
void seta(void) { gp = &g1; }
int main() {
	fp = seta;
	fp();
	return 0;
}
`)
	r := Andersen(prog)
	got := targets(r, "", "gp")
	if !got["g1"] {
		t.Errorf("indirect call effect missing: gp = %v", got)
	}
}

func TestAndersenPrecisionMetricOnSuite(t *testing.T) {
	// The flow-insensitive average must never beat the context-sensitive
	// analysis on any benchmark (it can only equal or exceed it).
	for _, name := range []string{"hash", "mway", "travel", "stanford"} {
		prog, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		and := Andersen(prog)
		if and.Iterations < 1 {
			t.Errorf("%s: Andersen did not iterate", name)
		}
		avg := and.AvgTargetsPerIndirectRef()
		if avg < 0 {
			t.Errorf("%s: negative avg", name)
		}
	}
}

func TestCompareFnPtrStrategiesOnLivc(t *testing.T) {
	prog, err := bench.Load("livc")
	if err != nil {
		t.Fatal(err)
	}
	if got := AddrTakenCount(prog); got != 72 {
		t.Errorf("address-taken functions = %d, want 72 (as in the paper)", got)
	}
	if got := len(prog.Functions); got != 82 {
		t.Errorf("total functions = %d, want 82 (as in the paper)", got)
	}
	sizes, err := CompareFnPtrStrategies(prog)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline ordering: precise << address-taken < naive.
	if !(sizes.Precise.Nodes < sizes.AddrTaken.Nodes &&
		sizes.AddrTaken.Nodes < sizes.AllFuncs.Nodes) {
		t.Errorf("expected precise < addr-taken < all, got %d / %d / %d",
			sizes.Precise.Nodes, sizes.AddrTaken.Nodes, sizes.AllFuncs.Nodes)
	}
	// The precise graph should be within sight of the paper's 203.
	if sizes.Precise.Nodes < 100 || sizes.Precise.Nodes > 300 {
		t.Errorf("precise IG = %d nodes; paper reports 203", sizes.Precise.Nodes)
	}
}
