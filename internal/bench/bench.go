// Package bench provides the benchmark suite for the reproduction: 17
// synthetic C programs with the names and feature mix of the paper's Table
// 2 workloads, plus the livc function-pointer case study. The original 1994
// sources are not available, so each program is written from scratch in the
// supported C subset to exercise the characteristics the paper describes
// for it (see DESIGN.md's substitution table).
package bench

import (
	"embed"
	"fmt"
	"sort"

	"repro/internal/cc/parser"
	"repro/internal/simple"
	"repro/internal/simplify"
)

//go:embed programs/*.c
var programFS embed.FS

// Program is one benchmark.
type Program struct {
	Name        string
	Description string
}

// Suite lists the benchmarks in the paper's Table 2 order.
var Suite = []Program{
	{"genetic", "Genetic algorithm for sorting (population on the heap)."},
	{"dry", "Dhrystone-style record and string manipulation benchmark."},
	{"clinpack", "C Linpack kernels: array pointers and x[i][j] references."},
	{"config", "Exercises the features of the C language (switch-heavy)."},
	{"toplev", "Compiler-driver style option tables (arrays of pointers)."},
	{"compress", "LZW-style compressor over global tables."},
	{"mway", "m-way graph partitioning with pointer-passed partitions."},
	{"hash", "Chained hash table on the heap."},
	{"misr", "Multiple-input signature registers compared for aliasing errors."},
	{"xref", "Cross-reference tree builder (recursive heap tree)."},
	{"stanford", "Stanford baby benchmarks (queens, towers, sorting; recursive)."},
	{"fixoutput", "A simple line-oriented translator."},
	{"sim", "Local alignment similarity scores with heap matrices."},
	{"travel", "Traveling salesman with greedy heuristics."},
	{"csuite", "Vectorizer test suite: many small single-call functions."},
	{"msc", "Minimum spanning circle of points (recursive, heap points)."},
	{"lws", "Dynamic simulation of flexible water molecules (array-heavy)."},
}

// Livc is the function-pointer case study of §6: 82 functions, three global
// arrays of 24 function pointers each, three indirect call sites.
var Livc = Program{"livc", "Livermore-loops driver through function-pointer tables."}

// Source returns the C source of the named benchmark.
func Source(name string) (string, error) {
	data, err := programFS.ReadFile("programs/" + name + ".c")
	if err != nil {
		return "", fmt.Errorf("bench: unknown benchmark %q: %w", name, err)
	}
	return string(data), nil
}

// Names returns every available benchmark name (suite order, livc last).
func Names() []string {
	out := make([]string, 0, len(Suite)+1)
	for _, p := range Suite {
		out = append(out, p.Name)
	}
	out = append(out, Livc.Name)
	return out
}

// Describe returns the one-line description for a benchmark.
func Describe(name string) string {
	for _, p := range Suite {
		if p.Name == name {
			return p.Description
		}
	}
	if name == Livc.Name {
		return Livc.Description
	}
	return ""
}

// Load parses and simplifies the named benchmark.
func Load(name string) (*simple.Program, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	tu, err := parser.Parse(name+".c", src)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", name, err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", name, err)
	}
	return prog, nil
}

// AvailableOnDisk lists the embedded program files (for tests).
func AvailableOnDisk() []string {
	entries, err := programFS.ReadDir("programs")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		names = append(names, n[:len(n)-2])
	}
	sort.Strings(names)
	return names
}
