package bench

import (
	"testing"

	"repro/internal/pta"
)

// TestAllProgramsAnalyze parses, simplifies and analyzes every embedded
// benchmark, checking basic sanity of the results.
func TestAllProgramsAnalyze(t *testing.T) {
	for _, name := range AvailableOnDisk() {
		name := name
		t.Run(name, func(t *testing.T) {
			prog, err := Load(name)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if prog.Main() == nil {
				t.Fatal("benchmark has no main")
			}
			res, err := pta.Analyze(prog, pta.Options{})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if res.MainOut.IsBottom() {
				t.Error("main output is BOTTOM")
			}
			st := res.Graph.ComputeStats()
			if st.Nodes < 1 {
				t.Error("empty invocation graph")
			}
			for _, d := range res.Diags {
				t.Logf("diag: %s", d)
			}
		})
	}
}

// TestSuiteComplete checks that every benchmark named in the suite is
// present on disk once the suite is fully authored.
func TestSuiteComplete(t *testing.T) {
	have := make(map[string]bool)
	for _, n := range AvailableOnDisk() {
		have[n] = true
	}
	for _, p := range Suite {
		if !have[p.Name] {
			t.Errorf("benchmark %s missing from programs/", p.Name)
		}
	}
	if !have[Livc.Name] {
		t.Errorf("livc missing from programs/")
	}
}
