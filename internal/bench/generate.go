package bench

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig sizes a generated random program (see Generate).
type GenConfig struct {
	Globals    int // global int variables
	GlobalPtrs int // global int* variables
	Funcs      int // helper functions
	StmtsPer   int // statements per function body
	MaxDepth   int // nesting depth of if/while
	UseFnPtrs  bool
	Seed       int64
}

// DefaultGenConfig returns a medium-sized configuration.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		Globals:    4,
		GlobalPtrs: 3,
		Funcs:      3,
		StmtsPer:   12,
		MaxDepth:   2,
		UseFnPtrs:  true,
		Seed:       seed,
	}
}

// generator emits a random—but always valid and terminating—C program in
// the supported subset, exercising the pointer features the points-to
// analysis models: address-of, multi-level dereference, conditional flow,
// pointer parameters (invisible variables), heap allocation and function
// pointers. Termination is guaranteed by driving every loop and branch from
// a global counter that only decreases.
type generator struct {
	cfg GenConfig
	r   *rand.Rand
	sb  strings.Builder

	intVars []string // int-valued lvalues in scope
	ptrVars []string // int*-valued lvalues in scope
	ppVars  []string // int**-valued lvalues in scope
	funcs   []string // helper function names

	// Address-of targets inside helpers are restricted to globals so that
	// no dangling pointers escape a returning frame (that would be
	// undefined behaviour, which the interpreter oracle rejects).
	globalInts []string
	globalPtrs []string
}

// Generate produces the source of a random program.
func Generate(cfg GenConfig) string {
	g := &generator{cfg: cfg, r: rand.New(rand.NewSource(cfg.Seed))}
	g.emitHeader()
	for i := 0; i < cfg.Funcs; i++ {
		g.emitHelper(i)
	}
	if cfg.UseFnPtrs {
		g.emitFnPtrPlumbing()
	}
	g.emitMain()
	return g.sb.String()
}

func (g *generator) pf(format string, args ...any) {
	fmt.Fprintf(&g.sb, format, args...)
}

func (g *generator) emitHeader() {
	g.pf("/* generated program, seed %d */\n", g.cfg.Seed)
	g.pf("struct node { int v; struct node *next; };\n")
	g.pf("struct node *glist;\n")
	g.pf("int fuel;\n")
	for i := 0; i < g.cfg.Globals; i++ {
		g.pf("int g%d;\n", i)
		g.intVars = append(g.intVars, fmt.Sprintf("g%d", i))
		g.globalInts = append(g.globalInts, fmt.Sprintf("g%d", i))
	}
	for i := 0; i < g.cfg.GlobalPtrs; i++ {
		g.pf("int *gp%d;\n", i)
		g.ptrVars = append(g.ptrVars, fmt.Sprintf("gp%d", i))
		g.globalPtrs = append(g.globalPtrs, fmt.Sprintf("gp%d", i))
	}
	g.pf("int **gpp;\n")
	g.ppVars = append(g.ppVars, "gpp")
	g.pf("\nint tick(void) { fuel--; return fuel > 0; }\n\n")
}

// emitHelper writes one helper function taking pointer parameters.
func (g *generator) emitHelper(i int) {
	name := fmt.Sprintf("helper%d", i)
	g.funcs = append(g.funcs, name)
	g.pf("void %s(int *p, int **pp) {\n", name)
	g.pf("    int l0, l1;\n    int *lp;\n")
	saved := g.snapshot()
	g.intVars = append(g.intVars, "l0", "l1")
	g.ptrVars = append(g.ptrVars, "lp")
	g.ppVars = append(g.ppVars, "pp")
	// Parameter accesses are emitted only under explicit NULL guards; see
	// the dedicated cases in emitStmt.
	g.pf("    if (p) { l0 = *p; }\n")
	g.pf("    if (pp && *pp) { l1 = **pp; }\n")
	body := &blockCtx{depth: 0, indent: "    "}
	for k := 0; k < g.cfg.StmtsPer; k++ {
		g.emitStmt(body, i)
	}
	g.restore(saved)
	g.pf("}\n\n")
}

func (g *generator) emitFnPtrPlumbing() {
	g.pf("void (*cb)(int *, int **);\n\n")
}

type snapshotState struct{ i, p, pp int }

func (g *generator) snapshot() snapshotState {
	return snapshotState{len(g.intVars), len(g.ptrVars), len(g.ppVars)}
}

func (g *generator) restore(s snapshotState) {
	g.intVars = g.intVars[:s.i]
	g.ptrVars = g.ptrVars[:s.p]
	g.ppVars = g.ppVars[:s.pp]
}

type blockCtx struct {
	depth  int
	indent string
}

func (g *generator) pick(list []string) string { return list[g.r.Intn(len(list))] }

// emitStmt writes one random statement. helperIdx >= 0 inside helpers (to
// avoid self-calls that would not terminate), -1 in main.
func (g *generator) emitStmt(b *blockCtx, helperIdx int) {
	choice := g.r.Intn(20)
	switch {
	case choice < 4: // int assignment
		g.pf("%s%s = %s + %d;\n", b.indent, g.pick(g.intVars), g.pick(g.intVars), g.r.Intn(9))

	case choice < 8: // pointer gets address of int var (only plain names)
		pool := g.intVars
		if helperIdx >= 0 {
			pool = g.globalInts // no escaping addresses of helper locals
		}
		tgt := g.pickPlain(pool)
		if tgt == "" {
			g.pf("%s%s = %s;\n", b.indent, g.pick(g.intVars), g.pick(g.intVars))
			return
		}
		g.pf("%s%s = &%s;\n", b.indent, g.pick(g.ptrVars), tgt)

	case choice < 9: // pointer copy
		g.pf("%s%s = %s;\n", b.indent, g.pick(g.ptrVars), g.pick(g.ptrVars))

	case choice < 10: // pointer-to-pointer
		pool := g.ptrVars
		if helperIdx >= 0 {
			pool = g.globalPtrs
		}
		tgt := g.pickPlain(pool)
		if tgt != "" {
			g.pf("%s%s = &%s;\n", b.indent, g.pick(g.ppVars), tgt)
		}

	case choice < 11: // guarded write through pointer
		p := g.pick(g.ptrVars)
		g.pf("%sif (%s) { *%s = %s; }\n", b.indent, p, p, g.pick(g.intVars))

	case choice < 12: // guarded read through pointer
		p := g.pick(g.ptrVars)
		g.pf("%sif (%s) { %s = *%s; }\n", b.indent, p, g.pick(g.intVars), p)

	case choice < 13: // guarded traffic through pointer-to-pointer
		pp := g.pick(g.ppVars)
		switch g.r.Intn(3) {
		case 0:
			g.pf("%sif (%s && *%s) { %s = **%s; }\n",
				b.indent, pp, pp, g.pick(g.intVars), pp)
		case 1:
			g.pf("%sif (%s && *%s) { **%s = %s; }\n",
				b.indent, pp, pp, pp, g.pick(g.intVars))
		default:
			g.pf("%sif (%s) { %s = *%s; }\n",
				b.indent, pp, g.pick(g.ptrVars), pp)
		}

	case choice < 14: // heap allocation
		g.pf("%s%s = (int *) malloc(4);\n", b.indent, g.pick(g.ptrVars))

	case choice < 15: // heap list operations
		switch g.r.Intn(4) {
		case 0: // push
			g.pf("%s{ struct node *nn; nn = (struct node *) malloc(sizeof(struct node)); nn->v = %s; nn->next = glist; glist = nn; }\n",
				b.indent, g.pick(g.intVars))
		case 1: // pop
			g.pf("%sif (glist) { glist = glist->next; }\n", b.indent)
		case 2: // read head
			g.pf("%sif (glist) { %s = glist->v; }\n", b.indent, g.pick(g.intVars))
		default: // walk (acyclic by construction, so this terminates)
			g.pf("%s{ struct node *cur; for (cur = glist; cur; cur = cur->next) %s = %s + cur->v; }\n",
				b.indent, g.pick(g.intVars), g.pick(g.intVars))
		}

	case choice < 16 && b.depth < g.cfg.MaxDepth: // conditional
		g.pf("%sif (%s > %d) {\n", b.indent, g.pick(g.intVars), g.r.Intn(5))
		inner := &blockCtx{depth: b.depth + 1, indent: b.indent + "    "}
		n := 1 + g.r.Intn(3)
		for i := 0; i < n; i++ {
			g.emitStmt(inner, helperIdx)
		}
		if g.r.Intn(2) == 0 {
			g.pf("%s} else {\n", b.indent)
			for i := 0; i < 1+g.r.Intn(2); i++ {
				g.emitStmt(inner, helperIdx)
			}
		}
		g.pf("%s}\n", b.indent)

	case choice < 17 && b.depth < g.cfg.MaxDepth: // fuel-bounded loop
		g.pf("%swhile (tick()) {\n", b.indent)
		inner := &blockCtx{depth: b.depth + 1, indent: b.indent + "    "}
		for i := 0; i < 1+g.r.Intn(3); i++ {
			g.emitStmt(inner, helperIdx)
		}
		g.pf("%s}\n", b.indent)

	case choice < 19 && len(g.funcs) > 0: // call a helper (no self-calls)
		callee := g.r.Intn(len(g.funcs))
		if callee == helperIdx {
			g.pf("%s%s = %s;\n", b.indent, g.pick(g.intVars), g.pick(g.intVars))
			return
		}
		p := g.pick(g.ptrVars)
		pp := g.pick(g.ppVars)
		if g.cfg.UseFnPtrs && helperIdx < 0 && g.r.Intn(3) == 0 {
			g.pf("%scb = helper%d;\n", b.indent, callee)
			g.pf("%sif (cb) { cb(%s, %s); }\n", b.indent, p, pp)
			return
		}
		g.pf("%shelper%d(%s, %s);\n", b.indent, callee, p, pp)

	default:
		g.pf("%s%s = %s * 2;\n", b.indent, g.pick(g.intVars), g.pick(g.intVars))
	}
}

// pickPlain picks a variable whose name is a plain identifier (addressable
// without extra syntax).
func (g *generator) pickPlain(list []string) string {
	for tries := 0; tries < 8; tries++ {
		v := g.pick(list)
		if !strings.ContainsAny(v, "*") {
			return v
		}
	}
	return ""
}

func (g *generator) emitMain() {
	g.pf("int main() {\n")
	g.pf("    int m0, m1;\n    int *mp;\n    int **mpp;\n")
	g.pf("    fuel = 64;\n")
	g.pf("    m0 = 1;\n    m1 = 2;\n")
	g.pf("    mp = &m0;\n")
	g.pf("    mpp = &mp;\n")
	saved := g.snapshot()
	g.intVars = append(g.intVars, "m0", "m1")
	g.ptrVars = append(g.ptrVars, "mp")
	g.ppVars = append(g.ppVars, "mpp")
	body := &blockCtx{depth: 0, indent: "    "}
	for k := 0; k < g.cfg.StmtsPer*2; k++ {
		g.emitStmt(body, -1)
	}
	g.restore(saved)
	g.pf("    return m0 + m1;\n")
	g.pf("}\n")
}
