/* clinpack: the C Linpack kernels (factor/solve with daxpy/ddot/dscal),
 * following the paper's benchmark: dense arrays reached through pointer
 * parameters, with x[i][j]-style references through pointers to arrays.
 * Most indirect references resolve definitely to array locations. */

#define N 12
#define LDA 14

double aMat[LDA][N];
double bVec[N];
double xVec[N];
int ipvt[N];
double residNorm;
int seedState;

double myrand(void) {
    seedState = seedState * 1103515245 + 12345;
    return (double) ((seedState >> 8) % 1000) / 1000.0;
}

/* y = y + a*x over n elements. */
void daxpy(int n, double da, double *dx, double *dy) {
    int i;
    if (n <= 0 || da == 0.0)
        return;
    for (i = 0; i < n; i++)
        dy[i] = dy[i] + da * dx[i];
}

double ddot(int n, double *dx, double *dy) {
    int i;
    double dtemp;
    dtemp = 0.0;
    for (i = 0; i < n; i++)
        dtemp = dtemp + dx[i] * dy[i];
    return dtemp;
}

void dscal(int n, double da, double *dx) {
    int i;
    for (i = 0; i < n; i++)
        dx[i] = da * dx[i];
}

int idamax(int n, double *dx) {
    int i, itemp;
    double dmax, v;
    itemp = 0;
    dmax = fabs(dx[0]);
    for (i = 1; i < n; i++) {
        v = fabs(dx[i]);
        if (v > dmax) {
            itemp = i;
            dmax = v;
        }
    }
    return itemp;
}

/* LU factorization with partial pivoting; a is an LDA-column matrix. */
int dgefa(double (*a)[N], int n, int *pvt) {
    int info, j, k, l;
    double t;
    info = 0;
    for (k = 0; k + 1 < n; k++) {
        l = idamax(n - k, &a[k][k]) + k;
        pvt[k] = l;
        if (a[l][k] != 0.0) {
            if (l != k) {
                t = a[l][k];
                a[l][k] = a[k][k];
                a[k][k] = t;
            }
            t = -1.0 / a[k][k];
            dscal(n - k - 1, t, &a[k][k + 1]);
            for (j = k + 1; j < n; j++) {
                t = a[j][k];
                if (l != k) {
                    a[j][k] = a[j][l - l + k];
                }
                daxpy(n - k - 1, t, &a[k][k + 1], &a[j][k + 1]);
            }
        } else {
            info = k;
        }
    }
    pvt[n - 1] = n - 1;
    if (a[n - 1][n - 1] == 0.0)
        info = n - 1;
    return info;
}

void dgesl(double (*a)[N], int n, int *pvt, double *b) {
    int k, l;
    double t;
    for (k = 0; k + 1 < n; k++) {
        l = pvt[k];
        t = b[l];
        if (l != k) {
            b[l] = b[k];
            b[k] = t;
        }
        daxpy(n - k - 1, t, &a[k][k + 1], &b[k + 1]);
    }
    for (k = n - 1; k >= 0; k--) {
        b[k] = b[k] / a[k][k];
        t = -b[k];
        daxpy(k, t, &a[k][0], &b[0]);
    }
}

/* y = y + A*x: matrix-vector product accumulated column-wise. */
void dmxpy(int n, double *y, double (*a)[N], double *x) {
    int i, j;
    for (j = 0; j < n; j++) {
        for (i = 0; i < n; i++)
            y[i] = y[i] + x[j] * a[j][i];
    }
}

/* Machine epsilon estimate, as in the original clinpack. */
double epslon(double x) {
    double a, b, c, eps;
    a = 4.0 / 3.0;
    eps = 0.0;
    while (eps == 0.0) {
        b = a - 1.0;
        c = b + b + b;
        eps = fabs(c - 1.0);
    }
    return eps * fabs(x);
}

/* Infinity norm of the matrix. */
double matnorm(double (*a)[N], int n) {
    int i, j;
    double rowsum, best;
    best = 0.0;
    for (i = 0; i < n; i++) {
        rowsum = 0.0;
        for (j = 0; j < n; j++)
            rowsum = rowsum + fabs(a[i][j]);
        if (rowsum > best)
            best = rowsum;
    }
    return best;
}

/* Residual b - A*x computed into r. */
void residual(double (*a)[N], int n, double *x, double *b, double *r) {
    int i;
    for (i = 0; i < n; i++)
        r[i] = -b[i];
    dmxpy(n, r, a, x);
}

void matgen(double (*a)[N], int n, double *b) {
    int i, j;
    seedState = 1325;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++)
            a[i][j] = myrand() - 0.5;
    }
    for (i = 0; i < n; i++)
        b[i] = 0.0;
    /* diagonal dominance keeps the pivots well away from zero */
    for (i = 0; i < n; i++)
        a[i][i] = a[i][i] + (double) n;
    for (j = 0; j < n; j++) {
        for (i = 0; i < n; i++)
            b[i] = b[i] + a[j][i];
    }
}

double checksolution(double (*a)[N], int n, double *b, double *x) {
    int i;
    double norm, d;
    /* after dgesl, b holds the solution; expected all ones */
    norm = 0.0;
    for (i = 0; i < n; i++) {
        x[i] = b[i];
        d = x[i] - 1.0;
        if (d < 0.0)
            d = -d;
        if (d > norm)
            norm = d;
    }
    return norm;
}

double origB[N];
double residVec[N];

int main() {
    int info, pass, i;
    double (*ap)[N];
    double *bp;
    double eps, anorm, rnorm;
    ap = aMat;
    bp = bVec;
    for (pass = 0; pass < 3; pass++) {
        matgen(ap, N, bp);
        for (i = 0; i < N; i++)
            origB[i] = bp[i];
        info = dgefa(ap, N, ipvt);
        dgesl(ap, N, ipvt, bp);
        residNorm = checksolution(ap, N, bp, xVec);
    }
    /* residual against a freshly generated copy of the system */
    matgen(ap, N, origB);
    residual(ap, N, xVec, origB, residVec);
    rnorm = 0.0;
    for (i = 0; i < N; i++) {
        if (fabs(residVec[i]) > rnorm)
            rnorm = fabs(residVec[i]);
    }
    eps = epslon(1.0);
    anorm = matnorm(ap, N);
    printf("info %d norm %g x0 %g resid %g eps %g anorm %g\n",
           info, residNorm, xVec[0], rnorm, eps, anorm);
    return 0;
}
