/* compress: an LZW-style compressor over global code tables, following the
 * paper's benchmark: large global arrays, a chained hash over them, a small
 * amount of heap for the I/O buffers, and pointer cursors into the
 * buffers. */

#define HSIZE 257
#define MAXCODES 512
#define INSIZE 600
#define CLEAR 256

int hashTab[HSIZE];
int codeTab[HSIZE];
int prefixOf[MAXCODES];
int suffixOf[MAXCODES];
int nextCode;

char inbuf[INSIZE];   /* global input buffer */
int *outcodes;        /* heap output code stream */
int inLen, outLen;
int bitsOut;

void clearTables(void) {
    int i;
    for (i = 0; i < HSIZE; i++)
        hashTab[i] = -1;
    nextCode = CLEAR + 1;
}

int probe(int prefix, int suffix) {
    int h, step;
    h = (prefix * 31 + suffix) % HSIZE;
    if (h < 0)
        h = h + HSIZE;
    step = 1;
    while (hashTab[h] != -1) {
        if (prefixOf[hashTab[h]] == prefix && suffixOf[hashTab[h]] == suffix)
            return h;
        h = (h + step) % HSIZE;
        step = step + 2;
        if (step > HSIZE)
            step = 1;
    }
    return h;
}

void putcode(int code) {
    outcodes[outLen] = code;
    outLen++;
    bitsOut = bitsOut + 9;
    if (nextCode > 256)
        bitsOut = bitsOut + 1;
}

void compressbuf(char *src, int n) {
    int i, prefix, suffix, slot, codeNum;
    clearTables();
    putcode(CLEAR);
    prefix = src[0];
    for (i = 1; i < n; i++) {
        suffix = src[i];
        slot = probe(prefix, suffix);
        if (hashTab[slot] != -1) {
            prefix = codeTab[slot];
            continue;
        }
        putcode(prefix);
        if (nextCode < MAXCODES) {
            codeNum = nextCode;
            nextCode++;
            hashTab[slot] = codeNum;
            codeTab[slot] = codeNum;
            prefixOf[codeNum] = prefix;
            suffixOf[codeNum] = suffix;
        } else {
            clearTables();
            putcode(CLEAR);
        }
        prefix = suffix;
    }
    putcode(prefix);
}

int expandlen(int *codes, int n) {
    int i, total, code, depth;
    total = 0;
    for (i = 0; i < n; i++) {
        code = codes[i];
        if (code == CLEAR)
            continue;
        depth = 1;
        while (code > CLEAR) {
            if (depth >= MAXCODES)
                goto corrupt;   /* chain too long: corrupted table */
            code = prefixOf[code];
            depth++;
        }
        total = total + depth;
    }
    return total;
corrupt:
    return -1;
}

void geninput(void) {
    int i, v;
    char *p;
    outcodes = (int *) malloc(INSIZE * sizeof(int));
    v = 17;
    p = inbuf;
    for (i = 0; i < INSIZE; i++) {
        v = v * 69069 + 1;
        /* skewed alphabet so LZW finds repeats */
        *p = (char) ('a' + ((v >> 13) % 5));
        p = p + 1;
    }
    inLen = INSIZE;
}

int main() {
    int expanded;
    double ratio;
    geninput();
    compressbuf(inbuf, inLen);
    expanded = expandlen(outcodes, outLen);
    ratio = (double) (bitsOut / 8) / (double) inLen;
    printf("in %d codes %d bytesOut %d expanded %d ratio %g\n",
           inLen, outLen, bitsOut / 8, expanded, ratio);
    return 0;
}
