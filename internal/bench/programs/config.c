/* config: exercises the features of the C language the frontend supports —
 * following the paper's benchmark (a C feature checker): heavy on control
 * flow and statements, light on interesting pointers. */

typedef unsigned int uint_t;
typedef long bigint_t;

enum color { RED, GREEN = 3, BLUE };

struct inner {
    int a;
    char tag;
};

struct outer {
    struct inner in;
    int arr[4];
    struct outer *link;
};

union blob {
    int i;
    char c;
    double d;
};

int passCount, failCount;
int intGlobal = 5;
int arrGlobal[8] = { 1, 2, 3, 4, 5, 6, 7, 8 };
struct outer twoLevel;
char *greeting = "config";

void check(int cond, int id) {
    if (cond)
        passCount++;
    else {
        failCount++;
        printf("check %d failed\n", id);
    }
}

void arithmetic(void) {
    int a, b;
    long l;
    double d;
    a = 7;
    b = 3;
    check(a + b == 10, 1);
    check(a - b == 4, 2);
    check(a * b == 21, 3);
    check(a / b == 2, 4);
    check(a % b == 1, 5);
    check((a << 1) == 14, 6);
    check((a >> 1) == 3, 7);
    check((a & b) == 3, 8);
    check((a | b) == 7, 9);
    check((a ^ b) == 4, 10);
    check(-a == -7, 11);
    check(~0 == -1, 12);
    l = 1000000L;
    check(l * 2 == 2000000L, 13);
    d = 1.5;
    check(d + d == 3.0, 14);
    check(d * 4.0 == 6.0, 15);
}

void comparisons(void) {
    int a, b;
    a = 2;
    b = 5;
    check(a < b, 20);
    check(b > a, 21);
    check(a <= 2, 22);
    check(b >= 5, 23);
    check(a != b, 24);
    check(a == 2, 25);
    check(!(a == b), 26);
    check(a < b && b < 10, 27);
    check(a > b || b == 5, 28);
}

void conditionals(void) {
    int x, y;
    x = 10;
    if (x > 5)
        y = 1;
    else
        y = 2;
    check(y == 1, 30);
    y = x > 5 ? 3 : 4;
    check(y == 3, 31);
    if (x == 10) {
        if (x != 10)
            y = 9;
        else
            y = 5;
    }
    check(y == 5, 32);
}

void loops(void) {
    int i, s, n;
    s = 0;
    for (i = 0; i < 10; i++)
        s += i;
    check(s == 45, 40);
    s = 0;
    i = 0;
    while (i < 5) {
        s += 2;
        i++;
    }
    check(s == 10, 41);
    s = 0;
    i = 0;
    do {
        s++;
        i++;
    } while (i < 3);
    check(s == 3, 42);
    s = 0;
    for (i = 0; i < 20; i++) {
        if (i == 2)
            continue;
        if (i == 6)
            break;
        s += i;
    }
    check(s == 0 + 1 + 3 + 4 + 5, 43);
    n = 0;
    for (i = 0; i < 4; i++) {
        int j;
        for (j = 0; j < 4; j++) {
            if (j > i)
                n++;
        }
    }
    check(n == 6, 44);
}

void switches(void) {
    int v, r, i;
    r = 0;
    for (i = 0; i < 6; i++) {
        v = i;
        switch (v) {
        case 0:
            r += 1;
            break;
        case 1:
        case 2:
            r += 10;
            break;
        case 3:
            r += 100;
            /* fallthrough */
        case 4:
            r += 1000;
            break;
        default:
            r += 10000;
        }
    }
    check(r == 1 + 10 + 10 + 1100 + 1000 + 10000, 50);
}

void enums(void) {
    enum color c;
    c = GREEN;
    check(c == 3, 60);
    check(BLUE == 4, 61);
    check(RED == 0, 62);
}

void structsunions(void) {
    struct outer o;
    struct outer *po;
    union blob u;
    o.in.a = 4;
    o.in.tag = 'x';
    o.arr[0] = 10;
    o.arr[3] = 13;
    o.link = &twoLevel;
    po = &o;
    check(po->in.a == 4, 70);
    check((*po).arr[0] == 10, 71);
    po->link->in.a = 8;
    check(twoLevel.in.a == 8, 72);
    u.i = 65;
    check(u.i == 65, 73);
    u.c = 'B';
    check(u.c == 'B', 74);
}

void pointers(void) {
    int x, y;
    int *p;
    int **pp;
    x = 1;
    y = 2;
    p = &x;
    pp = &p;
    check(*p == 1, 80);
    *p = 5;
    check(x == 5, 81);
    **pp = 7;
    check(x == 7, 82);
    *pp = &y;
    check(*p == 2, 83);
}

void arrays(void) {
    int local[5];
    int i, s;
    int *p;
    for (i = 0; i < 5; i++)
        local[i] = i * i;
    s = 0;
    for (i = 0; i < 5; i++)
        s += local[i];
    check(s == 0 + 1 + 4 + 9 + 16, 90);
    p = local;
    check(p[2] == 4, 91);
    check(*(p + 3) == 9, 92);
    check(arrGlobal[7] == 8, 93);
}

void casts(void) {
    double d;
    int i;
    char c;
    uint_t u;
    bigint_t b;
    d = 3.9;
    i = (int) d;
    check(i == 3, 100);
    c = (char) (65 + 1);
    check(c == 'B', 101);
    u = (uint_t) 12;
    check(u == 12, 102);
    b = (bigint_t) i * 1000;
    check(b == 3000, 103);
}

void incdec(void) {
    int i, j;
    i = 5;
    j = i++;
    check(j == 5 && i == 6, 110);
    j = ++i;
    check(j == 7 && i == 7, 111);
    j = i--;
    check(j == 7 && i == 6, 112);
    j = --i;
    check(j == 5 && i == 5, 113);
}

void compound(void) {
    int a;
    a = 10;
    a += 5;
    check(a == 15, 120);
    a -= 3;
    check(a == 12, 121);
    a *= 2;
    check(a == 24, 122);
    a /= 4;
    check(a == 6, 123);
    a %= 4;
    check(a == 2, 124);
    a <<= 3;
    check(a == 16, 125);
    a >>= 1;
    check(a == 8, 126);
    a |= 3;
    check(a == 11, 127);
    a &= 9;
    check(a == 9, 128);
    a ^= 1;
    check(a == 8, 129);
}

int fib(int n) {
    if (n < 2)
        return n;
    return fib(n - 1) + fib(n - 2);
}

void recursion(void) {
    check(fib(10) == 55, 130);
}

void sizes(void) {
    check(sizeof(char) == 1, 140);
    check(sizeof(int) == 4, 141);
    check(sizeof(double) == 8, 142);
    check(sizeof(struct inner) >= 5, 143);
}

void strings(void) {
    char buf[16];
    strcpy(buf, "hello");
    check(strlen(buf) == 5, 150);
    check(strcmp(buf, "hello") == 0, 151);
    check(greeting[0] == 'c', 152);
}

/* -- function pointer features -- */

int fadd(int a, int b) { return a + b; }
int fsub(int a, int b) { return a - b; }
int fmul(int a, int b) { return a * b; }

int (*optable[3])(int, int) = { fadd, fsub, fmul };

int apply(int (*op)(int, int), int a, int b) {
    return op(a, b);
}

void funcptrs(void) {
    int (*fp)(int, int);
    int i, r;
    fp = fadd;
    check(fp(2, 3) == 5, 160);
    fp = optable[2];
    check((*fp)(2, 3) == 6, 161);
    check(apply(fsub, 9, 4) == 5, 162);
    r = 0;
    for (i = 0; i < 3; i++)
        r += optable[i](6, 3);
    check(r == 9 + 3 + 18, 163);
}

/* -- multidimensional arrays -- */

void multidim(void) {
    int m[3][4];
    int i, j, s;
    int *flat;
    for (i = 0; i < 3; i++) {
        for (j = 0; j < 4; j++)
            m[i][j] = i * 10 + j;
    }
    check(m[2][3] == 23, 170);
    s = 0;
    for (i = 0; i < 3; i++) {
        for (j = 0; j < 4; j++)
            s += m[i][j];
    }
    check(s == (0+1+2+3) + (10+11+12+13) + (20+21+22+23), 171);
    flat = &m[1][0];
    check(flat[2] == 12, 172);
}

/* -- nested structures and arrays of structures -- */

struct leaf { int v; };
struct branch { struct leaf leaves[3]; struct leaf *pick; };
struct tree2 { struct branch left; struct branch right; };

void nesting(void) {
    struct tree2 t;
    struct branch *b;
    int i;
    for (i = 0; i < 3; i++) {
        t.left.leaves[i].v = i;
        t.right.leaves[i].v = 10 + i;
    }
    t.left.pick = &t.left.leaves[1];
    t.right.pick = &t.right.leaves[2];
    check(t.left.pick->v == 1, 180);
    check(t.right.pick->v == 12, 181);
    b = &t.right;
    b->pick = &b->leaves[0];
    check(t.right.pick->v == 10, 182);
}

/* -- ternary chains and the comma operator -- */

int sign3(int v) {
    return v < 0 ? -1 : v > 0 ? 1 : 0;
}

void ternaries(void) {
    int a, b;
    check(sign3(-5) == -1, 190);
    check(sign3(0) == 0, 191);
    check(sign3(7) == 1, 192);
    a = (b = 3, b + 1);
    check(a == 4 && b == 3, 193);
    a = 1 ? 2 ? 3 : 4 : 5;
    check(a == 3, 194);
}

/* -- pointer comparisons and arithmetic over arrays -- */

void ptrcompare(void) {
    int arr[6];
    int *lo, *hi, *mid;
    int n;
    lo = &arr[0];
    hi = &arr[5];
    mid = lo + 2;
    check(lo < hi, 200);
    check(hi > mid, 201);
    check(mid - lo == 2, 202);
    check(hi - lo == 5, 203);
    n = 0;
    for (mid = lo; mid <= hi; mid++)
        n++;
    check(n == 6, 204);
    check(lo == &arr[0], 205);
    check(lo != hi, 206);
}

/* -- typedef chains -- */

typedef int myint;
typedef myint *myintp;
typedef myintp table_t[2];

void typedefs(void) {
    myint v;
    myintp p;
    table_t tab;
    v = 11;
    p = &v;
    tab[0] = p;
    tab[1] = &v;
    check(*tab[0] == 11, 210);
    *tab[1] = 12;
    check(v == 12, 211);
}

/* -- goto features (handled by the structurer) -- */

void gotos(void) {
    int i, hits;
    hits = 0;
    for (i = 0; i < 20; i++) {
        if (i == 7)
            goto found;
        hits++;
    }
    hits = -1;
found:
    check(hits == 7, 220);

    i = 0;
again:
    i++;
    if (i < 4)
        goto again;
    check(i == 4, 221);
}

int main() {
    arithmetic();
    comparisons();
    conditionals();
    loops();
    switches();
    enums();
    structsunions();
    pointers();
    arrays();
    casts();
    incdec();
    compound();
    recursion();
    sizes();
    strings();
    funcptrs();
    multidim();
    nesting();
    ternaries();
    ptrcompare();
    typedefs();
    gotos();
    printf("pass %d fail %d\n", passCount, failCount);
    return failCount;
}
