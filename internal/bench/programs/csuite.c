/* csuite: a test suite for vectorizing compilers, following the paper's
 * benchmark: many small loop kernels, each called exactly once, so the
 * invocation graph has exactly one node per call site. */

#define N 64

double va[N], vb[N], vc[N], vd[N], ve[N];
double m1[8][8], m2[8][8];
int indexes[N];
double checksum;

void s000(void) { int i; for (i = 0; i < N; i++) va[i] = vb[i] + 1.0; }
void s001(void) { int i; for (i = 0; i < N; i++) va[i] = vb[i] * vc[i]; }
void s002(void) { int i; for (i = 1; i < N; i++) va[i] = va[i - 1] + vb[i]; }
void s003(void) { int i; for (i = 0; i < N; i++) va[i] = vb[i] - vc[i] * vd[i]; }
void s004(void) { int i; for (i = 0; i < N / 2; i++) va[2 * i] = vb[i]; }
void s005(void) { int i; for (i = 0; i < N; i++) va[i] = vb[N - 1 - i]; }
void s006(void) { int i; for (i = 0; i < N; i++) va[indexes[i]] = vb[i]; }
void s007(void) { int i; for (i = 0; i < N; i++) va[i] = vb[indexes[i]]; }

void s010(void) {
    int i;
    for (i = 0; i < N; i++) {
        if (vb[i] > 0.0)
            va[i] = vb[i];
        else
            va[i] = -vb[i];
    }
}

void s011(void) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++)
        t = t + va[i] * vb[i];
    checksum = checksum + t;
}

void s012(void) {
    int i, j;
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++)
            m1[i][j] = (double) (i + j);
    }
}

void s013(void) {
    int i, j;
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++)
            m2[j][i] = m1[i][j];
    }
}

void s014(void) {
    int i, j;
    double t;
    for (i = 0; i < 8; i++) {
        t = 0.0;
        for (j = 0; j < 8; j++)
            t = t + m1[i][j] * m2[j][i];
        va[i] = t;
    }
}

void s020(void) { int i; for (i = 0; i < N - 1; i++) va[i] = va[i + 1] * 0.5; }
void s021(void) { int i; for (i = 0; i < N; i++) { va[i] = vb[i]; vb[i] = vc[i]; } }
void s022(void) { int i; for (i = 0; i < N; i++) va[i] = va[i] + vb[i] * vc[i] + vd[i] * ve[i]; }

void s023(void) {
    int i, k;
    k = 0;
    for (i = 0; i < N; i++) {
        if (va[i] > 1000.0)
            k++;
    }
    checksum = checksum + (double) k;
}

void s024(void) {
    int i;
    for (i = 0; i < N; i = i + 4) {
        va[i] = vb[i];
        va[i + 1] = vb[i + 1];
        va[i + 2] = vb[i + 2];
        va[i + 3] = vb[i + 3];
    }
}

void s025(void) { int i; for (i = 0; i < N; i++) indexes[i] = (i * 3) % N; }

void s030(void) {
    int i;
    double mx;
    mx = va[0];
    for (i = 1; i < N; i++) {
        if (va[i] > mx)
            mx = va[i];
    }
    checksum = checksum + mx;
}

void s031(void) {
    int i;
    double mn;
    mn = va[0];
    for (i = 1; i < N; i++) {
        if (va[i] < mn)
            mn = va[i];
    }
    checksum = checksum + mn;
}

void s032(void) { int i; for (i = 0; i < N; i++) va[i] = va[i] / (vb[i] + 2.0); }
void s033(void) { int i; for (i = 2; i < N; i++) va[i] = va[i - 2] + vb[i]; }

void s034(void) {
    int i, j;
    for (i = 0; i < 8; i++) {
        for (j = 1; j < 8; j++)
            m1[i][j] = m1[i][j - 1] + m2[i][j];
    }
}

void s035(void) {
    int i;
    for (i = 0; i < N; i++) {
        va[i] = vb[i] + vc[i];
        vd[i] = va[i] * 0.25;
    }
}

void s040(void) { int i; for (i = 0; i < N; i++) ve[i] = (double) i * 0.125; }
void s041(void) { int i; for (i = 0; i < N; i++) vb[i] = ve[i] + 0.5; }
void s042(void) { int i; for (i = 0; i < N; i++) vc[i] = ve[N - 1 - i]; }
void s043(void) { int i; for (i = 0; i < N; i++) vd[i] = ve[i] * ve[i]; }

void s050(void) {
    int i;
    for (i = 0; i < N; i++) {
        while (va[i] > 8.0)
            va[i] = va[i] * 0.5;
    }
}

void s051(void) {
    int i, j;
    for (i = 0; i < N; i++) {
        j = i;
        if (j > 10)
            j = 10;
        va[i] = vb[j];
    }
}

/* -- kernels taking array pointers, as the vectorizer suite does -- */

void s060(double *a, double *b) { int i; for (i = 0; i < N; i++) a[i] = b[i] + 1.5; }
void s061(double *a, double *b) { int i; for (i = 0; i < N; i++) a[i] = a[i] * b[i]; }
void s062(double *a, double *b, double *c) { int i; for (i = 0; i < N; i++) a[i] = b[i] - c[i]; }

void s063(double *a, double *b) {
    int i;
    for (i = 1; i < N; i++)
        a[i] = a[i - 1] * 0.5 + b[i];
}

double s064(double *a) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++)
        t = t + a[i];
    return t;
}

void s065(double *dst, double *src, int n) {
    int i;
    for (i = 0; i < n; i++)
        *dst++ = *src++;
}

void s066(double *a, int *idx) { int i; for (i = 0; i < N; i++) a[idx[i]] = a[i]; }

void s067(double *a) {
    double *p, *end;
    p = a;
    end = a + N;
    while (p < end) {
        *p = *p * 0.5;
        p = p + 1;
    }
}

double collect(void) {
    int i;
    double s;
    s = checksum;
    for (i = 0; i < N; i++)
        s = s + va[i];
    return s;
}

int main() {
    s040(); s041(); s042(); s043();
    s025();
    s000(); s001(); s002(); s003();
    s004(); s005(); s006(); s007();
    s010(); s011(); s012(); s013(); s014();
    s020(); s021(); s022(); s023(); s024();
    s030(); s031(); s032(); s033(); s034(); s035();
    s050(); s051();
    s060(va, vb); s061(va, vb); s062(va, vb, vc);
    s063(va, vb);
    checksum = checksum + s064(va);
    s065(vd, ve, N);
    s066(va, indexes);
    s067(vb);
    printf("checksum %g\n", collect());
    return 0;
}
