/* dry: a Dhrystone-style synthetic benchmark of record assignment, pointer
 * chasing and string handling, following the shape of the original: global
 * record pointers, records copied by assignment, enumerations, and
 * procedures taking record pointers. */

#define LOOPS 50

enum ident { Ident1, Ident2, Ident3, Ident4, Ident5 };

struct record {
    struct record *PtrComp;
    enum ident Discr;
    enum ident EnumComp;
    int IntComp;
    char StringComp[31];
};

typedef struct record RecordType;
typedef RecordType *RecordPtr;

RecordPtr PtrGlb;
RecordPtr PtrGlbNext;
int IntGlob;
int BoolGlob;
char Char1Glob;
char Char2Glob;
int Array1Glob[51];
int Array2Glob[51][51];

int Func1(char ch1, char ch2) {
    char chLoc1, chLoc2;
    chLoc1 = ch1;
    chLoc2 = chLoc1;
    if (chLoc2 != ch2)
        return Ident1;
    return Ident2;
}

int Func2(char *str1, char *str2) {
    int intLoc;
    char chLoc;
    intLoc = 1;
    while (intLoc <= 1) {
        if (Func1(str1[intLoc], str2[intLoc + 1]) == Ident1) {
            chLoc = 'A';
            intLoc = intLoc + 1;
        } else {
            break;
        }
    }
    if (chLoc >= 'W' && chLoc <= 'Z')
        intLoc = 7;
    if (chLoc == 'X')
        return 1;
    if (strcmp(str1, str2) > 0) {
        intLoc = intLoc + 7;
        return 1;
    }
    return 0;
}

int Func3(enum ident enumParIn) {
    enum ident enumLoc;
    enumLoc = enumParIn;
    if (enumLoc == Ident3)
        return 1;
    return 0;
}

void Proc7(int intParI1, int intParI2, int *intParOut) {
    int intLoc;
    intLoc = intParI1 + 2;
    *intParOut = intParI2 + intLoc;
}

void Proc6(enum ident enumParIn, enum ident *enumParOut) {
    *enumParOut = enumParIn;
    if (!Func3(enumParIn))
        *enumParOut = Ident4;
    switch (enumParIn) {
    case Ident1:
        *enumParOut = Ident1;
        break;
    case Ident2:
        if (IntGlob > 100)
            *enumParOut = Ident1;
        else
            *enumParOut = Ident4;
        break;
    case Ident3:
        *enumParOut = Ident2;
        break;
    case Ident4:
        break;
    case Ident5:
        *enumParOut = Ident3;
        break;
    }
}

void Proc5(void) {
    Char1Glob = 'A';
    BoolGlob = 0;
}

void Proc4(void) {
    int boolLoc;
    boolLoc = Char1Glob == 'A';
    boolLoc = boolLoc | BoolGlob;
    Char2Glob = 'B';
}

void Proc3(RecordPtr *ptrParOut) {
    if (PtrGlb != 0)
        *ptrParOut = PtrGlb->PtrComp;
    else
        IntGlob = 100;
    Proc7(10, IntGlob, &PtrGlb->IntComp);
}

void Proc2(int *intParIO) {
    int intLoc;
    enum ident enumLoc;
    intLoc = *intParIO + 10;
    for (;;) {
        if (Char1Glob == 'A') {
            intLoc = intLoc - 1;
            *intParIO = intLoc - IntGlob;
            enumLoc = Ident1;
        }
        if (enumLoc == Ident1)
            break;
    }
}

void Proc1(RecordPtr ptrParIn) {
    RecordPtr nextRec;
    nextRec = ptrParIn->PtrComp;
    *ptrParIn->PtrComp = *PtrGlb;
    ptrParIn->IntComp = 5;
    nextRec->IntComp = ptrParIn->IntComp;
    nextRec->PtrComp = ptrParIn->PtrComp;
    Proc3(&nextRec->PtrComp);
    if (nextRec->Discr == Ident1) {
        nextRec->IntComp = 6;
        Proc6(ptrParIn->EnumComp, &nextRec->EnumComp);
        nextRec->PtrComp = PtrGlb->PtrComp;
        Proc7(nextRec->IntComp, 10, &nextRec->IntComp);
    } else {
        *ptrParIn = *ptrParIn->PtrComp;
    }
}

void Proc8(int *array1Par, int *array2Par, int intParI1, int intParI2) {
    int intLoc, intIndex;
    intLoc = intParI1 + 5;
    array1Par[intLoc] = intParI2;
    array1Par[intLoc + 1] = array1Par[intLoc];
    array1Par[intLoc + 30] = intLoc;
    for (intIndex = intLoc; intIndex <= intLoc + 1; intIndex++)
        array2Par[intIndex] = intLoc;
    array2Par[intLoc] = array2Par[intLoc] + 1;
    IntGlob = 5;
}

int main() {
    int i, intLoc1, intLoc2, intLoc3;
    char charIndex;
    enum ident enumLoc;
    char string1Loc[31];
    char string2Loc[31];

    PtrGlbNext = (RecordPtr) malloc(sizeof(RecordType));
    PtrGlb = (RecordPtr) malloc(sizeof(RecordType));
    PtrGlb->PtrComp = PtrGlbNext;
    PtrGlb->Discr = Ident1;
    PtrGlb->EnumComp = Ident3;
    PtrGlb->IntComp = 40;
    strcpy(PtrGlb->StringComp, "DHRYSTONE PROGRAM, SOME STRING");
    strcpy(string1Loc, "DHRYSTONE PROGRAM, 1'ST STRING");

    for (i = 0; i < LOOPS; i++) {
        Proc5();
        Proc4();
        intLoc1 = 2;
        intLoc2 = 3;
        strcpy(string2Loc, "DHRYSTONE PROGRAM, 2'ND STRING");
        enumLoc = Ident2;
        BoolGlob = !Func2(string1Loc, string2Loc);
        while (intLoc1 < intLoc2) {
            intLoc3 = 5 * intLoc1 - intLoc2;
            Proc7(intLoc1, intLoc2, &intLoc3);
            intLoc1 = intLoc1 + 1;
        }
        Proc8(Array1Glob, &Array2Glob[0][0], intLoc1, intLoc3);
        Proc1(PtrGlb);
        for (charIndex = 'A'; charIndex <= Char2Glob; charIndex++) {
            if (enumLoc == Func1(charIndex, 'C'))
                Proc6(Ident1, &enumLoc);
        }
        intLoc3 = intLoc2 * intLoc1;
        intLoc2 = intLoc3 / intLoc1;
        intLoc2 = 7 * (intLoc3 - intLoc2) - intLoc1;
        Proc2(&intLoc1);
    }
    printf("IntGlob %d BoolGlob %d Char2 %c Int1 %d\n",
           IntGlob, BoolGlob, Char2Glob, intLoc1);
    return 0;
}
