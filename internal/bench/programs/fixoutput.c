/* fixoutput: a simple line-oriented translator in the spirit of the
 * paper's benchmark: buffer scanning with a small number of pointers that
 * resolve definitely. */

#define LINEMAX 128
#define NLINES 24

char inbuf[NLINES * LINEMAX];
char outbuf[NLINES * LINEMAX];
int inlen, outlen;

void emit(char c) {
    outbuf[outlen] = c;
    outlen++;
}

int isblank_(char c) {
    return c == ' ' || c == '\t';
}

/* Collapse runs of blanks to a single space. */
int squeeze(char *src, int n) {
    int i, removed, inrun;
    char c;
    removed = 0;
    inrun = 0;
    for (i = 0; i < n; i++) {
        c = src[i];
        if (isblank_(c)) {
            if (inrun) {
                removed++;
                continue;
            }
            inrun = 1;
            emit(' ');
        } else {
            inrun = 0;
            emit(c);
        }
    }
    return removed;
}

/* Translate tabs to two spaces using a cursor pointer. */
int detab(void) {
    char *p;
    int i, tabs;
    tabs = 0;
    p = &outbuf[0];
    for (i = 0; i < outlen; i++) {
        if (*p == '\t') {
            *p = ' ';
            tabs++;
        }
        p = p + 1;
    }
    return tabs;
}

void fill(void) {
    int i, col;
    char c;
    inlen = 0;
    for (i = 0; i < NLINES; i++) {
        for (col = 0; col < 40; col++) {
            c = (char) ('a' + ((i + col) % 26));
            if (col % 7 == 3)
                c = ' ';
            if (col % 11 == 5)
                c = '\t';
            inbuf[inlen] = c;
            inlen++;
        }
        inbuf[inlen] = '\n';
        inlen++;
    }
}

int main() {
    int removed, tabs;
    fill();
    removed = squeeze(&inbuf[0], inlen);
    tabs = detab();
    printf("in %d out %d removed %d tabs %d\n", inlen, outlen, removed, tabs);
    return 0;
}
