/* genetic: a genetic algorithm that evolves permutations toward sorted
 * order, following the paper's description of its `genetic` benchmark.
 * Pointer traffic flows through formal parameters into heap-allocated
 * individuals, matching the paper's observation that most relationships
 * arise from formals. */

#define POP 16
#define GENES 12
#define GENERATIONS 30

struct individual {
    int genes[GENES];
    int fitness;
};

struct individual *population[POP];
struct individual *scratch[POP];
int seed;
int generations;

int nextrand(void) {
    seed = seed * 1103515245 + 12345;
    return (seed >> 8) & 0x7fff;
}

struct individual *newind(void) {
    struct individual *ind;
    int i, j, t;
    ind = (struct individual *) malloc(sizeof(struct individual));
    for (i = 0; i < GENES; i++)
        ind->genes[i] = i;
    /* random shuffle */
    for (i = GENES - 1; i > 0; i--) {
        j = nextrand() % (i + 1);
        t = ind->genes[i];
        ind->genes[i] = ind->genes[j];
        ind->genes[j] = t;
    }
    ind->fitness = 0;
    return ind;
}

/* Fitness: number of adjacent in-order pairs. */
int evaluate(struct individual *ind) {
    int i, f;
    f = 0;
    for (i = 0; i + 1 < GENES; i++) {
        if (ind->genes[i] < ind->genes[i + 1])
            f++;
    }
    ind->fitness = f;
    return f;
}

/* Tournament selection: pick the fitter of two random individuals. */
struct individual *select1(struct individual **pop) {
    struct individual *a, *b;
    a = pop[nextrand() % POP];
    b = pop[nextrand() % POP];
    if (a->fitness >= b->fitness)
        return a;
    return b;
}

/* Order crossover of two parents into a fresh child. */
struct individual *crossover(struct individual *ma, struct individual *pa) {
    struct individual *child;
    int used[GENES];
    int i, k, cut, g;
    child = (struct individual *) malloc(sizeof(struct individual));
    for (i = 0; i < GENES; i++)
        used[i] = 0;
    cut = nextrand() % GENES;
    for (i = 0; i < cut; i++) {
        g = ma->genes[i];
        child->genes[i] = g;
        used[g] = 1;
    }
    k = cut;
    for (i = 0; i < GENES; i++) {
        g = pa->genes[i];
        if (!used[g]) {
            child->genes[k] = g;
            used[g] = 1;
            k++;
        }
    }
    child->fitness = 0;
    return child;
}

void mutate(struct individual *ind) {
    int i, j, t;
    if (nextrand() % 100 < 20) {
        i = nextrand() % GENES;
        j = nextrand() % GENES;
        t = ind->genes[i];
        ind->genes[i] = ind->genes[j];
        ind->genes[j] = t;
    }
}

/* Roulette-wheel selection: probability proportional to fitness+1. */
struct individual *roulette(struct individual **pop) {
    int total, spin, i;
    total = 0;
    for (i = 0; i < POP; i++)
        total = total + pop[i]->fitness + 1;
    spin = nextrand() % total;
    for (i = 0; i < POP; i++) {
        spin = spin - (pop[i]->fitness + 1);
        if (spin < 0)
            return pop[i];
    }
    return pop[POP - 1];
}

/* Population diversity: pairwise gene disagreements (sampled). */
int diversity(struct individual **pop) {
    int i, k, d;
    struct individual *a, *b;
    d = 0;
    for (i = 0; i + 1 < POP; i = i + 2) {
        a = pop[i];
        b = pop[i + 1];
        for (k = 0; k < GENES; k++) {
            if (a->genes[k] != b->genes[k])
                d++;
        }
    }
    return d;
}

struct individual *fittest(struct individual **pop) {
    struct individual *bestp;
    int i;
    bestp = pop[0];
    for (i = 1; i < POP; i++) {
        if (pop[i]->fitness > bestp->fitness)
            bestp = pop[i];
    }
    return bestp;
}

void step(void) {
    struct individual *ma, *pa, *child;
    int i;
    for (i = 0; i < POP; i++) {
        if (i % 2 == 0) {
            ma = select1(population);
            pa = select1(population);
        } else {
            ma = roulette(population);
            pa = roulette(population);
        }
        child = crossover(ma, pa);
        mutate(child);
        evaluate(child);
        scratch[i] = child;
    }
    /* elitism: keep the best of the old population in slot 0 */
    scratch[0] = fittest(population);
    for (i = 0; i < POP; i++)
        population[i] = scratch[i];
    generations++;
}

int main() {
    int i, g;
    struct individual *top;
    seed = 42;
    for (i = 0; i < POP; i++) {
        population[i] = newind();
        evaluate(population[i]);
    }
    for (g = 0; g < GENERATIONS; g++)
        step();
    top = fittest(population);
    printf("generations %d best fitness %d of %d diversity %d\n",
           generations, top->fitness, GENES - 1, diversity(population));
    return 0;
}
