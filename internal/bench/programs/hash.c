/* hash: a chained hash table on the heap, mirroring the paper's `hash`
 * benchmark: small, heap-directed pointers, pointer parameters. */

#define NBUCKETS 31

struct entry {
    int key;
    int value;
    struct entry *next;
};

struct entry *buckets[NBUCKETS];
int nstored;

int hashkey(int key) {
    int h;
    h = key % NBUCKETS;
    if (h < 0)
        h = h + NBUCKETS;
    return h;
}

struct entry *mkentry(int key, int value) {
    struct entry *e;
    e = (struct entry *) malloc(sizeof(struct entry));
    e->key = key;
    e->value = value;
    e->next = 0;
    return e;
}

void insert(int key, int value) {
    struct entry *e;
    int h;
    h = hashkey(key);
    e = mkentry(key, value);
    e->next = buckets[h];
    buckets[h] = e;
    nstored++;
}

struct entry *lookup(int key) {
    struct entry *p;
    int h;
    h = hashkey(key);
    p = buckets[h];
    while (p) {
        if (p->key == key)
            return p;
        p = p->next;
    }
    return 0;
}

int update(int key, int value) {
    struct entry *p;
    p = lookup(key);
    if (p) {
        p->value = value;
        return 1;
    }
    insert(key, value);
    return 0;
}

int sumchain(struct entry *head) {
    int s;
    struct entry *p;
    s = 0;
    p = head;
    while (p) {
        s = s + p->value;
        p = p->next;
    }
    return s;
}

int total(void) {
    int i, s;
    s = 0;
    for (i = 0; i < NBUCKETS; i++)
        s = s + sumchain(buckets[i]);
    return s;
}

int main() {
    int i, t;
    struct entry *e;
    for (i = 0; i < 200; i++)
        insert(i * 7, i);
    for (i = 0; i < 50; i++)
        update(i * 7, i + 1);
    e = lookup(77);
    if (e)
        e->value = 0;
    t = total();
    printf("stored %d total %d\n", nstored, t);
    return 0;
}
