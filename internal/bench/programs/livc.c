/* livc: the function-pointer case study of the paper's section 6: a
 * collection of Livermore-style loop kernels dispatched through three
 * global arrays of 24 function pointers each. The program defines exactly
 * 82 functions; 72 of them have their address taken (the table entries), and
 * there are exactly three indirect call sites, each through a scalar local
 * function pointer loaded from a table element inside a loop.
 *
 * The paper reports invocation graph sizes of 203 (precise), 619 (all
 * functions) and 589 (address-taken) for the original 82-function livc;
 * the reproduction preserves the counts that drive the experiment (82
 * functions, 72 address-taken, 3 tables of 24, 3 indirect sites). */

#define N 32

double u[N], v[N], w[N];
double acc;
int kernelRuns;

/* -- helper functions (addresses never taken) -- */

double clamp(double x) {
    if (x > 1000000.0)
        return 1000000.0;
    if (x < -1000000.0)
        return -1000000.0;
    return x;
}

void reset(void) {
    int i;
    for (i = 0; i < N; i++) {
        u[i] = (double) i * 0.5;
        v[i] = (double) (N - i) * 0.25;
        w[i] = 1.0 + (double) (i % 3);
    }
}

void prep(void) {
    acc = 0.0;
    kernelRuns = 0;
    reset();
}

double checksum(void) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < N; i++)
        s = s + u[i];
    return s;
}

double average(void) {
    return checksum() / (double) N;
}

void report(void) {
    printf("runs %d acc %g sum %g avg %g\n", kernelRuns, acc, checksum(), average());
}

/* -- 72 loop kernels whose addresses populate the tables -- */

double kern01(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + s * w[i];
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern02(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern03(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] - s * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern04(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = (v[i] + w[i]) * 0.5;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern05(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = u[i] + v[i] * 0.125;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern06(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = w[i] / (v[i] + 2.0);
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern07(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = u[i] + w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern08(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        w[i] = u[i] - v[i];
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern09(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + w[i] + s;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern10(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * v[i] - w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern11(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = s * u[i] + v[i] * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern12(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = w[i] * 0.75 + u[i] * 0.25;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern13(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + s * w[i];
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern14(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern15(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] - s * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern16(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = (v[i] + w[i]) * 0.5;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern17(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = u[i] + v[i] * 0.125;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern18(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = w[i] / (v[i] + 2.0);
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern19(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = u[i] + w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern20(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        w[i] = u[i] - v[i];
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern21(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + w[i] + s;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern22(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * v[i] - w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern23(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = s * u[i] + v[i] * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern24(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = w[i] * 0.75 + u[i] * 0.25;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern25(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + s * w[i];
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern26(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern27(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] - s * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern28(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = (v[i] + w[i]) * 0.5;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern29(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = u[i] + v[i] * 0.125;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern30(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = w[i] / (v[i] + 2.0);
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern31(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = u[i] + w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern32(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        w[i] = u[i] - v[i];
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern33(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + w[i] + s;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern34(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * v[i] - w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern35(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = s * u[i] + v[i] * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern36(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = w[i] * 0.75 + u[i] * 0.25;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern37(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + s * w[i];
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern38(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern39(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] - s * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern40(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = (v[i] + w[i]) * 0.5;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern41(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = u[i] + v[i] * 0.125;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern42(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = w[i] / (v[i] + 2.0);
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern43(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = u[i] + w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern44(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        w[i] = u[i] - v[i];
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern45(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + w[i] + s;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern46(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * v[i] - w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern47(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = s * u[i] + v[i] * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern48(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = w[i] * 0.75 + u[i] * 0.25;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern49(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + s * w[i];
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern50(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern51(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] - s * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern52(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = (v[i] + w[i]) * 0.5;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern53(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = u[i] + v[i] * 0.125;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern54(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = w[i] / (v[i] + 2.0);
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern55(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = u[i] + w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern56(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        w[i] = u[i] - v[i];
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern57(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + w[i] + s;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern58(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * v[i] - w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern59(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = s * u[i] + v[i] * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern60(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = w[i] * 0.75 + u[i] * 0.25;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern61(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + s * w[i];
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern62(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern63(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] - s * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern64(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = (v[i] + w[i]) * 0.5;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern65(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = u[i] + v[i] * 0.125;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern66(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = w[i] / (v[i] + 2.0);
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern67(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = u[i] + w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern68(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        w[i] = u[i] - v[i];
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern69(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] + w[i] + s;
        if (u[i] > v[i]) u[i] = v[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern70(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = v[i] * v[i] - w[i];
        if (w[i] < 0.0) w[i] = -w[i];
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern71(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        u[i] = s * u[i] + v[i] * w[i];
        u[i] = clamp(u[i]);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

double kern72(double s) {
    int i;
    double t;
    t = 0.0;
    for (i = 0; i < N; i++) {
        v[i] = w[i] * 0.75 + u[i] * 0.25;
        v[i] = clamp(v[i] + s);
        t = t + u[i];
    }
    kernelRuns++;
    return clamp(t);
}

/* -- the three function-pointer tables -- */

double (*loops1[24])(double) = {
    kern01, kern02, kern03, kern04, kern05, kern06,
    kern07, kern08, kern09, kern10, kern11, kern12,
    kern13, kern14, kern15, kern16, kern17, kern18,
    kern19, kern20, kern21, kern22, kern23, kern24
};

double (*loops2[24])(double) = {
    kern25, kern26, kern27, kern28, kern29, kern30,
    kern31, kern32, kern33, kern34, kern35, kern36,
    kern37, kern38, kern39, kern40, kern41, kern42,
    kern43, kern44, kern45, kern46, kern47, kern48
};

double (*loops3[24])(double) = {
    kern49, kern50, kern51, kern52, kern53, kern54,
    kern55, kern56, kern57, kern58, kern59, kern60,
    kern61, kern62, kern63, kern64, kern65, kern66,
    kern67, kern68, kern69, kern70, kern71, kern72
};

/* -- drivers with the three indirect call sites -- */

void driver1(void) {
    int k;
    double (*fp)(double);
    double r;
    reset();
    for (k = 0; k < 24; k++) {
        fp = loops1[k];
        r = fp(0.5);   /* indirect call site 1 */
        acc = acc + r;
    }
}

void driver2(void) {
    int k;
    double (*fp)(double);
    double r;
    reset();
    for (k = 0; k < 24; k++) {
        fp = loops2[k];
        r = fp(0.5);   /* indirect call site 2 */
        acc = acc + r;
    }
}

void driver3(void) {
    int k;
    double (*fp)(double);
    double r;
    reset();
    for (k = 0; k < 24; k++) {
        fp = loops3[k];
        r = fp(0.5);   /* indirect call site 3 */
        acc = acc + r;
    }
}

int main() {
    prep();
    driver1();
    driver2();
    driver3();
    report();
    return 0;
}
