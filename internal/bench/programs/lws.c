/* lws: dynamic simulation of flexible water molecules, following the
 * paper's largest benchmark: arrays of molecule structures passed through
 * pointer parameters everywhere, predictor-corrector integration, and
 * intra/inter-molecular force computations. Nearly all points-to pairs
 * originate at formal parameters and target global arrays. */

#define NMOL 8
#define NATOMS 3   /* O, H1, H2 */
#define NDIM 3
#define STEPS 10

struct atom {
    double pos[NDIM];
    double vel[NDIM];
    double force[NDIM];
    double mass;
};

struct molecule {
    struct atom atoms[NATOMS];
    double bondEnergy;
};

struct molecule water[NMOL];
double boxSize;
double totKinetic;
double totPotential;
double virial;
int stepsDone;
int seedw;

double wrand(void) {
    seedw = seedw * 1103515245 + 12345;
    return (double) ((seedw >> 8) % 1000) / 1000.0;
}

void initatom(struct atom *a, double m, double base) {
    int d;
    for (d = 0; d < NDIM; d++) {
        a->pos[d] = base + wrand() * 2.0;
        a->vel[d] = (wrand() - 0.5) * 0.1;
        a->force[d] = 0.0;
    }
    a->mass = m;
}

void initmol(struct molecule *mol, double base) {
    initatom(&mol->atoms[0], 16.0, base);        /* oxygen */
    initatom(&mol->atoms[1], 1.0, base + 0.3);   /* hydrogen 1 */
    initatom(&mol->atoms[2], 1.0, base - 0.3);   /* hydrogen 2 */
    mol->bondEnergy = 0.0;
}

void setup(void) {
    int m;
    boxSize = 10.0;
    for (m = 0; m < NMOL; m++)
        initmol(&water[m], (double) m);
}

void zeroforces(struct molecule *mol) {
    int a, d;
    for (a = 0; a < NATOMS; a++) {
        for (d = 0; d < NDIM; d++)
            mol->atoms[a].force[d] = 0.0;
    }
}

double mindist(double x) {
    while (x > boxSize / 2.0)
        x = x - boxSize;
    while (x < -boxSize / 2.0)
        x = x + boxSize;
    return x;
}

/* Harmonic bond force between two atoms of one molecule. */
double bondforce(struct atom *a, struct atom *b, double rest) {
    double d, dist2, dist, k, f;
    int dim;
    dist2 = 0.0;
    for (dim = 0; dim < NDIM; dim++) {
        d = a->pos[dim] - b->pos[dim];
        dist2 = dist2 + d * d;
    }
    dist = sqrt(dist2);
    k = 450.0;
    f = -k * (dist - rest);
    for (dim = 0; dim < NDIM; dim++) {
        d = (a->pos[dim] - b->pos[dim]) / (dist + 0.000001);
        a->force[dim] = a->force[dim] + f * d;
        b->force[dim] = b->force[dim] - f * d;
    }
    return 0.5 * k * (dist - rest) * (dist - rest);
}

/* Intra-molecular forces: two OH bonds and an HH spring. */
void intraforces(struct molecule *mol) {
    double e;
    e = 0.0;
    e = e + bondforce(&mol->atoms[0], &mol->atoms[1], 0.9572);
    e = e + bondforce(&mol->atoms[0], &mol->atoms[2], 0.9572);
    e = e + bondforce(&mol->atoms[1], &mol->atoms[2], 1.5139);
    mol->bondEnergy = e;
    totPotential = totPotential + e;
}

/* Lennard-Jones force between the oxygens of two molecules. */
void interforces(struct molecule *mi, struct molecule *mj) {
    struct atom *oi, *oj;
    double d, r2, r6, f;
    int dim;
    oi = &mi->atoms[0];
    oj = &mj->atoms[0];
    r2 = 0.0;
    for (dim = 0; dim < NDIM; dim++) {
        d = mindist(oi->pos[dim] - oj->pos[dim]);
        r2 = r2 + d * d;
    }
    if (r2 > 20.25)
        return; /* beyond cutoff */
    r6 = 1.0 / (r2 * r2 * r2 + 0.000001);
    f = (12.0 * r6 * r6 - 6.0 * r6) / (r2 + 0.000001);
    for (dim = 0; dim < NDIM; dim++) {
        d = mindist(oi->pos[dim] - oj->pos[dim]);
        oi->force[dim] = oi->force[dim] + f * d;
        oj->force[dim] = oj->force[dim] - f * d;
    }
    totPotential = totPotential + (r6 * r6 - r6);
    virial = virial + f * r2;
}

/* Angle-bending force on the H-O-H angle of one molecule. */
double angleforce(struct molecule *mol) {
    struct atom *o, *h1, *h2;
    double v1[NDIM], v2[NDIM];
    double dot, n1, n2, cosang, k, e;
    int d;
    o = &mol->atoms[0];
    h1 = &mol->atoms[1];
    h2 = &mol->atoms[2];
    dot = 0.0;
    n1 = 0.0;
    n2 = 0.0;
    for (d = 0; d < NDIM; d++) {
        v1[d] = h1->pos[d] - o->pos[d];
        v2[d] = h2->pos[d] - o->pos[d];
        dot = dot + v1[d] * v2[d];
        n1 = n1 + v1[d] * v1[d];
        n2 = n2 + v2[d] * v2[d];
    }
    n1 = sqrt(n1) + 0.000001;
    n2 = sqrt(n2) + 0.000001;
    cosang = dot / (n1 * n2);
    k = 55.0;
    e = 0.5 * k * (cosang + 0.33) * (cosang + 0.33);
    /* push the hydrogens apart/together along their bond vectors */
    for (d = 0; d < NDIM; d++) {
        h1->force[d] = h1->force[d] - k * (cosang + 0.33) * v2[d] / (n1 * n2);
        h2->force[d] = h2->force[d] - k * (cosang + 0.33) * v1[d] / (n1 * n2);
        o->force[d] = o->force[d] + k * (cosang + 0.33) * (v1[d] + v2[d]) / (n1 * n2);
    }
    return e;
}

/* Neighbor list: pairs of molecules whose oxygens are within the cutoff. */

#define MAXPAIRS (NMOL * NMOL)

int nbrA[MAXPAIRS];
int nbrB[MAXPAIRS];
int nPairs;

void buildneighbors(struct molecule *mols, int n, double cutoff2) {
    int i, j, d;
    double r2, dd;
    struct atom *oi, *oj;
    nPairs = 0;
    for (i = 0; i < n; i++) {
        for (j = i + 1; j < n; j++) {
            oi = &mols[i].atoms[0];
            oj = &mols[j].atoms[0];
            r2 = 0.0;
            for (d = 0; d < NDIM; d++) {
                dd = mindist(oi->pos[d] - oj->pos[d]);
                r2 = r2 + dd * dd;
            }
            if (r2 <= cutoff2) {
                nbrA[nPairs] = i;
                nbrB[nPairs] = j;
                nPairs++;
            }
        }
    }
}

/* Inter-molecular forces over the neighbor list only. */
void interforcesNbr(struct molecule *mols) {
    int k;
    for (k = 0; k < nPairs; k++)
        interforces(&mols[nbrA[k]], &mols[nbrB[k]]);
}

/* Per-molecule kinetic statistics. */

double molKinetic[NMOL];

void kineticstats(struct molecule *mols, int n, double *maxOut, double *minOut) {
    int m, a, d;
    double k, v;
    for (m = 0; m < n; m++) {
        k = 0.0;
        for (a = 0; a < NATOMS; a++) {
            for (d = 0; d < NDIM; d++) {
                v = mols[m].atoms[a].vel[d];
                k = k + 0.5 * mols[m].atoms[a].mass * v * v;
            }
        }
        molKinetic[m] = k;
    }
    *maxOut = molKinetic[0];
    *minOut = molKinetic[0];
    for (m = 1; m < n; m++) {
        if (molKinetic[m] > *maxOut)
            *maxOut = molKinetic[m];
        if (molKinetic[m] < *minOut)
            *minOut = molKinetic[m];
    }
}

void computeforces(struct molecule *mols, int n) {
    int i, j;
    totPotential = 0.0;
    virial = 0.0;
    for (i = 0; i < n; i++)
        zeroforces(&mols[i]);
    for (i = 0; i < n; i++) {
        intraforces(&mols[i]);
        totPotential = totPotential + angleforce(&mols[i]);
    }
    if (nPairs > 0) {
        interforcesNbr(mols);
    } else {
        for (i = 0; i < n; i++) {
            for (j = i + 1; j < n; j++)
                interforces(&mols[i], &mols[j]);
        }
    }
}

/* Leapfrog integration of one atom. */
void moveatom(struct atom *a, double dt) {
    int d;
    double acc;
    for (d = 0; d < NDIM; d++) {
        acc = a->force[d] / a->mass;
        a->vel[d] = a->vel[d] + acc * dt;
        a->pos[d] = a->pos[d] + a->vel[d] * dt;
        if (a->pos[d] > boxSize)
            a->pos[d] = a->pos[d] - boxSize;
        if (a->pos[d] < 0.0)
            a->pos[d] = a->pos[d] + boxSize;
    }
}

void integrate(struct molecule *mols, int n, double dt) {
    int m, a;
    for (m = 0; m < n; m++) {
        for (a = 0; a < NATOMS; a++)
            moveatom(&mols[m].atoms[a], dt);
    }
}

double kinetic(struct molecule *mols, int n) {
    int m, a, d;
    double k, v;
    struct atom *at;
    k = 0.0;
    for (m = 0; m < n; m++) {
        for (a = 0; a < NATOMS; a++) {
            at = &mols[m].atoms[a];
            for (d = 0; d < NDIM; d++) {
                v = at->vel[d];
                k = k + 0.5 * at->mass * v * v;
            }
        }
    }
    return k;
}

/* Velocity rescaling thermostat. */
void rescale(struct molecule *mols, int n, double target) {
    double k, s;
    int m, a, d;
    k = kinetic(mols, n);
    if (k <= 0.0)
        return;
    s = sqrt(target / k);
    for (m = 0; m < n; m++) {
        for (a = 0; a < NATOMS; a++) {
            for (d = 0; d < NDIM; d++)
                mols[m].atoms[a].vel[d] = mols[m].atoms[a].vel[d] * s;
        }
    }
}

void step(struct molecule *mols, int n, double dt) {
    computeforces(mols, n);
    integrate(mols, n, dt);
    totKinetic = kinetic(mols, n);
    stepsDone++;
}

int main() {
    int s;
    double energy, kmax, kmin;
    seedw = 2718;
    setup();
    buildneighbors(water, NMOL, 20.25);
    for (s = 0; s < STEPS; s++) {
        step(water, NMOL, 0.001);
        if (s % 4 == 3)
            rescale(water, NMOL, 3.0);
        if (s % 5 == 4)
            buildneighbors(water, NMOL, 20.25);
    }
    kineticstats(water, NMOL, &kmax, &kmin);
    energy = totKinetic + totPotential;
    printf("steps %d kinetic %g potential %g total %g virial %g\n",
           stepsDone, totKinetic, totPotential, energy, virial);
    printf("pairs %d kmax %g kmin %g\n", nPairs, kmax, kmin);
    return 0;
}
