/* misr: builds two multiple-input signature registers and compares them to
 * detect cancelled errors, following the paper's description. Pointers here
 * typically have two possible targets (one of two registers). */

#define WIDTH 16
#define ROUNDS 64

struct misr {
    int bits[WIDTH];
    int taps[WIDTH];
    int signature;
    struct misr *other;
};

struct misr regA, regB;
int errorsInjected;

void initreg(struct misr *r, int seed) {
    int i;
    for (i = 0; i < WIDTH; i++) {
        r->bits[i] = (seed >> (i % 8)) & 1;
        r->taps[i] = (i == 0 || i == 4 || i == 13) ? 1 : 0;
    }
    r->signature = 0;
}

int feedback(struct misr *r) {
    int i, fb;
    fb = 0;
    for (i = 0; i < WIDTH; i++) {
        if (r->taps[i])
            fb = fb ^ r->bits[i];
    }
    return fb;
}

void shift(struct misr *r, int input) {
    int i, fb;
    fb = feedback(r);
    for (i = WIDTH - 1; i > 0; i--)
        r->bits[i] = r->bits[i - 1];
    r->bits[0] = fb ^ input;
}

void capture(struct misr *r) {
    int i, s;
    s = 0;
    for (i = 0; i < WIDTH; i++)
        s = (s << 1) | r->bits[i];
    r->signature = s;
}

/* Drive one register with the clean stream, the other with errors. */
void drive(struct misr *clean, struct misr *faulty, int seed) {
    int round, v, e;
    struct misr *cur;
    v = seed;
    for (round = 0; round < ROUNDS; round++) {
        v = v * 1103515245 + 12345;
        e = v;
        if (round == 10 || round == 29) {
            e = v ^ 1;
            errorsInjected++;
        }
        cur = clean;
        shift(cur, v & 1);
        cur = faulty;
        shift(cur, e & 1);
    }
    capture(clean);
    capture(faulty);
}

int compare(struct misr *x, struct misr *y) {
    if (x->signature == y->signature)
        return 1;  /* errors cancelled themselves */
    return 0;
}

/* Scan chain: serially shift a register's bits out through a pointer
 * cursor, recomputing the signature as a software model of scan test. */
int scanout(struct misr *r, int *chain, int maxlen) {
    int i, n;
    int *cursor;
    cursor = chain;
    n = 0;
    for (i = 0; i < WIDTH && n < maxlen; i++) {
        *cursor = r->bits[i];
        cursor = cursor + 1;
        n++;
    }
    return n;
}

int chainBuf[WIDTH * 2];
struct misr regRef;

int compareChains(struct misr *x, struct misr *y) {
    int nx, ny, i, diff;
    nx = scanout(x, &chainBuf[0], WIDTH);
    ny = scanout(y, &chainBuf[WIDTH], WIDTH);
    diff = 0;
    if (nx != ny)
        return -1;
    for (i = 0; i < nx; i++) {
        if (chainBuf[i] != chainBuf[WIDTH + i])
            diff++;
    }
    return diff;
}

int main() {
    struct misr *pa, *pb;
    int cancelled;
    pa = &regA;
    pb = &regB;
    pa->other = pb;
    pb->other = pa;
    initreg(pa, 0x5a);
    initreg(pb, 0x5a);
    drive(pa, pb, 7);
    cancelled = compare(pa, pa->other);
    initreg(&regRef, 0x5a);
    drive(&regRef, &regRef, 7); /* reference register driven clean twice */
    printf("injected %d cancelled %d sigA %d sigB %d chaindiff %d ref %d\n",
           errorsInjected, cancelled, regA.signature, regB.signature,
           compareChains(pa, pb), regRef.signature);
    return 0;
}
