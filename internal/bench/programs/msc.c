/* msc: minimum spanning circle of n points in the plane, following the
 * paper's benchmark: recursive Welzl-style search over heap-allocated
 * points (heap-directed pointers dominate). */

struct point {
    double x;
    double y;
};

struct circle {
    double cx;
    double cy;
    double r2;
};

struct point *pts;   /* heap array of points */
int npts;
struct circle best;
int recdepth;

double dist2(struct point *a, double cx, double cy) {
    double dx, dy;
    dx = a->x - cx;
    dy = a->y - cy;
    return dx * dx + dy * dy;
}

int inside(struct point *p, struct circle *c) {
    return dist2(p, c->cx, c->cy) <= c->r2 + 0.0000001;
}

void circleFrom2(struct point *a, struct point *b, struct circle *out) {
    out->cx = (a->x + b->x) / 2.0;
    out->cy = (a->y + b->y) / 2.0;
    out->r2 = dist2(a, out->cx, out->cy);
}

void circleFrom1(struct point *a, struct circle *out) {
    out->cx = a->x;
    out->cy = a->y;
    out->r2 = 0.0;
}

/* Recursive min-circle over pts[0..n-1] with boundary points pinned. */
void mincircle(int n, struct point *p1, struct point *p2, struct circle *out) {
    int i;
    struct point *q;
    recdepth++;
    if (p1 && p2) {
        circleFrom2(p1, p2, out);
    } else if (p1) {
        circleFrom1(p1, out);
    } else {
        out->cx = 0.0;
        out->cy = 0.0;
        out->r2 = -1.0;
    }
    for (i = 0; i < n; i++) {
        q = &pts[i];
        if (out->r2 < 0.0 || !inside(q, out)) {
            if (p1 && p2) {
                /* three boundary points: approximate with the pair circle
                 * grown to include q */
                circleFrom2(p1, p2, out);
                if (!inside(q, out))
                    out->r2 = dist2(q, out->cx, out->cy);
            } else if (p1) {
                mincircle(i, p1, q, out);
            } else {
                mincircle(i, q, 0, out);
            }
        }
    }
}

void genpoints(int n) {
    int i, v;
    struct point *p;
    pts = (struct point *) malloc(n * sizeof(struct point));
    v = 12345;
    for (i = 0; i < n; i++) {
        p = &pts[i];
        v = v * 1103515245 + 12345;
        p->x = (double) ((v >> 8) % 100);
        v = v * 1103515245 + 12345;
        p->y = (double) ((v >> 8) % 100);
    }
    npts = n;
}

int main() {
    genpoints(40);
    mincircle(npts, 0, 0, &best);
    printf("center (%g,%g) r2 %g depth %d\n", best.cx, best.cy, best.r2, recdepth);
    return 0;
}
