/* mway: m-way graph partitioning with Kernighan-Lin style refinement,
 * following the paper's benchmark: partitions and gain arrays are passed to
 * every routine through pointer parameters, so nearly all points-to pairs
 * originate at formals and resolve definitely. */

#define NV 48
#define NPARTS 4
#define DEGREE 4

int adj[NV][DEGREE];      /* adjacency lists (vertex numbers) */
int wgt[NV][DEGREE];      /* edge weights */
int partOf[NV];
int partSize[NPARTS];
int gainArr[NV];
int lockArr[NV];
int cutBefore, cutAfter;
int seedm;

int mrand(void) {
    seedm = seedm * 1103515245 + 12345;
    return (seedm >> 8) & 0x7fff;
}

void buildgraph(void) {
    int v, d;
    for (v = 0; v < NV; v++) {
        for (d = 0; d < DEGREE; d++) {
            adj[v][d] = (v + d * 7 + 1) % NV;
            wgt[v][d] = 1 + mrand() % 9;
        }
    }
}

void initparts(int *part, int *sizes) {
    int v, p;
    for (p = 0; p < NPARTS; p++)
        sizes[p] = 0;
    for (v = 0; v < NV; v++) {
        p = mrand() % NPARTS;
        part[v] = p;
        sizes[p] = sizes[p] + 1;
    }
}

int cutsize(int *part) {
    int v, d, cut, u;
    cut = 0;
    for (v = 0; v < NV; v++) {
        for (d = 0; d < DEGREE; d++) {
            u = adj[v][d];
            if (part[v] != part[u])
                cut = cut + wgt[v][d];
        }
    }
    return cut / 2;
}

/* Gain of moving v to partition target. */
int gainof(int *part, int v, int target) {
    int d, u, g;
    g = 0;
    for (d = 0; d < DEGREE; d++) {
        u = adj[v][d];
        if (part[u] == part[v])
            g = g - wgt[v][d];
        if (part[u] == target)
            g = g + wgt[v][d];
    }
    return g;
}

void computegains(int *part, int *gains, int target) {
    int v;
    for (v = 0; v < NV; v++) {
        if (lockArr[v])
            gains[v] = -32768;
        else
            gains[v] = gainof(part, v, target);
    }
}

int bestmove(int *gains) {
    int v, best;
    best = 0;
    for (v = 1; v < NV; v++) {
        if (gains[v] > gains[best])
            best = v;
    }
    return best;
}

void domove(int *part, int *sizes, int v, int target) {
    sizes[part[v]] = sizes[part[v]] - 1;
    part[v] = target;
    sizes[target] = sizes[target] + 1;
    lockArr[v] = 1;
}

/* One refinement pass moving up to NV/4 vertices into target. */
int refinepass(int *part, int *sizes, int *gains, int target) {
    int moves, v, improved;
    improved = 0;
    for (v = 0; v < NV; v++)
        lockArr[v] = 0;
    for (moves = 0; moves < NV / 4; moves++) {
        computegains(part, gains, target);
        v = bestmove(gains);
        if (gains[v] <= 0)
            break;
        domove(part, sizes, v, target);
        improved = improved + gains[v];
    }
    return improved;
}

int balanced(int *sizes) {
    int p, lo, hi;
    lo = sizes[0];
    hi = sizes[0];
    for (p = 1; p < NPARTS; p++) {
        if (sizes[p] < lo)
            lo = sizes[p];
        if (sizes[p] > hi)
            hi = sizes[p];
    }
    return hi - lo <= NV / NPARTS;
}

int main() {
    int pass, target, gain, ok;
    seedm = 31415;
    buildgraph();
    initparts(partOf, partSize);
    cutBefore = cutsize(partOf);
    for (pass = 0; pass < 6; pass++) {
        target = pass % NPARTS;
        gain = refinepass(partOf, partSize, gainArr, target);
        if (gain == 0)
            break;
    }
    cutAfter = cutsize(partOf);
    ok = balanced(partSize);
    printf("cut %d -> %d balanced %d\n", cutBefore, cutAfter, ok);
    return 0;
}
