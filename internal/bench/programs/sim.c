/* sim: finds local similarities between two sequences with affine gap
 * weights (Smith-Waterman style), following the paper's benchmark: the
 * scoring matrices live on the heap, so most points-to pairs are
 * heap-directed, and the traceback is recursive. */

#define LENA 40
#define LENB 32
#define MATCH 2
#define MISMATCH (-1)
#define GAPOPEN 3
#define GAPEXT 1

char seqA[LENA];
char seqB[LENB];

int *scoreH;  /* (LENA+1) x (LENB+1) flattened, on the heap */
int *scoreE;
int *scoreF;
int bestScore;
int bestI, bestJ;
int cells;
int traceLen;

int idx(int i, int j) {
    return i * (LENB + 1) + j;
}

int maxi(int a, int b) {
    if (a >= b)
        return a;
    return b;
}

void gensequences(void) {
    int i, v;
    v = 5;
    for (i = 0; i < LENA; i++) {
        v = v * 1103515245 + 12345;
        seqA[i] = (char) ('a' + ((v >> 9) % 4));
    }
    for (i = 0; i < LENB; i++) {
        v = v * 1103515245 + 12345;
        seqB[i] = (char) ('a' + ((v >> 9) % 4));
    }
    /* plant a common region */
    for (i = 0; i < 8; i++) {
        seqA[10 + i] = (char) ('a' + (i % 3));
        seqB[4 + i] = (char) ('a' + (i % 3));
    }
}

int *allocmatrix(void) {
    int *m;
    int k, n;
    n = (LENA + 1) * (LENB + 1);
    m = (int *) malloc(n * sizeof(int));
    for (k = 0; k < n; k++)
        m[k] = 0;
    return m;
}

int substScore(char a, char b) {
    if (a == b)
        return MATCH;
    return MISMATCH;
}

void fillmatrices(int *h, int *e, int *f) {
    int i, j, diag, up, left, best;
    for (i = 1; i <= LENA; i++) {
        for (j = 1; j <= LENB; j++) {
            e[idx(i, j)] = maxi(e[idx(i, j - 1)] - GAPEXT,
                                h[idx(i, j - 1)] - GAPOPEN);
            f[idx(i, j)] = maxi(f[idx(i - 1, j)] - GAPEXT,
                                h[idx(i - 1, j)] - GAPOPEN);
            diag = h[idx(i - 1, j - 1)] + substScore(seqA[i - 1], seqB[j - 1]);
            up = f[idx(i, j)];
            left = e[idx(i, j)];
            best = maxi(maxi(diag, up), maxi(left, 0));
            h[idx(i, j)] = best;
            cells++;
            if (best > bestScore) {
                bestScore = best;
                bestI = i;
                bestJ = j;
            }
        }
    }
}

/* Recursive traceback from the best cell. */
void traceback(int *h, int i, int j) {
    int cur, diag;
    if (i <= 0 || j <= 0)
        return;
    cur = h[idx(i, j)];
    if (cur <= 0)
        return;
    traceLen++;
    diag = h[idx(i - 1, j - 1)] + substScore(seqA[i - 1], seqB[j - 1]);
    if (cur == diag) {
        traceback(h, i - 1, j - 1);
    } else if (cur == h[idx(i - 1, j)] - GAPOPEN ||
               cur == h[idx(i - 1, j)] - GAPEXT) {
        traceback(h, i - 1, j);
    } else {
        traceback(h, i, j - 1);
    }
}

/* Reconstruct the aligned pair strings from the best cell (banded). */

char alignA[LENA + LENB + 2];
char alignB[LENA + LENB + 2];
int alignLen;

void reconstruct(int *h, int i, int j) {
    int cur, diag;
    alignLen = 0;
    while (i > 0 && j > 0) {
        cur = h[idx(i, j)];
        if (cur <= 0)
            break;
        diag = h[idx(i - 1, j - 1)] + substScore(seqA[i - 1], seqB[j - 1]);
        if (cur == diag) {
            alignA[alignLen] = seqA[i - 1];
            alignB[alignLen] = seqB[j - 1];
            i--;
            j--;
        } else if (cur == h[idx(i - 1, j)] - GAPOPEN ||
                   cur == h[idx(i - 1, j)] - GAPEXT) {
            alignA[alignLen] = seqA[i - 1];
            alignB[alignLen] = '-';
            i--;
        } else {
            alignA[alignLen] = '-';
            alignB[alignLen] = seqB[j - 1];
            j--;
        }
        alignLen++;
    }
    alignA[alignLen] = 0;
    alignB[alignLen] = 0;
}

/* Zero out a neighbourhood of the best cell and rescan for the second-best
 * local similarity, as sim does for multiple local alignments. */
int secondBest(int *h) {
    int i, j, best2, di, dj;
    for (di = -2; di <= 2; di++) {
        for (dj = -2; dj <= 2; dj++) {
            i = bestI + di;
            j = bestJ + dj;
            if (i >= 0 && i <= LENA && j >= 0 && j <= LENB)
                h[idx(i, j)] = 0;
        }
    }
    best2 = 0;
    for (i = 1; i <= LENA; i++) {
        for (j = 1; j <= LENB; j++) {
            if (h[idx(i, j)] > best2)
                best2 = h[idx(i, j)];
        }
    }
    return best2;
}

int main() {
    gensequences();
    scoreH = allocmatrix();
    scoreE = allocmatrix();
    scoreF = allocmatrix();
    fillmatrices(scoreH, scoreE, scoreF);
    traceback(scoreH, bestI, bestJ);
    reconstruct(scoreH, bestI, bestJ);
    printf("best %d at (%d,%d) cells %d trace %d\n",
           bestScore, bestI, bestJ, cells, traceLen);
    printf("align %d |%s| |%s| second %d\n",
           alignLen, alignA, alignB, secondBest(scoreH));
    free(scoreH);
    free(scoreE);
    free(scoreF);
    return 0;
}
