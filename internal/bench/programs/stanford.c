/* stanford: the Stanford "baby benchmarks" — permutations, towers of
 * hanoi, eight queens, quicksort, bubble sort and tree insertion — as in
 * the paper's benchmark: many small functions, several recursive, array
 * references through pointer parameters. */

#define SORTSIZE 64
#define TREESIZE 32
#define STACKMAX 24

int sortArr[SORTSIZE];
int permCount;
int moveCount;
int queensSolutions;
int seedv;

int rnd(void) {
    seedv = seedv * 1309 + 13849;
    if (seedv < 0)
        seedv = -seedv;
    return seedv;
}

/* --- Perm --- */

void swapints(int *a, int *b) {
    int t;
    t = *a;
    *a = *b;
    *b = t;
}

void permute(int *arr, int n) {
    int k;
    permCount++;
    if (n <= 1)
        return;
    for (k = 0; k < n; k++) {
        swapints(&arr[0], &arr[k]);
        permute(&arr[1], n - 1);
        swapints(&arr[0], &arr[k]);
    }
}

/* --- Towers --- */

void towers(int n, int from, int to, int via) {
    if (n == 1) {
        moveCount++;
        return;
    }
    towers(n - 1, from, via, to);
    moveCount++;
    towers(n - 1, via, to, from);
}

/* --- Queens --- */

int rowFree[8];
int diagA[16];
int diagB[16];

void tryQueen(int col) {
    int row;
    if (col == 8) {
        queensSolutions++;
        return;
    }
    for (row = 0; row < 8; row++) {
        if (rowFree[row] && diagA[row + col] && diagB[row - col + 7]) {
            rowFree[row] = 0;
            diagA[row + col] = 0;
            diagB[row - col + 7] = 0;
            tryQueen(col + 1);
            rowFree[row] = 1;
            diagA[row + col] = 1;
            diagB[row - col + 7] = 1;
        }
    }
}

int queens(void) {
    int i;
    for (i = 0; i < 8; i++)
        rowFree[i] = 1;
    for (i = 0; i < 16; i++) {
        diagA[i] = 1;
        diagB[i] = 1;
    }
    queensSolutions = 0;
    tryQueen(0);
    return queensSolutions;
}

/* --- Quicksort (recursive) --- */

void quick(int *a, int lo, int hi) {
    int i, j, pivot;
    i = lo;
    j = hi;
    pivot = a[(lo + hi) / 2];
    while (i <= j) {
        while (a[i] < pivot)
            i++;
        while (a[j] > pivot)
            j--;
        if (i <= j) {
            swapints(&a[i], &a[j]);
            i++;
            j--;
        }
    }
    if (lo < j)
        quick(a, lo, j);
    if (i < hi)
        quick(a, i, hi);
}

/* --- Bubble sort --- */

void bubble(int *a, int n) {
    int i, top, t;
    top = n - 1;
    while (top > 0) {
        i = 0;
        while (i < top) {
            if (a[i] > a[i + 1]) {
                t = a[i];
                a[i] = a[i + 1];
                a[i + 1] = t;
            }
            i++;
        }
        top--;
    }
}

int checksorted(int *a, int n) {
    int i;
    for (i = 0; i + 1 < n; i++) {
        if (a[i] > a[i + 1])
            return 0;
    }
    return 1;
}

void fillrandom(int *a, int n) {
    int i;
    for (i = 0; i < n; i++)
        a[i] = rnd() % 1000;
}

/* --- Intmm: integer matrix multiplication --- */

#define MMSIZE 12

int ima[MMSIZE][MMSIZE];
int imb[MMSIZE][MMSIZE];
int imr[MMSIZE][MMSIZE];

void initmatrix(int (*m)[MMSIZE]) {
    int i, j;
    for (i = 0; i < MMSIZE; i++) {
        for (j = 0; j < MMSIZE; j++)
            m[i][j] = (rnd() % 240) - 120;
    }
}

void innerproduct(int *result, int (*a)[MMSIZE], int (*b)[MMSIZE], int row, int column) {
    int i, sum;
    sum = 0;
    for (i = 0; i < MMSIZE; i++)
        sum = sum + a[row][i] * b[i][column];
    *result = sum;
}

int intmm(void) {
    int i, j, trace;
    initmatrix(ima);
    initmatrix(imb);
    for (i = 0; i < MMSIZE; i++) {
        for (j = 0; j < MMSIZE; j++)
            innerproduct(&imr[i][j], ima, imb, i, j);
    }
    trace = 0;
    for (i = 0; i < MMSIZE; i++)
        trace = trace + imr[i][i];
    return trace;
}

/* --- Puzzle (Forest Baskett's), reduced board --- */

#define PSIZE 255
#define PCLASSMAX 3
#define PTYPEMAX 12

int puzzlePieceCount[PCLASSMAX + 1];
int puzzleClass[PTYPEMAX + 1];
int puzzlePieceMax[PTYPEMAX + 1];
int puzzleCells[PSIZE + 1];
int puzzleP[PTYPEMAX + 1][PSIZE + 1];
int puzzleKount;

int fits(int i, int j) {
    int k;
    for (k = 0; k <= puzzlePieceMax[i]; k++) {
        if (puzzleP[i][k]) {
            if (puzzleCells[j + k])
                return 0;
        }
    }
    return 1;
}

int place(int i, int j) {
    int k;
    for (k = 0; k <= puzzlePieceMax[i]; k++) {
        if (puzzleP[i][k])
            puzzleCells[j + k] = 1;
    }
    puzzlePieceCount[puzzleClass[i]] = puzzlePieceCount[puzzleClass[i]] - 1;
    for (k = j; k <= PSIZE; k++) {
        if (!puzzleCells[k])
            return k;
    }
    return 0;
}

void removePiece(int i, int j) {
    int k;
    for (k = 0; k <= puzzlePieceMax[i]; k++) {
        if (puzzleP[i][k])
            puzzleCells[j + k] = 0;
    }
    puzzlePieceCount[puzzleClass[i]] = puzzlePieceCount[puzzleClass[i]] + 1;
}

int trial(int j) {
    int i, k;
    puzzleKount++;
    if (puzzleKount > 2000)
        return 1; /* bound the search for the benchmark */
    for (i = 0; i <= PTYPEMAX; i++) {
        if (puzzlePieceCount[puzzleClass[i]] != 0) {
            if (fits(i, j)) {
                k = place(i, j);
                if (k == 0 || trial(k)) {
                    return 1;
                }
                removePiece(i, j);
            }
        }
    }
    return 0;
}

int puzzle(void) {
    int i, k;
    for (i = 0; i <= PSIZE; i++)
        puzzleCells[i] = 0;
    for (i = 0; i <= PTYPEMAX; i++) {
        for (k = 0; k <= PSIZE; k++)
            puzzleP[i][k] = 0;
    }
    /* a few simple bar pieces */
    for (i = 0; i <= PTYPEMAX; i++) {
        puzzleClass[i] = i % (PCLASSMAX + 1);
        puzzlePieceMax[i] = (i % 4) + 1;
        for (k = 0; k <= puzzlePieceMax[i]; k++)
            puzzleP[i][k] = 1;
    }
    for (i = 0; i <= PCLASSMAX; i++)
        puzzlePieceCount[i] = 4;
    puzzleKount = 0;
    trial(0);
    return puzzleKount;
}

/* --- A small iterative FFT-flavoured butterfly pass --- */

#define FFTN 32

double fftRe[FFTN];
double fftIm[FFTN];

void butterfly(double *re, double *im, int span) {
    int i, j;
    double tr, ti;
    for (i = 0; i < FFTN; i = i + 2 * span) {
        for (j = i; j < i + span; j++) {
            tr = re[j + span];
            ti = im[j + span];
            re[j + span] = re[j] - tr;
            im[j + span] = im[j] - ti;
            re[j] = re[j] + tr;
            im[j] = im[j] + ti;
        }
    }
}

double fftpass(void) {
    int i, span;
    double energy;
    for (i = 0; i < FFTN; i++) {
        fftRe[i] = (double) (rnd() % 100) / 100.0;
        fftIm[i] = 0.0;
    }
    for (span = 1; span < FFTN; span = span * 2)
        butterfly(fftRe, fftIm, span);
    energy = 0.0;
    for (i = 0; i < FFTN; i++)
        energy = energy + fftRe[i] * fftRe[i] + fftIm[i] * fftIm[i];
    return energy;
}

/* --- Trees --- */

struct tnode {
    int val;
    struct tnode *left;
    struct tnode *right;
};

struct tnode *insertnode(struct tnode *t, int v) {
    if (t == 0) {
        t = (struct tnode *) malloc(sizeof(struct tnode));
        t->val = v;
        t->left = 0;
        t->right = 0;
        return t;
    }
    if (v < t->val)
        t->left = insertnode(t->left, v);
    else
        t->right = insertnode(t->right, v);
    return t;
}

int treedepth(struct tnode *t) {
    int dl, dr;
    if (t == 0)
        return 0;
    dl = treedepth(t->left);
    dr = treedepth(t->right);
    if (dl > dr)
        return dl + 1;
    return dr + 1;
}

int main() {
    int permInit[6];
    int i, sortedOK, depth, nq;
    struct tnode *root;

    seedv = 74755;

    for (i = 0; i < 6; i++)
        permInit[i] = i;
    permute(permInit, 5);

    towers(10, 1, 3, 2);

    nq = queens();

    fillrandom(sortArr, SORTSIZE);
    quick(sortArr, 0, SORTSIZE - 1);
    sortedOK = checksorted(sortArr, SORTSIZE);

    fillrandom(sortArr, SORTSIZE);
    bubble(sortArr, SORTSIZE);
    sortedOK = sortedOK & checksorted(sortArr, SORTSIZE);

    root = 0;
    for (i = 0; i < TREESIZE; i++)
        root = insertnode(root, rnd() % 100);
    depth = treedepth(root);

    printf("perm %d moves %d queens %d sorted %d depth %d\n",
           permCount, moveCount, nq, sortedOK, depth);
    printf("intmm %d puzzle %d fft %g\n", intmm(), puzzle(), fftpass());
    return 0;
}
