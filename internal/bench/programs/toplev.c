/* toplev: the driver level of a compiler, following the paper's benchmark
 * (the GNU C top level): option tables that are arrays of string pointers,
 * a pass list, and dispatch over flags. The array-of-pointers
 * initialization produces indirect references with four or more possible
 * targets, as the paper notes for toplev. */

#define MAXARGS 16
#define NPASSES 8

char *optionNames[10] = {
    "-O", "-g", "-c", "-S", "-W", "-o", "-v", "-p", "-E", "-f"
};

int optionSeen[10];

char *passNames[NPASSES] = {
    "parse", "simplify", "points-to", "rwsets", "constprop",
    "dependence", "schedule", "emit"
};

int passEnabled[NPASSES];
int passRuns[NPASSES];

char *inputName;
char *outputName;
int optimize;
int debugLevel;
int errorCount;
int warnCount;

/* A fake argv prepared by the driver itself. */
char *argvBuf[MAXARGS];
int argcBuf;

void addArg(char *s) {
    argvBuf[argcBuf] = s;
    argcBuf++;
}

void buildCommandLine(void) {
    addArg("toplev");
    addArg("-O");
    addArg("-g");
    addArg("-o");
    addArg("out.s");
    addArg("prog.c");
}

int matchOption(char *arg) {
    int i;
    char *name;
    for (i = 0; i < 10; i++) {
        name = optionNames[i];
        if (name[0] == arg[0] && name[1] == arg[1])
            return i;
    }
    return -1;
}

void warning(char *msg) {
    warnCount++;
    printf("warning: %s\n", msg);
}

void error(char *msg) {
    errorCount++;
    printf("error: %s\n", msg);
}

void decodeSwitch(char *arg, int next) {
    int idx;
    idx = matchOption(arg);
    if (idx < 0) {
        warning("unknown option");
        return;
    }
    optionSeen[idx] = 1;
    if (idx == 0)
        optimize = 1;
    else if (idx == 1)
        debugLevel = 2;
    else if (idx == 5)
        outputName = argvBuf[next];
}

void parseArgs(void) {
    int i;
    char *arg;
    for (i = 1; i < argcBuf; i++) {
        arg = argvBuf[i];
        if (arg[0] == '-') {
            decodeSwitch(arg, i + 1);
            if (matchOption(arg) == 5)
                i++;
        } else {
            inputName = arg;
        }
    }
    if (inputName == 0)
        error("no input file");
}

void enablePasses(void) {
    int i;
    for (i = 0; i < NPASSES; i++)
        passEnabled[i] = 1;
    if (!optimize) {
        passEnabled[4] = 0;
        passEnabled[5] = 0;
        passEnabled[6] = 0;
    }
}

int runPass(int which, char *name) {
    passRuns[which]++;
    /* pretend to do the work: hash the pass name */
    {
        int h, i;
        h = 0;
        for (i = 0; name[i]; i++)
            h = h * 31 + name[i];
        return h;
    }
}

void compileFile(char *name) {
    int i, h;
    h = 0;
    for (i = 0; i < NPASSES; i++) {
        if (passEnabled[i])
            h = h ^ runPass(i, passNames[i]);
    }
    if (h == 0 && name[0] == 0)
        error("empty translation unit");
}

int countRuns(void) {
    int i, n;
    n = 0;
    for (i = 0; i < NPASSES; i++)
        n = n + passRuns[i];
    return n;
}

/* -- specs: map input suffixes to pass pipelines, compiler-driver style -- */

struct spec {
    char *suffix;
    int firstPass;
    int lastPass;
};

struct spec specTable[4];
int nSpecs;

void addSpec(char *suffix, int first, int last) {
    struct spec *sp;
    sp = &specTable[nSpecs];
    sp->suffix = suffix;
    sp->firstPass = first;
    sp->lastPass = last;
    nSpecs++;
}

void initSpecs(void) {
    addSpec(".c", 0, NPASSES - 1);
    addSpec(".i", 1, NPASSES - 1);
    addSpec(".s", NPASSES - 1, NPASSES - 1);
}

int suffixOf(char *name, char *out) {
    int i, dot;
    dot = -1;
    for (i = 0; name[i]; i++) {
        if (name[i] == '.')
            dot = i;
    }
    if (dot < 0)
        return 0;
    for (i = 0; name[dot + i]; i++)
        out[i] = name[dot + i];
    out[i] = 0;
    return 1;
}

struct spec *lookupSpec(char *name) {
    char suf[8];
    int i;
    if (!suffixOf(name, suf))
        return 0;
    for (i = 0; i < nSpecs; i++) {
        if (strcmp(specTable[i].suffix, suf) == 0)
            return &specTable[i];
    }
    return 0;
}

int compileWithSpec(char *name) {
    struct spec *sp;
    int i, h;
    sp = lookupSpec(name);
    if (sp == 0) {
        error("unknown input suffix");
        return 0;
    }
    h = 0;
    for (i = sp->firstPass; i <= sp->lastPass; i++) {
        if (passEnabled[i])
            h = h ^ runPass(i, passNames[i]);
    }
    return h;
}

int main() {
    char *in;
    buildCommandLine();
    parseArgs();
    enablePasses();
    initSpecs();
    in = inputName;
    if (in) {
        compileFile(in);
        compileWithSpec(in);
    }
    printf("input %s output %s optimize %d passes %d warnings %d errors %d\n",
           inputName, outputName, optimize, countRuns(), warnCount, errorCount);
    return errorCount;
}
