/* travel: traveling salesman with greedy heuristics (nearest neighbour
 * plus 2-opt improvement), following the paper's benchmark: tours held in
 * two alternating buffers so tour pointers typically have two or three
 * possible targets, with a recursive tour-improvement pass. */

#define NCITY 20

struct city {
    double x;
    double y;
};

struct city cities[NCITY];
int tourA[NCITY];
int tourB[NCITY];
int *bestTour;
int *curTour;
double bestLen;
int improvePasses;
int seedt;

int trand(void) {
    seedt = seedt * 1103515245 + 12345;
    return (seedt >> 8) & 0x7fff;
}

double cdist(struct city *a, struct city *b) {
    double dx, dy;
    dx = a->x - b->x;
    dy = a->y - b->y;
    return sqrt(dx * dx + dy * dy);
}

double tourlen(int *tour) {
    double len;
    int i, from, to;
    len = 0.0;
    for (i = 0; i < NCITY; i++) {
        from = tour[i];
        to = tour[(i + 1) % NCITY];
        len = len + cdist(&cities[from], &cities[to]);
    }
    return len;
}

void gencities(void) {
    int i;
    for (i = 0; i < NCITY; i++) {
        cities[i].x = (double) (trand() % 1000);
        cities[i].y = (double) (trand() % 1000);
    }
}

/* Greedy nearest-neighbour construction into out. */
void nearest(int *out) {
    int used[NCITY];
    int i, step, cur, best;
    double d, bd;
    for (i = 0; i < NCITY; i++)
        used[i] = 0;
    cur = 0;
    used[0] = 1;
    out[0] = 0;
    for (step = 1; step < NCITY; step++) {
        best = -1;
        bd = 0.0;
        for (i = 0; i < NCITY; i++) {
            if (used[i])
                continue;
            d = cdist(&cities[cur], &cities[i]);
            if (best < 0 || d < bd) {
                best = i;
                bd = d;
            }
        }
        out[step] = best;
        used[best] = 1;
        cur = best;
    }
}

void reverseseg(int *tour, int i, int j) {
    int t;
    while (i < j) {
        t = tour[i];
        tour[i] = tour[j];
        tour[j] = t;
        i++;
        j--;
    }
}

void copytour(int *dst, int *src) {
    int i;
    for (i = 0; i < NCITY; i++)
        dst[i] = src[i];
}

/* One 2-opt sweep; returns 1 if it improved the tour. */
int sweep(int *tour) {
    int i, j, improved;
    double before, after;
    improved = 0;
    for (i = 1; i + 1 < NCITY; i++) {
        for (j = i + 1; j < NCITY; j++) {
            before = tourlen(tour);
            reverseseg(tour, i, j);
            after = tourlen(tour);
            if (after >= before) {
                reverseseg(tour, i, j); /* undo */
            } else {
                improved = 1;
            }
        }
    }
    return improved;
}

/* Recursive improvement: keep sweeping until no improvement. */
void improve(int *tour, int depth) {
    improvePasses++;
    if (depth > 6)
        return;
    if (sweep(tour))
        improve(tour, depth + 1);
}

int *pickbest(int *a, int *b) {
    if (tourlen(a) <= tourlen(b))
        return a;
    return b;
}

int main() {
    double la, lb;
    seedt = 99;
    gencities();

    curTour = tourA;
    nearest(curTour);
    improve(curTour, 0);

    /* a second start from a rotated initial tour */
    copytour(tourB, tourA);
    reverseseg(tourB, 0, NCITY / 2);
    curTour = tourB;
    improve(curTour, 0);

    bestTour = pickbest(tourA, tourB);
    la = tourlen(tourA);
    lb = tourlen(tourB);
    bestLen = tourlen(bestTour);
    printf("lenA %g lenB %g best %g passes %d first %d\n",
           la, lb, bestLen, improvePasses, bestTour[0]);
    return 0;
}
