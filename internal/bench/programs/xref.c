/* xref: a cross-reference program building a binary tree of items, as in
 * the paper's benchmark: recursive tree construction over heap nodes. */

struct ref {
    int line;
    struct ref *next;
};

struct node {
    int word;          /* hashed identifier */
    struct ref *refs;
    struct node *left;
    struct node *right;
};

struct node *root;
int nwords, nrefs;

struct node *newnode(int w, int line) {
    struct node *n;
    struct ref *r;
    n = (struct node *) malloc(sizeof(struct node));
    r = (struct ref *) malloc(sizeof(struct ref));
    r->line = line;
    r->next = 0;
    n->word = w;
    n->refs = r;
    n->left = 0;
    n->right = 0;
    nwords++;
    return n;
}

void addref(struct node *n, int line) {
    struct ref *r;
    r = (struct ref *) malloc(sizeof(struct ref));
    r->line = line;
    r->next = n->refs;
    n->refs = r;
    nrefs++;
}

struct node *enter(struct node *t, int w, int line) {
    if (t == 0)
        return newnode(w, line);
    if (w < t->word)
        t->left = enter(t->left, w, line);
    else if (w > t->word)
        t->right = enter(t->right, w, line);
    else
        addref(t, line);
    return t;
}

int countrefs(struct ref *r) {
    if (r == 0)
        return 0;
    return 1 + countrefs(r->next);
}

int dump(struct node *t) {
    int n;
    if (t == 0)
        return 0;
    n = dump(t->left);
    printf("%d:%d ", t->word, countrefs(t->refs));
    n = n + 1 + dump(t->right);
    return n;
}

int main() {
    int i, w, printed;
    for (i = 0; i < 120; i++) {
        w = (i * 37 + 11) % 40;
        root = enter(root, w, i + 1);
    }
    printed = dump(root);
    printf("\nwords %d refs %d printed %d\n", nwords, nrefs, printed);
    return 0;
}
