// Package ast defines the abstract syntax tree for the C subset. The parser
// produces a *resolved* AST: identifiers carry their *Object, expressions
// carry semantic types, and struct member accesses carry their *types.Field.
package ast

import (
	"repro/internal/cc/token"
	"repro/internal/cc/types"
)

// ObjKind classifies declared objects.
type ObjKind int

// Object kinds.
const (
	BadObj      ObjKind = iota
	Var                 // global or local variable
	Param               // function parameter
	FuncObj             // function
	EnumConst           // enumeration constant
	TypedefName         // typedef
)

func (k ObjKind) String() string {
	switch k {
	case Var:
		return "var"
	case Param:
		return "param"
	case FuncObj:
		return "func"
	case EnumConst:
		return "enum const"
	case TypedefName:
		return "typedef"
	}
	return "bad object"
}

// Object is a declared entity: variable, parameter, function, enum constant
// or typedef name.
type Object struct {
	Name   string
	Kind   ObjKind
	Type   *types.Type
	Pos    token.Pos
	Global bool
	Static bool

	EnumVal int64 // EnumConst value

	// AddrTaken records whether the program ever takes the object's
	// address (&x), or, for functions, mentions the function outside a
	// direct call. The address-taken function-pointer baseline uses it.
	AddrTaken bool

	// Def is the function definition for FuncObj objects (nil if the
	// function is only declared, e.g. a library stub).
	Def *FuncDecl
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Pos() token.Pos
	Type() *types.Type
	exprNode()
}

type exprBase struct {
	P token.Pos
	T *types.Type
}

func (e *exprBase) Pos() token.Pos        { return e.P }
func (e *exprBase) Type() *types.Type     { return e.T }
func (e *exprBase) SetType(t *types.Type) { e.T = t }
func (*exprBase) exprNode()               {}

// Ident is a resolved identifier reference.
type Ident struct {
	exprBase
	Obj *Object
}

// IntLit is an integer constant (includes char literals and folded sizeof).
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a floating constant.
type FloatLit struct {
	exprBase
	Val float64
}

// StringLit is a string constant.
type StringLit struct {
	exprBase
	Val string
}

// Unary is a prefix operator: & * + - ! ~ ++ --.
type Unary struct {
	exprBase
	Op token.Kind
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	exprBase
	Op token.Kind // INC or DEC
	X  Expr
}

// Binary is a binary operator expression (arithmetic, relational, logical,
// bitwise, shifts).
type Binary struct {
	exprBase
	Op   token.Kind
	X, Y Expr
}

// Assign is an assignment expression, possibly compound (+=, …).
type Assign struct {
	exprBase
	Op  token.Kind // ASSIGN or a compound assignment kind
	LHS Expr
	RHS Expr
}

// Cond is the ternary conditional c ? a : b.
type Cond struct {
	exprBase
	C, Then, Else Expr
}

// Call is a function call. Fun is either an Ident naming a function, or a
// pointer-valued expression (indirect call); parenthesized (*fp)(…) parses
// to Fun = Unary{MUL, fp}.
type Call struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// Index is x[i].
type Index struct {
	exprBase
	X, I Expr
}

// Member is x.f or x->f.
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	Field *types.Field
}

// Cast is (T)x.
type Cast struct {
	exprBase
	X Expr
}

// Comma is x, y.
type Comma struct {
	exprBase
	X, Y Expr
}

// ---------------------------------------------------------------------------
// Initializers

// Init is an initializer: either a single expression or a brace list.
type Init struct {
	Pos  token.Pos
	Expr Expr    // non-nil for scalar initializers
	List []*Init // non-nil for brace lists
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Pos() token.Pos
	stmtNode()
}

type stmtBase struct{ P token.Pos }

func (s *stmtBase) Pos() token.Pos { return s.P }
func (*stmtBase) stmtNode()        {}

// ExprStmt is an expression statement.
type ExprStmt struct {
	stmtBase
	X Expr
}

// DeclStmt declares block-scope variables (with optional initializers).
type DeclStmt struct {
	stmtBase
	Objects []*Object
	Inits   []*Init // parallel to Objects; entries may be nil
}

// Block is a brace-enclosed statement list.
type Block struct {
	stmtBase
	List []Stmt
}

// If is if (Cond) Then [else Else].
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is while (Cond) Body.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// Do is do Body while (Cond);
type Do struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// For is for (Init; Cond; Post) Body; any part may be nil.
type For struct {
	stmtBase
	Init Stmt // ExprStmt or DeclStmt or nil
	Cond Expr // nil means true
	Post Expr // nil for empty
	Body Stmt
}

// SwitchCase is one case (or default) arm of a switch.
type SwitchCase struct {
	Pos       token.Pos
	Vals      []int64 // constant case values; empty for default
	IsDefault bool
	Body      []Stmt // statements until the next case label
}

// Switch is switch (Tag) { cases… } with C fallthrough semantics.
type Switch struct {
	stmtBase
	Tag   Expr
	Cases []*SwitchCase
}

// Break is a break statement.
type Break struct{ stmtBase }

// Continue is a continue statement.
type Continue struct{ stmtBase }

// Return is return [X];
type Return struct {
	stmtBase
	X Expr // may be nil
}

// Goto is goto Label; (eliminated by the structurer before simplification).
type Goto struct {
	stmtBase
	Label string
}

// Label is Label: Stmt.
type Label struct {
	stmtBase
	Name string
	Stmt Stmt
}

// Empty is a lone semicolon.
type Empty struct{ stmtBase }

// ---------------------------------------------------------------------------
// Declarations and translation unit

// FuncDecl is a function definition.
type FuncDecl struct {
	Obj    *Object
	Params []*Object
	Body   *Block
	Pos    token.Pos

	// Locals lists every block-scope variable of the function, uniquely
	// renamed (shadowed names get a __N suffix) so that a name denotes at
	// most one stack location per function, as Property 3.1 of the paper
	// requires. The simplifier appends its temporaries here.
	Locals []*Object
}

// Name returns the function's name.
func (f *FuncDecl) Name() string { return f.Obj.Name }

// GlobalVar is a file-scope variable with its optional initializer.
type GlobalVar struct {
	Obj  *Object
	Init *Init // may be nil
}

// TranslationUnit is a parsed source file.
type TranslationUnit struct {
	File    string
	Globals []*GlobalVar
	Funcs   []*FuncDecl
	// FuncObjects maps names of all declared functions (defined or not)
	// to their objects, preserving declaration order in FuncOrder.
	FuncObjects map[string]*Object
	FuncOrder   []string
	SourceLines int
}

// LookupFunc returns the function definition with the given name, or nil.
func (tu *TranslationUnit) LookupFunc(name string) *FuncDecl {
	obj := tu.FuncObjects[name]
	if obj == nil {
		return nil
	}
	return obj.Def
}

// Note: Expr and Stmt nodes expose their position and type through the
// promoted exported fields P and T of the embedded bases, so builders in
// other packages (parser, simplifier) construct a node and then assign
// node.P / node.T directly.
