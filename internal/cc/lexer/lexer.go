// Package lexer tokenizes C-subset source text into token.Token values.
//
// The lexer supports the full token set used by the frontend: identifiers,
// integer/float/char/string literals, all operators and punctuation, and both
// comment styles. A tiny preprocessor handles `#define NAME value` object
// macros and strips any other directive lines (e.g. #include), which is
// enough for the self-contained benchmark programs this repository analyzes.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/cc/token"
)

// Error is a lexical error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans one source buffer.
type Lexer struct {
	file   string
	src    string
	off    int // byte offset of next rune
	line   int
	col    int
	errors []error

	macros map[string][]token.Token // object-like #define bodies
	pend   []token.Token            // pending macro-expansion tokens
	expand map[string]bool          // macros currently being expanded (cycle guard)
}

// New returns a lexer over src; file is used in positions.
func New(file, src string) *Lexer {
	return &Lexer{
		file:   file,
		src:    src,
		line:   1,
		col:    1,
		macros: make(map[string][]token.Token),
		expand: make(map[string]bool),
	}
}

// Errors returns lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errors }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errors = append(l.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekByteAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) nextByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	b := l.src[l.off]
	l.off++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

func isDigit(b byte) bool  { return '0' <= b && b <= '9' }
func isHex(b byte) bool    { return isDigit(b) || ('a' <= b && b <= 'f') || ('A' <= b && b <= 'F') }
func isLetter(b byte) bool { return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') }

// skipSpace consumes whitespace and comments; it reports preprocessor
// directive lines to handleDirective.
func (l *Lexer) skipSpace() {
	for {
		b := l.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			atLineStart := b == '\n'
			l.nextByte()
			if atLineStart && l.peekByte() == '#' {
				l.handleDirective()
			}
		case b == '#' && l.off == 0:
			l.handleDirective()
		case b == '/' && l.peekByteAt(1) == '/':
			for l.peekByte() != '\n' && l.peekByte() != 0 {
				l.nextByte()
			}
		case b == '/' && l.peekByteAt(1) == '*':
			pos := l.pos()
			l.nextByte()
			l.nextByte()
			closed := false
			for l.peekByte() != 0 {
				if l.peekByte() == '*' && l.peekByteAt(1) == '/' {
					l.nextByte()
					l.nextByte()
					closed = true
					break
				}
				l.nextByte()
			}
			if !closed {
				l.errorf(pos, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// handleDirective consumes a preprocessor line starting at '#'. Only
// object-like #define is interpreted; other directives are skipped.
func (l *Lexer) handleDirective() {
	l.nextByte() // '#'
	start := l.off
	for l.peekByte() != '\n' && l.peekByte() != 0 {
		l.nextByte()
	}
	line := strings.TrimSpace(l.src[start:l.off])
	if name, body, ok := parseDefine(line); ok {
		sub := New(l.file, body)
		var toks []token.Token
		for {
			t := sub.rawNext()
			if t.Kind == token.EOF {
				break
			}
			toks = append(toks, t)
		}
		l.macros[name] = toks
	}
}

// parseDefine extracts NAME and body from "define NAME body". Function-like
// macros (NAME immediately followed by '(') are ignored.
func parseDefine(line string) (name, body string, ok bool) {
	const kw = "define"
	if !strings.HasPrefix(line, kw) {
		return "", "", false
	}
	rest := strings.TrimLeft(line[len(kw):], " \t")
	i := 0
	for i < len(rest) && (isLetter(rest[i]) || isDigit(rest[i])) {
		i++
	}
	if i == 0 {
		return "", "", false
	}
	name = rest[:i]
	if i < len(rest) && rest[i] == '(' {
		return "", "", false // function-like macro: unsupported, skip
	}
	return name, strings.TrimSpace(rest[i:]), true
}

// Next returns the next token, applying macro expansion. Macro bodies may
// reference other macros; expansion is repeated on queued tokens, with a
// queue-size bound guarding against self-referential definitions.
func (l *Lexer) Next() token.Token {
	const maxExpansions = 4096
	expansions := 0
	for {
		var t token.Token
		if len(l.pend) > 0 {
			t = l.pend[0]
			l.pend = l.pend[1:]
		} else {
			t = l.rawNext()
		}
		if t.Kind == token.IDENT && expansions < maxExpansions {
			expansions++
			if body, ok := l.macros[t.Text]; ok && !l.expand[t.Text] {
				// Re-position macro tokens at the use site and queue them.
				out := make([]token.Token, len(body))
				for i, bt := range body {
					bt.Pos = t.Pos
					out[i] = bt
				}
				l.pend = append(out, l.pend...)
				continue
			}
		}
		return t
	}
}

// rawNext scans one token with no macro expansion.
func (l *Lexer) rawNext() token.Token {
	l.skipSpace()
	pos := l.pos()
	b := l.peekByte()
	if b == 0 {
		return token.Token{Kind: token.EOF, Pos: pos}
	}

	switch {
	case isLetter(b):
		start := l.off
		for isLetter(l.peekByte()) || isDigit(l.peekByte()) {
			l.nextByte()
		}
		text := l.src[start:l.off]
		kind := token.Lookup(text)
		if kind == token.IDENT {
			return token.Token{Kind: token.IDENT, Pos: pos, Text: text}
		}
		return token.Token{Kind: kind, Pos: pos, Text: text}

	case isDigit(b) || (b == '.' && isDigit(l.peekByteAt(1))):
		return l.scanNumber(pos)

	case b == '\'':
		return l.scanChar(pos)

	case b == '"':
		return l.scanString(pos)
	}

	// Operators and punctuation.
	l.nextByte()
	two := func(next byte, k2, k1 token.Kind) token.Token {
		if l.peekByte() == next {
			l.nextByte()
			return token.Token{Kind: k2, Pos: pos}
		}
		return token.Token{Kind: k1, Pos: pos}
	}
	switch b {
	case '+':
		if l.peekByte() == '+' {
			l.nextByte()
			return token.Token{Kind: token.INC, Pos: pos}
		}
		return two('=', token.ADDASSIGN, token.ADD)
	case '-':
		switch l.peekByte() {
		case '-':
			l.nextByte()
			return token.Token{Kind: token.DEC, Pos: pos}
		case '>':
			l.nextByte()
			return token.Token{Kind: token.ARROW, Pos: pos}
		}
		return two('=', token.SUBASSIGN, token.SUB)
	case '*':
		return two('=', token.MULASSIGN, token.MUL)
	case '/':
		return two('=', token.QUOASSIGN, token.QUO)
	case '%':
		return two('=', token.REMASSIGN, token.REM)
	case '&':
		if l.peekByte() == '&' {
			l.nextByte()
			return token.Token{Kind: token.LAND, Pos: pos}
		}
		return two('=', token.ANDASSIGN, token.AND)
	case '|':
		if l.peekByte() == '|' {
			l.nextByte()
			return token.Token{Kind: token.LOR, Pos: pos}
		}
		return two('=', token.ORASSIGN, token.OR)
	case '^':
		return two('=', token.XORASSIGN, token.XOR)
	case '<':
		if l.peekByte() == '<' {
			l.nextByte()
			return two('=', token.SHLASSIGN, token.SHL)
		}
		return two('=', token.LEQ, token.LSS)
	case '>':
		if l.peekByte() == '>' {
			l.nextByte()
			return two('=', token.SHRASSIGN, token.SHR)
		}
		return two('=', token.GEQ, token.GTR)
	case '=':
		return two('=', token.EQL, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '~':
		return token.Token{Kind: token.TILDE, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case '?':
		return token.Token{Kind: token.QUESTION, Pos: pos}
	case '.':
		if l.peekByte() == '.' && l.peekByteAt(1) == '.' {
			l.nextByte()
			l.nextByte()
			return token.Token{Kind: token.ELLIPSIS, Pos: pos}
		}
		return token.Token{Kind: token.DOT, Pos: pos}
	}
	l.errorf(pos, "illegal character %q", string(rune(b)))
	return token.Token{Kind: token.ILLEGAL, Pos: pos, Text: string(rune(b))}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	isFloat := false
	if l.peekByte() == '0' && (l.peekByteAt(1) == 'x' || l.peekByteAt(1) == 'X') {
		l.nextByte()
		l.nextByte()
		for isHex(l.peekByte()) {
			l.nextByte()
		}
	} else {
		for isDigit(l.peekByte()) {
			l.nextByte()
		}
		if l.peekByte() == '.' {
			isFloat = true
			l.nextByte()
			for isDigit(l.peekByte()) {
				l.nextByte()
			}
		}
		if b := l.peekByte(); b == 'e' || b == 'E' {
			isFloat = true
			l.nextByte()
			if b := l.peekByte(); b == '+' || b == '-' {
				l.nextByte()
			}
			for isDigit(l.peekByte()) {
				l.nextByte()
			}
		}
	}
	// Integer/float suffixes.
	for {
		switch l.peekByte() {
		case 'u', 'U', 'l', 'L':
			l.nextByte()
			continue
		case 'f', 'F':
			if isFloat {
				l.nextByte()
				continue
			}
		}
		break
	}
	text := l.src[start:l.off]
	kind := token.INTLIT
	if isFloat {
		kind = token.FLOATLIT
	}
	return token.Token{Kind: kind, Pos: pos, Text: text}
}

func (l *Lexer) scanChar(pos token.Pos) token.Token {
	l.nextByte() // opening quote
	var sb strings.Builder
	for {
		b := l.peekByte()
		if b == 0 || b == '\n' {
			l.errorf(pos, "unterminated character literal")
			break
		}
		if b == '\'' {
			l.nextByte()
			break
		}
		if b == '\\' {
			l.nextByte()
			sb.WriteByte(l.unescape(l.nextByte(), pos))
			continue
		}
		sb.WriteByte(l.nextByte())
	}
	text := sb.String()
	if len(text) != 1 {
		l.errorf(pos, "character literal must contain exactly one character")
		if text == "" {
			text = "\x00"
		}
	}
	return token.Token{Kind: token.CHARLIT, Pos: pos, Text: text[:1]}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.nextByte() // opening quote
	var sb strings.Builder
	for {
		b := l.peekByte()
		if b == 0 || b == '\n' {
			l.errorf(pos, "unterminated string literal")
			break
		}
		if b == '"' {
			l.nextByte()
			break
		}
		if b == '\\' {
			l.nextByte()
			sb.WriteByte(l.unescape(l.nextByte(), pos))
			continue
		}
		sb.WriteByte(l.nextByte())
	}
	return token.Token{Kind: token.STRINGLIT, Pos: pos, Text: sb.String()}
}

func (l *Lexer) unescape(b byte, pos token.Pos) byte {
	switch b {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	case 'a':
		return 7
	case 'b':
		return 8
	case 'f':
		return 12
	case 'v':
		return 11
	}
	l.errorf(pos, "unknown escape sequence \\%c", b)
	return b
}

// Tokenize scans the whole buffer and returns all tokens including a final
// EOF token, plus any errors.
func Tokenize(file, src string) ([]token.Token, []error) {
	l := New(file, src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	return toks, l.Errors()
}
