package lexer

import (
	"testing"

	"repro/internal/cc/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := Tokenize("test.c", src)
	if len(errs) > 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.Kind)
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := kinds(t, src)
	want = append(want, token.EOF)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	expectKinds(t, "int x while whilex",
		token.INT, token.IDENT, token.WHILE, token.IDENT)
}

func TestOperators(t *testing.T) {
	expectKinds(t, "+ ++ += - -- -= -> * *= / /= % %=",
		token.ADD, token.INC, token.ADDASSIGN,
		token.SUB, token.DEC, token.SUBASSIGN, token.ARROW,
		token.MUL, token.MULASSIGN, token.QUO, token.QUOASSIGN,
		token.REM, token.REMASSIGN)
	expectKinds(t, "<< <<= >> >>= < <= > >= == != = ! & && &= | || |= ^ ^= ~",
		token.SHL, token.SHLASSIGN, token.SHR, token.SHRASSIGN,
		token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.EQL, token.NEQ, token.ASSIGN, token.NOT,
		token.AND, token.LAND, token.ANDASSIGN,
		token.OR, token.LOR, token.ORASSIGN,
		token.XOR, token.XORASSIGN, token.TILDE)
	expectKinds(t, "( ) [ ] { } , ; : ? . ...",
		token.LPAREN, token.RPAREN, token.LBRACK, token.RBRACK,
		token.LBRACE, token.RBRACE, token.COMMA, token.SEMI,
		token.COLON, token.QUESTION, token.DOT, token.ELLIPSIS)
}

func TestNumbers(t *testing.T) {
	toks, errs := Tokenize("t.c", "0 42 0x1F 1.5 1e3 2.5e-2 10L 3u 1.0f")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantKinds := []token.Kind{token.INTLIT, token.INTLIT, token.INTLIT,
		token.FLOATLIT, token.FLOATLIT, token.FLOATLIT,
		token.INTLIT, token.INTLIT, token.FLOATLIT, token.EOF}
	for i, w := range wantKinds {
		if toks[i].Kind != w {
			t.Errorf("token %d (%q): got %v, want %v", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestCharAndString(t *testing.T) {
	toks, errs := Tokenize("t.c", `'a' '\n' '\\' "hi\tthere" ""`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Text != "a" || toks[1].Text != "\n" || toks[2].Text != "\\" {
		t.Errorf("char literals wrong: %q %q %q", toks[0].Text, toks[1].Text, toks[2].Text)
	}
	if toks[3].Text != "hi\tthere" {
		t.Errorf("string literal wrong: %q", toks[3].Text)
	}
	if toks[4].Kind != token.STRINGLIT || toks[4].Text != "" {
		t.Errorf("empty string literal wrong: %v", toks[4])
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "a /* block\ncomment */ b // line\nc",
		token.IDENT, token.IDENT, token.IDENT)
}

func TestDirectivesSkipped(t *testing.T) {
	expectKinds(t, "#include <stdio.h>\nint x;\n#pragma foo\n",
		token.INT, token.IDENT, token.SEMI)
}

func TestObjectMacro(t *testing.T) {
	toks, errs := Tokenize("t.c", "#define N 24\nint a[N];")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	// int a [ 24 ] ;
	if toks[3].Kind != token.INTLIT || toks[3].Text != "24" {
		t.Errorf("macro not expanded: %v", toks[3])
	}
}

func TestMacroExpandsToExpression(t *testing.T) {
	toks, errs := Tokenize("t.c", "#define SZ (4 * 8)\nSZ")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{token.LPAREN, token.INTLIT, token.MUL, token.INTLIT, token.RPAREN, token.EOF}
	for i, w := range want {
		if toks[i].Kind != w {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, w)
		}
	}
}

func TestNestedMacros(t *testing.T) {
	toks, errs := Tokenize("t.c", "#define N 8\n#define SQ (N * N)\nSQ")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{token.LPAREN, token.INTLIT, token.MUL, token.INTLIT, token.RPAREN, token.EOF}
	for i, w := range want {
		if toks[i].Kind != w {
			t.Fatalf("token %d: got %v, want %v (nested macro must expand)", i, toks[i].Kind, w)
		}
	}
	if toks[1].Text != "8" {
		t.Errorf("inner macro not expanded: %q", toks[1].Text)
	}
}

func TestSelfReferentialMacroTerminates(t *testing.T) {
	// Pathological #define X X must not hang the lexer.
	toks, _ := Tokenize("t.c", "#define X X\nX")
	if len(toks) == 0 {
		t.Fatal("lexer returned no tokens")
	}
}

func TestPositions(t *testing.T) {
	toks, _ := Tokenize("f.c", "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestErrors(t *testing.T) {
	_, errs := Tokenize("t.c", "@")
	if len(errs) == 0 {
		t.Error("illegal character should report an error")
	}
	_, errs = Tokenize("t.c", `"unterminated`)
	if len(errs) == 0 {
		t.Error("unterminated string should report an error")
	}
	_, errs = Tokenize("t.c", "/* unterminated")
	if len(errs) == 0 {
		t.Error("unterminated comment should report an error")
	}
}
