package parser

import (
	"testing"

	"repro/internal/cc/types"
)

// typeOfGlobal parses src and returns the type of the named global.
func typeOfGlobal(t *testing.T, src, name string) *types.Type {
	t.Helper()
	tu := mustParse(t, src+"\nint main() { return 0; }\n")
	for _, g := range tu.Globals {
		if g.Obj.Name == name {
			return g.Obj.Type
		}
	}
	t.Fatalf("global %s not found", name)
	return nil
}

func TestDeclaratorShapes(t *testing.T) {
	cases := []struct {
		src, name, want string
	}{
		{"int x;", "x", "int"},
		{"int *p;", "p", "int*"},
		{"int **pp;", "pp", "int**"},
		{"int a[3];", "a", "int[3]"},
		{"int a[2][3];", "a", "int[2][3]"},
		{"int *a[4];", "a", "int*[4]"},
		{"int (*pa)[4];", "pa", "int[4]*"},
		{"int (*fp)(void);", "fp", "int (*)()"},
		{"int (*fp)(int, char);", "fp", "int (*)(int, char)"},
		{"int (*fparr[8])(void);", "fparr", "int (*)()[8]"},
		{"int *(*gp)(int);", "gp", "int* (*)(int)"},
		{"char *(*table[2])(char *);", "table", "char* (*)(char*)[2]"},
		{"double (*mat)[5];", "mat", "double[5]*"},
		{"void (*sig)(int);", "sig", "void (*)(int)"},
	}
	for _, c := range cases {
		got := typeOfGlobal(t, c.src, c.name)
		if got.String() != c.want {
			t.Errorf("%s: type = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestFunctionReturningFunctionPointer(t *testing.T) {
	tu := mustParse(t, `
int add(int a, int b) { return a + b; }
int (*choose(int which))(int, int) {
	if (which)
		return add;
	return 0;
}
int main() {
	int (*fp)(int, int);
	fp = choose(1);
	if (fp)
		return fp(2, 3);
	return 0;
}
`)
	obj := tu.FuncObjects["choose"]
	if obj == nil {
		t.Fatal("choose not declared")
	}
	if obj.Type.Kind != types.Func {
		t.Fatalf("choose is %s, want function", obj.Type)
	}
	ret := obj.Type.Ret
	if !ret.IsFuncPointer() {
		t.Fatalf("choose returns %s, want function pointer", ret)
	}
}

func TestPointerToArrayParamDecay(t *testing.T) {
	tu := mustParse(t, `
void f(double m[3][4]) { m[1][2] = 0.0; }
int main() { return 0; }
`)
	obj := tu.FuncObjects["f"]
	p := obj.Type.Params[0]
	// double m[3][4] decays to double (*)[4].
	if p.Kind != types.Pointer || p.Elem.Kind != types.Array || p.Elem.Len != 4 {
		t.Errorf("param type = %s, want double[4]*", p)
	}
}

func TestTypedefOfFunctionPointer(t *testing.T) {
	tu := mustParse(t, `
typedef int (*binop_t)(int, int);
int add(int a, int b) { return a + b; }
binop_t op = add;
int main() { return op(1, 2); }
`)
	for _, g := range tu.Globals {
		if g.Obj.Name == "op" {
			if !g.Obj.Type.IsFuncPointer() {
				t.Errorf("op type = %s, want function pointer", g.Obj.Type)
			}
			return
		}
	}
	t.Fatal("op not found")
}

func TestStructWithFunctionPointerField(t *testing.T) {
	tu := mustParse(t, `
struct ops {
	int (*open)(int);
	int (*close)(int);
	char *name;
};
int doopen(int fd) { return fd; }
int doclose(int fd) { return 0; }
struct ops fileOps = { doopen, doclose, "file" };
int main() {
	struct ops *o;
	o = &fileOps;
	return o->open(3) + fileOps.close(3);
}
`)
	for _, g := range tu.Globals {
		if g.Obj.Name == "fileOps" {
			f := g.Obj.Type.FieldByName("open")
			if f == nil || !f.Type.IsFuncPointer() {
				t.Errorf("ops.open should be a function pointer")
			}
			return
		}
	}
	t.Fatal("fileOps not found")
}

func TestAnonymousStructTag(t *testing.T) {
	tu := mustParse(t, `
struct { int a; } anon;
int main() { anon.a = 1; return anon.a; }
`)
	for _, g := range tu.Globals {
		if g.Obj.Name == "anon" {
			if g.Obj.Type.Kind != types.Struct || g.Obj.Type.Tag != "" {
				t.Errorf("anon type = %s", g.Obj.Type)
			}
			return
		}
	}
	t.Fatal("anon not found")
}

func TestForwardStructReference(t *testing.T) {
	mustParse(t, `
struct b;
struct a { struct b *link; };
struct b { struct a *back; int v; };
int main() {
	struct a x;
	struct b y;
	x.link = &y;
	y.back = &x;
	return x.link->v;
}
`)
}

func TestMultiDeclaratorLine(t *testing.T) {
	tu := mustParse(t, `
int a, *p, arr[3], (*fp)(void);
int main() { return 0; }
`)
	want := map[string]string{
		"a": "int", "p": "int*", "arr": "int[3]", "fp": "int (*)()",
	}
	found := 0
	for _, g := range tu.Globals {
		if w, ok := want[g.Obj.Name]; ok {
			found++
			if g.Obj.Type.String() != w {
				t.Errorf("%s: type %q, want %q", g.Obj.Name, g.Obj.Type, w)
			}
		}
	}
	if found != len(want) {
		t.Errorf("found %d of %d declarators", found, len(want))
	}
}

func TestParenthesizedNameDeclarator(t *testing.T) {
	got := typeOfGlobal(t, "int (x);", "x")
	if got.Kind != types.Int {
		t.Errorf("int (x) should be plain int, got %s", got)
	}
}
