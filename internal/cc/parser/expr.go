package parser

import (
	"strconv"

	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
)

// Binary operator precedence (C levels, highest binds tightest).
func binPrec(k token.Kind) int {
	switch k {
	case token.MUL, token.QUO, token.REM:
		return 10
	case token.ADD, token.SUB:
		return 9
	case token.SHL, token.SHR:
		return 8
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return 7
	case token.EQL, token.NEQ:
		return 6
	case token.AND:
		return 5
	case token.XOR:
		return 4
	case token.OR:
		return 3
	case token.LAND:
		return 2
	case token.LOR:
		return 1
	}
	return 0
}

// parseExpr parses a full expression including the comma operator.
func (p *Parser) parseExpr() ast.Expr {
	e := p.parseAssignExpr()
	for p.kind() == token.COMMA {
		pos := p.next().Pos
		y := p.parseAssignExpr()
		c := &ast.Comma{X: e, Y: y}
		c.P = pos
		c.T = y.Type()
		e = c
	}
	return e
}

func (p *Parser) parseAssignExpr() ast.Expr {
	lhs := p.parseCondExpr()
	if !p.kind().IsAssignOp() {
		return lhs
	}
	op := p.next()
	p.checkLvalue(lhs)
	rhs := p.parseAssignExpr()
	if lt, rt := lhs.Type(), rhs.Type(); lt != nil && rt != nil &&
		lt.Kind != types.Invalid && rt.Kind != types.Invalid {
		if op.Kind == token.ASSIGN {
			if !types.Compatible(lt, rt) {
				p.errorf(op.Pos, "cannot assign %s to %s", rt, lt)
			}
		} else if !lt.IsArithmetic() && lt.Kind != types.Pointer {
			p.errorf(op.Pos, "invalid operand type %s for %s", lt, op.Kind)
		}
	}
	a := &ast.Assign{Op: op.Kind, LHS: lhs, RHS: rhs}
	a.P = op.Pos
	a.T = lhs.Type()
	return a
}

func (p *Parser) parseCondExpr() ast.Expr {
	c := p.parseBinaryExpr(1)
	if p.kind() != token.QUESTION {
		return c
	}
	pos := p.next().Pos
	p.checkScalar(c)
	thenE := p.parseExpr()
	p.expect(token.COLON)
	elseE := p.parseCondExpr()
	e := &ast.Cond{C: c, Then: thenE, Else: elseE}
	e.P = pos
	e.T = mergeCondTypes(thenE.Type(), elseE.Type())
	return e
}

// mergeCondTypes picks the result type of a ?: expression.
func mergeCondTypes(a, b *types.Type) *types.Type {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.IsArithmetic() && b.IsArithmetic() {
		return arith(a, b)
	}
	if a.Decay().Kind == types.Pointer {
		return a.Decay()
	}
	return b.Decay()
}

func (p *Parser) parseBinaryExpr(minPrec int) ast.Expr {
	x := p.parseUnaryExpr()
	for {
		prec := binPrec(p.kind())
		if prec < minPrec {
			return x
		}
		op := p.next()
		y := p.parseBinaryExpr(prec + 1)
		x = p.typeBinary(op, x, y)
	}
}

// arith returns the usual-arithmetic-conversion result of two types.
func arith(a, b *types.Type) *types.Type {
	rank := func(t *types.Type) int {
		switch t.Kind {
		case types.Double:
			return 6
		case types.Float:
			return 5
		case types.Long:
			return 4
		case types.Int, types.Enum:
			return 3
		case types.Short:
			return 2
		case types.Char:
			return 1
		}
		return 3
	}
	hi := a
	if rank(b) > rank(a) {
		hi = b
	}
	if rank(hi) < 3 {
		return types.IntType // integer promotion
	}
	return hi
}

func (p *Parser) typeBinary(op token.Token, x, y ast.Expr) ast.Expr {
	e := &ast.Binary{Op: op.Kind, X: x, Y: y}
	e.P = op.Pos
	xt, yt := x.Type(), y.Type()
	if xt == nil || yt == nil || xt.Kind == types.Invalid || yt.Kind == types.Invalid {
		e.T = types.IntType
		return e
	}
	dx, dy := xt.Decay(), yt.Decay()
	switch op.Kind {
	case token.LAND, token.LOR, token.EQL, token.NEQ,
		token.LSS, token.GTR, token.LEQ, token.GEQ:
		if !dx.IsScalar() || !dy.IsScalar() {
			p.errorf(op.Pos, "invalid operands to %s (%s and %s)", op.Kind, xt, yt)
		}
		e.T = types.IntType
	case token.ADD:
		switch {
		case dx.Kind == types.Pointer && dy.IsInteger():
			e.T = dx
		case dy.Kind == types.Pointer && dx.IsInteger():
			e.T = dy
		case dx.IsArithmetic() && dy.IsArithmetic():
			e.T = arith(dx, dy)
		default:
			p.errorf(op.Pos, "invalid operands to + (%s and %s)", xt, yt)
			e.T = types.IntType
		}
	case token.SUB:
		switch {
		case dx.Kind == types.Pointer && dy.Kind == types.Pointer:
			e.T = types.LongType
		case dx.Kind == types.Pointer && dy.IsInteger():
			e.T = dx
		case dx.IsArithmetic() && dy.IsArithmetic():
			e.T = arith(dx, dy)
		default:
			p.errorf(op.Pos, "invalid operands to - (%s and %s)", xt, yt)
			e.T = types.IntType
		}
	case token.MUL, token.QUO:
		if !dx.IsArithmetic() || !dy.IsArithmetic() {
			p.errorf(op.Pos, "invalid operands to %s (%s and %s)", op.Kind, xt, yt)
			e.T = types.IntType
		} else {
			e.T = arith(dx, dy)
		}
	case token.REM, token.AND, token.OR, token.XOR, token.SHL, token.SHR:
		if !dx.IsInteger() || !dy.IsInteger() {
			p.errorf(op.Pos, "invalid operands to %s (%s and %s)", op.Kind, xt, yt)
		}
		e.T = arith(dx, dy)
		if !e.T.IsInteger() {
			e.T = types.IntType
		}
	default:
		e.T = types.IntType
	}
	return e
}

func (p *Parser) parseUnaryExpr() ast.Expr {
	pos := p.pos()
	switch p.kind() {
	case token.AND:
		p.next()
		x := p.parseUnaryExpr()
		p.checkAddressable(x)
		p.markAddrTaken(x)
		e := &ast.Unary{Op: token.AND, X: x}
		e.P = pos
		if xt := x.Type(); xt != nil {
			e.T = types.PointerTo(xt)
		}
		return e

	case token.MUL:
		p.next()
		x := p.parseUnaryExpr()
		e := &ast.Unary{Op: token.MUL, X: x}
		e.P = pos
		if xt := x.Type(); xt != nil {
			d := xt.Decay()
			if d.Kind != types.Pointer {
				if xt.Kind != types.Invalid {
					p.errorf(pos, "cannot dereference non-pointer type %s", xt)
				}
				e.T = types.IntType
			} else {
				e.T = d.Elem
			}
		}
		return e

	case token.ADD:
		p.next()
		return p.parseUnaryExpr() // unary plus is a no-op

	case token.SUB, token.NOT, token.TILDE:
		op := p.next()
		x := p.parseUnaryExpr()
		e := &ast.Unary{Op: op.Kind, X: x}
		e.P = pos
		switch op.Kind {
		case token.NOT:
			e.T = types.IntType
		default:
			if xt := x.Type(); xt != nil && xt.IsArithmetic() {
				e.T = arith(xt, types.IntType)
			} else {
				e.T = types.IntType
			}
		}
		return e

	case token.INC, token.DEC:
		op := p.next()
		x := p.parseUnaryExpr()
		p.checkLvalue(x)
		e := &ast.Unary{Op: op.Kind, X: x}
		e.P = pos
		e.T = x.Type()
		return e

	case token.SIZEOF:
		p.next()
		var sz int
		if p.kind() == token.LPAREN && p.isTypeStartAt(p.i+1) {
			p.next()
			t := p.parseTypeName()
			p.expect(token.RPAREN)
			sz = t.Size()
		} else {
			x := p.parseUnaryExpr()
			if xt := x.Type(); xt != nil {
				sz = xt.Size()
			}
		}
		e := &ast.IntLit{Val: int64(sz)}
		e.P = pos
		e.T = types.LongType
		return e

	case token.LPAREN:
		// Cast expression?
		if p.isTypeStartAt(p.i + 1) {
			p.next()
			t := p.parseTypeName()
			p.expect(token.RPAREN)
			x := p.parseUnaryExpr()
			e := &ast.Cast{X: x}
			e.P = pos
			e.T = t
			return e
		}
	}
	return p.parsePostfixExpr()
}

// isTypeStartAt reports whether the token at index i begins a type name.
func (p *Parser) isTypeStartAt(i int) bool {
	if i >= len(p.toks) {
		return false
	}
	switch p.toks[i].Kind {
	case token.VOID, token.CHAR, token.SHORT, token.INT, token.LONG,
		token.FLOAT, token.DOUBLE, token.SIGNED, token.UNSIGNED,
		token.STRUCT, token.UNION, token.ENUM, token.CONST, token.VOLATILE:
		return true
	case token.IDENT:
		obj := p.cur.lookup(p.toks[i].Text)
		return obj != nil && obj.Kind == ast.TypedefName
	}
	return false
}

// parseTypeName parses a type-name (for casts and sizeof): declaration
// specifiers followed by an abstract declarator.
func (p *Parser) parseTypeName() *types.Type {
	base, _, ok := p.parseDeclSpecifiers()
	if !ok {
		p.errorf(p.pos(), "expected type name")
		return types.IntType
	}
	name, t, npos := p.parseDeclarator(base)
	if name != "" {
		p.errorf(npos, "unexpected identifier %s in type name", name)
	}
	return t
}

func (p *Parser) parsePostfixExpr() ast.Expr {
	x := p.parsePrimaryExpr()
	for {
		pos := p.pos()
		switch p.kind() {
		case token.LBRACK:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			e := &ast.Index{X: x, I: idx}
			e.P = pos
			if xt := x.Type(); xt != nil {
				d := xt.Decay()
				if d.Kind != types.Pointer {
					if xt.Kind != types.Invalid {
						p.errorf(pos, "cannot index non-array type %s", xt)
					}
					e.T = types.IntType
				} else {
					e.T = d.Elem
				}
			}
			if it := idx.Type(); it != nil && !it.IsInteger() && it.Kind != types.Invalid {
				p.errorf(idx.Pos(), "array index must have integer type, got %s", it)
			}
			x = e

		case token.LPAREN:
			x = p.parseCall(x, pos)

		case token.DOT, token.ARROW:
			arrow := p.next().Kind == token.ARROW
			nameTok := p.expect(token.IDENT)
			e := &ast.Member{X: x, Name: nameTok.Text, Arrow: arrow}
			e.P = pos
			st := x.Type()
			if st != nil {
				if arrow {
					d := st.Decay()
					if d.Kind != types.Pointer {
						p.errorf(pos, "-> applied to non-pointer type %s", st)
						st = nil
					} else {
						st = d.Elem
					}
				}
			}
			if st != nil {
				if !st.IsAggregate() {
					if st.Kind != types.Invalid {
						p.errorf(pos, "member access on non-struct type %s", st)
					}
					e.T = types.IntType
				} else if f := st.FieldByName(nameTok.Text); f != nil {
					e.Field = f
					e.T = f.Type
				} else {
					p.errorf(pos, "%s has no member named %s", st, nameTok.Text)
					e.T = types.IntType
				}
			}
			x = e

		case token.INC, token.DEC:
			op := p.next()
			p.checkLvalue(x)
			e := &ast.Postfix{Op: op.Kind, X: x}
			e.P = pos
			e.T = x.Type()
			x = e

		default:
			return x
		}
	}
}

func (p *Parser) parseCall(fun ast.Expr, pos token.Pos) ast.Expr {
	p.expect(token.LPAREN)
	var args []ast.Expr
	for p.kind() != token.RPAREN && p.kind() != token.EOF {
		args = append(args, p.parseAssignExpr())
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)

	e := &ast.Call{Fun: fun, Args: args}
	e.P = pos
	ft := fun.Type()
	if ft != nil {
		switch {
		case ft.Kind == types.Func:
			e.T = ft.Ret
		case ft.Kind == types.Pointer && ft.Elem.Kind == types.Func:
			e.T = ft.Elem.Ret
			ft = ft.Elem
		default:
			if ft.Kind != types.Invalid {
				p.errorf(pos, "called object has non-function type %s", ft)
			}
			e.T = types.IntType
			return e
		}
		// Check argument count/types against the prototype.
		if len(ft.Params) > 0 || !ft.Variadic {
			if len(args) < len(ft.Params) {
				p.errorf(pos, "too few arguments: have %d, want %d", len(args), len(ft.Params))
			} else if len(args) > len(ft.Params) && !ft.Variadic && len(ft.Params) > 0 {
				p.errorf(pos, "too many arguments: have %d, want %d", len(args), len(ft.Params))
			}
		}
		for i, a := range args {
			if i < len(ft.Params) {
				if at := a.Type(); at != nil && at.Kind != types.Invalid &&
					!types.Compatible(ft.Params[i], at) {
					p.errorf(a.Pos(), "argument %d: cannot pass %s as %s", i+1, at, ft.Params[i])
				}
			}
		}
	}
	return e
}

func (p *Parser) parsePrimaryExpr() ast.Expr {
	pos := p.pos()
	switch p.kind() {
	case token.IDENT:
		t := p.next()
		obj := p.cur.lookup(t.Text)
		if obj == nil {
			p.errorf(pos, "undeclared identifier %s", t.Text)
			obj = &ast.Object{Name: t.Text, Kind: ast.Var, Type: types.IntType, Pos: pos}
			p.cur.objects[t.Text] = obj
		}
		switch obj.Kind {
		case ast.TypedefName:
			p.errorf(pos, "unexpected type name %s in expression", t.Text)
		case ast.EnumConst:
			e := &ast.IntLit{Val: obj.EnumVal}
			e.P = pos
			e.T = types.IntType
			return e
		case ast.FuncObj:
			// A function name used anywhere except as the callee of a
			// direct call counts as address-taken (it decays to a
			// function pointer). Direct calls look like IDENT '('.
			if p.kind() != token.LPAREN {
				obj.AddrTaken = true
			}
		}
		e := &ast.Ident{Obj: obj}
		e.P = pos
		e.T = obj.Type
		return e

	case token.INTLIT:
		t := p.next()
		v, err := parseIntLit(t.Text)
		if err != nil {
			p.errorf(pos, "bad integer literal %q: %v", t.Text, err)
		}
		e := &ast.IntLit{Val: v}
		e.P = pos
		e.T = types.IntType
		return e

	case token.FLOATLIT:
		t := p.next()
		text := stripFloatSuffix(t.Text)
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			p.errorf(pos, "bad float literal %q: %v", t.Text, err)
		}
		e := &ast.FloatLit{Val: v}
		e.P = pos
		e.T = types.DoubleType
		return e

	case token.CHARLIT:
		t := p.next()
		e := &ast.IntLit{Val: int64(t.Text[0])}
		e.P = pos
		e.T = types.CharType
		return e

	case token.STRINGLIT:
		t := p.next()
		e := &ast.StringLit{Val: t.Text}
		e.P = pos
		e.T = types.PointerTo(types.CharType)
		return e

	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}

	p.errorf(pos, "expected expression, found %s", p.tok())
	p.next()
	e := &ast.IntLit{}
	e.P = pos
	e.T = types.IntType
	return e
}

func parseIntLit(s string) (int64, error) {
	s = stripIntSuffix(s)
	return strconv.ParseInt(s, 0, 64)
}

func stripIntSuffix(s string) string {
	for len(s) > 0 {
		switch s[len(s)-1] {
		case 'u', 'U', 'l', 'L':
			s = s[:len(s)-1]
			continue
		}
		break
	}
	return s
}

func stripFloatSuffix(s string) string {
	for len(s) > 0 {
		switch s[len(s)-1] {
		case 'f', 'F', 'l', 'L':
			s = s[:len(s)-1]
			continue
		}
		break
	}
	return s
}

// checkLvalue reports an error when e cannot be assigned to.
func (p *Parser) checkLvalue(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Obj.Kind == ast.FuncObj || e.Obj.Kind == ast.EnumConst {
			p.errorf(e.Pos(), "%s %s is not an lvalue", e.Obj.Kind, e.Obj.Name)
		}
		if t := e.Type(); t != nil && t.Kind == types.Array {
			p.errorf(e.Pos(), "array %s is not assignable", e.Obj.Name)
		}
	case *ast.Index, *ast.Member:
		// ok
	case *ast.Unary:
		if e.Op != token.MUL {
			p.errorf(e.Pos(), "expression is not an lvalue")
		}
	default:
		p.errorf(e.Pos(), "expression is not an lvalue")
	}
}

// checkAddressable reports an error when &e is invalid.
func (p *Parser) checkAddressable(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		// Variables and functions are addressable.
		if e.Obj.Kind == ast.EnumConst {
			p.errorf(e.Pos(), "cannot take the address of enum constant %s", e.Obj.Name)
		}
	case *ast.Index, *ast.Member:
		// ok
	case *ast.Unary:
		if e.Op != token.MUL {
			p.errorf(e.Pos(), "cannot take the address of this expression")
		}
	default:
		p.errorf(e.Pos(), "cannot take the address of this expression")
	}
}

// markAddrTaken records that &x was applied to a variable or function.
func (p *Parser) markAddrTaken(e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			x.Obj.AddrTaken = true
			return
		case *ast.Index:
			e = x.X
		case *ast.Member:
			if x.Arrow {
				return // address is inside the pointed-to object
			}
			e = x.X
		default:
			return
		}
	}
}

// foldConst evaluates an integer constant expression.
func foldConst(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Val, true
	case *ast.Unary:
		v, ok := foldConst(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.SUB:
			return -v, true
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case token.TILDE:
			return ^v, true
		}
	case *ast.Binary:
		x, ok1 := foldConst(e.X)
		y, ok2 := foldConst(e.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		switch e.Op {
		case token.ADD:
			return x + y, true
		case token.SUB:
			return x - y, true
		case token.MUL:
			return x * y, true
		case token.QUO:
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case token.REM:
			if y == 0 {
				return 0, false
			}
			return x % y, true
		case token.SHL:
			if y < 0 || y > 62 {
				return 0, false
			}
			return x << uint(y), true
		case token.SHR:
			if y < 0 || y > 62 {
				return 0, false
			}
			return x >> uint(y), true
		case token.AND:
			return x & y, true
		case token.OR:
			return x | y, true
		case token.XOR:
			return x ^ y, true
		case token.EQL:
			return b2i(x == y), true
		case token.NEQ:
			return b2i(x != y), true
		case token.LSS:
			return b2i(x < y), true
		case token.GTR:
			return b2i(x > y), true
		case token.LEQ:
			return b2i(x <= y), true
		case token.GEQ:
			return b2i(x >= y), true
		case token.LAND:
			return b2i(x != 0 && y != 0), true
		case token.LOR:
			return b2i(x != 0 || y != 0), true
		}
	case *ast.Cast:
		return foldConst(e.X)
	}
	return 0, false
}
