// Package parser implements a recursive-descent parser for the C subset.
// It resolves identifiers against lexical scopes, tracks typedef names (the
// classic lexer-feedback problem), and types every expression, producing the
// resolved AST defined in package ast.
package parser

import (
	"fmt"
	"strings"

	"repro/internal/cc/ast"
	"repro/internal/cc/lexer"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
)

// Error is a parse or type error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// scope is one lexical scope level.
type scope struct {
	objects map[string]*ast.Object
	tags    map[string]*types.Type
	parent  *scope
}

func newScope(parent *scope) *scope {
	return &scope{objects: make(map[string]*ast.Object), tags: make(map[string]*types.Type), parent: parent}
}

func (s *scope) lookup(name string) *ast.Object {
	for sc := s; sc != nil; sc = sc.parent {
		if obj, ok := sc.objects[name]; ok {
			return obj
		}
	}
	return nil
}

func (s *scope) lookupTag(name string) *types.Type {
	for sc := s; sc != nil; sc = sc.parent {
		if t, ok := sc.tags[name]; ok {
			return t
		}
	}
	return nil
}

// Parser holds parsing state for one translation unit.
type Parser struct {
	toks   []token.Token
	i      int
	errors []error

	fileScope *scope
	cur       *scope

	unit *ast.TranslationUnit

	// Per-function state.
	curFunc    *ast.FuncDecl
	localNames map[string]int // base name -> count, for unique renaming

	// paramNames records the parameter names parsed for each function
	// type node, so a function definition can bind its parameters even
	// when the declarator nests the list inside parentheses (e.g. a
	// function returning a function pointer).
	paramNames map[*types.Type][]string
}

// Parse parses the given source as one translation unit.
func Parse(file, src string) (*ast.TranslationUnit, error) {
	toks, lexErrs := lexer.Tokenize(file, src)
	p := &Parser{toks: toks, paramNames: make(map[*types.Type][]string)}
	p.errors = append(p.errors, lexErrs...)
	p.fileScope = newScope(nil)
	p.cur = p.fileScope
	p.unit = &ast.TranslationUnit{
		File:        file,
		FuncObjects: make(map[string]*ast.Object),
		SourceLines: strings.Count(src, "\n") + 1,
	}
	p.declareBuiltins()
	p.parseUnit()
	if len(p.errors) > 0 {
		return p.unit, p.errorSummary()
	}
	return p.unit, nil
}

func (p *Parser) errorSummary() error {
	const maxShown = 10
	var sb strings.Builder
	for i, e := range p.errors {
		if i == maxShown {
			fmt.Fprintf(&sb, "... and %d more errors", len(p.errors)-maxShown)
			break
		}
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(e.Error())
	}
	return fmt.Errorf("%s", sb.String())
}

// declareBuiltins registers the tiny libc surface the benchmarks use.
// malloc/calloc are recognized specially by the simplifier; the rest are
// opaque externals with no points-to effect on stack locations.
func (p *Parser) declareBuiltins() {
	voidp := types.PointerTo(types.VoidType)
	charp := types.PointerTo(types.CharType)
	decl := func(name string, t *types.Type) {
		obj := &ast.Object{Name: name, Kind: ast.FuncObj, Type: t, Global: true}
		p.fileScope.objects[name] = obj
		// Builtins are not added to FuncObjects: they have no bodies and
		// the analysis treats calls to them as opaque.
		_ = obj
	}
	decl("malloc", types.FuncType(voidp, []*types.Type{types.LongType}, false))
	decl("calloc", types.FuncType(voidp, []*types.Type{types.LongType, types.LongType}, false))
	decl("realloc", types.FuncType(voidp, []*types.Type{voidp, types.LongType}, false))
	decl("free", types.FuncType(types.VoidType, []*types.Type{voidp}, false))
	decl("printf", types.FuncType(types.IntType, []*types.Type{charp}, true))
	decl("sprintf", types.FuncType(types.IntType, []*types.Type{charp, charp}, true))
	decl("scanf", types.FuncType(types.IntType, []*types.Type{charp}, true))
	decl("puts", types.FuncType(types.IntType, []*types.Type{charp}, false))
	decl("putchar", types.FuncType(types.IntType, []*types.Type{types.IntType}, false))
	decl("getchar", types.FuncType(types.IntType, nil, false))
	decl("strcpy", types.FuncType(charp, []*types.Type{charp, charp}, false))
	decl("strcmp", types.FuncType(types.IntType, []*types.Type{charp, charp}, false))
	decl("strlen", types.FuncType(types.LongType, []*types.Type{charp}, false))
	decl("memset", types.FuncType(voidp, []*types.Type{voidp, types.IntType, types.LongType}, false))
	decl("memcpy", types.FuncType(voidp, []*types.Type{voidp, voidp, types.LongType}, false))
	decl("abs", types.FuncType(types.IntType, []*types.Type{types.IntType}, false))
	decl("exit", types.FuncType(types.VoidType, []*types.Type{types.IntType}, false))
	decl("rand", types.FuncType(types.IntType, nil, false))
	decl("srand", types.FuncType(types.VoidType, []*types.Type{types.IntType}, false))
	decl("sqrt", types.FuncType(types.DoubleType, []*types.Type{types.DoubleType}, false))
	decl("fabs", types.FuncType(types.DoubleType, []*types.Type{types.DoubleType}, false))
	decl("atoi", types.FuncType(types.IntType, []*types.Type{charp}, false))
	decl("strcat", types.FuncType(charp, []*types.Type{charp, charp}, false))
	decl("strncpy", types.FuncType(charp, []*types.Type{charp, charp, types.LongType}, false))
	decl("memmove", types.FuncType(voidp, []*types.Type{voidp, voidp, types.LongType}, false))

	// The input/exec surface the taint client models: sources that hand the
	// program attacker-controlled bytes, sinks that hand program data to the
	// shell, and a generic sanitizer the default taint table recognizes.
	decl("getenv", types.FuncType(charp, []*types.Type{charp}, false))
	decl("gets", types.FuncType(charp, []*types.Type{charp}, false))
	decl("fgets", types.FuncType(charp, []*types.Type{charp, types.IntType, voidp}, false))
	decl("read", types.FuncType(types.LongType, []*types.Type{types.IntType, voidp, types.LongType}, false))
	decl("recv", types.FuncType(types.LongType, []*types.Type{types.IntType, voidp, types.LongType, types.IntType}, false))
	decl("system", types.FuncType(types.IntType, []*types.Type{charp}, false))
	decl("popen", types.FuncType(voidp, []*types.Type{charp, charp}, false))
	decl("execl", types.FuncType(types.IntType, []*types.Type{charp}, true))
	decl("execv", types.FuncType(types.IntType, []*types.Type{charp, types.PointerTo(charp)}, false))
	decl("execvp", types.FuncType(types.IntType, []*types.Type{charp, types.PointerTo(charp)}, false))
	decl("sanitize", types.FuncType(types.VoidType, []*types.Type{charp}, false))

	// The pthread surface the race detector models. pthread_t and
	// pthread_mutex_t are opaque handles; integers are enough for the
	// analysis, which only tracks the locations the handles live in.
	typedef := func(name string, t *types.Type) {
		p.fileScope.objects[name] = &ast.Object{Name: name, Kind: ast.TypedefName, Type: t, Global: true}
	}
	typedef("pthread_t", types.LongType)
	typedef("pthread_mutex_t", types.IntType)
	threadFn := types.PointerTo(types.FuncType(voidp, []*types.Type{voidp}, false))
	decl("pthread_create", types.FuncType(types.IntType,
		[]*types.Type{types.PointerTo(types.LongType), voidp, threadFn, voidp}, false))
	decl("pthread_join", types.FuncType(types.IntType, []*types.Type{types.LongType, types.PointerTo(voidp)}, false))
	decl("pthread_exit", types.FuncType(types.VoidType, []*types.Type{voidp}, false))
	mutexp := types.PointerTo(types.IntType)
	decl("pthread_mutex_init", types.FuncType(types.IntType, []*types.Type{mutexp, voidp}, false))
	decl("pthread_mutex_lock", types.FuncType(types.IntType, []*types.Type{mutexp}, false))
	decl("pthread_mutex_unlock", types.FuncType(types.IntType, []*types.Type{mutexp}, false))
	decl("pthread_mutex_destroy", types.FuncType(types.IntType, []*types.Type{mutexp}, false))
}

// ---------------------------------------------------------------------------
// Token plumbing

func (p *Parser) tok() token.Token { return p.toks[p.i] }
func (p *Parser) kind() token.Kind { return p.toks[p.i].Kind }
func (p *Parser) pos() token.Pos   { return p.toks[p.i].Pos }
func (p *Parser) peek() token.Token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *Parser) accept(k token.Kind) bool {
	if p.kind() == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.kind() == k {
		return p.next()
	}
	p.errorf(p.pos(), "expected %s, found %s", k, p.tok())
	return token.Token{Kind: k, Pos: p.pos()}
}

func (p *Parser) errorf(pos token.Pos, format string, args ...any) {
	p.errors = append(p.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	if len(p.errors) > 200 {
		panic(bailout{})
	}
}

type bailout struct{}

// sync skips tokens until a likely statement/declaration boundary.
func (p *Parser) sync() {
	for {
		switch p.kind() {
		case token.SEMI:
			p.next()
			return
		case token.RBRACE, token.EOF:
			return
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Translation unit

func (p *Parser) parseUnit() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
		}
	}()
	for p.kind() != token.EOF {
		p.parseExternalDecl()
	}
}

// storage classes seen on a declaration.
type storage struct {
	isTypedef bool
	isStatic  bool
	isExtern  bool
}

func (p *Parser) parseExternalDecl() {
	start := p.i
	base, sto, ok := p.parseDeclSpecifiers()
	if !ok {
		p.errorf(p.pos(), "expected declaration, found %s", p.tok())
		p.sync()
		return
	}
	// A bare "struct S { ... };" or "enum E { ... };" declaration.
	if p.accept(token.SEMI) {
		return
	}

	first := true
	for {
		name, t, namePos := p.parseDeclarator(base)
		if name == "" {
			p.errorf(namePos, "expected declarator name")
			p.sync()
			return
		}
		if sto.isTypedef {
			obj := &ast.Object{Name: name, Kind: ast.TypedefName, Type: t, Pos: namePos, Global: true}
			p.cur.objects[name] = obj
		} else if t.Kind == types.Func {
			if first && p.kind() == token.LBRACE {
				p.parseFuncDef(name, t, namePos, sto)
				return
			}
			p.declareFunc(name, t, namePos)
		} else {
			p.declareGlobalVar(name, t, namePos, sto)
		}
		first = false
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.SEMI)
	_ = start
}

func (p *Parser) declareFunc(name string, t *types.Type, pos token.Pos) *ast.Object {
	if obj := p.fileScope.objects[name]; obj != nil {
		if obj.Kind == ast.FuncObj {
			return obj // re-declaration (prototype) is fine
		}
		p.errorf(pos, "%s redeclared as function", name)
	}
	obj := &ast.Object{Name: name, Kind: ast.FuncObj, Type: t, Pos: pos, Global: true}
	p.fileScope.objects[name] = obj
	p.unit.FuncObjects[name] = obj
	p.unit.FuncOrder = append(p.unit.FuncOrder, name)
	return obj
}

func (p *Parser) declareGlobalVar(name string, t *types.Type, pos token.Pos, sto storage) {
	var init *ast.Init
	if p.accept(token.ASSIGN) {
		init = p.parseInitializer(t)
	}
	if sto.isExtern && init == nil {
		// extern declaration without definition: declare but emit no
		// GlobalVar entry only if already present.
		if p.fileScope.objects[name] != nil {
			return
		}
	}
	if prev := p.fileScope.objects[name]; prev != nil && prev.Kind == ast.Var {
		// Tentative re-definition; attach initializer if new.
		if init != nil {
			for _, g := range p.unit.Globals {
				if g.Obj == prev {
					g.Init = init
					return
				}
			}
		}
		return
	}
	// Arrays with inferred length from initializer.
	if t.Kind == types.Array && t.Len < 0 && init != nil && init.List != nil {
		t = types.ArrayOf(t.Elem, len(init.List))
	}
	obj := &ast.Object{Name: name, Kind: ast.Var, Type: t, Pos: pos, Global: true, Static: sto.isStatic}
	p.cur.objects[name] = obj
	p.unit.Globals = append(p.unit.Globals, &ast.GlobalVar{Obj: obj, Init: init})
}

func (p *Parser) parseFuncDef(name string, t *types.Type, pos token.Pos, sto storage) {
	obj := p.declareFunc(name, t, pos)
	if obj.Def != nil {
		p.errorf(pos, "function %s redefined", name)
	}
	fd := &ast.FuncDecl{Obj: obj, Pos: pos}
	obj.Def = fd
	obj.Type = t // the definition's type wins over prototypes

	p.curFunc = fd
	p.localNames = make(map[string]int)
	p.cur = newScope(p.cur)

	// Bind parameters by the names recorded for this function type node.
	declaredNames := p.paramNames[t]
	for idx, pt := range t.Params {
		pname := ""
		if idx < len(declaredNames) {
			pname = declaredNames[idx]
		}
		if pname == "" {
			pname = fmt.Sprintf("__arg%d", idx)
		}
		po := &ast.Object{Name: pname, Kind: ast.Param, Type: pt, Pos: pos}
		p.cur.objects[pname] = po
		fd.Params = append(fd.Params, po)
	}

	fd.Body = p.parseBlock()

	p.cur = p.cur.parent
	p.curFunc = nil
	p.unit.Funcs = append(p.unit.Funcs, fd)
	_ = sto
}

// ---------------------------------------------------------------------------
// Declaration specifiers and declarators

// isTypeStart reports whether the current token can begin declaration
// specifiers (keyword type, struct/union/enum, typedef name, storage class).
func (p *Parser) isTypeStart() bool {
	switch p.kind() {
	case token.VOID, token.CHAR, token.SHORT, token.INT, token.LONG,
		token.FLOAT, token.DOUBLE, token.SIGNED, token.UNSIGNED,
		token.STRUCT, token.UNION, token.ENUM, token.CONST, token.VOLATILE,
		token.TYPEDEF, token.STATIC, token.EXTERN, token.AUTO, token.REGISTER:
		return true
	case token.IDENT:
		obj := p.cur.lookup(p.tok().Text)
		return obj != nil && obj.Kind == ast.TypedefName
	}
	return false
}

// parseDeclSpecifiers parses type specifiers plus storage classes.
func (p *Parser) parseDeclSpecifiers() (*types.Type, storage, bool) {
	var sto storage
	var base *types.Type
	var unsigned, signed, sawLong, sawShort bool
	var basicKind types.Kind = types.Invalid
	any := false

	for {
		switch p.kind() {
		case token.TYPEDEF:
			sto.isTypedef = true
			p.next()
		case token.STATIC:
			sto.isStatic = true
			p.next()
		case token.EXTERN:
			sto.isExtern = true
			p.next()
		case token.AUTO, token.REGISTER, token.CONST, token.VOLATILE:
			p.next() // accepted and ignored
		case token.VOID:
			basicKind = types.Void
			p.next()
			any = true
		case token.CHAR:
			basicKind = types.Char
			p.next()
			any = true
		case token.SHORT:
			sawShort = true
			p.next()
			any = true
		case token.INT:
			if basicKind == types.Invalid {
				basicKind = types.Int
			}
			p.next()
			any = true
		case token.LONG:
			sawLong = true
			p.next()
			any = true
		case token.FLOAT:
			basicKind = types.Float
			p.next()
			any = true
		case token.DOUBLE:
			basicKind = types.Double
			p.next()
			any = true
		case token.SIGNED:
			signed = true
			p.next()
			any = true
		case token.UNSIGNED:
			unsigned = true
			p.next()
			any = true
		case token.STRUCT, token.UNION:
			base = p.parseStructOrUnion()
			any = true
		case token.ENUM:
			base = p.parseEnum()
			any = true
		case token.IDENT:
			if base == nil && basicKind == types.Invalid && !sawLong && !sawShort && !unsigned && !signed {
				if obj := p.cur.lookup(p.tok().Text); obj != nil && obj.Kind == ast.TypedefName {
					base = obj.Type
					p.next()
					any = true
					continue
				}
			}
			goto done
		default:
			goto done
		}
	}
done:
	if !any && !sto.isTypedef && !sto.isStatic && !sto.isExtern {
		return nil, sto, false
	}
	if base == nil {
		switch {
		case sawLong:
			base = types.LongType
			if unsigned {
				base = types.ULongType
			}
		case sawShort:
			base = types.ShortType
			if unsigned {
				base = types.UShortType
			}
		case basicKind == types.Char:
			base = types.CharType
			if unsigned {
				base = types.UCharType
			}
		case basicKind == types.Void:
			base = types.VoidType
		case basicKind == types.Float:
			base = types.FloatType
		case basicKind == types.Double:
			base = types.DoubleType
		default:
			base = types.IntType
			if unsigned {
				base = types.UIntType
			}
		}
	}
	_ = signed
	return base, sto, true
}

func (p *Parser) parseStructOrUnion() *types.Type {
	kw := p.next() // struct or union
	kind := types.Struct
	if kw.Kind == token.UNION {
		kind = types.Union
	}
	tag := ""
	if p.kind() == token.IDENT {
		tag = p.next().Text
	}
	var t *types.Type
	if tag != "" {
		if existing := p.cur.lookupTag(tag); existing != nil && existing.Kind == kind {
			t = existing
		}
	}
	if t == nil {
		t = &types.Type{Kind: kind, Tag: tag}
		if tag != "" {
			p.cur.tags[tag] = t
		}
	}
	if p.accept(token.LBRACE) {
		if t.Done {
			// Same tag defined again in a different scope: new type.
			t = &types.Type{Kind: kind, Tag: tag}
			if tag != "" {
				p.cur.tags[tag] = t
			}
		}
		for p.kind() != token.RBRACE && p.kind() != token.EOF {
			base, _, ok := p.parseDeclSpecifiers()
			if !ok {
				p.errorf(p.pos(), "expected member declaration, found %s", p.tok())
				p.sync()
				continue
			}
			for {
				name, ft, npos := p.parseDeclarator(base)
				if name == "" {
					p.errorf(npos, "expected member name")
					break
				}
				if t.FieldByName(name) != nil {
					p.errorf(npos, "duplicate member %s", name)
				}
				t.Fields = append(t.Fields, &types.Field{Name: name, Type: ft})
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.SEMI)
		}
		p.expect(token.RBRACE)
		t.Done = true
	}
	return t
}

func (p *Parser) parseEnum() *types.Type {
	p.next() // enum
	tag := ""
	if p.kind() == token.IDENT {
		tag = p.next().Text
	}
	var t *types.Type
	if tag != "" {
		if existing := p.cur.lookupTag(tag); existing != nil && existing.Kind == types.Enum {
			t = existing
		}
	}
	if t == nil {
		t = &types.Type{Kind: types.Enum, Tag: tag}
		if tag != "" {
			p.cur.tags[tag] = t
		}
	}
	if p.accept(token.LBRACE) {
		val := int64(0)
		for p.kind() != token.RBRACE && p.kind() != token.EOF {
			nameTok := p.expect(token.IDENT)
			if p.accept(token.ASSIGN) {
				val = p.parseConstExpr()
			}
			obj := &ast.Object{Name: nameTok.Text, Kind: ast.EnumConst, Type: types.IntType,
				Pos: nameTok.Pos, EnumVal: val, Global: p.cur == p.fileScope}
			p.cur.objects[nameTok.Text] = obj
			val++
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACE)
		t.Done = true
	}
	return t
}

func (p *Parser) parseConstExpr() int64 {
	e := p.parseCondExpr()
	v, ok := foldConst(e)
	if !ok {
		p.errorf(e.Pos(), "expected constant expression")
		return 0
	}
	return v
}

// parseDeclarator parses pointer declarators around a direct declarator and
// returns (name, fullType, pos). For abstract declarators name is "".
func (p *Parser) parseDeclarator(base *types.Type) (string, *types.Type, token.Pos) {
	t := base
	for p.accept(token.MUL) {
		for p.kind() == token.CONST || p.kind() == token.VOLATILE {
			p.next()
		}
		t = types.PointerTo(t)
	}
	return p.parseDirectDeclarator(t)
}

// parseDirectDeclarator handles IDENT, parenthesized declarators, and the
// array/function suffixes. The classic C declarator inversion is implemented
// by parsing the inner declarator against a placeholder and substituting.
func (p *Parser) parseDirectDeclarator(t *types.Type) (string, *types.Type, token.Pos) {
	pos := p.pos()
	var name string
	var inner func(*types.Type) *types.Type // wraps suffix-built type per inner declarator

	switch p.kind() {
	case token.IDENT:
		name = p.next().Text
	case token.LPAREN:
		// Distinguish "(declarator)" from a parameter list "(int x)".
		if p.peek().Kind == token.MUL || p.peek().Kind == token.IDENT && !p.isTypedefName(p.peek().Text) ||
			p.peek().Kind == token.LPAREN {
			p.next() // (
			// Parse the inner declarator against a marker type; we
			// substitute the real type after parsing suffixes.
			marker := &types.Type{Kind: types.Invalid}
			var innerName string
			var innerType *types.Type
			innerName, innerType, _ = p.parseDeclarator(marker)
			p.expect(token.RPAREN)
			name = innerName
			inner = func(outer *types.Type) *types.Type {
				return p.substMarker(innerType, marker, outer)
			}
		}
	}

	// Suffixes bind tighter than the pointer prefix already applied.
	for {
		switch p.kind() {
		case token.LBRACK:
			p.next()
			n := -1
			if p.kind() != token.RBRACK {
				n = int(p.parseConstExpr())
			}
			p.expect(token.RBRACK)
			t = p.insertArray(t, n)
		case token.LPAREN:
			params, variadic, names := p.parseParamList()
			t = types.FuncType(t, params, variadic)
			p.paramNames[t] = names
		default:
			if inner != nil {
				t = inner(t)
			}
			return name, t, pos
		}
	}
}

func (p *Parser) isTypedefName(s string) bool {
	obj := p.cur.lookup(s)
	return obj != nil && obj.Kind == ast.TypedefName
}

// insertArray converts t into an array of t with length n, but if t already
// ends in array suffixes parsed earlier we must append at the innermost
// element position (C arrays read left-to-right: a[2][3] is array 2 of
// array 3). Since we parse suffixes left to right, each new suffix applies
// to the element type of the innermost array built so far.
func (p *Parser) insertArray(t *types.Type, n int) *types.Type {
	if t.Kind == types.Array {
		return types.ArrayOf(p.insertArray(t.Elem, n), t.Len)
	}
	return types.ArrayOf(t, n)
}

// substMarker rebuilds inner, replacing the marker placeholder with outer.
// Rebuilt function type nodes inherit the recorded parameter names.
func (p *Parser) substMarker(inner, marker, outer *types.Type) *types.Type {
	if inner == marker {
		return outer
	}
	switch inner.Kind {
	case types.Pointer:
		return types.PointerTo(p.substMarker(inner.Elem, marker, outer))
	case types.Array:
		return types.ArrayOf(p.substMarker(inner.Elem, marker, outer), inner.Len)
	case types.Func:
		nt := types.FuncType(p.substMarker(inner.Ret, marker, outer), inner.Params, inner.Variadic)
		if names, ok := p.paramNames[inner]; ok {
			p.paramNames[nt] = names
		}
		return nt
	}
	return inner
}

func (p *Parser) parseParamList() (params []*types.Type, variadic bool, names []string) {
	p.expect(token.LPAREN)
	if p.accept(token.RPAREN) {
		return nil, false, nil // () — unspecified params, treated as none
	}
	// (void)
	if p.kind() == token.VOID && p.peek().Kind == token.RPAREN {
		p.next()
		p.next()
		return nil, false, nil
	}
	for {
		if p.accept(token.ELLIPSIS) {
			variadic = true
			break
		}
		base, _, ok := p.parseDeclSpecifiers()
		if !ok {
			p.errorf(p.pos(), "expected parameter type, found %s", p.tok())
			break
		}
		name, t, _ := p.parseDeclarator(base)
		// Parameters of array/function type decay to pointers.
		t = t.Decay()
		params = append(params, t)
		names = append(names, name)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	return params, variadic, names
}

// parseInitializer parses a scalar expression or a brace list.
func (p *Parser) parseInitializer(t *types.Type) *ast.Init {
	pos := p.pos()
	if p.accept(token.LBRACE) {
		init := &ast.Init{Pos: pos}
		for p.kind() != token.RBRACE && p.kind() != token.EOF {
			var elemType *types.Type
			switch {
			case t != nil && t.Kind == types.Array:
				elemType = t.Elem
			case t != nil && t.IsAggregate():
				if n := len(init.List); n < len(t.Fields) {
					elemType = t.Fields[n].Type
				}
			}
			init.List = append(init.List, p.parseInitializer(elemType))
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACE)
		return init
	}
	e := p.parseAssignExpr()
	return &ast.Init{Pos: pos, Expr: e}
}
