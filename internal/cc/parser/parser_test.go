package parser

import (
	"strings"
	"testing"

	"repro/internal/cc/ast"
	"repro/internal/cc/types"
)

func mustParse(t *testing.T, src string) *ast.TranslationUnit {
	t.Helper()
	tu, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return tu
}

func TestParseMinimal(t *testing.T) {
	tu := mustParse(t, `int main() { return 0; }`)
	if len(tu.Funcs) != 1 || tu.Funcs[0].Name() != "main" {
		t.Fatalf("expected one function main, got %+v", tu.Funcs)
	}
}

func TestParseGlobals(t *testing.T) {
	tu := mustParse(t, `
int a, b;
int *pa;
double d = 1.5;
int arr[10];
char *msg = "hi";
int main() { return 0; }
`)
	names := make(map[string]*types.Type)
	for _, g := range tu.Globals {
		names[g.Obj.Name] = g.Obj.Type
	}
	if names["a"].Kind != types.Int {
		t.Errorf("a: got %s", names["a"])
	}
	if names["pa"].Kind != types.Pointer || names["pa"].Elem.Kind != types.Int {
		t.Errorf("pa: got %s", names["pa"])
	}
	if names["arr"].Kind != types.Array || names["arr"].Len != 10 {
		t.Errorf("arr: got %s", names["arr"])
	}
	if names["msg"].Kind != types.Pointer || names["msg"].Elem.Kind != types.Char {
		t.Errorf("msg: got %s", names["msg"])
	}
}

func TestParseMultiLevelPointers(t *testing.T) {
	tu := mustParse(t, `
int main() {
	int x;
	int *p;
	int **pp;
	int ***ppp;
	p = &x;
	pp = &p;
	ppp = &pp;
	***ppp = 5;
	return **pp;
}
`)
	f := tu.Funcs[0]
	var pp *ast.Object
	for _, l := range f.Locals {
		if l.Name == "ppp" {
			pp = l
		}
	}
	if pp == nil || pp.Type.PointerDepth() != 3 {
		t.Fatalf("ppp should have pointer depth 3, got %v", pp)
	}
}

func TestParseFunctionPointerDeclarator(t *testing.T) {
	tu := mustParse(t, `
int add(int a, int b) { return a + b; }
int (*fp)(int, int);
int (*fparr[24])(int, int);
int main() {
	fp = add;
	fparr[0] = add;
	return fp(1, 2) + (*fparr[0])(3, 4);
}
`)
	var fp, fparr *types.Type
	for _, g := range tu.Globals {
		switch g.Obj.Name {
		case "fp":
			fp = g.Obj.Type
		case "fparr":
			fparr = g.Obj.Type
		}
	}
	if fp == nil || !fp.IsFuncPointer() {
		t.Fatalf("fp should be function pointer, got %s", fp)
	}
	if fparr == nil || fparr.Kind != types.Array || fparr.Len != 24 || !fparr.Elem.IsFuncPointer() {
		t.Fatalf("fparr should be array[24] of function pointer, got %s", fparr)
	}
	// add is used as a value (fp = add), so it is address-taken.
	if !tu.FuncObjects["add"].AddrTaken {
		t.Error("add should be marked address-taken")
	}
	// main is never referenced outside its definition.
	if tu.FuncObjects["main"].AddrTaken {
		t.Error("main should not be address-taken")
	}
}

func TestDirectCallNotAddrTaken(t *testing.T) {
	tu := mustParse(t, `
int f(void) { return 1; }
int main() { return f(); }
`)
	if tu.FuncObjects["f"].AddrTaken {
		t.Error("direct call should not mark f address-taken")
	}
}

func TestParseStructs(t *testing.T) {
	tu := mustParse(t, `
struct point { int x; int y; struct point *next; };
typedef struct point Point;
int main() {
	struct point p;
	Point q;
	Point *pq;
	pq = &q;
	p.x = 1;
	pq->y = 2;
	(*pq).x = 3;
	p.next = pq;
	return p.x + pq->y;
}
`)
	f := tu.Funcs[0]
	if len(f.Locals) != 3 {
		t.Fatalf("expected 3 locals, got %d", len(f.Locals))
	}
	if f.Locals[0].Type.Kind != types.Struct {
		t.Errorf("p should be struct, got %s", f.Locals[0].Type)
	}
	st := f.Locals[0].Type
	if st.FieldByName("next") == nil || !st.FieldByName("next").Type.IsFuncPointer() == false && st.FieldByName("next").Type.Kind != types.Pointer {
		t.Errorf("next should be pointer field")
	}
}

func TestParseControlFlow(t *testing.T) {
	tu := mustParse(t, `
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 10; i++) {
		if (i == 5) continue;
		if (i == 8) break;
		s += i;
	}
	while (s > 0) { s--; }
	do { s++; } while (s < 3);
	switch (s) {
	case 0:
	case 1:
		s = 10;
		break;
	case 2:
		s = 20;
		break;
	default:
		s = 30;
	}
	return s;
}
`)
	if len(tu.Funcs) != 1 {
		t.Fatal("expected one function")
	}
	// Find the switch and check arms.
	var sw *ast.Switch
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, c := range s.List {
				walk(c)
			}
		case *ast.Switch:
			sw = s
		}
	}
	walk(tu.Funcs[0].Body)
	if sw == nil {
		t.Fatal("switch not found")
	}
	if len(sw.Cases) != 3 {
		t.Fatalf("expected 3 case arms, got %d", len(sw.Cases))
	}
	if len(sw.Cases[0].Vals) != 2 {
		t.Errorf("first arm should have 2 values (0,1), got %v", sw.Cases[0].Vals)
	}
	if !sw.Cases[2].IsDefault {
		t.Error("last arm should be default")
	}
}

func TestParseEnumAndSizeof(t *testing.T) {
	tu := mustParse(t, `
enum color { RED, GREEN = 5, BLUE };
int main() {
	int a;
	a = BLUE + sizeof(int) + sizeof(a);
	return a;
}
`)
	_ = tu
	// BLUE should be 6; constant resolution happens in the parser, so a
	// successful parse with no errors is the main assertion here.
}

func TestLocalShadowRenaming(t *testing.T) {
	tu := mustParse(t, `
int main() {
	int x;
	x = 1;
	{
		int x;
		x = 2;
	}
	return x;
}
`)
	f := tu.Funcs[0]
	if len(f.Locals) != 2 {
		t.Fatalf("expected 2 locals, got %d", len(f.Locals))
	}
	if f.Locals[0].Name == f.Locals[1].Name {
		t.Errorf("shadowed locals should be renamed uniquely: %s vs %s",
			f.Locals[0].Name, f.Locals[1].Name)
	}
}

func TestParseMalloc(t *testing.T) {
	mustParse(t, `
int main() {
	int *p;
	p = (int *) malloc(10 * sizeof(int));
	*p = 5;
	free(p);
	return 0;
}
`)
}

func TestParseCastAndFuncPtrCast(t *testing.T) {
	mustParse(t, `
int f(void) { return 0; }
int main() {
	void *v;
	int (*fp)(void);
	v = (void *) f;
	fp = (int (*)(void)) v;
	return fp();
}
`)
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undeclared", `int main() { return x; }`, "undeclared identifier x"},
		{"bad deref", `int main() { int x; return *x; }`, "cannot dereference"},
		{"bad member", `struct s { int a; }; int main() { struct s v; return v.b; }`, "no member named b"},
		{"dup case", `int main() { switch (1) { case 1: case 1: return 0; } }`, "duplicate case"},
		{"assign to func", `int f() { return 0; } int main() { f = 0; return 0; }`, "not an lvalue"},
		{"void return value", `void f() { return 3; } int main() { return 0; }`, "void function"},
		{"redeclare", `int main() { int x; int x; return 0; }`, "redeclared"},
		{"call non-func", `int main() { int x; return x(); }`, "non-function"},
		{"too few args", `int f(int a, int b) { return a; } int main() { return f(1); }`, "too few arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("test.c", tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got none", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("expected error containing %q, got: %v", tc.want, err)
			}
		})
	}
}

func TestParseGotoAndLabels(t *testing.T) {
	tu := mustParse(t, `
int main() {
	int i;
	i = 0;
loop:
	i++;
	if (i < 10) goto loop;
	return i;
}
`)
	found := false
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, c := range s.List {
				walk(c)
			}
		case *ast.Label:
			if s.Name == "loop" {
				found = true
			}
			walk(s.Stmt)
		}
	}
	walk(tu.Funcs[0].Body)
	if !found {
		t.Error("label loop not found")
	}
}

func TestParseTernaryAndComma(t *testing.T) {
	mustParse(t, `
int main() {
	int a, b, c;
	a = 1;
	b = a > 0 ? 10 : 20;
	c = (a = 2, b = 3, a + b);
	return c;
}
`)
}

func TestParsePointerArithmetic(t *testing.T) {
	tu := mustParse(t, `
int main() {
	int arr[10];
	int *p, *q;
	long d;
	p = arr;
	q = p + 3;
	d = q - p;
	return (int) d;
}
`)
	_ = tu
}

func TestParseDefineMacro(t *testing.T) {
	tu := mustParse(t, `
#define N 24
#define MSG "hello"
int arr[N];
int main() { return N; }
`)
	for _, g := range tu.Globals {
		if g.Obj.Name == "arr" {
			if g.Obj.Type.Len != 24 {
				t.Errorf("arr length should be 24 via macro, got %d", g.Obj.Type.Len)
			}
			return
		}
	}
	t.Fatal("arr not found")
}

func TestArrayOfArrays(t *testing.T) {
	tu := mustParse(t, `
double m[3][4];
int main() {
	m[1][2] = 1.0;
	return 0;
}
`)
	for _, g := range tu.Globals {
		if g.Obj.Name == "m" {
			tt := g.Obj.Type
			if tt.Kind != types.Array || tt.Len != 3 ||
				tt.Elem.Kind != types.Array || tt.Elem.Len != 4 {
				t.Fatalf("m should be [3][4]double, got %s", tt)
			}
			return
		}
	}
	t.Fatal("m not found")
}

func TestVariadicPrototype(t *testing.T) {
	mustParse(t, `
int main() {
	printf("%d %d\n", 1, 2);
	return 0;
}
`)
}
