package parser

import (
	"fmt"

	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
)

func (p *Parser) parseBlock() *ast.Block {
	pos := p.pos()
	p.expect(token.LBRACE)
	p.cur = newScope(p.cur)
	blk := &ast.Block{}
	p.at(blk, pos)
	for p.kind() != token.RBRACE && p.kind() != token.EOF {
		blk.List = append(blk.List, p.parseStmt())
	}
	p.expect(token.RBRACE)
	p.cur = p.cur.parent
	return blk
}

func (p *Parser) parseStmt() ast.Stmt {
	pos := p.pos()
	switch p.kind() {
	case token.LBRACE:
		return p.parseBlock()

	case token.IF:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.checkScalar(cond)
		p.expect(token.RPAREN)
		thenS := p.parseStmt()
		var elseS ast.Stmt
		if p.accept(token.ELSE) {
			elseS = p.parseStmt()
		}
		s := &ast.If{Cond: cond, Then: thenS, Else: elseS}
		p.at(s, pos)
		return s

	case token.WHILE:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.checkScalar(cond)
		p.expect(token.RPAREN)
		body := p.parseStmt()
		s := &ast.While{Cond: cond, Body: body}
		p.at(s, pos)
		return s

	case token.DO:
		p.next()
		body := p.parseStmt()
		p.expect(token.WHILE)
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.checkScalar(cond)
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		s := &ast.Do{Body: body, Cond: cond}
		p.at(s, pos)
		return s

	case token.FOR:
		p.next()
		p.expect(token.LPAREN)
		p.cur = newScope(p.cur)
		var initS ast.Stmt
		if p.kind() != token.SEMI {
			if p.isTypeStart() {
				initS = p.parseDeclStmt()
			} else {
				e := p.parseExpr()
				es := &ast.ExprStmt{X: e}
				p.at(es, e.Pos())
				initS = es
				p.expect(token.SEMI)
			}
		} else {
			p.expect(token.SEMI)
		}
		var cond ast.Expr
		if p.kind() != token.SEMI {
			cond = p.parseExpr()
			p.checkScalar(cond)
		}
		p.expect(token.SEMI)
		var post ast.Expr
		if p.kind() != token.RPAREN {
			post = p.parseExpr()
		}
		p.expect(token.RPAREN)
		body := p.parseStmt()
		p.cur = p.cur.parent
		s := &ast.For{Init: initS, Cond: cond, Post: post, Body: body}
		p.at(s, pos)
		return s

	case token.SWITCH:
		return p.parseSwitch()

	case token.BREAK:
		p.next()
		p.expect(token.SEMI)
		s := &ast.Break{}
		p.at(s, pos)
		return s

	case token.CONTINUE:
		p.next()
		p.expect(token.SEMI)
		s := &ast.Continue{}
		p.at(s, pos)
		return s

	case token.RETURN:
		p.next()
		var x ast.Expr
		if p.kind() != token.SEMI {
			x = p.parseExpr()
		}
		p.expect(token.SEMI)
		if p.curFunc != nil {
			ret := p.curFunc.Obj.Type.Ret
			if x == nil && ret.Kind != types.Void {
				p.errorf(pos, "return with no value in function returning %s", ret)
			}
			if x != nil && ret.Kind == types.Void {
				p.errorf(pos, "return with a value in void function %s", p.curFunc.Name())
			}
			if x != nil && ret.Kind != types.Void && !types.Compatible(ret, x.Type()) {
				p.errorf(pos, "cannot return %s from function returning %s", x.Type(), ret)
			}
		}
		s := &ast.Return{X: x}
		p.at(s, pos)
		return s

	case token.GOTO:
		p.next()
		lbl := p.expect(token.IDENT)
		p.expect(token.SEMI)
		s := &ast.Goto{Label: lbl.Text}
		p.at(s, pos)
		return s

	case token.SEMI:
		p.next()
		s := &ast.Empty{}
		p.at(s, pos)
		return s

	case token.IDENT:
		// Label?
		if p.peek().Kind == token.COLON && !p.isTypedefName(p.tok().Text) {
			name := p.next().Text
			p.next() // :
			inner := p.parseStmt()
			s := &ast.Label{Name: name, Stmt: inner}
			p.at(s, pos)
			return s
		}
	}

	if p.isTypeStart() {
		return p.parseDeclStmt()
	}

	e := p.parseExpr()
	p.expect(token.SEMI)
	s := &ast.ExprStmt{X: e}
	p.at(s, pos)
	return s
}

func (p *Parser) parseSwitch() ast.Stmt {
	pos := p.pos()
	p.next() // switch
	p.expect(token.LPAREN)
	tag := p.parseExpr()
	if tag.Type() != nil && !tag.Type().IsInteger() {
		p.errorf(tag.Pos(), "switch expression must have integer type, got %s", tag.Type())
	}
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	p.cur = newScope(p.cur)

	sw := &ast.Switch{Tag: tag}
	p.at(sw, pos)
	var cur *ast.SwitchCase
	seenVals := make(map[int64]bool)
	seenDefault := false

	for p.kind() != token.RBRACE && p.kind() != token.EOF {
		switch p.kind() {
		case token.CASE:
			cpos := p.next().Pos
			v := p.parseConstExpr()
			p.expect(token.COLON)
			if seenVals[v] {
				p.errorf(cpos, "duplicate case value %d", v)
			}
			seenVals[v] = true
			// Adjacent case labels share one arm.
			if cur != nil && len(cur.Body) == 0 && !cur.IsDefault {
				cur.Vals = append(cur.Vals, v)
			} else {
				cur = &ast.SwitchCase{Pos: cpos, Vals: []int64{v}}
				sw.Cases = append(sw.Cases, cur)
			}
		case token.DEFAULT:
			dpos := p.next().Pos
			p.expect(token.COLON)
			if seenDefault {
				p.errorf(dpos, "multiple default labels in one switch")
			}
			seenDefault = true
			cur = &ast.SwitchCase{Pos: dpos, IsDefault: true}
			sw.Cases = append(sw.Cases, cur)
		default:
			if cur == nil {
				p.errorf(p.pos(), "statement before first case label in switch")
				cur = &ast.SwitchCase{Pos: p.pos(), Vals: []int64{}}
				sw.Cases = append(sw.Cases, cur)
			}
			cur.Body = append(cur.Body, p.parseStmt())
		}
	}
	p.expect(token.RBRACE)
	p.cur = p.cur.parent
	return sw
}

// parseDeclStmt parses a block-scope declaration, uniquifying names within
// the enclosing function.
func (p *Parser) parseDeclStmt() ast.Stmt {
	pos := p.pos()
	base, sto, ok := p.parseDeclSpecifiers()
	if !ok {
		p.errorf(pos, "expected declaration")
		p.sync()
		s := &ast.Empty{}
		p.at(s, pos)
		return s
	}
	ds := &ast.DeclStmt{}
	p.at(ds, pos)
	if p.accept(token.SEMI) {
		return ds // bare struct/enum declaration
	}
	for {
		name, t, npos := p.parseDeclarator(base)
		if name == "" {
			p.errorf(npos, "expected declarator name")
			p.sync()
			return ds
		}
		if sto.isTypedef {
			obj := &ast.Object{Name: name, Kind: ast.TypedefName, Type: t, Pos: npos}
			p.cur.objects[name] = obj
		} else if t.Kind == types.Func {
			// Local function prototype.
			p.declareFunc(name, t, npos)
		} else {
			var init *ast.Init
			if p.accept(token.ASSIGN) {
				init = p.parseInitializer(t)
			}
			if t.Kind == types.Array && t.Len < 0 && init != nil && init.List != nil {
				t = types.ArrayOf(t.Elem, len(init.List))
			}
			if t.Kind == types.Void {
				p.errorf(npos, "variable %s has incomplete type void", name)
			}
			obj := p.declareLocal(name, t, npos, sto)
			ds.Objects = append(ds.Objects, obj)
			ds.Inits = append(ds.Inits, init)
		}
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.SEMI)
	return ds
}

// declareLocal declares a block-scope variable, renaming it if the name is
// already used elsewhere in this function so that every local has a unique
// name (abstract stack locations are named per function).
func (p *Parser) declareLocal(name string, t *types.Type, pos token.Pos, sto storage) *ast.Object {
	if _, exists := p.cur.objects[name]; exists {
		p.errorf(pos, "%s redeclared in this block", name)
	}
	unique := name
	if p.localNames != nil {
		if n := p.localNames[name]; n > 0 {
			unique = fmt.Sprintf("%s__%d", name, n)
		}
		p.localNames[name]++
	}
	obj := &ast.Object{Name: unique, Kind: ast.Var, Type: t, Pos: pos, Static: sto.isStatic}
	p.cur.objects[name] = obj // lookup by source name
	if p.curFunc != nil {
		p.curFunc.Locals = append(p.curFunc.Locals, obj)
	}
	return obj
}

// at sets the statement's position.
func (p *Parser) at(s ast.Stmt, pos token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		s.P = pos
	case *ast.DeclStmt:
		s.P = pos
	case *ast.Block:
		s.P = pos
	case *ast.If:
		s.P = pos
	case *ast.While:
		s.P = pos
	case *ast.Do:
		s.P = pos
	case *ast.For:
		s.P = pos
	case *ast.Switch:
		s.P = pos
	case *ast.Break:
		s.P = pos
	case *ast.Continue:
		s.P = pos
	case *ast.Return:
		s.P = pos
	case *ast.Goto:
		s.P = pos
	case *ast.Label:
		s.P = pos
	case *ast.Empty:
		s.P = pos
	}
}

func (p *Parser) checkScalar(e ast.Expr) {
	if t := e.Type(); t != nil && !t.IsScalar() && t.Kind != types.Invalid {
		p.errorf(e.Pos(), "condition must have scalar type, got %s", t)
	}
}
