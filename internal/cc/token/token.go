// Package token defines the lexical tokens of the C subset accepted by the
// frontend, along with source positions.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds are contiguous so IsKeyword can use a range
// check.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT     // main
	INTLIT    // 12345
	FLOATLIT  // 1.25
	CHARLIT   // 'a'
	STRINGLIT // "abc"

	keywordBegin
	AUTO
	BREAK
	CASE
	CHAR
	CONST
	CONTINUE
	DEFAULT
	DO
	DOUBLE
	ELSE
	ENUM
	EXTERN
	FLOAT
	FOR
	GOTO
	IF
	INT
	LONG
	REGISTER
	RETURN
	SHORT
	SIGNED
	SIZEOF
	STATIC
	STRUCT
	SWITCH
	TYPEDEF
	UNION
	UNSIGNED
	VOID
	VOLATILE
	WHILE
	keywordEnd

	ADD    // +
	SUB    // -
	MUL    // *
	QUO    // /
	REM    // %
	AND    // &
	OR     // |
	XOR    // ^
	SHL    // <<
	SHR    // >>
	LAND   // &&
	LOR    // ||
	NOT    // !
	TILDE  // ~
	INC    // ++
	DEC    // --
	EQL    // ==
	NEQ    // !=
	LSS    // <
	GTR    // >
	LEQ    // <=
	GEQ    // >=
	ASSIGN // =

	ADDASSIGN // +=
	SUBASSIGN // -=
	MULASSIGN // *=
	QUOASSIGN // /=
	REMASSIGN // %=
	ANDASSIGN // &=
	ORASSIGN  // |=
	XORASSIGN // ^=
	SHLASSIGN // <<=
	SHRASSIGN // >>=

	LPAREN   // (
	RPAREN   // )
	LBRACK   // [
	RBRACK   // ]
	LBRACE   // {
	RBRACE   // }
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	QUESTION // ?
	DOT      // .
	ARROW    // ->
	ELLIPSIS // ...
)

var kindNames = map[Kind]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	IDENT:     "identifier",
	INTLIT:    "integer literal",
	FLOATLIT:  "float literal",
	CHARLIT:   "character literal",
	STRINGLIT: "string literal",

	AUTO:     "auto",
	BREAK:    "break",
	CASE:     "case",
	CHAR:     "char",
	CONST:    "const",
	CONTINUE: "continue",
	DEFAULT:  "default",
	DO:       "do",
	DOUBLE:   "double",
	ELSE:     "else",
	ENUM:     "enum",
	EXTERN:   "extern",
	FLOAT:    "float",
	FOR:      "for",
	GOTO:     "goto",
	IF:       "if",
	INT:      "int",
	LONG:     "long",
	REGISTER: "register",
	RETURN:   "return",
	SHORT:    "short",
	SIGNED:   "signed",
	SIZEOF:   "sizeof",
	STATIC:   "static",
	STRUCT:   "struct",
	SWITCH:   "switch",
	TYPEDEF:  "typedef",
	UNION:    "union",
	UNSIGNED: "unsigned",
	VOID:     "void",
	VOLATILE: "volatile",
	WHILE:    "while",

	ADD:    "+",
	SUB:    "-",
	MUL:    "*",
	QUO:    "/",
	REM:    "%",
	AND:    "&",
	OR:     "|",
	XOR:    "^",
	SHL:    "<<",
	SHR:    ">>",
	LAND:   "&&",
	LOR:    "||",
	NOT:    "!",
	TILDE:  "~",
	INC:    "++",
	DEC:    "--",
	EQL:    "==",
	NEQ:    "!=",
	LSS:    "<",
	GTR:    ">",
	LEQ:    "<=",
	GEQ:    ">=",
	ASSIGN: "=",

	ADDASSIGN: "+=",
	SUBASSIGN: "-=",
	MULASSIGN: "*=",
	QUOASSIGN: "/=",
	REMASSIGN: "%=",
	ANDASSIGN: "&=",
	ORASSIGN:  "|=",
	XORASSIGN: "^=",
	SHLASSIGN: "<<=",
	SHRASSIGN: ">>=",

	LPAREN:   "(",
	RPAREN:   ")",
	LBRACK:   "[",
	RBRACK:   "]",
	LBRACE:   "{",
	RBRACE:   "}",
	COMMA:    ",",
	SEMI:     ";",
	COLON:    ":",
	QUESTION: "?",
	DOT:      ".",
	ARROW:    "->",
	ELLIPSIS: "...",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a C keyword.
func (k Kind) IsKeyword() bool { return keywordBegin < k && k < keywordEnd }

// IsAssignOp reports whether k is one of the assignment operators.
func (k Kind) IsAssignOp() bool {
	switch k {
	case ASSIGN, ADDASSIGN, SUBASSIGN, MULASSIGN, QUOASSIGN, REMASSIGN,
		ANDASSIGN, ORASSIGN, XORASSIGN, SHLASSIGN, SHRASSIGN:
		return true
	}
	return false
}

// BaseOp returns the underlying binary operator of a compound assignment
// (e.g. ADDASSIGN -> ADD). It returns ILLEGAL for plain ASSIGN and for
// non-assignment kinds.
func (k Kind) BaseOp() Kind {
	switch k {
	case ADDASSIGN:
		return ADD
	case SUBASSIGN:
		return SUB
	case MULASSIGN:
		return MUL
	case QUOASSIGN:
		return QUO
	case REMASSIGN:
		return REM
	case ANDASSIGN:
		return AND
	case ORASSIGN:
		return OR
	case XORASSIGN:
		return XOR
	case SHLASSIGN:
		return SHL
	case SHRASSIGN:
		return SHR
	}
	return ILLEGAL
}

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBegin + 1; k < keywordEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or IDENT if the
// spelling is not a keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position: file name, 1-based line and column.
type Pos struct {
	File string
	Line int
	Col  int
}

// String formats the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position carries line information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token with its position and literal text.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // literal text for IDENT and literal kinds
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT, CHARLIT, STRINGLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}
