// Package types implements the semantic type system of the C subset: basic
// arithmetic types, pointers, arrays, structs/unions, enums and function
// types, with the operations the simplifier and points-to analysis need
// (pointer depth, field enumeration, compatibility).
package types

import (
	"fmt"
	"strings"
)

// Kind discriminates Type.
type Kind int

// Type kinds.
const (
	Invalid Kind = iota
	Void
	Char
	Short
	Int
	Long
	Float
	Double
	Pointer
	Array
	Struct
	Union
	Enum
	Func
)

func (k Kind) String() string {
	switch k {
	case Invalid:
		return "invalid"
	case Void:
		return "void"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Long:
		return "long"
	case Float:
		return "float"
	case Double:
		return "double"
	case Pointer:
		return "pointer"
	case Array:
		return "array"
	case Struct:
		return "struct"
	case Union:
		return "union"
	case Enum:
		return "enum"
	case Func:
		return "func"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Field is one member of a struct or union.
type Field struct {
	Name string
	Type *Type
}

// Type is a semantic C type. Types are mutable only during construction;
// after Sema completes they are treated as immutable.
type Type struct {
	Kind     Kind
	Unsigned bool // for integer kinds

	Elem *Type // Pointer: pointee; Array: element
	Len  int   // Array: element count (-1 if unknown, e.g. extern or param)

	Tag    string   // Struct/Union/Enum tag ("" if anonymous)
	Fields []*Field // Struct/Union members (nil until completed)
	Done   bool     // Struct/Union definition completed

	Ret      *Type   // Func: return type
	Params   []*Type // Func: parameter types
	Variadic bool    // Func: declared with ...
}

// Singleton basic types. These are shared; never mutate them.
var (
	VoidType   = &Type{Kind: Void}
	CharType   = &Type{Kind: Char}
	ShortType  = &Type{Kind: Short}
	IntType    = &Type{Kind: Int}
	LongType   = &Type{Kind: Long}
	UCharType  = &Type{Kind: Char, Unsigned: true}
	UShortType = &Type{Kind: Short, Unsigned: true}
	UIntType   = &Type{Kind: Int, Unsigned: true}
	ULongType  = &Type{Kind: Long, Unsigned: true}
	FloatType  = &Type{Kind: Float}
	DoubleType = &Type{Kind: Double}
)

// PointerTo returns a pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Pointer, Elem: elem} }

// ArrayOf returns an array type of n elems (n == -1 means unknown length).
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// FuncType returns a function type.
func FuncType(ret *Type, params []*Type, variadic bool) *Type {
	return &Type{Kind: Func, Ret: ret, Params: params, Variadic: variadic}
}

// IsInteger reports whether t is an integer (or enum) type.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case Char, Short, Int, Long, Enum:
		return true
	}
	return false
}

// IsFloat reports whether t is a floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == Float || t.Kind == Double }

// IsArithmetic reports whether t is arithmetic (integer or float).
func (t *Type) IsArithmetic() bool { return t.IsInteger() || t.IsFloat() }

// IsScalar reports whether t can appear in a condition (arithmetic or
// pointer, with arrays and functions decaying to pointers).
func (t *Type) IsScalar() bool {
	return t.IsArithmetic() || t.Kind == Pointer || t.Kind == Array || t.Kind == Func
}

// IsPointerLike reports whether a value of type t holds an address after the
// usual decay: pointers themselves, plus arrays and functions in rvalue
// position.
func (t *Type) IsPointerLike() bool {
	return t.Kind == Pointer || t.Kind == Array || t.Kind == Func
}

// IsAggregate reports whether t is a struct or union.
func (t *Type) IsAggregate() bool { return t.Kind == Struct || t.Kind == Union }

// IsFuncPointer reports whether t is a pointer to a function.
func (t *Type) IsFuncPointer() bool {
	return t.Kind == Pointer && t.Elem != nil && t.Elem.Kind == Func
}

// Decay returns the type after array-to-pointer and function-to-pointer
// decay; other types are returned unchanged.
func (t *Type) Decay() *Type {
	switch t.Kind {
	case Array:
		return PointerTo(t.Elem)
	case Func:
		return PointerTo(t)
	}
	return t
}

// PointerDepth returns the number of pointer levels of t. Arrays of pointers
// count their element depth; non-pointers have depth 0. A function pointer
// contributes one level (its pointee is code, not data).
func (t *Type) PointerDepth() int {
	switch t.Kind {
	case Pointer:
		if t.Elem.Kind == Func {
			return 1
		}
		return 1 + t.Elem.PointerDepth()
	case Array:
		return t.Elem.PointerDepth()
	}
	return 0
}

// FieldByName returns the field with the given name, or nil.
func (t *Type) FieldByName(name string) *Field {
	if !t.IsAggregate() {
		return nil
	}
	for _, f := range t.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// HasPointers reports whether a value of type t can contain a pointer
// (directly or inside aggregate members or array elements). This is used to
// decide which locations the points-to analysis must model.
func (t *Type) HasPointers() bool { return t.hasPointers(make(map[*Type]bool)) }

func (t *Type) hasPointers(seen map[*Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t.Kind {
	case Pointer:
		return true
	case Array:
		return t.Elem.hasPointers(seen)
	case Struct, Union:
		for _, f := range t.Fields {
			if f.Type.hasPointers(seen) {
				return true
			}
		}
	}
	return false
}

// Size returns a byte size for the type under the analysis's simple model
// (char 1, short 2, int/float/enum 4, long/double/pointer 8). It exists so
// sizeof can be constant-folded; the points-to analysis itself never depends
// on layout.
func (t *Type) Size() int {
	switch t.Kind {
	case Void:
		return 1
	case Char:
		return 1
	case Short:
		return 2
	case Int, Enum, Float:
		return 4
	case Long, Double, Pointer:
		return 8
	case Array:
		if t.Len < 0 {
			return 8
		}
		return t.Len * t.Elem.Size()
	case Struct:
		n := 0
		for _, f := range t.Fields {
			n += f.Type.Size()
		}
		if n == 0 {
			n = 1
		}
		return n
	case Union:
		n := 1
		for _, f := range t.Fields {
			if s := f.Type.Size(); s > n {
				n = s
			}
		}
		return n
	case Func:
		return 8
	}
	return 1
}

// Compatible reports whether two types are compatible for assignment
// purposes in the loose sense the analysis needs (C's actual rules are far
// stricter; the points-to analysis is conservative about casts anyway).
func Compatible(a, b *Type) bool {
	if a == nil || b == nil {
		return false
	}
	a, b = a.Decay(), b.Decay()
	if a.IsArithmetic() && b.IsArithmetic() {
		return true
	}
	if a.Kind == Pointer && b.Kind == Pointer {
		return true // void* conversions, casts: accept all pointer pairs
	}
	if a.Kind == Pointer && b.IsInteger() || b.Kind == Pointer && a.IsInteger() {
		return true // NULL constants and int/pointer casts
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Struct, Union:
		return a == b || (a.Tag != "" && a.Tag == b.Tag)
	case Func:
		return true
	case Void:
		return true
	}
	return true
}

// String renders the type in a C-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Invalid:
		return "invalid"
	case Void, Float, Double:
		return t.Kind.String()
	case Char, Short, Int, Long:
		if t.Unsigned {
			return "unsigned " + t.Kind.String()
		}
		return t.Kind.String()
	case Pointer:
		if t.Elem.Kind == Func {
			return t.Elem.funcString("(*)")
		}
		return t.Elem.String() + "*"
	case Array:
		// C array types read outermost-first: int[2][3] is array 2 of
		// array 3 of int.
		elem := t
		dims := ""
		for elem.Kind == Array {
			if elem.Len < 0 {
				dims += "[]"
			} else {
				dims += fmt.Sprintf("[%d]", elem.Len)
			}
			elem = elem.Elem
		}
		return elem.String() + dims
	case Struct:
		if t.Tag != "" {
			return "struct " + t.Tag
		}
		return "struct <anon>"
	case Union:
		if t.Tag != "" {
			return "union " + t.Tag
		}
		return "union <anon>"
	case Enum:
		if t.Tag != "" {
			return "enum " + t.Tag
		}
		return "enum <anon>"
	case Func:
		return t.funcString("")
	}
	return "?"
}

func (t *Type) funcString(name string) string {
	var sb strings.Builder
	sb.WriteString(t.Ret.String())
	sb.WriteString(" ")
	sb.WriteString(name)
	sb.WriteString("(")
	for i, p := range t.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	if t.Variadic {
		if len(t.Params) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("...")
	}
	sb.WriteString(")")
	return sb.String()
}
