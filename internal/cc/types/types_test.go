package types

import "testing"

func TestPredicates(t *testing.T) {
	if !IntType.IsInteger() || !CharType.IsInteger() || !LongType.IsInteger() {
		t.Error("integer kinds misclassified")
	}
	if !FloatType.IsFloat() || !DoubleType.IsFloat() {
		t.Error("float kinds misclassified")
	}
	if VoidType.IsArithmetic() {
		t.Error("void is not arithmetic")
	}
	p := PointerTo(IntType)
	if !p.IsScalar() || p.IsArithmetic() {
		t.Error("pointer scalar classification wrong")
	}
	a := ArrayOf(IntType, 3)
	if !a.IsPointerLike() {
		t.Error("arrays decay to pointers")
	}
}

func TestDecay(t *testing.T) {
	a := ArrayOf(IntType, 5)
	d := a.Decay()
	if d.Kind != Pointer || d.Elem != IntType {
		t.Errorf("array decay = %s", d)
	}
	f := FuncType(IntType, nil, false)
	if f.Decay().Kind != Pointer || f.Decay().Elem != f {
		t.Errorf("function decay = %s", f.Decay())
	}
	if IntType.Decay() != IntType {
		t.Error("scalar decay should be identity")
	}
}

func TestPointerDepth(t *testing.T) {
	if d := IntType.PointerDepth(); d != 0 {
		t.Errorf("int depth = %d", d)
	}
	if d := PointerTo(IntType).PointerDepth(); d != 1 {
		t.Errorf("int* depth = %d", d)
	}
	if d := PointerTo(PointerTo(IntType)).PointerDepth(); d != 2 {
		t.Errorf("int** depth = %d", d)
	}
	fp := PointerTo(FuncType(IntType, nil, false))
	if d := fp.PointerDepth(); d != 1 {
		t.Errorf("function pointer depth = %d (code is opaque)", d)
	}
	arr := ArrayOf(PointerTo(IntType), 4)
	if d := arr.PointerDepth(); d != 1 {
		t.Errorf("int*[4] depth = %d", d)
	}
}

func TestHasPointers(t *testing.T) {
	if IntType.HasPointers() {
		t.Error("int has no pointers")
	}
	if !PointerTo(IntType).HasPointers() {
		t.Error("int* has a pointer")
	}
	st := &Type{Kind: Struct, Fields: []*Field{
		{Name: "n", Type: IntType},
		{Name: "p", Type: PointerTo(CharType)},
	}}
	if !st.HasPointers() {
		t.Error("struct with pointer field has pointers")
	}
	arr := ArrayOf(st, 3)
	if !arr.HasPointers() {
		t.Error("array of pointer-bearing structs has pointers")
	}
	// Recursive struct terminates.
	node := &Type{Kind: Struct, Tag: "node"}
	node.Fields = []*Field{{Name: "next", Type: PointerTo(node)}}
	if !node.HasPointers() {
		t.Error("recursive struct has pointers")
	}
}

func TestIsFuncPointer(t *testing.T) {
	f := FuncType(VoidType, []*Type{IntType}, false)
	if !PointerTo(f).IsFuncPointer() {
		t.Error("pointer-to-func misclassified")
	}
	if PointerTo(IntType).IsFuncPointer() {
		t.Error("int* is not a function pointer")
	}
}

func TestSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		want int
	}{
		{CharType, 1},
		{ShortType, 2},
		{IntType, 4},
		{LongType, 8},
		{DoubleType, 8},
		{PointerTo(IntType), 8},
		{ArrayOf(IntType, 10), 40},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.want {
			t.Errorf("sizeof(%s) = %d, want %d", c.t, got, c.want)
		}
	}
	st := &Type{Kind: Struct, Fields: []*Field{
		{Name: "a", Type: IntType},
		{Name: "b", Type: DoubleType},
	}}
	if st.Size() != 12 {
		t.Errorf("struct size = %d, want 12 (packed model)", st.Size())
	}
	un := &Type{Kind: Union, Fields: st.Fields}
	if un.Size() != 8 {
		t.Errorf("union size = %d, want 8", un.Size())
	}
}

func TestCompatible(t *testing.T) {
	if !Compatible(IntType, DoubleType) {
		t.Error("arithmetic types are assignment-compatible")
	}
	if !Compatible(PointerTo(IntType), PointerTo(VoidType)) {
		t.Error("pointer conversions accepted")
	}
	if !Compatible(PointerTo(IntType), IntType) {
		t.Error("int/pointer (NULL constants) accepted")
	}
	s1 := &Type{Kind: Struct, Tag: "a"}
	s2 := &Type{Kind: Struct, Tag: "b"}
	if Compatible(s1, s2) {
		t.Error("distinct struct tags are incompatible")
	}
	if !Compatible(s1, s1) {
		t.Error("a struct is compatible with itself")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{PointerTo(IntType), "int*"},
		{ArrayOf(IntType, 3), "int[3]"},
		{PointerTo(PointerTo(CharType)), "char**"},
		{UIntType, "unsigned int"},
		{PointerTo(FuncType(IntType, []*Type{IntType}, false)), "int (*)(int)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestFieldByName(t *testing.T) {
	st := &Type{Kind: Struct, Fields: []*Field{
		{Name: "x", Type: IntType},
		{Name: "y", Type: DoubleType},
	}}
	if f := st.FieldByName("y"); f == nil || f.Type != DoubleType {
		t.Error("FieldByName(y) wrong")
	}
	if st.FieldByName("z") != nil {
		t.Error("missing field should return nil")
	}
	if IntType.FieldByName("x") != nil {
		t.Error("non-aggregate has no fields")
	}
}
