// Package check is a flow- and context-sensitive memory-safety linter built
// on the D/P points-to results: it walks the SIMPLE IR with the
// per-program-point, per-invocation-graph-node annotations and reports NULL
// dereferences, dereferences of uninitialized pointers, use-after-free and
// double-free, and stack addresses escaping their frame.
//
// Severity follows the paper's definite/possible split, lifted to calling
// contexts: a diagnostic is an *error* when the misuse is certain in every
// analyzed invocation-graph context of the statement, and a *warning* when
// it is possible in at least one. Certainty rests on the coverage invariant
// (Definition 3.3): if every abstract target of a dereferenced pointer is
// NULL or freed storage, every concrete value the pointer can hold at that
// point is invalid, so execution of the statement must fault. Per-context
// annotations merge repeated visits of one node, and merging only weakens
// definiteness — so an all-bad merged set means all-bad on every real visit.
package check

import (
	"fmt"
	"sort"

	"repro/internal/cc/token"
	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/live"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// Severity grades a diagnostic.
type Severity int

// Severities: Warning for misuse possible in some context, Error for misuse
// definite in every context.
const (
	Warning Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Kind names the checker that produced a diagnostic.
type Kind string

// Diagnostic kinds.
const (
	NullDeref    Kind = "null-deref"
	UninitDeref  Kind = "uninit-deref"
	UseAfterFree Kind = "use-after-free"
	DoubleFree   Kind = "double-free"
	InvalidFree  Kind = "invalid-free"
	Dangling     Kind = "dangling-pointer"
)

// Diag is one positioned diagnostic.
type Diag struct {
	Pos  token.Pos
	Sev  Severity
	Kind Kind
	Msg  string
	// Ctx is the invocation-graph path that triggers the misuse, e.g.
	// "main -> f -> g" (for an error, any path works: all are bad).
	Ctx string
	// Fn is the enclosing function.
	Fn string
	// Stmt is the faulting basic statement; nil for dangling-pointer
	// diagnostics, which are properties of a whole invocation rather than
	// of one statement.
	Stmt *simple.Basic
}

func (d Diag) String() string {
	s := fmt.Sprintf("%s: %s: %s: %s", d.Pos, d.Sev, d.Kind, d.Msg)
	if d.Ctx != "" {
		s += fmt.Sprintf(" [context: %s]", d.Ctx)
	}
	return s
}

// Run checks the analyzed program and returns its diagnostics, sorted by
// position. The analysis must have been run with Options.RecordContexts (the
// per-node annotations drive the error/warning split) and without
// ShareContexts (a shared-summary cache hit skips the body re-analysis, so
// the reused context would record no annotations and an absent-but-clean
// context could be mistaken for "bad in every context").
func Run(res *pta.Result) ([]Diag, error) {
	if res.Opts.ShareContexts {
		return nil, fmt.Errorf("check: analysis ran with ShareContexts; re-run without it")
	}
	if !res.Annots.ContextsEnabled() {
		return nil, fmt.Errorf("check: analysis ran without Options.RecordContexts")
	}
	c := &checker{res: res}
	c.walk(res.Prog.GlobalInit, "<global init>")
	for _, fn := range res.Prog.Functions {
		c.walk(fn.Body, fn.Name())
	}
	c.dangling()
	sort.SliceStable(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Kind < b.Kind
	})
	return c.diags, nil
}

type checker struct {
	res   *pta.Result
	diags []Diag
}

func (c *checker) walk(body *simple.Seq, fnName string) {
	simple.WalkStmts(body, func(s simple.Stmt) {
		b, ok := s.(*simple.Basic)
		if !ok {
			return
		}
		for _, r := range derefRefs(b) {
			c.checkDeref(b, r, fnName)
		}
		if b.Kind == simple.AsgnCall && b.Callee.Name == "free" &&
			c.res.Prog.Lookup("free") == nil && len(b.Args) == 1 {
			if arg, ok := b.Args[0].(*simple.Ref); ok {
				c.checkFree(b, arg, fnName)
			}
		}
	})
}

// derefRefs collects the references of b that actually load from or store to
// the pointed-to cell. Address computations (the operand of &ref) touch only
// the pointer itself and are excluded.
func derefRefs(b *simple.Basic) []*simple.Ref {
	var out []*simple.Ref
	add := func(op simple.Operand) {
		if r, ok := op.(*simple.Ref); ok && r.Deref {
			out = append(out, r)
		}
	}
	if b.LHS != nil && b.LHS.Deref {
		out = append(out, b.LHS)
	}
	switch b.Kind {
	case simple.AsgnCopy, simple.AsgnUnary, simple.AsgnMalloc:
		add(b.X)
	case simple.AsgnBinary:
		add(b.X)
		add(b.Y)
	case simple.AsgnCall, simple.AsgnCallInd:
		for _, a := range b.Args {
			add(a)
		}
	}
	return out
}

// sortedContexts returns the invocation-graph nodes that analyzed b, in a
// deterministic order.
func (c *checker) sortedContexts(b *simple.Basic) ([]*invgraph.Node, map[*invgraph.Node]ptset.Set) {
	ctxs := c.res.Annots.ContextsAt(b)
	nodes := make([]*invgraph.Node, 0, len(ctxs))
	for n := range ctxs {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Path() < nodes[j].Path() })
	return nodes, ctxs
}

// verdict is one context's judgement of a pointer use.
type verdict struct {
	checked  bool // the use was evaluable in this context
	empty    bool // the pointer has no targets at all
	bad      bool // some target is invalid for this use
	definite bool // every target is invalid: the use must fault
	freed    bool // an invalid target is freed storage
}

// derefVerdict judges a dereference of r under the context input in: the
// targets of r's base locations are the values the pointer can hold, and a
// NULL or freed target is invalid to dereference.
func (c *checker) derefVerdict(r *simple.Ref, in ptset.Set) verdict {
	base := &simple.Ref{Var: r.Var, Path: r.Path, Pos: r.Pos}
	var v verdict
	v.checked = true
	total, good := 0, 0
	for _, bl := range pta.EvalBaseLocs(c.res, base) {
		for _, t := range in.Targets(bl.Loc) {
			total++
			switch t.Dst.Kind {
			case loc.Null:
				v.bad = true
			case loc.Freed:
				v.bad, v.freed = true, true
			default:
				good++
			}
		}
	}
	if total == 0 {
		v.empty = true
		return v
	}
	v.definite = v.bad && good == 0
	return v
}

// freeVerdict judges free(arg) under the context input in: the R-locations
// of arg are the objects being deallocated. Heap is legal, NULL is a no-op,
// freed storage is a double free, and anything else (a named variable, a
// string literal, a function) is an invalid free. Every non-heap, non-NULL
// target faults at runtime, so a target set free of both makes the fault
// definite.
func (c *checker) freeVerdict(arg *simple.Ref, in ptset.Set) verdict {
	var v verdict
	v.checked = true
	total, ok := 0, 0
	for _, rl := range pta.EvalRLocsOfRef(c.res, arg, in) {
		total++
		switch rl.Loc.Kind {
		case loc.Heap, loc.Null: // heap is the legal case; free(NULL) is a no-op
			ok++
		case loc.Freed:
			v.bad, v.freed = true, true
		default:
			v.bad = true
		}
	}
	v.empty = total == 0
	v.definite = v.bad && ok == 0
	return v
}

// report aggregates per-context verdicts into at most one diagnostic:
// definite in every context is an error; bad (or target-less) in some
// context is a warning.
func (c *checker) report(b *simple.Basic, pos token.Pos, fnName string,
	nodes []*invgraph.Node, vs []verdict, msg func(v verdict, sev Severity) (Kind, string)) {
	checked := 0
	definite := 0
	var worst *verdict
	worstCtx := ""
	for i := range vs {
		if !vs[i].checked {
			continue
		}
		checked++
		if vs[i].definite {
			definite++
		}
		if vs[i].bad || vs[i].empty {
			if worst == nil || (!worst.bad && vs[i].bad) ||
				(!worst.definite && vs[i].definite) {
				worst = &vs[i]
				worstCtx = nodes[i].Path()
			}
		}
	}
	if worst == nil || checked == 0 {
		return
	}
	sev := Warning
	if definite == checked && worst.definite {
		sev = Error
		worstCtx = nodes[0].Path()
	}
	kind, text := msg(*worst, sev)
	if !pos.IsValid() {
		pos = b.Pos
	}
	c.diags = append(c.diags, Diag{
		Pos: pos, Sev: sev, Kind: kind, Msg: text,
		Ctx: worstCtx, Fn: fnName, Stmt: b,
	})
}

func (c *checker) checkDeref(b *simple.Basic, r *simple.Ref, fnName string) {
	if !pointerBase(r) {
		return
	}
	nodes, ctxs := c.sortedContexts(b)
	if len(nodes) == 0 {
		return
	}
	vs := make([]verdict, len(nodes))
	for i, n := range nodes {
		vs[i] = c.derefVerdict(r, ctxs[n])
	}
	c.report(b, r.Pos, fnName, nodes, vs, func(v verdict, sev Severity) (Kind, string) {
		verb := "dereferences"
		if sev == Warning {
			verb = "may dereference"
		}
		switch {
		case v.freed:
			return UseAfterFree, fmt.Sprintf("'%s' %s freed heap storage", r, verb)
		case v.bad:
			return NullDeref, fmt.Sprintf("'%s' %s a NULL pointer", r, verb)
		default:
			return UninitDeref, fmt.Sprintf("'%s' dereferences a pointer with no targets (uninitialized or dangling)", r)
		}
	})
}

func (c *checker) checkFree(b *simple.Basic, arg *simple.Ref, fnName string) {
	nodes, ctxs := c.sortedContexts(b)
	if len(nodes) == 0 {
		return
	}
	vs := make([]verdict, len(nodes))
	for i, n := range nodes {
		vs[i] = c.freeVerdict(arg, ctxs[n])
	}
	// A free with no information at all is not worth reporting.
	anyBad := false
	for _, v := range vs {
		if v.bad {
			anyBad = true
		}
	}
	if !anyBad {
		return
	}
	c.report(b, b.Pos, fnName, nodes, vs, func(v verdict, sev Severity) (Kind, string) {
		verb := "frees"
		if sev == Warning {
			verb = "may free"
		}
		if v.freed {
			return DoubleFree, fmt.Sprintf("'%s' %s already-freed storage (double free)", arg, verb)
		}
		return InvalidFree, fmt.Sprintf("'%s' %s a non-heap object", arg, verb)
	})
}

// pointerBase reports whether r's base (the part before the dereference)
// denotes a pointer-valued cell. Unknown types are skipped: a misuse verdict
// needs the base to really be a pointer.
func pointerBase(r *simple.Ref) bool {
	base := &simple.Ref{Var: r.Var, Path: r.Path}
	t := base.Type()
	if t == nil {
		return false
	}
	return t.Decay().IsPointerLike()
}

// ---------------------------------------------------------------------------
// Dangling stack pointers

// escapeRoute classifies how the address of a callee local can outlive the
// invocation, looking at the source of the edge in the callee's exit set.
func escapeRoute(src *loc.Location, fn *simple.Function) string {
	switch {
	case fn.RetVal != nil && src.Kind == loc.Var && src.Obj == fn.RetVal:
		return "the return value"
	case src.Kind == loc.Var && src.Obj != nil && src.Obj.Global:
		return fmt.Sprintf("global '%s'", src.Name())
	case src.Kind == loc.Symbolic && src.Owner() == fn:
		return fmt.Sprintf("caller-visible cell '%s'", src.Name())
	case src.Kind == loc.Heap:
		return "heap storage"
	case src.Kind == loc.Str:
		return "string storage"
	}
	return ""
}

// dangling reports callee locals whose address survives in the exit
// points-to set of an invocation through an escaping source: the caller can
// observe a pointer into the dead frame. The severity lifts per-node edge
// definiteness across all invocations of the function: definite escape in
// every analyzed invocation is an error, anything else a warning.
func (c *checker) dangling() {
	type key struct {
		fn  *simple.Function
		src *loc.Location
		dst *loc.Location
	}
	type info struct {
		nodes    int // invocations where the escape occurs
		definite int // ... with a definite edge
		route    string
		ctx      string
	}
	found := make(map[key]*info)
	order := []key{}
	perFn := make(map[*simple.Function]int)

	c.res.Graph.Walk(func(n *invgraph.Node) {
		if n.Parent == nil || !n.HasResult || n.StoredOutput.IsBottom() {
			return
		}
		perFn[n.Fn]++
		for _, t := range n.StoredOutput.Triples() {
			d := t.Dst
			if d.Kind != loc.Var || d.Owner() != n.Fn || d.Obj == nil || d.Obj.Global {
				continue
			}
			if n.Fn.RetVal != nil && d.Obj == n.Fn.RetVal {
				continue // the retval pseudo-cell is not program storage
			}
			route := escapeRoute(t.Src, n.Fn)
			if route == "" {
				continue
			}
			k := key{n.Fn, t.Src, d}
			in := found[k]
			if in == nil {
				in = &info{route: route, ctx: n.Path()}
				found[k] = in
				order = append(order, k)
			}
			in.nodes++
			if t.Def == ptset.D {
				in.definite++
			}
		}
	})

	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.fn.Name() != b.fn.Name() {
			return a.fn.Name() < b.fn.Name()
		}
		if a.dst.Name() != b.dst.Name() {
			return a.dst.Name() < b.dst.Name()
		}
		return a.src.Name() < b.src.Name()
	})
	for _, k := range order {
		in := found[k]
		sev := Warning
		verb := "may escape"
		if in.definite == perFn[k.fn] && in.definite > 0 {
			sev = Error
			verb = "escapes"
		}
		pos := k.fn.Pos
		if k.dst.Obj != nil && k.dst.Obj.Pos.IsValid() {
			pos = k.dst.Obj.Pos
		}
		c.diags = append(c.diags, Diag{
			Pos: pos, Sev: sev, Kind: Dangling,
			Msg: fmt.Sprintf("address of local '%s' of %s %s via %s",
				k.dst.Name(), k.fn.Name(), verb, in.route),
			Ctx: in.ctx, Fn: k.fn.Name(),
		})
	}
}

// DemandSeeds returns the demand this checker places on a points-to
// analysis run in demand mode (pta.Options.Demand): exact facts at every
// statement that dereferences a pointer and at every free call, with all
// globals pinned — the dangling-pointer pass walks global-source triples
// in every call context's output set, so global facts must survive
// everywhere. An analysis seeded with this demand yields bit-identical
// checker diagnostics to an exhaustive run.
func DemandSeeds(prog *simple.Program) *live.Seeds {
	s := live.NewSeeds()
	s.PinGlobals = true
	prog.ForEachBasic(func(b *simple.Basic) {
		if len(derefRefs(b)) > 0 {
			s.AddStmtRefs(b)
			return
		}
		if b.Kind == simple.AsgnCall && b.Callee.Name == "free" {
			s.AddStmtRefs(b)
		}
	})
	return s
}
