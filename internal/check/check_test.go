package check_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/check"
	"repro/internal/pta"
	"repro/internal/simplify"
	"repro/internal/testutil"
	"repro/pointsto"
)

// TestFixtures is the golden test over examples/check: one positive fixture
// per checker, each with a clean negative twin.
func TestFixtures(t *testing.T) {
	cases := []struct {
		file string
		want []string
	}{
		{"nullderef.c", []string{
			"nullderef.c:6:9: error: null-deref: '*p' dereferences a NULL pointer [context: main]",
		}},
		{"nullderef_ok.c", nil},
		{"uninit.c", []string{
			"uninit.c:5:9: error: dangling-pointer: address of local 'x' of leak escapes via the return value [context: main -> leak]",
			"uninit.c:12:12: warning: uninit-deref: '*p' dereferences a pointer with no targets (uninitialized or dangling) [context: main]",
		}},
		{"uninit_ok.c", nil},
		{"uaf.c", []string{
			"uaf.c:3:12: error: use-after-free: '*q' dereferences freed heap storage [context: main -> use]",
		}},
		{"uaf_ok.c", nil},
		{"doublefree.c", []string{
			"doublefree.c:6:9: error: double-free: 'p' frees already-freed storage (double free) [context: main]",
		}},
		{"doublefree_ok.c", nil},
		{"dangle.c", []string{
			"dangle.c:5:9: error: dangling-pointer: address of local 'local' of store escapes via global 'g' [context: main -> store]",
		}},
		{"dangle_ok.c", nil},
		{"ctx.c", []string{
			"ctx.c:5:12: warning: null-deref: '*p' may dereference a NULL pointer [context: main -> deref]",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			a := testutil.AnalyzeFile(t, filepath.Join(testutil.FixtureDir("check"), tc.file))
			diags, err := a.Check()
			if err != nil {
				t.Fatal(err)
			}
			got := testutil.Render(diags)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d diagnostics, want %d:\ngot:  %s\nwant: %s",
					len(got), len(tc.want), strings.Join(got, "\n      "), strings.Join(tc.want, "\n      "))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("diag %d:\ngot:  %s\nwant: %s", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestErrorsNeedAllContexts pins the severity split: the same dereference is
// an error when every calling context is bad and only a warning when one
// clean context exists.
func TestErrorsNeedAllContexts(t *testing.T) {
	const allBad = `
int deref(int *p) { return *p; }
int main(void) {
    int r;
    r = deref(0);
    return r + deref(0);
}
`
	a, err := pointsto.AnalyzeSource("allbad.c", allBad, nil)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := a.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Sev != check.Error || diags[0].Kind != check.NullDeref {
		t.Fatalf("want one null-deref error, got %v", testutil.Render(diags))
	}
	if diags[0].Ctx != "main -> deref" {
		t.Errorf("context path = %q, want %q", diags[0].Ctx, "main -> deref")
	}
}

// TestRunRejectsWrongOptions verifies Run demands per-context annotations
// and refuses summary sharing.
func TestRunRejectsWrongOptions(t *testing.T) {
	src := `int main(void) { return 0; }`
	tu, err := parser.Parse("opt.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pta.Analyze(prog, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := check.Run(res); err == nil {
		t.Error("Run accepted a result without RecordContexts")
	}
	res, err = pta.Analyze(prog, pta.Options{RecordContexts: true, ShareContexts: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := check.Run(res); err == nil {
		t.Error("Run accepted a result with ShareContexts")
	}
}

// TestCheckRerunsAnalysis verifies the public entry point works from a
// default analysis (no RecordContexts): Check must re-run internally.
func TestCheckRerunsAnalysis(t *testing.T) {
	a, err := pointsto.AnalyzeSource("re.c", `
int main(void) {
    int *p;
    p = 0;
    return *p;
}
`, &pointsto.Config{ShareContexts: true})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := a.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Kind != check.NullDeref || diags[0].Sev != check.Error {
		t.Fatalf("want one null-deref error, got %v", testutil.Render(diags))
	}
}

// TestBenchSuite runs the checker over the paper's benchmark suite: it must
// complete on every program, and the per-benchmark diagnostic counts are
// logged (they feed EXPERIMENTS.md).
func TestBenchSuite(t *testing.T) {
	for _, name := range bench.Names() {
		src, err := bench.Source(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, err := pointsto.AnalyzeSource(name+".c", src, nil)
		if err != nil {
			t.Fatalf("%s: analyze: %v", name, err)
		}
		diags, err := a.Check()
		if err != nil {
			t.Fatalf("%s: check: %v", name, err)
		}
		counts := map[check.Kind]int{}
		errs, warns := 0, 0
		for _, d := range diags {
			counts[d.Kind]++
			if d.Sev == check.Error {
				errs++
			} else {
				warns++
			}
		}
		var parts []string
		for _, k := range []check.Kind{check.NullDeref, check.UninitDeref,
			check.UseAfterFree, check.DoubleFree, check.InvalidFree, check.Dangling} {
			if counts[k] > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
			}
		}
		t.Logf("%-10s errors=%d warnings=%d %s", name, errs, warns, strings.Join(parts, " "))
	}
}
