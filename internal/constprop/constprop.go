// Package constprop implements a generalized constant propagation built on
// the points-to analysis, in the spirit of the framework client the paper
// describes in §6.1 (Hendren, Emami, Ghiya & Verbrugge: "a practical
// context-sensitive interprocedural analysis framework"): the points-to
// results let the propagator see through pointer loads and stores — a store
// through a definitely-known pointer updates exactly one location, a load
// through a pointer reads the meet of its possible targets — and the
// invocation graph supplies the call structure.
//
// The value domain is the classic three-level lattice per abstract
// location: unknown (top), a single integer constant, or not-a-constant
// (bottom).
package constprop

import (
	"fmt"
	"sort"

	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/modref"
	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// Value is a lattice element.
type Value struct {
	Kind ValueKind
	C    int64 // Kind == Const
}

// ValueKind discriminates Value.
type ValueKind int

// Lattice levels.
const (
	Top    ValueKind = iota // no information yet / unreachable
	Const                   // exactly this constant
	Bottom                  // not a constant
)

func (v Value) String() string {
	switch v.Kind {
	case Top:
		return "⊤"
	case Const:
		return fmt.Sprintf("%d", v.C)
	}
	return "⊥"
}

func top() Value          { return Value{Kind: Top} }
func bottom() Value       { return Value{Kind: Bottom} }
func konst(c int64) Value { return Value{Kind: Const, C: c} }

// meet combines two lattice values.
func meet(a, b Value) Value {
	switch {
	case a.Kind == Top:
		return b
	case b.Kind == Top:
		return a
	case a.Kind == Const && b.Kind == Const && a.C == b.C:
		return a
	}
	return bottom()
}

// env maps abstract locations to lattice values. Missing entries are Top.
type env map[*loc.Location]Value

func (e env) get(l *loc.Location) Value {
	if v, ok := e[l]; ok {
		return v
	}
	return top()
}

func (e env) set(l *loc.Location, v Value) {
	if v.Kind == Top {
		delete(e, l)
		return
	}
	e[l] = v
}

func (e env) clone() env {
	n := make(env, len(e))
	for k, v := range e {
		n[k] = v
	}
	return n
}

// meetEnv joins two environments in place into a fresh env: a location
// missing on one side is Top there, so the meet keeps the other side's
// value only if equal — conservatively we must treat "missing" as unknown
// along that path, which for soundness of *constants* means bottom unless
// both sides agree. We instead keep the meet with Top = identity, which is
// the standard optimistic treatment for a forward analysis with reachable
// paths only.
func meetEnv(a, b env) env {
	out := make(env)
	for k, va := range a {
		out.set(k, meet(va, b.get(k)))
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out.set(k, vb)
		}
	}
	return out
}

func equalEnv(a, b env) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Finding is one statement whose right-hand side evaluates to a constant.
type Finding struct {
	Stmt  *simple.Basic
	Value int64
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: `%s` = %d", f.Stmt.Pos, f.Stmt, f.Value)
}

// Result is the outcome of constant propagation.
type Result struct {
	// Constants lists statements whose computed value is a known
	// constant, in program order.
	Constants []Finding
	// PerFunction counts constant statements per function.
	PerFunction map[string]int
}

// propagator runs the analysis over one program using a completed points-to
// result.
type propagator struct {
	res   *pta.Result
	tab   *loc.Table
	found map[*simple.Basic]Value

	// mod and node, when set, sharpen call handling: instead of
	// invalidating everything reachable, only the call's interprocedural
	// MOD set (translated to this context) is invalidated.
	mod  *modref.Result
	node *invgraph.Node
}

// Run performs constant propagation over every function, using the
// points-to annotations to interpret loads and stores through pointers.
// Each function is analyzed with an optimistic entry environment for
// globals derived from the global initializers when the function is main,
// and Top (unknown) otherwise — a sound, simple policy. Calls invalidate
// everything reachable from their arguments and the globals.
func Run(res *pta.Result) *Result {
	p := &propagator{res: res, tab: res.Table, found: make(map[*simple.Basic]Value)}
	for _, fn := range res.Prog.Functions {
		entry := make(env)
		if fn == res.Prog.Main() && res.Prog.GlobalInit != nil {
			p.processSeq(res.Prog.GlobalInit, entry)
		}
		p.processSeq(fn.Body, entry)
	}
	return p.assemble()
}

// RunWithMod performs constant propagation per invocation-graph node, using
// interprocedural MOD sets at call sites: a call only invalidates the
// locations its resolved callees may actually write — the generalized,
// framework-backed variant §6.1 points at.
func RunWithMod(res *pta.Result, mod *modref.Result) *Result {
	p := &propagator{res: res, tab: res.Table, found: make(map[*simple.Basic]Value), mod: mod}
	res.Graph.Walk(func(n *invgraph.Node) {
		if n.Kind == invgraph.Approximate {
			return
		}
		p.node = n
		entry := make(env)
		if n.Fn == res.Prog.Main() && res.Prog.GlobalInit != nil {
			p.processSeq(res.Prog.GlobalInit, entry)
		}
		p.processSeq(n.Fn.Body, entry)
	})
	p.node = nil
	return p.assemble()
}

func (p *propagator) assemble() *Result {
	out := &Result{PerFunction: make(map[string]int)}
	for b, v := range p.found {
		if v.Kind == Const {
			out.Constants = append(out.Constants, Finding{Stmt: b, Value: v.C})
		}
	}
	sort.Slice(out.Constants, func(i, j int) bool {
		return out.Constants[i].Stmt.ID < out.Constants[j].Stmt.ID
	})
	for _, f := range out.Constants {
		fnName := p.enclosingFunc(f.Stmt)
		out.PerFunction[fnName]++
	}
	return out
}

func (p *propagator) enclosingFunc(b *simple.Basic) string {
	for _, fn := range p.res.Prog.Functions {
		found := false
		simple.WalkStmts(fn.Body, func(s simple.Stmt) {
			if s == b {
				found = true
			}
		})
		if found {
			return fn.Name()
		}
	}
	return "<global init>"
}

// record meets a statement's computed value into the result map (a
// statement visited along several paths or iterations keeps the meet).
func (p *propagator) record(b *simple.Basic, v Value) {
	if old, ok := p.found[b]; ok {
		p.found[b] = meet(old, v)
		return
	}
	p.found[b] = v
}

// locsOfRef returns the locations a reference denotes under the statement's
// points-to annotation, with definiteness.
func (p *propagator) locsOfRef(b *simple.Basic, r *simple.Ref) []pta.BaseLoc {
	if !r.Deref {
		return pta.EvalBaseLocs(p.res, r)
	}
	in, ok := p.res.Annots.At(b)
	if !ok {
		return nil
	}
	return pta.EvalLLocs(p.res, r, in)
}

// evalOperand evaluates an operand in the current environment.
func (p *propagator) evalOperand(b *simple.Basic, op simple.Operand, e env) Value {
	switch op := op.(type) {
	case *simple.ConstInt:
		return konst(op.Val)
	case *simple.ConstFloat, *simple.ConstString, *simple.ConstNull:
		return bottom() // only integer constants are tracked
	case *simple.Ref:
		if op.Var.Kind == ast.FuncObj {
			return bottom()
		}
		lls := p.locsOfRef(b, op)
		if len(lls) == 0 {
			return bottom()
		}
		v := top()
		for _, l := range lls {
			v = meet(v, e.get(l.Loc))
		}
		return v
	}
	return bottom()
}

// assign applies an assignment of value v to the reference's locations.
func (p *propagator) assign(b *simple.Basic, lhs *simple.Ref, v Value, e env) {
	lls := p.locsOfRef(b, lhs)
	if len(lls) == 1 && lls[0].Def == ptset.D && !lls[0].Loc.Multi() {
		e.set(lls[0].Loc, v) // strong update through a definite pointer
		return
	}
	for _, l := range lls {
		e.set(l.Loc, meet(e.get(l.Loc), v)) // weak update
	}
}

// binop folds a binary operation over lattice values.
func binop(op token.Kind, x, y Value) Value {
	if x.Kind == Bottom || y.Kind == Bottom {
		return bottom()
	}
	if x.Kind == Top || y.Kind == Top {
		return top()
	}
	a, c := x.C, y.C
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case token.ADD:
		return konst(a + c)
	case token.SUB:
		return konst(a - c)
	case token.MUL:
		return konst(a * c)
	case token.QUO:
		if c == 0 {
			return bottom()
		}
		return konst(a / c)
	case token.REM:
		if c == 0 {
			return bottom()
		}
		return konst(a % c)
	case token.SHL:
		return konst(a << (uint64(c) & 63))
	case token.SHR:
		return konst(a >> (uint64(c) & 63))
	case token.AND:
		return konst(a & c)
	case token.OR:
		return konst(a | c)
	case token.XOR:
		return konst(a ^ c)
	case token.EQL:
		return konst(b2i(a == c))
	case token.NEQ:
		return konst(b2i(a != c))
	case token.LSS:
		return konst(b2i(a < c))
	case token.GTR:
		return konst(b2i(a > c))
	case token.LEQ:
		return konst(b2i(a <= c))
	case token.GEQ:
		return konst(b2i(a >= c))
	}
	return bottom()
}

func unop(op token.Kind, x Value) Value {
	if x.Kind != Const {
		return x
	}
	switch op {
	case token.SUB:
		return konst(-x.C)
	case token.TILDE:
		return konst(^x.C)
	case token.NOT:
		if x.C == 0 {
			return konst(1)
		}
		return konst(0)
	}
	return bottom()
}

// processBasic transforms the environment across one basic statement.
func (p *propagator) processBasic(b *simple.Basic, e env) {
	switch b.Kind {
	case simple.AsgnCopy:
		v := p.evalOperand(b, b.X, e)
		p.record(b, v)
		p.assign(b, b.LHS, v, e)

	case simple.AsgnUnary:
		v := unop(b.Op, p.evalOperand(b, b.X, e))
		p.record(b, v)
		p.assign(b, b.LHS, v, e)

	case simple.AsgnBinary:
		v := binop(b.Op, p.evalOperand(b, b.X, e), p.evalOperand(b, b.Y, e))
		p.record(b, v)
		p.assign(b, b.LHS, v, e)

	case simple.AsgnAddr, simple.AsgnMalloc:
		if b.LHS != nil {
			p.assign(b, b.LHS, bottom(), e)
		}

	case simple.AsgnCall, simple.AsgnCallInd:
		// A call may modify anything it can reach: every global and every
		// location reachable from pointer arguments goes to bottom. The
		// points-to annotation tells us what is reachable.
		p.havocCall(b, e)
	}
}

// havocCall invalidates the locations a call could write. With MOD
// information available, exactly the call's interprocedural write set is
// invalidated; otherwise everything reachable from the arguments and the
// globals is.
func (p *propagator) havocCall(b *simple.Basic, e env) {
	if b.LHS != nil {
		p.assign(b, b.LHS, bottom(), e)
	}
	if p.mod != nil && p.node != nil {
		if locs, ok := p.mod.ModOfCall(p.node, b); ok {
			for _, l := range locs {
				e.set(l, bottom())
			}
			return
		}
		// External call: no stack effects beyond the LHS.
		return
	}
	in, ok := p.res.Annots.At(b)
	if !ok {
		in = ptset.New()
	}
	// Seed: globals and pointer arguments.
	work := make([]*loc.Location, 0, 8)
	seen := make(map[*loc.Location]bool)
	push := func(l *loc.Location) {
		if l != nil && !seen[l] {
			seen[l] = true
			work = append(work, l)
		}
	}
	for l := range e {
		if l.IsGlobalish() {
			push(l)
		}
	}
	for _, a := range b.Args {
		if r, ok := a.(*simple.Ref); ok {
			for _, bl := range pta.EvalBaseLocs(p.res, r) {
				for _, t := range in.Targets(bl.Loc) {
					push(t.Dst)
				}
			}
		}
	}
	// Transitive closure over the points-to relation.
	for len(work) > 0 {
		l := work[len(work)-1]
		work = work[:len(work)-1]
		e.set(l, bottom())
		for _, t := range in.Targets(l) {
			push(t.Dst)
		}
	}
}

// processSeq runs the forward analysis over a statement sequence,
// mutating e.
func (p *propagator) processSeq(s *simple.Seq, e env) {
	if s == nil {
		return
	}
	for _, c := range s.List {
		p.processStmt(c, e)
	}
}

func (p *propagator) processStmt(s simple.Stmt, e env) {
	switch s := s.(type) {
	case *simple.Basic:
		p.processBasic(s, e)

	case *simple.Seq:
		p.processSeq(s, e)

	case *simple.If:
		thenEnv := e.clone()
		p.processSeq(s.Then, thenEnv)
		elseEnv := e.clone()
		if s.Else != nil {
			p.processSeq(s.Else, elseEnv)
		}
		merged := meetEnv(thenEnv, elseEnv)
		for k := range e {
			delete(e, k)
		}
		for k, v := range merged {
			e[k] = v
		}

	case *simple.While:
		p.processLoop(e, func(le env) {
			p.processSeq(s.CondEval, le)
			p.processSeq(s.Body, le)
		})

	case *simple.DoWhile:
		p.processLoop(e, func(le env) {
			p.processSeq(s.Body, le)
			p.processSeq(s.CondEval, le)
		})

	case *simple.For:
		p.processSeq(s.Init, e)
		p.processLoop(e, func(le env) {
			p.processSeq(s.CondEval, le)
			p.processSeq(s.Body, le)
			p.processSeq(s.Post, le)
		})

	case *simple.Switch:
		out := make(env)
		first := true
		for _, c := range s.Cases {
			armEnv := e.clone()
			p.processSeq(c.Body, armEnv)
			if first {
				out = armEnv
				first = false
			} else {
				out = meetEnv(out, armEnv)
			}
		}
		merged := meetEnv(out, e) // the no-match path
		for k := range e {
			delete(e, k)
		}
		for k, v := range merged {
			e[k] = v
		}

	case *simple.Break, *simple.Continue, *simple.Return:
		// Conservative: environments at escapes merge at the enclosing
		// construct through the loop fixed point below.
	}
}

// processLoop iterates a loop body to a fixed point, merging the loop-back
// environment into the head.
func (p *propagator) processLoop(e env, body func(env)) {
	cur := e.clone()
	for iter := 0; iter < 100; iter++ {
		iterEnv := cur.clone()
		body(iterEnv)
		next := meetEnv(cur, iterEnv)
		if equalEnv(next, cur) {
			break
		}
		cur = next
	}
	// Run the body once more on the stable head to record findings under
	// the final environment, then fold into e.
	final := cur.clone()
	body(final)
	merged := meetEnv(cur, final)
	for k := range e {
		delete(e, k)
	}
	for k, v := range merged {
		e[k] = v
	}
}
