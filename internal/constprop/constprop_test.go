package constprop

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/modref"
	"repro/internal/pta"
	"repro/internal/simplify"
)

func analyze(t *testing.T, src string) *pta.Result {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	res, err := pta.Analyze(prog, pta.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// constOf returns the propagated constant for the first statement whose
// printed form matches, or (0, false).
func constOf(r *Result, stmtText string) (int64, bool) {
	for _, f := range r.Constants {
		if f.Stmt.String() == stmtText {
			return f.Value, true
		}
	}
	return 0, false
}

func TestStraightLine(t *testing.T) {
	res := analyze(t, `
int main() {
	int a, b, c;
	a = 3;
	b = a + 4;
	c = a * b;
	return c;
}
`)
	r := Run(res)
	if v, ok := constOf(r, "b = a + 4"); !ok || v != 7 {
		t.Errorf("b = a + 4 should be constant 7, got %v %v", v, ok)
	}
	if v, ok := constOf(r, "c = a * b"); !ok || v != 21 {
		t.Errorf("c should be 21, got %v %v", v, ok)
	}
}

func TestThroughDefinitePointer(t *testing.T) {
	// The §6.1 point: definite points-to information lets constants flow
	// through stores and loads via pointers.
	res := analyze(t, `
int main() {
	int x, y;
	int *p;
	p = &x;
	*p = 5;      /* strong update of x through p */
	y = x + 1;   /* must see x == 5 */
	return y;
}
`)
	r := Run(res)
	if v, ok := constOf(r, "y = x + 1"); !ok || v != 6 {
		t.Errorf("y should be constant 6 via pointer store, got %v %v", v, ok)
	}
}

func TestLoadThroughPointer(t *testing.T) {
	res := analyze(t, `
int main() {
	int x, y;
	int *p;
	x = 9;
	p = &x;
	y = *p;     /* load sees x == 9 */
	return y;
}
`)
	r := Run(res)
	if v, ok := constOf(r, "y = *p"); !ok || v != 9 {
		t.Errorf("y = *p should be constant 9, got %v %v", v, ok)
	}
}

func TestWeakUpdateLosesConstant(t *testing.T) {
	res := analyze(t, `
int main() {
	int x, y, c, r;
	int *p;
	x = 1;
	y = 1;
	if (c)
		p = &x;
	else
		p = &y;
	*p = 2;      /* weak update: x and y may be 1 or 2 */
	r = x + 0;
	return r;
}
`)
	r := Run(res)
	if _, ok := constOf(r, "r = x + 0"); ok {
		t.Error("x must not be constant after a weak update")
	}
}

func TestBranchMeet(t *testing.T) {
	res := analyze(t, `
int main() {
	int a, c, r;
	if (c)
		a = 4;
	else
		a = 4;
	r = a + 1;   /* both branches agree: 5 */
	return r;
}
`)
	r := Run(res)
	if v, ok := constOf(r, "r = a + 1"); !ok || v != 5 {
		t.Errorf("r should be 5 after agreeing branches, got %v %v", v, ok)
	}
	res2 := analyze(t, `
int main() {
	int a, c, r;
	if (c)
		a = 4;
	else
		a = 5;
	r = a + 1;
	return r;
}
`)
	r2 := Run(res2)
	if _, ok := constOf(r2, "r = a + 1"); ok {
		t.Error("disagreeing branches must not yield a constant")
	}
}

func TestLoopInvalidation(t *testing.T) {
	res := analyze(t, `
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 10; i++)
		s = s + 1;
	return s;
}
`)
	r := Run(res)
	for _, f := range r.Constants {
		if f.Stmt.String() == "s = s + 1" {
			t.Error("loop-carried s must not be constant")
		}
	}
}

func TestCallHavocsGlobals(t *testing.T) {
	res := analyze(t, `
int g;
void touch(void) { g = 7; }
int main() {
	int r;
	g = 1;
	touch();
	r = g + 1;   /* g modified by the call: unknown */
	return r;
}
`)
	r := Run(res)
	if _, ok := constOf(r, "r = g + 1"); ok {
		t.Error("g must be invalidated across the call")
	}
}

func TestCallHavocsThroughPointerArg(t *testing.T) {
	res := analyze(t, `
void bump(int *p) { *p = *p + 1; }
int main() {
	int x, r;
	x = 1;
	bump(&x);
	r = x + 1;   /* x reachable from the call's argument */
	return r;
}
`)
	r := Run(res)
	if _, ok := constOf(r, "r = x + 1"); ok {
		t.Error("x must be invalidated: the call can write through &x")
	}
}

func TestLocalsUnaffectedByCall(t *testing.T) {
	res := analyze(t, `
void noop(void) { }
int main() {
	int x, r;
	x = 3;
	noop();
	r = x + 1;   /* x not reachable by the call: stays 3 */
	return r;
}
`)
	r := Run(res)
	if v, ok := constOf(r, "r = x + 1"); !ok || v != 4 {
		t.Errorf("x should survive the unrelated call, got %v %v", v, ok)
	}
}

func TestOnBenchmarkShapes(t *testing.T) {
	// Smoke-check the propagator over a richer program.
	res := analyze(t, `
int table[4];
int scale;
void fill(void) {
	int i;
	for (i = 0; i < 4; i++)
		table[i] = i * scale;
}
int main() {
	scale = 2;
	fill();
	return table[0];
}
`)
	r := Run(res)
	if len(r.Constants) == 0 {
		t.Error("expected at least some constants")
	}
}

// The MOD payoff: with interprocedural side-effect sets, a constant
// survives a call that cannot write it, where conservative havoc loses it.
func TestModSharpensConstProp(t *testing.T) {
	res := analyze(t, `
int g, unrelated;
void touch(void) { unrelated = 7; }
int main() {
	int r;
	g = 3;
	touch();
	r = g + 1;
	return r;
}
`)
	conservative := Run(res)
	sharp := RunWithMod(res, modref.Compute(res))
	if _, ok := constOf(conservative, "r = g + 1"); ok {
		t.Error("conservative propagation should lose g across the call")
	}
	if v, ok := constOf(sharp, "r = g + 1"); !ok || v != 4 {
		t.Errorf("MOD-based propagation should keep g=3 across touch(): got %v %v", v, ok)
	}
}

// MOD-based propagation must never find fewer constants than the
// conservative variant on the suite.
func TestModMonotoneOnBenchmarks(t *testing.T) {
	for _, name := range []string{"hash", "mway", "stanford", "compress"} {
		prog, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pta.Analyze(prog, pta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		c1 := len(Run(res).Constants)
		c2 := len(RunWithMod(res, modref.Compute(res)).Constants)
		if c2 < c1 {
			t.Errorf("%s: MOD-based constprop found fewer constants (%d < %d)", name, c2, c1)
		}
		t.Logf("%s: constants %d -> %d with MOD", name, c1, c2)
	}
}
