// Package deptest implements the array data-dependence testing support that
// §6.1 of the paper describes as a client of points-to analysis (Justiani &
// Hendren, CC'94): for loops over arrays, the points-to results are used to
//
//   - resolve array accesses made through pointers to the arrays they
//     actually reach (increasing the number of admissible loop nests),
//   - prove accesses independent when their pointers reach disjoint arrays
//     (decreasing the number of array pairs that need subscript testing),
//   - exploit head/tail alignment: a pointer known to point at a_head is
//     aligned with the array base, so its subscripts are directly
//     comparable with direct accesses.
//
// Subscripts are reconstructed as affine functions a*i + b of the loop
// induction variable from the SIMPLE temporaries, and classic ZIV/strong-SIV
// tests decide dependence.
package deptest

import (
	"fmt"
	"sort"

	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/pta"
	"repro/internal/pta/loc"
	"repro/internal/simple"
)

// Affine is a subscript of the form Coef*i + Off in the loop induction
// variable i.
type Affine struct {
	Coef, Off int64
	OK        bool // false: not recognizably affine
}

func (a Affine) String() string {
	if !a.OK {
		return "?"
	}
	switch {
	case a.Coef == 0:
		return fmt.Sprintf("%d", a.Off)
	case a.Off == 0:
		return fmt.Sprintf("%d*i", a.Coef)
	}
	return fmt.Sprintf("%d*i%+d", a.Coef, a.Off)
}

// Access is one array element access inside a loop.
type Access struct {
	Stmt    *simple.Basic
	Ref     *simple.Ref
	IsWrite bool
	// Bases are the candidate array objects the access can touch, with
	// alignment: aligned means the pointer is known to address element 0
	// (a_head), so the subscript is in the array's own index space.
	Bases []Base
	Sub   Affine
}

// Base is one candidate array for an access.
type Base struct {
	Loc     *loc.Location // the array part (x[0]/x[*]) or heap
	Aligned bool          // subscript comparable with direct accesses
}

// PairResult classifies one (write, read-or-write) access pair.
type PairResult struct {
	A, B    *Access
	Outcome Outcome
	// Distance is the dependence distance for Dependent outcomes decided
	// by the strong SIV test (0 means loop-independent).
	Distance int64
}

// Outcome classifies a pair.
type Outcome int

// Pair outcomes.
const (
	IndependentDisjoint Outcome = iota // points-to: different arrays
	IndependentSubscript
	Dependent
	Unknown // must be assumed dependent
)

func (o Outcome) String() string {
	switch o {
	case IndependentDisjoint:
		return "independent (disjoint arrays)"
	case IndependentSubscript:
		return "independent (subscripts)"
	case Dependent:
		return "dependent"
	}
	return "unknown (assume dependent)"
}

// LoopReport summarizes one analyzed loop.
type LoopReport struct {
	Fn        *simple.Function
	Loop      *simple.For
	Induction *ast.Object
	Trip      int64 // trip count if constant bounds, else -1
	Accesses  []*Access
	Pairs     []PairResult
	// Admissible means every array access in the loop was resolvable (a
	// named array or the heap with an affine subscript or a known-opaque
	// scalar), so dependence conclusions are meaningful.
	Admissible bool
}

// Counts aggregates pair outcomes.
func (r *LoopReport) Counts() (disjoint, subscript, dependent, unknown int) {
	for _, p := range r.Pairs {
		switch p.Outcome {
		case IndependentDisjoint:
			disjoint++
		case IndependentSubscript:
			subscript++
		case Dependent:
			dependent++
		default:
			unknown++
		}
	}
	return
}

// Result holds all loop reports of a program.
type Result struct {
	Loops []*LoopReport
}

// Run analyzes every recognizable counted loop in the program.
func Run(res *pta.Result) *Result {
	d := &depAnalyzer{res: res}
	out := &Result{}
	for _, fn := range res.Prog.Functions {
		simple.WalkStmts(fn.Body, func(s simple.Stmt) {
			if f, ok := s.(*simple.For); ok {
				if rep := d.analyzeLoop(fn, f); rep != nil {
					out.Loops = append(out.Loops, rep)
				}
			}
		})
	}
	return out
}

type depAnalyzer struct {
	res *pta.Result
}

// recognizeInduction matches the canonical counted-loop shape the
// simplifier produces: Init ends with `i = c0`, Cond is `i < n` or
// `i <= n`, Post ends with `i = i + step`.
func recognizeInduction(f *simple.For) (iv *ast.Object, lo int64, hi int64, hasConstBounds bool) {
	if f.Cond == nil || f.Cond.Y == nil {
		return nil, 0, 0, false
	}
	condX, ok := f.Cond.X.(*simple.Ref)
	if !ok || condX.Deref || len(condX.Path) > 0 {
		return nil, 0, 0, false
	}
	iv = condX.Var
	// Init: last assignment to iv.
	loOK := false
	if f.Init != nil {
		for _, s := range f.Init.List {
			if b, ok := s.(*simple.Basic); ok && b.Kind == simple.AsgnCopy &&
				b.LHS != nil && !b.LHS.Deref && b.LHS.Var == iv {
				if c, ok := b.X.(*simple.ConstInt); ok {
					lo, loOK = c.Val, true
				}
			}
		}
	}
	// Post must increment iv by 1 for the strong SIV trip-count check.
	incOK := false
	if f.Post != nil {
		for _, s := range f.Post.List {
			if b, ok := s.(*simple.Basic); ok && b.Kind == simple.AsgnBinary &&
				b.LHS != nil && b.LHS.Var == iv && b.Op == token.ADD {
				if c, ok := b.Y.(*simple.ConstInt); ok && c.Val == 1 {
					incOK = true
				}
			}
		}
	}
	if !incOK {
		return nil, 0, 0, false
	}
	if c, ok := f.Cond.Y.(*simple.ConstInt); ok && loOK {
		hi = c.Val
		if f.Cond.Op == token.LEQ {
			hi++
		}
		return iv, lo, hi, true
	}
	return iv, 0, 0, false
}

// affineOf reconstructs the subscript operand as an affine function of iv by
// chasing single-assignment temporaries within the loop body.
func (d *depAnalyzer) affineOf(op simple.Operand, iv *ast.Object, body *simple.Seq, depth int) Affine {
	if depth > 8 {
		return Affine{}
	}
	switch op := op.(type) {
	case *simple.ConstInt:
		return Affine{Coef: 0, Off: op.Val, OK: true}
	case *simple.Ref:
		if op.Deref || len(op.Path) > 0 {
			return Affine{}
		}
		if op.Var == iv {
			return Affine{Coef: 1, Off: 0, OK: true}
		}
		// Find the defining statement inside the loop.
		var def *simple.Basic
		count := 0
		simple.WalkStmts(body, func(s simple.Stmt) {
			if b, ok := s.(*simple.Basic); ok && b.LHS != nil &&
				!b.LHS.Deref && len(b.LHS.Path) == 0 && b.LHS.Var == op.Var {
				def = b
				count++
			}
		})
		if def == nil || count != 1 {
			return Affine{}
		}
		switch def.Kind {
		case simple.AsgnCopy:
			return d.affineOf(def.X, iv, body, depth+1)
		case simple.AsgnBinary:
			x := d.affineOf(def.X, iv, body, depth+1)
			y := d.affineOf(def.Y, iv, body, depth+1)
			if !x.OK || !y.OK {
				return Affine{}
			}
			switch def.Op {
			case token.ADD:
				return Affine{Coef: x.Coef + y.Coef, Off: x.Off + y.Off, OK: true}
			case token.SUB:
				return Affine{Coef: x.Coef - y.Coef, Off: x.Off - y.Off, OK: true}
			case token.MUL:
				switch {
				case x.Coef == 0:
					return Affine{Coef: x.Off * y.Coef, Off: x.Off * y.Off, OK: true}
				case y.Coef == 0:
					return Affine{Coef: y.Off * x.Coef, Off: y.Off * x.Off, OK: true}
				}
			}
		}
		return Affine{}
	}
	return Affine{}
}

// basesOf resolves the arrays an indexed reference can touch, using the
// points-to annotation for pointer-based accesses.
func (d *depAnalyzer) basesOf(b *simple.Basic, r *simple.Ref) ([]Base, simple.Operand, bool) {
	// Direct array access: base variable of array type with an index sel.
	if !r.Deref {
		for k, s := range r.Path {
			if s.Kind == simple.SelIndex {
				base := d.res.Table.VarLoc(r.Var, nil)
				for _, e := range pathElems(r.Path[:k]) {
					base = d.res.Table.Extend(base, e)
				}
				head := d.res.Table.Extend(base, loc.HeadElem)
				return []Base{{Loc: head, Aligned: true}}, s.Opnd, true
			}
		}
		return nil, nil, false
	}
	// Pointer access p[i]: the pointer's targets under the annotation.
	var idx simple.Operand
	hasIdx := false
	for _, s := range r.DPath {
		if s.Kind == simple.SelIndex {
			idx = s.Opnd
			hasIdx = true
			break
		}
	}
	if !hasIdx {
		return nil, nil, false
	}
	in, ok := d.res.Annots.At(b)
	if !ok {
		return nil, nil, false
	}
	var bases []Base
	for _, bl := range pta.EvalBaseLocs(d.res, &simple.Ref{Var: r.Var, Path: r.Path}) {
		for _, t := range in.Targets(bl.Loc) {
			switch t.Dst.Kind {
			case loc.Null:
				continue
			case loc.Heap:
				bases = append(bases, Base{Loc: t.Dst, Aligned: false})
			default:
				aligned := isHead(t.Dst)
				bases = append(bases, Base{Loc: canonicalArray(d.res, t.Dst), Aligned: aligned})
			}
		}
	}
	return bases, idx, len(bases) > 0
}

func pathElems(sels []simple.Sel) []loc.Elem {
	var out []loc.Elem
	for _, s := range sels {
		if s.Kind == simple.SelField {
			out = append(out, loc.FieldElem(s.Name))
		} else if s.Index == simple.IdxZero {
			out = append(out, loc.HeadElem)
		} else {
			out = append(out, loc.TailElem)
		}
	}
	return out
}

// isHead reports whether the location is an array head (aligned base).
func isHead(l *loc.Location) bool {
	p := l.Path
	return len(p) > 0 && p[len(p)-1].Arr && !p[len(p)-1].Tail
}

// canonicalArray normalizes head/tail siblings to the head location so two
// pointers into the same array compare equal.
func canonicalArray(res *pta.Result, l *loc.Location) *loc.Location {
	p := l.Path
	if len(p) == 0 || !p[len(p)-1].Arr {
		return l
	}
	root := res.Table.Root(l)
	cur := root
	for i, e := range p {
		if i == len(p)-1 {
			cur = res.Table.Extend(cur, loc.HeadElem)
		} else {
			cur = res.Table.Extend(cur, e)
		}
	}
	return cur
}

func (d *depAnalyzer) analyzeLoop(fn *simple.Function, f *simple.For) *LoopReport {
	iv, lo, hi, constBounds := recognizeInduction(f)
	if iv == nil {
		return nil
	}
	rep := &LoopReport{Fn: fn, Loop: f, Induction: iv, Trip: -1, Admissible: true}
	if constBounds {
		rep.Trip = hi - lo
	}

	simple.WalkStmts(f.Body, func(s simple.Stmt) {
		b, ok := s.(*simple.Basic)
		if !ok {
			return
		}
		if b.Kind == simple.AsgnCall || b.Kind == simple.AsgnCallInd {
			rep.Admissible = false // a call may touch the arrays
			return
		}
		for ri, r := range b.Refs() {
			bases, idxOp, ok := d.basesOf(b, r)
			if !ok {
				continue
			}
			sub := d.affineOf(idxOp, iv, f.Body, 0)
			acc := &Access{
				Stmt:    b,
				Ref:     r,
				IsWrite: ri == 0 && b.LHS == r,
				Bases:   bases,
				Sub:     sub,
			}
			if !sub.OK {
				rep.Admissible = false
			}
			rep.Accesses = append(rep.Accesses, acc)
		}
	})

	// Classify pairs with at least one write.
	for i := 0; i < len(rep.Accesses); i++ {
		for j := i + 1; j < len(rep.Accesses); j++ {
			a, b := rep.Accesses[i], rep.Accesses[j]
			if !a.IsWrite && !b.IsWrite {
				continue
			}
			rep.Pairs = append(rep.Pairs, d.classify(a, b, rep))
		}
	}
	return rep
}

// overlap reports whether two base sets can address the same array, and
// whether both sides are aligned on every common array.
func overlap(a, b *Access) (share, bothAligned bool) {
	bothAligned = true
	for _, x := range a.Bases {
		for _, y := range b.Bases {
			if x.Loc == y.Loc {
				share = true
				if !x.Aligned || !y.Aligned {
					bothAligned = false
				}
			}
		}
	}
	return share, share && bothAligned
}

func (d *depAnalyzer) classify(a, b *Access, rep *LoopReport) PairResult {
	pr := PairResult{A: a, B: b}
	share, aligned := overlap(a, b)
	if !share {
		pr.Outcome = IndependentDisjoint
		return pr
	}
	if !aligned || !a.Sub.OK || !b.Sub.OK {
		pr.Outcome = Unknown
		return pr
	}
	// ZIV: both subscripts constant.
	if a.Sub.Coef == 0 && b.Sub.Coef == 0 {
		if a.Sub.Off != b.Sub.Off {
			pr.Outcome = IndependentSubscript
		} else {
			pr.Outcome = Dependent
		}
		return pr
	}
	// Strong SIV: equal coefficients.
	if a.Sub.Coef == b.Sub.Coef && a.Sub.Coef != 0 {
		diff := b.Sub.Off - a.Sub.Off
		if diff%a.Sub.Coef != 0 {
			pr.Outcome = IndependentSubscript
			return pr
		}
		dist := diff / a.Sub.Coef
		if rep.Trip >= 0 && (dist >= rep.Trip || dist <= -rep.Trip) {
			pr.Outcome = IndependentSubscript
			return pr
		}
		pr.Outcome = Dependent
		pr.Distance = dist
		return pr
	}
	// Weak SIV / MIV: not decided here.
	pr.Outcome = Unknown
	return pr
}

// Summary renders aggregate counts for reporting.
func (r *Result) Summary() string {
	loops, admissible := 0, 0
	var disj, sub, dep, unk int
	for _, l := range r.Loops {
		loops++
		if l.Admissible {
			admissible++
		}
		a, b, c, d := l.Counts()
		disj, sub, dep, unk = disj+a, sub+b, dep+c, unk+d
	}
	return fmt.Sprintf("loops %d (admissible %d): pairs disjoint %d, independent-subscript %d, dependent %d, unknown %d",
		loops, admissible, disj, sub, dep, unk)
}

// SortedLoops returns loops ordered by source position for deterministic
// output.
func (r *Result) SortedLoops() []*LoopReport {
	out := append([]*LoopReport{}, r.Loops...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn.Name() != out[j].Fn.Name() {
			return out[i].Fn.Name() < out[j].Fn.Name()
		}
		pi, pj := out[i].Loop.Pos, out[j].Loop.Pos
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Col < pj.Col
	})
	return out
}
