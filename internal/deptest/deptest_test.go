package deptest

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/simplify"
)

func analyze(t *testing.T, src string) *pta.Result {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	res, err := pta.Analyze(prog, pta.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// firstLoop returns the only loop report.
func firstLoop(t *testing.T, r *Result) *LoopReport {
	t.Helper()
	if len(r.Loops) == 0 {
		t.Fatal("no loops recognized")
	}
	return r.SortedLoops()[0]
}

func TestDisjointArraysThroughPointers(t *testing.T) {
	// p and q point to different arrays: all pairs independent without any
	// subscript test — the headline points-to win.
	res := analyze(t, `
double a[16], b[16];
void kernel(double *p, double *q, int n) {
	int i;
	for (i = 0; i < n; i++)
		p[i] = q[i] * 2.0;
}
int main() {
	kernel(a, b, 16);
	return 0;
}
`)
	r := Run(res)
	var loop *LoopReport
	for _, l := range r.Loops {
		if l.Fn.Name() == "kernel" {
			loop = l
		}
	}
	if loop == nil {
		t.Fatal("kernel loop not found")
	}
	disj, _, dep, unk := loop.Counts()
	if disj == 0 {
		t.Errorf("expected disjoint-array independence, got %s", r.Summary())
	}
	if dep != 0 || unk != 0 {
		t.Errorf("no dependences expected: %s", r.Summary())
	}
}

func TestSameArrayAliasedPointers(t *testing.T) {
	// Both pointers reach the same array: the pair needs subscript
	// analysis and the equal subscripts make it dependent.
	res := analyze(t, `
double a[16];
void kernel(double *p, double *q, int n) {
	int i;
	for (i = 0; i < n; i++)
		p[i] = q[i] * 2.0;
}
int main() {
	kernel(a, a, 16);
	return 0;
}
`)
	r := Run(res)
	var loop *LoopReport
	for _, l := range r.Loops {
		if l.Fn.Name() == "kernel" {
			loop = l
		}
	}
	if loop == nil {
		t.Fatal("kernel loop not found")
	}
	_, _, dep, unk := loop.Counts()
	if dep == 0 && unk == 0 {
		t.Errorf("aliased arrays must show a dependence: %s", r.Summary())
	}
}

func TestStrongSIVDistance(t *testing.T) {
	res := analyze(t, `
int a[64];
int main() {
	int i;
	for (i = 0; i < 60; i++)
		a[i] = a[i + 3];
	return 0;
}
`)
	r := Run(res)
	loop := firstLoop(t, r)
	foundDep := false
	for _, p := range loop.Pairs {
		if p.Outcome == Dependent {
			foundDep = true
			if p.Distance != 3 && p.Distance != -3 {
				t.Errorf("distance = %d, want ±3", p.Distance)
			}
		}
	}
	if !foundDep {
		t.Errorf("a[i] vs a[i+3] should be dependent: %s", r.Summary())
	}
}

func TestSIVDistanceBeyondTrip(t *testing.T) {
	res := analyze(t, `
int a[300];
int main() {
	int i;
	for (i = 0; i < 10; i++)
		a[i] = a[i + 100];
	return 0;
}
`)
	r := Run(res)
	loop := firstLoop(t, r)
	_, sub, dep, _ := loop.Counts()
	if dep != 0 || sub == 0 {
		t.Errorf("distance 100 exceeds trip count 10: should be independent, got %s", r.Summary())
	}
}

func TestZIVIndependent(t *testing.T) {
	res := analyze(t, `
int a[8];
int main() {
	int i;
	for (i = 0; i < 8; i++) {
		a[0] = a[0] + 1;
		a[3] = a[3] + 2;
	}
	return 0;
}
`)
	r := Run(res)
	loop := firstLoop(t, r)
	// a[0] vs a[3] pairs are ZIV-independent; a[0] vs a[0] dependent.
	_, sub, dep, _ := loop.Counts()
	if sub == 0 {
		t.Errorf("ZIV pairs a[0]/a[3] should be independent: %s", r.Summary())
	}
	if dep == 0 {
		t.Errorf("a[0] write/read pairs should be dependent: %s", r.Summary())
	}
}

func TestUnalignedPointerUnknown(t *testing.T) {
	// q = a + 2 points into the tail: subscripts are not comparable, so a
	// shared-array pair is Unknown (assumed dependent), not falsely
	// independent.
	res := analyze(t, `
int a[16];
int main() {
	int i;
	int *q;
	q = a + 2;
	for (i = 0; i < 8; i++)
		q[i] = a[i];
	return 0;
}
`)
	r := Run(res)
	loop := firstLoop(t, r)
	_, _, _, unk := loop.Counts()
	if unk == 0 {
		t.Errorf("unaligned pointer pair must be unknown: %s", r.Summary())
	}
}

func TestCallMakesLoopInadmissible(t *testing.T) {
	res := analyze(t, `
int a[8];
void touch(void) { a[0] = 1; }
int main() {
	int i;
	for (i = 0; i < 8; i++) {
		a[i] = i;
		touch();
	}
	return 0;
}
`)
	r := Run(res)
	loop := firstLoop(t, r)
	if loop.Admissible {
		t.Error("loops containing calls are not admissible")
	}
}

func TestSuiteLoops(t *testing.T) {
	// The array benchmarks should yield admissible loops and some
	// disjointness wins (csuite's s06x kernels get distinct arrays).
	for _, name := range []string{"csuite", "clinpack", "lws"} {
		prog, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pta.Analyze(prog, pta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := Run(res)
		if len(r.Loops) == 0 {
			t.Errorf("%s: no loops recognized", name)
			continue
		}
		t.Logf("%s: %s", name, r.Summary())
	}
}
