// Package heapconn implements a connection analysis for heap-directed
// pointers — the simplest member of the family of companion heap
// abstractions the paper's conclusions describe (Ghiya's "practical
// techniques for heap analysis", reference [16]): since the points-to
// analysis collapses all heap objects into the single `heap` location, a
// separate abstraction tracks which heap-directed pointers may point into
// the *same* heap data structure. Two pointers in different connection
// groups are guaranteed to access disjoint structures, which is the
// property dependence testing needs.
//
// The abstraction is a symmetric, reflexive relation ("connection matrix")
// over the pointer variables of a function that the points-to analysis
// found to be heap-directed. It is computed flow-sensitively over SIMPLE:
//
//	p = malloc()   kill p's connections; p starts a fresh structure
//	p = q          p joins q's structure
//	p = q->f, *q   p joins q's structure (fields stay within a structure)
//	p->f = q       p's and q's structures become connected (linked)
//	p = &x, NULL   p leaves the heap: kill its connections
//	calls          conservative: heap-directed globals and arguments all
//	               become connected to each other
package heapconn

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cc/ast"
	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/simple"
)

// pairKey is an unordered pair of variables.
type pairKey struct{ a, b *ast.Object }

func mkPair(a, b *ast.Object) pairKey {
	if a.Name > b.Name {
		a, b = b, a
	}
	return pairKey{a, b}
}

// Matrix is a connection relation at one program point.
type Matrix struct {
	pairs map[pairKey]bool
}

// NewMatrix returns an empty relation.
func NewMatrix() *Matrix { return &Matrix{pairs: make(map[pairKey]bool)} }

// Connected reports whether a and b may point into the same structure.
func (m *Matrix) Connected(a, b *ast.Object) bool {
	if a == nil || b == nil {
		return false
	}
	return m.pairs[mkPair(a, b)]
}

func (m *Matrix) connect(a, b *ast.Object) { m.pairs[mkPair(a, b)] = true }

// kill removes every connection of v (it no longer points into the heap or
// points somewhere fresh).
func (m *Matrix) kill(v *ast.Object) {
	for k := range m.pairs {
		if k.a == v || k.b == v {
			delete(m.pairs, k)
		}
	}
}

// group returns the variables connected to v, including v itself if live.
func (m *Matrix) group(v *ast.Object) []*ast.Object {
	var out []*ast.Object
	for k := range m.pairs {
		if k.a == v {
			out = append(out, k.b)
		} else if k.b == v {
			out = append(out, k.a)
		}
	}
	return out
}

// joinInto makes dst a member of src's structure: dst connects to src and
// to everything src connects to.
func (m *Matrix) joinInto(dst, src *ast.Object) {
	grp := m.group(src)
	m.kill(dst)
	if !m.pairs[mkPair(src, src)] && len(grp) == 0 {
		return // src is not heap-directed here
	}
	m.connect(dst, dst)
	m.connect(dst, src)
	for _, g := range grp {
		m.connect(dst, g)
	}
}

// link connects a's and b's structures (a->f = b).
func (m *Matrix) link(a, b *ast.Object) {
	ga := append(m.group(a), a)
	gb := append(m.group(b), b)
	for _, x := range ga {
		for _, y := range gb {
			m.connect(x, y)
		}
	}
}

// clone copies the relation.
func (m *Matrix) clone() *Matrix {
	n := NewMatrix()
	for k := range m.pairs {
		n.pairs[k] = true
	}
	return n
}

// union merges o into m (the join at control-flow merges).
func (m *Matrix) union(o *Matrix) {
	for k := range o.pairs {
		m.pairs[k] = true
	}
}

func (m *Matrix) equal(o *Matrix) bool {
	if len(m.pairs) != len(o.pairs) {
		return false
	}
	for k := range m.pairs {
		if !o.pairs[k] {
			return false
		}
	}
	return true
}

// Len returns the number of connected (unordered) pairs.
func (m *Matrix) Len() int { return len(m.pairs) }

// String renders the relation deterministically.
func (m *Matrix) String() string {
	var parts []string
	for k := range m.pairs {
		parts = append(parts, fmt.Sprintf("(%s,%s)", k.a.Name, k.b.Name))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// FuncResult is the analysis outcome for one function.
type FuncResult struct {
	Fn *simple.Function
	// HeapPtrs are the pointer variables the points-to analysis found to
	// be (possibly) heap-directed anywhere in the function.
	HeapPtrs []*ast.Object
	// Exit is the connection matrix at function exit.
	Exit *Matrix
	// NaivePairs is the size of the all-connected relation over HeapPtrs
	// (the baseline without connection analysis).
	NaivePairs int
}

// DisjointPairs counts pairs of distinct heap pointers proven to address
// disjoint structures at exit.
func (r *FuncResult) DisjointPairs() int {
	n := 0
	for i := 0; i < len(r.HeapPtrs); i++ {
		for j := i + 1; j < len(r.HeapPtrs); j++ {
			if !r.Exit.Connected(r.HeapPtrs[i], r.HeapPtrs[j]) {
				n++
			}
		}
	}
	return n
}

// Result holds per-function connection results.
type Result struct {
	Funcs map[string]*FuncResult
}

// analyzer carries the points-to result used to classify references.
type analyzer struct {
	res *pta.Result
	// heapSet is the current function's heap-directed variable set; the
	// connection matrix is restricted to it.
	heapSet map[*ast.Object]bool
}

// member returns v when it is in the tracked heap set, else nil.
func (a *analyzer) member(v *ast.Object) *ast.Object {
	if v != nil && a.heapSet[v] {
		return v
	}
	return nil
}

// Run computes connection matrices for every function of the analyzed
// program.
func Run(res *pta.Result) *Result {
	a := &analyzer{res: res}
	out := &Result{Funcs: make(map[string]*FuncResult)}
	for _, fn := range res.Prog.Functions {
		out.Funcs[fn.Name()] = a.analyzeFunc(fn)
	}
	return out
}

// heapDirected reports whether the variable may point into the heap
// anywhere: in any statement's merged annotation, in the stored outputs of
// the function's invocation-graph nodes, or at main's exit (the statement
// annotations are inputs, so the effect of a function's last statement only
// shows in the outputs).
func (a *analyzer) heapDirected(v *ast.Object, fn *simple.Function) bool {
	l := a.res.Table.VarLoc(v, nil)
	heap := a.res.Table.HeapLoc()
	if _, has := a.res.MainOut.Lookup(l, heap); has {
		return true
	}
	found := false
	a.res.Prog.ForEachBasic(func(b *simple.Basic) {
		if found {
			return
		}
		if in, ok := a.res.Annots.At(b); ok {
			if _, has := in.Lookup(l, heap); has {
				found = true
			}
		}
	})
	if found {
		return true
	}
	a.res.Graph.Walk(func(n *invgraph.Node) {
		if found || n.Fn != fn || !n.HasResult {
			return
		}
		if _, has := n.StoredOutput.Lookup(l, heap); has {
			found = true
		}
	})
	return found
}

func (a *analyzer) analyzeFunc(fn *simple.Function) *FuncResult {
	fr := &FuncResult{Fn: fn, Exit: NewMatrix()}
	seen := make(map[*ast.Object]bool)
	consider := func(v *ast.Object) {
		if v == nil || seen[v] || v.Type == nil || !v.Type.HasPointers() {
			return
		}
		seen[v] = true
		if a.heapDirected(v, fn) {
			fr.HeapPtrs = append(fr.HeapPtrs, v)
		}
	}
	for _, p := range fn.Params {
		consider(p)
	}
	for _, l := range fn.Locals {
		consider(l)
	}
	for _, g := range a.res.Prog.Globals {
		consider(g)
	}
	sort.Slice(fr.HeapPtrs, func(i, j int) bool {
		return fr.HeapPtrs[i].Name < fr.HeapPtrs[j].Name
	})
	n := len(fr.HeapPtrs)
	fr.NaivePairs = n * (n + 1) / 2
	a.heapSet = make(map[*ast.Object]bool, n)
	for _, v := range fr.HeapPtrs {
		a.heapSet[v] = true
	}

	m := NewMatrix()
	// Entry assumption: heap-directed parameters and globals may already
	// be interconnected (the caller could have linked them).
	var entry []*ast.Object
	for _, v := range fr.HeapPtrs {
		if v.Global || v.Kind == ast.Param {
			entry = append(entry, v)
		}
	}
	for i := 0; i < len(entry); i++ {
		for j := i; j < len(entry); j++ {
			m.connect(entry[i], entry[j])
		}
	}
	a.seq(fn.Body, m)
	fr.Exit = m
	return fr
}

// refVar extracts the scalar pointer variable a reference manipulates when
// the reference is heap-relevant, plus whether it goes through the heap
// (p->f style).
func refVar(r *simple.Ref) (v *ast.Object, throughHeap bool) {
	if r == nil {
		return nil, false
	}
	return r.Var, r.Deref
}

func (a *analyzer) basic(b *simple.Basic, m *Matrix) {
	switch b.Kind {
	case simple.AsgnMalloc:
		if v, th := refVar(b.LHS); a.member(v) != nil && !th {
			m.kill(v)
			m.connect(v, v)
		} else if a.member(v) != nil && th {
			// p->f = malloc(): the fresh object joins p's structure.
			m.link(v, v)
		}

	case simple.AsgnCopy:
		lv, lth := refVar(b.LHS)
		lv = a.member(lv)
		rv := (*ast.Object)(nil)
		rth := false
		if r, ok := b.X.(*simple.Ref); ok {
			rv, rth = refVar(r)
			rv = a.member(rv)
		}
		switch {
		case lv == nil:
			return
		case rv == nil:
			// p = NULL / constant: leaves the heap.
			if !lth {
				m.kill(lv)
			}
			return
		case !lth && !rth:
			// p = q.
			m.joinInto(lv, rv)
		case !lth && rth:
			// p = q->f / *q: stays within q's structure.
			m.joinInto(lv, rv)
		case lth && !rth:
			// p->f = q: link the structures.
			m.link(lv, rv)
		default:
			// p->f = q->g.
			m.link(lv, rv)
		}

	case simple.AsgnAddr:
		// p = &x: p now points at the stack, not the heap...
		if v, th := refVar(b.LHS); a.member(v) != nil && !th {
			m.kill(v)
		}

	case simple.AsgnBinary:
		// Pointer arithmetic keeps the structure: p = q + i.
		lv, lth := refVar(b.LHS)
		lv = a.member(lv)
		if lv == nil || lth {
			return
		}
		if r, ok := b.X.(*simple.Ref); ok {
			if rv, rth := refVar(r); a.member(rv) != nil && !rth {
				m.joinInto(lv, rv)
				return
			}
		}
		if r, ok := b.Y.(*simple.Ref); ok {
			if rv, rth := refVar(r); a.member(rv) != nil && !rth {
				m.joinInto(lv, rv)
			}
		}

	case simple.AsgnCall, simple.AsgnCallInd:
		// Conservative: the callee may link anything reachable from its
		// arguments and the globals.
		var involved []*ast.Object
		for _, arg := range b.Args {
			if r, ok := arg.(*simple.Ref); ok && a.member(r.Var) != nil {
				involved = append(involved, r.Var)
			}
		}
		for _, g := range a.res.Prog.Globals {
			if a.member(g) != nil {
				involved = append(involved, g)
			}
		}
		for i := 0; i < len(involved); i++ {
			for j := i + 1; j < len(involved); j++ {
				m.link(involved[i], involved[j])
			}
		}
		if lv, lth := refVar(b.LHS); a.member(lv) != nil && !lth {
			// The result may point into any structure the callee saw.
			m.kill(lv)
			for _, v := range involved {
				m.link(lv, v)
			}
			m.connect(lv, lv)
		}
	}
}

func (a *analyzer) seq(s *simple.Seq, m *Matrix) {
	if s == nil {
		return
	}
	for _, c := range s.List {
		a.stmt(c, m)
	}
}

func (a *analyzer) stmt(s simple.Stmt, m *Matrix) {
	switch s := s.(type) {
	case *simple.Basic:
		a.basic(s, m)
	case *simple.Seq:
		a.seq(s, m)
	case *simple.If:
		thenM := m.clone()
		a.seq(s.Then, thenM)
		if s.Else != nil {
			a.seq(s.Else, m)
		}
		m.union(thenM)
	case *simple.While:
		a.loop(m, func(x *Matrix) {
			a.seq(s.CondEval, x)
			a.seq(s.Body, x)
		})
	case *simple.DoWhile:
		a.loop(m, func(x *Matrix) {
			a.seq(s.Body, x)
			a.seq(s.CondEval, x)
		})
	case *simple.For:
		a.seq(s.Init, m)
		a.loop(m, func(x *Matrix) {
			a.seq(s.CondEval, x)
			a.seq(s.Body, x)
			a.seq(s.Post, x)
		})
	case *simple.Switch:
		acc := m.clone()
		for _, c := range s.Cases {
			armM := m.clone()
			a.seq(c.Body, armM)
			acc.union(armM)
		}
		m.union(acc)
	}
}

// loop iterates a loop body until the relation stabilizes (it only grows,
// so this terminates quickly).
func (a *analyzer) loop(m *Matrix, body func(*Matrix)) {
	for i := 0; i < 100; i++ {
		next := m.clone()
		body(next)
		next.union(m)
		if next.equal(m) {
			return
		}
		m.union(next)
	}
}
