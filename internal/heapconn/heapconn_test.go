package heapconn

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/ast"
	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/simplify"
)

func analyze(t *testing.T, src string) *pta.Result {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	res, err := pta.Analyze(prog, pta.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

func varOf(fr *FuncResult, name string) *ast.Object {
	for _, v := range fr.HeapPtrs {
		if v.Name == name {
			return v
		}
	}
	return nil
}

func TestDisjointAllocations(t *testing.T) {
	res := analyze(t, `
struct n { struct n *next; };
int main() {
	struct n *p, *q;
	p = (struct n *) malloc(8);
	q = (struct n *) malloc(8);
	return 0;
}
`)
	r := Run(res)
	fr := r.Funcs["main"]
	p, q := varOf(fr, "p"), varOf(fr, "q")
	if p == nil || q == nil {
		t.Fatalf("heap pointers not detected: %v", fr.HeapPtrs)
	}
	if fr.Exit.Connected(p, q) {
		t.Error("two fresh allocations must be disjoint")
	}
	if fr.DisjointPairs() == 0 {
		t.Error("expected at least one provably disjoint pair")
	}
}

func TestCopyConnects(t *testing.T) {
	res := analyze(t, `
struct n { struct n *next; };
int main() {
	struct n *p, *q;
	p = (struct n *) malloc(8);
	q = p;
	return 0;
}
`)
	r := Run(res)
	fr := r.Funcs["main"]
	if !fr.Exit.Connected(varOf(fr, "p"), varOf(fr, "q")) {
		t.Error("q = p must connect them")
	}
}

func TestLinkConnectsStructures(t *testing.T) {
	res := analyze(t, `
struct n { struct n *next; };
int main() {
	struct n *p, *q;
	p = (struct n *) malloc(8);
	q = (struct n *) malloc(8);
	p->next = q;   /* links the two structures */
	return 0;
}
`)
	r := Run(res)
	fr := r.Funcs["main"]
	if !fr.Exit.Connected(varOf(fr, "p"), varOf(fr, "q")) {
		t.Error("p->next = q links the structures")
	}
}

func TestTraversalStaysWithinStructure(t *testing.T) {
	res := analyze(t, `
struct n { struct n *next; };
int main() {
	struct n *a, *b, *cur;
	a = (struct n *) malloc(8);
	b = (struct n *) malloc(8);
	a->next = (struct n *) malloc(8);
	cur = a->next;   /* cur is inside a's structure */
	return 0;
}
`)
	r := Run(res)
	fr := r.Funcs["main"]
	a, b, cur := varOf(fr, "a"), varOf(fr, "b"), varOf(fr, "cur")
	if !fr.Exit.Connected(cur, a) {
		t.Error("cur = a->next stays within a's structure")
	}
	if fr.Exit.Connected(cur, b) {
		t.Error("cur must remain disjoint from b")
	}
}

func TestReassignmentDisconnects(t *testing.T) {
	res := analyze(t, `
struct n { struct n *next; };
int main() {
	struct n *p, *q;
	p = (struct n *) malloc(8);
	q = p;
	q = (struct n *) malloc(8);   /* fresh structure again */
	return 0;
}
`)
	r := Run(res)
	fr := r.Funcs["main"]
	if fr.Exit.Connected(varOf(fr, "p"), varOf(fr, "q")) {
		t.Error("reallocation must disconnect q from p")
	}
}

func TestMergeAtJoin(t *testing.T) {
	res := analyze(t, `
struct n { struct n *next; };
int main() {
	struct n *p, *q, *r;
	int c;
	p = (struct n *) malloc(8);
	q = (struct n *) malloc(8);
	if (c)
		r = p;
	else
		r = q;
	return 0;
}
`)
	rr := Run(res)
	fr := rr.Funcs["main"]
	p, q, r := varOf(fr, "p"), varOf(fr, "q"), varOf(fr, "r")
	if !fr.Exit.Connected(r, p) || !fr.Exit.Connected(r, q) {
		t.Error("after the join r may be in either structure")
	}
	if fr.Exit.Connected(p, q) {
		t.Error("p and q themselves stay disjoint")
	}
}

func TestParametersConservativelyConnected(t *testing.T) {
	res := analyze(t, `
struct n { struct n *next; };
int use(struct n *a, struct n *b) {
	if (a && b) return 1;
	return 0;
}
int main() {
	struct n *x;
	x = (struct n *) malloc(8);
	return use(x, x);
}
`)
	r := Run(res)
	fr := r.Funcs["use"]
	a, b := varOf(fr, "a"), varOf(fr, "b")
	if a == nil || b == nil {
		t.Fatalf("params not heap-directed: %v", fr.HeapPtrs)
	}
	if !fr.Exit.Connected(a, b) {
		t.Error("heap parameters must be assumed connected at entry")
	}
}

func TestOnHeapBenchmarks(t *testing.T) {
	// The heap-heavy suite programs should show some disjointness wins.
	for _, name := range []string{"hash", "xref", "sim"} {
		prog, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pta.Analyze(prog, pta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := Run(res)
		total, naive := 0, 0
		for _, fr := range r.Funcs {
			total += fr.Exit.Len()
			naive += fr.NaivePairs
		}
		if naive == 0 {
			t.Errorf("%s: no heap pointers found", name)
			continue
		}
		if total > naive {
			t.Errorf("%s: connection matrix (%d) larger than naive (%d)", name, total, naive)
		}
		t.Logf("%s: %d connected pairs vs %d naive", name, total, naive)
	}
}
