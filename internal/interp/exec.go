package interp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
	"repro/internal/simple"
)

func (ip *Interp) execSeq(s *simple.Seq) (ctrl, Value, error) {
	if s == nil {
		return ctrlNormal, Value{}, nil
	}
	for _, c := range s.List {
		ct, v, err := ip.execStmt(c)
		if err != nil || ct != ctrlNormal {
			return ct, v, err
		}
	}
	return ctrlNormal, Value{}, nil
}

func (ip *Interp) execStmt(s simple.Stmt) (ctrl, Value, error) {
	ip.steps++
	if ip.steps > ip.MaxSteps {
		return ctrlNormal, Value{}, &runtimeError{"interp: step limit exceeded"}
	}
	switch s := s.(type) {
	case *simple.Basic:
		return ctrlNormal, Value{}, ip.execBasic(s)

	case *simple.Seq:
		return ip.execSeq(s)

	case *simple.If:
		b, err := ip.evalCond(s.Cond)
		if err != nil {
			return ctrlNormal, Value{}, err
		}
		if b {
			return ip.execSeq(s.Then)
		}
		if s.Else != nil {
			return ip.execSeq(s.Else)
		}
		return ctrlNormal, Value{}, nil

	case *simple.While:
		for {
			if ct, v, err := ip.execSeq(s.CondEval); err != nil || ct == ctrlReturn {
				return ct, v, err
			}
			b, err := ip.evalCond(s.Cond)
			if err != nil {
				return ctrlNormal, Value{}, err
			}
			if !b {
				return ctrlNormal, Value{}, nil
			}
			ct, v, err := ip.execSeq(s.Body)
			if err != nil || ct == ctrlReturn {
				return ct, v, err
			}
			if ct == ctrlBreak {
				return ctrlNormal, Value{}, nil
			}
		}

	case *simple.DoWhile:
		for {
			ct, v, err := ip.execSeq(s.Body)
			if err != nil || ct == ctrlReturn {
				return ct, v, err
			}
			if ct == ctrlBreak {
				return ctrlNormal, Value{}, nil
			}
			if ct, v, err := ip.execSeq(s.CondEval); err != nil || ct == ctrlReturn {
				return ct, v, err
			}
			b, err := ip.evalCond(s.Cond)
			if err != nil {
				return ctrlNormal, Value{}, err
			}
			if !b {
				return ctrlNormal, Value{}, nil
			}
		}

	case *simple.For:
		if ct, v, err := ip.execSeq(s.Init); err != nil || ct == ctrlReturn {
			return ct, v, err
		}
		for {
			if ct, v, err := ip.execSeq(s.CondEval); err != nil || ct == ctrlReturn {
				return ct, v, err
			}
			if s.Cond != nil {
				b, err := ip.evalCond(s.Cond)
				if err != nil {
					return ctrlNormal, Value{}, err
				}
				if !b {
					return ctrlNormal, Value{}, nil
				}
			}
			ct, v, err := ip.execSeq(s.Body)
			if err != nil || ct == ctrlReturn {
				return ct, v, err
			}
			if ct == ctrlBreak {
				return ctrlNormal, Value{}, nil
			}
			if ct2, v2, err := ip.execSeq(s.Post); err != nil || ct2 == ctrlReturn {
				return ct2, v2, err
			}
		}

	case *simple.Switch:
		tag, err := ip.evalOperand(s.Tag, s.Pos)
		if err != nil {
			return ctrlNormal, Value{}, err
		}
		tv := tag.asInt()
		start := -1
		dflt := -1
		for i, c := range s.Cases {
			if c.IsDefault {
				dflt = i
				continue
			}
			for _, cv := range c.Vals {
				if cv == tv {
					start = i
				}
			}
			if start >= 0 {
				break
			}
		}
		if start < 0 {
			start = dflt
		}
		if start < 0 {
			return ctrlNormal, Value{}, nil
		}
		for i := start; i < len(s.Cases); i++ {
			ct, v, err := ip.execSeq(s.Cases[i].Body)
			if err != nil || ct == ctrlReturn || ct == ctrlContinue {
				return ct, v, err
			}
			if ct == ctrlBreak {
				break
			}
		}
		return ctrlNormal, Value{}, nil

	case *simple.Break:
		return ctrlBreak, Value{}, nil
	case *simple.Continue:
		return ctrlContinue, Value{}, nil
	case *simple.Return:
		var v Value
		if s.X != nil {
			var err error
			v, err = ip.evalOperand(s.X, s.Pos)
			if err != nil {
				return ctrlNormal, Value{}, err
			}
		}
		return ctrlReturn, v, nil
	}
	return ctrlNormal, Value{}, fmt.Errorf("interp: unknown statement %T", s)
}

func (ip *Interp) evalCond(c *simple.Cond) (bool, error) {
	if c == nil {
		return true, nil
	}
	x, err := ip.evalOperand(c.X, token.Pos{})
	if err != nil {
		return false, err
	}
	if c.Y == nil {
		return x.truthy(), nil
	}
	y, err := ip.evalOperand(c.Y, token.Pos{})
	if err != nil {
		return false, err
	}
	v, err := ip.binop(c.Op, x, y, token.Pos{})
	if err != nil {
		return false, err
	}
	return v.truthy(), nil
}

// hasWholeArraySel reports whether a ref contains a synthesized nil-operand
// tail selector (aggregate copy plumbing).
func hasWholeArraySel(r *simple.Ref) bool {
	for _, s := range r.Path {
		if s.Kind == simple.SelIndex && s.Opnd == nil && s.Index != simple.IdxZero {
			return true
		}
	}
	for _, s := range r.DPath {
		if s.Kind == simple.SelIndex && s.Opnd == nil && s.Index != simple.IdxZero {
			return true
		}
	}
	return false
}

func (ip *Interp) execBasic(b *simple.Basic) error {
	if ip.Trace != nil {
		if err := ip.Trace(b, len(ip.stack)); err != nil {
			return err
		}
	}
	switch b.Kind {
	case simple.StmtNop:
		return nil

	case simple.AsgnCopy:
		if rx, ok := b.X.(*simple.Ref); ok && (hasWholeArraySel(b.LHS) || hasWholeArraySel(rx)) {
			return ip.execWholeArrayCopy(b, rx)
		}
		v, err := ip.evalOperand(b.X, b.Pos)
		if err != nil {
			return err
		}
		return ip.assign(b.LHS, v)

	case simple.AsgnAddr:
		if b.Addr.Var.Kind == ast.FuncObj {
			return ip.assign(b.LHS, Value{Kind: KFunc, Fn: b.Addr.Var})
		}
		p, err := ip.addrOfRef(b.Addr)
		if err != nil {
			return err
		}
		return ip.assign(b.LHS, Value{Kind: KPtr, P: p})

	case simple.AsgnUnary:
		x, err := ip.evalOperand(b.X, b.Pos)
		if err != nil {
			return err
		}
		v, err := ip.unop(b.Op, x, b.Pos)
		if err != nil {
			return err
		}
		v.Taint = v.Taint || x.Taint
		return ip.assign(b.LHS, v)

	case simple.AsgnBinary:
		x, err := ip.evalOperand(b.X, b.Pos)
		if err != nil {
			return err
		}
		y, err := ip.evalOperand(b.Y, b.Pos)
		if err != nil {
			return err
		}
		v, err := ip.binop(b.Op, x, y, b.Pos)
		if err != nil {
			return err
		}
		v.Taint = v.Taint || x.Taint || y.Taint
		return ip.assign(b.LHS, v)

	case simple.AsgnMalloc:
		id := ip.heapN
		ip.heapN++
		ip.heap[id] = make(map[string]cellEntry)
		return ip.assign(b.LHS, Value{Kind: KPtr, P: Pointer{HeapID: id}})

	case simple.AsgnCall:
		return ip.execCall(b)

	case simple.AsgnCallInd:
		fpv, err := ip.load(ip.varPointer(b.FnPtr))
		if err != nil {
			return err
		}
		if fpv.Kind != KFunc || fpv.Fn == nil {
			return ip.errf(b.Pos, "indirect call through non-function value")
		}
		callee := ip.Prog.Lookup(fpv.Fn.Name)
		if callee == nil {
			return ip.errf(b.Pos, "indirect call to unknown function %s", fpv.Fn.Name)
		}
		args, err := ip.evalArgs(b)
		if err != nil {
			return err
		}
		if ip.OnCall != nil {
			if err := ip.OnCall(b, callee); err != nil {
				return err
			}
		}
		rv, err := ip.call(callee, args)
		if ip.OnReturn != nil {
			ip.OnReturn()
		}
		if err != nil {
			return err
		}
		if b.LHS != nil {
			return ip.assign(b.LHS, rv)
		}
		return nil
	}
	return ip.errf(b.Pos, "interp: unknown basic statement kind %d", b.Kind)
}

// execWholeArrayCopy expands nil-operand tail selectors: the statement
// copies element 0 (head form) or every element >= 1 (tail form) of the
// array level in question, as emitted by the struct-assignment decomposer.
func (ip *Interp) execWholeArrayCopy(b *simple.Basic, rx *simple.Ref) error {
	// Determine the array length from the LHS type context.
	n := arrayLenAt(b.LHS)
	if n < 0 {
		n = arrayLenAt(rx)
	}
	if n < 0 {
		return ip.errf(b.Pos, "interp: cannot size whole-array copy")
	}
	for i := 1; i < n; i++ {
		lhs := withConcreteTail(b.LHS, i)
		src := withConcreteTail(rx, i)
		v, err := ip.evalRef(src)
		if err != nil {
			return err
		}
		if err := ip.assign(lhs, v); err != nil {
			return err
		}
	}
	return nil
}

// arrayLenAt finds the declared length of the array addressed by the ref's
// nil-operand tail selector.
func arrayLenAt(r *simple.Ref) int {
	t := r.Var.Type
	scan := func(sels []simple.Sel, t *types.Type) (*types.Type, int) {
		for _, s := range sels {
			if t == nil {
				return nil, -1
			}
			if s.Kind == simple.SelField {
				f := t.FieldByName(s.Name)
				if f == nil {
					return nil, -1
				}
				t = f.Type
				continue
			}
			if s.Opnd == nil && s.Index != simple.IdxZero {
				if t.Kind == types.Array {
					return t.Elem, t.Len
				}
				return nil, -1
			}
			d := t.Decay()
			if d.Kind != types.Pointer {
				return nil, -1
			}
			t = d.Elem
		}
		return t, -1
	}
	t2, n := scan(r.Path, t)
	if n >= 0 {
		return n
	}
	if r.Deref && t2 != nil {
		d := t2.Decay()
		if d.Kind == types.Pointer {
			_, n = scan(r.DPath, d.Elem)
			return n
		}
	}
	return -1
}

// withConcreteTail replaces the first nil-operand tail selector with a
// concrete index.
func withConcreteTail(r *simple.Ref, i int) *simple.Ref {
	nr := &simple.Ref{
		Var: r.Var, Deref: r.Deref, Pos: r.Pos,
		Path:  append([]simple.Sel{}, r.Path...),
		DPath: append([]simple.Sel{}, r.DPath...),
	}
	conv := func(sels []simple.Sel) bool {
		for k, s := range sels {
			if s.Kind == simple.SelIndex && s.Opnd == nil && s.Index != simple.IdxZero {
				sels[k].Opnd = &simple.ConstInt{Val: int64(i)}
				return true
			}
		}
		return false
	}
	if !conv(nr.Path) {
		conv(nr.DPath)
	}
	return nr
}

func (ip *Interp) assign(lhs *simple.Ref, v Value) error {
	if lhs == nil {
		return nil
	}
	addr, err := ip.addrOfRef(lhs)
	if err != nil {
		return err
	}
	// Coerce by destination type so int/float conversions behave. The taint
	// bit survives coercion: a narrowed or converted tainted value is still
	// attacker-derived.
	tn := v.Taint
	if t := ip.typeOfCell(addr); t != nil {
		switch {
		case t.IsFloat() && v.Kind == KInt:
			v = floatVal(float64(v.I))
		case t.IsInteger() && v.Kind == KFloat:
			v = intVal(int64(v.F))
		case t.Kind == types.Char && v.Kind == KInt:
			v = intVal(int64(int8(v.I)))
		}
	}
	v.Taint = tn
	return ip.store(addr, v)
}

func (ip *Interp) unop(op token.Kind, x Value, pos token.Pos) (Value, error) {
	switch op {
	case token.SUB:
		if x.Kind == KFloat {
			return floatVal(-x.F), nil
		}
		return intVal(-x.I), nil
	case token.NOT:
		if x.truthy() {
			return intVal(0), nil
		}
		return intVal(1), nil
	case token.TILDE:
		return intVal(^x.asInt()), nil
	}
	return Value{}, ip.errf(pos, "interp: unary %s unsupported", op)
}

func samePtrBase(a, b Pointer) bool {
	if a.Obj != b.Obj || a.Frame != b.Frame || a.HeapID != b.HeapID {
		return false
	}
	la, lb := len(a.Path), len(b.Path)
	n := la
	if lb < n {
		n = lb
	}
	for i := 0; i < n-1; i++ {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// ptrCompare orders two pointers into the same object by final index.
func ptrCompare(a, b Pointer) (int, bool) {
	if a.isNil() || b.isNil() {
		if a.isNil() && b.isNil() {
			return 0, true
		}
		return 0, false
	}
	if !samePtrBase(a, b) {
		return 0, false
	}
	ai, bi := 0, 0
	if n := len(a.Path); n > 0 && a.Path[n-1].IsIdx {
		ai = a.Path[n-1].Idx
	}
	if n := len(b.Path); n > 0 && b.Path[n-1].IsIdx {
		bi = b.Path[n-1].Idx
	}
	switch {
	case ai < bi:
		return -1, true
	case ai > bi:
		return 1, true
	}
	return 0, true
}

func (ip *Interp) binop(op token.Kind, x, y Value, pos token.Pos) (Value, error) {
	// Pointer comparisons and arithmetic. An integer 0 compared against a
	// pointer is the null pointer constant.
	if x.Kind == KPtr || y.Kind == KPtr {
		switch op {
		case token.EQL, token.NEQ, token.LAND, token.LOR:
			if x.Kind == KInt && x.I == 0 {
				x = nilPtr()
			}
			if y.Kind == KInt && y.I == 0 {
				y = nilPtr()
			}
		}
		if op == token.LAND || op == token.LOR {
			return boolVal((op == token.LAND && x.truthy() && y.truthy()) ||
				(op == token.LOR && (x.truthy() || y.truthy()))), nil
		}
		return ip.ptrBinop(op, x, y, pos)
	}
	if x.Kind == KFunc || y.Kind == KFunc {
		switch op {
		case token.EQL:
			return boolVal(x.Kind == y.Kind && x.Fn == y.Fn), nil
		case token.NEQ:
			return boolVal(!(x.Kind == y.Kind && x.Fn == y.Fn)), nil
		}
		return Value{}, ip.errf(pos, "interp: bad function-value operation %s", op)
	}
	if x.Kind == KStr || y.Kind == KStr {
		switch op {
		case token.EQL:
			return boolVal(x.Kind == y.Kind && x.S == y.S && x.Off == y.Off), nil
		case token.NEQ:
			return boolVal(!(x.Kind == y.Kind && x.S == y.S && x.Off == y.Off)), nil
		case token.ADD:
			// String literal + integer offset.
			s, o := x, y
			if y.Kind == KStr {
				s, o = y, x
			}
			ns := s
			ns.Off += int(o.asInt())
			return ns, nil
		}
		return Value{}, ip.errf(pos, "interp: bad string operation %s", op)
	}
	if x.Kind == KFloat || y.Kind == KFloat {
		a, b := x.asFloat(), y.asFloat()
		switch op {
		case token.ADD:
			return floatVal(a + b), nil
		case token.SUB:
			return floatVal(a - b), nil
		case token.MUL:
			return floatVal(a * b), nil
		case token.QUO:
			if b == 0 {
				return Value{}, ip.errf(pos, "float division by zero")
			}
			return floatVal(a / b), nil
		case token.EQL:
			return boolVal(a == b), nil
		case token.NEQ:
			return boolVal(a != b), nil
		case token.LSS:
			return boolVal(a < b), nil
		case token.GTR:
			return boolVal(a > b), nil
		case token.LEQ:
			return boolVal(a <= b), nil
		case token.GEQ:
			return boolVal(a >= b), nil
		}
		return Value{}, ip.errf(pos, "interp: bad float operation %s", op)
	}
	a, b := x.asInt(), y.asInt()
	switch op {
	case token.ADD:
		return intVal(a + b), nil
	case token.SUB:
		return intVal(a - b), nil
	case token.MUL:
		return intVal(a * b), nil
	case token.QUO:
		if b == 0 {
			return Value{}, ip.errf(pos, "integer division by zero")
		}
		return intVal(a / b), nil
	case token.REM:
		if b == 0 {
			return Value{}, ip.errf(pos, "integer modulo by zero")
		}
		return intVal(a % b), nil
	case token.SHL:
		return intVal(a << (uint64(b) & 63)), nil
	case token.SHR:
		return intVal(a >> (uint64(b) & 63)), nil
	case token.AND:
		return intVal(a & b), nil
	case token.OR:
		return intVal(a | b), nil
	case token.XOR:
		return intVal(a ^ b), nil
	case token.EQL:
		return boolVal(a == b), nil
	case token.NEQ:
		return boolVal(a != b), nil
	case token.LSS:
		return boolVal(a < b), nil
	case token.GTR:
		return boolVal(a > b), nil
	case token.LEQ:
		return boolVal(a <= b), nil
	case token.GEQ:
		return boolVal(a >= b), nil
	case token.LAND:
		return boolVal(a != 0 && b != 0), nil
	case token.LOR:
		return boolVal(a != 0 || b != 0), nil
	}
	return Value{}, ip.errf(pos, "interp: bad integer operation %s", op)
}

func (ip *Interp) ptrBinop(op token.Kind, x, y Value, pos token.Pos) (Value, error) {
	switch op {
	case token.ADD, token.SUB:
		p, o := x, y
		if y.Kind == KPtr && x.Kind != KPtr {
			p, o = y, x
		}
		if p.Kind == KPtr && o.Kind != KPtr {
			k := o.asInt()
			if op == token.SUB {
				k = -k
			}
			np, err := ptrAdd(p.P, k)
			if err != nil {
				return Value{}, ip.errf(pos, "%v", err)
			}
			return Value{Kind: KPtr, P: np}, nil
		}
		if op == token.SUB && x.Kind == KPtr && y.Kind == KPtr {
			c, ok := ptrCompare(x.P, y.P)
			if !ok {
				return Value{}, ip.errf(pos, "difference of unrelated pointers")
			}
			ai, bi := lastIdx(x.P), lastIdx(y.P)
			_ = c
			return intVal(int64(ai - bi)), nil
		}
	case token.EQL, token.NEQ:
		eq := false
		if x.Kind == KPtr && y.Kind == KPtr {
			if x.P.isNil() || y.P.isNil() {
				eq = x.P.isNil() && y.P.isNil()
			} else if c, ok := ptrCompare(x.P, y.P); ok {
				eq = c == 0 && len(x.P.Path) == len(y.P.Path)
			}
		}
		if op == token.EQL {
			return boolVal(eq), nil
		}
		return boolVal(!eq), nil
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		if x.Kind == KPtr && y.Kind == KPtr {
			c, ok := ptrCompare(x.P, y.P)
			if !ok {
				return Value{}, ip.errf(pos, "comparison of unrelated pointers")
			}
			switch op {
			case token.LSS:
				return boolVal(c < 0), nil
			case token.GTR:
				return boolVal(c > 0), nil
			case token.LEQ:
				return boolVal(c <= 0), nil
			case token.GEQ:
				return boolVal(c >= 0), nil
			}
		}
	}
	return Value{}, ip.errf(pos, "interp: bad pointer operation %s", op)
}

func lastIdx(p Pointer) int {
	if n := len(p.Path); n > 0 && p.Path[n-1].IsIdx {
		return p.Path[n-1].Idx
	}
	return 0
}

func boolVal(b bool) Value {
	if b {
		return intVal(1)
	}
	return intVal(0)
}

// ---------------------------------------------------------------------------
// Calls

func (ip *Interp) evalArgs(b *simple.Basic) ([]Value, error) {
	args := make([]Value, len(b.Args))
	for i, a := range b.Args {
		v, err := ip.evalOperand(a, b.Pos)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return args, nil
}

func (ip *Interp) execCall(b *simple.Basic) error {
	args, err := ip.evalArgs(b)
	if err != nil {
		return err
	}
	callee := ip.Prog.Lookup(b.Callee.Name)
	if callee == nil {
		rv, err := ip.builtin(b.Callee.Name, args, b.Pos)
		if err != nil {
			return err
		}
		if b.LHS != nil {
			return ip.assign(b.LHS, rv)
		}
		return nil
	}
	if ip.OnCall != nil {
		if err := ip.OnCall(b, callee); err != nil {
			return err
		}
	}
	rv, err := ip.call(callee, args)
	if ip.OnReturn != nil {
		ip.OnReturn()
	}
	if err != nil {
		return err
	}
	if b.LHS != nil {
		return ip.assign(b.LHS, rv)
	}
	return nil
}

func (ip *Interp) call(fn *simple.Function, args []Value) (Value, error) {
	if len(ip.stack) > 4096 {
		return Value{}, &runtimeError{"interp: call stack overflow"}
	}
	fr := &Frame{Fn: fn, Depth: len(ip.stack) + 1, Alive: true, cells: make(map[string]cellEntry)}
	for i, p := range fn.Params {
		if i < len(args) {
			fr.cells[p.Name] = cellEntry{
				val:  args[i],
				addr: Pointer{Obj: p, Frame: fr, HeapID: -1},
			}
		}
	}
	ip.stack = append(ip.stack, fr)
	ct, rv, err := ip.execSeq(fn.Body)
	fr.Alive = false
	ip.stack = ip.stack[:len(ip.stack)-1]
	if err != nil {
		return Value{}, err
	}
	if ct != ctrlReturn {
		rv = intVal(0)
	}
	return rv, nil
}

// ---------------------------------------------------------------------------
// Builtins

// readCString reads a NUL-terminated string through a pointer or literal.
func (ip *Interp) readCString(v Value) (string, error) {
	s, _, err := ip.readCStringT(v)
	return s, err
}

// readCStringT is readCString plus the accumulated taint of the characters
// read: a string is tainted if the holding value is, or if any character cell
// before the terminator carries the taint bit.
func (ip *Interp) readCStringT(v Value) (string, bool, error) {
	switch v.Kind {
	case KStr:
		if v.Off <= len(v.S) {
			return v.S[v.Off:], v.Taint, nil
		}
		return "", false, &runtimeError{"string literal offset out of range"}
	case KPtr:
		var sb strings.Builder
		taint := v.Taint
		p := v.P
		for i := 0; i < 1<<16; i++ {
			cv, err := ip.load(p)
			if err != nil {
				return "", false, err
			}
			c := cv.asInt()
			if c == 0 {
				return sb.String(), taint, nil
			}
			taint = taint || cv.Taint
			sb.WriteByte(byte(c))
			var aerr error
			p, aerr = ptrAdd(p, 1)
			if aerr != nil {
				return "", false, aerr
			}
		}
		return "", false, &runtimeError{"unterminated C string"}
	}
	return "", false, &runtimeError{"not a string value"}
}

// dataTaint reports whether a value or the string data it points to is
// tainted — the dynamic analogue of the static checker's data-taint join.
func (ip *Interp) dataTaint(v Value) bool {
	if v.Taint {
		return true
	}
	switch v.Kind {
	case KStr, KPtr:
		_, t, err := ip.readCStringT(v)
		return err == nil && t
	}
	return false
}

// sink fires the dynamic-taint hook.
func (ip *Interp) sink(kind string) {
	if ip.OnTaintSink != nil {
		ip.OnTaintSink(kind)
	}
}

func (ip *Interp) builtin(name string, args []Value, pos token.Pos) (Value, error) {
	switch name {
	case "printf", "sprintf":
		start := 0
		var dst Value
		if name == "sprintf" {
			if len(args) < 1 {
				return intVal(0), nil
			}
			dst = args[0]
			start = 1
		}
		if len(args) <= start {
			return intVal(0), nil
		}
		format, ftaint, err := ip.readCStringT(args[start])
		if err != nil {
			return Value{}, err
		}
		if ftaint {
			ip.sink("tainted-format")
		}
		dataTaint := false
		for _, a := range args[start+1:] {
			if ip.dataTaint(a) {
				dataTaint = true
			}
		}
		if name == "sprintf" && dataTaint {
			ip.sink("tainted-copy")
		}
		out, err := ip.formatC(format, args[start+1:])
		if err != nil {
			return Value{}, err
		}
		if name == "printf" {
			ip.Out.WriteString(out)
		} else if err := ip.writeCStringT(dst, out, ftaint || dataTaint); err != nil {
			return Value{}, err
		}
		return intVal(int64(len(out))), nil

	case "puts":
		s, err := ip.readCString(args[0])
		if err != nil {
			return Value{}, err
		}
		ip.Out.WriteString(s + "\n")
		return intVal(0), nil

	case "putchar":
		ip.Out.WriteByte(byte(args[0].asInt()))
		return args[0], nil

	case "getchar":
		return intVal(-1), nil // EOF

	case "free":
		if len(args) != 1 || args[0].Kind != KPtr {
			return Value{}, ip.errf(pos, "free: expected one pointer argument")
		}
		p := args[0].P
		if p.isNil() {
			return intVal(0), nil // free(NULL) is a no-op
		}
		if p.HeapID < 0 {
			return Value{}, ip.errf(pos, "free of non-heap pointer")
		}
		if _, live := ip.heap[p.HeapID]; !live {
			return Value{}, ip.errf(pos, "double free of heap object")
		}
		delete(ip.heap, p.HeapID)
		return intVal(0), nil

	case "strcpy", "strncpy", "strcat":
		if len(args) < 2 {
			return Value{}, ip.errf(pos, "%s: missing arguments", name)
		}
		src, staint, err := ip.readCStringT(args[1])
		if err != nil {
			return Value{}, err
		}
		if staint {
			ip.sink("tainted-copy")
		}
		dst := args[0]
		taint := staint
		if name == "strcat" {
			old, otaint, err := ip.readCStringT(dst)
			if err != nil {
				return Value{}, err
			}
			src = old + src
			taint = taint || otaint
		}
		if err := ip.writeCStringT(dst, src, taint); err != nil {
			return Value{}, err
		}
		return dst, nil

	case "strcmp":
		a, err := ip.readCString(args[0])
		if err != nil {
			return Value{}, err
		}
		bs, err := ip.readCString(args[1])
		if err != nil {
			return Value{}, err
		}
		return intVal(int64(strings.Compare(a, bs))), nil

	case "strlen":
		s, err := ip.readCString(args[0])
		if err != nil {
			return Value{}, err
		}
		return intVal(int64(len(s))), nil

	case "abs":
		v := args[0].asInt()
		if v < 0 {
			v = -v
		}
		return intVal(v), nil

	case "fabs":
		return floatVal(math.Abs(args[0].asFloat())), nil

	case "sqrt":
		return floatVal(math.Sqrt(args[0].asFloat())), nil

	case "rand":
		ip.randState = ip.randState*1103515245 + 12345
		return intVal((ip.randState >> 16) & 0x7fff), nil

	case "srand":
		ip.randState = args[0].asInt()
		return intVal(0), nil

	case "atoi":
		s, err := ip.readCString(args[0])
		if err != nil {
			return Value{}, err
		}
		n := int64(0)
		neg := false
		for i, c := range s {
			if i == 0 && c == '-' {
				neg = true
				continue
			}
			if c < '0' || c > '9' {
				break
			}
			n = n*10 + int64(c-'0')
		}
		if neg {
			n = -n
		}
		return intVal(n), nil

	case "exit":
		return Value{}, &exitError{code: args[0].asInt()}

	// --- dynamic-taint oracle: sources ---

	case "getenv":
		// Model: every environment variable exists and is attacker-controlled.
		return Value{Kind: KStr, S: "T", Taint: true}, nil

	case "gets", "fgets":
		if len(args) < 1 {
			return Value{}, ip.errf(pos, "%s: missing arguments", name)
		}
		if err := ip.writeCStringT(args[0], "in", true); err != nil {
			return Value{}, err
		}
		return args[0], nil

	case "read", "recv":
		if len(args) < 2 {
			return Value{}, ip.errf(pos, "%s: missing arguments", name)
		}
		if err := ip.writeCStringT(args[1], "in", true); err != nil {
			return Value{}, err
		}
		return intVal(2), nil

	case "scanf", "fscanf", "sscanf":
		// Model: every %-conversion stores one tainted datum through the
		// corresponding pointer argument.
		skip := 1
		if name != "scanf" {
			skip = 2
		}
		for _, a := range args[skip:] {
			if a.Kind != KPtr || a.P.isNil() {
				continue
			}
			tv := intVal(1)
			tv.Taint = true
			if err := ip.store(a.P, tv); err != nil {
				return Value{}, err
			}
		}
		return intVal(int64(len(args) - skip)), nil

	// --- dynamic-taint oracle: sinks ---

	case "system", "popen":
		if len(args) >= 1 && ip.dataTaint(args[0]) {
			ip.sink("tainted-exec")
		}
		if name == "popen" {
			return nilPtr(), nil
		}
		return intVal(0), nil

	case "execl", "execv", "execvp":
		for _, a := range args {
			if ip.dataTaint(a) {
				ip.sink("tainted-exec")
				break
			}
		}
		return intVal(0), nil

	// --- dynamic-taint oracle: sanitizer ---

	case "sanitize":
		// Clears the taint bit of the pointed-to C string in place.
		if len(args) >= 1 && args[0].Kind == KPtr && !args[0].P.isNil() {
			p := args[0].P
			for i := 0; i < 1<<16; i++ {
				cv, err := ip.load(p)
				if err != nil {
					return Value{}, err
				}
				if cv.asInt() == 0 {
					break
				}
				cv.Taint = false
				if err := ip.store(p, cv); err != nil {
					return Value{}, err
				}
				p, err = ptrAdd(p, 1)
				if err != nil {
					return Value{}, err
				}
			}
		}
		return intVal(0), nil

	case "memset", "memcpy", "memmove", "calloc", "realloc":
		// calloc/realloc are rewritten to AsgnMalloc by the simplifier;
		// the rest are unused by the suite but accepted as no-ops.
		return intVal(0), nil
	}
	return Value{}, ip.errf(pos, "interp: unknown builtin %s", name)
}

// exitError unwinds the interpreter on exit().
type exitError struct{ code int64 }

func (e *exitError) Error() string { return fmt.Sprintf("exit(%d)", e.code) }

func (ip *Interp) writeCString(dst Value, s string) error {
	return ip.writeCStringT(dst, s, false)
}

// writeCStringT writes a NUL-terminated string whose character cells carry
// the given taint bit (the terminator stays clean).
func (ip *Interp) writeCStringT(dst Value, s string, taint bool) error {
	if dst.Kind != KPtr {
		return &runtimeError{"write through non-pointer string destination"}
	}
	p := dst.P
	for i := 0; i < len(s); i++ {
		cv := intVal(int64(s[i]))
		cv.Taint = taint
		if err := ip.store(p, cv); err != nil {
			return err
		}
		var err error
		p, err = ptrAdd(p, 1)
		if err != nil {
			return err
		}
	}
	return ip.store(p, intVal(0))
}

// formatC implements the printf subset the suite uses.
func (ip *Interp) formatC(format string, args []Value) (string, error) {
	var sb strings.Builder
	ai := 0
	next := func() Value {
		if ai < len(args) {
			v := args[ai]
			ai++
			return v
		}
		return intVal(0)
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			sb.WriteByte(c)
			continue
		}
		i++
		// Skip width/precision.
		for i < len(format) && (format[i] == '-' || format[i] == '.' ||
			(format[i] >= '0' && format[i] <= '9')) {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case 'd', 'i', 'u', 'x', 'o', 'l':
			if format[i] == 'l' && i+1 < len(format) {
				i++ // %ld
			}
			fmt.Fprintf(&sb, "%d", next().asInt())
		case 'c':
			sb.WriteByte(byte(next().asInt()))
		case 'f', 'g', 'e':
			fmt.Fprintf(&sb, "%g", next().asFloat())
		case 's':
			s, err := ip.readCString(next())
			if err != nil {
				return "", err
			}
			sb.WriteString(s)
		case '%':
			sb.WriteByte('%')
		default:
			sb.WriteByte(format[i])
		}
	}
	return sb.String(), nil
}

// ExitCode extracts the code from an exit() unwind, if err is one.
func ExitCode(err error) (int64, bool) {
	if e, ok := err.(*exitError); ok {
		return e.code, true
	}
	return 0, false
}
