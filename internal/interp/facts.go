package interp

import "repro/internal/cc/ast"

// Fact is one concrete points-to observation: the cell at Src currently
// holds the address Dst (or the function DstFn, for function pointers).
type Fact struct {
	Src      Pointer
	Dst      Pointer     // valid when DstFn == nil and !DstStr
	DstFn    *ast.Object // non-nil for function-pointer cells
	DstStr   bool        // the cell holds a string-literal pointer
	DstFreed bool        // Dst addresses a heap object that has been freed
}

// PointerFacts enumerates every pointer-valued cell currently visible:
// globals, the heap, and the live frames accepted by includeFrame (nil
// accepts all).
func (ip *Interp) PointerFacts(includeFrame func(*Frame) bool) []Fact {
	var out []Fact
	collect := func(cells map[string]cellEntry) {
		for _, e := range cells {
			switch e.val.Kind {
			case KPtr:
				if !e.val.P.isNil() {
					f := Fact{Src: e.addr, Dst: e.val.P}
					if p := e.val.P; p.HeapID >= 0 {
						if _, live := ip.heap[p.HeapID]; !live {
							f.DstFreed = true
						}
					}
					out = append(out, f)
				}
			case KFunc:
				if e.val.Fn != nil {
					out = append(out, Fact{Src: e.addr, DstFn: e.val.Fn})
				}
			case KStr:
				out = append(out, Fact{Src: e.addr, DstStr: true})
			}
		}
	}
	collect(ip.globals)
	for _, h := range ip.heap {
		collect(h)
	}
	for _, fr := range ip.stack {
		if fr.Alive && (includeFrame == nil || includeFrame(fr)) {
			collect(fr.cells)
		}
	}
	return out
}

// Frames exposes the live activation stack (innermost last).
func (ip *Interp) Frames() []*Frame { return ip.stack }

// Steps reports how many statements have executed.
func (ip *Interp) Steps() int { return ip.steps }
