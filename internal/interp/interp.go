// Package interp is a concrete interpreter for SIMPLE programs. It serves
// two purposes in the reproduction: it demonstrates that the benchmark
// programs are real, runnable workloads, and it acts as a soundness oracle
// for the points-to analysis — every pointer relationship observed during
// execution must be covered by the computed points-to sets (Definition 3.3).
package interp

import (
	"fmt"
	"strings"

	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
	"repro/internal/simple"
)

// CSel is one concrete selector: a field or an integer index.
type CSel struct {
	Field string
	Idx   int
	IsIdx bool
}

func (s CSel) String() string {
	if s.IsIdx {
		return fmt.Sprintf("[%d]", s.Idx)
	}
	return "." + s.Field
}

func pathKey(path []CSel) string {
	var sb strings.Builder
	for _, s := range path {
		sb.WriteString(s.String())
	}
	return sb.String()
}

// Pointer is a concrete address: a variable (in a specific frame) or a heap
// object, plus a selector path. The path's last index may be one past the
// end of an array (valid to form and compare, invalid to dereference).
type Pointer struct {
	Obj    *ast.Object // nil for heap objects
	Frame  *Frame      // nil for globals and heap
	HeapID int         // -1 for stack/global
	Path   []CSel
	Nil    bool
}

func (p Pointer) isNil() bool { return p.Nil }

func (p Pointer) String() string {
	if p.Nil {
		return "NULL"
	}
	if p.HeapID >= 0 {
		return fmt.Sprintf("heap#%d%s", p.HeapID, pathKey(p.Path))
	}
	return "&" + p.Obj.Name + pathKey(p.Path)
}

// Kind discriminates Value.
type Kind int

// Value kinds.
const (
	KInt Kind = iota
	KFloat
	KPtr
	KFunc
	KStr // string literal value (a pointer into immutable storage)
)

// Value is a concrete runtime value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	P    Pointer
	Fn   *ast.Object
	S    string // KStr: literal contents
	Off  int    // KStr: offset within the literal

	// Taint is the shadow taint bit of the dynamic-taint oracle: set on
	// values produced by taint sources (getenv, read, argv, ...) and carried
	// through copies, arithmetic, loads and stores.
	Taint bool
}

func intVal(i int64) Value     { return Value{Kind: KInt, I: i} }
func floatVal(f float64) Value { return Value{Kind: KFloat, F: f} }
func nilPtr() Value            { return Value{Kind: KPtr, P: Pointer{Nil: true, HeapID: -1}} }

// truthy reports whether the value is nonzero.
func (v Value) truthy() bool {
	switch v.Kind {
	case KInt:
		return v.I != 0
	case KFloat:
		return v.F != 0
	case KPtr:
		return !v.P.isNil()
	case KFunc:
		return v.Fn != nil
	case KStr:
		return true
	}
	return false
}

func (v Value) asFloat() float64 {
	if v.Kind == KFloat {
		return v.F
	}
	return float64(v.I)
}

func (v Value) asInt() int64 {
	if v.Kind == KFloat {
		return int64(v.F)
	}
	return v.I
}

// cellEntry is one memory cell: its current value plus its own address
// (kept for fact enumeration by the soundness oracle).
type cellEntry struct {
	val  Value
	addr Pointer
}

// Frame is one function activation.
type Frame struct {
	Fn    *simple.Function
	Depth int
	Alive bool
	cells map[string]cellEntry
}

// Interp executes one program.
type Interp struct {
	Prog *simple.Program

	globals map[string]cellEntry
	heap    map[int]map[string]cellEntry
	heapN   int
	stack   []*Frame

	Out       strings.Builder
	steps     int
	MaxSteps  int
	randState int64

	// Trace, when non-nil, is invoked before every basic statement with
	// the current frame depth (1 = main). Returning an error aborts.
	Trace func(b *simple.Basic, depth int) error

	// OnCall/OnReturn, when non-nil, bracket every call to a defined
	// function (externals excluded). OnCall receives the call statement
	// and the callee; the oracle uses the pair to walk the invocation
	// graph alongside the concrete stack.
	OnCall   func(b *simple.Basic, callee *simple.Function) error
	OnReturn func()

	// Args, when non-empty, synthesizes main's argc/argv: each string
	// becomes a NUL-terminated heap buffer whose characters carry the taint
	// bit (command-line input is attacker-controlled). With Args empty,
	// main's parameters are left unbound as before.
	Args []string

	// OnTaintSink, when non-nil, is invoked whenever tainted data reaches a
	// modeled sink during execution: a system/exec* argument, a strcpy/
	// strcat/sprintf source, a printf/sprintf format string, or an array
	// subscript. kind matches the static taint checker's diagnostic kinds.
	OnTaintSink func(kind string)
}

// New prepares an interpreter for prog.
func New(prog *simple.Program) *Interp {
	return &Interp{
		Prog:      prog,
		globals:   make(map[string]cellEntry),
		heap:      make(map[int]map[string]cellEntry),
		MaxSteps:  5_000_000,
		randState: 1,
	}
}

// Run executes global initializers and main, returning main's exit value.
func (ip *Interp) Run() (int64, error) {
	mainFn := ip.Prog.Main()
	if mainFn == nil {
		return 0, fmt.Errorf("interp: no main")
	}
	root := &Frame{Fn: mainFn, Depth: 0, Alive: true, cells: make(map[string]cellEntry)}
	ip.stack = append(ip.stack, root)
	if ip.Prog.GlobalInit != nil {
		if _, _, err := ip.execSeq(ip.Prog.GlobalInit); err != nil {
			return 0, err
		}
	}
	ip.stack = ip.stack[:0]
	v, err := ip.call(mainFn, ip.mainArgs(mainFn))
	if err != nil {
		return 0, err
	}
	return v.asInt(), nil
}

// mainArgs builds concrete argc/argv values from ip.Args: a heap vector of
// pointers to heap strings whose characters are tainted.
func (ip *Interp) mainArgs(mainFn *simple.Function) []Value {
	if len(ip.Args) == 0 || len(mainFn.Params) == 0 {
		return nil
	}
	args := []Value{intVal(int64(len(ip.Args)))}
	if len(mainFn.Params) < 2 {
		return args
	}
	vec := ip.heapN
	ip.heapN++
	ip.heap[vec] = make(map[string]cellEntry)
	for i, s := range ip.Args {
		str := ip.heapN
		ip.heapN++
		ip.heap[str] = make(map[string]cellEntry)
		for j := 0; j < len(s); j++ {
			v := intVal(int64(s[j]))
			v.Taint = true
			ip.store(Pointer{HeapID: str, Path: []CSel{{Idx: j, IsIdx: true}}}, v)
		}
		ip.store(Pointer{HeapID: str, Path: []CSel{{Idx: len(s), IsIdx: true}}}, intVal(0))
		ip.store(Pointer{HeapID: vec, Path: []CSel{{Idx: i, IsIdx: true}}},
			Value{Kind: KPtr, P: Pointer{HeapID: str, Path: []CSel{{Idx: 0, IsIdx: true}}}})
	}
	args = append(args, Value{Kind: KPtr, P: Pointer{HeapID: vec, Path: []CSel{{Idx: 0, IsIdx: true}}}})
	return args
}

type ctrl int

const (
	ctrlNormal ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type runtimeError struct{ msg string }

func (e *runtimeError) Error() string { return e.msg }

func (ip *Interp) errf(pos token.Pos, format string, args ...any) error {
	return &runtimeError{fmt.Sprintf("%s: %s", pos, fmt.Sprintf(format, args...))}
}

func (ip *Interp) frame() *Frame { return ip.stack[len(ip.stack)-1] }

// ---------------------------------------------------------------------------
// Cell access

// canonical collapses union-member selectors to the shared "$union" cell:
// union members overlap in storage, so reads and writes through any member
// must hit the same cell (matching the analysis's collapsed location).
func (ip *Interp) canonical(p Pointer) Pointer {
	if p.Nil || p.HeapID >= 0 || p.Obj == nil {
		return p
	}
	t := p.Obj.Type
	for i, s := range p.Path {
		if t == nil {
			return p
		}
		if s.IsIdx {
			d := t.Decay()
			if d.Kind != types.Pointer {
				return p
			}
			t = d.Elem
			continue
		}
		if t.Kind == types.Union {
			np := p
			np.Path = append(append([]CSel{}, p.Path[:i]...), CSel{Field: "$union"})
			return np
		}
		f := t.FieldByName(s.Field)
		if f == nil {
			return p
		}
		t = f.Type
	}
	return p
}

// cellStore returns the map and key addressing a pointer's cell.
func (ip *Interp) cellStore(p Pointer) (map[string]cellEntry, string, error) {
	switch {
	case p.Nil:
		return nil, "", &runtimeError{"nil pointer dereference"}
	case p.HeapID >= 0:
		h, ok := ip.heap[p.HeapID]
		if !ok {
			return nil, "", &runtimeError{"use of freed heap object"}
		}
		return h, pathKey(p.Path), nil
	case p.Frame != nil:
		if !p.Frame.Alive {
			return nil, "", &runtimeError{"dangling pointer into returned frame of " + p.Frame.Fn.Name()}
		}
		return p.Frame.cells, p.Obj.Name + pathKey(p.Path), nil
	default:
		return ip.globals, p.Obj.Name + pathKey(p.Path), nil
	}
}

// load reads a cell, synthesizing a typed zero for uninitialized memory.
func (ip *Interp) load(p Pointer) (Value, error) {
	p = ip.canonical(p)
	store, key, err := ip.cellStore(p)
	if err != nil {
		return Value{}, err
	}
	if e, ok := store[key]; ok {
		return e.val, nil
	}
	// Zero value by static type when known.
	t := ip.typeOfCell(p)
	if t != nil {
		switch {
		case t.IsFloat():
			return floatVal(0), nil
		case t.Decay().Kind == types.Pointer:
			return nilPtr(), nil
		}
	}
	return intVal(0), nil
}

func (ip *Interp) store(p Pointer, v Value) error {
	p = ip.canonical(p)
	store, key, err := ip.cellStore(p)
	if err != nil {
		return err
	}
	store[key] = cellEntry{val: v, addr: p}
	return nil
}

// typeOfCell computes the static type at a concrete cell, when derivable.
func (ip *Interp) typeOfCell(p Pointer) *types.Type {
	if p.HeapID >= 0 || p.Obj == nil {
		return nil
	}
	t := p.Obj.Type
	for _, s := range p.Path {
		if t == nil {
			return nil
		}
		if s.IsIdx {
			d := t.Decay()
			if d.Kind != types.Pointer {
				return nil
			}
			t = d.Elem
		} else {
			f := t.FieldByName(s.Field)
			if f == nil {
				return nil
			}
			t = f.Type
		}
	}
	return t
}

// varPointer builds the address of a variable in the current scope.
func (ip *Interp) varPointer(obj *ast.Object) Pointer {
	if obj.Global {
		return Pointer{Obj: obj, HeapID: -1}
	}
	return Pointer{Obj: obj, Frame: ip.frame(), HeapID: -1}
}

// extendPtr applies one concrete selector to an address.
func extendPtr(p Pointer, s CSel) Pointer {
	np := p
	np.Path = append(append([]CSel{}, p.Path...), s)
	return np
}

// ---------------------------------------------------------------------------
// Reference evaluation

// evalSels converts SIMPLE selectors to concrete ones by evaluating index
// operands. A nil-index selector (whole-array plumbing) is rejected here;
// callers that can expand it do so beforehand.
func (ip *Interp) evalSels(sels []simple.Sel, pos token.Pos) ([]CSel, error) {
	out := make([]CSel, 0, len(sels))
	for _, s := range sels {
		switch s.Kind {
		case simple.SelField:
			out = append(out, CSel{Field: s.Name})
		case simple.SelIndex:
			if s.Opnd == nil {
				if s.Index == simple.IdxZero {
					out = append(out, CSel{Idx: 0, IsIdx: true})
					continue
				}
				return nil, ip.errf(pos, "interp: whole-array selector in scalar context")
			}
			v, err := ip.evalOperand(s.Opnd, pos)
			if err != nil {
				return nil, err
			}
			if v.Taint && ip.OnTaintSink != nil {
				ip.OnTaintSink("tainted-index")
			}
			out = append(out, CSel{Idx: int(v.asInt()), IsIdx: true})
		}
	}
	return out, nil
}

// addrOfRef computes the address an lvalue reference denotes. The result
// is canonical (union members collapse), so stored pointer values compare
// correctly across overlapping members.
func (ip *Interp) addrOfRef(r *simple.Ref) (Pointer, error) {
	p, err := ip.addrOfRefRaw(r)
	if err != nil {
		return p, err
	}
	return ip.canonical(p), nil
}

func (ip *Interp) addrOfRefRaw(r *simple.Ref) (Pointer, error) {
	base := ip.varPointer(r.Var)
	sels, err := ip.evalSels(r.Path, r.Pos)
	if err != nil {
		return Pointer{}, err
	}
	for _, s := range sels {
		base = extendPtr(base, s)
	}
	if !r.Deref {
		return base, nil
	}
	pv, err := ip.load(base)
	if err != nil {
		return Pointer{}, err
	}
	if pv.Kind == KStr {
		return Pointer{}, ip.errf(r.Pos, "cannot write through a string literal")
	}
	if pv.Kind != KPtr || pv.P.isNil() {
		return Pointer{}, ip.errf(r.Pos, "dereference of non-pointer or NULL (%s)", r)
	}
	cur := pv.P
	dsels, err := ip.evalSels(r.DPath, r.Pos)
	if err != nil {
		return Pointer{}, err
	}
	for _, s := range dsels {
		if s.IsIdx {
			// Indexing a pointee of array type descends into the array;
			// otherwise it is pointer re-positioning within the array the
			// pointee lives in.
			if t := ip.typeOfCell(cur); t != nil && t.Kind == types.Array {
				cur = extendPtr(cur, s)
				continue
			}
			var aerr error
			cur, aerr = ptrAdd(cur, int64(s.Idx))
			if aerr != nil {
				return Pointer{}, ip.errf(r.Pos, "%v", aerr)
			}
		} else {
			cur = extendPtr(cur, s)
		}
	}
	return cur, nil
}

// ptrAdd implements pointer arithmetic: advance the last index of the path
// (or index a scalar target at offset 0).
func ptrAdd(p Pointer, k int64) (Pointer, error) {
	if p.isNil() {
		return p, &runtimeError{"arithmetic on NULL pointer"}
	}
	if n := len(p.Path); n > 0 && p.Path[n-1].IsIdx {
		np := p
		np.Path = append(append([]CSel{}, p.Path[:n-1]...),
			CSel{Idx: p.Path[n-1].Idx + int(k), IsIdx: true})
		return np, nil
	}
	if k == 0 {
		return p, nil
	}
	// &x + k for scalar x: form the address but remember the offset as an
	// index so that comparisons work; dereferencing out of range reads the
	// zero value (the benchmarks only use such pointers for comparisons).
	np := p
	np.Path = append(append([]CSel{}, p.Path...), CSel{Idx: int(k), IsIdx: true})
	return np, nil
}

// evalRef reads an rvalue reference.
func (ip *Interp) evalRef(r *simple.Ref) (Value, error) {
	// Reading through a char* that holds a string literal: s[i] or *s.
	if r.Deref {
		base := ip.varPointer(r.Var)
		sels, err := ip.evalSels(r.Path, r.Pos)
		if err != nil {
			return Value{}, err
		}
		for _, s := range sels {
			base = extendPtr(base, s)
		}
		pv, err := ip.load(base)
		if err != nil {
			return Value{}, err
		}
		if pv.Kind == KStr {
			off := pv.Off
			for _, s := range r.DPath {
				if s.Kind == simple.SelIndex {
					cs, err := ip.evalSels([]simple.Sel{s}, r.Pos)
					if err != nil {
						return Value{}, err
					}
					off += cs[0].Idx
				}
			}
			if off < 0 || off > len(pv.S) {
				return Value{}, ip.errf(r.Pos, "string literal read out of range")
			}
			if off == len(pv.S) {
				return intVal(0), nil
			}
			cv := intVal(int64(pv.S[off]))
			cv.Taint = pv.Taint
			return cv, nil
		}
	}
	addr, err := ip.addrOfRef(r)
	if err != nil {
		return Value{}, err
	}
	return ip.load(addr)
}

// evalOperand evaluates a simple operand.
func (ip *Interp) evalOperand(op simple.Operand, pos token.Pos) (Value, error) {
	switch op := op.(type) {
	case *simple.ConstInt:
		return intVal(op.Val), nil
	case *simple.ConstFloat:
		return floatVal(op.Val), nil
	case *simple.ConstString:
		return Value{Kind: KStr, S: op.Val}, nil
	case *simple.ConstNull:
		return nilPtr(), nil
	case *simple.Ref:
		if op.Var.Kind == ast.FuncObj && !op.Deref && len(op.Path) == 0 {
			return Value{Kind: KFunc, Fn: op.Var}, nil
		}
		return ip.evalRef(op)
	}
	return Value{}, ip.errf(pos, "interp: unknown operand %T", op)
}
