package interp

import (
	"strings"
	"testing"

	"repro/internal/cc/parser"
	"repro/internal/simple"
	"repro/internal/simplify"
)

func run(t *testing.T, src string) (*Interp, int64) {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	ip := New(prog)
	code, err := ip.Run()
	if err != nil {
		if c, ok := ExitCode(err); ok {
			return ip, c
		}
		t.Fatalf("Run: %v\noutput so far: %s", err, ip.Out.String())
	}
	return ip, code
}

func expectOutput(t *testing.T, src, want string) {
	t.Helper()
	ip, _ := run(t, src)
	if got := ip.Out.String(); got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func expectExit(t *testing.T, src string, want int64) {
	t.Helper()
	_, code := run(t, src)
	if code != want {
		t.Errorf("exit code = %d, want %d", code, want)
	}
}

func TestArithmeticAndLoops(t *testing.T) {
	expectExit(t, `
int main() {
	int i, s;
	s = 0;
	for (i = 1; i <= 10; i++)
		s += i;
	return s;
}
`, 55)
}

func TestPointers(t *testing.T) {
	expectExit(t, `
int main() {
	int x, y;
	int *p;
	int **pp;
	x = 1;
	y = 2;
	p = &x;
	pp = &p;
	**pp = 42;
	*pp = &y;
	*p = 7;
	return x + y;   /* 42 + 7 */
}
`, 49)
}

func TestArraysAndPointerArith(t *testing.T) {
	expectExit(t, `
int main() {
	int a[5];
	int *p, *end;
	int s;
	s = 0;
	for (p = a; p < a + 5; p++)
		*p = 3;
	end = a + 5;
	for (p = a; p != end; p = p + 1)
		s += *p;
	return s;
}
`, 15)
}

func TestStructsAndHeap(t *testing.T) {
	expectExit(t, `
struct node { int v; struct node *next; };
int main() {
	struct node *head, *n;
	int i, s;
	head = 0;
	for (i = 1; i <= 4; i++) {
		n = (struct node *) malloc(sizeof(struct node));
		n->v = i;
		n->next = head;
		head = n;
	}
	s = 0;
	while (head) {
		s += head->v;
		head = head->next;
	}
	return s;
}
`, 10)
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	expectExit(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }
`, 55)
}

func TestFunctionPointers(t *testing.T) {
	expectExit(t, `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int (*ops[2])(int, int) = { add, mul };
int main() {
	int (*fp)(int, int);
	int r;
	fp = ops[0];
	r = fp(3, 4);      /* 7 */
	fp = ops[1];
	r = r + fp(3, 4);  /* +12 */
	return r;
}
`, 19)
}

func TestPrintf(t *testing.T) {
	expectOutput(t, `
int main() {
	printf("n=%d f=%g c=%c s=%s%%\n", 42, 1.5, 'x', "str");
	return 0;
}
`, "n=42 f=1.5 c=x s=str%\n")
}

func TestStrings(t *testing.T) {
	expectExit(t, `
int main() {
	char buf[16];
	strcpy(buf, "hello");
	if (strcmp(buf, "hello") != 0) return 1;
	if (strlen(buf) != 5) return 2;
	if (buf[1] != 'e') return 3;
	return 0;
}
`, 0)
}

func TestSwitchFallthroughExec(t *testing.T) {
	expectExit(t, `
int classify(int v) {
	int r;
	r = 0;
	switch (v) {
	case 0:
		r += 1;
		/* fallthrough */
	case 1:
		r += 10;
		break;
	default:
		r = 100;
	}
	return r;
}
int main() { return classify(0) + classify(1) + classify(7); }
`, 11+10+100)
}

func TestStructCopy(t *testing.T) {
	expectExit(t, `
struct pair { int a; int b; int arr[3]; };
int main() {
	struct pair u, v;
	u.a = 1;
	u.b = 2;
	u.arr[0] = 10;
	u.arr[1] = 20;
	u.arr[2] = 30;
	v = u;
	u.arr[2] = 0;
	return v.a + v.b + v.arr[0] + v.arr[1] + v.arr[2];
}
`, 63)
}

func TestGlobalsAndInit(t *testing.T) {
	expectExit(t, `
int g = 7;
int arr[3] = { 1, 2, 3 };
int *p = &g;
int main() { return *p + arr[0] + arr[1] + arr[2]; }
`, 13)
}

func TestShortCircuitExec(t *testing.T) {
	expectExit(t, `
int calls;
int bump(void) { calls++; return 1; }
int main() {
	int a;
	a = 0;
	if (a && bump()) { a = 5; }
	if (a || bump()) { a = 6; }
	return calls * 10 + a;
}
`, 16)
}

func TestNullDerefFails(t *testing.T) {
	tu, err := parser.Parse("t.c", `
int main() {
	int *p;
	p = 0;
	return *p;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	ip := New(prog)
	if _, err := ip.Run(); err == nil {
		t.Fatal("NULL dereference should fail")
	} else if !strings.Contains(err.Error(), "NULL") &&
		!strings.Contains(err.Error(), "nil pointer") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDanglingPointerDetected(t *testing.T) {
	tu, err := parser.Parse("t.c", `
int *escape(void) {
	int local;
	local = 5;
	return &local;
}
int main() {
	int *p;
	p = escape();
	return *p;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	ip := New(prog)
	if _, err := ip.Run(); err == nil {
		t.Fatal("dangling frame pointer dereference should fail")
	} else if !strings.Contains(err.Error(), "dangling") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPointerFactsEnumeration(t *testing.T) {
	tu, err := parser.Parse("t.c", `
int x;
int *gp;
int main() {
	gp = &x;
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	ip := New(prog)
	if _, err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	facts := ip.PointerFacts(nil)
	found := false
	for _, f := range facts {
		if f.Src.Obj != nil && f.Src.Obj.Name == "gp" &&
			f.Dst.Obj != nil && f.Dst.Obj.Name == "x" {
			found = true
		}
	}
	if !found {
		t.Errorf("fact gp -> x not enumerated: %v", facts)
	}
}

func TestExit(t *testing.T) {
	tu, err := parser.Parse("t.c", `
int main() {
	exit(3);
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	ip := New(prog)
	_, rerr := ip.Run()
	if code, ok := ExitCode(rerr); !ok || code != 3 {
		t.Fatalf("expected exit(3), got %v", rerr)
	}
}

func TestDoWhileAndGotoLowering(t *testing.T) {
	expectExit(t, `
int main() {
	int i;
	i = 0;
loop:
	i++;
	if (i < 5) goto loop;
	return i;
}
`, 5)
}

func TestGotoOutOfLoopSemantics(t *testing.T) {
	// The structurer lifts the goto out of the loop with a flag; the
	// program must still compute the same result: exit at i == 5, skip
	// the i = -1 fallthrough.
	expectExit(t, `
int main() {
	int i;
	for (i = 0; i < 10; i++) {
		if (i == 5) goto out;
	}
	i = -1;
out:
	return i;
}
`, 5)
}

func TestGotoOutOfNestedLoopsSemantics(t *testing.T) {
	expectExit(t, `
int main() {
	int i, j, found;
	found = 0;
	for (i = 0; i < 10; i++) {
		for (j = 0; j < 10; j++) {
			if (i * 10 + j == 23) {
				found = i * 100 + j;
				goto done;
			}
		}
	}
	found = -1;
done:
	return found;
}
`, 203)
}

func TestGotoNotTakenFallsThrough(t *testing.T) {
	// When the loop completes without the goto firing, the fallthrough
	// statements must run.
	expectExit(t, `
int main() {
	int i;
	for (i = 0; i < 3; i++) {
		if (i == 99) goto out;
	}
	i = 42;
out:
	return i;
}
`, 42)
}

func TestGotoOutOfIfInsideLoop(t *testing.T) {
	expectExit(t, `
int main() {
	int i, r;
	r = 0;
	for (i = 0; i < 10; i++) {
		if (i > 2) {
			r = r + 100;
			if (i == 4) goto stop;
			r = r + 1;
		}
	}
stop:
	return r;
}
`, 100+1+100) // i==3 adds 101, i==4 adds 100 then exits
}

var _ = simple.Fprint // keep simple linked for debugging helpers

func TestGotoOutOfSwitchSemantics(t *testing.T) {
	expectExit(t, `
int main() {
	int v, r;
	v = 2;
	r = 0;
	switch (v) {
	case 1:
		r = 1;
		break;
	case 2:
		goto done;
	default:
		r = 9;
	}
	r = 100;
done:
	return r;
}
`, 0)
}

func TestGotoOutOfLoopInsideSwitchSemantics(t *testing.T) {
	expectExit(t, `
int main() {
	int v, i, r;
	v = 1;
	r = 0;
	switch (v) {
	case 1:
		for (i = 0; i < 10; i++) {
			if (i == 3) goto out;
			r++;
		}
		break;
	}
	r = -1;
out:
	return r;
}
`, 3)
}

func TestUnionInterpSemantics(t *testing.T) {
	expectExit(t, `
union u { int a; int b; };
int main() {
	union u v;
	v.a = 41;
	v.b = v.b + 1;   /* overlapping member sees 41 */
	return v.a;      /* and writes back through the same cell */
}
`, 42)
}
