// Package modref computes interprocedural MOD/REF side-effect sets on top
// of the points-to analysis — the read/write-set client that §6.1 of the
// paper describes for ALPHA IR construction, in the tradition of
// Landi/Ryder/Zhang's "interprocedural modification side effect analysis
// with pointer aliasing" (the paper's reference [31]).
//
// For every invocation-graph node the analysis computes the set of abstract
// locations the invocation may write (MOD) and read (REF), in the callee's
// own naming; at each call site the callee's sets translate back through
// the invocation's map information, so the caller sees effects on its own
// variables, on globals, and on locations reachable through arguments —
// while purely local effects of the callee disappear.
package modref

import (
	"sort"

	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/simple"
)

// locSet is a set of abstract locations.
type locSet map[*loc.Location]bool

func (s locSet) add(l *loc.Location) bool {
	if l == nil || s[l] {
		return false
	}
	s[l] = true
	return true
}

func (s locSet) addAll(o locSet) bool {
	changed := false
	for l := range o {
		if s.add(l) {
			changed = true
		}
	}
	return changed
}

func (s locSet) sorted() []*loc.Location {
	out := make([]*loc.Location, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	return loc.SortLocs(out)
}

// Result holds per-node MOD/REF sets (in the node's own naming).
type Result struct {
	res *pta.Result
	mod map[*invgraph.Node]locSet
	ref map[*invgraph.Node]locSet
}

// Compute runs the bottom-up MOD/REF propagation over the invocation graph
// until the sets stabilize (recursion makes the graph cyclic through the
// approximate/recursive back-edges).
func Compute(res *pta.Result) *Result {
	r := &Result{
		res: res,
		mod: make(map[*invgraph.Node]locSet),
		ref: make(map[*invgraph.Node]locSet),
	}
	// Collect nodes in post-order so callees are computed before callers
	// on the first pass; iterate to a fixed point for recursion.
	var nodes []*invgraph.Node
	res.Graph.Walk(func(n *invgraph.Node) { nodes = append(nodes, n) })
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	for _, n := range nodes {
		r.mod[n] = make(locSet)
		r.ref[n] = make(locSet)
	}
	const maxRounds = 100
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, n := range nodes {
			if r.update(n) {
				changed = true
			}
		}
		if !changed {
			return r
		}
	}
	return r
}

// update recomputes one node's sets; returns whether they grew.
func (r *Result) update(n *invgraph.Node) bool {
	if n.Kind == invgraph.Approximate {
		// The approximate node's effect is its recursive partner's.
		changed := r.mod[n].addAll(r.mod[n.RecPartner])
		if r.ref[n].addAll(r.ref[n.RecPartner]) {
			changed = true
		}
		return changed
	}
	mod, ref := r.mod[n], r.ref[n]
	changed := false
	simple.WalkStmts(n.Fn.Body, func(s simple.Stmt) {
		b, ok := s.(*simple.Basic)
		if !ok {
			return
		}
		in, haveAnn := r.res.Annots.At(b)
		switch b.Kind {
		case simple.AsgnCall, simple.AsgnCallInd:
			// Union the translated effects of every child for this site.
			for _, c := range n.Children {
				if c.Site != b {
					continue
				}
				mi, ok := c.MapInfo.(*pta.MapInfo)
				if !ok {
					continue
				}
				for l := range r.mod[c] {
					for _, cl := range mi.Translate(r.res, l) {
						if mod.add(cl) {
							changed = true
						}
					}
				}
				for l := range r.ref[c] {
					for _, cl := range mi.Translate(r.res, l) {
						if ref.add(cl) {
							changed = true
						}
					}
				}
			}
			// The call's own LHS is written.
			if b.LHS != nil && haveAnn {
				for _, ld := range pta.EvalLLocs(r.res, b.LHS, in) {
					if mod.add(ld.Loc) {
						changed = true
					}
				}
			}
		case simple.StmtNop:
		default:
			if !haveAnn {
				return
			}
			if b.LHS != nil {
				for _, ld := range pta.EvalLLocs(r.res, b.LHS, in) {
					if mod.add(ld.Loc) {
						changed = true
					}
				}
			}
			for _, rf := range b.Refs() {
				if rf == b.LHS {
					continue
				}
				for _, ld := range pta.EvalLLocs(r.res, rf, in) {
					if ref.add(ld.Loc) {
						changed = true
					}
				}
			}
		}
	})
	return changed
}

// ModOfCall returns the caller-visible locations the call at site (from
// within parent's context) may modify, merged over the site's resolved
// targets. The second result is false when the site has no analyzed callee
// (external function) — callers should then assume no stack effects beyond
// the LHS, matching the analysis's external model.
func (r *Result) ModOfCall(parent *invgraph.Node, site *simple.Basic) ([]*loc.Location, bool) {
	out := make(locSet)
	found := false
	for _, c := range parent.Children {
		if c.Site != site {
			continue
		}
		mi, ok := c.MapInfo.(*pta.MapInfo)
		if !ok {
			continue
		}
		found = true
		for l := range r.mod[c] {
			for _, cl := range mi.Translate(r.res, l) {
				out.add(cl)
			}
		}
	}
	return out.sorted(), found
}

// ModOf returns the node's MOD set in its own naming.
func (r *Result) ModOf(n *invgraph.Node) []*loc.Location { return r.mod[n].sorted() }

// RefOf returns the node's REF set in its own naming.
func (r *Result) RefOf(n *invgraph.Node) []*loc.Location { return r.ref[n].sorted() }

// CallerVisibleMod translates a node's MOD set into its caller's naming.
func (r *Result) CallerVisibleMod(n *invgraph.Node) []*loc.Location {
	mi, ok := n.MapInfo.(*pta.MapInfo)
	if !ok {
		return nil
	}
	out := make(locSet)
	for l := range r.mod[n] {
		for _, cl := range mi.Translate(r.res, l) {
			out.add(cl)
		}
	}
	return out.sorted()
}

// Summary renders per-function MOD counts deterministically (first node per
// function).
func (r *Result) Summary() []string {
	seen := make(map[string]bool)
	var lines []string
	r.res.Graph.Walk(func(n *invgraph.Node) {
		name := n.Fn.Name()
		if seen[name] {
			return
		}
		seen[name] = true
		lines = append(lines, name)
	})
	sort.Strings(lines)
	return lines
}
