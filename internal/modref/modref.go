// Package modref computes interprocedural MOD/REF side-effect sets on top
// of the points-to analysis — the read/write-set client that §6.1 of the
// paper describes for ALPHA IR construction, in the tradition of
// Landi/Ryder/Zhang's "interprocedural modification side effect analysis
// with pointer aliasing" (the paper's reference [31]).
//
// For every invocation-graph node the analysis computes the set of abstract
// locations the invocation may write (MOD) and read (REF), in the callee's
// own naming; at each call site the callee's sets translate back through
// the invocation's map information, so the caller sees effects on its own
// variables, on globals, and on locations reachable through arguments —
// while purely local effects of the callee disappear.
package modref

import (
	"fmt"
	"sort"

	"repro/internal/cc/token"
	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// locSet is a set of abstract locations.
type locSet map[*loc.Location]bool

func (s locSet) add(l *loc.Location) bool {
	if l == nil || s[l] {
		return false
	}
	s[l] = true
	return true
}

func (s locSet) addAll(o locSet) bool {
	changed := false
	for l := range o {
		if s.add(l) {
			changed = true
		}
	}
	return changed
}

func (s locSet) sorted() []*loc.Location {
	out := make([]*loc.Location, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	return loc.SortLocs(out)
}

// Access is one recorded read or write of an abstract location at a
// statement, in the accessing node's own naming: the statement position
// makes MOD/REF reports clickable, and the D/P certainty of the L-location
// derivation feeds the race detector's severity split.
type Access struct {
	Loc   *loc.Location
	Def   ptset.Def // certainty that the statement touches exactly Loc
	Write bool
	Pos   token.Pos
	Stmt  *simple.Basic
}

func (a Access) String() string {
	op := "ref"
	if a.Write {
		op = "mod"
	}
	return fmt.Sprintf("%s %s (%s) @ %s", op, a.Loc.Name(), a.Def, a.Pos)
}

// Result holds per-node MOD/REF sets and access records (in the node's own
// naming).
type Result struct {
	res *pta.Result
	mod map[*invgraph.Node]locSet
	ref map[*invgraph.Node]locSet
	acc map[*invgraph.Node][]Access
}

// Compute runs the bottom-up MOD/REF propagation over the invocation graph
// until the sets stabilize (recursion makes the graph cyclic through the
// approximate/recursive back-edges).
func Compute(res *pta.Result) *Result {
	r := &Result{
		res: res,
		mod: make(map[*invgraph.Node]locSet),
		ref: make(map[*invgraph.Node]locSet),
		acc: make(map[*invgraph.Node][]Access),
	}
	// Collect nodes in post-order so callees are computed before callers
	// on the first pass; iterate to a fixed point for recursion.
	var nodes []*invgraph.Node
	res.Graph.Walk(func(n *invgraph.Node) { nodes = append(nodes, n) })
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	for _, n := range nodes {
		r.mod[n] = make(locSet)
		r.ref[n] = make(locSet)
	}
	const maxRounds = 100
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, n := range nodes {
			if r.update(n) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range nodes {
		r.recordAccesses(n)
	}
	return r
}

// nodeInput returns the points-to set flowing into b as seen by node n: the
// per-context annotation when contexts were recorded (so each invocation's
// effects are judged under its own input), the global merge otherwise.
func (r *Result) nodeInput(n *invgraph.Node, b *simple.Basic) (ptset.Set, bool) {
	if ctxs := r.res.Annots.ContextsAt(b); ctxs != nil {
		in, ok := ctxs[n]
		return in, ok
	}
	return r.res.Annots.At(b)
}

// recordAccesses collects the positioned access records of one node's body:
// writes through the L-locations of assignment targets, reads through every
// other reference — including the base pointer of each dereference, which is
// itself loaded. Pure address computations (&x) touch nothing. Callee
// effects are NOT included: accesses are per-node, and interprocedural
// clients walk the invocation graph themselves.
func (r *Result) recordAccesses(n *invgraph.Node) {
	if n.Kind == invgraph.Approximate {
		return // the body is analyzed under the recursive partner
	}
	var accs []Access
	add := func(l *loc.Location, d ptset.Def, write bool, pos token.Pos, b *simple.Basic) {
		if l == nil || l.Kind == loc.Null || l.Kind == loc.Func || l.Kind == loc.Str {
			return
		}
		if !pos.IsValid() {
			pos = b.Pos
		}
		accs = append(accs, Access{Loc: l, Def: d, Write: write, Pos: pos, Stmt: b})
	}
	simple.WalkStmts(n.Fn.Body, func(s simple.Stmt) {
		b, ok := s.(*simple.Basic)
		if !ok || b.Kind == simple.StmtNop {
			return
		}
		in, haveAnn := r.nodeInput(n, b)
		if !haveAnn {
			return
		}
		for _, rf := range b.Refs() {
			if rf.Deref {
				// Loading through a pointer first reads the pointer cell.
				base := &simple.Ref{Var: rf.Var, Path: rf.Path, Pos: rf.Pos}
				for _, bl := range pta.EvalBaseLocs(r.res, base) {
					add(bl.Loc, bl.Def, false, rf.Pos, b)
				}
			}
			if rf == b.LHS {
				for _, ld := range pta.EvalLLocs(r.res, rf, in) {
					add(ld.Loc, ld.Def, true, rf.Pos, b)
				}
				continue
			}
			if rf == b.Addr && !rf.Deref {
				continue // &x computes an address, accessing nothing
			}
			for _, ld := range pta.EvalLLocs(r.res, rf, in) {
				add(ld.Loc, ld.Def, false, rf.Pos, b)
			}
		}
	})
	r.acc[n] = accs
}

// Accesses returns the node's recorded accesses in lexical order (the order
// the body walk visits them), in the node's own naming.
func (r *Result) Accesses(n *invgraph.Node) []Access { return r.acc[n] }

// update recomputes one node's sets; returns whether they grew.
func (r *Result) update(n *invgraph.Node) bool {
	if n.Kind == invgraph.Approximate {
		// The approximate node's effect is its recursive partner's.
		changed := r.mod[n].addAll(r.mod[n.RecPartner])
		if r.ref[n].addAll(r.ref[n.RecPartner]) {
			changed = true
		}
		return changed
	}
	mod, ref := r.mod[n], r.ref[n]
	changed := false
	simple.WalkStmts(n.Fn.Body, func(s simple.Stmt) {
		b, ok := s.(*simple.Basic)
		if !ok {
			return
		}
		in, haveAnn := r.res.Annots.At(b)
		switch b.Kind {
		case simple.AsgnCall, simple.AsgnCallInd:
			// Union the translated effects of every child for this site.
			// Thread children are pseudo-roots running concurrently, not
			// callees: their effects are not the spawner's.
			for _, c := range n.Children {
				if c.Site != b || c.IsThread {
					continue
				}
				mi, ok := c.MapInfo.(*pta.MapInfo)
				if !ok {
					continue
				}
				for l := range r.mod[c] {
					for _, cl := range mi.Translate(r.res, l) {
						if mod.add(cl) {
							changed = true
						}
					}
				}
				for l := range r.ref[c] {
					for _, cl := range mi.Translate(r.res, l) {
						if ref.add(cl) {
							changed = true
						}
					}
				}
			}
			// The call's own LHS is written.
			if b.LHS != nil && haveAnn {
				for _, ld := range pta.EvalLLocs(r.res, b.LHS, in) {
					if mod.add(ld.Loc) {
						changed = true
					}
				}
			}
		case simple.StmtNop:
		default:
			if !haveAnn {
				return
			}
			if b.LHS != nil {
				for _, ld := range pta.EvalLLocs(r.res, b.LHS, in) {
					if mod.add(ld.Loc) {
						changed = true
					}
				}
			}
			for _, rf := range b.Refs() {
				if rf == b.LHS {
					continue
				}
				for _, ld := range pta.EvalLLocs(r.res, rf, in) {
					if ref.add(ld.Loc) {
						changed = true
					}
				}
			}
		}
	})
	return changed
}

// ModOfCall returns the caller-visible locations the call at site (from
// within parent's context) may modify, merged over the site's resolved
// targets. The second result is false when the site has no analyzed callee
// (external function) — callers should then assume no stack effects beyond
// the LHS, matching the analysis's external model.
func (r *Result) ModOfCall(parent *invgraph.Node, site *simple.Basic) ([]*loc.Location, bool) {
	out := make(locSet)
	found := false
	for _, c := range parent.Children {
		if c.Site != site || c.IsThread {
			continue
		}
		mi, ok := c.MapInfo.(*pta.MapInfo)
		if !ok {
			continue
		}
		found = true
		for l := range r.mod[c] {
			for _, cl := range mi.Translate(r.res, l) {
				out.add(cl)
			}
		}
	}
	return out.sorted(), found
}

// ModOf returns the node's MOD set in its own naming.
func (r *Result) ModOf(n *invgraph.Node) []*loc.Location { return r.mod[n].sorted() }

// RefOf returns the node's REF set in its own naming.
func (r *Result) RefOf(n *invgraph.Node) []*loc.Location { return r.ref[n].sorted() }

// CallerVisibleMod translates a node's MOD set into its caller's naming.
func (r *Result) CallerVisibleMod(n *invgraph.Node) []*loc.Location {
	mi, ok := n.MapInfo.(*pta.MapInfo)
	if !ok {
		return nil
	}
	out := make(locSet)
	for l := range r.mod[n] {
		for _, cl := range mi.Translate(r.res, l) {
			out.add(cl)
		}
	}
	return out.sorted()
}

// Summary renders per-function MOD counts deterministically (first node per
// function).
func (r *Result) Summary() []string {
	seen := make(map[string]bool)
	var lines []string
	r.res.Graph.Walk(func(n *invgraph.Node) {
		name := n.Fn.Name()
		if seen[name] {
			return
		}
		seen[name] = true
		lines = append(lines, name)
	})
	sort.Strings(lines)
	return lines
}
