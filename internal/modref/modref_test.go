package modref

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/simple"
	"repro/internal/simplify"
)

func analyze(t *testing.T, src string) *pta.Result {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	res, err := pta.Analyze(prog, pta.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// callSiteIn finds the call statement to callee within caller's body.
func callSiteIn(res *pta.Result, caller, callee string) (*invgraph.Node, *simple.Basic) {
	var node *invgraph.Node
	var site *simple.Basic
	res.Graph.Walk(func(n *invgraph.Node) {
		if n.Fn.Name() != caller || node != nil {
			return
		}
		for _, c := range n.Children {
			if c.Fn.Name() == callee {
				node = n
				site = c.Site
			}
		}
	})
	return node, site
}

func names(ls []*loc.Location) map[string]bool {
	out := make(map[string]bool, len(ls))
	for _, l := range ls {
		out[l.Name()] = true
	}
	return out
}

func TestModGlobalWrite(t *testing.T) {
	res := analyze(t, `
int g, h;
void touch(void) { g = 1; }
int main() {
	touch();
	return h;
}
`)
	mr := Compute(res)
	node, site := callSiteIn(res, "main", "touch")
	if node == nil {
		t.Fatal("call site not found")
	}
	mod, ok := mr.ModOfCall(node, site)
	if !ok {
		t.Fatal("MOD not computed")
	}
	got := names(mod)
	if !got["g"] {
		t.Errorf("MOD should contain g: %v", got)
	}
	if got["h"] {
		t.Errorf("MOD must not contain the untouched h: %v", got)
	}
}

func TestModThroughPointerArgument(t *testing.T) {
	res := analyze(t, `
void set(int *p) { *p = 5; }
int main() {
	int x, y;
	set(&x);
	return x + y;
}
`)
	mr := Compute(res)
	node, site := callSiteIn(res, "main", "set")
	mod, ok := mr.ModOfCall(node, site)
	if !ok {
		t.Fatal("MOD not computed")
	}
	got := names(mod)
	if !got["x"] {
		t.Errorf("MOD should contain x (written through the argument): %v", got)
	}
	if got["y"] {
		t.Errorf("MOD must not contain y: %v", got)
	}
}

func TestCalleeLocalsInvisible(t *testing.T) {
	res := analyze(t, `
void busy(void) {
	int local;
	int *lp;
	local = 1;
	lp = &local;
	*lp = 2;
}
int main() {
	busy();
	return 0;
}
`)
	mr := Compute(res)
	node, site := callSiteIn(res, "main", "busy")
	mod, ok := mr.ModOfCall(node, site)
	if !ok {
		t.Fatal("MOD not computed")
	}
	if len(mod) != 0 {
		t.Errorf("purely local effects must not be caller-visible: %v", names(mod))
	}
}

func TestModTransitive(t *testing.T) {
	res := analyze(t, `
int g;
void inner(void) { g = 2; }
void outer(void) { inner(); }
int main() {
	outer();
	return 0;
}
`)
	mr := Compute(res)
	node, site := callSiteIn(res, "main", "outer")
	mod, ok := mr.ModOfCall(node, site)
	if !ok {
		t.Fatal("MOD not computed")
	}
	if !names(mod)["g"] {
		t.Errorf("transitive MOD should reach g: %v", names(mod))
	}
}

func TestModRecursive(t *testing.T) {
	res := analyze(t, `
int g;
void rec(int n) {
	if (n > 0) {
		g = n;
		rec(n - 1);
	}
}
int main() {
	rec(3);
	return 0;
}
`)
	mr := Compute(res)
	node, site := callSiteIn(res, "main", "rec")
	mod, ok := mr.ModOfCall(node, site)
	if !ok {
		t.Fatal("MOD not computed")
	}
	if !names(mod)["g"] {
		t.Errorf("recursive MOD should include g: %v", names(mod))
	}
}

func TestRefSets(t *testing.T) {
	res := analyze(t, `
int src, dst;
void copyit(void) { dst = src; }
int main() {
	copyit();
	return 0;
}
`)
	mr := Compute(res)
	var node *invgraph.Node
	res.Graph.Walk(func(n *invgraph.Node) {
		if n.Fn.Name() == "copyit" {
			node = n
		}
	})
	if node == nil {
		t.Fatal("copyit node missing")
	}
	if !names(mr.RefOf(node))["src"] {
		t.Errorf("REF should contain src: %v", names(mr.RefOf(node)))
	}
	if !names(mr.ModOf(node))["dst"] {
		t.Errorf("MOD should contain dst: %v", names(mr.ModOf(node)))
	}
}

func TestModOnBenchmarks(t *testing.T) {
	for _, name := range []string{"hash", "mway", "stanford"} {
		prog, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pta.Analyze(prog, pta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mr := Compute(res)
		// Every node must have a computed (possibly empty) MOD set.
		n := 0
		res.Graph.Walk(func(node *invgraph.Node) {
			n++
			_ = mr.ModOf(node)
		})
		if n == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
}
