package obsv

import (
	"encoding/json"
	"fmt"
	"io"
)

// Process groups one trace's events under a process id and name for the
// Chrome exporter, so several analyses (e.g. a benchmark suite) can share
// one trace file as separate processes.
type Process struct {
	Pid    int
	Name   string
	Events []*Event
}

// chromeEvent is one trace_event object of the Chrome/Perfetto JSON format.
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace_event format, which both
// chrome://tracing and Perfetto accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders a completed tracer's events as Chrome
// trace_event JSON.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	return WriteChromeTraceProcs(w, Process{Pid: 1, Name: "pta", Events: t.Events()})
}

// WriteChromeTraceProcs renders one or more event groups as Chrome
// trace_event JSON, one process per group.
func WriteChromeTraceProcs(w io.Writer, procs ...Process) error {
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, p := range procs {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: p.Pid,
			Args: map[string]string{"name": p.Name},
		})
		tracks := map[Track]bool{}
		for _, e := range p.Events {
			if !tracks[e.Track] {
				tracks[e.Track] = true
				name := "main"
				if e.Track != 0 {
					name = fmt.Sprintf("worker-%d", e.Track)
				}
				trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: p.Pid, Tid: int(e.Track),
					Args: map[string]string{"name": name},
				})
			}
			ce := chromeEvent{
				Name: e.Name,
				Cat:  e.Cat.String(),
				Ts:   float64(e.Start) / 1e3,
				Pid:  p.Pid,
				Tid:  int(e.Track),
			}
			if e.Detail != "" {
				ce.Args = map[string]string{"detail": e.Detail}
			}
			if e.Instant {
				ce.Ph, ce.S = "i", "t"
			} else {
				ce.Ph = "X"
				ce.Dur = float64(e.Dur) / 1e3
			}
			trace.TraceEvents = append(trace.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
