package obsv

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// FlightRecorder is the always-on crash/stall diagnosis layer: a bounded
// last-N-spans recorder plus a periodic sampler of metrics deltas. It is
// cheap enough to leave enabled on every run — the span store is a small
// drop-oldest ring (the same lock-free ring the tracer uses), and the
// sampler wakes a few times per second to read atomic counters — so when a
// 400k-statement analysis panics, exceeds its step budget, or stalls, Dump
// produces a diagnosable artifact (recent spans, recent progress rates,
// final counters) instead of a bare error.
//
// Lifecycle: create once with NewFlightRecorder, then Bind it to each
// analysis run. Bind returns the tracer the run should emit spans into —
// the caller's own full tracer when one exists, otherwise the recorder's
// internal bounded tracer — and starts the sampler. Unbind stops the
// sampler; Dump may be called at any time, including mid-run.
type FlightRecorder struct {
	spanCap  int
	interval time.Duration

	mu      sync.Mutex
	tr      *Tracer // tracer Dump reads spans from (internal or external)
	m       *Metrics
	samples []FlightSample // ring, oldest dropped
	total   int            // samples ever taken
	bound   time.Time
	stop    chan struct{}
	done    chan struct{}
}

// FlightSample is one periodic reading of the run's progress counters,
// taken relative to the moment the recorder was bound.
type FlightSample struct {
	At            time.Duration `json:"at"`
	Steps         int64         `json:"steps"`
	NodeEvals     int64         `json:"node_evals"`
	MemoHits      int64         `json:"memo_hits"`
	FixpointIters int64         `json:"fixpoint_iters"`
	SchedTasks    int64         `json:"sched_tasks"`
	PeakSet       int64         `json:"peak_set"`
}

// Flight recorder defaults: how many spans and samples survive, and how
// often progress is sampled.
const (
	DefaultFlightSpans    = 256
	DefaultFlightSamples  = 120
	DefaultFlightInterval = 250 * time.Millisecond
)

// flightSampleCap bounds the sample ring.
const flightSampleCap = DefaultFlightSamples

// NewFlightRecorder returns a recorder keeping the last spanCap spans
// (0 means DefaultFlightSpans) and sampling metrics every interval
// (0 means DefaultFlightInterval).
func NewFlightRecorder(spanCap int, interval time.Duration) *FlightRecorder {
	if spanCap <= 0 {
		spanCap = DefaultFlightSpans
	}
	if interval <= 0 {
		interval = DefaultFlightInterval
	}
	return &FlightRecorder{spanCap: spanCap, interval: interval}
}

// Bind attaches the recorder to one analysis run: m is the run's live
// metrics registry, tr its tracer (nil when the run is untraced). The
// returned tracer is what the run must emit spans into — tr itself when
// non-nil, otherwise an internal single-shard tracer bounded at the
// recorder's span capacity. Bind starts the background sampler; callers
// must Unbind when the run finishes (or unwinds).
func (f *FlightRecorder) Bind(m *Metrics, tr *Tracer) *Tracer {
	if tr == nil {
		// One shard so the ring holds the last N spans globally, not per
		// worker track.
		tr = NewTracer(1, f.spanCap)
	}
	f.mu.Lock()
	f.tr = tr
	f.m = m
	f.samples = f.samples[:0]
	f.total = 0
	f.bound = time.Now()
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	stop, done := f.stop, f.done
	f.mu.Unlock()
	go f.sampleLoop(stop, done)
	return tr
}

// Unbind stops the sampler started by Bind. The recorded spans and samples
// remain readable (Dump still works) until the next Bind. Safe to call more
// than once.
func (f *FlightRecorder) Unbind() {
	f.mu.Lock()
	stop, done := f.stop, f.done
	f.stop = nil
	f.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (f *FlightRecorder) sampleLoop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			f.sample()
		}
	}
}

// sample appends one progress reading, dropping the oldest past capacity.
func (f *FlightRecorder) sample() {
	f.mu.Lock()
	m := f.m
	at := time.Since(f.bound)
	f.mu.Unlock()
	if m == nil {
		return
	}
	s := FlightSample{
		At:            at,
		Steps:         m.Steps.Load(),
		NodeEvals:     m.NodeEvals.Load(),
		MemoHits:      m.MemoHits.Load(),
		FixpointIters: m.FixpointIters.Load(),
		SchedTasks:    m.SchedTasks.Load(),
		PeakSet:       m.PeakSet.Load(),
	}
	f.mu.Lock()
	if len(f.samples) >= flightSampleCap {
		copy(f.samples, f.samples[1:])
		f.samples = f.samples[:len(f.samples)-1]
	}
	f.samples = append(f.samples, s)
	f.total++
	f.mu.Unlock()
}

// Samples returns a copy of the surviving progress samples, oldest first.
func (f *FlightRecorder) Samples() []FlightSample {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FlightSample(nil), f.samples...)
}

// Dump writes the flight record: the cause line, the current counter state,
// the recent progress samples with per-interval deltas, and the most recent
// spans. Safe to call while the analysis is still running (the metrics
// registry is atomic and ring reads never block writers) and with a nil
// receiver (no-op).
func (f *FlightRecorder) Dump(w io.Writer, cause string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	tr, m := f.tr, f.m
	bound := f.bound
	samples := append([]FlightSample(nil), f.samples...)
	total := f.total
	f.mu.Unlock()

	fmt.Fprintf(w, "=== flight record: %s ===\n", cause)
	if m == nil {
		_, err := fmt.Fprintln(w, "(recorder was never bound to a run)")
		return err
	}
	fmt.Fprintf(w, "elapsed: %s\n", time.Since(bound).Round(time.Millisecond))
	fmt.Fprintf(w, "counters: steps=%d node_evals=%d memo=%d/%d fixpoint_iters=%d pending_restarts=%d sched=%d/%d/%d peak_set=%d\n",
		m.Steps.Load(), m.NodeEvals.Load(), m.MemoHits.Load(), m.MemoMisses.Load(),
		m.FixpointIters.Load(), m.PendingRestarts.Load(),
		m.SchedTasks.Load(), m.SchedSteals.Load(), m.SchedParks.Load(), m.PeakSet.Load())

	if len(samples) > 0 {
		fmt.Fprintf(w, "progress samples (every %s, %d taken, last %d kept):\n",
			f.interval, total, len(samples))
		fmt.Fprintf(w, "  %10s %12s %10s %10s %10s %9s\n",
			"t", "steps", "d-steps", "evals", "d-evals", "peak")
		prev := FlightSample{}
		for i, s := range samples {
			dSteps, dEvals := s.Steps, s.NodeEvals
			if i > 0 {
				dSteps -= prev.Steps
				dEvals -= prev.NodeEvals
			}
			fmt.Fprintf(w, "  %10s %12d %+10d %10d %+10d %9d\n",
				s.At.Round(time.Millisecond), s.Steps, dSteps, s.NodeEvals, dEvals, s.PeakSet)
			prev = s
		}
	}

	if tr != nil {
		evs := tr.Events()
		kept := evs
		if len(kept) > f.spanCap {
			kept = kept[len(kept)-f.spanCap:]
		}
		fmt.Fprintf(w, "last %d spans (%d recorded, %d dropped by ring overflow):\n",
			len(kept), tr.Emitted(), tr.Dropped())
		for _, e := range kept {
			kind := "span"
			if e.Instant {
				kind = "inst"
			}
			fmt.Fprintf(w, "  t=%-12s w%-3d %-4s %-8s %-24s dur=%-10s %s\n",
				time.Duration(e.Start).Round(time.Microsecond), e.Track, kind,
				e.Cat, e.Name, time.Duration(e.Dur).Round(time.Microsecond), e.Detail)
		}
	}
	_, err := fmt.Fprintf(w, "=== end flight record ===\n")
	return err
}
