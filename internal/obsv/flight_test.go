package obsv

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderBindReturnsTracer(t *testing.T) {
	f := NewFlightRecorder(8, time.Hour) // sampler effectively off
	defer f.Unbind()

	// Without an external tracer Bind supplies a bounded internal one.
	tr := f.Bind(NewMetrics(), nil)
	if tr == nil {
		t.Fatal("Bind returned nil tracer")
	}
	f.Unbind()

	// With an external tracer Bind passes it through unchanged.
	ext := NewTracer(2, 64)
	if got := f.Bind(NewMetrics(), ext); got != ext {
		t.Error("Bind must return the external tracer when one is supplied")
	}
}

func TestFlightRecorderSamples(t *testing.T) {
	f := NewFlightRecorder(8, time.Millisecond)
	m := NewMetrics()
	f.Bind(m, nil)
	defer f.Unbind()

	m.Steps.Add(100)
	deadline := time.Now().Add(2 * time.Second)
	for len(f.Samples()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sampler took no samples within 2s")
		}
		time.Sleep(time.Millisecond)
	}
	s := f.Samples()[len(f.Samples())-1]
	if s.Steps < 100 {
		t.Errorf("sample steps = %d, want >= 100", s.Steps)
	}
}

func TestFlightRecorderSampleRingBounded(t *testing.T) {
	f := NewFlightRecorder(8, time.Hour)
	f.Bind(NewMetrics(), nil)
	defer f.Unbind()
	// Drive sample() directly well past capacity.
	for i := 0; i < 3*flightSampleCap; i++ {
		f.sample()
	}
	if got := len(f.Samples()); got != flightSampleCap {
		t.Errorf("sample ring holds %d, want cap %d", got, flightSampleCap)
	}
}

func TestFlightRecorderDump(t *testing.T) {
	f := NewFlightRecorder(4, time.Hour)
	m := NewMetrics()
	tr := f.Bind(m, nil)
	defer f.Unbind()

	m.Steps.Add(42)
	m.NodeEvals.Add(7)
	// Overfill the span ring so Dump shows only the most recent spans.
	tk := tr.NewTrack()
	for i := 0; i < 10; i++ {
		tr.Begin(tk, CatNode, "eval", "fn").End()
	}
	f.sample()

	var b bytes.Buffer
	if err := f.Dump(&b, "unit test"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"=== flight record: unit test ===",
		"steps=42",
		"node_evals=7",
		"progress samples",
		"last ",
		"eval",
		"=== end flight record ===",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	if err := f.Dump(&bytes.Buffer{}, "nil"); err != nil {
		t.Errorf("nil-receiver Dump should no-op, got %v", err)
	}
}

func TestFlightRecorderUnbindIdempotent(t *testing.T) {
	f := NewFlightRecorder(8, time.Millisecond)
	f.Bind(NewMetrics(), nil)
	f.Unbind()
	f.Unbind() // must not panic or deadlock

	// Dump still works after unbinding (crash triage can outlive the run).
	var b bytes.Buffer
	if err := f.Dump(&b, "post-unbind"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "post-unbind") {
		t.Error("post-unbind dump missing cause")
	}
}

func TestFlightRecorderNeverBound(t *testing.T) {
	f := NewFlightRecorder(8, time.Hour)
	var b bytes.Buffer
	if err := f.Dump(&b, "cold"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "never bound") {
		t.Errorf("cold dump should say the recorder was never bound:\n%s", b.String())
	}
}
