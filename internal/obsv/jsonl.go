package obsv

import (
	"encoding/json"
	"io"
)

// jsonlEvent is the line format of the JSONL exporter: a flat,
// self-describing record per event with nanosecond times.
type jsonlEvent struct {
	TS      int64  `json:"ts_ns"`
	Dur     int64  `json:"dur_ns,omitempty"`
	Track   int32  `json:"track"`
	Cat     string `json:"cat"`
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	Instant bool   `json:"instant,omitempty"`
}

// WriteJSONL renders a completed tracer's events as a JSON-lines stream,
// one event object per line in start-time order.
func WriteJSONL(w io.Writer, t *Tracer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		le := jsonlEvent{
			TS: e.Start, Dur: e.Dur, Track: int32(e.Track),
			Cat: e.Cat.String(), Name: e.Name, Detail: e.Detail, Instant: e.Instant,
		}
		if err := enc.Encode(le); err != nil {
			return err
		}
	}
	return nil
}
