package obsv

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// This file is the structured-logging layer of the observability spine. It
// standardizes how every binary in the repo — the one-shot CLIs and the
// pta-server daemon — emits progress, warnings and access logs: log/slog
// with either a human-oriented text handler or a line-per-record JSON
// handler, leveled, and cheap to scope per request with Logger.With
// (request_id, view, ...). Nothing in this package logs on its own; the
// layer only builds loggers for callers to thread through.

// LogOptions configures NewLogger.
type LogOptions struct {
	// JSON selects the JSON handler (one object per line, machine-parseable
	// access logs); false means the human-readable text handler.
	JSON bool
	// Level is the minimum level emitted: "debug", "info", "warn" or
	// "error" (case-insensitive; "" means "info").
	Level string
	// AddSource annotates records with the file:line of the logging call.
	AddSource bool
}

// ParseLogLevel maps a level name to its slog level. The empty string is
// LevelInfo, so an unset -log-level flag needs no special casing.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obsv: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a leveled slog.Logger writing to w. Concurrent use is
// safe: both slog handlers serialize their writes.
func NewLogger(w io.Writer, opts LogOptions) (*slog.Logger, error) {
	level, err := ParseLogLevel(opts.Level)
	if err != nil {
		return nil, err
	}
	hopts := &slog.HandlerOptions{Level: level, AddSource: opts.AddSource}
	var h slog.Handler
	if opts.JSON {
		h = slog.NewJSONHandler(w, hopts)
	} else {
		h = slog.NewTextHandler(w, hopts)
	}
	return slog.New(h), nil
}

// SyncWriter serializes writes to an underlying writer. The slog handlers
// already lock around each record; SyncWriter is for sharing one sink
// between a logger and direct writers (e.g. a flight-record dump interleaved
// with access-log lines) without interleaving partial lines.
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w; a nil w yields a writer that discards.
func NewSyncWriter(w io.Writer) *SyncWriter {
	return &SyncWriter{w: w}
}

func (s *SyncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return len(p), nil
	}
	return s.w.Write(p)
}
