package obsv

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestParseLogLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
	}{
		{"", slog.LevelInfo},
		{"info", slog.LevelInfo},
		{"INFO", slog.LevelInfo},
		{"debug", slog.LevelDebug},
		{"warn", slog.LevelWarn},
		{"warning", slog.LevelWarn},
		{"error", slog.LevelError},
	}
	for _, c := range cases {
		got, err := ParseLogLevel(c.in)
		if err != nil {
			t.Fatalf("ParseLogLevel(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseLogLevel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel(loud): want error")
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, LogOptions{JSON: true, Level: "warn"})
	if err != nil {
		t.Fatal(err)
	}
	log.Info("below threshold")
	log.With("request_id", "abc123").Warn("request", "status", 200)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 record (info filtered), got %d: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("record is not JSON: %v\n%s", err, lines[0])
	}
	if rec["msg"] != "request" || rec["request_id"] != "abc123" || rec["status"] != float64(200) {
		t.Errorf("unexpected record: %v", rec)
	}
}

func TestNewLoggerText(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, LogOptions{Level: "debug"})
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("fine-grained", "k", "v")
	if !strings.Contains(buf.String(), "fine-grained") || !strings.Contains(buf.String(), "k=v") {
		t.Errorf("text handler output missing fields: %q", buf.String())
	}
}

func TestNewLoggerBadLevel(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, LogOptions{Level: "nope"}); err == nil {
		t.Fatal("want error for bad level")
	}
}

func TestSyncWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := NewSyncWriter(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := w.Write([]byte("line\n")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("want 800 lines, got %d", len(lines))
	}
	for _, l := range lines {
		if l != "line" {
			t.Fatalf("interleaved write: %q", l)
		}
	}
}

func TestSyncWriterNil(t *testing.T) {
	w := NewSyncWriter(nil)
	if n, err := w.Write([]byte("dropped")); n != 7 || err != nil {
		t.Fatalf("nil sink write = (%d, %v)", n, err)
	}
}
