package obsv

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one and returns the new value.
func (c *Counter) Inc() int64 { return c.v.Add(1) }

// Add adds n and returns the new value.
func (c *Counter) Add(n int64) int64 { return c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// MaxGauge tracks the maximum value ever observed.
type MaxGauge struct{ v atomic.Int64 }

// Observe raises the gauge to n if n exceeds the current maximum.
func (g *MaxGauge) Observe(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the maximum observed so far.
func (g *MaxGauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i
// (bucket 0 counts v <= 0).
const histBuckets = 33

// Histogram is a lock-free power-of-two histogram for small nonnegative
// integer observations (points-to set cardinalities). An observation costs
// two atomic adds and a CAS-max.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     MaxGauge
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
	h.max.Observe(v)
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.buckets[b].Add(1)
}

// Merge folds an already-taken histogram snapshot into this histogram —
// the aggregation path a long-running server uses to roll per-request
// snapshots into process totals. Bucket upper bounds map back onto the
// power-of-two bucket index (2^i - 1 has bit length i), so a merged
// histogram is exactly what observing every original value would have
// produced. Safe for concurrent use.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if s.Count == 0 {
		return
	}
	h.count.Add(s.Count)
	if s.Sum > 0 {
		h.sum.Add(s.Sum)
	}
	h.max.Observe(s.Max)
	for _, bk := range s.Buckets {
		i := 0
		if bk.UpperBound > 0 {
			i = bits.Len64(uint64(bk.UpperBound))
			if i >= histBuckets {
				i = histBuckets - 1
			}
		}
		h.buckets[i].Add(bk.Count)
	}
}

// HistBucket is one populated histogram bucket in a snapshot.
type HistBucket struct {
	// UpperBound is the largest value the bucket can hold (2^i - 1).
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Max     int64        `json:"max"`
	Mean    float64      `json:"mean"`
	P50     int64        `json:"p50"`
	P90     int64        `json:"p90"`
	P99     int64        `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram. Quantiles are upper-bound estimates from
// the power-of-two buckets, clamped to the exact maximum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	upper := func(i int) int64 {
		if i == 0 {
			return 0
		}
		return (int64(1) << i) - 1
	}
	quantile := func(q float64) int64 {
		rank := int64(q * float64(s.Count))
		var cum int64
		for i, c := range counts {
			cum += c
			if cum > rank {
				u := upper(i)
				if u > s.Max {
					u = s.Max
				}
				return u
			}
		}
		return s.Max
	}
	s.P50, s.P90, s.P99 = quantile(0.50), quantile(0.90), quantile(0.99)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistBucket{UpperBound: upper(i), Count: c})
		}
	}
	return s
}

// FuncCost accumulates per-function analysis cost: node evaluations, memo
// hits, fixed-point iterations beyond the first pass, and inclusive wall
// time (a parent's evaluation time includes its callees').
type FuncCost struct {
	Evals         Counter
	MemoHits      Counter
	FixpointIters Counter
	Wall          Counter // nanoseconds
}

// AddWall accumulates evaluation wall time.
func (f *FuncCost) AddWall(d time.Duration) { f.Wall.Add(int64(d)) }

// FuncCostSnapshot is the exported per-function cost record.
type FuncCostSnapshot struct {
	Name          string  `json:"name"`
	Evals         int64   `json:"evals"`
	MemoHits      int64   `json:"memo_hits"`
	FixpointIters int64   `json:"fixpoint_iters"`
	WallMS        float64 `json:"wall_ms"`
}

// Metrics is the typed metrics registry of one analysis run. The hot-path
// instruments are plain struct fields updated atomically; the per-function
// table is behind a mutex (touched only per node evaluation, never per
// statement).
type Metrics struct {
	// Steps counts basic-statement transfer-function evaluations.
	Steps Counter
	// MemoHits / MemoMisses count input-keyed summary-cache lookups on
	// invocation-graph nodes.
	MemoHits, MemoMisses Counter
	// SharedHits counts global summary-cache reuses (Options.ShareContexts).
	SharedHits Counter
	// NodeEvals counts invocation-graph node body evaluations (memo and
	// recursion-approximation hits excluded).
	NodeEvals Counter
	// MapOps / UnmapOps count map_process / unmap_process operations.
	MapOps, UnmapOps Counter
	// FixpointIters counts recursion fixed-point iterations beyond each
	// node evaluation's first pass.
	FixpointIters Counter
	// PendingRestarts counts pending-list generalization restarts of
	// recursive fixed points (input widened, evaluation restarted).
	PendingRestarts Counter
	// SchedTasks counts tasks submitted to the work-stealing scheduler
	// (fan-out branches of indirect calls, if/else splits, thread spawns).
	SchedTasks Counter
	// SchedSteals counts tasks a worker stole from another worker's deque.
	SchedSteals Counter
	// SchedParks counts times a worker or joiner went idle because no task
	// was runnable anywhere (parked on the scheduler's condition variable).
	SchedParks Counter
	// PeakSet is the largest points-to set flowing into any statement.
	// The analysis hot path does not update it directly — Cardinality's
	// internal maximum covers it — but it remains for observations that
	// bypass the histogram; Snapshot reports the larger of the two.
	PeakSet MaxGauge
	// Cardinality is the distribution of points-to set sizes flowing into
	// basic statements.
	Cardinality Histogram

	// Demand-mode accounting (zero in exhaustive runs): DemandFactsKept
	// counts triples recorded at seeded statements, FactsPruned counts
	// triples dropped because their source variable was dead, and
	// LiveVars is the distribution of live tracked-variable counts at
	// statement inputs.
	DemandFactsKept Counter
	FactsPruned     Counter
	LiveVars        Histogram

	mu    sync.Mutex
	funcs map[string]*FuncCost
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{funcs: make(map[string]*FuncCost)}
}

// Func returns the cost accumulator for the named function, creating it on
// first use. Safe for concurrent use.
func (m *Metrics) Func(name string) *FuncCost {
	m.mu.Lock()
	if m.funcs == nil {
		// Tolerate a zero-value registry (callers may supply their own
		// rather than use NewMetrics).
		m.funcs = make(map[string]*FuncCost)
	}
	fc := m.funcs[name]
	if fc == nil {
		fc = &FuncCost{}
		m.funcs[name] = fc
	}
	m.mu.Unlock()
	return fc
}

// Merge folds a finished run's snapshot into this registry. This is how a
// long-running server aggregates per-request registries into monotone
// process totals scraped at /metrics: each request runs against its own
// fresh registry (isolation), and its end-of-run snapshot is added here.
// Counters add, the peak gauge takes the maximum, the cardinality histogram
// merges bucket-exact, and the per-function cost table accumulates by name.
// Snapshot-only fields the registry has no instrument for (interning, shard
// and trace accounting) are not aggregated. Safe for concurrent use.
func (m *Metrics) Merge(s *MetricsSnapshot) {
	if s == nil {
		return
	}
	m.Steps.Add(s.Steps)
	m.MemoHits.Add(s.MemoHits)
	m.MemoMisses.Add(s.MemoMisses)
	m.SharedHits.Add(s.SharedHits)
	m.NodeEvals.Add(s.NodeEvals)
	m.MapOps.Add(s.MapOps)
	m.UnmapOps.Add(s.UnmapOps)
	m.FixpointIters.Add(s.FixpointIters)
	m.PendingRestarts.Add(s.PendingRestarts)
	m.SchedTasks.Add(s.SchedTasks)
	m.SchedSteals.Add(s.SchedSteals)
	m.SchedParks.Add(s.SchedParks)
	m.PeakSet.Observe(s.PeakSet)
	m.Cardinality.Merge(s.Cardinality)
	m.DemandFactsKept.Add(s.DemandFactsKept)
	m.FactsPruned.Add(s.FactsPruned)
	m.LiveVars.Merge(s.LiveVars)
	for _, f := range s.Funcs {
		fc := m.Func(f.Name)
		fc.Evals.Add(f.Evals)
		fc.MemoHits.Add(f.MemoHits)
		fc.FixpointIters.Add(f.FixpointIters)
		fc.Wall.Add(int64(f.WallMS * 1e6))
	}
}

// MetricsSnapshot is the exported, JSON-serializable view of a registry,
// stored as pta.Result.Metrics. Interning and trace fields are filled by
// the analysis from the intern table and tracer, which this package does
// not depend on.
type MetricsSnapshot struct {
	Steps           int64 `json:"steps"`
	MemoHits        int64 `json:"memo_hits"`
	MemoMisses      int64 `json:"memo_misses"`
	SharedHits      int64 `json:"shared_hits,omitempty"`
	NodeEvals       int64 `json:"node_evals"`
	MapOps          int64 `json:"map_ops"`
	UnmapOps        int64 `json:"unmap_ops"`
	FixpointIters   int64 `json:"fixpoint_iters"`
	PendingRestarts int64 `json:"pending_restarts"`
	PeakSet         int64 `json:"peak_set"`

	// MemoHitRate is MemoHits / (MemoHits + MemoMisses), 0 when cold.
	MemoHitRate float64 `json:"memo_hit_rate"`

	// Work-stealing scheduler activity (zero in serial runs).
	SchedTasks  int64 `json:"sched_tasks,omitempty"`
	SchedSteals int64 `json:"sched_steals,omitempty"`
	SchedParks  int64 `json:"sched_parks,omitempty"`

	// Interning reports hash-consing activity (filled by the analysis).
	InternDistinct int     `json:"intern_distinct"`
	InternHits     uint64  `json:"intern_hits"`
	InternMisses   uint64  `json:"intern_misses"`
	InternHitRate  float64 `json:"intern_hit_rate"`

	// Shard contention (filled by the analysis from the intern and location
	// tables): shard counts and lock acquisitions that had to wait.
	InternShards    int    `json:"intern_shards,omitempty"`
	InternContended uint64 `json:"intern_contended,omitempty"`
	LocShards       int    `json:"loc_shards,omitempty"`
	LocContended    uint64 `json:"loc_contended,omitempty"`

	// Cardinality is the points-to set size distribution over statements.
	Cardinality HistogramSnapshot `json:"set_cardinality"`

	// TraceEmitted / TraceDropped report ring-buffer activity when the run
	// was traced (dropped_events is the overflow loss).
	TraceEmitted uint64 `json:"trace_emitted,omitempty"`
	TraceDropped uint64 `json:"trace_dropped,omitempty"`

	// Demand-mode accounting (absent in exhaustive runs): facts recorded
	// at seeded statements, facts pruned as dead, and the distribution
	// of live tracked-variable counts per statement input.
	DemandFactsKept int64             `json:"demand_facts_kept,omitempty"`
	FactsPruned     int64             `json:"facts_pruned,omitempty"`
	LiveVars        HistogramSnapshot `json:"live_vars,omitempty"`

	// Taint counters, filled by the taint client when it runs over this
	// result (internal/taint mutates the snapshot in place).
	TaintSources    int64 `json:"taint_sources,omitempty"`
	TaintSinks      int64 `json:"taint_sinks,omitempty"`
	TaintSanitizers int64 `json:"taint_sanitizers,omitempty"`
	TaintErrors     int64 `json:"taint_errors,omitempty"`
	TaintWarnings   int64 `json:"taint_warnings,omitempty"`

	// Funcs is the per-function cost table, most expensive first.
	Funcs []FuncCostSnapshot `json:"funcs,omitempty"`
}

// Snapshot captures every instrument of the registry. Call it after the
// analysis has quiesced; the snapshot is immutable.
func (m *Metrics) Snapshot() *MetricsSnapshot {
	s := &MetricsSnapshot{
		Steps:           m.Steps.Load(),
		MemoHits:        m.MemoHits.Load(),
		MemoMisses:      m.MemoMisses.Load(),
		SharedHits:      m.SharedHits.Load(),
		NodeEvals:       m.NodeEvals.Load(),
		MapOps:          m.MapOps.Load(),
		UnmapOps:        m.UnmapOps.Load(),
		FixpointIters:   m.FixpointIters.Load(),
		PendingRestarts: m.PendingRestarts.Load(),
		SchedTasks:      m.SchedTasks.Load(),
		SchedSteals:     m.SchedSteals.Load(),
		SchedParks:      m.SchedParks.Load(),
		PeakSet:         m.PeakSet.Load(),
		Cardinality:     m.Cardinality.Snapshot(),
		DemandFactsKept: m.DemandFactsKept.Load(),
		FactsPruned:     m.FactsPruned.Load(),
		LiveVars:        m.LiveVars.Snapshot(),
	}
	if s.Cardinality.Max > s.PeakSet {
		s.PeakSet = s.Cardinality.Max
	}
	if lookups := s.MemoHits + s.MemoMisses; lookups > 0 {
		s.MemoHitRate = float64(s.MemoHits) / float64(lookups)
	}
	m.mu.Lock()
	for name, fc := range m.funcs {
		s.Funcs = append(s.Funcs, FuncCostSnapshot{
			Name:          name,
			Evals:         fc.Evals.Load(),
			MemoHits:      fc.MemoHits.Load(),
			FixpointIters: fc.FixpointIters.Load(),
			WallMS:        float64(fc.Wall.Load()) / 1e6,
		})
	}
	m.mu.Unlock()
	sort.Slice(s.Funcs, func(i, j int) bool {
		a, b := s.Funcs[i], s.Funcs[j]
		if a.WallMS != b.WallMS {
			return a.WallMS > b.WallMS
		}
		return a.Name < b.Name
	})
	return s
}
