package obsv

import (
	"sync"
	"testing"
)

// TestHistogramBucketsAndQuantiles checks the power-of-two bucketing and
// the quantile estimates against a known distribution.
func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 90 ones and 10 hundreds: p50 lands in the [1,1] bucket, p99 in the
	// bucket holding 100 (upper bound 127, clamped to the exact max).
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 90+1000 || s.Max != 100 {
		t.Fatalf("count/sum/max = %d/%d/%d, want 100/1090/100", s.Count, s.Sum, s.Max)
	}
	if s.P50 != 1 {
		t.Errorf("P50 = %d, want 1", s.P50)
	}
	if s.P99 != 100 {
		t.Errorf("P99 = %d, want 100 (bucket upper bound clamped to max)", s.P99)
	}
	if len(s.Buckets) != 2 {
		t.Errorf("got %d populated buckets, want 2: %+v", len(s.Buckets), s.Buckets)
	}
}

// TestHistogramZeroAndEmpty covers the v<=0 bucket and the empty snapshot.
func TestHistogramZeroAndEmpty(t *testing.T) {
	var empty Histogram
	if s := empty.Snapshot(); s.Count != 0 || s.P50 != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	var h Histogram
	h.Observe(0)
	s := h.Snapshot()
	if s.Count != 1 || s.Max != 0 || s.P50 != 0 {
		t.Errorf("zero-only snapshot = %+v", s)
	}
}

// TestMetricsConcurrent updates every instrument from several goroutines
// (the -race guard for the registry) and checks the totals.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Steps.Inc()
				m.MemoHits.Add(2)
				m.PeakSet.Observe(int64(i))
				m.Cardinality.Observe(int64(i % 37))
				if i%100 == 0 {
					m.Func("f").Evals.Inc()
				}
			}
		}(g)
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Steps != goroutines*per {
		t.Errorf("Steps = %d, want %d", s.Steps, goroutines*per)
	}
	if s.MemoHits != 2*goroutines*per {
		t.Errorf("MemoHits = %d, want %d", s.MemoHits, 2*goroutines*per)
	}
	if s.PeakSet != per-1 {
		t.Errorf("PeakSet = %d, want %d", s.PeakSet, per-1)
	}
	if s.Cardinality.Count != goroutines*per {
		t.Errorf("Cardinality.Count = %d, want %d", s.Cardinality.Count, goroutines*per)
	}
	if len(s.Funcs) != 1 || s.Funcs[0].Evals != goroutines*per/100 {
		t.Errorf("Funcs = %+v, want one entry with %d evals", s.Funcs, goroutines*per/100)
	}
}

// TestMemoHitRate checks the derived rate in the snapshot.
func TestMemoHitRate(t *testing.T) {
	m := NewMetrics()
	m.MemoHits.Add(3)
	m.MemoMisses.Add(1)
	if s := m.Snapshot(); s.MemoHitRate != 0.75 {
		t.Errorf("MemoHitRate = %v, want 0.75", s.MemoHitRate)
	}
	if s := NewMetrics().Snapshot(); s.MemoHitRate != 0 {
		t.Errorf("cold MemoHitRate = %v, want 0", s.MemoHitRate)
	}
}

// TestMetricsMerge checks the server-totals aggregation path: merging two
// per-request snapshots into a fresh registry must equal having observed
// everything in one registry.
func TestMetricsMerge(t *testing.T) {
	mkReq := func(steps int64, card []int64, fn string, evals int64) *MetricsSnapshot {
		m := NewMetrics()
		m.Steps.Add(steps)
		m.MemoHits.Add(steps / 2)
		m.MemoMisses.Add(steps / 4)
		m.NodeEvals.Add(evals)
		for _, v := range card {
			m.Cardinality.Observe(v)
		}
		fc := m.Func(fn)
		fc.Evals.Add(evals)
		fc.Wall.Add(evals * 1e6) // 1ms per eval
		return m.Snapshot()
	}
	s1 := mkReq(100, []int64{0, 1, 3, 7, 500}, "f", 4)
	s2 := mkReq(40, []int64{2, 1000}, "g", 2)

	tot := NewMetrics()
	tot.Merge(s1)
	tot.Merge(s2)
	tot.Merge(nil) // no-op
	got := tot.Snapshot()

	if got.Steps != 140 || got.MemoHits != 70 || got.MemoMisses != 35 || got.NodeEvals != 6 {
		t.Errorf("merged counters wrong: %+v", got)
	}
	if got.PeakSet != 1000 {
		t.Errorf("merged peak = %d, want 1000", got.PeakSet)
	}
	if got.Cardinality.Count != 7 || got.Cardinality.Sum != 1513 || got.Cardinality.Max != 1000 {
		t.Errorf("merged cardinality = %+v", got.Cardinality)
	}
	// Bucket-exact merge: the union must equal direct observation.
	direct := &Histogram{}
	for _, v := range []int64{0, 1, 3, 7, 500, 2, 1000} {
		direct.Observe(v)
	}
	want := direct.Snapshot()
	if len(got.Cardinality.Buckets) != len(want.Buckets) {
		t.Fatalf("bucket shapes differ: got %v want %v", got.Cardinality.Buckets, want.Buckets)
	}
	for i := range want.Buckets {
		if got.Cardinality.Buckets[i] != want.Buckets[i] {
			t.Errorf("bucket %d: got %+v want %+v", i, got.Cardinality.Buckets[i], want.Buckets[i])
		}
	}
	// Per-function costs accumulate by name.
	funcs := map[string]FuncCostSnapshot{}
	for _, f := range got.Funcs {
		funcs[f.Name] = f
	}
	if f := funcs["f"]; f.Evals != 4 || f.WallMS != 4 {
		t.Errorf("func f cost = %+v", f)
	}
	if g := funcs["g"]; g.Evals != 2 || g.WallMS != 2 {
		t.Errorf("func g cost = %+v", g)
	}
}
