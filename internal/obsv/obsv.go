// Package obsv is the observability layer of the points-to engine: a
// structured trace recorder, a metrics registry, and exporters for both.
//
// The trace recorder collects hierarchical spans — invocation-graph node
// evaluations, map/unmap operations, basic-statement transfers, fixed-point
// iterations, worker-pool scheduling — into bounded lock-free ring buffers
// (one shard per worker track), so emission never blocks an analysis worker
// and overflow drops the oldest spans rather than growing without bound.
// With tracing disabled (a nil *Tracer) every hook reduces to a nil check.
//
// The metrics registry is a set of typed, atomically-updated instruments
// (counters, a max gauge, power-of-two histograms, per-function cost
// accumulators) that the analysis updates on its hot paths and snapshots
// into pta.Result.Metrics when a run completes.
//
// Exporters render a completed trace as Chrome trace_event JSON (load the
// file in chrome://tracing or https://ui.perfetto.dev) or as a JSONL event
// stream, and a metrics snapshot as JSON. The human-readable per-function
// cost table lives in package report, next to the paper's tables.
//
// The package is zero-dependency (standard library only) and fully
// decoupled from the analysis: it never influences analysis results, which
// the determinism guard in package pta enforces by fingerprint comparison.
package obsv

import "strconv"

// Track identifies one logical execution lane of the analysis: track 0 is
// the goroutine that called Analyze, and every goroutine the worker pool
// spawns gets a fresh track. Spans on one track are properly nested, so
// trace viewers can render each track as a timeline row.
type Track int32

// Cat classifies trace events by the engine operation they measure.
type Cat uint8

// Event categories.
const (
	// CatPhase marks coarse analysis phases (global initialization, the
	// main invocation tree, canonicalization).
	CatPhase Cat = iota
	// CatNode is the evaluation of one invocation-graph node, including
	// memoized lookups (which show up as near-zero-width spans).
	CatNode
	// CatMap is a map_process operation at a call site (caller set to
	// callee input, paper §4.1).
	CatMap
	// CatUnmap is an unmap_process operation (callee output back to the
	// call site).
	CatUnmap
	// CatBasic is one basic-statement transfer function.
	CatBasic
	// CatFixpoint is one iteration of a recursion fixed point, or an
	// instant event for a pending-list generalization restart.
	CatFixpoint
	// CatWorker is worker-pool scheduling: a span per spawned pool task
	// and instant events when the pool is exhausted and a task runs
	// inline on the caller.
	CatWorker
)

var catNames = [...]string{
	CatPhase:    "phase",
	CatNode:     "node",
	CatMap:      "map",
	CatUnmap:    "unmap",
	CatBasic:    "basic",
	CatFixpoint: "fixpoint",
	CatWorker:   "worker",
}

func (c Cat) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "cat" + strconv.Itoa(int(c))
}

// Event is one recorded trace event: a completed span (Dur >= 0 covers
// [Start, Start+Dur]) or an instant marker (Instant true, Dur 0). Times are
// nanoseconds since the tracer was created.
type Event struct {
	Track   Track
	Cat     Cat
	Name    string // operation (function name, statement kind, phase)
	Detail  string // free-form qualifier (position, node kind, iteration)
	Start   int64  // ns since trace start
	Dur     int64  // ns
	Instant bool
}
