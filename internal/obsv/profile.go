package obsv

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler manages the standard Go profiling endpoints for a CLI run: a CPU
// profile written over the run, a heap profile written at the end, and an
// optional debug HTTP server exposing net/http/pprof. The zero value is
// inert; use StartProfiles.
type Profiler struct {
	cpuFile *os.File
	memPath string
}

// StartProfiles starts the requested profiling sinks. Empty strings disable
// the corresponding sink. cpuPath starts a CPU profile immediately; memPath
// is written by Stop; debugAddr starts an HTTP server (in a background
// goroutine, never stopped) serving /debug/pprof.
//
// net/http/pprof registers its handlers on http.DefaultServeMux as a side
// effect of being imported by this package.
func StartProfiles(cpuPath, memPath, debugAddr string) (*Profiler, error) {
	p := &Profiler{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	if debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "debug server %s: %v\n", debugAddr, err)
			}
		}()
	}
	return p, nil
}

// Stop finalizes the profiles: stops the CPU profile and writes the heap
// profile (after a GC, so it reflects live memory). Safe to call on a nil
// Profiler.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return err
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
