package obsv

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// This file renders a metrics snapshot in the Prometheus text exposition
// format (version 0.0.4) and serves it live on /metrics, so a long-running
// analysis — or the pta-server daemon this layer is built for — can be
// scraped mid-run. Snapshotting the registry while the analysis is writing
// it is safe: every instrument is atomic and the per-function table is
// behind a mutex. A concurrent snapshot may be slightly torn between
// instruments (counts drift a few observations apart); the renderer keeps
// each exposed family internally consistent (cumulative histogram buckets
// stay monotone, +Inf equals the bucket total) so the output is always
// valid for a scraper.

// promFuncLimit bounds the per-function series exported on /metrics. The
// cost table can hold thousands of functions on generated programs; a
// scrape exposes only the most expensive ones (the snapshot arrives sorted
// by inclusive wall time) to keep label cardinality bounded.
const promFuncLimit = 20

// promMetric is one scalar family: name, type, help and the value getter.
type promMetric struct {
	name     string
	typ      string // "counter" or "gauge"
	help     string
	value    func(s *MetricsSnapshot) float64
	skipZero bool // omit the family when the value is zero (optional extras)
}

// promMetrics is the scalar family table. Counters follow the Prometheus
// convention of a _total suffix; gauges carry none.
var promMetrics = []promMetric{
	{"pta_steps_total", "counter", "Basic-statement transfer-function evaluations.",
		func(s *MetricsSnapshot) float64 { return float64(s.Steps) }, false},
	{"pta_node_evals_total", "counter", "Invocation-graph node body evaluations (memo hits excluded).",
		func(s *MetricsSnapshot) float64 { return float64(s.NodeEvals) }, false},
	{"pta_memo_hits_total", "counter", "Input-keyed summary-cache hits on invocation-graph nodes.",
		func(s *MetricsSnapshot) float64 { return float64(s.MemoHits) }, false},
	{"pta_memo_misses_total", "counter", "Input-keyed summary-cache misses on invocation-graph nodes.",
		func(s *MetricsSnapshot) float64 { return float64(s.MemoMisses) }, false},
	{"pta_shared_hits_total", "counter", "Global shared-summary cache reuses (ShareContexts).",
		func(s *MetricsSnapshot) float64 { return float64(s.SharedHits) }, true},
	{"pta_map_ops_total", "counter", "map_process operations at call sites.",
		func(s *MetricsSnapshot) float64 { return float64(s.MapOps) }, false},
	{"pta_unmap_ops_total", "counter", "unmap_process operations at call sites.",
		func(s *MetricsSnapshot) float64 { return float64(s.UnmapOps) }, false},
	{"pta_fixpoint_iters_total", "counter", "Recursion fixed-point iterations beyond each first pass.",
		func(s *MetricsSnapshot) float64 { return float64(s.FixpointIters) }, false},
	{"pta_pending_restarts_total", "counter", "Pending-list generalization restarts of recursive fixed points.",
		func(s *MetricsSnapshot) float64 { return float64(s.PendingRestarts) }, false},
	{"pta_sched_tasks_total", "counter", "Tasks submitted to the work-stealing scheduler.",
		func(s *MetricsSnapshot) float64 { return float64(s.SchedTasks) }, false},
	{"pta_sched_steals_total", "counter", "Tasks stolen from another worker's deque.",
		func(s *MetricsSnapshot) float64 { return float64(s.SchedSteals) }, false},
	{"pta_sched_parks_total", "counter", "Times a worker parked with no runnable task anywhere.",
		func(s *MetricsSnapshot) float64 { return float64(s.SchedParks) }, false},
	{"pta_intern_hits_total", "counter", "Hash-consing intern-table hits.",
		func(s *MetricsSnapshot) float64 { return float64(s.InternHits) }, false},
	{"pta_intern_misses_total", "counter", "Hash-consing intern-table misses (distinct sets created).",
		func(s *MetricsSnapshot) float64 { return float64(s.InternMisses) }, false},
	{"pta_intern_contended_total", "counter", "Intern-table shard lock acquisitions that had to wait.",
		func(s *MetricsSnapshot) float64 { return float64(s.InternContended) }, false},
	{"pta_loc_contended_total", "counter", "Location-table shard lock acquisitions that had to wait.",
		func(s *MetricsSnapshot) float64 { return float64(s.LocContended) }, false},
	{"pta_trace_emitted_total", "counter", "Trace events recorded into the ring buffers.",
		func(s *MetricsSnapshot) float64 { return float64(s.TraceEmitted) }, true},
	{"pta_trace_dropped_total", "counter", "Trace events lost to ring-buffer overflow.",
		func(s *MetricsSnapshot) float64 { return float64(s.TraceDropped) }, true},
	{"pta_demand_facts_kept_total", "counter", "Demand mode: points-to triples recorded at seeded statements.",
		func(s *MetricsSnapshot) float64 { return float64(s.DemandFactsKept) }, true},
	{"pta_facts_pruned_total", "counter", "Demand mode: points-to triples dropped for dead source variables.",
		func(s *MetricsSnapshot) float64 { return float64(s.FactsPruned) }, true},

	{"pta_peak_set", "gauge", "Largest points-to set flowing into any statement.",
		func(s *MetricsSnapshot) float64 { return float64(s.PeakSet) }, false},
	{"pta_memo_hit_rate", "gauge", "Memo hits over memo lookups, 0 when cold.",
		func(s *MetricsSnapshot) float64 { return s.MemoHitRate }, false},
	{"pta_intern_hit_rate", "gauge", "Intern-table hits over lookups, 0 when cold.",
		func(s *MetricsSnapshot) float64 { return s.InternHitRate }, false},
	{"pta_intern_distinct", "gauge", "Distinct hash-consed points-to sets in the intern table.",
		func(s *MetricsSnapshot) float64 { return float64(s.InternDistinct) }, false},
	{"pta_intern_shards", "gauge", "Intern-table shard count.",
		func(s *MetricsSnapshot) float64 { return float64(s.InternShards) }, true},
	{"pta_loc_shards", "gauge", "Location-table shard count.",
		func(s *MetricsSnapshot) float64 { return float64(s.LocShards) }, true},
}

// WritePrometheus snapshots a live registry and renders it in Prometheus
// text format. Safe to call while an analysis is still writing the
// registry — this is the /metrics scrape path.
func WritePrometheus(w io.Writer, m *Metrics) error {
	if m == nil {
		return fmt.Errorf("obsv: WritePrometheus on nil registry")
	}
	return WritePrometheusSnapshot(w, m.Snapshot())
}

// WritePrometheusSnapshot renders an already-taken snapshot in Prometheus
// text exposition format 0.0.4.
func WritePrometheusSnapshot(w io.Writer, s *MetricsSnapshot) error {
	if s == nil {
		return fmt.Errorf("obsv: WritePrometheusSnapshot on nil snapshot")
	}
	var b strings.Builder
	for _, pm := range promMetrics {
		v := pm.value(s)
		if pm.skipZero && v == 0 {
			continue
		}
		writeFamilyHeader(&b, pm.name, pm.typ, pm.help)
		fmt.Fprintf(&b, "%s %s\n", pm.name, promFloat(v))
	}

	writeHistogram(&b, "pta_set_cardinality",
		"Points-to set size flowing into basic statements.", s.Cardinality)

	if s.LiveVars.Count > 0 {
		writeHistogram(&b, "pta_live_vars",
			"Demand mode: live tracked pointer variables at statement inputs.", s.LiveVars)
	}

	if len(s.Funcs) > 0 {
		funcs := s.Funcs
		if len(funcs) > promFuncLimit {
			funcs = funcs[:promFuncLimit]
		}
		writeFamilyHeader(&b, "pta_func_wall_seconds", "gauge",
			"Inclusive evaluation wall time per function (top functions only).")
		for _, f := range funcs {
			fmt.Fprintf(&b, "pta_func_wall_seconds{fn=\"%s\"} %s\n",
				escapeLabel(f.Name), promFloat(f.WallMS/1e3))
		}
		writeFamilyHeader(&b, "pta_func_evals_total", "counter",
			"Node evaluations per function (top functions only).")
		for _, f := range funcs {
			fmt.Fprintf(&b, "pta_func_evals_total{fn=\"%s\"} %d\n", escapeLabel(f.Name), f.Evals)
		}
	}

	writeFamilyHeader(&b, "pta_info", "gauge", "Analysis process metadata.")
	fmt.Fprintf(&b, "pta_info{goos=\"%s\",goarch=\"%s\",go_version=\"%s\"} 1\n",
		escapeLabel(runtime.GOOS), escapeLabel(runtime.GOARCH), escapeLabel(runtime.Version()))

	_, err := io.WriteString(w, b.String())
	return err
}

func writeFamilyHeader(b *strings.Builder, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// writeHistogram renders the power-of-two histogram with cumulative
// buckets. The +Inf bucket and _count are the cumulative bucket total (not
// the snapshot's Count field): under a mid-run scrape the two can be torn a
// few observations apart, and deriving both from the buckets keeps the
// family monotone and self-consistent.
func writeHistogram(b *strings.Builder, name, help string, h HistogramSnapshot) {
	writeFamilyHeader(b, name, "histogram", help)
	var cum int64
	for _, bk := range h.Buckets {
		cum += bk.Count
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, bk.UpperBound, cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(b, "%s_count %d\n", name, cum)
}

// promFloat renders a value the way Prometheus parsers expect: integral
// values without an exponent, everything else in shortest form.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format. %q adds the
// surrounding quotes and escapes " and \; it also escapes real newlines to
// \n, which is exactly the format's rule.
func escapeLabel(v string) string {
	s := strconv.Quote(v)
	return s[1 : len(s)-1]
}

// MetricsHandler returns an http.Handler that serves fn's snapshot in
// Prometheus text format on every request. fn is called per scrape, so
// serving a live registry is just MetricsHandler(m.Snapshot).
func MetricsHandler(fn func() *MetricsSnapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := fn()
		if s == nil {
			http.Error(w, "no metrics recorded yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheusSnapshot(w, s); err != nil {
			// Headers are gone; nothing useful left to do for this scrape.
			return
		}
	})
}

// RegisterMetrics mounts a live /metrics endpoint on mux, serving fn's
// snapshot per scrape. Each caller — pta-server, a test, a CLI debug mux —
// owns its mux, so registrations never collide across callers the way the
// old DefaultServeMux-only entry point forced them to.
func RegisterMetrics(mux *http.ServeMux, fn func() *MetricsSnapshot) {
	mux.Handle("/metrics", MetricsHandler(fn))
}

var (
	serveMetricsMu sync.Mutex
	serveMetricsFn func() *MetricsSnapshot
	serveMetricsOn bool
)

// ServeMetrics is the thin process-global wrapper over RegisterMetrics for
// CLIs that serve on http.DefaultServeMux (the mux StartProfiles' debug
// server listens on): the first call registers the endpoint, and every call
// replaces the snapshot source, so a CLI can point the endpoint at each
// analysis run in turn. Daemons should use RegisterMetrics on their own mux
// instead.
func ServeMetrics(fn func() *MetricsSnapshot) {
	serveMetricsMu.Lock()
	defer serveMetricsMu.Unlock()
	serveMetricsFn = fn
	if serveMetricsOn {
		return
	}
	serveMetricsOn = true
	RegisterMetrics(http.DefaultServeMux, func() *MetricsSnapshot {
		serveMetricsMu.Lock()
		f := serveMetricsFn
		serveMetricsMu.Unlock()
		if f == nil {
			return nil
		}
		return f()
	})
}
