package obsv

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRe splits an exposition sample line into name, optional label
	// block, and value.
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm parses exposition text, checking the structural rules as it
// goes: every sample preceded by HELP/TYPE for its family, names and labels
// valid, values parseable.
func parseProm(t *testing.T, text string) []promSample {
	t.Helper()
	var samples []promSample
	typed := map[string]string{} // family -> type
	helped := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Errorf("HELP line without help text: %q", line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("unknown metric type %q in %q", parts[1], line)
			}
			typed[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unknown comment line: %q", line)
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable sample line: %q", line)
			continue
		}
		s := promSample{name: m[1], labels: map[string]string{}}
		if !metricNameRe.MatchString(s.name) {
			t.Errorf("invalid metric name %q", s.name)
		}
		for _, lm := range labelRe.FindAllStringSubmatch(m[2], -1) {
			if !labelNameRe.MatchString(lm[1]) {
				t.Errorf("invalid label name %q in %q", lm[1], line)
			}
			s.labels[lm[1]] = lm[2]
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
		s.value = v
		// Histogram series attach _bucket/_sum/_count to the family name.
		fam := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.name, suf)
			if base != s.name && typed[base] == "histogram" {
				fam = base
			}
		}
		if typed[fam] == "" {
			t.Errorf("sample %q has no preceding TYPE for family %q", line, fam)
		}
		if !helped[fam] {
			t.Errorf("sample %q has no preceding HELP for family %q", line, fam)
		}
		if typed[fam] == "counter" && !strings.HasSuffix(fam, "_total") &&
			!strings.HasSuffix(fam, "_info") {
			t.Errorf("counter family %q does not end in _total", fam)
		}
		samples = append(samples, s)
	}
	return samples
}

// exercisedMetrics returns a registry with every scalar instrument nonzero,
// so skipZero families render too.
func exercisedMetrics() *Metrics {
	m := NewMetrics()
	m.Steps.Add(1234)
	m.MemoHits.Add(30)
	m.MemoMisses.Add(10)
	m.SharedHits.Add(3)
	m.NodeEvals.Add(40)
	m.MapOps.Add(20)
	m.UnmapOps.Add(20)
	m.FixpointIters.Add(5)
	m.PendingRestarts.Add(2)
	m.SchedTasks.Add(17)
	m.SchedSteals.Add(4)
	m.SchedParks.Add(6)
	m.PeakSet.Observe(99)
	for v := int64(0); v < 20; v++ {
		m.Cardinality.Observe(v)
	}
	m.Func("main").Evals.Inc()
	m.Func("main").AddWall(1500000)
	return m
}

func TestPrometheusStructure(t *testing.T) {
	var b bytes.Buffer
	if err := WritePrometheus(&b, exercisedMetrics()); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, b.String())
	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}

	// Every scalar family from the table must be present with the right
	// value.
	want := map[string]float64{
		"pta_steps_total":          1234,
		"pta_memo_hits_total":      30,
		"pta_memo_misses_total":    10,
		"pta_shared_hits_total":    3,
		"pta_node_evals_total":     40,
		"pta_sched_tasks_total":    17,
		"pta_sched_steals_total":   4,
		"pta_sched_parks_total":    6,
		"pta_fixpoint_iters_total": 5,
		"pta_memo_hit_rate":        0.75,
	}
	for name, v := range want {
		got := byName[name]
		if len(got) != 1 {
			t.Fatalf("family %s: got %d samples, want 1", name, len(got))
		}
		if got[0].value != v {
			t.Errorf("%s = %v, want %v", name, got[0].value, v)
		}
	}
	if byName["pta_peak_set"][0].value != 99 {
		t.Errorf("pta_peak_set = %v, want 99 (max of gauge and histogram)", byName["pta_peak_set"][0].value)
	}

	// Per-function series carry the fn label.
	if fs := byName["pta_func_evals_total"]; len(fs) != 1 || fs[0].labels["fn"] != "main" {
		t.Errorf("pta_func_evals_total samples = %+v, want one with fn=main", fs)
	}
	if fs := byName["pta_func_wall_seconds"]; len(fs) != 1 || fs[0].value != 0.0015 {
		t.Errorf("pta_func_wall_seconds = %+v, want 0.0015", fs)
	}

	// pta_info carries build metadata.
	info := byName["pta_info"]
	if len(info) != 1 || info[0].value != 1 || info[0].labels["goos"] == "" {
		t.Errorf("pta_info = %+v, want one sample with value 1 and goos label", info)
	}
}

func TestPrometheusHistogramConsistency(t *testing.T) {
	m := NewMetrics()
	for v := int64(0); v < 100; v++ {
		m.Cardinality.Observe(v)
	}
	var b bytes.Buffer
	if err := WritePrometheus(&b, m); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, b.String())

	var buckets []promSample
	var sum, count float64 = -1, -1
	for _, s := range samples {
		switch s.name {
		case "pta_set_cardinality_bucket":
			buckets = append(buckets, s)
		case "pta_set_cardinality_sum":
			sum = s.value
		case "pta_set_cardinality_count":
			count = s.value
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets rendered")
	}
	// Cumulative buckets must be monotone with le increasing, ending at
	// +Inf.
	prev := -1.0
	prevLE := -1.0
	for i, bk := range buckets {
		le := bk.labels["le"]
		if i == len(buckets)-1 {
			if le != "+Inf" {
				t.Fatalf("last bucket le=%q, want +Inf", le)
			}
		} else {
			u, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", le, err)
			}
			if u <= prevLE {
				t.Errorf("bucket bounds not increasing: %v after %v", u, prevLE)
			}
			prevLE = u
		}
		if bk.value < prev {
			t.Errorf("cumulative bucket counts not monotone: %v after %v", bk.value, prev)
		}
		prev = bk.value
	}
	inf := buckets[len(buckets)-1].value
	if inf != count {
		t.Errorf("+Inf bucket %v != _count %v", inf, count)
	}
	if count != 100 {
		t.Errorf("_count = %v, want 100", count)
	}
	// sum of 0..99 = 4950
	if sum != 4950 {
		t.Errorf("_sum = %v, want 4950", sum)
	}
}

func TestPrometheusFuncSeriesBounded(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 3*promFuncLimit; i++ {
		fc := m.Func(fmt.Sprintf("fn%03d", i))
		fc.Evals.Inc()
		fc.AddWall(1000)
	}
	var b bytes.Buffer
	if err := WritePrometheus(&b, m); err != nil {
		t.Fatal(err)
	}
	n := strings.Count(b.String(), "pta_func_evals_total{")
	if n != promFuncLimit {
		t.Errorf("exported %d per-function series, want cap %d", n, promFuncLimit)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	m := NewMetrics()
	fc := m.Func("weird\"fn\\name\nx")
	fc.Evals.Inc()
	fc.AddWall(1000)
	var b bytes.Buffer
	if err := WritePrometheus(&b, m); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `fn="weird\"fn\\name\nx"`) {
		t.Errorf("label value not escaped per exposition rules:\n%s", out)
	}
	// The whole output must still parse line by line.
	parseProm(t, out)
}

func TestPrometheusNilArgs(t *testing.T) {
	if err := WritePrometheus(io.Discard, nil); err == nil {
		t.Error("WritePrometheus(nil) should error")
	}
	if err := WritePrometheusSnapshot(io.Discard, nil); err == nil {
		t.Error("WritePrometheusSnapshot(nil) should error")
	}
}

func TestMetricsHandler(t *testing.T) {
	m := exercisedMetrics()
	h := MetricsHandler(m.Snapshot)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	if !strings.Contains(rec.Body.String(), "pta_steps_total 1234") {
		t.Errorf("body missing pta_steps_total:\n%s", rec.Body.String())
	}

	// No snapshot source yet: 503, not a crash.
	h = MetricsHandler(func() *MetricsSnapshot { return nil })
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 503 {
		t.Errorf("status %d with nil snapshot, want 503", rec.Code)
	}
}

// TestPrometheusConcurrentScrape renders while writers are hammering the
// registry; under -race this is the mid-run scrape safety test, and the
// output must stay structurally valid on every iteration.
func TestPrometheusConcurrentScrape(t *testing.T) {
	m := NewMetrics()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Steps.Inc()
				m.Cardinality.Observe(i % 64)
				m.Func("hot").Evals.Inc()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b bytes.Buffer
		if err := WritePrometheus(&b, m); err != nil {
			t.Fatal(err)
		}
		parseProm(t, b.String())
	}
	close(stop)
	wg.Wait()
}

// TestRegisterMetricsPerMux proves the mux-injectable registration: two
// muxes each get their own /metrics backed by different registries, and
// neither touches http.DefaultServeMux or the other's output.
func TestRegisterMetricsPerMux(t *testing.T) {
	m1, m2 := NewMetrics(), NewMetrics()
	m1.Steps.Add(11)
	m2.Steps.Add(22)
	mux1, mux2 := http.NewServeMux(), http.NewServeMux()
	RegisterMetrics(mux1, m1.Snapshot)
	RegisterMetrics(mux2, m2.Snapshot)

	scrape := func(mux *http.ServeMux) string {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("status %d, want 200", rec.Code)
		}
		return rec.Body.String()
	}
	if body := scrape(mux1); !strings.Contains(body, "pta_steps_total 11") {
		t.Errorf("mux1 scrape missing its registry:\n%s", body)
	}
	if body := scrape(mux2); !strings.Contains(body, "pta_steps_total 22") {
		t.Errorf("mux2 scrape missing its registry:\n%s", body)
	}
}
