package obsv

import (
	"math/bits"
	"sort"
	"sync/atomic"
)

// Ring is a bounded, lock-free event buffer with overwrite-on-overflow
// semantics: a writer claims a slot by atomically advancing the cursor and
// stores its event with an atomic pointer write, so pushes never block and
// never wait on other writers. Once the cursor passes the capacity, each
// push overwrites (drops) the oldest surviving event; Dropped reports how
// many were lost. Multiple goroutines may push concurrently; Events and
// Dropped are meant for quiescent reads after the writers have finished
// (they are safe to call concurrently, but may observe a mid-push state in
// which a claimed slot is not yet filled).
type Ring struct {
	slots  []atomic.Pointer[Event]
	mask   uint64
	cursor atomic.Uint64
}

// NewRing returns a ring holding at least capacity events (rounded up to a
// power of two, minimum 8).
func NewRing(capacity int) *Ring {
	if capacity < 8 {
		capacity = 8
	}
	capacity = 1 << bits.Len(uint(capacity-1)) // next power of two
	return &Ring{slots: make([]atomic.Pointer[Event], capacity), mask: uint64(capacity - 1)}
}

// Cap returns the ring's capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Push records an event, overwriting the oldest one when the ring is full.
func (r *Ring) Push(e *Event) {
	i := r.cursor.Add(1) - 1
	r.slots[i&r.mask].Store(e)
}

// Pushed returns the total number of events ever pushed.
func (r *Ring) Pushed() uint64 { return r.cursor.Load() }

// Dropped returns the number of events lost to overflow.
func (r *Ring) Dropped() uint64 {
	if c := r.cursor.Load(); c > uint64(len(r.slots)) {
		return c - uint64(len(r.slots))
	}
	return 0
}

// Events returns the surviving events in start-time order.
func (r *Ring) Events() []*Event {
	n := r.cursor.Load()
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	out := make([]*Event, 0, n)
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, e)
		}
	}
	sortEvents(out)
	return out
}

// sortEvents orders events by start time, breaking ties by track then end
// time (longer spans first, so parents precede children).
func sortEvents(evs []*Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Dur > b.Dur
	})
}
