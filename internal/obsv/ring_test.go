package obsv

import (
	"fmt"
	"sync"
	"testing"
)

// TestRingOverflowDropsOldest fills a small ring past its capacity and
// checks the overwrite semantics: the newest events survive, the oldest are
// dropped, and the dropped_events counter accounts exactly for the loss.
func TestRingOverflowDropsOldest(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap() = %d, want 8", r.Cap())
	}
	const total = 20
	for i := 0; i < total; i++ {
		r.Push(&Event{Name: fmt.Sprintf("e%d", i), Start: int64(i)})
	}
	if got := r.Pushed(); got != total {
		t.Errorf("Pushed() = %d, want %d", got, total)
	}
	if got := r.Dropped(); got != total-8 {
		t.Errorf("Dropped() = %d, want %d", got, total-8)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("Events() kept %d, want 8", len(evs))
	}
	// Only the 8 newest (e12..e19) survive, in start order.
	for i, e := range evs {
		want := fmt.Sprintf("e%d", total-8+i)
		if e.Name != want {
			t.Errorf("event %d = %s, want %s (oldest must be dropped first)", i, e.Name, want)
		}
	}
}

// TestRingNoOverflowKeepsAll checks the no-drop path.
func TestRingNoOverflowKeepsAll(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 5; i++ {
		r.Push(&Event{Start: int64(i)})
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped() = %d, want 0", r.Dropped())
	}
	if len(r.Events()) != 5 {
		t.Errorf("Events() kept %d, want 5", len(r.Events()))
	}
}

// TestRingCapacityRounding checks the power-of-two rounding and the
// minimum capacity.
func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 8}, {1, 8}, {8, 8}, {9, 16}, {100, 128}, {1 << 14, 1 << 14},
	} {
		if got := NewRing(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRingConcurrentEmission hammers one small ring from 8 goroutines (run
// under -race in CI): pushes must never block or lose accounting — every
// emitted event is either retained or counted as dropped.
func TestRingConcurrentEmission(t *testing.T) {
	r := NewRing(64)
	const (
		goroutines = 8
		perG       = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Push(&Event{Track: Track(g), Start: int64(i)})
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := r.Pushed(); got != total {
		t.Errorf("Pushed() = %d, want %d", got, total)
	}
	kept := len(r.Events())
	if kept != r.Cap() {
		t.Errorf("kept %d events, want a full ring of %d", kept, r.Cap())
	}
	if got := r.Dropped(); got != total-uint64(r.Cap()) {
		t.Errorf("Dropped() = %d, want %d (kept + dropped = emitted)", got, total-r.Cap())
	}
}

// TestTracerConcurrentSpans emits spans from 8 concurrent tracks through
// the full tracer (shard mapping, Begin/End, instants) — the -race guard
// for the public emission path.
func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(4, 128)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk := tr.NewTrack()
			for i := 0; i < 200; i++ {
				sp := tr.Begin(tk, CatNode, "f", "ordinary")
				tr.Instant(tk, CatFixpoint, "restart", "")
				sp.End()
			}
		}()
	}
	wg.Wait()

	const total = goroutines * 200 * 2
	if got := tr.Emitted(); got != total {
		t.Errorf("Emitted() = %d, want %d", got, total)
	}
	kept := uint64(len(tr.Events()))
	if kept+tr.Dropped() != total {
		t.Errorf("kept %d + dropped %d != emitted %d", kept, tr.Dropped(), total)
	}
	if tr.Dropped() == 0 {
		t.Errorf("expected overflow drops with %d events in 4x128 rings", total)
	}
}

// TestNilTracerIsInert checks the disabled fast path: every method of a nil
// tracer is a safe no-op.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	tk := tr.NewTrack()
	sp := tr.Begin(tk, CatBasic, "x", "")
	sp.End()
	tr.Instant(tk, CatWorker, "y", "")
	if tr.Events() != nil || tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer recorded events")
	}
}
