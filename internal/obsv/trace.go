package obsv

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Tracer records spans and instant events into per-worker ring buffers. A
// nil *Tracer is a valid, disabled tracer: every method is a cheap no-op,
// which is how the analysis hooks stay near-free when tracing is off.
//
// Each concurrently running goroutine of an analysis owns a distinct Track;
// the tracer maps tracks onto a fixed set of ring shards (track mod shard
// count). Shard slots are written with atomic pointer stores, so even when
// two tracks collide on a shard — or a slow writer races a wrap-around of
// the cursor — emission stays race-free and never blocks.
type Tracer struct {
	start  time.Time
	shards []*Ring
	tracks atomic.Int32
}

// Default tracer geometry.
const (
	// DefaultRingCapacity is the per-shard event capacity when NewTracer
	// is given no explicit size.
	DefaultRingCapacity = 1 << 14
)

// NewTracer returns an enabled tracer with the given number of ring shards
// (0 means GOMAXPROCS) each holding capacity events (0 means
// DefaultRingCapacity).
func NewTracer(shards, capacity int) *Tracer {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	t := &Tracer{start: time.Now(), shards: make([]*Ring, shards)}
	for i := range t.shards {
		t.shards[i] = NewRing(capacity)
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// NewTrack allocates a fresh track for a newly spawned worker goroutine.
// Track 0 (the calling goroutine of the analysis) is implicit and never
// returned.
func (t *Tracer) NewTrack() Track {
	if t == nil {
		return 0
	}
	return Track(t.tracks.Add(1))
}

func (t *Tracer) now() int64 { return int64(time.Since(t.start)) }

func (t *Tracer) ring(tk Track) *Ring {
	return t.shards[int(uint32(tk))%len(t.shards)]
}

// Span is an open span handle returned by Begin. The zero Span (from a nil
// tracer) is inert: End is a no-op.
type Span struct {
	t      *Tracer
	track  Track
	cat    Cat
	name   string
	detail string
	start  int64
}

// Begin opens a span on the given track. Callers should guard the
// computation of name/detail arguments behind Enabled when they are not
// constants, and must call End on the returned span.
func (t *Tracer) Begin(tk Track, cat Cat, name, detail string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, track: tk, cat: cat, name: name, detail: detail, start: t.now()}
}

// End closes the span and records it.
func (s Span) End() {
	t := s.t
	if t == nil {
		return
	}
	now := t.now()
	t.ring(s.track).Push(&Event{
		Track: s.track, Cat: s.cat, Name: s.name, Detail: s.detail,
		Start: s.start, Dur: now - s.start,
	})
}

// Instant records a zero-duration marker event on the given track.
func (t *Tracer) Instant(tk Track, cat Cat, name, detail string) {
	if t == nil {
		return
	}
	t.ring(tk).Push(&Event{
		Track: tk, Cat: cat, Name: name, Detail: detail,
		Start: t.now(), Instant: true,
	})
}

// Events returns every surviving event across all shards in start-time
// order. Intended for quiescent reads after the analysis has completed.
func (t *Tracer) Events() []*Event {
	if t == nil {
		return nil
	}
	var out []*Event
	for _, r := range t.shards {
		out = append(out, r.Events()...)
	}
	sortEvents(out)
	return out
}

// Emitted returns the total number of events ever recorded.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for _, r := range t.shards {
		n += r.Pushed()
	}
	return n
}

// Dropped returns the number of events lost to ring overflow (the
// dropped_events counter).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for _, r := range t.shards {
		n += r.Dropped()
	}
	return n
}
