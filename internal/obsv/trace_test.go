package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestChromeTraceFormat checks that the Chrome exporter produces valid
// trace_event JSON: an object with a traceEvents array whose entries carry
// the required keys and phases that chrome://tracing and Perfetto accept.
func TestChromeTraceFormat(t *testing.T) {
	tr := NewTracer(2, 64)
	sp := tr.Begin(0, CatNode, "main", "ordinary")
	inner := tr.Begin(0, CatMap, "map", "callee")
	inner.End()
	tr.Instant(0, CatFixpoint, "pending-restart", "")
	tk := tr.NewTrack()
	wsp := tr.Begin(tk, CatWorker, "task", "")
	wsp.End()
	sp.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	var sawX, sawI, sawMeta bool
	for _, e := range trace.TraceEvents {
		ph, _ := e["ph"].(string)
		switch ph {
		case "X":
			sawX = true
			for _, k := range []string{"name", "ts", "pid", "tid"} {
				if _, ok := e[k]; !ok {
					t.Errorf("X event missing %q: %v", k, e)
				}
			}
		case "i":
			sawI = true
			if s, _ := e["s"].(string); s == "" {
				t.Errorf("instant event missing scope: %v", e)
			}
		case "M":
			sawMeta = true
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	if !sawX || !sawI || !sawMeta {
		t.Errorf("want X, i and M events; got X=%v i=%v M=%v", sawX, sawI, sawMeta)
	}
	// Worker tracks get their own thread_name metadata.
	if !strings.Contains(buf.String(), "worker-1") {
		t.Error("missing worker-1 thread name metadata")
	}
}

// TestSpanNesting checks that a parent span's interval contains its
// children's on the same track — the property trace viewers rely on.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer(1, 64)
	outer := tr.Begin(0, CatNode, "outer", "")
	in1 := tr.Begin(0, CatMap, "m1", "")
	in1.End()
	in2 := tr.Begin(0, CatUnmap, "m2", "")
	in2.End()
	outer.End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Start-time order with parent-first tie-breaking puts outer first.
	if evs[0].Name != "outer" {
		t.Fatalf("first event = %s, want outer", evs[0].Name)
	}
	oEnd := evs[0].Start + evs[0].Dur
	for _, e := range evs[1:] {
		if e.Start < evs[0].Start || e.Start+e.Dur > oEnd {
			t.Errorf("child %s [%d,%d] escapes parent [%d,%d]",
				e.Name, e.Start, e.Start+e.Dur, evs[0].Start, oEnd)
		}
	}
}

// TestJSONLExport checks the JSONL exporter: one valid JSON object per
// line, in start-time order.
func TestJSONLExport(t *testing.T) {
	tr := NewTracer(1, 64)
	sp := tr.Begin(0, CatBasic, "stmt", "prog.c:3:1")
	sp.End()
	tr.Instant(0, CatWorker, "inline", "")

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var last int64 = -1
	for _, ln := range lines {
		var e struct {
			TS   int64  `json:"ts_ns"`
			Cat  string `json:"cat"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		if e.TS < last {
			t.Errorf("events out of order: %d after %d", e.TS, last)
		}
		last = e.TS
		if e.Cat == "" || e.Name == "" {
			t.Errorf("line %q missing cat/name", ln)
		}
	}
}
