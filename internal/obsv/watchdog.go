package obsv

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"
)

// Watchdog watches a monotone progress counter and fires when it stops
// advancing for a configured window — the symptom of a livelocked fixed
// point, a runaway recursion approximation, or a scheduling bug. Firing
// means: emit a warning through OnStall (the analysis dumps goroutine
// stacks and the flight record there) and, when a Kill hook is configured,
// abort the run through it. After firing, the watchdog re-arms only once
// progress resumes, so a persistent stall produces one report, not a
// report per poll.
type Watchdog struct {
	window   time.Duration
	poll     time.Duration
	progress func() int64
	onStall  func(StallInfo)

	stalls atomic.Int64
	stop   chan struct{}
	done   chan struct{}
}

// StallInfo describes one detected stall.
type StallInfo struct {
	// Stalled is how long the progress counter has been stuck.
	Stalled time.Duration
	// Progress is the stuck counter value.
	Progress int64
}

// WatchdogConfig configures StartWatchdog.
type WatchdogConfig struct {
	// Window is the no-progress duration that counts as a stall. Required.
	Window time.Duration
	// Poll is the sampling interval (0 means Window/8, clamped to
	// [1ms, 1s]).
	Poll time.Duration
	// Progress reads the monotone progress counter. Required.
	Progress func() int64
	// OnStall is invoked (from the watchdog goroutine) once per stall
	// episode. Optional.
	OnStall func(StallInfo)
}

// StartWatchdog starts a watchdog goroutine. It returns nil — a valid,
// inert watchdog — when the config is incomplete (no window or no progress
// source), so callers can pass options through unconditionally.
func StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Window <= 0 || cfg.Progress == nil {
		return nil
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = cfg.Window / 8
	}
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}
	w := &Watchdog{
		window:   cfg.Window,
		poll:     poll,
		progress: cfg.Progress,
		onStall:  cfg.OnStall,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

// Stop terminates the watchdog goroutine. Safe on a nil watchdog; must not
// be called twice.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	close(w.stop)
	<-w.done
}

// Stalls reports how many stall episodes have fired. Safe on nil.
func (w *Watchdog) Stalls() int64 {
	if w == nil {
		return 0
	}
	return w.stalls.Load()
}

func (w *Watchdog) loop() {
	defer close(w.done)
	t := time.NewTicker(w.poll)
	defer t.Stop()
	last := w.progress()
	lastChange := time.Now()
	fired := false
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		v := w.progress()
		if v != last {
			last, lastChange, fired = v, time.Now(), false
			continue
		}
		if fired {
			continue
		}
		if stalled := time.Since(lastChange); stalled >= w.window {
			fired = true
			w.stalls.Add(1)
			if w.onStall != nil {
				w.onStall(StallInfo{Stalled: stalled, Progress: v})
			}
		}
	}
}

// WriteStallReport renders the standard stall preamble: the warning line
// and a dump of every goroutine's stack. The flight record follows it in
// the analysis's stall hook.
func WriteStallReport(w io.Writer, info StallInfo) {
	fmt.Fprintf(w, "=== stall watchdog: no progress for %s (stuck at %d steps) ===\n",
		info.Stalled.Round(time.Millisecond), info.Progress)
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	fmt.Fprintf(w, "goroutine stacks:\n%s\n", buf[:n])
}
