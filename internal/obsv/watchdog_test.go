package obsv

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWatchdogFiresOnStall(t *testing.T) {
	var progress atomic.Int64
	progress.Store(7)
	fired := make(chan StallInfo, 1)
	w := StartWatchdog(WatchdogConfig{
		Window:   20 * time.Millisecond,
		Progress: progress.Load,
		OnStall: func(info StallInfo) {
			select {
			case fired <- info:
			default:
			}
		},
	})
	defer w.Stop()

	select {
	case info := <-fired:
		if info.Progress != 7 {
			t.Errorf("stall at progress %d, want 7", info.Progress)
		}
		if info.Stalled < 20*time.Millisecond {
			t.Errorf("stalled %s, want >= window", info.Stalled)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired on frozen progress")
	}
	if w.Stalls() != 1 {
		t.Errorf("Stalls() = %d, want 1", w.Stalls())
	}

	// A persistent stall fires once, not once per poll.
	time.Sleep(100 * time.Millisecond)
	if w.Stalls() != 1 {
		t.Errorf("persistent stall fired %d times, want 1", w.Stalls())
	}
}

func TestWatchdogRearmsAfterProgress(t *testing.T) {
	var progress atomic.Int64
	var stalls atomic.Int64
	resumed := make(chan struct{}, 1)
	w := StartWatchdog(WatchdogConfig{
		Window:   15 * time.Millisecond,
		Progress: progress.Load,
		OnStall: func(StallInfo) {
			if stalls.Add(1) == 1 {
				// Resume progress from the hook so the re-arm is racefree.
				progress.Add(1)
				resumed <- struct{}{}
			}
		},
	})
	defer w.Stop()

	select {
	case <-resumed:
	case <-time.After(2 * time.Second):
		t.Fatal("first stall never fired")
	}
	// Progress moved once and froze again: the watchdog must re-arm and
	// fire a second episode.
	deadline := time.Now().Add(2 * time.Second)
	for stalls.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog did not re-arm after progress resumed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWatchdogNoStallWhileProgressing(t *testing.T) {
	var progress atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				progress.Add(1)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	w := StartWatchdog(WatchdogConfig{
		Window:   50 * time.Millisecond,
		Progress: progress.Load,
	})
	time.Sleep(200 * time.Millisecond)
	if w.Stalls() != 0 {
		t.Errorf("watchdog fired %d times on live progress", w.Stalls())
	}
	w.Stop()
	close(stop)
	<-done
}

func TestWatchdogIncompleteConfig(t *testing.T) {
	if w := StartWatchdog(WatchdogConfig{Window: time.Second}); w != nil {
		t.Error("no Progress source should yield a nil watchdog")
	}
	if w := StartWatchdog(WatchdogConfig{Progress: func() int64 { return 0 }}); w != nil {
		t.Error("no Window should yield a nil watchdog")
	}
	var w *Watchdog
	w.Stop() // nil-safe
	if w.Stalls() != 0 {
		t.Error("nil watchdog reports stalls")
	}
}

func TestWriteStallReport(t *testing.T) {
	var b bytes.Buffer
	WriteStallReport(&b, StallInfo{Stalled: 3 * time.Second, Progress: 12345})
	out := b.String()
	if !strings.Contains(out, "no progress for 3s") {
		t.Errorf("report missing stall duration:\n%s", out)
	}
	if !strings.Contains(out, "stuck at 12345 steps") {
		t.Errorf("report missing progress value:\n%s", out)
	}
	if !strings.Contains(out, "goroutine ") {
		t.Errorf("report missing goroutine stacks:\n%s", out)
	}
}
