package oracle

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/simple"
)

// deepChecker walks the invocation graph alongside the concrete call stack
// and checks Definition 3.3 at *every* frame depth: a concrete pointer fact
// is translated into the current context's naming (globals stay themselves,
// caller cells become the symbolic names assigned by the map step) and must
// be covered by the executing statement's points-to annotation. This
// directly validates the symbolic-name machinery of §4.1.
type deepChecker struct {
	res *pta.Result
	ip  *interp.Interp

	// nodes parallels the interpreter's frame stack; nodes[0] is main's
	// root node. flagged marks entries pushed under a recursion
	// approximation; while any are present, per-statement checks are
	// skipped (the approximation generalizes inputs, so the per-context
	// naming chain is no longer exact).
	nodes     []*invgraph.Node
	flagged   []bool
	redirects int

	err     error
	checked int
	seen    int

	// SampleEvery checks one in every N traced statements once the first
	// two thousand have been checked exhaustively (fact enumeration per
	// statement is the dominant cost on long executions). 0 disables
	// sampling.
	SampleEvery int
}

// RunAndCheckDeep interprets the program with full-depth soundness
// checking. It reports the first violation found.
func RunAndCheckDeep(res *pta.Result, prog *simple.Program, maxSteps int) error {
	ip := interp.New(prog)
	if maxSteps > 0 {
		ip.MaxSteps = maxSteps
	}
	d := &deepChecker{res: res, ip: ip,
		nodes: []*invgraph.Node{res.Graph.Root}, flagged: []bool{false},
		SampleEvery: 9}
	ip.OnCall = d.onCall
	ip.OnReturn = d.onReturn
	ip.Trace = d.trace
	if _, err := ip.Run(); err != nil {
		if _, isExit := interp.ExitCode(err); !isExit {
			return fmt.Errorf("interpretation failed: %w", err)
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.checked == 0 {
		return fmt.Errorf("deep oracle made no checks (hook wiring broken?)")
	}
	return nil
}

func (d *deepChecker) top() *invgraph.Node { return d.nodes[len(d.nodes)-1] }

func (d *deepChecker) push(n *invgraph.Node, flag bool) {
	d.nodes = append(d.nodes, n)
	d.flagged = append(d.flagged, flag)
	if flag {
		d.redirects++
	}
}

func (d *deepChecker) onCall(b *simple.Basic, callee *simple.Function) error {
	cur := d.top()
	redirected := false
	if cur.Kind == invgraph.Approximate {
		// The approximate node has no children; its recursive partner's
		// subtree stands in for all unrollings.
		cur = cur.RecPartner
		redirected = true
	}
	var child *invgraph.Node
	for _, c := range cur.Children {
		if c.Site == b && c.Fn == callee {
			child = c
			break
		}
	}
	if child == nil {
		if d.redirects > 0 || redirected {
			// Deep recursion beyond the approximation: keep depths
			// aligned with a flagged placeholder.
			d.push(cur, true)
			return nil
		}
		d.err = fmt.Errorf("%s: execution calls %s but the invocation graph has no such edge from %s",
			b.Pos, callee.Name(), cur.Fn.Name())
		return d.err
	}
	d.push(child, redirected || child.Kind == invgraph.Approximate)
	return nil
}

func (d *deepChecker) onReturn() {
	last := len(d.nodes) - 1
	if d.flagged[last] {
		d.redirects--
	}
	d.nodes = d.nodes[:last]
	d.flagged = d.flagged[:last]
}

// namesAt translates a concrete pointer (a cell address) into the abstract
// names valid in the context at stack depth targetDepth (1 = main).
// ownerDepth is the frame depth owning the cell (0 for globals/heap).
func (d *deepChecker) namesAt(p interp.Pointer, targetDepth int) []*loc.Location {
	base := abstractLocOpts(d.res.Table, p, d.res.Opts.SingleArrayLoc)
	if base == nil {
		return nil
	}
	ownerDepth := 0
	if p.Frame != nil {
		ownerDepth = p.Frame.Depth
	}
	names := []*loc.Location{base}
	for lvl := ownerDepth; lvl < targetDepth; lvl++ {
		// Crossing the call edge into nodes[lvl] (frame depth lvl+1).
		node := d.nodes[lvl]
		mi, ok := node.MapInfo.(*pta.MapInfo)
		if !ok {
			if lvl == 0 {
				continue // main has no map step; globals pass through
			}
			return nil
		}
		var next []*loc.Location
		for _, n := range names {
			next = append(next, mi.CalleeNames(d.res, n)...)
		}
		if len(next) == 0 {
			return nil
		}
		names = next
	}
	return names
}

func (d *deepChecker) trace(b *simple.Basic, depth int) error {
	if d.err != nil || d.redirects > 0 {
		return d.err
	}
	d.seen++
	if d.SampleEvery > 1 && d.seen > 2000 && d.seen%d.SampleEvery != 0 {
		return nil
	}
	if depth != len(d.nodes) {
		// GlobalInit runs with a pre-frame; skip alignment corner cases.
		return nil
	}
	in, ok := d.res.Annots.At(b)
	if !ok {
		d.err = fmt.Errorf("executed statement `%s` (%s) has no annotation", b, b.Pos)
		return d.err
	}
	// Facts over every live frame at or above the current depth plus
	// globals and the heap.
	facts := d.ip.PointerFacts(func(fr *interp.Frame) bool { return fr.Depth <= depth })
	for _, f := range facts {
		if !liveFact(f) {
			continue
		}
		srcNames := d.namesAt(f.Src, depth)
		if len(srcNames) == 0 {
			continue // cell not nameable in this context: no claim made
		}
		var dstNames []*loc.Location
		switch {
		case f.DstFn != nil:
			dstNames = []*loc.Location{d.res.Table.FuncLoc(f.DstFn)}
		case f.DstStr:
			dstNames = []*loc.Location{d.res.Table.StrLoc()}
		default:
			dstNames = d.namesAt(f.Dst, depth)
			// A dead heap object may be named by either the freed or the
			// heap location (free retargets only the freed pointer's own
			// edge; aliases keep heap). Coverage by either naming is sound.
			if f.DstFreed {
				dstNames = append(dstNames, d.res.Table.FreedLoc())
			}
		}
		if len(dstNames) == 0 {
			continue
		}
		// Every name of the source cell must cover the fact through at
		// least one name of the target cell.
		for _, sn := range srcNames {
			covered := false
			for _, dn := range dstNames {
				if _, ok := in.Lookup(sn, dn); ok {
					covered = true
					break
				}
			}
			if !covered {
				d.err = fmt.Errorf("at `%s` (%s) depth %d: unsound: %s -> %s not covered under name %s (targets %s)",
					b, b.Pos, depth, f.Src, describeDst(f), sn.Name(), loc.Fmt(dstNames))
				return d.err
			}
			d.checked++
		}
	}
	return nil
}
