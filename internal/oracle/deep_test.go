package oracle

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/simplify"
)

func deepCheck(t *testing.T, src string) error {
	t.Helper()
	tu, err := parser.Parse("deep.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	res, err := pta.Analyze(prog, pta.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return RunAndCheckDeep(res, prog, 500_000)
}

// TestDeepOracleSmall checks full-depth coverage on programs whose callees
// manipulate invisible variables — validating the symbolic-name chain
// directly against concrete cells.
func TestDeepOracleSmall(t *testing.T) {
	cases := []struct{ name, src string }{
		{"one-level", `
int g;
void f(int **h) {
	*h = &g;
	g = **h;
}
int main() {
	int x;
	int *p;
	p = &x;
	f(&p);
	return 0;
}
`},
		{"two-levels-deep", `
int g;
void inner(int **h) {
	*h = &g;
	g = 1;
}
void outer(int **h) {
	inner(h);
	g = 2;
}
int main() {
	int x;
	int *p;
	p = &x;
	outer(&p);
	return *p;
}
`},
		{"globals-through-chain", `
int a, b;
int *gp;
void leafy(void) {
	int v;
	v = *gp;
	gp = &b;
	v = *gp;
}
void mid(void) {
	leafy();
}
int main() {
	gp = &a;
	mid();
	return *gp;
}
`},
		{"struct-fields-deep", `
struct box { int *p; int pad; };
int g;
void fill(struct box *bx) {
	bx->p = &g;
	g = *bx->p;
}
int main() {
	struct box v;
	fill(&v);
	return *v.p;
}
`},
		{"fnptr-deep", `
int r;
void fa(int *p) { *p = 1; r = *p; }
void fb(int *p) { *p = 2; r = *p; }
void dispatch(void (*cb)(int *), int *q) {
	cb(q);
}
int main() {
	int x, c;
	c = 1;
	if (c)
		dispatch(fa, &x);
	else
		dispatch(fb, &x);
	return x;
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := deepCheck(t, tc.src); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeepOracleBenchmarks runs the full-depth check over the suite.
func TestDeepOracleBenchmarks(t *testing.T) {
	for _, name := range bench.AvailableOnDisk() {
		name := name
		t.Run(name, func(t *testing.T) {
			prog, err := bench.Load(name)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			res, err := pta.Analyze(prog, pta.Options{})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if err := RunAndCheckDeep(res, prog, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeepOracleGenerated fuzzes the full-depth checker.
func TestDeepOracleGenerated(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := 200; seed < 200+seeds; seed++ {
		src := bench.Generate(bench.DefaultGenConfig(int64(seed)))
		tu, err := parser.Parse("gen.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := simplify.Simplify(tu)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := pta.Analyze(prog, pta.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := RunAndCheckDeep(res, prog, 500_000); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}
