package oracle

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/check"
	"repro/internal/interp"
	"repro/internal/pta"
	"repro/internal/simple"
	"repro/internal/simplify"
)

// runDefiniteFPCheck analyzes src, collects the checker's definite (error)
// statement-level diagnostics, and interprets the program with a pending
// check: once a flagged statement starts executing, the interpreter must
// fault before any further statement is traced (and before normal exit).
// A flagged statement that completes is a definite-diagnostic false
// positive. Returns how many flagged executions were validated by a fault.
func runDefiniteFPCheck(t *testing.T, name, src string) int {
	t.Helper()
	tu, err := parser.Parse(name, src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("%s: simplify: %v", name, err)
	}
	res, err := pta.Analyze(prog, pta.Options{RecordContexts: true})
	if err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	diags, err := check.Run(res)
	if err != nil {
		t.Fatalf("%s: check: %v", name, err)
	}
	flagged := make(map[*simple.Basic]check.Diag)
	for _, d := range diags {
		if d.Sev == check.Error && d.Stmt != nil {
			flagged[d.Stmt] = d
		}
	}
	if len(flagged) == 0 {
		return 0
	}

	ip := interp.New(prog)
	ip.MaxSteps = 500_000
	var pending *check.Diag
	ip.Trace = func(b *simple.Basic, depth int) error {
		if pending != nil {
			return fmt.Errorf("definite-diagnostic false positive: `%s` executed without faulting", pending)
		}
		if d, ok := flagged[b]; ok {
			pending = &d
		}
		return nil
	}
	_, err = ip.Run()
	_, isExit := interp.ExitCode(err)
	switch {
	case err != nil && strings.Contains(err.Error(), "false positive"):
		t.Errorf("%s: %v", name, err)
		return 0
	case err == nil || isExit:
		if pending != nil {
			t.Errorf("%s: definite-diagnostic false positive: `%s` executed and the program exited normally", name, pending)
		}
		return 0
	default:
		// The run faulted. If a flagged statement was executing, its claim
		// is validated; a fault elsewhere makes no judgement either way.
		if pending != nil {
			return 1
		}
		return 0
	}
}

// TestCheckerDefiniteNoFalsePositives proves the checker's *error*-severity
// statement diagnostics on the positive fixtures are not false positives:
// each flagged statement, when reached, actually faults in the interpreter.
func TestCheckerDefiniteNoFalsePositives(t *testing.T) {
	fixtures := []string{"nullderef.c", "uaf.c", "doublefree.c"}
	for _, f := range fixtures {
		data, err := os.ReadFile(filepath.Join("..", "..", "examples", "check", f))
		if err != nil {
			t.Fatal(err)
		}
		if got := runDefiniteFPCheck(t, f, string(data)); got == 0 {
			t.Errorf("%s: expected the flagged statement to be reached and fault", f)
		}
	}
}

// TestCheckerDefiniteNoFalsePositivesFuzz sweeps generated programs and the
// benchmark suite: any definite diagnostic the checker emits on them must
// fault when executed. (Well-formed programs rarely earn definite
// diagnostics — the sweep guards against the checker flagging healthy
// statements as certain failures.)
func TestCheckerDefiniteNoFalsePositivesFuzz(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		cfg := bench.DefaultGenConfig(int64(seed))
		cfg.Funcs = 2 + seed%3
		cfg.StmtsPer = 8 + seed%10
		cfg.UseFnPtrs = seed%2 == 0
		runDefiniteFPCheck(t, fmt.Sprintf("gen-seed-%d", seed), bench.Generate(cfg))
	}
	for _, name := range bench.Names() {
		src, err := bench.Source(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		runDefiniteFPCheck(t, name, src)
	}
}
