package oracle

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/simplify"
)

// TestGeneratedProgramsSound generates random programs and checks that the
// analysis soundly covers their concrete executions — the heavyweight
// property test of DESIGN.md §6 (the interpreter oracle).
func TestGeneratedProgramsSound(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		cfg := bench.DefaultGenConfig(int64(seed))
		// Vary the shape with the seed.
		cfg.Funcs = 2 + seed%3
		cfg.StmtsPer = 8 + seed%10
		cfg.UseFnPtrs = seed%2 == 0
		src := bench.Generate(cfg)

		tu, err := parser.Parse("gen.c", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		prog, err := simplify.Simplify(tu)
		if err != nil {
			t.Fatalf("seed %d: simplify: %v\n%s", seed, err, src)
		}
		res, err := pta.Analyze(prog, pta.Options{})
		if err != nil {
			t.Fatalf("seed %d: analyze: %v\n%s", seed, err, src)
		}
		if err := RunAndCheck(res, prog, 500_000); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

// TestGeneratedProgramsSoundUnderAblations repeats a few seeds under each
// ablation configuration: ablations trade precision, never soundness.
func TestGeneratedProgramsSoundUnderAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	configs := []pta.Options{
		{NoDefinite: true},
		{SingleArrayLoc: true},
		{ContextInsensitive: true},
		{NoMemo: true},
	}
	for seed := 100; seed < 110; seed++ {
		src := bench.Generate(bench.DefaultGenConfig(int64(seed)))
		tu, err := parser.Parse("gen.c", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		prog, err := simplify.Simplify(tu)
		if err != nil {
			t.Fatalf("seed %d: simplify: %v", seed, err)
		}
		for i, opts := range configs {
			res, err := pta.Analyze(prog, opts)
			if err != nil {
				t.Fatalf("seed %d cfg %d: analyze: %v", seed, i, err)
			}
			if err := RunAndCheck(res, prog, 500_000); err != nil {
				t.Fatalf("seed %d cfg %d: %v\n%s", seed, i, err, src)
			}
		}
	}
}
