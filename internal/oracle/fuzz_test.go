package oracle

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/simplify"
)

// TestGeneratedProgramsSound generates random programs and checks that the
// analysis soundly covers their concrete executions — the heavyweight
// property test of DESIGN.md §6 (the interpreter oracle).
func TestGeneratedProgramsSound(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		cfg := bench.DefaultGenConfig(int64(seed))
		// Vary the shape with the seed.
		cfg.Funcs = 2 + seed%3
		cfg.StmtsPer = 8 + seed%10
		cfg.UseFnPtrs = seed%2 == 0
		src := bench.Generate(cfg)

		tu, err := parser.Parse("gen.c", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		prog, err := simplify.Simplify(tu)
		if err != nil {
			t.Fatalf("seed %d: simplify: %v\n%s", seed, err, src)
		}
		res, err := pta.Analyze(prog, pta.Options{})
		if err != nil {
			t.Fatalf("seed %d: analyze: %v\n%s", seed, err, src)
		}
		if err := RunAndCheck(res, prog, 500_000); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

// FuzzMemoParallelEquivalence is the differential fuzz target for the
// summary cache and the parallel evaluator: the fuzzer mutates the program
// generator's shape parameters, and for every generated program the
// memoized, unmemoized and parallel analyses must produce byte-identical
// canonical results — and the memoized result must still soundly cover the
// program's concrete execution.
func FuzzMemoParallelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(12), uint8(2), true)
	f.Add(int64(7), uint8(2), uint8(8), uint8(1), false)
	f.Add(int64(42), uint8(4), uint8(16), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed int64, funcs, stmts, depth uint8, fnptrs bool) {
		cfg := bench.DefaultGenConfig(seed)
		cfg.Funcs = 1 + int(funcs%5)
		cfg.StmtsPer = 1 + int(stmts%24)
		cfg.MaxDepth = 1 + int(depth%3)
		cfg.UseFnPtrs = fnptrs
		src := bench.Generate(cfg)

		tu, err := parser.Parse("fuzz.c", src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		prog, err := simplify.Simplify(tu)
		if err != nil {
			t.Fatalf("simplify: %v\n%s", err, src)
		}
		memo, err := pta.Analyze(prog, pta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("analyze: %v\n%s", err, src)
		}
		want := pta.Fingerprint(memo)
		for _, opts := range []pta.Options{
			{Workers: 1, NoMemo: true},
			{Workers: 4},
			{Workers: 4, NoMemo: true},
		} {
			res, err := pta.Analyze(prog, opts)
			if err != nil {
				t.Fatalf("analyze %+v: %v\n%s", opts, err, src)
			}
			if got := pta.Fingerprint(res); got != want {
				t.Fatalf("%+v: result differs from memoized serial analysis\n%s", opts, src)
			}
		}
		if err := RunAndCheck(memo, prog, 200_000); err != nil {
			t.Fatalf("soundness: %v\n%s", err, src)
		}
	})
}

// TestGeneratedProgramsSoundUnderAblations repeats a few seeds under each
// ablation configuration: ablations trade precision, never soundness.
func TestGeneratedProgramsSoundUnderAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	configs := []pta.Options{
		{NoDefinite: true},
		{SingleArrayLoc: true},
		{ContextInsensitive: true},
		{NoMemo: true},
	}
	for seed := 100; seed < 110; seed++ {
		src := bench.Generate(bench.DefaultGenConfig(int64(seed)))
		tu, err := parser.Parse("gen.c", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		prog, err := simplify.Simplify(tu)
		if err != nil {
			t.Fatalf("seed %d: simplify: %v", seed, err)
		}
		for i, opts := range configs {
			res, err := pta.Analyze(prog, opts)
			if err != nil {
				t.Fatalf("seed %d cfg %d: analyze: %v", seed, i, err)
			}
			if err := RunAndCheck(res, prog, 500_000); err != nil {
				t.Fatalf("seed %d cfg %d: %v\n%s", seed, i, err, src)
			}
		}
	}
}
