// Package oracle checks the points-to analysis against concrete executions
// (Definition 3.3 of the paper): every pointer relationship observed by the
// interpreter must be covered by the computed points-to set, and a definite
// relationship claimed by the analysis between single locations must
// actually hold.
package oracle

import (
	"fmt"

	"repro/internal/cc/types"
	"repro/internal/interp"
	"repro/internal/pta"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// AbstractLoc maps a concrete address to its abstract stack location in the
// analysis's naming (heap objects collapse to the heap location; concrete
// index 0 is the array head, any other index the tail). An index selector
// applied to a non-array cell — scalar pointer arithmetic — stays at the
// same abstract location, matching the analysis's within-object assumption.
func AbstractLoc(tab *loc.Table, p interp.Pointer) *loc.Location {
	return abstractLocOpts(tab, p, false)
}

func abstractLocOpts(tab *loc.Table, p interp.Pointer, singleArray bool) *loc.Location {
	if p.HeapID >= 0 {
		return tab.HeapLoc()
	}
	if p.Obj == nil {
		return nil
	}
	var elems []loc.Elem
	t := p.Obj.Type
	for _, s := range p.Path {
		if s.IsIdx {
			isArray := t != nil && t.Kind == types.Array
			if !isArray {
				continue // within-object pointer arithmetic on a scalar
			}
			if s.Idx == 0 && !singleArray {
				elems = append(elems, loc.HeadElem)
			} else {
				elems = append(elems, loc.TailElem)
			}
			t = t.Elem
		} else {
			elems = append(elems, loc.FieldElem(s.Field))
			if t != nil {
				if f := t.FieldByName(s.Field); f != nil {
					t = f.Type
				} else {
					t = nil
				}
			}
		}
	}
	return tab.VarLoc(p.Obj, elems)
}

// liveFact reports whether the fact's target still exists (pointers into
// returned frames are dangling; the abstraction legitimately drops them at
// unmap time and any use is undefined behaviour).
func liveFact(f interp.Fact) bool {
	if f.DstFn != nil || f.DstStr {
		return true
	}
	return f.Dst.Frame == nil || f.Dst.Frame.Alive
}

// abstractFact converts a concrete fact to abstract source and target using
// the analysis's array-abstraction setting.
func abstractFact(res *pta.Result, f interp.Fact) (src, dst *loc.Location) {
	tab := res.Table
	single := res.Opts.SingleArrayLoc
	src = abstractLocOpts(tab, f.Src, single)
	switch {
	case f.DstFn != nil:
		dst = tab.FuncLoc(f.DstFn)
	case f.DstStr:
		dst = tab.StrLoc()
	default:
		dst = abstractLocOpts(tab, f.Dst, single)
	}
	return src, dst
}

// CheckCovered verifies that every concrete fact is present in the
// points-to set (as D or P). ctx names the check in error messages.
func CheckCovered(res *pta.Result, s ptset.Set, facts []interp.Fact, ctx string) error {
	for _, f := range facts {
		if !liveFact(f) {
			continue
		}
		src, dst := abstractFact(res, f)
		if src == nil || dst == nil {
			continue
		}
		if _, ok := s.Lookup(src, dst); !ok {
			// A pointer to a freed heap object may be covered by either the
			// heap or the freed location: free(p) retargets only p's own
			// edge, so aliases keep (·,heap,·) — both namings stand for the
			// dead object.
			if f.DstFreed && dst.Kind == loc.Heap {
				if _, ok := s.Lookup(src, res.Table.FreedLoc()); ok {
					continue
				}
			}
			return fmt.Errorf("%s: unsound: concrete fact %s -> %s not covered (abstract (%s,%s))",
				ctx, f.Src, describeDst(f), src.Name(), dst.Name())
		}
	}
	return nil
}

// CheckDefinite verifies that every definite claim of the analysis whose
// source location corresponds to exactly one inspected concrete cell agrees
// with the concrete state: the cell must hold exactly the claimed target.
func CheckDefinite(res *pta.Result, s ptset.Set, facts []interp.Fact, ctx string) error {
	// Index the concrete facts by abstract source.
	bySource := make(map[*loc.Location][]interp.Fact)
	for _, f := range facts {
		if !liveFact(f) {
			continue
		}
		src, _ := abstractFact(res, f)
		if src != nil {
			bySource[src] = append(bySource[src], f)
		}
	}
	for src, fs := range bySource {
		if src.Multi() || len(fs) != 1 {
			continue // several concrete cells share the abstract name
		}
		_, dst := abstractFact(res, fs[0])
		if dst == nil || dst.Multi() {
			continue
		}
		for _, t := range s.Targets(src) {
			if t.Def != ptset.D || t.Dst.Multi() || t.Dst.Kind == loc.Null {
				continue
			}
			if t.Dst != dst {
				return fmt.Errorf("%s: spurious definite claim (%s,%s,D): concrete cell holds %s",
					ctx, src.Name(), t.Dst.Name(), dst.Name())
			}
		}
	}
	return nil
}

// RunAndCheck interprets the program and checks analysis coverage:
//   - at every basic statement executed at main depth, the statement's
//     annotation must cover the facts over globals and main's locals;
//   - at normal termination, MainOut must cover the final facts.
func RunAndCheck(res *pta.Result, prog *simple.Program, maxSteps int) error {
	ip := interp.New(prog)
	if maxSteps > 0 {
		ip.MaxSteps = maxSteps
	}
	var checkErr error
	mainDepthOnly := func(fr *interp.Frame) bool { return fr.Depth <= 1 }
	ip.Trace = func(b *simple.Basic, depth int) error {
		if depth != 1 || checkErr != nil {
			return nil
		}
		in, ok := res.Annots.At(b)
		if !ok {
			checkErr = fmt.Errorf("executed statement `%s` (%s) has no annotation", b, b.Pos)
			return checkErr
		}
		facts := ip.PointerFacts(mainDepthOnly)
		if err := CheckCovered(res, in, facts, fmt.Sprintf("at `%s` (%s)", b, b.Pos)); err != nil {
			checkErr = err
			return err
		}
		return nil
	}
	if _, err := ip.Run(); err != nil {
		if _, isExit := interp.ExitCode(err); !isExit {
			return fmt.Errorf("interpretation failed: %w", err)
		}
	}
	if checkErr != nil {
		return checkErr
	}
	// Final check against MainOut (globals + heap only: main's frame is
	// gone after Run returns).
	facts := ip.PointerFacts(func(*interp.Frame) bool { return false })
	if err := CheckCovered(res, res.MainOut, facts, "at exit of main"); err != nil {
		return err
	}
	return CheckDefinite(res, res.MainOut, facts, "at exit of main")
}

func describeDst(f interp.Fact) string {
	switch {
	case f.DstFn != nil:
		return "func " + f.DstFn.Name
	case f.DstStr:
		return "string literal"
	default:
		return f.Dst.String()
	}
}
