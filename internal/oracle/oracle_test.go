package oracle

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/interp"
	"repro/internal/pta"
	"repro/internal/simplify"
)

// TestBenchmarksSound runs every benchmark program concretely and checks
// that the analysis covers all observed pointer relationships (Definition
// 3.3): at every executed statement in main against the statement's
// annotation, and at program exit against MainOut.
func TestBenchmarksSound(t *testing.T) {
	for _, name := range bench.AvailableOnDisk() {
		name := name
		t.Run(name, func(t *testing.T) {
			prog, err := bench.Load(name)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			res, err := pta.Analyze(prog, pta.Options{})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if err := RunAndCheck(res, prog, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBenchmarksRunAndProduceOutput checks that every benchmark executes to
// completion and prints something sensible.
func TestBenchmarksRunAndProduceOutput(t *testing.T) {
	for _, name := range bench.AvailableOnDisk() {
		name := name
		t.Run(name, func(t *testing.T) {
			prog, err := bench.Load(name)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			ip := interp.New(prog)
			if _, err := ip.Run(); err != nil {
				if _, isExit := interp.ExitCode(err); !isExit {
					t.Fatalf("Run: %v\noutput: %s", err, ip.Out.String())
				}
			}
			out := ip.Out.String()
			if strings.TrimSpace(out) == "" {
				t.Error("benchmark produced no output")
			}
			t.Logf("output: %s", strings.TrimSpace(out))
		})
	}
}

// TestOracleSmall exercises the oracle on handwritten programs with
// interesting pointer behaviour.
func TestOracleSmall(t *testing.T) {
	cases := []struct{ name, src string }{
		{"strong-update", `
int main() {
	int x, y;
	int *p;
	p = &x;
	*p = 1;
	p = &y;
	*p = 2;
	return x + y;
}
`},
		{"through-call", `
int g;
void set(int **h, int *v) { *h = v; }
int main() {
	int x;
	int *p;
	set(&p, &x);
	*p = 5;
	set(&p, &g);
	*p = 6;
	return x + g;
}
`},
		{"fnptr", `
int a, b;
void fa(void) { a = 1; }
void fb(void) { b = 2; }
void (*fp)(void);
int main() {
	int c;
	c = 1;
	if (c) fp = fa; else fp = fb;
	fp();
	return a + b;
}
`},
		{"recursion", `
struct node { int v; struct node *next; };
struct node *build(int n) {
	struct node *nd;
	if (n == 0) return 0;
	nd = (struct node *) malloc(sizeof(struct node));
	nd->v = n;
	nd->next = build(n - 1);
	return nd;
}
int main() {
	struct node *l;
	int s;
	s = 0;
	l = build(5);
	while (l) {
		s += l->v;
		l = l->next;
	}
	return s;
}
`},
		{"array-cursor", `
int main() {
	int arr[8];
	int *p;
	int i, s;
	for (i = 0; i < 8; i++)
		arr[i] = i;
	s = 0;
	for (p = arr; p < arr + 8; p++)
		s += *p;
	return s;
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tu, err := parser.Parse(tc.name+".c", tc.src)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := simplify.Simplify(tu)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pta.Analyze(prog, pta.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := RunAndCheck(res, prog, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOracleAblations checks soundness is preserved under every ablation
// configuration (they trade precision, never safety).
func TestOracleAblations(t *testing.T) {
	opts := []struct {
		name string
		o    pta.Options
	}{
		{"no-definite", pta.Options{NoDefinite: true}},
		{"single-array", pta.Options{SingleArrayLoc: true}},
		{"no-memo", pta.Options{NoMemo: true}},
		{"context-insensitive", pta.Options{ContextInsensitive: true}},
	}
	for _, name := range []string{"hash", "xref", "stanford", "travel", "livc"} {
		prog, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range opts {
			t.Run(name+"/"+cfg.name, func(t *testing.T) {
				res, err := pta.Analyze(prog, cfg.o)
				if err != nil {
					t.Fatal(err)
				}
				if err := RunAndCheck(res, prog, 0); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestUnionOracle checks that the collapsed union cell behaves consistently
// between the analysis and the interpreter.
func TestUnionOracle(t *testing.T) {
	src := `
union u { int *p; int *q; };
int deref(union u *pu) {
	return *pu->q;
}
int main() {
	union u v;
	int x;
	x = 7;
	v.p = &x;
	return deref(&v);
}
`
	tu, err := parser.Parse("u.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pta.Analyze(prog, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunAndCheck(res, prog, 0); err != nil {
		t.Fatal(err)
	}
	if err := RunAndCheckDeep(res, prog, 0); err != nil {
		t.Fatal(err)
	}
	// And the program computes the right value.
	ip := interp.New(prog)
	code, err := ip.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 7 {
		t.Errorf("exit = %d, want 7 (read through overlapping member)", code)
	}
}
