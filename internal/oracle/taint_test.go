package oracle

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/cc/parser"
	"repro/internal/interp"
	"repro/internal/pta"
	"repro/internal/simple"
	"repro/internal/simplify"
	"repro/internal/taint"
)

// TestTaintOracle validates the static taint checker against the dynamic
// taint oracle: the interpreter carries a shadow taint bit on every value
// and fires a sink hook whenever tainted data concretely reaches a modeled
// sink. Every definite (error-level) static diagnostic must be witnessed —
// when its flagged statement executes, the hook must fire at that statement
// with the same kind. Clean _ok fixtures must have zero error diagnostics.
func TestTaintOracle(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "taint")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".c") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatal("no taint fixtures found")
	}
	for _, file := range files {
		t.Run(file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, file))
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			tu, err := parser.Parse(file, src)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := simplify.Simplify(tu)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pta.Analyze(prog, pta.Options{RecordContexts: true})
			if err != nil {
				t.Fatal(err)
			}
			cfg := taint.DefaultConfig()
			cfg.AddSanitizers(taint.PragmaSanitizers(src)...)
			diags, err := taint.Run(res, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if strings.HasSuffix(file, "_ok.c") {
				for _, d := range diags {
					if d.Sev == taint.Error {
						t.Errorf("clean twin reports an error: %s", d)
					}
				}
				return
			}

			// pending[stmt][kind] = true until a sink event witnesses it.
			pending := make(map[*simple.Basic]map[string]bool)
			total := 0
			for _, d := range diags {
				if d.Sev != taint.Error {
					continue
				}
				if d.Stmt == nil {
					t.Errorf("error diagnostic without a statement: %s", d)
					continue
				}
				if pending[d.Stmt] == nil {
					pending[d.Stmt] = make(map[string]bool)
				}
				pending[d.Stmt][string(d.Kind)] = true
				total++
			}
			if len(diags) == 0 {
				t.Fatalf("seeded fixture %s produced no diagnostics", file)
			}
			if total == 0 {
				return // warning-only fixture (ctx.c): nothing definite to witness
			}

			ip := interp.New(prog)
			ip.MaxSteps = 500_000
			ip.Args = []string{"prog", "payload"}
			var cur *simple.Basic
			ip.Trace = func(b *simple.Basic, depth int) error {
				cur = b
				return nil
			}
			ip.OnTaintSink = func(kind string) {
				if cur == nil {
					return
				}
				if kinds, ok := pending[cur]; ok {
					delete(kinds, kind)
				}
			}
			if _, err := ip.Run(); err != nil {
				if _, ok := interp.ExitCode(err); !ok {
					t.Fatalf("execution failed: %v", err)
				}
			}
			for stmt, kinds := range pending {
				for kind := range kinds {
					t.Errorf("definite %s diagnostic at %s never witnessed at execution", kind, stmt.Pos)
				}
			}
		})
	}
}

// TestTaintOracleArgvOptIn: with no Args configured, the interpreter leaves
// main's parameters unbound exactly as before — the argv synthesis must not
// perturb the existing soundness oracle's memory model.
func TestTaintOracleArgvOptIn(t *testing.T) {
	tu, err := parser.Parse("noargs.c", `
int main(int argc, char **argv) {
    if (argc > 5) {
        system(argv[1]);
    }
    return 7;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	ip := interp.New(prog)
	code, err := ip.Run()
	if err != nil {
		t.Fatalf("run without Args: %v", err)
	}
	if code != 7 {
		t.Fatalf("exit code = %d, want 7", code)
	}
}
