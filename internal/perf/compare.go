package perf

import (
	"encoding/json"
	"fmt"
)

// This file implements the bench regression gate (ptabench -compare): a
// structural diff of two BENCH_pta.json or BENCH_scale.json reports with
// per-metric thresholds. Wall-time checks carry both a ratio threshold and
// a small absolute floor so microsecond-scale noise on tiny programs cannot
// trip the gate, and they are skipped entirely (downgraded to warnings)
// when the two reports come from different hosts.

// Thresholds configures how much regression -compare tolerates before
// failing. Zero fields take the defaults.
type Thresholds struct {
	// WallRatio fails when new wall time exceeds old*WallRatio (and the
	// absolute excess is over WallFloorMS). Default 1.5.
	WallRatio float64
	// WallFloorMS is the absolute wall-time excess (milliseconds) below
	// which a ratio breach is ignored as timer noise. Default 1ms.
	WallFloorMS float64
	// StepsRatio fails when the step count grows past old*StepsRatio.
	// Default 1.10.
	StepsRatio float64
	// MemoDrop fails when the memo hit-rate falls by more than this
	// (absolute). Default 0.05.
	MemoDrop float64
	// PeakRatio fails when the peak points-to set grows past old*PeakRatio
	// (with a small absolute slack of PeakSlack). Default 1.10.
	PeakRatio float64
	// PeakSlack is the absolute peak-set growth always tolerated. Default 4.
	PeakSlack int64
}

// DefaultThresholds are the stock gate settings.
func DefaultThresholds() Thresholds {
	return Thresholds{WallRatio: 1.5, WallFloorMS: 1, StepsRatio: 1.10, MemoDrop: 0.05, PeakRatio: 1.10, PeakSlack: 4}
}

func (t Thresholds) normalized() Thresholds {
	d := DefaultThresholds()
	if t.WallRatio <= 0 {
		t.WallRatio = d.WallRatio
	}
	if t.WallFloorMS <= 0 {
		t.WallFloorMS = d.WallFloorMS
	}
	if t.StepsRatio <= 0 {
		t.StepsRatio = d.StepsRatio
	}
	if t.MemoDrop <= 0 {
		t.MemoDrop = d.MemoDrop
	}
	if t.PeakRatio <= 0 {
		t.PeakRatio = d.PeakRatio
	}
	if t.PeakSlack <= 0 {
		t.PeakSlack = d.PeakSlack
	}
	return t
}

// Comparison is the outcome of one -compare run.
type Comparison struct {
	// Kind is "perf" or "scale", detected from the report shape.
	Kind string
	// Regressions are the threshold breaches: each fails the gate.
	Regressions []string
	// Warnings are informational (host mismatch, programs added/removed,
	// wall checks skipped).
	Warnings []string
}

// OK reports whether the gate passes.
func (c *Comparison) OK() bool { return len(c.Regressions) == 0 }

func (c *Comparison) failf(format string, args ...any) {
	c.Regressions = append(c.Regressions, fmt.Sprintf(format, args...))
}

func (c *Comparison) warnf(format string, args ...any) {
	c.Warnings = append(c.Warnings, fmt.Sprintf(format, args...))
}

// CompareReports diffs two serialized reports (old baseline, new candidate)
// under the thresholds. Both must be the same kind — BENCH_pta.json
// (PerfReport) or BENCH_scale.json (ScaleReport), detected by the
// worker_set field.
func CompareReports(oldData, newData []byte, th Thresholds) (*Comparison, error) {
	th = th.normalized()
	oldScale, err := isScaleReport(oldData)
	if err != nil {
		return nil, fmt.Errorf("old report: %w", err)
	}
	newScale, err := isScaleReport(newData)
	if err != nil {
		return nil, fmt.Errorf("new report: %w", err)
	}
	if oldScale != newScale {
		return nil, fmt.Errorf("cannot compare a perf report with a scale report")
	}
	if oldScale {
		return compareScale(oldData, newData, th)
	}
	return comparePerf(oldData, newData, th)
}

// hasDemandFields reports whether a perf report carries the demand-mode
// columns (added after the first BENCH_pta.json schema). Reports written by
// older builds lack the keys entirely; comparing against one must skip the
// demand checks instead of reading zeros as a regression.
func hasDemandFields(data []byte) bool {
	var probe struct {
		Programs []map[string]json.RawMessage `json:"programs"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	for _, p := range probe.Programs {
		if _, ok := p["wall_demand_ms"]; ok {
			return true
		}
	}
	return false
}

func isScaleReport(data []byte) (bool, error) {
	var probe struct {
		WorkerSet []int `json:"worker_set"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false, err
	}
	return probe.WorkerSet != nil, nil
}

// hostCheck records the host-mismatch warning and reports whether wall
// times are comparable.
func (c *Comparison) hostCheck(oldHost, newHost HostInfo) bool {
	switch {
	case oldHost.Zero() || newHost.Zero():
		c.warnf("host metadata missing from %s report; wall-time checks skipped",
			map[bool]string{true: "old", false: "new"}[oldHost.Zero()])
		return false
	case !oldHost.Same(newHost):
		c.warnf("reports come from different hosts (old: %s, new: %s); wall-time checks skipped",
			oldHost, newHost)
		return false
	}
	return true
}

func (c *Comparison) checkWall(label string, oldMS, newMS float64, th Thresholds) {
	if oldMS <= 0 {
		return
	}
	if newMS > oldMS*th.WallRatio && newMS-oldMS > th.WallFloorMS {
		c.failf("%s: wall time %.2fms -> %.2fms (x%.2f, threshold x%.2f)",
			label, oldMS, newMS, newMS/oldMS, th.WallRatio)
	}
}

func (c *Comparison) checkSteps(label string, oldSteps, newSteps int64, th Thresholds) {
	if oldSteps > 0 && float64(newSteps) > float64(oldSteps)*th.StepsRatio {
		c.failf("%s: steps %d -> %d (x%.3f, threshold x%.2f)",
			label, oldSteps, newSteps, float64(newSteps)/float64(oldSteps), th.StepsRatio)
	}
}

func (c *Comparison) checkPeak(label string, oldPeak, newPeak int64, th Thresholds) {
	if oldPeak > 0 && float64(newPeak) > float64(oldPeak)*th.PeakRatio &&
		newPeak-oldPeak > th.PeakSlack {
		c.failf("%s: peak set %d -> %d (x%.2f, threshold x%.2f)",
			label, oldPeak, newPeak, float64(newPeak)/float64(oldPeak), th.PeakRatio)
	}
}

func comparePerf(oldData, newData []byte, th Thresholds) (*Comparison, error) {
	var oldRep, newRep PerfReport
	if err := json.Unmarshal(oldData, &oldRep); err != nil {
		return nil, fmt.Errorf("old report: %w", err)
	}
	if err := json.Unmarshal(newData, &newRep); err != nil {
		return nil, fmt.Errorf("new report: %w", err)
	}
	c := &Comparison{Kind: "perf"}
	wallOK := c.hostCheck(oldRep.Host, newRep.Host)
	oldDemand, newDemand := hasDemandFields(oldData), hasDemandFields(newData)
	if newDemand && !oldDemand {
		c.warnf("old report predates the demand-mode columns; demand regression checks skipped")
	}

	oldByName := map[string]PerfProgram{}
	for _, p := range oldRep.Programs {
		oldByName[p.Name] = p
	}
	seen := map[string]bool{}
	for _, np := range newRep.Programs {
		seen[np.Name] = true
		op, ok := oldByName[np.Name]
		if !ok {
			c.warnf("%s: new program, no baseline", np.Name)
			continue
		}
		if !np.Identical {
			c.failf("%s: serial/parallel/nomemo results no longer identical", np.Name)
		}
		if newDemand && !np.DemandIdentical {
			c.failf("%s: demand-mode diagnostics diverge from exhaustive", np.Name)
		}
		if oldDemand && newDemand {
			if op.FactsDemand > 0 && float64(np.FactsDemand) > float64(op.FactsDemand)*th.StepsRatio {
				c.failf("%s: demand facts kept %d -> %d (x%.3f, threshold x%.2f)",
					np.Name, op.FactsDemand, np.FactsDemand,
					float64(np.FactsDemand)/float64(op.FactsDemand), th.StepsRatio)
			}
			if wallOK {
				c.checkWall(np.Name+" (demand)", op.WallDemandMS, np.WallDemandMS, th)
			}
		}
		c.checkSteps(np.Name, int64(op.Steps), int64(np.Steps), th)
		c.checkPeak(np.Name, int64(op.PeakSetLen), int64(np.PeakSetLen), th)
		if op.MemoHitRate-np.MemoHitRate > th.MemoDrop {
			c.failf("%s: memo hit-rate %.3f -> %.3f (drop %.3f, threshold %.3f)",
				np.Name, op.MemoHitRate, np.MemoHitRate,
				op.MemoHitRate-np.MemoHitRate, th.MemoDrop)
		}
		if wallOK {
			c.checkWall(np.Name+" (serial)", op.WallSerialMS, np.WallSerialMS, th)
			c.checkWall(np.Name+" (parallel)", op.WallParallelMS, np.WallParallelMS, th)
		}
	}
	for _, op := range oldRep.Programs {
		if !seen[op.Name] {
			c.warnf("%s: program disappeared from the new report", op.Name)
		}
	}
	return c, nil
}

func compareScale(oldData, newData []byte, th Thresholds) (*Comparison, error) {
	var oldRep, newRep ScaleReport
	if err := json.Unmarshal(oldData, &oldRep); err != nil {
		return nil, fmt.Errorf("old report: %w", err)
	}
	if err := json.Unmarshal(newData, &newRep); err != nil {
		return nil, fmt.Errorf("new report: %w", err)
	}
	c := &Comparison{Kind: "scale"}
	wallOK := c.hostCheck(oldRep.Host, newRep.Host)

	oldByName := map[string]ScaleProgram{}
	for _, p := range oldRep.Programs {
		oldByName[p.Name] = p
	}
	seen := map[string]bool{}
	for _, np := range newRep.Programs {
		seen[np.Name] = true
		op, ok := oldByName[np.Name]
		if !ok {
			c.warnf("%s: new program, no baseline", np.Name)
			continue
		}
		if !np.Identical {
			c.failf("%s: results diverge across worker counts", np.Name)
		}
		oldPoints := map[int]ScalePoint{}
		for _, pt := range op.Points {
			oldPoints[pt.Workers] = pt
		}
		for _, npt := range np.Points {
			opt, ok := oldPoints[npt.Workers]
			if !ok {
				c.warnf("%s workers=%d: no baseline point", np.Name, npt.Workers)
				continue
			}
			label := fmt.Sprintf("%s (workers=%d)", np.Name, npt.Workers)
			c.checkSteps(label, opt.Steps, npt.Steps, th)
			if wallOK {
				c.checkWall(label, opt.WallMS, npt.WallMS, th)
			}
		}
	}
	for _, op := range oldRep.Programs {
		if !seen[op.Name] {
			c.warnf("%s: program disappeared from the new report", op.Name)
		}
	}
	return c, nil
}
