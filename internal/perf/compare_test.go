package perf

import (
	"encoding/json"
	"strings"
	"testing"
)

func perfJSON(t *testing.T, r *PerfReport) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func scaleJSON(t *testing.T, r *ScaleReport) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func basePerf() *PerfReport {
	return &PerfReport{
		Workers: 4, Repeats: 3, Host: CurrentHost(),
		Programs: []PerfProgram{
			{Name: "csuite", Steps: 10000, WallSerialMS: 100, WallParallelMS: 60,
				MemoHitRate: 0.80, PeakSetLen: 40, Identical: true,
				WallDemandMS: 40, FactsExhaustive: 900, FactsDemand: 300,
				FactsPruned: 600, DemandIdentical: true},
			{Name: "livc", Steps: 500000, WallSerialMS: 900, WallParallelMS: 500,
				MemoHitRate: 0.90, PeakSetLen: 100, Identical: true,
				WallDemandMS: 300, FactsExhaustive: 5000, FactsDemand: 1200,
				FactsPruned: 3800, DemandIdentical: true},
		},
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	data := perfJSON(t, basePerf())
	c, err := CompareReports(data, data, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Errorf("identical reports must pass, got regressions: %v", c.Regressions)
	}
	if c.Kind != "perf" {
		t.Errorf("kind = %q, want perf", c.Kind)
	}
}

func TestCompareDetectsRegressions(t *testing.T) {
	old := basePerf()
	cases := []struct {
		name   string
		mutate func(*PerfReport)
		want   string
	}{
		{"wall", func(r *PerfReport) { r.Programs[0].WallSerialMS = 200 }, "wall time"},
		{"steps", func(r *PerfReport) { r.Programs[0].Steps = 12000 }, "steps"},
		{"memo", func(r *PerfReport) { r.Programs[0].MemoHitRate = 0.70 }, "memo hit-rate"},
		{"peak", func(r *PerfReport) { r.Programs[0].PeakSetLen = 60 }, "peak set"},
		{"identical", func(r *PerfReport) { r.Programs[0].Identical = false }, "no longer identical"},
		{"demand-identical", func(r *PerfReport) { r.Programs[0].DemandIdentical = false }, "demand-mode diagnostics diverge"},
		{"demand-facts", func(r *PerfReport) { r.Programs[0].FactsDemand = 600 }, "demand facts kept"},
		{"demand-wall", func(r *PerfReport) { r.Programs[0].WallDemandMS = 90 }, "(demand)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := basePerf()
			tc.mutate(bad)
			c, err := CompareReports(perfJSON(t, old), perfJSON(t, bad), Thresholds{})
			if err != nil {
				t.Fatal(err)
			}
			if c.OK() {
				t.Fatalf("regression %s not detected", tc.name)
			}
			if !strings.Contains(strings.Join(c.Regressions, "\n"), tc.want) {
				t.Errorf("regressions %v missing %q", c.Regressions, tc.want)
			}
		})
	}
}

func TestCompareWallNoiseFloor(t *testing.T) {
	// A 3x ratio breach whose absolute excess is microseconds must not trip
	// the gate: tiny programs have timer noise larger than their runtime.
	old := basePerf()
	old.Programs[0].WallSerialMS = 0.1
	bad := basePerf()
	bad.Programs[0].WallSerialMS = 0.3
	c, err := CompareReports(perfJSON(t, old), perfJSON(t, bad), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Errorf("sub-floor wall breach failed the gate: %v", c.Regressions)
	}
}

func TestCompareHostMismatchSkipsWall(t *testing.T) {
	old := basePerf()
	old.Host.NumCPU = 1
	bad := basePerf()
	bad.Host.NumCPU = 64
	bad.Programs[0].WallSerialMS = 10000 // huge, but wall checks are skipped
	c, err := CompareReports(perfJSON(t, old), perfJSON(t, bad), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Errorf("cross-host wall diff must not fail: %v", c.Regressions)
	}
	if !strings.Contains(strings.Join(c.Warnings, "\n"), "different hosts") {
		t.Errorf("no host-mismatch warning in %v", c.Warnings)
	}

	// Counter regressions still fail across hosts.
	bad.Programs[0].Steps = 99999
	c, err = CompareReports(perfJSON(t, old), perfJSON(t, bad), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if c.OK() {
		t.Error("steps regression must fail even across hosts")
	}
}

func TestCompareMissingHostWarns(t *testing.T) {
	old := basePerf()
	old.Host = HostInfo{}
	c, err := CompareReports(perfJSON(t, old), perfJSON(t, basePerf()), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(c.Warnings, "\n"), "host metadata missing") {
		t.Errorf("no missing-host warning in %v", c.Warnings)
	}
}

func TestCompareProgramSetChanges(t *testing.T) {
	old := basePerf()
	nw := basePerf()
	nw.Programs = nw.Programs[:1] // livc disappeared
	nw.Programs = append(nw.Programs, PerfProgram{Name: "brand-new", Identical: true})
	c, err := CompareReports(perfJSON(t, old), perfJSON(t, nw), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Errorf("program set changes are warnings, not failures: %v", c.Regressions)
	}
	joined := strings.Join(c.Warnings, "\n")
	if !strings.Contains(joined, "disappeared") || !strings.Contains(joined, "no baseline") {
		t.Errorf("missing program-set warnings in %v", c.Warnings)
	}
}

func baseScale() *ScaleReport {
	return &ScaleReport{
		Repeats: 2, Host: CurrentHost(), WorkerSet: []int{1, 2},
		Programs: []ScaleProgram{{
			Name: "gen", Source: "ptagen", Steps: 1000, Identical: true,
			Points: []ScalePoint{
				{Workers: 1, WallMS: 100, Steps: 1000, Identical: true},
				{Workers: 2, WallMS: 60, Steps: 1100, Identical: true},
			},
		}},
	}
}

func TestCompareScaleReports(t *testing.T) {
	data := scaleJSON(t, baseScale())
	c, err := CompareReports(data, data, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() || c.Kind != "scale" {
		t.Fatalf("identical scale reports: kind=%q regressions=%v", c.Kind, c.Regressions)
	}

	bad := baseScale()
	bad.Programs[0].Points[1].Steps = 2000
	c, err = CompareReports(data, scaleJSON(t, bad), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if c.OK() {
		t.Error("per-point steps regression not detected")
	}

	div := baseScale()
	div.Programs[0].Identical = false
	c, err = CompareReports(data, scaleJSON(t, div), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if c.OK() {
		t.Error("worker-count divergence not detected")
	}
}

func TestCompareKindMismatch(t *testing.T) {
	_, err := CompareReports(perfJSON(t, basePerf()), scaleJSON(t, baseScale()), Thresholds{})
	if err == nil {
		t.Error("perf vs scale comparison should error")
	}
}

func TestCompareCustomThresholds(t *testing.T) {
	old := basePerf()
	bad := basePerf()
	bad.Programs[0].Steps = 10500 // +5%: passes default 1.10, fails 1.02
	c, err := CompareReports(perfJSON(t, old), perfJSON(t, bad), Thresholds{StepsRatio: 1.02})
	if err != nil {
		t.Fatal(err)
	}
	if c.OK() {
		t.Error("tightened steps threshold not applied")
	}
}

// legacyPerfJSON strips the demand-mode keys from a serialized report,
// reproducing the schema of BENCH_pta.json files written before demand mode
// existed.
func legacyPerfJSON(t *testing.T, r *PerfReport) []byte {
	t.Helper()
	var generic struct {
		Workers    int              `json:"workers"`
		GOMAXPROCS int              `json:"gomaxprocs"`
		Repeats    int              `json:"repeats"`
		Host       HostInfo         `json:"host"`
		Programs   []map[string]any `json:"programs"`
	}
	if err := json.Unmarshal(perfJSON(t, r), &generic); err != nil {
		t.Fatal(err)
	}
	for _, p := range generic.Programs {
		for _, k := range []string{"wall_demand_ms", "facts_exhaustive", "facts_demand",
			"facts_pruned", "live_vars_p50", "demand_identical"} {
			delete(p, k)
		}
	}
	data, err := json.Marshal(&generic)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCompareOldSchemaBaseline pins the -compare forward-compat contract:
// a baseline written before the demand columns existed must not produce
// spurious demand regressions (the zero-valued fields would otherwise read
// as "facts grew from 0" and "diagnostics diverge"), only a warning that
// the demand checks were skipped.
func TestCompareOldSchemaBaseline(t *testing.T) {
	old := legacyPerfJSON(t, basePerf())
	c, err := CompareReports(old, perfJSON(t, basePerf()), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Errorf("old-schema baseline tripped the gate: %v", c.Regressions)
	}
	if !strings.Contains(strings.Join(c.Warnings, "\n"), "demand") {
		t.Errorf("expected a demand-skip warning, got %v", c.Warnings)
	}

	// Demand divergence in the new report still fails even against an old
	// baseline: the identity check needs no baseline column.
	div := basePerf()
	div.Programs[0].DemandIdentical = false
	c, err = CompareReports(old, perfJSON(t, div), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if c.OK() {
		t.Errorf("demand divergence missed against old-schema baseline")
	}

	// Two old-schema reports compare cleanly with no demand noise at all.
	c, err = CompareReports(old, old, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Errorf("old-vs-old failed: %v", c.Regressions)
	}
}
