package perf

import (
	"fmt"
	"runtime"
)

// HostInfo records where a benchmark report was produced, so the regression
// gate can warn when two reports being compared came from different
// machines (wall times across hosts are not comparable; counters are).
type HostInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// CurrentHost describes the running process's host.
func CurrentHost() HostInfo {
	return HostInfo{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

func (h HostInfo) String() string {
	return fmt.Sprintf("%s/%s cpus=%d gomaxprocs=%d %s",
		h.GOOS, h.GOARCH, h.NumCPU, h.GOMAXPROCS, h.GoVersion)
}

// Same reports whether two hosts are close enough for wall-time comparison.
func (h HostInfo) Same(o HostInfo) bool {
	return h.GOOS == o.GOOS && h.GOARCH == o.GOARCH && h.NumCPU == o.NumCPU
}

// Zero reports an absent host record (report predates host metadata).
func (h HostInfo) Zero() bool { return h == HostInfo{} }
