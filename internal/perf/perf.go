// Package perf times the points-to analysis over the benchmark suite in
// its serial, parallel and unmemoized configurations and emits the
// machine-readable report committed as BENCH_pta.json. It lives outside
// internal/bench because it depends on internal/pta, whose tests load the
// benchmark programs.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/check"
	"repro/internal/obsv"
	"repro/internal/pta"
	"repro/internal/report"
	"repro/internal/simple"
	"repro/internal/taint"
)

// PerfProgram is the performance record of one benchmark program: wall
// times of the serial, parallel and unmemoized analyses, the memoization
// and hash-consing counters, and the cross-check that all three variants
// produced byte-identical results.
type PerfProgram struct {
	Name  string `json:"name"`
	Steps int    `json:"steps"` // basic-statement evaluations (memoized)

	// Wall times in milliseconds (best of Repeats runs).
	WallSerialMS   float64 `json:"wall_serial_ms"`
	WallParallelMS float64 `json:"wall_parallel_ms"`
	WallNoMemoMS   float64 `json:"wall_nomemo_ms"`

	// Memoization: input-keyed summary-cache activity of the serial run.
	MemoHits    int     `json:"memo_hits"`
	MemoMisses  int     `json:"memo_misses"`
	MemoHitRate float64 `json:"memo_hit_rate"`

	// Hash-consing: distinct sets in the intern table and its hit rate.
	DistinctSets  int     `json:"distinct_sets"`
	InternHitRate float64 `json:"intern_hit_rate"`

	// PeakSetLen is the largest points-to set flowing into any statement.
	PeakSetLen int `json:"peak_set_len"`

	// Engine metrics of the serial run (from Result.Metrics): the
	// points-to set cardinality distribution over statements and the
	// invocation-graph evaluation effort.
	CardP50         int64 `json:"card_p50"`
	CardP90         int64 `json:"card_p90"`
	CardMax         int64 `json:"card_max"`
	NodeEvals       int64 `json:"node_evals"`
	FixpointIters   int64 `json:"fixpoint_iters"`
	PendingRestarts int64 `json:"pending_restarts"`

	// SpeedupMemo is the memoization speedup (unmemoized / memoized wall
	// time, both serial); SpeedupParallel is serial / parallel wall time.
	SpeedupMemo     float64 `json:"speedup_memo"`
	SpeedupParallel float64 `json:"speedup_parallel"`

	// Identical reports that the serial, parallel and unmemoized analyses
	// produced byte-identical canonical results.
	Identical bool `json:"identical"`

	// Taint-analysis diagnostic counts from a separate per-context run
	// (the timing runs above skip RecordContexts).
	TaintErrors   int `json:"taint_errors"`
	TaintWarnings int `json:"taint_warnings"`

	// Demand-mode comparison: a check-seeded, liveness-pruned run against
	// the exhaustive oracle. FactsExhaustive/FactsDemand count the
	// annotation triples each run kept; FactsPruned counts the triples the
	// demand run dropped at recording time; DemandIdentical reports that
	// both runs produced the same checker diagnostics.
	WallDemandMS    float64 `json:"wall_demand_ms"`
	FactsExhaustive int     `json:"facts_exhaustive"`
	FactsDemand     int     `json:"facts_demand"`
	FactsPruned     int64   `json:"facts_pruned"`
	LiveVarsP50     int64   `json:"live_vars_p50"`
	DemandIdentical bool    `json:"demand_identical"`
}

// PerfReport is the machine-readable performance report (BENCH_pta.json).
type PerfReport struct {
	Workers    int           `json:"workers"` // pool size of the parallel runs
	GOMAXPROCS int           `json:"gomaxprocs"`
	Repeats    int           `json:"repeats"` // timing runs per variant (best kept)
	Host       HostInfo      `json:"host"`
	Programs   []PerfProgram `json:"programs"`
}

// RunPerf analyzes the named benchmark programs (all of them when names is
// empty) three ways — serial memoized, parallel memoized, serial unmemoized
// — timing each with Repeats repetitions, and cross-checks that all
// variants agree byte-for-byte.
func RunPerf(names []string, workers, repeats int) (*PerfReport, error) {
	if len(names) == 0 {
		names = bench.Names()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if repeats <= 0 {
		repeats = 3
	}
	rep := &PerfReport{Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0), Repeats: repeats, Host: CurrentHost()}
	for _, name := range names {
		prog, err := bench.Load(name)
		if err != nil {
			return nil, err
		}
		p := PerfProgram{Name: name}

		serial, wall, err := timeAnalysis(prog, pta.Options{Workers: 1}, repeats)
		if err != nil {
			return nil, fmt.Errorf("%s serial: %w", name, err)
		}
		p.WallSerialMS = wall
		sm := serial.Metrics
		p.Steps = int(sm.Steps)
		p.MemoHits, p.MemoMisses = int(sm.MemoHits), int(sm.MemoMisses)
		p.MemoHitRate = sm.MemoHitRate
		p.DistinctSets = sm.InternDistinct
		p.InternHitRate = sm.InternHitRate
		p.PeakSetLen = int(sm.PeakSet)
		if m := serial.Metrics; m != nil {
			p.CardP50 = m.Cardinality.P50
			p.CardP90 = m.Cardinality.P90
			p.CardMax = m.Cardinality.Max
			p.NodeEvals = m.NodeEvals
			p.FixpointIters = m.FixpointIters
			p.PendingRestarts = m.PendingRestarts
		}

		parallel, wall, err := timeAnalysis(prog, pta.Options{Workers: workers}, repeats)
		if err != nil {
			return nil, fmt.Errorf("%s parallel: %w", name, err)
		}
		p.WallParallelMS = wall

		nomemo, wall, err := timeAnalysis(prog, pta.Options{Workers: 1, NoMemo: true}, repeats)
		if err != nil {
			return nil, fmt.Errorf("%s nomemo: %w", name, err)
		}
		p.WallNoMemoMS = wall

		if p.WallSerialMS > 0 {
			p.SpeedupMemo = p.WallNoMemoMS / p.WallSerialMS
		}
		if p.WallParallelMS > 0 {
			p.SpeedupParallel = p.WallSerialMS / p.WallParallelMS
		}
		fp := pta.Fingerprint(serial)
		p.Identical = fp == pta.Fingerprint(parallel) && fp == pta.Fingerprint(nomemo)

		ctxRes, err := pta.Analyze(prog, pta.Options{Workers: workers, RecordContexts: true})
		if err != nil {
			return nil, fmt.Errorf("%s contexts: %w", name, err)
		}
		tdiags, err := taint.Run(ctxRes, nil)
		if err != nil {
			return nil, fmt.Errorf("%s taint: %w", name, err)
		}
		p.TaintErrors, p.TaintWarnings = report.TaintDiagCounts(tdiags)

		// Demand run seeded for the pointer checker, timed against the
		// exhaustive serial run above. The exhaustive fact count comes from
		// that serial run; equivalence is judged on checker diagnostics.
		demand, wall, err := timeAnalysis(prog,
			pta.Options{Workers: 1, Demand: check.DemandSeeds(prog), RecordContexts: true}, repeats)
		if err != nil {
			return nil, fmt.Errorf("%s demand: %w", name, err)
		}
		p.WallDemandMS = wall
		p.FactsExhaustive = serial.Annots.TotalFacts()
		p.FactsDemand = demand.Annots.TotalFacts()
		p.FactsPruned = demand.Metrics.FactsPruned
		p.LiveVarsP50 = demand.Metrics.LiveVars.P50
		exDiags, err := check.Run(ctxRes)
		if err != nil {
			return nil, fmt.Errorf("%s check: %w", name, err)
		}
		dmDiags, err := check.Run(demand)
		if err != nil {
			return nil, fmt.Errorf("%s demand check: %w", name, err)
		}
		p.DemandIdentical = fmt.Sprint(exDiags) == fmt.Sprint(dmDiags)

		rep.Programs = append(rep.Programs, p)
	}
	return rep, nil
}

// timeAnalysis runs the analysis repeats times and returns the last result
// with the best (minimum) wall time in milliseconds.
func timeAnalysis(prog *simple.Program, opts pta.Options, repeats int) (*pta.Result, float64, error) {
	var res *pta.Result
	best := 0.0
	for i := 0; i < repeats; i++ {
		start := time.Now()
		r, err := pta.Analyze(prog, opts)
		if err != nil {
			return nil, 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if i == 0 || ms < best {
			best = ms
		}
		res = r
	}
	return res, best, nil
}

// TracePrograms analyzes each named benchmark (all when names is empty)
// once with tracing enabled and returns the per-program event groups, ready
// for obsv.WriteChromeTraceProcs — the whole suite renders as one Perfetto
// trace with one process per program.
func TracePrograms(names []string, workers int) ([]obsv.Process, error) {
	if len(names) == 0 {
		names = bench.Names()
	}
	var procs []obsv.Process
	for i, name := range names {
		prog, err := bench.Load(name)
		if err != nil {
			return nil, err
		}
		tr := obsv.NewTracer(0, 0)
		if _, err := pta.Analyze(prog, pta.Options{Workers: workers, Tracer: tr}); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		procs = append(procs, obsv.Process{Pid: i + 1, Name: name, Events: tr.Events()})
	}
	return procs, nil
}

// ExplainDivergence re-analyzes one benchmark under the serial, parallel and
// unmemoized configurations and renders a human-readable report of how they
// differ: the first diverging fingerprint lines and the per-function cost
// tables of the disagreeing variants. Used by ptabench -verify to turn a
// bare "results diverge" failure into something debuggable.
func ExplainDivergence(w io.Writer, name string, workers int) error {
	prog, err := bench.Load(name)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	variants := []struct {
		label string
		opts  pta.Options
	}{
		{"serial", pta.Options{Workers: 1}},
		{fmt.Sprintf("parallel(%d)", workers), pta.Options{Workers: workers}},
		{"nomemo", pta.Options{Workers: 1, NoMemo: true}},
	}
	type run struct {
		label string
		fp    string
		res   *pta.Result
	}
	runs := make([]run, len(variants))
	for i, v := range variants {
		res, err := pta.Analyze(prog, v.opts)
		if err != nil {
			return fmt.Errorf("%s %s: %w", name, v.label, err)
		}
		runs[i] = run{label: v.label, fp: pta.Fingerprint(res), res: res}
	}
	fmt.Fprintf(w, "divergence report for %s:\n", name)
	base := runs[0]
	for _, r := range runs[1:] {
		if r.fp == base.fp {
			fmt.Fprintf(w, "  %s == %s\n", base.label, r.label)
			continue
		}
		line, a, b := firstDiffLine(base.fp, r.fp)
		fmt.Fprintf(w, "  %s != %s, first difference at fingerprint line %d:\n", base.label, r.label, line)
		fmt.Fprintf(w, "    %-12s %s\n", base.label+":", a)
		fmt.Fprintf(w, "    %-12s %s\n", r.label+":", b)
		fmt.Fprintf(w, "  per-function cost, %s:\n", base.label)
		report.WriteCostTable(w, base.res.Metrics.Funcs, 10)
		fmt.Fprintf(w, "  per-function cost, %s:\n", r.label)
		report.WriteCostTable(w, r.res.Metrics.Funcs, 10)
	}
	return nil
}

// firstDiffLine returns the 1-based line number and the two lines where the
// fingerprints first disagree ("<end of output>" when one is a prefix of the
// other).
func firstDiffLine(a, b string) (int, string, string) {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) || i < len(lb); i++ {
		va, vb := "<end of output>", "<end of output>"
		if i < len(la) {
			va = la[i]
		}
		if i < len(lb) {
			vb = lb[i]
		}
		if va != vb {
			return i + 1, va, vb
		}
	}
	return 0, "", ""
}

// SortBySteps returns the report's program names ordered by descending
// analysis effort — the "largest" programs for smoke checks.
func (r *PerfReport) SortBySteps() []string {
	ps := append([]PerfProgram{}, r.Programs...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Steps > ps[j].Steps })
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// WriteJSON emits the report as indented JSON.
func (r *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the report as an aligned text table.
func (r *PerfReport) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "points-to analysis performance (workers=%d, best of %d runs)\n\n", r.Workers, r.Repeats)
	fmt.Fprintf(w, "%-11s %9s %9s %9s %9s %9s %7s %7s %6s %8s %11s %7s %5s\n",
		"program", "serial", "parallel", "nomemo", "demand", "steps", "memo%", "intern%", "peak", "distinct", "facts dm/ex", "taint", "ok")
	for _, p := range r.Programs {
		ok := p.Identical && p.DemandIdentical
		fmt.Fprintf(w, "%-11s %7.2fms %7.2fms %7.2fms %7.2fms %9d %6.1f%% %6.1f%% %6d %8d %11s %7s %5v\n",
			p.Name, p.WallSerialMS, p.WallParallelMS, p.WallNoMemoMS, p.WallDemandMS, p.Steps,
			100*p.MemoHitRate, 100*p.InternHitRate, p.PeakSetLen, p.DistinctSets,
			fmt.Sprintf("%d/%d", p.FactsDemand, p.FactsExhaustive),
			fmt.Sprintf("%dE/%dW", p.TaintErrors, p.TaintWarnings), ok)
	}
}
