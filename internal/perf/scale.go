package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/ptagen"
	"repro/internal/simple"
	"repro/internal/simplify"
)

// This file implements the -scale mode: wall-time trajectories of the same
// analysis at increasing worker counts, with the scheduler and shard
// counters that explain where the time went. The committed artifact is
// BENCH_scale.json.

// ScalePoint is one (program, worker count) measurement.
type ScalePoint struct {
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"` // best of Repeats runs

	// Speedup is the workers=1 wall time of the same program divided by
	// this point's wall time.
	Speedup float64 `json:"speedup"`

	// Identical reports that this point's canonical result fingerprint is
	// byte-identical to the workers=1 fingerprint.
	Identical bool `json:"identical"`

	// Steps is the basic-statement evaluation count at this worker count.
	// The *result* is bit-identical at every worker count, but the effort
	// to reach it need not be: evaluation order changes how fast recursive
	// fixpoints converge and which memo entries exist when a context is
	// re-entered, so steps can differ between worker counts (and explain
	// wall-time differences that hardware parallelism cannot, e.g. on a
	// single-CPU host).
	Steps int64 `json:"steps"`

	// Scheduler activity: fan-out branches enqueued, branches taken from
	// another worker's deque, and times a worker parked empty-handed.
	SchedTasks  int64 `json:"sched_tasks"`
	SchedSteals int64 `json:"sched_steals"`
	SchedParks  int64 `json:"sched_parks"`

	// Sharded-structure contention: lock acquisitions on the points-to
	// interner and the location table that found the shard already held.
	InternShards    int    `json:"intern_shards"`
	InternContended uint64 `json:"intern_contended"`
	LocShards       int    `json:"loc_shards"`
	LocContended    uint64 `json:"loc_contended"`
}

// ScaleProgram is the trajectory of one program across the worker set.
type ScaleProgram struct {
	Name string `json:"name"`
	// Source records where the program came from: "builtin" (bench suite),
	// "file" (-scale-file) or "ptagen" (generated in-process).
	Source      string `json:"source"`
	Functions   int    `json:"functions"`
	SourceStmts int    `json:"source_stmts"`
	Steps       int    `json:"steps"` // basic-statement evaluations at workers=1

	Points []ScalePoint `json:"points"`

	// Identical is the conjunction of every point's Identical flag.
	Identical bool `json:"identical"`
}

// ScaleReport is the machine-readable scaling report (BENCH_scale.json).
type ScaleReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Repeats    int            `json:"repeats"`
	Host       HostInfo       `json:"host"`
	WorkerSet  []int          `json:"worker_set"`
	Programs   []ScaleProgram `json:"programs"`
}

// ScaleTarget is one program to measure.
type ScaleTarget struct {
	Name   string
	Source string
	Prog   *simple.Program
}

// ScaleTargetFromBench loads a builtin benchmark program.
func ScaleTargetFromBench(name string) (ScaleTarget, error) {
	prog, err := bench.Load(name)
	if err != nil {
		return ScaleTarget{}, err
	}
	return ScaleTarget{Name: name, Source: "builtin", Prog: prog}, nil
}

// ScaleTargetFromFile parses a C file from disk (e.g. one emitted by
// cmd/ptagen).
func ScaleTargetFromFile(path string) (ScaleTarget, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return ScaleTarget{}, err
	}
	tu, err := parser.Parse(path, string(src))
	if err != nil {
		return ScaleTarget{}, fmt.Errorf("%s: %w", path, err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		return ScaleTarget{}, fmt.Errorf("%s: %w", path, err)
	}
	return ScaleTarget{Name: path, Source: "file", Prog: prog}, nil
}

// ScaleTargetFromGen generates a program in-process from a ptagen
// configuration.
func ScaleTargetFromGen(cfg ptagen.Config) (ScaleTarget, error) {
	prog, meta, err := ptagen.Load(cfg)
	if err != nil {
		return ScaleTarget{}, err
	}
	return ScaleTarget{Name: meta.Name, Source: "ptagen", Prog: prog}, nil
}

// RunScale measures each target at every worker count in workerSet (default
// 1, 2, 4, 8; a leading 1 is forced since it is the speedup baseline and the
// fingerprint reference), keeping the best of repeats wall times, and
// records the scheduler and shard-contention counters of the best-timed run.
func RunScale(targets []ScaleTarget, workerSet []int, repeats int) (*ScaleReport, error) {
	if len(workerSet) == 0 {
		workerSet = []int{1, 2, 4, 8}
	}
	if workerSet[0] != 1 {
		workerSet = append([]int{1}, workerSet...)
	}
	if repeats <= 0 {
		repeats = 1
	}
	rep := &ScaleReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Repeats:    repeats,
		Host:       CurrentHost(),
		WorkerSet:  workerSet,
	}
	for _, t := range targets {
		sp := ScaleProgram{
			Name:        t.Name,
			Source:      t.Source,
			Functions:   len(t.Prog.Functions),
			SourceStmts: t.Prog.NumStmts,
			Identical:   true,
		}
		var baseWall float64
		var baseFP string
		for _, w := range workerSet {
			res, wall, err := timeAnalysis(t.Prog, pta.Options{Workers: w}, repeats)
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", t.Name, w, err)
			}
			pt := ScalePoint{Workers: w, WallMS: wall}
			if m := res.Metrics; m != nil {
				pt.Steps = m.Steps
				pt.SchedTasks = m.SchedTasks
				pt.SchedSteals = m.SchedSteals
				pt.SchedParks = m.SchedParks
				pt.InternShards = m.InternShards
				pt.InternContended = m.InternContended
				pt.LocShards = m.LocShards
				pt.LocContended = m.LocContended
			}
			fp := pta.Fingerprint(res)
			if w == 1 {
				baseWall, baseFP = wall, fp
				sp.Steps = int(res.Metrics.Steps)
			}
			pt.Identical = fp == baseFP
			if pt.WallMS > 0 {
				pt.Speedup = baseWall / pt.WallMS
			}
			sp.Identical = sp.Identical && pt.Identical
			sp.Points = append(sp.Points, pt)
		}
		rep.Programs = append(rep.Programs, sp)
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON.
func (r *ScaleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the report as an aligned text table, one line per
// (program, worker count).
func (r *ScaleReport) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "scaling trajectory (gomaxprocs=%d, cpus=%d, best of %d runs)\n\n",
		r.GOMAXPROCS, r.NumCPU, r.Repeats)
	fmt.Fprintf(w, "%-24s %8s %10s %8s %9s %9s %8s %8s %10s %10s %5s\n",
		"program", "workers", "wall", "speedup", "steps", "tasks", "steals", "parks", "intern-cd", "loc-cd", "ok")
	for _, p := range r.Programs {
		for _, pt := range p.Points {
			fmt.Fprintf(w, "%-24s %8d %8.1fms %7.2fx %9d %9d %8d %8d %10d %10d %5v\n",
				p.Name, pt.Workers, pt.WallMS, pt.Speedup, pt.Steps,
				pt.SchedTasks, pt.SchedSteals, pt.SchedParks,
				pt.InternContended, pt.LocContended, pt.Identical)
		}
	}
}
