package pta

import (
	"sync"

	"repro/internal/pta/invgraph"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// Annotations accumulates the program-point-specific points-to information:
// for every basic statement, the merge of the input points-to sets over all
// analyzed calling contexts. Tables 3–5 of the paper are computed from it.
//
// With per-context recording enabled (Options.RecordContexts) it also keeps
// the merged input per invocation-graph node, so clients such as the
// memory-safety checker can distinguish "bad in every calling context"
// (definite error) from "bad in some context" (possible warning).
type Annotations struct {
	mu sync.Mutex
	in map[*simple.Basic]ptset.Set

	// perNode, when non-nil, holds for each statement the merged input per
	// invocation-graph node that reached it. A node can reach a statement
	// several times (recursion iterations, memoized re-analysis); merging
	// only weakens definiteness, so a relationship definite in the merged
	// set was definite on every real visit.
	perNode map[*simple.Basic]map[*invgraph.Node]ptset.Set
}

// NewAnnotations returns an empty annotation store.
func NewAnnotations() *Annotations {
	return &Annotations{in: make(map[*simple.Basic]ptset.Set)}
}

// EnableContexts turns on per-invocation-graph-node recording.
func (a *Annotations) EnableContexts() {
	if a.perNode == nil {
		a.perNode = make(map[*simple.Basic]map[*invgraph.Node]ptset.Set)
	}
}

// ContextsEnabled reports whether per-node recording is on.
func (a *Annotations) ContextsEnabled() bool { return a.perNode != nil }

// Record merges the input set flowing into b, attributed to the
// invocation-graph node ign (which may be nil for synthetic contexts).
// Safe for concurrent use; Merge is commutative and associative, so the
// accumulated annotation is independent of recording order.
func (a *Annotations) Record(b *simple.Basic, in ptset.Set, ign *invgraph.Node) {
	if in.IsBottom() {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if old, ok := a.in[b]; ok {
		a.in[b] = ptset.Merge(old, in)
	} else {
		a.in[b] = in.Clone()
	}
	if a.perNode == nil || ign == nil {
		return
	}
	m := a.perNode[b]
	if m == nil {
		m = make(map[*invgraph.Node]ptset.Set)
		a.perNode[b] = m
	}
	if old, ok := m[ign]; ok {
		m[ign] = ptset.Merge(old, in)
	} else {
		m[ign] = in.Clone()
	}
}

// At returns the merged points-to set flowing into b and whether the
// statement was ever reached.
func (a *Annotations) At(b *simple.Basic) (ptset.Set, bool) {
	s, ok := a.in[b]
	return s, ok
}

// ContextsAt returns the per-invocation-graph-node inputs recorded for b.
// Empty unless EnableContexts was called before the analysis ran.
func (a *Annotations) ContextsAt(b *simple.Basic) map[*invgraph.Node]ptset.Set {
	if a.perNode == nil {
		return nil
	}
	return a.perNode[b]
}

// Len returns the number of annotated statements.
func (a *Annotations) Len() int { return len(a.in) }

// TotalFacts returns the total number of triples recorded across all
// merged per-statement annotations — the memory the demand mode's pruning
// saves. Not safe to call concurrently with Record.
func (a *Annotations) TotalFacts() int {
	n := 0
	for _, s := range a.in {
		n += s.Len()
	}
	return n
}
