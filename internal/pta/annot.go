package pta

import (
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// Annotations accumulates the program-point-specific points-to information:
// for every basic statement, the merge of the input points-to sets over all
// analyzed calling contexts. Tables 3–5 of the paper are computed from it.
type Annotations struct {
	in map[*simple.Basic]ptset.Set
}

// NewAnnotations returns an empty annotation store.
func NewAnnotations() *Annotations {
	return &Annotations{in: make(map[*simple.Basic]ptset.Set)}
}

// Record merges the input set flowing into b.
func (a *Annotations) Record(b *simple.Basic, in ptset.Set) {
	if in.IsBottom() {
		return
	}
	if old, ok := a.in[b]; ok {
		a.in[b] = ptset.Merge(old, in)
		return
	}
	a.in[b] = in.Clone()
}

// At returns the merged points-to set flowing into b and whether the
// statement was ever reached.
func (a *Annotations) At(b *simple.Basic) (ptset.Set, bool) {
	s, ok := a.in[b]
	return s, ok
}

// Len returns the number of annotated statements.
func (a *Annotations) Len() int { return len(a.in) }
