package pta

import (
	"repro/internal/obsv"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// basicKindNames gives low-cardinality span names for basic statements, so
// trace viewers can aggregate transfer-function time by statement shape.
var basicKindNames = [...]string{
	simple.AsgnCopy:    "copy",
	simple.AsgnAddr:    "addr",
	simple.AsgnUnary:   "unary",
	simple.AsgnBinary:  "binary",
	simple.AsgnMalloc:  "malloc",
	simple.AsgnCall:    "call",
	simple.AsgnCallInd: "call-indirect",
	simple.StmtNop:     "nop",
}

func basicKindName(k simple.BasicKind) string {
	if int(k) < len(basicKindNames) {
		return basicKindNames[k]
	}
	return "basic"
}

// processBasic implements process_basic_stmt of Figure 1, dispatching call
// statements to the interprocedural machinery.
func (a *analyzer) processBasic(b *simple.Basic, in ptset.Set, ign *invgraph.Node, tk obsv.Track) ptset.Set {
	a.step()
	if a.live != nil {
		in = a.demandPrune(b, in)
	}
	// The cardinality histogram's internal max doubles as the peak-set
	// gauge, so the hot path pays for one instrument, not two.
	a.m.Cardinality.Observe(int64(in.Len()))
	if a.live == nil {
		a.ann.Record(b, in, ign)
	} else if a.live.Seeded(b) {
		a.ann.Record(b, in, ign)
		a.m.DemandFactsKept.Add(int64(in.Len()))
	}
	if a.tracer != nil {
		sp := a.tracer.Begin(tk, obsv.CatBasic, basicKindName(b.Kind), b.Pos.String())
		defer sp.End()
	}

	switch b.Kind {
	case simple.AsgnCall:
		return a.processDirectCall(b, in, ign, tk)
	case simple.AsgnCallInd:
		return a.processIndirectCall(b, in, ign, tk)
	case simple.StmtNop:
		return in
	}

	if !isPointerStmt(b) {
		return in
	}
	lls := a.llocs(b.LHS, in)
	rls := a.rlocs(b, in)
	out := in.Clone()
	a.applyAssign(out, lls, rls)
	return out
}

// applyAssign mutates s with the kill/change/gen sets of a pointer
// assignment: L-locations lls receive the R-locations rls.
//
//	kill:   all relationships from definite, single L-locations
//	change: definite relationships from possible or multi L-locations
//	        become possible
//	gen:    every (L-location, R-location) pair; definite only when both
//	        derivations are definite and the source represents a single
//	        real location. (A definite relationship *to* a multi location
//	        such as a_tail is allowed — Table 1 gives &a[i>0] the R-set
//	        {(a_tail, D)} — because only source-side definiteness drives
//	        strong kills.)
func (a *analyzer) applyAssign(s ptset.Set, lls, rls []locD) {
	for _, p := range lls {
		if p.d == ptset.D && !p.l.Multi() && !a.opts.NoDefinite {
			s.Kill(p.l)
		} else {
			s.Weaken(p.l)
		}
	}
	for _, p := range lls {
		for _, x := range rls {
			d := p.d.And(x.d)
			if p.l.Multi() || a.opts.NoDefinite {
				d = ptset.P
			}
			s.Insert(p.l, x.l, d)
		}
	}
}

// externalReturnsArg maps library functions that return one of their
// pointer arguments to the argument index (strcpy returns its destination,
// and so on). Other externals have no effect on stack points-to
// relationships.
var externalReturnsArg = map[string]int{
	"strcpy":  0,
	"strncpy": 0,
	"strcat":  0,
	"memcpy":  0,
	"memmove": 0,
	"memset":  0,
	"fgets":   0,
}

// ExternalReturnsArg reports whether the named external library function is
// modeled as returning one of its pointer arguments, and which one. Exposed
// so baseline analyses can model the same externals and stay comparable.
func ExternalReturnsArg(name string) (int, bool) {
	idx, ok := externalReturnsArg[name]
	return idx, ok
}

// processExternalCall models a call to a function with no body in the
// program (libc stubs). The modeled functions do not create or destroy
// stack points-to relationships except through their returned pointer —
// except free, which retargets heap relationships to the freed location.
func (a *analyzer) processExternalCall(b *simple.Basic, in ptset.Set) ptset.Set {
	if b.Callee.Name == "free" {
		return a.processFree(b, in)
	}
	if b.LHS == nil || !isPointerStmt(b) {
		return in
	}
	var rls []locD
	if idx, ok := externalReturnsArg[b.Callee.Name]; ok && idx < len(b.Args) {
		rls = a.rlocsOfOperand(b.Args[idx], in)
	} else {
		a.diagf("%s: call to external %s with pointer result treated as NULL",
			b.Pos, b.Callee.Name)
		rls = []locD{{a.tab.NullLoc(), ptset.P}}
	}
	out := in.Clone()
	a.applyAssign(out, a.llocs(b.LHS, in), rls)
	return out
}

// processFree models free(p): every relationship (l, heap, d) where l is an
// L-location of the argument is retargeted to (l, freed, ·). When the
// argument definitely denotes a single location, the heap edge is killed
// outright (a strong update: after the call that pointer definitely no
// longer addresses live heap storage); otherwise the heap edge stays and a
// possible freed edge is added alongside it. Aliases of p are untouched —
// they still carry (·, heap, ·) edges, which keeps the abstraction sound for
// the live heap objects the single heap location also stands for.
func (a *analyzer) processFree(b *simple.Basic, in ptset.Set) ptset.Set {
	if len(b.Args) != 1 {
		return in
	}
	arg, ok := b.Args[0].(*simple.Ref)
	if !ok {
		return in
	}
	freed := a.tab.FreedLoc()
	out := in.Clone()
	for _, ld := range a.llocs(arg, in) {
		strong := ld.d == ptset.D && !ld.l.Multi() && !a.opts.NoDefinite
		for _, t := range in.Targets(ld.l) {
			if t.Dst.Kind != loc.Heap {
				continue
			}
			if strong {
				out.Remove(ld.l, t.Dst)
				out.Insert(ld.l, freed, t.Def)
			} else {
				out.Insert(ld.l, freed, ptset.P)
			}
		}
	}
	return out
}
