package pta

import (
	"repro/internal/obsv"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// ciSummary is the per-function state of the context-insensitive variant
// (Options.ContextInsensitive): one merged input and one output summary per
// function, instead of one per invocation path.
type ciSummary struct {
	in, out ptset.Set
	node    *invgraph.Node // canonical node carrying the merged input
	running bool
}

// processCI analyzes fn against the merge of every input seen so far and
// returns its (monotonically growing) output summary. Convergence across
// mutual recursion is driven by the global rounds in run().
func (a *analyzer) processCI(fn *simple.Function, funcInput ptset.Set, tk obsv.Track) ptset.Set {
	s := a.ci[fn]
	if s == nil {
		s = &ciSummary{
			in:   ptset.NewBottom(),
			out:  ptset.NewBottom(),
			node: &invgraph.Node{Fn: fn},
		}
		a.ci[fn] = s
	}
	newIn := ptset.Merge(s.in, funcInput)
	if !ptset.Equal(newIn, s.in) {
		s.in = newIn
		a.ciChanged = true
	}
	if s.running {
		return s.out // recursive re-entry: current approximation
	}
	s.running = true
	a.m.NodeEvals.Inc()
	fc := a.m.Func(fn.Name())
	fc.Evals.Inc()
	for iter := 0; ; iter++ {
		s.node.StoredInput = s.in
		s.node.HasInput = true
		out := a.analyzeBody(s.node, tk)
		if iter > 0 {
			a.m.FixpointIters.Inc()
			fc.FixpointIters.Inc()
		}
		if ptset.Subset(out, s.out) {
			break
		}
		s.out = ptset.Merge(s.out, out)
		a.ciChanged = true
	}
	s.running = false
	return s.out
}

// runCI drives the context-insensitive analysis to a global fixed point.
func (a *analyzer) runCI(mainFn *simple.Function, entry ptset.Set) {
	a.ci = make(map[*simple.Function]*ciSummary)
	const maxRounds = 1000
	for round := 0; ; round++ {
		a.ciChanged = false
		a.mainOut = a.processCI(mainFn, entry, 0)
		if !a.ciChanged {
			return
		}
		if round >= maxRounds {
			a.diagf("context-insensitive analysis did not converge in %d rounds", maxRounds)
			return
		}
	}
}
