package pta

import (
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// demandPrune drops from the set flowing into b every fact whose source is
// rooted at a variable the liveness pass proves dead at b. The liveness
// pass pins everything any later transfer, map/unmap, client read, or
// demand seed could touch, so the surviving facts evolve exactly as they
// do in the exhaustive run — pruning is a pure function of (statement,
// set), which keeps memoized summaries and parallel evaluation orders
// bit-identical for every worker count.
func (a *analyzer) demandPrune(b *simple.Basic, in ptset.Set) ptset.Set {
	if in.IsBottom() {
		return in
	}
	a.m.LiveVars.Observe(int64(a.live.LiveCount(b)))
	var dead []*loc.Location
	in.Range(func(t ptset.Triple) {
		if t.Src.Kind != loc.Var {
			return
		}
		if a.live.Prunable(b, t.Src.Obj) {
			dead = append(dead, t.Src)
		}
	})
	if len(dead) == 0 {
		return in
	}
	out := in.Clone()
	for _, s := range dead {
		out.Kill(s)
	}
	a.m.FactsPruned.Add(int64(in.Len() - out.Len()))
	return out
}
