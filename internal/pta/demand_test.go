package pta_test

// Differential matrix for demand mode: for every seeded statement and
// every demanded variable, the pruned engine must report exactly the
// triples the exhaustive engine reports, at every worker count, with
// identical diagnostics. This is the correctness contract of
// Options.Demand (exhaustive mode is the oracle).

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/ast"
	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/pta/live"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/ptagen"
	"repro/internal/simple"
	"repro/internal/simplify"
)

func loadSource(t testing.TB, name, src string) *simple.Program {
	t.Helper()
	tu, err := parser.Parse(name, src)
	if err != nil {
		t.Fatalf("%s: Parse: %v", name, err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("%s: Simplify: %v", name, err)
	}
	return prog
}

// derefSeeds seeds every statement that dereferences a pointer — the shape
// of a checker-style demand — without pinning globals, so the
// interprocedural global-liveness propagation is actually exercised.
func derefSeeds(prog *simple.Program) *live.Seeds {
	s := live.NewSeeds()
	prog.ForEachBasic(func(b *simple.Basic) {
		for _, r := range b.Refs() {
			if r.Deref {
				s.AddStmtRefs(b)
				return
			}
		}
	})
	return s
}

// factsOf renders the triples of set rooted at obj, sorted.
func factsOf(s ptset.Set, obj *ast.Object) []string {
	var out []string
	s.Range(func(t ptset.Triple) {
		if t.Src.Kind == loc.Var && t.Src.Obj == obj {
			out = append(out, t.String())
		}
	})
	sort.Strings(out)
	return out
}

// diffDemand analyzes prog exhaustively and in demand mode and fails the
// test on the first seeded fact or diagnostic that differs.
func diffDemand(t testing.TB, name string, prog *simple.Program, seeds *live.Seeds, workers int) (*pta.Result, *pta.Result) {
	t.Helper()
	ex, err := pta.Analyze(prog, pta.Options{Workers: workers})
	if err != nil {
		t.Fatalf("%s: exhaustive: %v", name, err)
	}
	dm, err := pta.Analyze(prog, pta.Options{Workers: workers, Demand: seeds})
	if err != nil {
		t.Fatalf("%s: demand: %v", name, err)
	}
	if ex, dm := strings.Join(ex.Diags, "\n"), strings.Join(dm.Diags, "\n"); ex != dm {
		t.Fatalf("%s (workers=%d): diagnostics diverge\nexhaustive:\n%s\ndemand:\n%s", name, workers, ex, dm)
	}
	checked := 0
	prog.ForEachBasic(func(b *simple.Basic) {
		if t.Failed() || !seeds.Seeded(b) {
			return
		}
		exSet, exOK := ex.Annots.At(b)
		dmSet, ok := dm.Annots.At(b)
		if !exOK {
			// Unreached in the oracle (dead function or unreachable
			// path) — demand must agree it is unreached.
			if ok {
				t.Errorf("%s (workers=%d): stmt %d @%s recorded in demand mode but unreached exhaustively", name, workers, b.ID, b.Pos)
			}
			return
		}
		if !ok {
			t.Errorf("%s (workers=%d): stmt %d @%s seeded but unrecorded in demand mode", name, workers, b.ID, b.Pos)
			return
		}
		for _, v := range seeds.Demanded(b) {
			exF, dmF := factsOf(exSet, v), factsOf(dmSet, v)
			checked++
			if fmt.Sprint(exF) != fmt.Sprint(dmF) {
				t.Errorf("%s (workers=%d): stmt %d @%s, var %s:\nexhaustive: %v\ndemand:     %v",
					name, workers, b.ID, b.Pos, v.Name, exF, dmF)
			}
		}
	})
	if checked == 0 && seeds.Len() > 0 {
		t.Errorf("%s: differential checked no facts (%d seeded stmts)", name, seeds.Len())
	}
	return ex, dm
}

func TestDemandEquivalenceBench(t *testing.T) {
	for _, name := range bench.Names() {
		t.Run(name, func(t *testing.T) {
			prog, err := bench.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				diffDemand(t, name, prog, derefSeeds(prog), workers)
			}
		})
	}
}

func TestDemandEquivalenceExamples(t *testing.T) {
	for _, dir := range []string{"check", "race", "taint"} {
		files, err := filepath.Glob(filepath.Join("..", "..", "examples", dir, "*.c"))
		if err != nil || len(files) == 0 {
			t.Fatalf("no examples in %s: %v", dir, err)
		}
		for _, f := range files {
			t.Run(dir+"/"+filepath.Base(f), func(t *testing.T) {
				src, err := os.ReadFile(f)
				if err != nil {
					t.Fatal(err)
				}
				prog := loadSource(t, filepath.Base(f), string(src))
				for _, workers := range []int{1, 2, 8} {
					diffDemand(t, f, prog, derefSeeds(prog), workers)
				}
				// The degenerate all-seeds demand must match exhaustive
				// at every statement for every referenced variable.
				prog2 := loadSource(t, filepath.Base(f), string(src))
				diffDemand(t, f+"/all-seeds", prog2, live.SeedAllStatements(prog2), 1)
			})
		}
	}
}

// TestDemandEquivalencePtagen runs the differential on generated corpus
// programs: the small preset always, the mid preset behind the same
// environment gate the scale differential uses.
func TestDemandEquivalencePtagen(t *testing.T) {
	presets := []string{"small"}
	if os.Getenv("PTAGEN_DIFF_LARGE") != "" {
		presets = append(presets, "mid")
	}
	for _, preset := range presets {
		t.Run(preset, func(t *testing.T) {
			cfg := ptagen.Presets[preset]
			cfg.Seed = 7
			src, _ := ptagen.Generate(cfg)
			prog := loadSource(t, preset+".c", src)
			for _, workers := range []int{1, 2, 8} {
				diffDemand(t, preset, prog, derefSeeds(prog), workers)
			}
		})
	}
}

// TestDemandPrunesFacts asserts the point of the mode: on a real workload
// a checker-style demand records fewer facts than exhaustive and the
// pruning counters account for dropped triples.
func TestDemandPrunesFacts(t *testing.T) {
	prog, err := bench.Load("hash")
	if err != nil {
		t.Fatal(err)
	}
	ex, dm := diffDemand(t, "hash", prog, derefSeeds(prog), 1)
	if dm.Metrics.FactsPruned == 0 {
		t.Errorf("demand mode pruned no facts")
	}
	if dm.Metrics.DemandFactsKept == 0 {
		t.Errorf("demand mode recorded no facts")
	}
	exFacts, dmFacts := ex.Annots.TotalFacts(), dm.Annots.TotalFacts()
	if dmFacts >= exFacts {
		t.Errorf("demand kept %d annotation facts, exhaustive %d — no reduction", dmFacts, exFacts)
	}
	if dm.Live == nil || dm.Live.TrackedVars() == 0 {
		t.Errorf("no tracked variables in liveness info")
	}
}

func FuzzDemandEquivalence(f *testing.F) {
	f.Add(uint16(1), uint8(3), uint8(2), uint8(1), false)
	f.Add(uint16(7), uint8(4), uint8(3), uint8(0), true)
	f.Add(uint16(42), uint8(2), uint8(4), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed uint16, depth, width, fnptr uint8, recurse bool) {
		// Sizes are clamped below the "small" preset: the fuzz engine
		// kills workers that spend tens of seconds on one input, and
		// the differential analyzes each program four times.
		cfg := ptagen.Presets["small"]
		cfg.Seed = int64(seed)
		cfg.Depth = 1 + int(depth%3)
		cfg.Width = 1 + int(width%3)
		cfg.StmtsPerFunc = 8
		cfg.FnPtrDensity = float64(fnptr%4) / 4
		if recurse {
			cfg.Recursion = 0.5
		}
		src, _ := ptagen.Generate(cfg)
		prog := loadSource(t, "fuzz.c", src)
		diffDemand(t, "fuzz", prog, derefSeeds(prog), 1)
		prog2 := loadSource(t, "fuzz.c", src)
		diffDemand(t, "fuzz/w8", prog2, derefSeeds(prog2), 8)
	})
}
