package pta_test

import (
	"sync"
	"testing"

	"repro/internal/cc/ast"
	"repro/internal/pta"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// TestDeterministicAcrossRunsAndWorkers re-analyzes every fixture ten times
// for each worker count and requires the canonical rendering of the result
// to be byte-identical on every run: the parallel evaluator must not leak
// scheduling order into any reported fact, diagnostic, or the invocation
// graph itself.
func TestDeterministicAcrossRunsAndWorkers(t *testing.T) {
	const runs = 10
	workerCounts := []int{1, 2, 8}
	for _, fx := range loadFixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			var want string
			for _, w := range workerCounts {
				for run := 0; run < runs; run++ {
					got := pta.Fingerprint(analyze(t, fx.prog, pta.Options{Workers: w}))
					if want == "" {
						want = got
						continue
					}
					if got != want {
						t.Fatalf("workers=%d run=%d: fingerprint diverged:\n%s",
							w, run, firstDiff(want, got))
					}
				}
			}
		})
	}
}

// mkAnnLocs builds n distinct global-variable locations for annotation tests.
func mkAnnLocs(n int) []*loc.Location {
	tab := loc.NewTable(nil)
	out := make([]*loc.Location, n)
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := range out {
		out[i] = tab.VarLoc(&ast.Object{Name: names[i], Global: true}, nil)
	}
	return out
}

// TestAnnotationRecordCommutes checks that Annotations.Record is insensitive
// to recording order: whatever order the per-context input sets arrive in —
// and parallel evaluation permutes that order — the merged annotation is the
// same, with definiteness only ever weakening.
func TestAnnotationRecordCommutes(t *testing.T) {
	ls := mkAnnLocs(4)
	mk := func(edges ...[3]int) ptset.Set {
		s := ptset.New()
		for _, e := range edges {
			s.Insert(ls[e[0]], ls[e[1]], ptset.Def(e[2] == 1))
		}
		return s
	}
	sets := []ptset.Set{
		mk([3]int{0, 1, 1}, [3]int{1, 2, 1}),
		mk([3]int{0, 1, 1}, [3]int{2, 3, 0}),
		mk([3]int{0, 1, 1}, [3]int{0, 2, 0}, [3]int{1, 2, 1}),
	}
	b := &simple.Basic{}

	perms := [][]int{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	var want ptset.Set
	for pi, perm := range perms {
		ann := pta.NewAnnotations()
		for _, i := range perm {
			ann.Record(b, sets[i], nil)
		}
		got, ok := ann.At(b)
		if !ok {
			t.Fatal("no annotation recorded")
		}
		if pi == 0 {
			want = got
			continue
		}
		if !ptset.Equal(got, want) {
			t.Fatalf("permutation %v: annotation %s differs from %s", perm, got, want)
		}
	}

	// (0->1) is definite in every recorded set, so it stays definite.
	// (1->2) is definite on two paths but absent from sets[1]: the path
	// join weakens it to possible. (0->2) was only ever possible.
	if d, ok := want.Lookup(ls[0], ls[1]); !ok || d != ptset.D {
		t.Errorf("(a->b) = %v,%v; want definite", d, ok)
	}
	if d, ok := want.Lookup(ls[1], ls[2]); !ok || d != ptset.P {
		t.Errorf("(b->c) = %v,%v; want weakened to possible", d, ok)
	}
	if d, ok := want.Lookup(ls[0], ls[2]); !ok || d != ptset.P {
		t.Errorf("(a->c) = %v,%v; want possible", d, ok)
	}

	// A later possible recording weakens an earlier definite one.
	ann := pta.NewAnnotations()
	ann.Record(b, mk([3]int{0, 1, 1}), nil)
	ann.Record(b, mk([3]int{0, 1, 0}), nil)
	got, _ := ann.At(b)
	if d, ok := got.Lookup(ls[0], ls[1]); !ok || d != ptset.P {
		t.Errorf("definite + possible = %v,%v; want weakened to possible", d, ok)
	}
}

// TestAnnotationRecordConcurrent hammers one Annotations store from several
// goroutines; under -race this checks Record's locking, and the final merge
// must equal the serial merge of the same sets.
func TestAnnotationRecordConcurrent(t *testing.T) {
	ls := mkAnnLocs(8)
	bs := []*simple.Basic{{}, {}, {}}
	mkSet := func(i int) ptset.Set {
		s := ptset.New()
		s.Insert(ls[i%4], ls[4+i%4], ptset.Def(i%3 == 0))
		s.Insert(ls[(i+1)%4], ls[4+(i+2)%4], ptset.P)
		return s
	}

	ann := pta.NewAnnotations()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ann.Record(bs[i%len(bs)], mkSet(i), nil)
			}
		}(w)
	}
	wg.Wait()

	serial := pta.NewAnnotations()
	for i := 0; i < 100; i++ {
		serial.Record(bs[i%len(bs)], mkSet(i), nil)
	}
	for bi, b := range bs {
		got, ok1 := ann.At(b)
		want, ok2 := serial.At(b)
		if ok1 != ok2 || !ptset.Equal(got, want) {
			t.Errorf("statement %d: concurrent merge %s != serial merge %s", bi, got, want)
		}
	}
}
