package pta_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
	"repro/internal/simplify"
)

// fixture is one C program shared by the differential and determinism tests:
// every example under examples/check plus the whole benchmark suite.
type fixture struct {
	name string
	prog *simple.Program
}

func loadFixtures(t *testing.T) []fixture {
	t.Helper()
	var out []fixture

	dir := filepath.Join("..", "..", "examples", "check")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".c") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		tu, err := parser.Parse(e.Name(), string(src))
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		prog, err := simplify.Simplify(tu)
		if err != nil {
			t.Fatalf("simplify %s: %v", e.Name(), err)
		}
		out = append(out, fixture{name: "check/" + strings.TrimSuffix(e.Name(), ".c"), prog: prog})
	}

	for _, name := range bench.Names() {
		if testing.Short() && name == "livc" {
			continue
		}
		prog, err := bench.Load(name)
		if err != nil {
			t.Fatalf("bench.Load(%s): %v", name, err)
		}
		out = append(out, fixture{name: "bench/" + name, prog: prog})
	}
	return out
}

func analyze(t *testing.T, prog *simple.Program, opts pta.Options) *pta.Result {
	t.Helper()
	res, err := pta.Analyze(prog, opts)
	if err != nil {
		t.Fatalf("Analyze(%+v): %v", opts, err)
	}
	return res
}

// comparableKind selects the location kinds whose points-to relationships
// both analyses express: named variables, the abstract heap, string storage
// and functions. Excluded are Symbolic locations (invisible variables and
// the argc/argv seeds, which exist only in the context-sensitive naming),
// NULL (initialization noise) and Freed (the context-sensitive free() model
// that the flow-insensitive baseline has no counterpart for).
func comparableKind(k loc.Kind) bool {
	switch k {
	case loc.Var, loc.Heap, loc.Str, loc.Func:
		return true
	}
	return false
}

// TestSubsetOfAndersen checks, program by program, that every comparable
// points-to fact the context-sensitive analysis derives is also present in
// the flow- and context-insensitive Andersen-style solution: the paper's
// analysis is strictly more precise, so on the shared location domain its
// facts must be a subset of the baseline's may-point-to facts.
func TestSubsetOfAndersen(t *testing.T) {
	for _, fx := range loadFixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			res := analyze(t, fx.prog, pta.Options{})
			and := baseline.Andersen(fx.prog)

			have := make(map[[2]string]bool, and.Sol.Len())
			and.Sol.Range(func(tr ptset.Triple) {
				have[[2]string{tr.Src.SortKey(), tr.Dst.SortKey()}] = true
			})

			reported := make(map[[2]string]bool)
			check := func(where string, s ptset.Set) {
				s.Range(func(tr ptset.Triple) {
					if !comparableKind(tr.Src.Kind) || !comparableKind(tr.Dst.Kind) {
						return
					}
					key := [2]string{tr.Src.SortKey(), tr.Dst.SortKey()}
					if reported[key] {
						return
					}
					if !have[key] {
						reported[key] = true
						t.Errorf("%s: context-sensitive fact (%s -> %s) missing from Andersen solution",
							where, tr.Src.Name(), tr.Dst.Name())
					}
				})
			}
			fx.prog.ForEachBasic(func(b *simple.Basic) {
				if s, ok := res.Annots.At(b); ok {
					check("stmt", s)
				}
			})
			check("main-out", res.MainOut)
		})
	}
}

// TestSerialParallelMemoEquivalence checks the central invariant of the
// parallel evaluator and the input-keyed memoization: for every fixture, the
// serial, parallel, memoized and unmemoized analyses produce byte-identical
// canonical renderings of the complete result.
func TestSerialParallelMemoEquivalence(t *testing.T) {
	variants := []struct {
		name string
		opts pta.Options
	}{
		{"serial", pta.Options{Workers: 1}},
		{"parallel2", pta.Options{Workers: 2}},
		{"parallel8", pta.Options{Workers: 8}},
		{"serial-nomemo", pta.Options{Workers: 1, NoMemo: true}},
		{"parallel8-nomemo", pta.Options{Workers: 8, NoMemo: true}},
	}
	for _, fx := range loadFixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			want := pta.Fingerprint(analyze(t, fx.prog, variants[0].opts))
			for _, v := range variants[1:] {
				got := pta.Fingerprint(analyze(t, fx.prog, v.opts))
				if got != want {
					t.Errorf("%s fingerprint differs from serial (lengths %d vs %d):\n%s",
						v.name, len(got), len(want), firstDiff(want, got))
				}
			}
		})
	}
}

// firstDiff renders the first divergent line pair of two fingerprints.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial: %s\n  other:  %s", i+1, al[i], bl[i])
		}
	}
	return "one fingerprint is a prefix of the other"
}
