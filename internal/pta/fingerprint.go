package pta

import (
	"fmt"
	"strings"

	"repro/internal/simple"
)

// Fingerprint renders a Result into a canonical, byte-stable string: the
// exit set of main, the merged per-statement annotations in program order,
// the sorted diagnostics, and the canonicalized invocation graph. Two
// analyses of the same program agree on every reported analysis fact iff
// their fingerprints are byte-identical; the determinism and equivalence
// tests (serial vs parallel vs memoized) compare this string.
func Fingerprint(res *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "main-out: %s\n", res.MainOut.String())
	i := 0
	res.Prog.ForEachBasic(func(b *simple.Basic) {
		i++
		if s, ok := res.Annots.At(b); ok {
			fmt.Fprintf(&sb, "stmt %04d @%v: %s\n", i, b.Pos, s.String())
		}
	})
	for _, d := range res.Diags {
		fmt.Fprintf(&sb, "diag: %s\n", d)
	}
	if res.Graph != nil {
		st := res.Graph.ComputeStats()
		fmt.Fprintf(&sb, "graph: nodes=%d sites=%d funcs=%d rec=%d approx=%d\n",
			st.Nodes, st.CallSites, st.Functions, st.Recursive, st.Approximate)
		res.Graph.WriteDot(&sb)
	}
	return sb.String()
}
