package pta_test

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/pta"
	"repro/internal/ptagen"
)

// TestFlightRecorderDoesNotChangeResults is the serving-grade determinism
// guard: an analysis running with the flight recorder bound and the stall
// watchdog armed (long window, so it never fires) must produce a fingerprint
// bit-identical to the plain run, at every worker count.
func TestFlightRecorderDoesNotChangeResults(t *testing.T) {
	workerCounts := []int{1, 2, 8}
	for _, fx := range loadFixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			want := pta.Fingerprint(analyze(t, fx.prog, pta.Options{Workers: 1}))
			for _, w := range workerCounts {
				fr := obsv.NewFlightRecorder(64, 50*time.Millisecond)
				res := analyze(t, fx.prog, pta.Options{
					Workers:     w,
					Flight:      fr,
					FlightDump:  io.Discard,
					StallWindow: time.Hour,
				})
				if got := pta.Fingerprint(res); got != want {
					t.Fatalf("workers=%d with flight recorder: fingerprint diverged:\n%s",
						w, firstDiff(want, got))
				}
				// The recorder must still be dumpable after the run.
				var b bytes.Buffer
				if err := fr.Dump(&b, "post-run"); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(b.String(), "steps=") {
					t.Errorf("workers=%d: post-run dump has no counters:\n%s", w, b.String())
				}
			}
		})
	}
}

// TestStepsExceededDumpsFlightRecord forces the step budget to blow and
// requires the run to leave a flight record behind along with the error.
func TestStepsExceededDumpsFlightRecord(t *testing.T) {
	prog, _, err := ptagen.Load(ptagen.Presets["small"])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fr := obsv.NewFlightRecorder(64, 50*time.Millisecond)
	_, err = pta.Analyze(prog, pta.Options{
		MaxSteps:   50,
		Flight:     fr,
		FlightDump: &buf,
	})
	if err == nil || !strings.Contains(err.Error(), "exceeded 50 steps") {
		t.Fatalf("err = %v, want steps-exceeded error", err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== flight record: steps exceeded (budget 50) ===") {
		t.Errorf("no flight record dumped on budget exhaustion:\n%s", out)
	}
	if !strings.Contains(out, "counters: steps=") {
		t.Errorf("flight record missing counter line:\n%s", out)
	}
}

// TestLiveMetricsRegistry supplies the registry from outside (the /metrics
// serving path) and scrapes it concurrently while the analysis runs. Under
// -race this is the scrape-during-analysis safety test; it also checks that
// the final Result snapshot agrees with the live registry.
func TestLiveMetricsRegistry(t *testing.T) {
	prog, _, err := ptagen.Load(ptagen.Presets["small"])
	if err != nil {
		t.Fatal(err)
	}
	m := obsv.NewMetrics()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := obsv.WritePrometheus(io.Discard, m); err != nil {
				t.Errorf("mid-run scrape failed: %v", err)
				return
			}
		}
	}()

	res, err := pta.Analyze(prog, pta.Options{Workers: 4, Metrics: m})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if res.Metrics.Steps == 0 {
		t.Error("snapshot recorded no steps")
	}
	if got := m.Steps.Load(); got != res.Metrics.Steps {
		t.Errorf("live registry steps %d != snapshot steps %d", got, res.Metrics.Steps)
	}

	// A final scrape must expose the run's counters.
	var b bytes.Buffer
	if err := obsv.WritePrometheus(&b, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pta_steps_total") {
		t.Errorf("final scrape missing pta_steps_total:\n%s", b.String())
	}
}
