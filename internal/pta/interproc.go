package pta

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cc/ast"
	"repro/internal/cc/types"
	"repro/internal/obsv"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// MapInfo is the context-sensitive map information stored on an invocation
// graph node (paper §4.1): how caller locations are named inside the callee
// and, inversely, which invisible caller variables each symbolic name
// represents.
type MapInfo struct {
	Callee *simple.Function

	// fwd maps an invisible caller location to the callee symbolic
	// location that names it. Visible locations (globals, heap, NULL,
	// strings, functions) map to themselves and are not stored.
	fwd map[*loc.Location]*loc.Location

	// actual maps a caller actual-argument location to the corresponding
	// formal-parameter locations (one actual can be passed to several
	// formals). Used only in the caller-to-callee direction: parameters
	// are copies, so callee changes to a formal are never written back to
	// the actual.
	actual map[*loc.Location][]*loc.Location

	// inv maps a symbolic root to the invisible caller locations it
	// represents — the paper's (1_y, b) map information.
	inv map[*loc.Location][]*loc.Location

	// multi marks symbolic roots that represent more than one real
	// location; relationships involving them cannot stay definite.
	multi map[*loc.Location]bool
}

func newMapInfo(callee *simple.Function) *MapInfo {
	return &MapInfo{
		Callee: callee,
		fwd:    make(map[*loc.Location]*loc.Location),
		actual: make(map[*loc.Location][]*loc.Location),
		inv:    make(map[*loc.Location][]*loc.Location),
		multi:  make(map[*loc.Location]bool),
	}
}

// Translate maps a callee-side location back to the caller locations it
// stands for, using this invocation's map information — the public form of
// the unmap translation for follow-on interprocedural analyses (MOD/REF,
// constant propagation).
func (mi *MapInfo) Translate(res *Result, u *loc.Location) []*loc.Location {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	return mi.translate(a, u)
}

// CalleeNames maps a caller-side location to its callee-side names under
// this invocation's mapping: itself for globals, symbolic names for
// invisible variables. The formal-parameter copy name is excluded — a
// formal may be reassigned inside the callee and then no longer denotes the
// caller's cell. Used by the deep soundness oracle.
func (mi *MapInfo) CalleeNames(res *Result, l *loc.Location) []*loc.Location {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	return mi.calleeNamesOf(a, l, true)
}

// MultiSym reports whether the callee-side location is (an extension of) a
// symbolic name standing for several invisible caller locations; taint and
// other follow-on analyses must weaken relationships through it to possible.
func (mi *MapInfo) MultiSym(res *Result, l *loc.Location) bool {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	return mi.isMultiSym(a, l)
}

// Invisibles exposes the symbolic-name map information for reporting and
// follow-on analyses: symbolic root name -> caller location names.
func (mi *MapInfo) Invisibles() map[string][]string {
	out := make(map[string][]string, len(mi.inv))
	for sym, list := range mi.inv {
		names := make([]string, len(list))
		for i, l := range list {
			names[i] = l.Name()
		}
		sort.Strings(names)
		out[sym.Name()] = names
	}
	return out
}

// prefixLoc reconstructs the location consisting of l's first k path
// elements.
func (a *analyzer) prefixLoc(l *loc.Location, k int) *loc.Location {
	switch l.Kind {
	case loc.Var:
		return a.tab.VarLoc(l.Obj, l.Path[:k])
	case loc.Symbolic:
		return a.tab.SymLoc(l.Fn, l.Sym, l.Path[:k], nil)
	}
	return l
}

// extendBy extends l by the given path elements.
func (a *analyzer) extendBy(l *loc.Location, elems []loc.Elem) *loc.Location {
	for _, e := range elems {
		l = a.tab.Extend(l, e)
		if l == nil {
			return nil
		}
	}
	return l
}

// calleeNamesOf returns every callee-side name of the caller location l:
// itself when globally visible, the matching formal (copy) unless
// excludeActual, and symbolic names via exact or prefix mappings. Multiple
// names arise when an object is reachable both by value and by reference,
// or when overlapping aggregate prefixes were mapped separately.
func (mi *MapInfo) calleeNamesOf(a *analyzer, l *loc.Location, excludeActual bool) []*loc.Location {
	var out []*loc.Location
	if l.IsGlobalish() {
		out = append(out, l)
	}
	for k := len(l.Path); k >= 0; k-- {
		p := l
		if k < len(l.Path) {
			p = a.prefixLoc(l, k)
		}
		rest := l.Path[k:]
		if m, ok := mi.fwd[p]; ok {
			if e := a.extendBy(m, rest); e != nil {
				out = append(out, e)
			}
		}
		if !excludeActual {
			for _, m := range mi.actual[p] {
				if e := a.extendBy(m, rest); e != nil {
					out = append(out, e)
				}
			}
		}
	}
	return dedupeLocs(out)
}

func dedupeLocs(in []*loc.Location) []*loc.Location {
	seen := make(map[*loc.Location]bool, len(in))
	out := in[:0]
	for _, l := range in {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return loc.SortLocs(out)
}

// symRoot returns the path-less root of a symbolic location.
func (a *analyzer) symRoot(l *loc.Location) *loc.Location {
	if len(l.Path) == 0 {
		return l
	}
	return a.tab.SymLoc(l.Fn, l.Sym, nil, nil)
}

// isMultiSym reports whether l is (an extension of) a symbolic name marked
// as representing multiple invisible variables.
func (mi *MapInfo) isMultiSym(a *analyzer, l *loc.Location) bool {
	if l.Kind != loc.Symbolic {
		return false
	}
	return mi.multi[a.symRoot(l)]
}

// bumpSym derives the symbolic name for the pointees of the callee-side
// location l: 1_x for a variable x, (k+1)_x for the symbolic k_x, and
// 1_<name> for locations with selector paths (paper §4.1).
func bumpSym(l *loc.Location) string {
	if l.Kind == loc.Symbolic && len(l.Path) == 0 {
		if i := strings.IndexByte(l.Sym, '_'); i > 0 {
			if n, err := strconv.Atoi(l.Sym[:i]); err == nil {
				return fmt.Sprintf("%d_%s", n+1, l.Sym[i+1:])
			}
		}
	}
	return "1_" + l.Name()
}

// orderedTriples returns the triples of s with definite relationships
// first, each group deterministically ordered — the paper's observation
// that mapping invisibles involved in definite relationships first gives
// more accurate map information.
func orderedTriples(s ptset.Set) []ptset.Triple {
	ts := s.Triples()
	sort.SliceStable(ts, func(i, j int) bool {
		if ts[i].Def != ts[j].Def {
			return ts[i].Def == ptset.D
		}
		return false
	})
	return ts
}

// mapProcess builds the callee's input points-to set from the caller's set
// at the call site (paper §4.1): formals inherit from actuals, globals keep
// their relationships, indirectly accessible invisible variables get
// symbolic names, recursively through all pointer levels.
func (a *analyzer) mapProcess(in ptset.Set, b *simple.Basic, callee *simple.Function) (ptset.Set, *MapInfo) {
	mi := newMapInfo(callee)

	// Seed: actual -> formal (by copy).
	for i, arg := range b.Args {
		if i >= len(callee.Params) {
			break
		}
		formal := callee.Params[i]
		if formal.Type == nil || !formal.Type.HasPointers() {
			continue
		}
		if ref, ok := arg.(*simple.Ref); ok && !ref.Deref && len(ref.Path) == 0 &&
			ref.Var.Kind != ast.FuncObj {
			key := a.tab.VarLoc(ref.Var, nil)
			mi.actual[key] = append(mi.actual[key], a.tab.VarLoc(formal, nil))
		}
	}

	// Pass 1: assign symbolic names to invisible locations reachable from
	// the callee, definite relationships first.
	//
	// The "already named" test must ignore the actual->formal copy naming:
	// a caller variable that is passed by value AND reachable through a
	// pointer argument still needs its own symbolic name — the formal is a
	// copy, not an alias, so naming the pointee after the formal would
	// route writes through the pointer to the wrong location (and the
	// pointer edge would otherwise be dropped entirely).
	triples := orderedTriples(in)
	for changed := true; changed; {
		changed = false
		for _, t := range triples {
			if t.Dst.IsGlobalish() {
				continue
			}
			ns := mi.calleeNamesOf(a, t.Src, false)
			if len(ns) == 0 {
				continue
			}
			if len(mi.calleeNamesOf(a, t.Dst, true)) > 0 {
				continue // already named (excluding formal copies)
			}
			anchor := ns[0]
			sym := a.tab.SymLoc(callee, bumpSym(anchor), nil, pointeeType(anchor.Type()))
			mi.fwd[t.Dst] = sym
			mi.inv[sym] = append(mi.inv[sym], t.Dst)
			changed = true
		}
	}

	// A symbolic representing several invisibles — or any location that is
	// itself multiple — cannot carry definite relationships.
	for sym, list := range mi.inv {
		loc.SortLocs(list)
		if len(list) > 1 {
			mi.multi[sym] = true
			continue
		}
		if len(list) == 1 && list[0].Multi() {
			mi.multi[sym] = true
		}
	}

	// Pass 2: emit the mapped relationships. Insertion is commutative, so
	// unordered iteration is safe and avoids sorting the whole set.
	funcInput := ptset.New()
	in.Range(func(t ptset.Triple) {
		srcs := mi.calleeNamesOf(a, t.Src, false)
		if len(srcs) == 0 {
			return
		}
		var dsts []*loc.Location
		if t.Dst.IsGlobalish() {
			dsts = []*loc.Location{t.Dst}
		} else {
			dsts = mi.calleeNamesOf(a, t.Dst, true)
		}
		for _, ns := range srcs {
			for _, nt := range dsts {
				d := t.Def
				if mi.isMultiSym(a, ns) || mi.isMultiSym(a, nt) {
					d = ptset.P
				}
				funcInput.Insert(ns, nt, d)
			}
		}
	})

	// Constant arguments bind formals directly.
	for i, arg := range b.Args {
		if i >= len(callee.Params) {
			break
		}
		formal := callee.Params[i]
		if formal.Type == nil || formal.Type.Decay().Kind != types.Pointer {
			continue
		}
		fl := a.tab.VarLoc(formal, nil)
		switch arg.(type) {
		case *simple.ConstNull:
			funcInput.Insert(fl, a.tab.NullLoc(), ptset.D)
		case *simple.ConstString:
			funcInput.Insert(fl, a.tab.StrLoc(), ptset.P)
		}
	}
	return funcInput, mi
}

// translate maps a callee-side location back to the caller locations it
// stands for: globals map to themselves, symbolic names to the invisible
// variables they represent, and callee locals/formals to nothing (paper
// §4.1's unmap).
func (mi *MapInfo) translate(a *analyzer, u *loc.Location) []*loc.Location {
	if u.IsGlobalish() {
		return []*loc.Location{u}
	}
	if u.Kind == loc.Symbolic && u.Fn == mi.Callee {
		root := a.symRoot(u)
		var out []*loc.Location
		for _, c := range mi.inv[root] {
			if e := a.extendBy(c, u.Path); e != nil {
				out = append(out, e)
			}
		}
		return dedupeLocs(out)
	}
	return nil
}

// unmapProcess maps the callee's output points-to set back to the call site
// (paper §4.1): relationships of caller locations the callee could access
// are replaced by the translated callee output; everything else survives.
func (a *analyzer) unmapProcess(callerIn, funcOut ptset.Set, mi *MapInfo, b *simple.Basic, callee *simple.Function) ptset.Set {
	if funcOut.IsBottom() {
		return ptset.NewBottom()
	}
	out := callerIn.Clone()
	callerIn.Range(func(t ptset.Triple) {
		if t.Src.IsGlobalish() || len(mi.calleeNamesOf(a, t.Src, true)) > 0 {
			out.Kill(t.Src)
		}
	})
	funcOut.Range(func(t ptset.Triple) {
		cus := mi.translate(a, t.Src)
		if len(cus) == 0 {
			return
		}
		cvs := mi.translate(a, t.Dst)
		d := t.Def
		if len(cus) > 1 || len(cvs) > 1 ||
			mi.isMultiSym(a, t.Src) || mi.isMultiSym(a, t.Dst) {
			d = ptset.P
		}
		for _, cu := range cus {
			for _, cv := range cvs {
				dd := d
				if cu.Multi() {
					dd = ptset.P
				}
				out.Insert(cu, cv, dd)
			}
		}
	})
	a.applyReturnValue(out, funcOut, mi, b, callee)
	return out
}

// applyReturnValue assigns the callee's __retval relationships to the call
// LHS, as the assignment lhs = retval.
func (a *analyzer) applyReturnValue(out, funcOut ptset.Set, mi *MapInfo, b *simple.Basic, callee *simple.Function) {
	if b.LHS == nil || callee.RetVal == nil {
		return
	}
	rt := callee.RetVal.Type
	if rt == nil || !rt.HasPointers() {
		return
	}
	for _, path := range loc.PointerPaths(rt) {
		rv := a.tab.VarLoc(callee.RetVal, path)
		set := newLocDSet()
		for _, t := range funcOut.Targets(rv) {
			cvs := mi.translate(a, t.Dst)
			d := t.Def
			if len(cvs) > 1 || mi.isMultiSym(a, t.Dst) {
				d = ptset.P
			}
			for _, cv := range cvs {
				set.add(cv, d)
			}
		}
		lhsRef := refWithElems(b.LHS, path)
		lls := a.llocs(lhsRef, out)
		a.applyAssign(out, lls, set.pairs())
	}
}

// refWithElems extends a SIMPLE reference by location path elements
// (head/tail become index selectors).
func refWithElems(r *simple.Ref, elems []loc.Elem) *simple.Ref {
	nr := r
	for _, e := range elems {
		var sel simple.Sel
		if e.Arr {
			if e.Tail {
				sel = simple.IndexSel(simple.IdxPos)
			} else {
				sel = simple.IndexSel(simple.IdxZero)
			}
		} else {
			sel = simple.FieldSel(e.Field)
		}
		nr = extendSimpleRef(nr, sel)
	}
	return nr
}

func extendSimpleRef(r *simple.Ref, sel simple.Sel) *simple.Ref {
	nr := &simple.Ref{
		Var: r.Var, Deref: r.Deref, Pos: r.Pos,
		Path:  append([]simple.Sel{}, r.Path...),
		DPath: append([]simple.Sel{}, r.DPath...),
	}
	if r.Deref {
		nr.DPath = append(nr.DPath, sel)
	} else {
		nr.Path = append(nr.Path, sel)
	}
	return nr
}

// ---------------------------------------------------------------------------
// Call processing (paper Figures 4 and 5)

// processDirectCall handles f(...) statements.
func (a *analyzer) processDirectCall(b *simple.Basic, in ptset.Set, ign *invgraph.Node, tk obsv.Track) ptset.Set {
	callee := a.prog.Lookup(b.Callee.Name)
	if callee == nil {
		if out, ok := a.processPthreadCall(b, in, ign, tk); ok {
			return out
		}
		return a.processExternalCall(b, in)
	}
	child := a.g.ChildFor(ign, b)
	if child == nil {
		// Defensive: a call site missed by static construction (should
		// not happen) is expanded dynamically.
		child = a.g.AddIndirectChild(ign, b, callee)
	}
	return a.invoke(child, b, callee, in, tk)
}

// invoke maps the input, processes the invocation-graph node and unmaps the
// result (Figure 3's overall strategy).
func (a *analyzer) invoke(child *invgraph.Node, b *simple.Basic, callee *simple.Function, in ptset.Set, tk obsv.Track) ptset.Set {
	a.m.MapOps.Inc()
	sp := a.tracer.Begin(tk, obsv.CatMap, "map", callee.Name())
	funcInput, mi := a.mapProcess(in, b, callee)
	sp.End()
	child.MapInfo = mi
	funcOutput := a.processCallNode(child, funcInput, tk)
	if funcOutput.IsBottom() {
		return ptset.NewBottom()
	}
	a.m.UnmapOps.Inc()
	sp = a.tracer.Begin(tk, obsv.CatUnmap, "unmap", callee.Name())
	out := a.unmapProcess(in, funcOutput, mi, b, callee)
	sp.End()
	return out
}

// processCallNode implements process_call of Figure 4: memoized evaluation
// for ordinary nodes, stored-approximation lookup with pending-list
// registration for approximate nodes, and the input/output generalizing
// fixed point for recursive nodes.
func (a *analyzer) processCallNode(n *invgraph.Node, funcInput ptset.Set, tk obsv.Track) ptset.Set {
	if a.opts.ContextInsensitive && n.Parent != nil {
		// The context-insensitive ablation keeps one summary per
		// function regardless of the invocation path.
		return a.processCI(n.Fn, funcInput, tk)
	}
	if n.Kind == invgraph.Approximate {
		// The recursive partner is an ancestor whose fixed-point loop is
		// currently suspended (its goroutine chain is waiting on this
		// subtree), so its stored input/output are stable here; only the
		// pending-list append needs serializing, because sibling subtrees
		// evaluated in parallel can reach the same partner.
		rec := n.RecPartner
		if rec.HasInput && ptset.Subset(funcInput, rec.StoredInput) {
			a.tracer.Instant(tk, obsv.CatNode, "approx-hit", n.Fn.Name())
			return rec.StoredOutput
		}
		a.recMu.Lock()
		rec.Pending = append(rec.Pending, funcInput)
		a.recMu.Unlock()
		a.tracer.Instant(tk, obsv.CatNode, "approx-pending", n.Fn.Name())
		return ptset.NewBottom()
	}

	// Input-keyed memoization: the summary cache maps every hash-consed
	// mapped input this node has been evaluated under to its hash-consed
	// output, generalizing Figure 4's single stored IN/OUT pair. The node is
	// only ever processed by the goroutine that owns its subtree, so the map
	// needs no lock; the intern table itself is shared and synchronized.
	// (Hand-built shell analyzers carry no intern table; they run unmemoized.)
	var memoKey *ptset.Interned
	if !a.opts.NoMemo && a.intern != nil {
		memoKey = a.intern.Intern(funcInput)
		if out, ok := n.Memo[memoKey]; ok {
			a.m.MemoHits.Inc()
			a.m.Func(n.Fn.Name()).MemoHits.Inc()
			a.tracer.Instant(tk, obsv.CatNode, "memo-hit", n.Fn.Name())
			return out.AsSet()
		}
		a.m.MemoMisses.Inc()
	}

	// Global summary sharing (the paper's §6 future-work optimization): a
	// completed summary for the same abstract input, computed anywhere in
	// the graph, can be reused — the callee-side result depends only on
	// the mapped input, not on which caller produced it.
	if a.shared != nil {
		for _, sum := range a.shared[n.Fn] {
			if ptset.Equal(sum.in, funcInput) {
				a.m.SharedHits.Inc()
				n.StoredInput = funcInput
				n.HasInput = true
				n.StoredOutput = sum.out
				n.HasResult = true
				return sum.out
			}
		}
	}

	// A real body evaluation: record it on the metrics registry (count,
	// inclusive wall time, fixed-point effort) and open the node span.
	a.m.NodeEvals.Inc()
	fc := a.m.Func(n.Fn.Name())
	fc.Evals.Inc()
	evalStart := time.Now()
	nodeSpan := a.tracer.Begin(tk, obsv.CatNode, n.Fn.Name(), n.Kind.String())

	n.StoredInput = funcInput
	n.HasInput = true
	n.StoredOutput = ptset.NewBottom()
	n.HasResult = false
	n.Pending = nil

	const maxIter = 1000
	for iter := 0; ; iter++ {
		var iterSpan obsv.Span
		if a.tracer != nil && n.Kind == invgraph.Recursive {
			iterSpan = a.tracer.Begin(tk, obsv.CatFixpoint, n.Fn.Name(), "iter "+strconv.Itoa(iter))
		}
		out := a.analyzeBody(n, tk)
		iterSpan.End()
		if iter > 0 {
			// Extra passes beyond the first are fixed-point effort.
			a.m.FixpointIters.Inc()
			fc.FixpointIters.Inc()
		}
		if len(n.Pending) > 0 {
			// Unresolved recursive inputs: generalize and restart.
			a.m.PendingRestarts.Inc()
			a.tracer.Instant(tk, obsv.CatFixpoint, "pending-restart", n.Fn.Name())
			n.StoredInput = ptset.MergeAll(append(n.Pending, n.StoredInput)...)
			n.Pending = nil
			n.StoredOutput = ptset.NewBottom()
			continue
		}
		if ptset.Subset(out, n.StoredOutput) {
			break
		}
		n.StoredOutput = ptset.Merge(n.StoredOutput, out)
		// A node not (yet) involved in recursion converges in one pass.
		if n.Kind != invgraph.Recursive {
			break
		}
		if iter >= maxIter {
			a.diagf("recursion fixed point for %s did not converge", n.Fn.Name())
			break
		}
	}
	n.StoredInput = funcInput // reset to the initial input for memoization
	n.HasResult = true
	if memoKey != nil {
		if n.Memo == nil {
			n.Memo = make(map[*ptset.Interned]*ptset.Interned)
		}
		n.Memo[memoKey] = a.intern.Intern(n.StoredOutput)
	}
	if a.shared != nil {
		a.shared[n.Fn] = append(a.shared[n.Fn], sharedSummary{in: funcInput, out: n.StoredOutput})
	}
	fc.AddWall(time.Since(evalStart))
	nodeSpan.End()
	return n.StoredOutput
}

// analyzeBody runs the intraprocedural rules over a function body with the
// node's stored input, initializing local pointers to NULL.
func (a *analyzer) analyzeBody(n *invgraph.Node, tk obsv.Track) ptset.Set {
	in := n.StoredInput.Clone()
	for _, l := range n.Fn.Locals {
		a.initNull(in, l)
	}
	if n.Fn.RetVal != nil {
		a.initNull(in, n.Fn.RetVal)
	}
	f := a.processStmt(n.Fn.Body, in, n, tk)
	return ptset.MergeAll(append(f.rets, f.out)...)
}

// processIndirectCall implements process_call_indirect of Figure 5: the
// indirect call is resolved to the functions the pointer can point to, the
// invocation graph is extended, and each target is analyzed with the
// pointer definitely bound to it.
func (a *analyzer) processIndirectCall(b *simple.Basic, in ptset.Set, ign *invgraph.Node, tk obsv.Track) ptset.Set {
	fpLoc := a.tab.VarLoc(b.FnPtr, nil)

	var targets []*simple.Function
	switch a.opts.FnPtr {
	case Precise:
		for _, t := range in.Targets(fpLoc) {
			if t.Dst.Kind == loc.Func {
				if fn := a.prog.Lookup(t.Dst.Obj.Name); fn != nil {
					targets = append(targets, fn)
				}
			}
		}
	case AddrTaken:
		for _, fn := range a.prog.Functions {
			if fn.Obj.AddrTaken {
				targets = append(targets, fn)
			}
		}
	case AllFuncs:
		targets = append(targets, a.prog.Functions...)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Name() < targets[j].Name() })

	if len(targets) == 0 {
		a.diagf("%s: indirect call through %s has no known targets", b.Pos, b.FnPtr.Name)
		return in
	}

	// Create the children serially in sorted target order, so the invocation
	// graph (and any recursion approximation it triggers) is identical to
	// the serial analysis, then evaluate the target subtrees in parallel.
	// Each target gets its own input clone, and the outputs are merged in
	// index order, so the result is bit-identical for every worker count.
	children := make([]*invgraph.Node, len(targets))
	for i, fn := range targets {
		children[i] = a.g.AddIndirectChild(ign, b, fn)
	}
	outs := make([]ptset.Set, len(targets))
	a.runParallel(tk, len(targets), func(i int, tk obsv.Track) {
		fn := targets[i]
		// While analyzing target fn, the pointer definitely points to it.
		inF := in.Clone()
		inF.Kill(fpLoc)
		inF.Insert(fpLoc, a.tab.FuncLoc(fn.Obj), ptset.D)
		outs[i] = a.invoke(children[i], b, fn, inF, tk)
	})
	callOutput := ptset.NewBottom()
	for _, out := range outs {
		callOutput = ptset.Merge(callOutput, out)
	}
	return callOutput
}
