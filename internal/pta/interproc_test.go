package pta

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/obsv"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
)

// mapInfoFor digs out the MapInfo of the first invocation-graph node for
// the named function.
func mapInfoFor(t *testing.T, res *Result, fn string) *MapInfo {
	t.Helper()
	var mi *MapInfo
	res.Graph.Walk(func(n *invgraph.Node) {
		if mi == nil && n.Fn.Name() == fn && n.MapInfo != nil {
			mi = n.MapInfo.(*MapInfo)
		}
	})
	if mi == nil {
		t.Fatalf("no MapInfo recorded for %s", fn)
	}
	return mi
}

// The paper's §4.1 naming scheme: for a parameter x of type int**, the
// invisible variables reachable at one and two levels get the symbolic
// names 1_x and 2_x.
func TestSymbolicNamingLevels(t *testing.T) {
	res := analyzeSrc(t, `
void f(int **x) {
	**x = 1;
}
int main() {
	int c0;
	int *b;
	int **m;
	b = &c0;
	m = &b;
	f(m);
	return 0;
}
`)
	mi := mapInfoFor(t, res, "f")
	inv := mi.Invisibles()
	if got := inv["1_x"]; len(got) != 1 || got[0] != "b" {
		t.Errorf("1_x represents %v, want [b]", got)
	}
	if got := inv["2_x"]; len(got) != 1 || got[0] != "c0" {
		t.Errorf("2_x represents %v, want [c0]", got)
	}
}

// The paper's first §4.1 observation: when both x and y definitely point to
// the same invisible b, it is represented by exactly one symbolic name —
// the map info shows (1_?, b) once and the other name maps to nothing.
func TestOneSymbolicPerInvisible(t *testing.T) {
	res := analyzeSrc(t, `
void f(int **x, int **y) {
	**x = 1;
}
int main() {
	int v0;
	int *b;
	b = &v0;
	f(&b, &b);
	return 0;
}
`)
	mi := mapInfoFor(t, res, "f")
	inv := mi.Invisibles()
	count := 0
	for _, vars := range inv {
		for _, v := range vars {
			if v == "b" {
				count++
			}
		}
	}
	if count != 1 {
		t.Errorf("invisible b must be represented by exactly one symbolic name, got %d in %v",
			count, inv)
	}
}

// The paper's second §4.1 observation: a symbolic name can represent more
// than one invisible (x possibly points to a and b), and relationships
// through it are downgraded to possible.
func TestSymbolicRepresentsMultiple(t *testing.T) {
	res := analyzeSrc(t, `
int g;
void f(int **x) {
	*x = &g;
}
int main() {
	int a0, b0, c;
	int *pa, *pb;
	int **m;
	pa = &a0;
	pb = &b0;
	if (c)
		m = &pa;
	else
		m = &pb;
	f(m);
	return 0;
}
`)
	mi := mapInfoFor(t, res, "f")
	inv := mi.Invisibles()
	if got := inv["1_x"]; len(got) != 2 {
		t.Errorf("1_x should represent both pa and pb, got %v", got)
	}
	// The write through *x is a weak update in the caller: pa keeps a0 and
	// gains g. The spurious (pa,b0,P) is the *paper's own* documented
	// imprecision ("which on unmapping would generate the spurious
	// points-to pair (y,a,P)... the information provided is still safe,
	// but less precise", §4.1 footnote 5): pa's and pb's edges were both
	// carried by the shared symbolic 1_x and redistribute on unmap.
	if got := mainTargets(t, res, "pa"); got != "a0:P b0:P g:P" {
		t.Errorf("pa points to %q, want a0:P b0:P g:P", got)
	}
}

// bumpSym must walk the numeric prefix: 1_x -> 2_x -> 3_x.
func TestThreeLevelInvisibles(t *testing.T) {
	res := analyzeSrc(t, `
int g;
void f(int ****w) {
	***w = &g;
}
int main() {
	int d0;
	int *c;
	int **b;
	int ***m;
	c = &d0;
	b = &c;
	m = &b;
	f(&m);
	return 0;
}
`)
	mi := mapInfoFor(t, res, "f")
	inv := mi.Invisibles()
	for _, sym := range []string{"1_w", "2_w", "3_w"} {
		if len(inv[sym]) != 1 {
			t.Errorf("%s should represent exactly one invisible, got %v", sym, inv[sym])
		}
	}
	if got := mainTargets(t, res, "c"); got != "g:D" {
		t.Errorf("c points to %q, want g:D (write through 3 levels)", got)
	}
}

// Struct fields of invisible variables get selector-extended symbolic names
// (1_p.next etc.), and writes through them unmap onto the right caller
// fields.
func TestInvisibleStructFields(t *testing.T) {
	res := analyzeSrc(t, `
struct node { struct node *next; int v; };
struct node other;
void f(struct node *p) {
	p->next = &other;
}
int main() {
	struct node n;
	f(&n);
	return 0;
}
`)
	if got := mainTargets(t, res, "n"); got != "" {
		t.Errorf("n itself points nowhere, got %q", got)
	}
	// n.next must point to other after the call.
	obj := findObj(res, "main", "n")
	l := res.Table.VarLoc(obj, nil)
	nextLoc := res.Table.Extend(l, loc.FieldElem("next"))
	found := false
	for _, tr := range res.MainOut.Targets(nextLoc) {
		if tr.Dst.Name() == "other" {
			found = true
		}
	}
	if !found {
		t.Errorf("n.next should point to other; set: %s", res.MainOut.StringNoNull())
	}
}

// Memoization is per invocation-graph node: the paper's win is that a loop
// fixed point re-reaching a call with an unchanged input reuses the stored
// IN/OUT pair instead of re-analyzing the body.
func TestMemoizationReusesResults(t *testing.T) {
	src := `
int g;
void work(int *p) {
	int i;
	for (i = 0; i < 3; i++)
		*p = *p + 1;
}
int main() {
	int k;
	for (k = 0; k < 5; k++)
		work(&g);
	return 0;
}
`
	resMemo := analyzeSrcOpts(t, src, Options{})
	resNoMemo := analyzeSrcOpts(t, src, Options{NoMemo: true})
	if resMemo.Metrics.Steps >= resNoMemo.Metrics.Steps {
		t.Errorf("memoized analysis should evaluate fewer statements: %d vs %d",
			resMemo.Metrics.Steps, resNoMemo.Metrics.Steps)
	}
}

// The stored input/output on invocation graph nodes must be a fixed point:
// re-running the body on the stored input yields a subset of the stored
// output (DESIGN.md invariant).
func TestStoredSummariesAreFixedPoints(t *testing.T) {
	for _, src := range []string{
		`
int a, b;
void rec(int **p, int n) {
	if (n > 0) {
		*p = &b;
		rec(p, n - 1);
	}
}
int main() {
	int *q;
	q = &a;
	rec(&q, 3);
	return 0;
}
`,
		`
int g;
int *pick(int c) {
	if (c) return &g;
	return 0;
}
int main() {
	int *p;
	p = pick(1);
	p = pick(0);
	return 0;
}
`,
	} {
		res := analyzeSrc(t, src)
		a := &analyzer{
			prog: res.Prog, tab: res.Table, g: res.Graph,
			opts: res.Opts, ann: NewAnnotations(), limit: 1 << 30,
			m: obsv.NewMetrics(),
		}
		a.stepCeil.Store(a.limit)
		res.Graph.Walk(func(n *invgraph.Node) {
			if !n.HasResult || n.Kind == invgraph.Approximate {
				return
			}
			out := a.analyzeBody(n, 0)
			if out.IsBottom() {
				return
			}
			// Strip callee-local noise: just require that every triple of
			// the recomputed output over visible locations appears in the
			// stored output.
			for _, tr := range out.Triples() {
				if _, ok := n.StoredOutput.Lookup(tr.Src, tr.Dst); !ok {
					t.Errorf("%s: recomputed output has (%s,%s) missing from stored output",
						n.Fn.Name(), tr.Src.Name(), tr.Dst.Name())
				}
			}
		})
	}
}

// TestShareContexts checks the paper's §6 future-work optimization: with
// summary sharing, repeated identical invocations anywhere in the graph are
// analyzed once, results are unchanged, and the effort drops.
func TestShareContexts(t *testing.T) {
	src := `
int g;
void work(int *p) {
	int i;
	for (i = 0; i < 3; i++)
		*p = *p + 1;
}
void a(void) { work(&g); }
void b(void) { work(&g); }
void c(void) { work(&g); }
int main() {
	a();
	b();
	c();
	return 0;
}
`
	plain := analyzeSrcOpts(t, src, Options{})
	shared := analyzeSrcOpts(t, src, Options{ShareContexts: true})
	if shared.Metrics.SharedHits == 0 {
		t.Error("expected summary-cache hits for identical invocations")
	}
	if shared.Metrics.Steps >= plain.Metrics.Steps {
		t.Errorf("sharing should reduce statement evaluations: %d vs %d",
			shared.Metrics.Steps, plain.Metrics.Steps)
	}
	// Results from separate analyses intern locations in separate tables,
	// so compare canonical renders rather than pointer-keyed sets.
	if plain.MainOut.String() != shared.MainOut.String() {
		t.Errorf("sharing must not change results:\nplain:  %s\nshared: %s",
			plain.MainOut.StringNoNull(), shared.MainOut.StringNoNull())
	}
}

// TestShareContextsSuite verifies result equivalence across the benchmark
// suite and measures the sharing payoff on livc (whose 72 kernels are
// called in near-identical contexts).
func TestShareContextsSuite(t *testing.T) {
	for _, name := range []string{"csuite", "livc", "stanford", "config"} {
		prog, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Analyze(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		shared, err := Analyze(prog, Options{ShareContexts: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain.MainOut.String() != shared.MainOut.String() {
			t.Errorf("%s: sharing changed the result", name)
		}
		t.Logf("%s: steps %d -> %d (hits %d)", name, plain.Metrics.Steps, shared.Metrics.Steps, shared.Metrics.SharedHits)
	}
}
