// Package invgraph implements the invocation graph of the paper (§4): an
// explicit tree of procedure invocations rooted at main, where every calling
// context is a unique path. Recursion is approximated by matched pairs of
// *recursive* and *approximate* nodes connected by a back-edge, and function
// pointer call sites grow children dynamically as the points-to analysis
// discovers their targets (§5).
package invgraph

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// NodeKind classifies invocation graph nodes.
type NodeKind int

// Node kinds.
const (
	Ordinary NodeKind = iota
	Recursive
	Approximate
)

func (k NodeKind) String() string {
	switch k {
	case Ordinary:
		return "ordinary"
	case Recursive:
		return "recursive"
	case Approximate:
		return "approximate"
	}
	return "?"
}

// Node is one invocation of a function along a specific call chain.
type Node struct {
	Fn     *simple.Function
	Kind   NodeKind
	Parent *Node
	// Site is the call statement in the parent's body that creates this
	// invocation (nil for the root).
	Site     *simple.Basic
	Children []*Node

	// RecPartner links an Approximate node to its matching Recursive
	// ancestor (the special back-edge of Figure 2).
	RecPartner *Node

	// IsThread marks a child spawned by a pthread_create site rather than
	// called: the subtree is a pseudo-root that runs concurrently with the
	// spawner's continuation. Thread subtrees are analyzed with the
	// ordinary map/unmap machinery, but interprocedural clients (MOD/REF,
	// the race detector) treat them as separate roots, not as callees.
	IsThread bool

	// Analysis memoization (paper Figure 4). HasInput marks StoredInput
	// as valid (it is set while the node is being processed); HasResult
	// marks StoredOutput as a completed summary for StoredInput.
	HasInput     bool
	HasResult    bool
	StoredInput  ptset.Set
	StoredOutput ptset.Set
	Pending      []ptset.Set

	// Memo is the input-keyed summary cache: the hash-consed mapped input
	// of every completed evaluation of this node maps to its hash-consed
	// output, generalizing the paper's single stored IN/OUT pair to all
	// inputs ever seen, so repeated invocations under equal contexts reuse
	// the stored output without re-walking the body. It is owned by the
	// analysis goroutine processing this node (invocation subtrees are
	// disjoint), so no locking is needed.
	Memo map[*ptset.Interned]*ptset.Interned

	// MapInfo records the context-sensitive association between symbolic
	// names and the invisible variables they represent for this
	// invocation. It is owned by the analysis (package pta).
	MapInfo any
}

// Graph is the invocation graph of a program. Dynamic growth during the
// analysis (AddIndirectChild, including the recursion check's Kind writes on
// ancestors) is serialized by an internal mutex so parallel evaluation of
// sibling subtrees stays race-free.
type Graph struct {
	Root *Node
	Prog *simple.Program

	mu sync.Mutex
}

// Build constructs the initial invocation graph by a depth-first traversal
// of direct calls starting at main. Indirect (function pointer) call sites
// are left incomplete; the analysis adds their children via AddIndirectChild.
func Build(prog *simple.Program) (*Graph, error) {
	mainFn := prog.Main()
	if mainFn == nil {
		return nil, fmt.Errorf("invgraph: program has no main function")
	}
	g := &Graph{Prog: prog}
	g.Root = &Node{Fn: mainFn}
	g.expand(g.Root)
	return g, nil
}

// expand adds static children for every direct call in n.Fn's body.
func (g *Graph) expand(n *Node) {
	for _, site := range CallSites(n.Fn) {
		if site.Kind != simple.AsgnCall {
			continue // indirect sites expand during analysis
		}
		callee := g.Prog.Lookup(site.Callee.Name)
		if callee == nil {
			continue // external function: no body, no node
		}
		g.addChild(n, site, callee)
	}
}

// addChild creates a child node of parent for a call to fn at site,
// performing the recursion check against the ancestor chain.
func (g *Graph) addChild(parent *Node, site *simple.Basic, fn *simple.Function) *Node {
	for a := parent; a != nil; a = a.Parent {
		if a.Fn == fn {
			// Repeated function name on the chain from main: terminate
			// with an approximate node paired to the ancestor.
			a.Kind = Recursive
			child := &Node{Fn: fn, Kind: Approximate, Parent: parent, Site: site, RecPartner: a}
			parent.Children = append(parent.Children, child)
			return child
		}
	}
	child := &Node{Fn: fn, Parent: parent, Site: site}
	parent.Children = append(parent.Children, child)
	g.expand(child)
	return child
}

// ChildFor returns the child of n for the given direct call site.
func (n *Node) ChildFor(site *simple.Basic) *Node {
	for _, c := range n.Children {
		if c.Site == site {
			return c
		}
	}
	return nil
}

// ChildFor returns the child of n for the given direct call site, holding
// the graph lock: parallel analysis workers evaluating sibling branches of
// n's body may be appending indirect children to n concurrently.
func (g *Graph) ChildFor(n *Node, site *simple.Basic) *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	return n.ChildFor(site)
}

// IndirectChild returns the child of n for (site, fn) if it exists.
func (n *Node) IndirectChild(site *simple.Basic, fn *simple.Function) *Node {
	for _, c := range n.Children {
		if c.Site == site && c.Fn == fn {
			return c
		}
	}
	return nil
}

// AddIndirectChild records that the indirect call at site can invoke fn,
// updating the invocation graph (paper Figure 5's updateInvocGraph). The
// child subtree for fn's own direct calls is built immediately. Safe for
// concurrent use by parallel analysis workers.
func (g *Graph) AddIndirectChild(parent *Node, site *simple.Basic, fn *simple.Function) *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c := parent.IndirectChild(site, fn); c != nil {
		return c
	}
	return g.addChild(parent, site, fn)
}

// AddThreadChild records that the pthread_create call at site can spawn a
// thread running fn, adding a child node marked IsThread. Like indirect
// children, thread children are discovered during the analysis (the entry is
// a function pointer) and deduplicated by (site, fn). Safe for concurrent
// use by parallel analysis workers.
func (g *Graph) AddThreadChild(parent *Node, site *simple.Basic, fn *simple.Function) *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c := parent.IndirectChild(site, fn); c != nil {
		return c
	}
	c := g.addChild(parent, site, fn)
	c.IsThread = true
	return c
}

// ThreadNodes returns every IsThread node of the graph in depth-first
// preorder — the spawned pseudo-roots of the program.
func (g *Graph) ThreadNodes() []*Node {
	var out []*Node
	g.Walk(func(n *Node) {
		if n.IsThread {
			out = append(out, n)
		}
	})
	return out
}

// CallSites returns the call statements (direct and indirect) of fn's body
// in textual order.
func CallSites(fn *simple.Function) []*simple.Basic {
	var out []*simple.Basic
	var walk func(s simple.Stmt)
	walk = func(s simple.Stmt) {
		switch s := s.(type) {
		case *simple.Basic:
			if s.Kind == simple.AsgnCall || s.Kind == simple.AsgnCallInd {
				out = append(out, s)
			}
		case *simple.Seq:
			if s == nil {
				return
			}
			for _, c := range s.List {
				walk(c)
			}
		case *simple.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *simple.While:
			walk(s.CondEval)
			walk(s.Body)
		case *simple.DoWhile:
			walk(s.Body)
			walk(s.CondEval)
		case *simple.For:
			walk(s.Init)
			walk(s.CondEval)
			walk(s.Body)
			walk(s.Post)
		case *simple.Switch:
			for _, c := range s.Cases {
				walk(c.Body)
			}
		}
	}
	walk(fn.Body)
	return out
}

// Stats summarizes a graph for Table 6.
type Stats struct {
	Nodes       int
	CallSites   int // call statements in the program (to defined functions)
	Functions   int // distinct functions appearing in the graph
	Recursive   int
	Approximate int
	Threads     int // pseudo-roots spawned by pthread_create sites
}

// AvgPerCallSite returns nodes per call site.
func (s Stats) AvgPerCallSite() float64 {
	if s.CallSites == 0 {
		return 0
	}
	return float64(s.Nodes) / float64(s.CallSites)
}

// AvgPerFunction returns nodes per called function.
func (s Stats) AvgPerFunction() float64 {
	if s.Functions == 0 {
		return 0
	}
	return float64(s.Nodes) / float64(s.Functions)
}

// ComputeStats gathers Table 6 statistics.
func (g *Graph) ComputeStats() Stats {
	var st Stats
	fns := make(map[*simple.Function]bool)
	g.Walk(func(n *Node) {
		st.Nodes++
		fns[n.Fn] = true
		switch n.Kind {
		case Recursive:
			st.Recursive++
		case Approximate:
			st.Approximate++
		}
		if n.IsThread {
			st.Threads++
		}
	})
	st.Functions = len(fns)
	for _, f := range g.Prog.Functions {
		for _, site := range CallSites(f) {
			if site.Kind == simple.AsgnCall && g.Prog.Lookup(site.Callee.Name) == nil {
				continue
			}
			st.CallSites++
		}
	}
	return st
}

// Canonicalize sorts every node's children into (call-site textual order,
// callee name) order. During parallel analysis, indirect children discovered
// by concurrently evaluated branches of the same body can be appended in
// scheduling order; canonicalizing afterwards makes the graph — and every
// rendering derived from it — independent of the worker count.
func (g *Graph) Canonicalize() {
	g.Walk(func(n *Node) {
		if len(n.Children) < 2 {
			return
		}
		rank := make(map[*simple.Basic]int)
		for i, s := range CallSites(n.Fn) {
			rank[s] = i
		}
		sort.SliceStable(n.Children, func(i, j int) bool {
			ci, cj := n.Children[i], n.Children[j]
			if rank[ci.Site] != rank[cj.Site] {
				return rank[ci.Site] < rank[cj.Site]
			}
			return ci.Fn.Name() < cj.Fn.Name()
		})
	})
}

// Walk visits every node of the graph in depth-first preorder.
func (g *Graph) Walk(f func(*Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		f(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(g.Root)
}

// Path renders the call chain from main to n.
func (n *Node) Path() string {
	var names []string
	for cur := n; cur != nil; cur = cur.Parent {
		names = append(names, cur.Fn.Name())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// WriteDot emits the graph in Graphviz DOT form (Figure 2/7 style):
// approximate nodes are dashed, recursive nodes doubled, and the
// approximate->recursive back-edges dotted.
func (g *Graph) WriteDot(w io.Writer) {
	fmt.Fprintln(w, "digraph invocation {")
	fmt.Fprintln(w, "  node [shape=ellipse];")
	ids := make(map[*Node]int)
	g.Walk(func(n *Node) { ids[n] = len(ids) })
	// Deterministic order.
	nodes := make([]*Node, len(ids))
	for n, id := range ids {
		nodes[id] = n
	}
	for id, n := range nodes {
		attrs := ""
		switch n.Kind {
		case Recursive:
			attrs = ", peripheries=2"
		case Approximate:
			attrs = ", style=dashed"
		}
		fmt.Fprintf(w, "  n%d [label=%q%s];\n", id, n.Fn.Name(), attrs)
	}
	for id, n := range nodes {
		children := append([]*Node{}, n.Children...)
		sort.Slice(children, func(i, j int) bool { return ids[children[i]] < ids[children[j]] })
		for _, c := range children {
			if c.IsThread {
				fmt.Fprintf(w, "  n%d -> n%d [style=bold, label=\"spawn\"];\n", id, ids[c])
				continue
			}
			fmt.Fprintf(w, "  n%d -> n%d;\n", id, ids[c])
		}
		if n.RecPartner != nil {
			fmt.Fprintf(w, "  n%d -> n%d [style=dotted, constraint=false];\n", id, ids[n.RecPartner])
		}
	}
	fmt.Fprintln(w, "}")
}
