package invgraph

import (
	"strings"
	"testing"

	"repro/internal/cc/parser"
	"repro/internal/simple"
	"repro/internal/simplify"
)

func load(t *testing.T, src string) *simple.Program {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	return prog
}

func build(t *testing.T, src string) *Graph {
	t.Helper()
	g, err := Build(load(t, src))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// Figure 2(a): two call sites of g, each calling f — four paths, and the
// two f invocations are distinct nodes.
func TestFigure2aDistinctContexts(t *testing.T) {
	g := build(t, `
void f(void) {}
void g(void) { f(); }
int main() {
	g();
	g();
	f();
	return 0;
}
`)
	st := g.ComputeStats()
	// main, g, f (under first g), g, f (under second g), f (direct) = 6.
	if st.Nodes != 6 {
		t.Errorf("nodes = %d, want 6", st.Nodes)
	}
	if st.Recursive != 0 || st.Approximate != 0 {
		t.Errorf("no recursion expected, got R=%d A=%d", st.Recursive, st.Approximate)
	}
	// f appears under both g invocations: count f nodes.
	nf := 0
	g.Walk(func(n *Node) {
		if n.Fn.Name() == "f" {
			nf++
		}
	})
	if nf != 3 {
		t.Errorf("f nodes = %d, want 3 (distinct invocation chains)", nf)
	}
}

// Figure 2(b): simple recursion gets a recursive/approximate pair.
func TestFigure2bSimpleRecursion(t *testing.T) {
	g := build(t, `
void f(int n) { if (n > 0) f(n - 1); }
int main() { f(5); return 0; }
`)
	st := g.ComputeStats()
	if st.Nodes != 3 {
		t.Errorf("nodes = %d, want 3 (main, f-R, f-A)", st.Nodes)
	}
	if st.Recursive != 1 || st.Approximate != 1 {
		t.Errorf("R=%d A=%d, want 1/1", st.Recursive, st.Approximate)
	}
	// The approximate node's partner is the recursive ancestor.
	g.Walk(func(n *Node) {
		if n.Kind == Approximate {
			if n.RecPartner == nil || n.RecPartner.Kind != Recursive ||
				n.RecPartner.Fn != n.Fn {
				t.Error("approximate node must pair with its recursive ancestor")
			}
		}
	})
}

// Figure 2(c): simple and mutual recursion combined.
func TestFigure2cMutualRecursion(t *testing.T) {
	g := build(t, `
void g(int n);
void f(int n) {
	if (n > 0) f(n - 1);
	if (n > 1) g(n - 1);
}
void g(int n) {
	if (n > 0) f(n - 1);
}
int main() { f(3); return 0; }
`)
	st := g.ComputeStats()
	// f repeats on both the f->f chain and the f->g->f chain, so f is the
	// single recursive node with two approximate partners; g never
	// repeats on a chain from main.
	if st.Recursive != 1 || st.Approximate != 2 {
		t.Errorf("expected R=1 A=2, got R=%d A=%d", st.Recursive, st.Approximate)
	}
	// Every approximate node must point back to an ancestor on its path.
	g.Walk(func(n *Node) {
		if n.Kind != Approximate {
			return
		}
		found := false
		for a := n.Parent; a != nil; a = a.Parent {
			if a == n.RecPartner {
				found = true
			}
		}
		if !found {
			t.Errorf("approximate node %s: partner not an ancestor", n.Path())
		}
	})
}

func TestExternalCallsIgnored(t *testing.T) {
	g := build(t, `
int main() {
	printf("hi\n");
	return 0;
}
`)
	st := g.ComputeStats()
	if st.Nodes != 1 {
		t.Errorf("nodes = %d, want 1 (externals have no nodes)", st.Nodes)
	}
	if st.CallSites != 0 {
		t.Errorf("call sites = %d, want 0 (external calls not counted)", st.CallSites)
	}
}

func TestNoMainError(t *testing.T) {
	prog := load(t, `void f(void) {}`)
	if _, err := Build(prog); err == nil {
		t.Fatal("Build should fail without main")
	}
}

func TestAddIndirectChild(t *testing.T) {
	prog := load(t, `
void cb(void) {}
void (*fp)(void);
int main() {
	fp = cb;
	fp();
	return 0;
}
`)
	g, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Root.Children) != 0 {
		t.Fatalf("indirect site should start unexpanded, children=%d", len(g.Root.Children))
	}
	sites := CallSites(g.Root.Fn)
	var ind *simple.Basic
	for _, s := range sites {
		if s.Kind == simple.AsgnCallInd {
			ind = s
		}
	}
	if ind == nil {
		t.Fatal("indirect call site not found")
	}
	cbFn := prog.Lookup("cb")
	c1 := g.AddIndirectChild(g.Root, ind, cbFn)
	c2 := g.AddIndirectChild(g.Root, ind, cbFn)
	if c1 != c2 {
		t.Error("AddIndirectChild must be idempotent per (site, fn)")
	}
	if len(g.Root.Children) != 1 {
		t.Errorf("children = %d, want 1", len(g.Root.Children))
	}
}

func TestWriteDot(t *testing.T) {
	g := build(t, `
void f(int n) { if (n) f(n - 1); }
int main() { f(1); return 0; }
`)
	var sb strings.Builder
	g.WriteDot(&sb)
	dot := sb.String()
	for _, want := range []string{"digraph invocation", `label="main"`, "peripheries=2", "style=dashed", "style=dotted"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestCallSitesOrder(t *testing.T) {
	prog := load(t, `
void a(void) {}
void b(void) {}
int main() {
	a();
	if (1) { b(); }
	while (0) { a(); }
	return 0;
}
`)
	sites := CallSites(prog.Main())
	if len(sites) != 3 {
		t.Fatalf("call sites = %d, want 3", len(sites))
	}
	if sites[0].Callee.Name != "a" || sites[1].Callee.Name != "b" || sites[2].Callee.Name != "a" {
		t.Errorf("sites out of order: %v %v %v",
			sites[0].Callee.Name, sites[1].Callee.Name, sites[2].Callee.Name)
	}
}

func TestPath(t *testing.T) {
	g := build(t, `
void inner(void) {}
void outer(void) { inner(); }
int main() { outer(); return 0; }
`)
	var leaf *Node
	g.Walk(func(n *Node) {
		if n.Fn.Name() == "inner" {
			leaf = n
		}
	})
	if leaf == nil {
		t.Fatal("inner not in graph")
	}
	if got := leaf.Path(); got != "main -> outer -> inner" {
		t.Errorf("Path() = %q", got)
	}
}
