// Package live computes backward liveness of pointer variables over SIMPLE
// at statement granularity. It is the pruning oracle for the engine's
// demand-driven mode (pta.Options.Demand): a points-to fact (src, dst, def)
// may be dropped from the set flowing into a statement exactly when its
// source root variable is provably never read by the rest of the analysis —
// not by a later lvalue/rvalue evaluation, not by the map process at a call
// site (including function-pointer fan-out), not by a client-registered
// demand seed.
//
// The analysis follows the lazy/liveness-based pointer-analysis line of
// work (Khedker, Mycroft, Rawat): demand seeds make a variable live at the
// seeding statement, ordinary uses propagate liveness backward through the
// compositional SIMPLE control structures (with fixpoints at loop heads),
// and call sites propagate the callee's entry-global liveness backward into
// the caller while the liveness after the call flows into the callee's
// exit. Pointer-induced definitions are over-approximated by pinning: any
// variable whose facts can be reached through a pointer (address-taken,
// array-typed, static), plus every non-variable abstract location (heap,
// symbolic, string, NULL, freed, function) and every return-value
// pseudo-variable, is permanently live. Pinning errs only toward keeping
// facts, so pruning by this analysis never changes any fact the exhaustive
// engine would report for a live variable.
package live

import (
	"sort"

	"repro/internal/cc/ast"
	"repro/internal/cc/types"
	"repro/internal/simple"
)

// ---------------------------------------------------------------------------
// Demand seeds

// Seeds registers the demand of an analysis client: the statements whose
// points-to annotations must be recorded, and the variables whose facts
// must be exact there. Statements not seeded are pruned freely and get no
// annotation in demand mode.
type Seeds struct {
	// PinGlobals keeps every global variable live at every statement.
	// Clients that inspect whole-program escape state (the checker's
	// dangling-pointer pass walks global-source triples in every call
	// context's output) need this; pure position queries do not.
	PinGlobals bool

	stmts map[*simple.Basic][]*ast.Object
}

// NewSeeds returns an empty seed set.
func NewSeeds() *Seeds {
	return &Seeds{stmts: make(map[*simple.Basic][]*ast.Object)}
}

// Add demands the given variables at statement b. Adding a statement with
// no variables still marks it as seeded (its annotation is recorded).
func (s *Seeds) Add(b *simple.Basic, vars ...*ast.Object) {
	if b == nil {
		return
	}
	have := s.stmts[b]
	for _, v := range vars {
		if v == nil {
			continue
		}
		dup := false
		for _, h := range have {
			if h == v {
				dup = true
				break
			}
		}
		if !dup {
			have = append(have, v)
		}
	}
	s.stmts[b] = have
}

// AddStmtRefs demands every variable referenced by b: the base variable of
// each operand reference plus the function-pointer variable of an indirect
// call. This is the per-statement demand of clients that read every
// annotation (race, taint).
func (s *Seeds) AddStmtRefs(b *simple.Basic) {
	if b == nil {
		return
	}
	for _, r := range b.Refs() {
		s.Add(b, r.Var)
	}
	if b.FnPtr != nil {
		s.Add(b, b.FnPtr)
	}
	if _, ok := s.stmts[b]; !ok {
		s.stmts[b] = nil
	}
}

// Merge adds every seed of o into s.
func (s *Seeds) Merge(o *Seeds) {
	if o == nil {
		return
	}
	if o.PinGlobals {
		s.PinGlobals = true
	}
	for b, vars := range o.stmts {
		if len(vars) == 0 {
			if _, ok := s.stmts[b]; !ok {
				s.stmts[b] = nil
			}
			continue
		}
		s.Add(b, vars...)
	}
}

// Seeded reports whether b carries any demand.
func (s *Seeds) Seeded(b *simple.Basic) bool {
	if s == nil {
		return false
	}
	_, ok := s.stmts[b]
	return ok
}

// Demanded returns the variables demanded at b.
func (s *Seeds) Demanded(b *simple.Basic) []*ast.Object { return s.stmts[b] }

// Len returns the number of seeded statements.
func (s *Seeds) Len() int { return len(s.stmts) }

// SeedAllStatements seeds every basic statement of the program with every
// variable it references and pins all globals: the degenerate demand under
// which demand mode must reproduce the exhaustive analysis exactly.
func SeedAllStatements(prog *simple.Program) *Seeds {
	s := NewSeeds()
	s.PinGlobals = true
	prog.ForEachBasic(func(b *simple.Basic) { s.AddStmtRefs(b) })
	return s
}

// ---------------------------------------------------------------------------
// Bit sets

type bits []uint64

func newBits(n int) bits { return make(bits, (n+63)/64) }

func (b bits) get(i int) bool {
	w := i >> 6
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)&63)) != 0
}

func (b bits) set(i int)   { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bits) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

func (b bits) clone() bits {
	c := make(bits, len(b))
	copy(c, b)
	return c
}

// orInto merges o into b (b may be longer) and reports whether b changed.
func (b bits) orInto(o bits) bool {
	changed := false
	for i, w := range o {
		if i >= len(b) {
			break
		}
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

func (b bits) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Options and result

// Options tunes the over-approximations the liveness pass must make to
// stay sound for a particular engine configuration.
type Options struct {
	// AllFuncs widens indirect-call fan-out to every defined function
	// (matching pta's AllFuncs strategy). The default matches both the
	// Precise and AddrTaken strategies: address-taken functions are a
	// superset of any points-to-resolved target set.
	AllFuncs bool

	// NoKill disables strong liveness kills. Required when the engine
	// runs with NoDefinite (assignments then only weaken, never kill,
	// so a redefinition does not end a fact's life).
	NoKill bool
}

// Info is the computed liveness: per-statement live-variable sets plus the
// pin set. It is immutable after Compute and safe for concurrent readers.
type Info struct {
	seeds *Seeds
	opts  Options

	pinned map[*ast.Object]bool
	idx    map[*ast.Object]int              // tracked variable -> bit index
	owner  map[*ast.Object]*simple.Function // locals: owning function
	gwidth int                              // tracked globals occupy bits [0, gwidth)

	liveBefore map[*simple.Basic]bits

	entry map[*simple.Function]bits // live tracked globals at function entry
}

// Seeds returns the demand this liveness was computed for.
func (in *Info) Seeds() *Seeds { return in.seeds }

// Seeded reports whether b carries demand (its annotation is recorded).
func (in *Info) Seeded(b *simple.Basic) bool { return in.seeds.Seeded(b) }

// Pinned reports whether obj is permanently live (its facts are never
// pruned anywhere).
func (in *Info) Pinned(obj *ast.Object) bool { return in.pinned[obj] }

// LiveAt reports whether obj's facts must be kept at the input of b:
// pinned, untracked, or live by the backward dataflow.
func (in *Info) LiveAt(b *simple.Basic, obj *ast.Object) bool {
	return !in.Prunable(b, obj)
}

// Prunable reports whether a fact whose source is rooted at obj may be
// dropped from the set flowing into b. It is conservative: anything the
// pass cannot prove dead is reported live.
func (in *Info) Prunable(b *simple.Basic, obj *ast.Object) bool {
	if obj == nil || in.pinned[obj] {
		return false
	}
	i, ok := in.idx[obj]
	if !ok {
		return false
	}
	lb, ok := in.liveBefore[b]
	if !ok {
		return false
	}
	if i>>6 >= len(lb) {
		return false
	}
	return !lb.get(i)
}

// LiveCount returns the number of tracked variables live at the input of
// b (for the live_vars histogram); pinned variables are not counted.
func (in *Info) LiveCount(b *simple.Basic) int {
	return in.liveBefore[b].count()
}

// TrackedVars returns the number of variables the pass tracks (everything
// not pinned); the remainder of the program's variables are permanently
// live.
func (in *Info) TrackedVars() int { return len(in.idx) }

// EntryGlobals returns the names of tracked globals live at fn's entry,
// sorted. Pinned globals are omitted (they are live everywhere). Intended
// for tests.
func (in *Info) EntryGlobals(fn *simple.Function) []string {
	eb := in.entry[fn]
	if eb == nil {
		return nil
	}
	var names []string
	for obj, i := range in.idx {
		if i < in.gwidth && eb.get(i) {
			names = append(names, obj.Name)
		}
	}
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------------------
// Compute

// Compute runs the interprocedural backward liveness analysis for the
// given demand. A nil seeds value means "no demand": only pinned variables
// stay live.
func Compute(prog *simple.Program, seeds *Seeds, opts Options) *Info {
	if seeds == nil {
		seeds = NewSeeds()
	}
	in := &Info{
		seeds:      seeds,
		opts:       opts,
		pinned:     make(map[*ast.Object]bool),
		idx:        make(map[*ast.Object]int),
		owner:      make(map[*ast.Object]*simple.Function),
		liveBefore: make(map[*simple.Basic]bits),
		entry:      make(map[*simple.Function]bits),
	}
	in.computePinned(prog)
	in.assignIndices(prog)
	in.solve(prog)
	return in
}

// computePinned marks every variable whose facts can be read without a
// direct mention of the variable: address-taken (reachable through a
// pointer, so map/unmap and multi-level dereferences can touch it),
// array-containing (array decay takes the address implicitly), statics,
// return-value pseudo-variables (the unmap step reads them at every call
// site), variables of unknown type, and — when demanded by the seeds or
// forced by pthread concurrency — all globals.
func (in *Info) computePinned(prog *simple.Program) {
	pinGlobals := in.seeds.PinGlobals
	prog.ForEachBasic(func(b *simple.Basic) {
		// Threads read and write globals concurrently with every
		// statement after the spawn; global liveness is then not a
		// sequential backward problem, so pin all globals.
		if b.Kind == simple.AsgnCall && b.Callee != nil && b.Callee.Name == "pthread_create" {
			pinGlobals = true
		}
		// Defensive address-of at the SIMPLE level: the parser's
		// AddrTaken flag covers source-level &x, but any synthesized
		// AsgnAddr also makes its base reachable through a pointer.
		if b.Kind == simple.AsgnAddr && b.Addr != nil && !b.Addr.Deref {
			in.pinned[b.Addr.Var] = true
		}
	})
	pinVar := func(v *ast.Object) {
		if v == nil {
			return
		}
		if !isVarKind(v.Kind) || v.AddrTaken || v.Static || v.Type == nil || typeHasArray(v.Type) {
			in.pinned[v] = true
		}
	}
	for _, g := range prog.Globals {
		if pinGlobals {
			in.pinned[g] = true
			continue
		}
		pinVar(g)
	}
	for _, f := range prog.Functions {
		if f.RetVal != nil {
			in.pinned[f.RetVal] = true
		}
		for _, v := range f.Params {
			pinVar(v)
		}
		for _, v := range f.Locals {
			pinVar(v)
		}
	}
}

// typeHasArray reports whether t contains an array anywhere outside a
// pointer indirection: such a variable's address is implicitly taken by
// array-to-pointer decay.
func typeHasArray(t *types.Type) bool {
	seen := make(map[*types.Type]bool)
	var walk func(t *types.Type) bool
	walk = func(t *types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch t.Kind {
		case types.Array:
			return true
		case types.Struct, types.Union:
			for _, f := range t.Fields {
				if walk(f.Type) {
					return true
				}
			}
		}
		return false
	}
	return walk(t)
}

func (in *Info) assignIndices(prog *simple.Program) {
	gi := 0
	for _, g := range prog.Globals {
		if !in.pinned[g] && isVarKind(g.Kind) {
			in.idx[g] = gi
			gi++
		}
	}
	in.gwidth = gi
	for _, f := range prog.Functions {
		li := gi
		track := func(v *ast.Object) {
			if v == nil || in.pinned[v] || !isVarKind(v.Kind) {
				return
			}
			if _, dup := in.idx[v]; dup {
				return
			}
			in.idx[v] = li
			in.owner[v] = f
			li++
		}
		for _, v := range f.Params {
			track(v)
		}
		for _, v := range f.Locals {
			track(v)
		}
	}
}

// solver carries the cross-function fixpoint state: per-function live
// tracked globals at entry and exit. Exit sets grow monotonically from
// call-site merges; entry sets are recomputed by the intraprocedural walk.
type solver struct {
	info *Info
	prog *simple.Program

	exit    map[*simple.Function]bits
	changed bool

	addrTaken []*simple.Function // indirect-call / thread fan-out targets
}

func (in *Info) solve(prog *simple.Program) {
	s := &solver{info: in, prog: prog, exit: make(map[*simple.Function]bits)}
	for _, f := range prog.Functions {
		in.entry[f] = newBits(in.gwidth)
		s.exit[f] = newBits(in.gwidth)
		if in.opts.AllFuncs || (f.Obj != nil && f.Obj.AddrTaken) {
			s.addrTaken = append(s.addrTaken, f)
		}
	}
	// Cross-function fixpoint: entry and exit sets only grow, so this
	// terminates; the bound is a safety net, and blowing it falls back
	// to the sound extreme of pinning every tracked global.
	for iter := 0; ; iter++ {
		s.changed = false
		for _, f := range prog.Functions {
			s.walkFn(f)
		}
		if !s.changed {
			break
		}
		if iter > 4*len(prog.Functions)+64 {
			for i := 0; i < in.gwidth; i++ {
				for _, f := range prog.Functions {
					in.entry[f].set(i)
					s.exit[f].set(i)
				}
			}
			s.changed = false
			for _, f := range prog.Functions {
				s.walkFn(f)
			}
			break
		}
	}
	// Global initializers run before main; what is live after them is
	// what main's entry demands.
	if prog.GlobalInit != nil {
		out := newBits(in.gwidth)
		if m := prog.Main(); m != nil {
			out.orInto(in.entry[m])
		}
		w := &walker{s: s, fn: nil, width: in.gwidth}
		w.seq(prog.GlobalInit, out, walkCtx{ret: out})
	}
}

// walkFn runs one backward pass over f's body, records per-statement live
// sets, and merges the resulting entry-global liveness into the summary.
func (s *solver) walkFn(f *simple.Function) {
	width := s.info.gwidth
	for _, v := range append(append([]*ast.Object{}, f.Params...), f.Locals...) {
		if i, ok := s.info.idx[v]; ok && i >= width {
			width = i + 1
		}
	}
	// At return, locals are dead (nothing downstream names them: the
	// unmap step reads only symbolics, globals and the pinned return
	// value) and live globals are the function's exit summary.
	ret := newBits(width)
	ret.orInto(s.exit[f])
	w := &walker{s: s, fn: f, width: width}
	entryLive := w.seq(f.Body, ret, walkCtx{ret: ret})
	eb := s.info.entry[f]
	for i := 0; i < s.info.gwidth; i++ {
		if entryLive.get(i) && !eb.get(i) {
			eb.set(i)
			s.changed = true
		}
	}
}

// mergeExit records that the tracked globals in out (live after a call
// site resolving to f) are live at f's exit.
func (s *solver) mergeExit(f *simple.Function, out bits) {
	eb := s.exit[f]
	for i := 0; i < s.info.gwidth; i++ {
		if out.get(i) && !eb.get(i) {
			eb.set(i)
			s.changed = true
		}
	}
}

// ---------------------------------------------------------------------------
// Backward statement walker

// walkCtx carries the live sets at the targets of the escaping statements:
// break exits the innermost loop or switch, continue re-enters the
// innermost loop's re-test path, return exits the function.
type walkCtx struct {
	brk, cont, ret bits
}

type walker struct {
	s     *solver
	fn    *simple.Function
	width int
}

const maxLoopIter = 100000

// stmt returns the live set before s, given the live set after it.
func (w *walker) stmt(s simple.Stmt, out bits, ctx walkCtx) bits {
	switch s := s.(type) {
	case nil:
		return out
	case *simple.Basic:
		return w.basic(s, out)
	case *simple.Seq:
		return w.seq(s, out, ctx)
	case *simple.If:
		tin := w.seq(s.Then, out, ctx)
		ein := out
		if s.Else != nil {
			ein = w.seq(s.Else, out, ctx)
		}
		return w.union(tin, ein)
	case *simple.While:
		// CondEval; while (Cond) { Body; CondEval }
		h := out.clone() // live at the loop test
		for i := 0; ; i++ {
			ceIn := w.seq(s.CondEval, h, ctx)
			bodyIn := w.seq(s.Body, ceIn, walkCtx{brk: out, cont: ceIn, ret: ctx.ret})
			if !h.orInto(bodyIn) || i > maxLoopIter {
				break
			}
		}
		return w.seq(s.CondEval, h, ctx)
	case *simple.DoWhile:
		// do { Body; CondEval } while (Cond)
		h := out.clone()
		var bodyIn bits
		for i := 0; ; i++ {
			ceIn := w.seq(s.CondEval, h, ctx)
			bodyIn = w.seq(s.Body, ceIn, walkCtx{brk: out, cont: ceIn, ret: ctx.ret})
			if !h.orInto(bodyIn) || i > maxLoopIter {
				break
			}
		}
		return bodyIn
	case *simple.For:
		// Init; CondEval; while (Cond) { Body; Post; CondEval }
		h := out.clone()
		for i := 0; ; i++ {
			ceIn := w.seq(s.CondEval, h, ctx)
			postIn := w.seq(s.Post, ceIn, ctx)
			bodyIn := w.seq(s.Body, postIn, walkCtx{brk: out, cont: postIn, ret: ctx.ret})
			if !h.orInto(bodyIn) || i > maxLoopIter {
				break
			}
		}
		in := w.seq(s.CondEval, h, ctx)
		return w.seq(s.Init, in, ctx)
	case *simple.Switch:
		// Arms fall through right-to-left; any arm (or, without a
		// default, no arm) may be entered from the head.
		next := out
		hasDefault := false
		in := out
		for i := len(s.Cases) - 1; i >= 0; i-- {
			armIn := w.seq(s.Cases[i].Body, next, walkCtx{brk: out, cont: ctx.cont, ret: ctx.ret})
			next = armIn
			in = w.union(in, armIn)
			if s.Cases[i].IsDefault {
				hasDefault = true
			}
		}
		_ = hasDefault // without a default, `out` is already unioned in
		return in
	case *simple.Break:
		if ctx.brk != nil {
			return ctx.brk
		}
		return out
	case *simple.Continue:
		if ctx.cont != nil {
			return ctx.cont
		}
		return out
	case *simple.Return:
		return ctx.ret
	default:
		return out
	}
}

func (w *walker) seq(s *simple.Seq, out bits, ctx walkCtx) bits {
	if s == nil {
		return out
	}
	for i := len(s.List) - 1; i >= 0; i-- {
		out = w.stmt(s.List[i], out, ctx)
	}
	return out
}

// union returns a ∪ b without mutating either (a is reused when possible).
func (w *walker) union(a, b bits) bits {
	add := false
	for i := range b {
		if i < len(a) && a[i]|b[i] != a[i] {
			add = true
			break
		}
	}
	if !add {
		return a
	}
	c := a.clone()
	c.orInto(b)
	return c
}

// basic applies the backward transfer of one basic statement and records
// the live-before set (the set the engine prunes against).
func (w *walker) basic(b *simple.Basic, out bits) bits {
	in := out
	cow := false
	ensure := func() {
		if !cow {
			in = out.clone()
			cow = true
		}
	}
	setBit := func(i int) {
		if !in.get(i) {
			ensure()
			in.set(i)
		}
	}
	// Strong kill: a whole-variable assignment to a plain pointer ends
	// the previous fact's life (the engine performs the matching strong
	// kill). Calls are excluded: a call assigns its LHS only when the
	// callee actually returns pointer data, which we cannot guarantee.
	if !w.s.info.opts.NoKill && killsWholeVar(b) {
		if i, ok := w.trackedIdx(b.LHS.Var); ok && in.get(i) {
			ensure()
			in.clear(i)
		}
	}
	// Uses: the base variable of every reference the engine evaluates,
	// collected field-wise — never by pointer identity against b.LHS,
	// because the simplifier shares one *Ref between the LHS and the X
	// operand of x = x + 1, which would hide the operand read. A
	// non-dereferencing LHS or address-of base is a pure address
	// computation, and a scalar statement's transfer is the identity
	// (Figure 1's is_pointer_type test), so neither reads facts.
	use := func(r *simple.Ref) {
		if r == nil {
			return
		}
		if i, ok := w.trackedIdx(r.Var); ok {
			setBit(i)
		}
	}
	useOp := func(op simple.Operand) {
		if r, ok := op.(*simple.Ref); ok {
			use(r)
		}
	}
	switch {
	case b.Kind == simple.AsgnCall || b.Kind == simple.AsgnCallInd:
		// The engine maps every argument into the callee (and free
		// reads its argument's L-locations).
		if b.LHS != nil && b.LHS.Deref {
			use(b.LHS)
		}
		for _, a := range b.Args {
			useOp(a)
		}
	case pointerStmt(b):
		if b.LHS != nil && b.LHS.Deref {
			use(b.LHS)
		}
		useOp(b.X)
		useOp(b.Y)
		if b.Addr != nil && b.Addr.Deref {
			use(b.Addr)
		}
	}
	if b.FnPtr != nil {
		if i, ok := w.trackedIdx(b.FnPtr); ok {
			setBit(i)
		}
	}
	// Demand seeds are uses: the queried fact must survive to here.
	for _, v := range w.s.info.seeds.Demanded(b) {
		if i, ok := w.trackedIdx(v); ok {
			setBit(i)
		}
	}
	// Calls: the callee's entry-global demand must survive to the call
	// (map reads them), and what is live after the call is live at the
	// callee's exit (its facts flow through the callee's summary).
	for _, cf := range w.calleeFns(b) {
		for i := 0; i < w.s.info.gwidth; i++ {
			if w.s.info.entry[cf].get(i) {
				setBit(i)
			}
		}
		w.s.mergeExit(cf, out)
	}
	w.s.info.liveBefore[b] = in
	return in
}

// trackedIdx resolves v to its bit index, rejecting locals of other
// functions (their index space is reused per function).
func (w *walker) trackedIdx(v *ast.Object) (int, bool) {
	i, ok := w.s.info.idx[v]
	if !ok {
		return 0, false
	}
	if i >= w.s.info.gwidth && w.s.info.owner[v] != w.fn {
		return 0, false
	}
	return i, true
}

// killsWholeVar reports whether b definitely overwrites every points-to
// fact rooted at its LHS variable: a direct, unselected assignment to a
// plain pointer variable. Aggregates are excluded (the engine's kill hits
// only the root path, leaving field facts alive).
func killsWholeVar(b *simple.Basic) bool {
	switch b.Kind {
	case simple.AsgnCopy, simple.AsgnAddr, simple.AsgnUnary, simple.AsgnBinary, simple.AsgnMalloc:
	default:
		return false
	}
	lhs := b.LHS
	if lhs == nil || lhs.Deref || len(lhs.Path) != 0 || lhs.Var == nil {
		return false
	}
	t := lhs.Var.Type
	return t != nil && t.Kind == types.Pointer
}

// calleeFns resolves the defined functions a call statement may invoke.
// Indirect calls widen to every address-taken function (a superset of any
// strategy's resolved target set except AllFuncs, which widens further).
func (w *walker) calleeFns(b *simple.Basic) []*simple.Function {
	switch b.Kind {
	case simple.AsgnCall:
		if b.Callee == nil {
			return nil
		}
		if f := w.s.prog.Lookup(b.Callee.Name); f != nil {
			return []*simple.Function{f}
		}
		return nil
	case simple.AsgnCallInd:
		return w.s.addrTaken
	}
	return nil
}

func isVarKind(k ast.ObjKind) bool { return k == ast.Var || k == ast.Param }

// pointerStmt mirrors the engine's is_pointer_type test: the transfer of a
// statement assigning to a non-pointer location is the identity, so its
// references read no points-to facts.
func pointerStmt(b *simple.Basic) bool {
	if b.LHS == nil {
		return false
	}
	t := b.LHS.Type()
	if t == nil {
		return true // unknown type: the engine processes it, so be conservative
	}
	return t.Decay().Kind == types.Pointer
}
