package live_test

import (
	"testing"

	"repro/internal/cc/ast"
	"repro/internal/cc/parser"
	"repro/internal/pta/live"
	"repro/internal/simple"
	"repro/internal/simplify"
)

func load(t *testing.T, src string) *simple.Program {
	t.Helper()
	tu, err := parser.Parse("live.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	return prog
}

// stmtAt returns the first basic statement on the given source line.
func stmtAt(t *testing.T, prog *simple.Program, line int) *simple.Basic {
	t.Helper()
	var found *simple.Basic
	prog.ForEachBasic(func(b *simple.Basic) {
		if found == nil && b.Pos.Line == line {
			found = b
		}
	})
	if found == nil {
		t.Fatalf("no basic statement on line %d", line)
	}
	return found
}

// varNamed returns the unique referenced variable with the given name.
func varNamed(t *testing.T, prog *simple.Program, name string) *ast.Object {
	t.Helper()
	var found *ast.Object
	prog.ForEachBasic(func(b *simple.Basic) {
		for _, r := range b.Refs() {
			if r.Var != nil && r.Var.Name == name {
				found = r.Var
			}
		}
	})
	if found == nil {
		t.Fatalf("no variable named %q", name)
	}
	return found
}

// seedLine seeds the demand at every basic statement on the given line.
func seedLine(prog *simple.Program, line int) *live.Seeds {
	s := live.NewSeeds()
	prog.ForEachBasic(func(b *simple.Basic) {
		if b.Pos.Line == line {
			s.AddStmtRefs(b)
		}
	})
	return s
}

// TestLiveAcrossLoop checks that a pointer read inside a loop body stays
// live around the back edge: at the loop's post statement (i = i + 1) the
// pointer is still needed by the next iteration's read.
func TestLiveAcrossLoop(t *testing.T) {
	src := `int x, y;
int *p;
int main() {
    int i, s;
    int *q;
    q = &x;
    s = 0;
    for (i = 0; i < 10; i = i + 1)
        s = s + *q;
    return s;
}
`
	prog := load(t, src)
	seeds := seedLine(prog, 9) // s = s + *q
	info := live.Compute(prog, seeds, live.Options{})
	q := varNamed(t, prog, "q")
	body := stmtAt(t, prog, 9)
	post := stmtAt(t, prog, 8) // the i = i + 1 basic shares line 8
	if !info.LiveAt(body, q) {
		t.Errorf("q dead at its own read")
	}
	if !info.LiveAt(post, q) {
		t.Errorf("q dead at loop post statement — back-edge liveness lost")
	}
	// s=0 precedes the first read of q, so q (assigned on line 6) must be
	// live there too; the assignment itself may see q dead beforehand.
	if !info.LiveAt(stmtAt(t, prog, 7), q) {
		t.Errorf("q dead between its definition and the loop")
	}
}

// TestLiveThroughFnPtrCall checks the indirect-call fan-out: a global
// demanded inside any address-taken callee must be live at the indirect
// call site in the caller (the union over all may-targets).
func TestLiveThroughFnPtrCall(t *testing.T) {
	src := `int a, b;
int *ga;
int *gb;
void fa(void) { a = *ga; }
void fb(void) { b = *gb; }
int main() {
    void (*fp)(void);
    if (a)
        fp = fa;
    else
        fp = fb;
    fp();
    return 0;
}
`
	prog := load(t, src)
	seeds := live.NewSeeds()
	seeds.AddStmtRefs(stmtAt(t, prog, 4)) // a = *ga inside fa
	seeds.AddStmtRefs(stmtAt(t, prog, 5)) // b = *gb inside fb
	info := live.Compute(prog, seeds, live.Options{})
	call := stmtAt(t, prog, 12)
	if call.Kind != simple.AsgnCallInd {
		t.Fatalf("line 12 is %v, want indirect call", call.Kind)
	}
	for _, g := range []string{"ga", "gb"} {
		if info.Prunable(call, varNamed(t, prog, g)) {
			t.Errorf("global %s prunable at indirect call site; both fa and fb are may-targets", g)
		}
	}
	// The caller's entry must also demand both globals, since the call is
	// reachable from entry with no intervening definition.
	got := info.EntryGlobals(prog.Lookup("main"))
	want := map[string]bool{"ga": true, "gb": true}
	for _, n := range got {
		delete(want, n)
	}
	for n := range want {
		t.Errorf("global %s not live at main entry (got %v)", n, got)
	}
}

// TestDeadAfterLastUse checks forward pruning: once a pointer's last read
// is behind us, its facts are prunable at later statements.
func TestDeadAfterLastUse(t *testing.T) {
	src := `int x;
int main() {
    int *p;
    int *q;
    int v, w;
    p = &x;
    v = *p;
    q = &x;
    w = *q;
    return v + w;
}
`
	prog := load(t, src)
	seeds := seedLine(prog, 7) // v = *p only
	info := live.Compute(prog, seeds, live.Options{})
	p := varNamed(t, prog, "p")
	if info.Prunable(stmtAt(t, prog, 7), p) {
		t.Errorf("p prunable at its demanded read")
	}
	if !info.Prunable(stmtAt(t, prog, 8), p) {
		t.Errorf("p still live after its last use — dead code not pruned")
	}
	if !info.Prunable(stmtAt(t, prog, 9), p) {
		t.Errorf("p still live at w = *q")
	}
	// q is never demanded: prunable even at its own read.
	q := varNamed(t, prog, "q")
	if !info.Prunable(stmtAt(t, prog, 9), q) {
		t.Errorf("undemanded q not prunable")
	}
}

// TestKillEndsLiveRange checks the strong-kill rule: a whole-variable
// reassignment of a plain pointer ends the previous fact's live range, and
// NoKill disables exactly that.
func TestKillEndsLiveRange(t *testing.T) {
	src := `int x, y;
int main() {
    int *p;
    int v;
    p = &x;
    v = v + 1;
    p = &y;
    v = *p;
    return v;
}
`
	prog := load(t, src)
	seeds := seedLine(prog, 8) // v = *p
	p := varNamed(t, prog, "p")
	info := live.Compute(prog, seeds, live.Options{})
	if !info.Prunable(stmtAt(t, prog, 6), p) {
		t.Errorf("p live before its killing redefinition on line 7")
	}
	if info.Prunable(stmtAt(t, prog, 8), p) {
		t.Errorf("p dead at its demanded read")
	}
	nokill := live.Compute(prog, seeds, live.Options{NoKill: true})
	if nokill.Prunable(stmtAt(t, prog, 6), p) {
		t.Errorf("NoKill: redefinition still ends p's live range")
	}
}

// TestAllSeedsNothingPrunable checks the degenerate demand: with every
// statement seeded, no referenced variable is prunable anywhere (the
// demand run must behave exactly like the exhaustive run).
func TestAllSeedsNothingPrunable(t *testing.T) {
	src := `int x;
int *g;
void f(int **h) { *h = &x; }
int main() {
    int *p;
    f(&p);
    g = p;
    return *p;
}
`
	prog := load(t, src)
	info := live.Compute(prog, seeds(prog), live.Options{})
	prog.ForEachBasic(func(b *simple.Basic) {
		for _, r := range b.Refs() {
			if r.Var != nil && info.Prunable(b, r.Var) {
				t.Errorf("all-seeds: %s prunable at stmt %d @%s", r.Var.Name, b.ID, b.Pos)
			}
		}
	})
}

func seeds(prog *simple.Program) *live.Seeds { return live.SeedAllStatements(prog) }
