// Package loc defines abstract stack locations (paper §3.1): named
// abstractions of the real stack locations a program can access. A location
// is a variable (with an optional selector path through struct fields and
// the two-location array abstraction a_head/a_tail), a symbolic name for
// invisible variables (1_x, 2_x, …), the single heap location, the NULL
// pseudo-location, string-literal storage, or a function (the target of a
// function pointer).
package loc

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cc/ast"
	"repro/internal/cc/types"
	"repro/internal/simple"
)

// Kind discriminates Location.
type Kind int

// Location kinds.
const (
	Var      Kind = iota // named variable (local, global, parameter) + path
	Symbolic             // invisible-variable stand-in, scoped to a function
	Heap                 // the single abstract heap location
	Null                 // the NULL pseudo-target
	Str                  // string-literal storage
	Func                 // a function, target of function pointers
	Freed                // deallocated heap storage (targets of freed pointers)
)

// Elem is one element of a location's selector path.
type Elem struct {
	Field string // field name, or "" for an array part
	Tail  bool   // array part: false = head (element 0), true = tail (1..n)
	Arr   bool   // true when this element is an array part
}

func (e Elem) String() string {
	if !e.Arr {
		return "." + e.Field
	}
	if e.Tail {
		return "[*]"
	}
	return "[0]"
}

// HeadElem and TailElem are the two abstract array parts. UnionElem is the
// collapsed representative of all members of a union: the members overlap
// in memory, so they share one absorbing abstract location (any further
// selector stays at it), which is conservatively multi.
var (
	HeadElem  = Elem{Arr: true}
	TailElem  = Elem{Arr: true, Tail: true}
	UnionElem = Elem{Field: "$union"}
)

// FieldElem returns a field path element.
func FieldElem(name string) Elem { return Elem{Field: name} }

// Location is one interned abstract stack location. Locations are created
// only by a Table; pointer equality is identity.
type Location struct {
	Kind Kind
	Obj  *ast.Object      // Var: the variable; Func: the function object
	Fn   *simple.Function // Symbolic: owning function; Var: nil for globals
	Path []Elem           // Var/Symbolic: selector path
	Sym  string           // Symbolic: root name, e.g. "1_x"

	name    string // cached render
	sortKey string // cached deterministic ordering key
	multi   bool   // represents more than one real stack location
	blob    bool   // union-collapsed location: absorbs further selectors
	typ     *types.Type
}

// Name returns the display name of the location (unique within its scope).
func (l *Location) Name() string { return l.name }

// Multi reports whether the location may represent more than one real stack
// location (a_tail parts, heap, string storage). Definite relationships must
// not be generated from or killed at such locations.
func (l *Location) Multi() bool { return l.multi }

// Type returns the C type of the location's content, when known.
func (l *Location) Type() *types.Type { return l.typ }

// IsGlobalish reports whether the location is visible in every function:
// global variables, heap, NULL, strings, and functions.
func (l *Location) IsGlobalish() bool {
	switch l.Kind {
	case Heap, Null, Str, Func, Freed:
		return true
	case Var:
		return l.Obj.Global
	}
	return false
}

// Owner returns the owning function for locals and symbolics, or nil.
func (l *Location) Owner() *simple.Function { return l.Fn }

func (l *Location) String() string { return l.name }

// SortKey orders locations deterministically. It is computed once at
// interning time (locations are immutable), since set iteration sorts by it
// in hot paths.
func (l *Location) SortKey() string { return l.sortKey }

// initSortKey fills the cached ordering key; called by the Table when a
// location is created.
func (l *Location) initSortKey() {
	owner := ""
	if l.Fn != nil {
		owner = l.Fn.Name()
	}
	l.sortKey = owner + "\x00" + l.name
}

// ---------------------------------------------------------------------------
// Table

// DefaultTableShards is the shard count of NewTable. Like the points-to set
// interner, the location table is touched by every worker on nearly every
// statement; a single table mutex serializes the parallel analysis, so the
// key maps are split into independently locked shards selected by a hash of
// the deterministic key string.
const DefaultTableShards = 16

// locShard is one independently locked slice of the table's key maps.
type locShard struct {
	mu    sync.RWMutex
	vars  map[varKey]*Location
	syms  map[symKey]*Location
	funcs map[*ast.Object]*Location

	contended atomic.Uint64 // lock acquisitions that had to wait
	_         [24]byte      // keep neighbouring shards off one cache line
}

func (s *locShard) lock() {
	if !s.mu.TryLock() {
		s.contended.Add(1)
		s.mu.Lock()
	}
}

func (s *locShard) rlock() {
	if !s.mu.TryRLock() {
		s.contended.Add(1)
		s.mu.RLock()
	}
}

// Table interns all locations of one program analysis. It is safe for
// concurrent use: the parallel analysis workers intern locations through a
// shared table, and interning is idempotent (one canonical *Location per
// key, so pointer equality remains identity). The key maps are sharded by a
// hash of the key so concurrent workers interning unrelated locations do not
// serialize on one mutex; shard choice is invisible to clients.
type Table struct {
	shards []*locShard
	mask   uint64
	heap   *Location
	null   *Location
	str    *Location
	freed  *Location

	ownerMu sync.RWMutex
	owners  map[*ast.Object]*simple.Function // local/param -> function
}

type varKey struct {
	obj  *ast.Object
	path string
}

type symKey struct {
	fn   *simple.Function
	sym  string
	path string
}

// NewTable returns an empty location table with DefaultTableShards shards,
// registering ownership of locals and parameters for the given program.
func NewTable(prog *simple.Program) *Table { return NewTableSharded(prog, DefaultTableShards) }

// NewTableSharded returns an empty location table with the given shard
// count, rounded up to a power of two (minimum 1). The 1-shard table is the
// pre-sharding behavior: one mutex guarding every map.
func NewTableSharded(prog *simple.Program, shards int) *Table {
	n := 1
	for n < shards {
		n <<= 1
	}
	t := &Table{
		shards: make([]*locShard, n),
		mask:   uint64(n - 1),
		owners: make(map[*ast.Object]*simple.Function),
	}
	for i := range t.shards {
		t.shards[i] = &locShard{
			vars:  make(map[varKey]*Location),
			syms:  make(map[symKey]*Location),
			funcs: make(map[*ast.Object]*Location),
		}
	}
	t.heap = &Location{Kind: Heap, name: "heap", multi: true}
	t.null = &Location{Kind: Null, name: "NULL"}
	t.str = &Location{Kind: Str, name: "_string_", multi: true}
	t.freed = &Location{Kind: Freed, name: "freed", multi: true}
	t.heap.initSortKey()
	t.null.initSortKey()
	t.str.initSortKey()
	t.freed.initSortKey()
	if prog != nil {
		for _, f := range prog.Functions {
			for _, p := range f.Params {
				t.owners[p] = f
			}
			for _, l := range f.Locals {
				t.owners[l] = f
			}
			if f.RetVal != nil {
				t.owners[f.RetVal] = f
			}
		}
	}
	return t
}

// hashKey is FNV-1a over a key string, folded so the masked low bits mix in
// the high half. Shard choice must be deterministic but has no semantic
// weight: two objects sharing a name land in one shard, which only affects
// load distribution.
func hashKey(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	return h ^ h>>32
}

func (t *Table) shard(h uint64) *locShard { return t.shards[h&t.mask] }

// TableStats reports sharding activity of the table.
type TableStats struct {
	Shards    int    // shard count
	Locations int    // distinct interned locations (vars + syms + funcs)
	Contended uint64 // shard-lock acquisitions that had to wait
}

// Stats returns a snapshot of the table's shard counters.
func (t *Table) Stats() TableStats {
	st := TableStats{Shards: len(t.shards)}
	for _, sh := range t.shards {
		sh.mu.RLock()
		st.Locations += len(sh.vars) + len(sh.syms) + len(sh.funcs)
		sh.mu.RUnlock()
		st.Contended += sh.contended.Load()
	}
	return st
}

// RegisterLocal records that obj is a local of fn (used for temporaries
// added after table construction).
func (t *Table) RegisterLocal(obj *ast.Object, fn *simple.Function) {
	t.ownerMu.Lock()
	t.owners[obj] = fn
	t.ownerMu.Unlock()
}

func (t *Table) ownerOf(obj *ast.Object) *simple.Function {
	t.ownerMu.RLock()
	fn := t.owners[obj]
	t.ownerMu.RUnlock()
	return fn
}

// HeapLoc returns the single heap location.
func (t *Table) HeapLoc() *Location { return t.heap }

// NullLoc returns the NULL pseudo-location.
func (t *Table) NullLoc() *Location { return t.null }

// StrLoc returns the string-literal storage location.
func (t *Table) StrLoc() *Location { return t.str }

// FreedLoc returns the deallocated-heap location: free(p) retargets p's heap
// relationships here, mirroring HeapLoc. Like the heap it stands for many
// real locations and absorbs selectors, but unlike the heap it is never a
// legal target of a load or store — the memory-safety checker reports
// dereferences that can reach it.
func (t *Table) FreedLoc() *Location { return t.freed }

// FuncLoc returns the location standing for a function (the target of
// function pointers).
func (t *Table) FuncLoc(obj *ast.Object) *Location {
	sh := t.shard(hashKey(obj.Name))
	sh.rlock()
	l, ok := sh.funcs[obj]
	sh.mu.RUnlock()
	if ok {
		return l
	}
	sh.lock()
	defer sh.mu.Unlock()
	if l, ok := sh.funcs[obj]; ok {
		return l
	}
	l = &Location{Kind: Func, Obj: obj, name: obj.Name, typ: obj.Type}
	l.initSortKey()
	sh.funcs[obj] = l
	return l
}

func pathString(path []Elem) string {
	var sb strings.Builder
	for _, e := range path {
		sb.WriteString(e.String())
	}
	return sb.String()
}

// VarLoc returns the location for a variable plus selector path.
func (t *Table) VarLoc(obj *ast.Object, path []Elem) *Location {
	key := varKey{obj: obj, path: pathString(path)}
	sh := t.shard(hashKey(obj.Name, key.path))
	sh.rlock()
	l, ok := sh.vars[key]
	sh.mu.RUnlock()
	if ok {
		return l
	}
	sh.lock()
	defer sh.mu.Unlock()
	if l, ok := sh.vars[key]; ok {
		return l
	}
	l = &Location{
		Kind: Var,
		Obj:  obj,
		Fn:   t.ownerOf(obj),
		Path: append([]Elem{}, path...),
		name: obj.Name + key.path,
		typ:  typeAt(obj.Type, path),
	}
	for _, e := range path {
		if e.Arr && e.Tail {
			l.multi = true
		}
		if !e.Arr && e.Field == "$union" {
			l.multi = true
			l.blob = true
		}
	}
	l.initSortKey()
	sh.vars[key] = l
	return l
}

// SymLoc returns the symbolic location with the given root name and path,
// scoped to fn.
func (t *Table) SymLoc(fn *simple.Function, sym string, path []Elem, typ *types.Type) *Location {
	key := symKey{fn: fn, sym: sym, path: pathString(path)}
	fnName := ""
	if fn != nil {
		fnName = fn.Name()
	}
	sh := t.shard(hashKey(fnName, sym, key.path))
	sh.rlock()
	l, ok := sh.syms[key]
	sh.mu.RUnlock()
	if ok {
		return l
	}
	sh.lock()
	defer sh.mu.Unlock()
	if l, ok := sh.syms[key]; ok {
		return l
	}
	l = &Location{
		Kind: Symbolic,
		Fn:   fn,
		Sym:  sym,
		Path: append([]Elem{}, path...),
		name: sym + key.path,
		typ:  typ,
	}
	for _, e := range path {
		if e.Arr && e.Tail {
			l.multi = true
		}
		if !e.Arr && e.Field == "$union" {
			l.multi = true
			l.blob = true
		}
	}
	l.initSortKey()
	sh.syms[key] = l
	return l
}

// Extend returns the location reached from l by appending one path element.
// Heap, string and union-collapsed locations absorb selectors (they each
// stand for one undifferentiated region); NULL and functions cannot be
// extended and return nil. A field selector applied to a union type lands
// on the collapsed $union member (union members overlap in memory).
func (t *Table) Extend(l *Location, e Elem) *Location {
	switch l.Kind {
	case Heap, Str, Freed:
		return l
	case Null, Func:
		return nil
	}
	if l.blob {
		return l
	}
	if !e.Arr && l.typ != nil && l.typ.Kind == types.Union {
		e = UnionElem
	}
	switch l.Kind {
	case Var:
		return t.VarLoc(l.Obj, append(append([]Elem{}, l.Path...), e))
	case Symbolic:
		return t.SymLoc(l.Fn, l.Sym, append(append([]Elem{}, l.Path...), e), elemType(l.typ, e))
	}
	return nil
}

// Root returns the location with the path stripped (the variable or
// symbolic root itself).
func (t *Table) Root(l *Location) *Location {
	if len(l.Path) == 0 {
		return l
	}
	switch l.Kind {
	case Var:
		return t.VarLoc(l.Obj, nil)
	case Symbolic:
		return t.SymLoc(l.Fn, l.Sym, nil, nil)
	}
	return l
}

func elemType(t *types.Type, e Elem) *types.Type {
	if t == nil {
		return nil
	}
	if !e.Arr && e.Field == "$union" {
		return nil // collapsed union member: type indeterminate
	}
	if e.Arr {
		d := t.Decay()
		if d.Kind == types.Pointer {
			return d.Elem
		}
		return nil
	}
	if f := t.FieldByName(e.Field); f != nil {
		return f.Type
	}
	return nil
}

func typeAt(t *types.Type, path []Elem) *types.Type {
	for _, e := range path {
		t = elemType(t, e)
		if t == nil {
			return nil
		}
	}
	return t
}

// SymCount returns the number of distinct symbolic root names created for
// fn (Table 2 counts them among the function's abstract stack variables).
func (t *Table) SymCount(fn *simple.Function) int {
	names := make(map[string]bool)
	for _, sh := range t.shards {
		sh.mu.RLock()
		for k := range sh.syms {
			if k.fn == fn && k.path == "" {
				names[k.sym] = true
			}
		}
		sh.mu.RUnlock()
	}
	return len(names)
}

// SortLocs sorts a slice of locations deterministically in place and
// returns it.
func SortLocs(ls []*Location) []*Location {
	sort.Slice(ls, func(i, j int) bool { return ls[i].SortKey() < ls[j].SortKey() })
	return ls
}

// PointerPaths enumerates the selector paths within type t that denote
// pointer-carrying scalar locations (pointers themselves). It is used to
// enumerate the abstract locations of aggregates: for `struct {int *p;
// int *a[4];} s` it yields [.p], [.a[0]], [.a[*]].
func PointerPaths(t *types.Type) [][]Elem {
	var out [][]Elem
	var walk func(t *types.Type, path []Elem, depth int)
	walk = func(t *types.Type, path []Elem, depth int) {
		if t == nil || depth > 12 {
			return
		}
		switch t.Kind {
		case types.Pointer:
			out = append(out, path)
		case types.Array:
			if !t.Elem.HasPointers() {
				return
			}
			walk(t.Elem, appendElem(path, HeadElem), depth+1)
			walk(t.Elem, appendElem(path, TailElem), depth+1)
		case types.Struct:
			for _, f := range t.Fields {
				if !f.Type.HasPointers() {
					continue
				}
				walk(f.Type, appendElem(path, FieldElem(f.Name)), depth+1)
			}
		case types.Union:
			// All members collapse into one absorbing location.
			out = append(out, appendElem(path, UnionElem))
		}
	}
	walk(t, nil, 0)
	return out
}

// appendElem appends without sharing backing arrays between branches.
func appendElem(path []Elem, e Elem) []Elem {
	return append(append(make([]Elem, 0, len(path)+1), path...), e)
}

// AllPaths enumerates every scalar selector path of t, pointer-carrying or
// not (used to count abstract stack variables for Table 2).
func AllPaths(t *types.Type) [][]Elem {
	var out [][]Elem
	var walk func(t *types.Type, path []Elem, depth int)
	walk = func(t *types.Type, path []Elem, depth int) {
		if t == nil || depth > 12 {
			return
		}
		switch t.Kind {
		case types.Array:
			walk(t.Elem, appendElem(path, HeadElem), depth+1)
			walk(t.Elem, appendElem(path, TailElem), depth+1)
		case types.Struct:
			for _, f := range t.Fields {
				walk(f.Type, appendElem(path, FieldElem(f.Name)), depth+1)
			}
		case types.Union:
			out = append(out, appendElem(path, UnionElem))
		default:
			out = append(out, path)
		}
	}
	walk(t, nil, 0)
	return out
}

// Fmt renders a location list for diagnostics.
func Fmt(ls []*Location) string {
	names := make([]string, len(ls))
	for i, l := range SortLocs(append([]*Location{}, ls...)) {
		names[i] = l.Name()
	}
	return fmt.Sprintf("[%s]", strings.Join(names, " "))
}
