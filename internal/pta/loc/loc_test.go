package loc

import (
	"testing"

	"repro/internal/cc/ast"
	"repro/internal/cc/types"
)

func TestInterning(t *testing.T) {
	tab := NewTable(nil)
	obj := &ast.Object{Name: "x", Kind: ast.Var, Type: types.IntType}
	a := tab.VarLoc(obj, nil)
	b := tab.VarLoc(obj, nil)
	if a != b {
		t.Error("same variable must intern to the same location")
	}
	f1 := tab.VarLoc(obj, []Elem{FieldElem("f")})
	f2 := tab.VarLoc(obj, []Elem{FieldElem("f")})
	if f1 != f2 {
		t.Error("same path must intern to the same location")
	}
	if f1 == a {
		t.Error("different paths must be different locations")
	}
}

func TestNames(t *testing.T) {
	tab := NewTable(nil)
	obj := &ast.Object{Name: "arr", Kind: ast.Var}
	head := tab.VarLoc(obj, []Elem{HeadElem})
	tail := tab.VarLoc(obj, []Elem{TailElem})
	if head.Name() != "arr[0]" {
		t.Errorf("head name = %q, want arr[0]", head.Name())
	}
	if tail.Name() != "arr[*]" {
		t.Errorf("tail name = %q, want arr[*]", tail.Name())
	}
	s := &ast.Object{Name: "s", Kind: ast.Var}
	sf := tab.VarLoc(s, []Elem{FieldElem("f"), FieldElem("g")})
	if sf.Name() != "s.f.g" {
		t.Errorf("field path name = %q, want s.f.g", sf.Name())
	}
}

func TestMulti(t *testing.T) {
	tab := NewTable(nil)
	obj := &ast.Object{Name: "arr", Kind: ast.Var}
	if tab.VarLoc(obj, []Elem{HeadElem}).Multi() {
		t.Error("array head represents exactly one location")
	}
	if !tab.VarLoc(obj, []Elem{TailElem}).Multi() {
		t.Error("array tail represents multiple locations")
	}
	if !tab.HeapLoc().Multi() {
		t.Error("heap is a multi location")
	}
	if tab.NullLoc().Multi() {
		t.Error("NULL is not a multi location")
	}
	if !tab.StrLoc().Multi() {
		t.Error("string storage is a multi location")
	}
}

func TestExtendCollapsesHeap(t *testing.T) {
	tab := NewTable(nil)
	h := tab.HeapLoc()
	if tab.Extend(h, FieldElem("next")) != h {
		t.Error("heap absorbs field selectors")
	}
	if tab.Extend(h, TailElem) != h {
		t.Error("heap absorbs index selectors")
	}
	if tab.Extend(tab.NullLoc(), FieldElem("f")) != nil {
		t.Error("NULL cannot be extended")
	}
}

func TestGlobalish(t *testing.T) {
	tab := NewTable(nil)
	g := &ast.Object{Name: "g", Kind: ast.Var, Global: true}
	l := &ast.Object{Name: "l", Kind: ast.Var}
	if !tab.VarLoc(g, nil).IsGlobalish() {
		t.Error("global variable is globalish")
	}
	if tab.VarLoc(l, nil).IsGlobalish() {
		t.Error("local variable is not globalish")
	}
	if !tab.HeapLoc().IsGlobalish() || !tab.NullLoc().IsGlobalish() {
		t.Error("heap and NULL are globalish")
	}
	fo := &ast.Object{Name: "f", Kind: ast.FuncObj, Global: true}
	if !tab.FuncLoc(fo).IsGlobalish() {
		t.Error("function locations are globalish")
	}
}

func TestSymbolicLocations(t *testing.T) {
	tab := NewTable(nil)
	s1 := tab.SymLoc(nil, "1_x", nil, types.IntType)
	s2 := tab.SymLoc(nil, "1_x", nil, nil)
	if s1 != s2 {
		t.Error("symbolic names intern by (fn, name, path)")
	}
	ext := tab.Extend(s1, FieldElem("f"))
	if ext.Name() != "1_x.f" {
		t.Errorf("extension name = %q, want 1_x.f", ext.Name())
	}
	if tab.Root(ext) != s1 {
		t.Error("Root should strip the path")
	}
}

func TestPointerPaths(t *testing.T) {
	// struct { int *p; int n; int *a[4]; struct { char *q; } in; }
	inner := &types.Type{Kind: types.Struct, Tag: "in", Fields: []*types.Field{
		{Name: "q", Type: types.PointerTo(types.CharType)},
	}}
	st := &types.Type{Kind: types.Struct, Tag: "s", Fields: []*types.Field{
		{Name: "p", Type: types.PointerTo(types.IntType)},
		{Name: "n", Type: types.IntType},
		{Name: "a", Type: types.ArrayOf(types.PointerTo(types.IntType), 4)},
		{Name: "in", Type: inner},
	}}
	paths := PointerPaths(st)
	// Expected: .p, .a[0], .a[*], .in.q  => 4 paths.
	if len(paths) != 4 {
		t.Fatalf("PointerPaths found %d paths, want 4", len(paths))
	}
	names := make(map[string]bool)
	tab := NewTable(nil)
	obj := &ast.Object{Name: "s", Kind: ast.Var, Type: st}
	for _, p := range paths {
		names[tab.VarLoc(obj, p).Name()] = true
	}
	for _, want := range []string{"s.p", "s.a[0]", "s.a[*]", "s.in.q"} {
		if !names[want] {
			t.Errorf("missing pointer path %s (have %v)", want, names)
		}
	}
}

func TestAllPathsCountsScalars(t *testing.T) {
	st := &types.Type{Kind: types.Struct, Tag: "t", Fields: []*types.Field{
		{Name: "x", Type: types.IntType},
		{Name: "y", Type: types.DoubleType},
	}}
	if n := len(AllPaths(st)); n != 2 {
		t.Errorf("AllPaths(struct{int;double}) = %d, want 2", n)
	}
	arr := types.ArrayOf(types.IntType, 10)
	if n := len(AllPaths(arr)); n != 2 {
		t.Errorf("AllPaths(int[10]) = %d (head+tail), want 2", n)
	}
	if n := len(AllPaths(types.IntType)); n != 1 {
		t.Errorf("AllPaths(int) = %d, want 1", n)
	}
}

func TestNoPointerPathsWithoutPointers(t *testing.T) {
	st := &types.Type{Kind: types.Struct, Fields: []*types.Field{
		{Name: "x", Type: types.IntType},
	}}
	if n := len(PointerPaths(st)); n != 0 {
		t.Errorf("pointer-free struct has %d pointer paths, want 0", n)
	}
}

func TestRecursiveTypeTermination(t *testing.T) {
	// struct node { struct node *next; } — PointerPaths must terminate.
	node := &types.Type{Kind: types.Struct, Tag: "node"}
	node.Fields = []*types.Field{{Name: "next", Type: types.PointerTo(node)}}
	node.Done = true
	paths := PointerPaths(node)
	if len(paths) != 1 {
		t.Errorf("recursive struct: %d paths, want 1 (.next)", len(paths))
	}
}

func TestSortLocsDeterministic(t *testing.T) {
	tab := NewTable(nil)
	a := tab.VarLoc(&ast.Object{Name: "a", Kind: ast.Var, Global: true}, nil)
	b := tab.VarLoc(&ast.Object{Name: "b", Kind: ast.Var, Global: true}, nil)
	c := tab.VarLoc(&ast.Object{Name: "c", Kind: ast.Var, Global: true}, nil)
	got := SortLocs([]*Location{c, a, b})
	if got[0] != a || got[1] != b || got[2] != c {
		t.Errorf("SortLocs order wrong: %v", Fmt(got))
	}
}

func TestFreedLoc(t *testing.T) {
	tab := NewTable(nil)
	f := tab.FreedLoc()
	if f == nil || f.Kind != Freed {
		t.Fatalf("FreedLoc: %v", f)
	}
	if f == tab.HeapLoc() {
		t.Error("FreedLoc must be distinct from HeapLoc")
	}
	if !f.Multi() {
		t.Error("freed stands for many dead objects: must be multi")
	}
	if !f.IsGlobalish() {
		t.Error("freed is visible in every scope: must be globalish")
	}
	// Like the heap, freed absorbs selectors: a field of a freed object is
	// still freed storage.
	if got := tab.Extend(f, FieldElem("next")); got != f {
		t.Errorf("Extend(freed, .next) = %v, want freed itself", got)
	}
	if got := tab.Extend(f, TailElem); got != f {
		t.Errorf("Extend(freed, tail) = %v, want freed itself", got)
	}
}
