package loc

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cc/ast"
)

// TestTableShardBoundaries interns the same locations concurrently from N
// goroutines under several shard layouts — including the 1-shard degenerate
// case — and checks that pointer identity holds per layout: one canonical
// *Location per (object, path) key no matter which worker got there first.
func TestTableShardBoundaries(t *testing.T) {
	objs := make([]*ast.Object, 24)
	for i := range objs {
		objs[i] = &ast.Object{Name: fmt.Sprintf("v%02d", i), Global: true}
	}
	paths := [][]Elem{nil, {HeadElem}, {TailElem}, {FieldElem("f")}, {FieldElem("f"), HeadElem}}
	for _, shards := range []int{1, 2, 16} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			tab := NewTableSharded(nil, shards)
			const workers = 8
			got := make([][]*Location, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for round := 0; round < 50; round++ {
						for i, obj := range objs {
							got[w] = append(got[w], tab.VarLoc(obj, paths[(i+round)%len(paths)]))
							got[w] = append(got[w], tab.FuncLoc(obj))
							got[w] = append(got[w], tab.SymLoc(nil, fmt.Sprintf("%d_s", i%4), nil, nil))
						}
					}
				}(w)
			}
			wg.Wait()
			for w := 1; w < workers; w++ {
				for i := range got[0] {
					if got[w][i] != got[0][i] {
						t.Fatalf("worker %d intern %d returned a non-canonical location %s",
							w, i, got[w][i].Name())
					}
				}
			}
			st := tab.Stats()
			if st.Shards < 1 || st.Locations == 0 {
				t.Fatalf("implausible table stats: %+v", st)
			}
			// vars (24 objs x 5 paths) + funcs (24) + syms (4).
			if want := 24*len(paths) + 24 + 4; st.Locations != want {
				t.Errorf("Locations = %d, want %d", st.Locations, want)
			}
		})
	}
}
