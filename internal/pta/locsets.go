// Package pta implements the context-sensitive interprocedural points-to
// analysis of Emami, Ghiya & Hendren (PLDI 1994): the intraprocedural rules
// of Figure 1 over the points-to abstraction of §3, the invocation-graph
// driven interprocedural strategy of §4 (map/unmap with invisible variables
// and symbolic names, memoization, recursion fixed points), and the
// integrated handling of function pointers of §5.
package pta

import (
	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// locD is an abstract location together with the definiteness of the
// reference reaching it — the elements of the L-location and R-location sets
// of Table 1.
type locD struct {
	l *loc.Location
	d ptset.Def
}

// locDSet accumulates locD pairs with duplicate elimination. A location
// derived definitely by any derivation stays definite: a definite
// derivation independently establishes that the reference denotes that
// single location on all paths.
type locDSet struct {
	m     map[*loc.Location]ptset.Def
	order []*loc.Location
}

func newLocDSet() *locDSet { return &locDSet{m: make(map[*loc.Location]ptset.Def)} }

func (s *locDSet) add(l *loc.Location, d ptset.Def) {
	if l == nil {
		return
	}
	if old, ok := s.m[l]; ok {
		if d == ptset.D && old == ptset.P {
			s.m[l] = ptset.D
		}
		return
	}
	s.m[l] = d
	s.order = append(s.order, l)
}

func (s *locDSet) pairs() []locD {
	out := make([]locD, 0, len(s.order))
	for _, l := range loc.SortLocs(s.order) {
		out = append(out, locD{l, s.m[l]})
	}
	return out
}

// evalBase computes the named locations denoted by (v, path) — the
// non-indirect part of a reference. Unknown array indices expand to both
// array parts with possible definiteness, per Table 1.
func (a *analyzer) evalBase(v *ast.Object, path []simple.Sel) []locD {
	var base *loc.Location
	if v.Kind == ast.FuncObj {
		base = a.tab.FuncLoc(v)
	} else {
		base = a.tab.VarLoc(v, nil)
	}
	cur := []locD{{base, ptset.D}}
	for _, sel := range path {
		cur = a.applySel(cur, sel, false)
	}
	return cur
}

// applySel applies one selector to a set of locations. onTarget selects the
// pointed-to semantics used for selectors after a dereference (where an
// index re-aligns within the pointed-to array).
func (a *analyzer) applySel(in []locD, sel simple.Sel, onTarget bool) []locD {
	out := newLocDSet()
	for _, ld := range in {
		switch sel.Kind {
		case simple.SelField:
			out.add(a.tab.Extend(ld.l, loc.FieldElem(sel.Name)), ld.d)
		case simple.SelIndex:
			if onTarget {
				a.indexTarget(out, ld, sel.Index)
			} else {
				a.indexNamed(out, ld, sel.Index)
			}
		}
	}
	return out.pairs()
}

// indexNamed applies an index to an array-typed named location: a[0] is the
// head, a[k>0] the tail, a[i] both (possibly).
func (a *analyzer) indexNamed(out *locDSet, ld locD, c simple.IdxClass) {
	if a.opts.SingleArrayLoc {
		out.add(a.tab.Extend(ld.l, loc.TailElem), ld.d)
		return
	}
	switch c {
	case simple.IdxZero:
		out.add(a.tab.Extend(ld.l, loc.HeadElem), ld.d)
	case simple.IdxPos:
		out.add(a.tab.Extend(ld.l, loc.TailElem), ld.d)
	default: // IdxAny
		out.add(a.tab.Extend(ld.l, loc.HeadElem), ptset.P)
		out.add(a.tab.Extend(ld.l, loc.TailElem), ptset.P)
	}
}

// indexTarget applies an index to a pointed-to location: if a pointer p
// points to a_head, p[0] is still a_head, p[k>0] lands in a_tail, and p[i]
// may be either. A pointer into the tail stays in the tail. Indexing a
// non-array target stays within the pointed-to object (the paper's pointer
// arithmetic assumption, §6).
func (a *analyzer) indexTarget(out *locDSet, ld locD, c simple.IdxClass) {
	l := ld.l
	switch l.Kind {
	case loc.Heap, loc.Str, loc.Freed:
		out.add(l, ld.d)
		return
	case loc.Null, loc.Func:
		return
	}
	// A pointed-to location of array type (e.g. a matrix row reached
	// through a pointer-to-array) is *descended into* by an index.
	if t := l.Type(); t != nil && t.Kind == types.Array {
		a.indexNamed(out, ld, c)
		return
	}
	n := len(l.Path)
	if n > 0 && l.Path[n-1].Arr {
		if l.Path[n-1].Tail {
			out.add(l, ld.d) // anywhere in the tail stays in the tail
			return
		}
		// Pointer to the head element.
		if a.opts.SingleArrayLoc {
			out.add(a.siblingTail(l), ld.d)
			return
		}
		switch c {
		case simple.IdxZero:
			out.add(l, ld.d)
		case simple.IdxPos:
			out.add(a.siblingTail(l), ld.d)
		default:
			out.add(l, ptset.P)
			out.add(a.siblingTail(l), ptset.P)
		}
		return
	}
	// Scalar target: p[0] is *p; other indices stay within the object
	// under the pointer-arithmetic assumption, but only possibly.
	if c == simple.IdxZero {
		out.add(l, ld.d)
	} else {
		out.add(l, ptset.P)
	}
}

// siblingTail converts a location whose path ends in an array head into the
// matching tail location.
func (a *analyzer) siblingTail(l *loc.Location) *loc.Location {
	n := len(l.Path)
	if n == 0 || !l.Path[n-1].Arr {
		return l
	}
	root := a.tab.Root(l)
	cur := root
	for i, e := range l.Path {
		if i == n-1 {
			cur = a.tab.Extend(cur, loc.TailElem)
		} else {
			cur = a.tab.Extend(cur, e)
		}
	}
	return cur
}

// pointees returns the pointed-to pairs of the given locations under s:
// {(t, d0 ∧ d1) | (b, d0) ∈ in, (b, t, d1) ∈ s}. When forWrite is set, NULL,
// function, and freed targets are dropped (they are not writable stack
// locations; a store through a freed pointer has no location the program can
// legally observe again, and the checker reports it separately).
func (a *analyzer) pointees(in []locD, s ptset.Set, forWrite bool) []locD {
	out := newLocDSet()
	for _, ld := range in {
		for _, t := range s.Targets(ld.l) {
			if forWrite && (t.Dst.Kind == loc.Null || t.Dst.Kind == loc.Func || t.Dst.Kind == loc.Freed) {
				continue
			}
			out.add(t.Dst, ld.d.And(t.Def))
		}
	}
	return out.pairs()
}

// llocs computes the L-location set of a reference (Table 1).
func (a *analyzer) llocs(r *simple.Ref, s ptset.Set) []locD {
	base := a.evalBase(r.Var, r.Path)
	if !r.Deref {
		return base
	}
	cur := a.pointees(base, s, true)
	for _, sel := range r.DPath {
		cur = a.applySel(cur, sel, true)
	}
	return cur
}

// rlocsOfRef computes the R-location set of a reference used as an rvalue:
// the pointed-to pairs of its L-locations.
func (a *analyzer) rlocsOfRef(r *simple.Ref, s ptset.Set) []locD {
	return a.pointees(a.llocs(r, s), s, false)
}

// rlocsOfOperand computes R-locations of a simple operand.
func (a *analyzer) rlocsOfOperand(op simple.Operand, s ptset.Set) []locD {
	switch op := op.(type) {
	case *simple.ConstNull:
		return []locD{{a.tab.NullLoc(), ptset.D}}
	case *simple.ConstString:
		return []locD{{a.tab.StrLoc(), ptset.P}}
	case *simple.Ref:
		return a.rlocsOfRef(op, s)
	}
	return nil
}

// arithClass classifies the integer operand of pointer arithmetic.
func arithClass(op simple.Operand, isSub bool) simple.IdxClass {
	if c, ok := op.(*simple.ConstInt); ok {
		switch {
		case c.Val == 0:
			return simple.IdxZero
		case c.Val > 0 && !isSub:
			return simple.IdxPos
		}
	}
	return simple.IdxAny
}

// rlocs computes the R-location set of a basic statement's right-hand side.
func (a *analyzer) rlocs(b *simple.Basic, s ptset.Set) []locD {
	switch b.Kind {
	case simple.AsgnCopy:
		return a.rlocsOfOperand(b.X, s)

	case simple.AsgnAddr:
		// &ref: the R-locations are the L-locations of ref; a function
		// name denotes the function location itself.
		if b.Addr.Var.Kind == ast.FuncObj && !b.Addr.Deref && len(b.Addr.Path) == 0 {
			return []locD{{a.tab.FuncLoc(b.Addr.Var), ptset.D}}
		}
		return a.llocs(b.Addr, s)

	case simple.AsgnMalloc:
		return []locD{{a.tab.HeapLoc(), ptset.P}}

	case simple.AsgnBinary:
		// Pointer arithmetic: the result points where the pointer operand
		// points, adjusted across the head/tail array abstraction.
		xr, xIsRef := b.X.(*simple.Ref)
		yr, yIsRef := b.Y.(*simple.Ref)
		xPtr := xIsRef && isPointerRef(xr)
		yPtr := yIsRef && isPointerRef(yr)
		switch {
		case xPtr && yPtr:
			return nil // p - q: integer result
		case xPtr:
			out := newLocDSet()
			class := arithClass(b.Y, b.Op == token.SUB)
			for _, ld := range a.rlocsOfRef(xr, s) {
				a.indexTarget(out, ld, class)
			}
			return out.pairs()
		case yPtr:
			out := newLocDSet()
			for _, ld := range a.rlocsOfRef(yr, s) {
				a.indexTarget(out, ld, arithClass(b.X, false))
			}
			return out.pairs()
		}
		return nil

	case simple.AsgnUnary:
		return nil
	}
	return nil
}

// isPointerRef reports whether the reference denotes a pointer-valued
// expression (whose points-to pairs are meaningful).
func isPointerRef(r *simple.Ref) bool {
	t := r.Type()
	if t == nil {
		return true // unknown (e.g. through heap): be conservative
	}
	return t.Decay().Kind == types.Pointer
}

// isPointerStmt reports whether the basic statement assigns to a
// pointer-carrying location (Figure 1's is_pointer_type test).
func isPointerStmt(b *simple.Basic) bool {
	if b.LHS == nil {
		return false
	}
	t := b.LHS.Type()
	if t == nil {
		return true // unknown type: process conservatively
	}
	return t.Decay().Kind == types.Pointer
}
