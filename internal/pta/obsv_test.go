package pta_test

import (
	"testing"

	"repro/internal/obsv"
	"repro/internal/pta"
)

// TestTracingDoesNotChangeResults is the observability determinism guard:
// attaching a tracer (and the metrics registry that is always on) must not
// change the analysis result in any way visible to the canonical
// fingerprint, at any worker count — including when a tiny ring buffer
// forces events to be dropped mid-run.
func TestTracingDoesNotChangeResults(t *testing.T) {
	workerCounts := []int{1, 2, 8}
	for _, fx := range loadFixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			var want string
			for _, w := range workerCounts {
				plain := pta.Fingerprint(analyze(t, fx.prog, pta.Options{Workers: w}))
				if want == "" {
					want = plain
				}
				if plain != want {
					t.Fatalf("workers=%d untraced: fingerprint diverged:\n%s",
						w, firstDiff(want, plain))
				}
				for _, capacity := range []int{0, 16} { // default and drop-heavy
					tr := obsv.NewTracer(0, capacity)
					res := analyze(t, fx.prog, pta.Options{Workers: w, Tracer: tr})
					if got := pta.Fingerprint(res); got != want {
						t.Fatalf("workers=%d traced (cap %d): fingerprint diverged:\n%s",
							w, capacity, firstDiff(want, got))
					}
					if tr.Emitted() == 0 {
						t.Errorf("workers=%d traced (cap %d): no events emitted", w, capacity)
					}
					if res.Metrics.TraceEmitted != tr.Emitted() ||
						res.Metrics.TraceDropped != tr.Dropped() {
						t.Errorf("metrics trace accounting %d/%d != tracer %d/%d",
							res.Metrics.TraceEmitted, res.Metrics.TraceDropped,
							tr.Emitted(), tr.Dropped())
					}
				}
			}
		})
	}
}

// TestMetricsSnapshotConsistency checks the registry invariants on a real
// analysis: map and unmap counts pair up, and the cardinality histogram saw
// every step.
func TestMetricsSnapshotConsistency(t *testing.T) {
	for _, fx := range loadFixtures(t) {
		res := analyze(t, fx.prog, pta.Options{})
		m := res.Metrics
		if m == nil {
			t.Fatalf("%s: Result.Metrics is nil", fx.name)
		}
		if m.Steps == 0 {
			t.Errorf("%s: no steps recorded", fx.name)
		}
		// Every map has a matching unmap except invocations whose callee
		// result was bottom (unreached returns); unmaps never exceed maps.
		if m.UnmapOps > m.MapOps {
			t.Errorf("%s: unmap_ops %d > map_ops %d", fx.name, m.UnmapOps, m.MapOps)
		}
		if m.Cardinality.Count != m.Steps {
			t.Errorf("%s: cardinality histogram saw %d observations, want %d (one per step)",
				fx.name, m.Cardinality.Count, m.Steps)
		}
		if m.PeakSet != m.Cardinality.Max {
			t.Errorf("%s: peak set %d != cardinality max %d", fx.name, m.PeakSet, m.Cardinality.Max)
		}
	}
}
