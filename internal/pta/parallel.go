package pta

import "sync"

// This file implements the bounded worker pool that evaluates independent
// invocation subtrees concurrently. Two program points fan out: the targets
// of an indirect call site (disjoint children of one invocation-graph node)
// and the branches of an if statement (disjoint statement subtrees fed the
// same read-only input set). Everything the subtrees share — the location
// table, the intern table, the invocation graph, annotations, recursion
// pending lists, diagnostics — is internally synchronized; all merges of
// subtree results happen in deterministic index order, so the analysis is
// bit-identical for every worker count.

// runParallel evaluates task(0..n-1) using up to a.workers goroutines
// (including the calling one). Tasks beyond the available pool slots run
// inline on the caller, so the pool is work-conserving and never deadlocks
// under nested fan-out. Panics are captured per task and rethrown in index
// order after every task has finished, which keeps the stepsExceeded unwind
// deterministic and never leaks a running goroutine.
func (a *analyzer) runParallel(n int, task func(i int)) {
	if a.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	panics := make([]any, n)
	run := func(i int) {
		defer func() { panics[i] = recover() }()
		task(i)
	}
	var wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		i := i
		select {
		case a.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-a.sem }()
				run(i)
			}()
		default:
			run(i) // pool exhausted: stay on the caller
		}
	}
	run(n - 1) // the caller always contributes
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// runBoth evaluates two independent tasks, possibly concurrently.
func (a *analyzer) runBoth(f, g func()) {
	a.runParallel(2, func(i int) {
		if i == 0 {
			f()
		} else {
			g()
		}
	})
}
