package pta

import (
	"strconv"
	"sync"

	"repro/internal/obsv"
)

// This file implements the bounded worker pool that evaluates independent
// invocation subtrees concurrently. Two program points fan out: the targets
// of an indirect call site (disjoint children of one invocation-graph node)
// and the branches of an if statement (disjoint statement subtrees fed the
// same read-only input set). Everything the subtrees share — the location
// table, the intern table, the invocation graph, annotations, recursion
// pending lists, diagnostics — is internally synchronized; all merges of
// subtree results happen in deterministic index order, so the analysis is
// bit-identical for every worker count.

// runParallel evaluates task(0..n-1) using up to a.workers goroutines
// (including the calling one). Tasks beyond the available pool slots run
// inline on the caller, so the pool is work-conserving and never deadlocks
// under nested fan-out. Panics are captured per task and rethrown in index
// order after every task has finished, which keeps the stepsExceeded unwind
// deterministic and never leaks a running goroutine.
//
// tk is the caller's trace track; inline tasks inherit it (they share the
// caller's goroutine), while each spawned goroutine gets a fresh track so
// its spans render as their own timeline row. Scheduling itself is traced:
// spawned tasks get a worker span, and tasks that fall back to the caller
// because the pool is exhausted get an instant marker.
func (a *analyzer) runParallel(tk obsv.Track, n int, task func(i int, tk obsv.Track)) {
	if a.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			task(i, tk)
		}
		return
	}
	panics := make([]any, n)
	run := func(i int, tk obsv.Track) {
		defer func() { panics[i] = recover() }()
		task(i, tk)
	}
	var wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		i := i
		select {
		case a.sem <- struct{}{}:
			wg.Add(1)
			wtk := a.tracer.NewTrack()
			go func() {
				defer wg.Done()
				defer func() { <-a.sem }()
				if a.tracer != nil {
					sp := a.tracer.Begin(wtk, obsv.CatWorker, "pool-task", strconv.Itoa(i))
					defer sp.End()
				}
				run(i, wtk)
			}()
		default:
			// Pool exhausted: stay on the caller, on the caller's track.
			if a.tracer != nil {
				a.tracer.Instant(tk, obsv.CatWorker, "inline-task", strconv.Itoa(i))
			}
			run(i, tk)
		}
	}
	run(n-1, tk) // the caller always contributes
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// runBoth evaluates two independent tasks, possibly concurrently.
func (a *analyzer) runBoth(tk obsv.Track, f, g func(tk obsv.Track)) {
	a.runParallel(tk, 2, func(i int, tk obsv.Track) {
		if i == 0 {
			f(tk)
		} else {
			g(tk)
		}
	})
}
