package pta

import (
	"repro/internal/obsv"
)

// Two program points fan out into independent invocation subtrees: the
// targets of an indirect call site (disjoint children of one invocation-
// graph node, plus pthread entry points) and the branches of an if
// statement (disjoint statement subtrees fed the same read-only input set).
// Everything the subtrees share — the location table, the intern table, the
// invocation graph, annotations, recursion pending lists, diagnostics — is
// internally synchronized; all merges of subtree results happen in
// deterministic index order, so the analysis is bit-identical for every
// worker count. The scheduling itself is the work-stealing fork-join in
// schedule.go.

// runParallel evaluates task(0..n-1), concurrently when the analysis has a
// scheduler (Options.Workers > 1). The calling worker always contributes;
// unfinished branches are stealable by idle workers, and the call returns
// only when every branch has finished, with panics rethrown in index order
// (which keeps the stepsExceeded unwind deterministic and never leaks a
// running goroutine).
func (a *analyzer) runParallel(tk obsv.Track, n int, task func(i int, tk obsv.Track)) {
	if a.sched == nil || n <= 1 {
		for i := 0; i < n; i++ {
			task(i, tk)
		}
		return
	}
	a.sched.forkJoin(tk, n, task)
}

// runBoth evaluates two independent tasks, possibly concurrently.
func (a *analyzer) runBoth(tk obsv.Track, f, g func(tk obsv.Track)) {
	a.runParallel(tk, 2, func(i int, tk obsv.Track) {
		if i == 0 {
			f(tk)
		} else {
			g(tk)
		}
	})
}
