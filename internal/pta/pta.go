package pta

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cc/ast"
	"repro/internal/cc/types"
	"repro/internal/obsv"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/live"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// FnPtrStrategy selects how indirect call sites are resolved (paper §5 and
// §6's livc study).
type FnPtrStrategy int

// Function-pointer resolution strategies.
const (
	// Precise resolves an indirect call to the current points-to set of
	// the function pointer — the paper's algorithm (Figure 5).
	Precise FnPtrStrategy = iota
	// AddrTaken resolves every indirect call to all functions whose
	// address is taken somewhere in the program.
	AddrTaken
	// AllFuncs resolves every indirect call to every defined function.
	AllFuncs
)

// Options configures an analysis run; the zero value is the paper's
// algorithm.
type Options struct {
	FnPtr FnPtrStrategy

	// NoDefinite downgrades every generated relationship to possible and
	// disables strong updates — the "definite information" ablation.
	NoDefinite bool

	// SingleArrayLoc collapses the two-location array abstraction
	// (a_head/a_tail) into a single location per array — the array
	// abstraction ablation.
	SingleArrayLoc bool

	// NoMemo disables memoization of IN/OUT pairs on invocation graph
	// nodes (§4's advantage (3)) — the memoization ablation.
	NoMemo bool

	// ContextInsensitive merges the inputs from all call sites of a
	// function and analyzes each function against the merged input — the
	// context-sensitivity ablation (one summary per function instead of
	// one per invocation path). Implemented in package baseline.
	ContextInsensitive bool

	// ShareContexts enables the optimization the paper proposes as future
	// work in §6: a global per-function cache of (input, output) summary
	// pairs, so an invocation whose mapped input has already been analyzed
	// anywhere in the graph reuses the stored output instead of
	// re-analyzing the body (subtree sharing by memoization).
	ShareContexts bool

	// MaxSteps bounds the number of basic-statement evaluations as a
	// runaway guard (0 means the default of 50 million).
	MaxSteps int

	// RecordContexts keeps, for every statement, the merged input per
	// invocation-graph node in addition to the global merge — required by
	// the memory-safety checker (package check) to grade diagnostics by
	// calling context. Off by default: it roughly doubles annotation
	// memory.
	RecordContexts bool

	// Workers bounds the worker pool that evaluates independent invocation
	// subtrees (function-pointer fan-out targets and if/else branches) in
	// parallel. 0 means GOMAXPROCS; 1 forces fully serial evaluation. All
	// merges are performed in deterministic order, so results are
	// bit-identical to the serial analysis for every worker count. The
	// ShareContexts and ContextInsensitive variants are order-sensitive
	// global fixed points and always run serially.
	Workers int

	// Tracer, when non-nil, receives hierarchical spans for invocation-
	// graph node evaluations, map/unmap operations, basic-statement
	// transfers, fixed-point iterations and worker-pool scheduling.
	// Tracing is purely observational: results are bit-identical with and
	// without it (enforced by the determinism guard tests), and a nil
	// tracer costs one pointer check per hook.
	Tracer *obsv.Tracer

	// Metrics, when non-nil, supplies the live registry the run reports
	// through instead of a private one, so an in-flight analysis can be
	// scraped (obsv.WritePrometheus / the /metrics endpoint). The registry
	// must be fresh per run: counters accumulate and hit rates would blend
	// runs otherwise.
	Metrics *obsv.Metrics

	// Flight, when non-nil, attaches the always-on flight recorder: the
	// last-N spans and periodic progress samples are kept in bounded
	// buffers and dumped to FlightDump when the run panics, exceeds its
	// step budget, or the stall watchdog fires. Like tracing, the recorder
	// never changes analysis results.
	Flight *obsv.FlightRecorder

	// FlightDump receives flight-record and stall dumps (default
	// os.Stderr).
	FlightDump io.Writer

	// StallWindow, when positive, arms a watchdog that samples the Steps
	// counter and — after StallWindow without progress — emits a warning
	// event, dumps goroutine stacks plus the flight record to FlightDump,
	// and (with StallKill) aborts the run deterministically through the
	// step-budget unwind path.
	StallWindow time.Duration

	// StallKill makes a detected stall abort the analysis (the run returns
	// an error) instead of only reporting it.
	StallKill bool

	// Demand, when non-nil, switches the engine to demand-driven mode:
	// a backward liveness pass (package live) is computed from these
	// client-registered seeds, the set flowing into each statement is
	// pruned of facts whose source variable is dead there, and
	// annotations are recorded only at seeded statements. Every fact of
	// a live (or pinned) variable is bit-identical to the exhaustive
	// engine's; facts of dead variables are simply absent. Exhaustive
	// mode (nil) remains the default and the correctness oracle.
	Demand *live.Seeds
}

// Result is the outcome of an analysis.
type Result struct {
	Prog  *simple.Program
	Table *loc.Table
	Graph *invgraph.Graph
	Opts  Options

	// Annots holds the merged points-to set flowing into every basic
	// statement, across all analyzed calling contexts.
	Annots *Annotations

	// MainOut is the points-to set at the exit of main.
	MainOut ptset.Set

	// Diags collects non-fatal analysis diagnostics (unresolved function
	// pointers, calls to unknown externals with pointer results, …).
	Diags []string

	// Metrics is the full metrics snapshot of the run: counters (steps,
	// memo and shared-summary hits, interning, map/unmap, fixed-point
	// activity), the points-to set cardinality histogram, and the
	// per-function cost table. Serial and parallel runs report through
	// this one registry.
	Metrics *obsv.MetricsSnapshot

	// Workers is the effective worker-pool size the analysis ran with.
	Workers int

	// Live is the liveness information the run pruned against; nil in
	// exhaustive mode.
	Live *live.Info
}

// Analyze runs the points-to analysis on a SIMPLE program.
func Analyze(prog *simple.Program, opts Options) (*Result, error) {
	g, err := invgraph.Build(prog)
	if err != nil {
		return nil, err
	}
	m := opts.Metrics
	if m == nil {
		m = obsv.NewMetrics()
	}
	a := &analyzer{
		prog:   prog,
		tab:    loc.NewTable(prog),
		g:      g,
		opts:   opts,
		ann:    NewAnnotations(),
		intern: ptset.NewInterner(),
		m:      m,
		tracer: opts.Tracer,
		limit:  int64(opts.MaxSteps),
	}
	if a.limit == 0 {
		a.limit = 50_000_000
	}
	a.stepCeil.Store(a.limit)
	if opts.RecordContexts {
		a.ann.EnableContexts()
	}
	if opts.Demand != nil {
		a.live = live.Compute(prog, opts.Demand, live.Options{
			AllFuncs: opts.FnPtr == AllFuncs,
			NoKill:   opts.NoDefinite,
		})
	}
	if opts.ShareContexts {
		a.shared = make(map[*simple.Function][]sharedSummary)
	}
	if opts.Flight != nil {
		// The recorder returns the tracer the run must emit into: the full
		// tracer when one was requested, otherwise its own bounded ring.
		a.tracer = opts.Flight.Bind(a.m, a.tracer)
		defer opts.Flight.Unbind()
	}
	if wd := a.startWatchdog(); wd != nil {
		defer wd.Stop()
	}
	a.workers = effectiveWorkers(opts)
	if a.workers > 1 {
		a.sched = newScheduler(a.workers, a.tracer, a.m)
		defer a.sched.stop()
	}
	res := &Result{Prog: prog, Table: a.tab, Graph: g, Opts: opts, Annots: a.ann, Live: a.live}

	if err := a.run(); err != nil {
		return nil, err
	}
	// Child order under parallel fan-out depends on scheduling; restore the
	// canonical (site, callee) order so graph renderings are deterministic.
	g.Canonicalize()
	// Diagnostics are emitted from whichever worker encounters them; sort
	// and deduplicate so serial and parallel runs report identically.
	sort.Strings(a.diags)
	res.Diags = slices.Compact(a.diags)
	res.MainOut = a.mainOut
	res.Workers = a.workers

	// Snapshot the metrics registry and fill in the parts it cannot see:
	// hash-consing activity and trace ring accounting. Every caller —
	// serial or parallel — reports through the one registry.
	snap := a.m.Snapshot()
	ist := a.intern.Stats()
	snap.InternDistinct = ist.Distinct
	snap.InternHits, snap.InternMisses = ist.Hits, ist.Misses
	if lookups := ist.Hits + ist.Misses; lookups > 0 {
		snap.InternHitRate = float64(ist.Hits) / float64(lookups)
	}
	snap.InternShards, snap.InternContended = ist.Shards, ist.Contended
	tst := a.tab.Stats()
	snap.LocShards, snap.LocContended = tst.Shards, tst.Contended
	if a.tracer.Enabled() {
		snap.TraceEmitted = a.tracer.Emitted()
		snap.TraceDropped = a.tracer.Dropped()
	}
	res.Metrics = snap
	return res, nil
}

// effectiveWorkers resolves Options.Workers: 0 defaults to GOMAXPROCS, and
// the order-sensitive global-fixed-point variants force serial evaluation.
func effectiveWorkers(opts Options) int {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if opts.ShareContexts || opts.ContextInsensitive {
		w = 1
	}
	return w
}

type analyzer struct {
	prog    *simple.Program
	tab     *loc.Table
	g       *invgraph.Graph
	opts    Options
	ann     *Annotations
	intern  *ptset.Interner
	live    *live.Info // demand mode: pruning oracle (nil when exhaustive)
	diags   []string
	diagMu  sync.Mutex
	mainOut ptset.Set

	// limit is the configured step budget (for error messages); stepCeil is
	// the live ceiling step() checks. They coincide until the stall
	// watchdog aborts the run, which drops the ceiling below zero so every
	// worker's next step unwinds through the same deterministic
	// stepsExceeded path the budget uses. wdAborted distinguishes the two
	// causes in the recover.
	limit     int64
	stepCeil  atomic.Int64
	wdAborted atomic.Bool

	// m is the metrics registry every counter of the run reports through
	// (steps, memoization, map/unmap, fixed points, set cardinality,
	// per-function cost); its instruments are atomic, so serial and
	// parallel runs share one path. tracer is nil unless span recording
	// was requested (Options.Tracer).
	m      *obsv.Metrics
	tracer *obsv.Tracer

	// Work-stealing scheduler: workers is the effective parallelism; sched
	// is nil when serial (see schedule.go). recMu serializes appends to
	// recursion pending lists, which sibling subtrees may share through an
	// ancestor.
	workers int
	sched   *wsScheduler
	recMu   sync.Mutex

	// Context-insensitive variant state.
	ci        map[*simple.Function]*ciSummary
	ciChanged bool

	// shared caches completed (input, output) summaries per function when
	// Options.ShareContexts is set.
	shared map[*simple.Function][]sharedSummary
}

// sharedSummary is one cached function summary.
type sharedSummary struct {
	in, out ptset.Set
}

func (a *analyzer) diagf(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	a.diagMu.Lock()
	a.diags = append(a.diags, s)
	a.diagMu.Unlock()
}

type stepsExceeded struct{}

func (a *analyzer) step() {
	if a.m.Steps.Inc() > a.stepCeil.Load() {
		panic(stepsExceeded{})
	}
}

// testWatchdogProgress, when set by a test, replaces the watchdog's
// progress source so a stall can be forced deterministically on an
// otherwise always-progressing analysis.
var testWatchdogProgress func() int64

// startWatchdog arms the stall watchdog when Options.StallWindow is set.
// On a stall it emits a warning trace event, writes the stall report
// (goroutine stacks) and the flight record to the flight sink, and — with
// Options.StallKill — aborts the run through the step-ceiling unwind.
func (a *analyzer) startWatchdog() *obsv.Watchdog {
	if a.opts.StallWindow <= 0 {
		return nil
	}
	progress := a.m.Steps.Load
	if testWatchdogProgress != nil {
		progress = testWatchdogProgress
	}
	return obsv.StartWatchdog(obsv.WatchdogConfig{
		Window:   a.opts.StallWindow,
		Progress: progress,
		OnStall: func(info obsv.StallInfo) {
			a.tracer.Instant(0, obsv.CatPhase, "stall-watchdog",
				fmt.Sprintf("no progress for %s", info.Stalled))
			w := a.flightSink()
			obsv.WriteStallReport(w, info)
			a.opts.Flight.Dump(w, fmt.Sprintf("stall after %s without progress", info.Stalled))
			if a.opts.StallKill {
				a.wdAborted.Store(true)
				a.stepCeil.Store(-1)
			}
		},
	})
}

// flightSink is where flight records and stall reports go.
func (a *analyzer) flightSink() io.Writer {
	if a.opts.FlightDump != nil {
		return a.opts.FlightDump
	}
	return os.Stderr
}

// dumpFlight writes the flight record for an abnormal end of run.
func (a *analyzer) dumpFlight(cause string) {
	if a.opts.Flight == nil {
		return
	}
	a.opts.Flight.Dump(a.flightSink(), cause)
}

func (a *analyzer) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stepsExceeded); ok {
				if a.wdAborted.Load() {
					// The stall hook already dumped the flight record.
					err = fmt.Errorf("pta: analysis aborted by stall watchdog (no progress for %s)",
						a.opts.StallWindow)
					return
				}
				a.dumpFlight(fmt.Sprintf("steps exceeded (budget %d)", a.limit))
				err = fmt.Errorf("pta: analysis exceeded %d steps (non-terminating fixed point?)", a.limit)
				return
			}
			a.dumpFlight(fmt.Sprintf("panic: %v", r))
			panic(r)
		}
	}()

	// Initial environment: global pointers are NULL, then the synthesized
	// global initializers run.
	sp := a.tracer.Begin(0, obsv.CatPhase, "global-init", "")
	in := ptset.New()
	for _, gv := range a.prog.Globals {
		a.initNull(in, gv)
	}
	f := a.processStmt(a.prog.GlobalInit, in, a.g.Root, 0)
	entry := f.out
	sp.End()

	// Seed main's pointer parameters (argc/argv) with symbolic targets so
	// programs that traverse argv have something sound to point at.
	mainFn := a.prog.Main()
	for _, p := range mainFn.Params {
		if p.Type == nil {
			continue
		}
		depth := p.Type.PointerDepth()
		cur := a.tab.VarLoc(p, nil)
		t := p.Type
		for lvl := 1; lvl <= depth; lvl++ {
			t = pointeeType(t)
			sym := a.tab.SymLoc(mainFn, fmt.Sprintf("%d_%s", lvl, p.Name), nil, t)
			entry.Insert(cur, sym, ptset.P)
			cur = sym
		}
	}

	sp = a.tracer.Begin(0, obsv.CatPhase, "analysis", "")
	if a.opts.ContextInsensitive {
		a.runCI(mainFn, entry)
	} else {
		a.mainOut = a.processCallNode(a.g.Root, entry, 0)
	}
	sp.End()
	return nil
}

// BaseLoc is an exported (location, definiteness) pair for reporting code.
type BaseLoc struct {
	Loc *loc.Location
	Def ptset.Def
}

// EvalBaseLocs exposes the named base locations of a reference (the
// locations of r.Var with r.Path applied, before any dereference) for the
// statistics in package report.
func EvalBaseLocs(res *Result, r *simple.Ref) []BaseLoc {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	var out []BaseLoc
	for _, ld := range a.evalBase(r.Var, r.Path) {
		out = append(out, BaseLoc{ld.l, ld.d})
	}
	return out
}

// EvalLLocs exposes the L-location set of a reference under a given
// points-to set (Table 1) for follow-on analyses.
func EvalLLocs(res *Result, r *simple.Ref, in ptset.Set) []BaseLoc {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	var out []BaseLoc
	for _, ld := range a.llocs(r, in) {
		out = append(out, BaseLoc{ld.l, ld.d})
	}
	return out
}

// EvalRLocsOfRef exposes the R-location set of a reference used as an
// rvalue under a given points-to set.
func EvalRLocsOfRef(res *Result, r *simple.Ref, in ptset.Set) []BaseLoc {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	var out []BaseLoc
	for _, ld := range a.rlocsOfRef(r, in) {
		out = append(out, BaseLoc{ld.l, ld.d})
	}
	return out
}

// EvalRLocs exposes the R-location set of a basic statement's right-hand
// side under a given points-to set (used by the flow-insensitive baseline).
func EvalRLocs(res *Result, b *simple.Basic, in ptset.Set) []BaseLoc {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	var out []BaseLoc
	for _, ld := range a.rlocs(b, in) {
		out = append(out, BaseLoc{ld.l, ld.d})
	}
	return out
}

// NewShellResult builds a Result without running the full analysis: a
// program plus a fresh location table, so baseline analyses can reuse the
// reference evaluators and the reporting machinery with their own
// annotations.
func NewShellResult(prog *simple.Program, opts Options) *Result {
	return &Result{
		Prog:   prog,
		Table:  loc.NewTable(prog),
		Opts:   opts,
		Annots: NewAnnotations(),
	}
}

func pointeeType(t *types.Type) *types.Type {
	if t == nil {
		return nil
	}
	d := t.Decay()
	if d.Kind == types.Pointer {
		return d.Elem
	}
	return nil
}

// initNull inserts the NULL-initialization relationships for every
// pointer-carrying location of obj (paper: "we initialize all pointers to
// NULL"). Locations that stand for more than one real location (array
// tails) get only a possible relationship.
func (a *analyzer) initNull(s ptset.Set, obj *ast.Object) {
	if obj.Type == nil || !obj.Type.HasPointers() {
		return
	}
	for _, path := range loc.PointerPaths(obj.Type) {
		l := a.tab.VarLoc(obj, path)
		d := ptset.D
		if l.Multi() {
			d = ptset.P
		}
		s.Insert(l, a.tab.NullLoc(), d)
	}
}
