package pta

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cc/ast"
	"repro/internal/cc/types"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// FnPtrStrategy selects how indirect call sites are resolved (paper §5 and
// §6's livc study).
type FnPtrStrategy int

// Function-pointer resolution strategies.
const (
	// Precise resolves an indirect call to the current points-to set of
	// the function pointer — the paper's algorithm (Figure 5).
	Precise FnPtrStrategy = iota
	// AddrTaken resolves every indirect call to all functions whose
	// address is taken somewhere in the program.
	AddrTaken
	// AllFuncs resolves every indirect call to every defined function.
	AllFuncs
)

// Options configures an analysis run; the zero value is the paper's
// algorithm.
type Options struct {
	FnPtr FnPtrStrategy

	// NoDefinite downgrades every generated relationship to possible and
	// disables strong updates — the "definite information" ablation.
	NoDefinite bool

	// SingleArrayLoc collapses the two-location array abstraction
	// (a_head/a_tail) into a single location per array — the array
	// abstraction ablation.
	SingleArrayLoc bool

	// NoMemo disables memoization of IN/OUT pairs on invocation graph
	// nodes (§4's advantage (3)) — the memoization ablation.
	NoMemo bool

	// ContextInsensitive merges the inputs from all call sites of a
	// function and analyzes each function against the merged input — the
	// context-sensitivity ablation (one summary per function instead of
	// one per invocation path). Implemented in package baseline.
	ContextInsensitive bool

	// ShareContexts enables the optimization the paper proposes as future
	// work in §6: a global per-function cache of (input, output) summary
	// pairs, so an invocation whose mapped input has already been analyzed
	// anywhere in the graph reuses the stored output instead of
	// re-analyzing the body (subtree sharing by memoization).
	ShareContexts bool

	// MaxSteps bounds the number of basic-statement evaluations as a
	// runaway guard (0 means the default of 50 million).
	MaxSteps int

	// RecordContexts keeps, for every statement, the merged input per
	// invocation-graph node in addition to the global merge — required by
	// the memory-safety checker (package check) to grade diagnostics by
	// calling context. Off by default: it roughly doubles annotation
	// memory.
	RecordContexts bool

	// Workers bounds the worker pool that evaluates independent invocation
	// subtrees (function-pointer fan-out targets and if/else branches) in
	// parallel. 0 means GOMAXPROCS; 1 forces fully serial evaluation. All
	// merges are performed in deterministic order, so results are
	// bit-identical to the serial analysis for every worker count. The
	// ShareContexts and ContextInsensitive variants are order-sensitive
	// global fixed points and always run serially.
	Workers int
}

// Result is the outcome of an analysis.
type Result struct {
	Prog  *simple.Program
	Table *loc.Table
	Graph *invgraph.Graph
	Opts  Options

	// Annots holds the merged points-to set flowing into every basic
	// statement, across all analyzed calling contexts.
	Annots *Annotations

	// MainOut is the points-to set at the exit of main.
	MainOut ptset.Set

	// Diags collects non-fatal analysis diagnostics (unresolved function
	// pointers, calls to unknown externals with pointer results, …).
	Diags []string

	// Steps is the number of basic-statement evaluations performed.
	Steps int

	// SharedHits counts summary-cache reuses under Options.ShareContexts.
	SharedHits int

	// Workers is the effective worker-pool size the analysis ran with.
	Workers int

	// MemoHits and MemoMisses count input-keyed summary-cache lookups on
	// invocation-graph nodes: a hit returns the stored output without
	// re-walking the callee body.
	MemoHits, MemoMisses int

	// PeakSetLen is the largest points-to set observed flowing into any
	// basic statement.
	PeakSetLen int

	// Interning reports hash-consing activity (distinct sets, hit rate).
	Interning ptset.InternStats
}

// Analyze runs the points-to analysis on a SIMPLE program.
func Analyze(prog *simple.Program, opts Options) (*Result, error) {
	g, err := invgraph.Build(prog)
	if err != nil {
		return nil, err
	}
	a := &analyzer{
		prog:     prog,
		tab:      loc.NewTable(prog),
		g:        g,
		opts:     opts,
		ann:      NewAnnotations(),
		intern:   ptset.NewInterner(),
		maxSteps: int64(opts.MaxSteps),
	}
	if a.maxSteps == 0 {
		a.maxSteps = 50_000_000
	}
	if opts.RecordContexts {
		a.ann.EnableContexts()
	}
	if opts.ShareContexts {
		a.shared = make(map[*simple.Function][]sharedSummary)
	}
	a.workers = effectiveWorkers(opts)
	if a.workers > 1 {
		// Slots for extra goroutines beyond the caller's own.
		a.sem = make(chan struct{}, a.workers-1)
	}
	res := &Result{Prog: prog, Table: a.tab, Graph: g, Opts: opts, Annots: a.ann}

	if err := a.run(); err != nil {
		return nil, err
	}
	// Child order under parallel fan-out depends on scheduling; restore the
	// canonical (site, callee) order so graph renderings are deterministic.
	g.Canonicalize()
	// Diagnostics are emitted from whichever worker encounters them; sort
	// and deduplicate so serial and parallel runs report identically.
	sort.Strings(a.diags)
	res.Diags = slices.Compact(a.diags)
	res.MainOut = a.mainOut
	res.Steps = int(a.steps.Load())
	res.SharedHits = a.sharedHits
	res.Workers = a.workers
	res.MemoHits = int(a.memoHits.Load())
	res.MemoMisses = int(a.memoMisses.Load())
	res.PeakSetLen = int(a.peakSet.Load())
	res.Interning = a.intern.Stats()
	return res, nil
}

// effectiveWorkers resolves Options.Workers: 0 defaults to GOMAXPROCS, and
// the order-sensitive global-fixed-point variants force serial evaluation.
func effectiveWorkers(opts Options) int {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if opts.ShareContexts || opts.ContextInsensitive {
		w = 1
	}
	return w
}

type analyzer struct {
	prog     *simple.Program
	tab      *loc.Table
	g        *invgraph.Graph
	opts     Options
	ann      *Annotations
	intern   *ptset.Interner
	diags    []string
	diagMu   sync.Mutex
	steps    atomic.Int64
	maxSteps int64
	mainOut  ptset.Set

	// Worker pool: workers is the effective parallelism; sem holds the
	// slots for goroutines beyond the one running the analysis (nil when
	// serial). recMu serializes appends to recursion pending lists, which
	// sibling subtrees may share through an ancestor.
	workers int
	sem     chan struct{}
	recMu   sync.Mutex

	// Memoization and peak-size counters (atomics: workers update them).
	memoHits   atomic.Int64
	memoMisses atomic.Int64
	peakSet    atomic.Int64

	// Context-insensitive variant state.
	ci        map[*simple.Function]*ciSummary
	ciChanged bool

	// shared caches completed (input, output) summaries per function when
	// Options.ShareContexts is set.
	shared map[*simple.Function][]sharedSummary

	// SharedHits counts cache reuses (reported via Result.SharedHits).
	sharedHits int
}

// sharedSummary is one cached function summary.
type sharedSummary struct {
	in, out ptset.Set
}

func (a *analyzer) diagf(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	a.diagMu.Lock()
	a.diags = append(a.diags, s)
	a.diagMu.Unlock()
}

type stepsExceeded struct{}

func (a *analyzer) step() {
	if a.steps.Add(1) > a.maxSteps {
		panic(stepsExceeded{})
	}
}

// notePeak records the size of a set flowing into a statement.
func (a *analyzer) notePeak(n int) {
	for {
		cur := a.peakSet.Load()
		if int64(n) <= cur || a.peakSet.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

func (a *analyzer) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stepsExceeded); ok {
				err = fmt.Errorf("pta: analysis exceeded %d steps (non-terminating fixed point?)", a.maxSteps)
				return
			}
			panic(r)
		}
	}()

	// Initial environment: global pointers are NULL, then the synthesized
	// global initializers run.
	in := ptset.New()
	for _, gv := range a.prog.Globals {
		a.initNull(in, gv)
	}
	f := a.processStmt(a.prog.GlobalInit, in, a.g.Root)
	entry := f.out

	// Seed main's pointer parameters (argc/argv) with symbolic targets so
	// programs that traverse argv have something sound to point at.
	mainFn := a.prog.Main()
	for _, p := range mainFn.Params {
		if p.Type == nil {
			continue
		}
		depth := p.Type.PointerDepth()
		cur := a.tab.VarLoc(p, nil)
		t := p.Type
		for lvl := 1; lvl <= depth; lvl++ {
			t = pointeeType(t)
			sym := a.tab.SymLoc(mainFn, fmt.Sprintf("%d_%s", lvl, p.Name), nil, t)
			entry.Insert(cur, sym, ptset.P)
			cur = sym
		}
	}

	if a.opts.ContextInsensitive {
		a.runCI(mainFn, entry)
	} else {
		a.mainOut = a.processCallNode(a.g.Root, entry)
	}
	return nil
}

// BaseLoc is an exported (location, definiteness) pair for reporting code.
type BaseLoc struct {
	Loc *loc.Location
	Def ptset.Def
}

// EvalBaseLocs exposes the named base locations of a reference (the
// locations of r.Var with r.Path applied, before any dereference) for the
// statistics in package report.
func EvalBaseLocs(res *Result, r *simple.Ref) []BaseLoc {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	var out []BaseLoc
	for _, ld := range a.evalBase(r.Var, r.Path) {
		out = append(out, BaseLoc{ld.l, ld.d})
	}
	return out
}

// EvalLLocs exposes the L-location set of a reference under a given
// points-to set (Table 1) for follow-on analyses.
func EvalLLocs(res *Result, r *simple.Ref, in ptset.Set) []BaseLoc {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	var out []BaseLoc
	for _, ld := range a.llocs(r, in) {
		out = append(out, BaseLoc{ld.l, ld.d})
	}
	return out
}

// EvalRLocsOfRef exposes the R-location set of a reference used as an
// rvalue under a given points-to set.
func EvalRLocsOfRef(res *Result, r *simple.Ref, in ptset.Set) []BaseLoc {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	var out []BaseLoc
	for _, ld := range a.rlocsOfRef(r, in) {
		out = append(out, BaseLoc{ld.l, ld.d})
	}
	return out
}

// EvalRLocs exposes the R-location set of a basic statement's right-hand
// side under a given points-to set (used by the flow-insensitive baseline).
func EvalRLocs(res *Result, b *simple.Basic, in ptset.Set) []BaseLoc {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	var out []BaseLoc
	for _, ld := range a.rlocs(b, in) {
		out = append(out, BaseLoc{ld.l, ld.d})
	}
	return out
}

// NewShellResult builds a Result without running the full analysis: a
// program plus a fresh location table, so baseline analyses can reuse the
// reference evaluators and the reporting machinery with their own
// annotations.
func NewShellResult(prog *simple.Program, opts Options) *Result {
	return &Result{
		Prog:   prog,
		Table:  loc.NewTable(prog),
		Opts:   opts,
		Annots: NewAnnotations(),
	}
}

func pointeeType(t *types.Type) *types.Type {
	if t == nil {
		return nil
	}
	d := t.Decay()
	if d.Kind == types.Pointer {
		return d.Elem
	}
	return nil
}

// initNull inserts the NULL-initialization relationships for every
// pointer-carrying location of obj (paper: "we initialize all pointers to
// NULL"). Locations that stand for more than one real location (array
// tails) get only a possible relationship.
func (a *analyzer) initNull(s ptset.Set, obj *ast.Object) {
	if obj.Type == nil || !obj.Type.HasPointers() {
		return
	}
	for _, path := range loc.PointerPaths(obj.Type) {
		l := a.tab.VarLoc(obj, path)
		d := ptset.D
		if l.Multi() {
			d = ptset.P
		}
		s.Insert(l, a.tab.NullLoc(), d)
	}
}
