package pta

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/ast"
	"repro/internal/cc/parser"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
	"repro/internal/simplify"
)

func analyzeSrc(t *testing.T, src string) *Result {
	t.Helper()
	return analyzeSrcOpts(t, src, Options{})
}

func analyzeSrcOpts(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	res, err := Analyze(prog, opts)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// findObj locates a variable object by name: a global, or a local/param of
// the named function.
func findObj(res *Result, fnName, varName string) *ast.Object {
	if fnName != "" {
		f := res.Prog.Lookup(fnName)
		if f == nil {
			return nil
		}
		for _, p := range f.Params {
			if p.Name == varName {
				return p
			}
		}
		for _, l := range f.Locals {
			if l.Name == varName {
				return l
			}
		}
	}
	for _, g := range res.Prog.Globals {
		if g.Name == varName {
			return g
		}
	}
	return nil
}

// targetsIn formats the targets of varName in the given set as
// "name:D name:P ..." sorted, excluding NULL.
func targetsIn(t *testing.T, res *Result, s ptset.Set, fnName, varName string) string {
	t.Helper()
	obj := findObj(res, fnName, varName)
	if obj == nil {
		t.Fatalf("variable %s not found (fn %q)", varName, fnName)
	}
	l := res.Table.VarLoc(obj, nil)
	var parts []string
	for _, tr := range s.Targets(l) {
		if tr.Dst.Kind == loc.Null {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s:%s", tr.Dst.Name(), tr.Def))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// mainTargets formats varName's targets at the exit of main.
func mainTargets(t *testing.T, res *Result, varName string) string {
	t.Helper()
	return targetsIn(t, res, res.MainOut, "main", varName)
}

// annotatedInput finds the merged input annotation of the first basic
// statement in fn satisfying match.
func annotatedInput(t *testing.T, res *Result, fnName string, match func(*simple.Basic) bool) ptset.Set {
	t.Helper()
	f := res.Prog.Lookup(fnName)
	if f == nil {
		t.Fatalf("function %s not found", fnName)
	}
	var found ptset.Set
	ok := false
	var walk func(s simple.Stmt)
	walk = func(s simple.Stmt) {
		switch s := s.(type) {
		case *simple.Basic:
			if !ok && match(s) {
				if in, has := res.Annots.At(s); has {
					found, ok = in, true
				}
			}
		case *simple.Seq:
			if s == nil {
				return
			}
			for _, c := range s.List {
				walk(c)
			}
		case *simple.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *simple.While:
			walk(s.CondEval)
			walk(s.Body)
		case *simple.DoWhile:
			walk(s.Body)
			walk(s.CondEval)
		case *simple.For:
			walk(s.Init)
			walk(s.CondEval)
			walk(s.Body)
			walk(s.Post)
		case *simple.Switch:
			for _, c := range s.Cases {
				walk(c.Body)
			}
		}
	}
	walk(f.Body)
	if !ok {
		t.Fatalf("no annotated statement matched in %s", fnName)
	}
	return found
}

// ---------------------------------------------------------------------------

func TestBasicAddressOf(t *testing.T) {
	res := analyzeSrc(t, `
int main() {
	int x;
	int *p;
	p = &x;
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "x:D" {
		t.Errorf("p points to %q, want x:D", got)
	}
}

func TestStrongUpdate(t *testing.T) {
	res := analyzeSrc(t, `
int main() {
	int x, y;
	int *p;
	p = &x;
	p = &y;
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "y:D" {
		t.Errorf("p points to %q, want y:D (old target killed)", got)
	}
}

func TestIfMergeMakesPossible(t *testing.T) {
	res := analyzeSrc(t, `
int main() {
	int x, y, c;
	int *p;
	c = 1;
	if (c)
		p = &x;
	else
		p = &y;
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "x:P y:P" {
		t.Errorf("p points to %q, want x:P y:P", got)
	}
}

func TestDefiniteKillThroughPointer(t *testing.T) {
	// The paper's motivating example: *p = x with p definitely pointing
	// to y kills y's old relationships.
	res := analyzeSrc(t, `
int main() {
	int a, b;
	int *y;
	int **p;
	int *x;
	x = &b;
	y = &a;
	p = &y;
	*p = x;   /* y now definitely points to b, a killed */
	return 0;
}
`)
	if got := mainTargets(t, res, "y"); got != "b:D" {
		t.Errorf("y points to %q, want b:D", got)
	}
}

func TestPossibleTargetWeakUpdate(t *testing.T) {
	res := analyzeSrc(t, `
int main() {
	int a, b, c;
	int *y, *z;
	int **p;
	y = &a;
	z = &b;
	if (c)
		p = &y;
	else
		p = &z;
	*p = &c;  /* weak update: y,z may point to c, old targets kept as P */
	return 0;
}
`)
	if got := mainTargets(t, res, "y"); got != "a:P c:P" {
		t.Errorf("y points to %q, want a:P c:P", got)
	}
	if got := mainTargets(t, res, "z"); got != "b:P c:P" {
		t.Errorf("z points to %q, want b:P c:P", got)
	}
}

func TestMultiLevel(t *testing.T) {
	res := analyzeSrc(t, `
int main() {
	int x;
	int *p;
	int **pp;
	int *q;
	p = &x;
	pp = &p;
	q = *pp;
	return 0;
}
`)
	if got := mainTargets(t, res, "pp"); got != "p:D" {
		t.Errorf("pp points to %q, want p:D", got)
	}
	if got := mainTargets(t, res, "q"); got != "x:D" {
		t.Errorf("q points to %q, want x:D", got)
	}
}

func TestMalloc(t *testing.T) {
	res := analyzeSrc(t, `
int main() {
	int *p;
	p = (int *) malloc(4);
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "heap:P" {
		t.Errorf("p points to %q, want heap:P", got)
	}
}

func TestArrayHeadTail(t *testing.T) {
	res := analyzeSrc(t, `
int main() {
	int arr[10];
	int x;
	int *p, *q, *r;
	p = &arr[0];
	q = &arr[5];
	r = &arr[x];
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "arr[0]:D" {
		t.Errorf("p points to %q, want arr[0]:D", got)
	}
	if got := mainTargets(t, res, "q"); got != "arr[*]:D" {
		t.Errorf("q points to %q, want arr[*]:D", got)
	}
	if got := mainTargets(t, res, "r"); got != "arr[*]:P arr[0]:P" {
		t.Errorf("r points to %q, want arr[*]:P arr[0]:P", got)
	}
}

func TestPointerArithmeticHeadToTail(t *testing.T) {
	res := analyzeSrc(t, `
int main() {
	int arr[10];
	int *p, *q;
	p = arr;      /* p -> arr[0] */
	q = p + 3;    /* q -> arr tail */
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "arr[0]:D" {
		t.Errorf("p points to %q, want arr[0]:D", got)
	}
	if got := mainTargets(t, res, "q"); got != "arr[*]:D" {
		t.Errorf("q points to %q, want arr[*]:D", got)
	}
}

func TestStructFields(t *testing.T) {
	res := analyzeSrc(t, `
struct s { int *p; int *q; };
int main() {
	struct s v;
	int a, b;
	int *r;
	v.p = &a;
	v.q = &b;
	r = v.p;
	return 0;
}
`)
	if got := mainTargets(t, res, "r"); got != "a:D" {
		t.Errorf("r points to %q, want a:D", got)
	}
}

func TestSimpleCallFormalInherits(t *testing.T) {
	res := analyzeSrc(t, `
int g;
int *keep;
void f(int *q) {
	keep = q;
}
int main() {
	int x;
	int *p;
	p = &x;
	f(p);
	return 0;
}
`)
	// Inside f, q inherits p's relationship; x is invisible, so q points
	// to the symbolic 1_q, and keep (global) gets it too. After unmap,
	// keep points to x.
	if got := mainTargets(t, res, "keep"); got != "x:D" {
		t.Errorf("keep points to %q, want x:D", got)
	}
}

func TestCallModifiesThroughPointer(t *testing.T) {
	res := analyzeSrc(t, `
int a, b;
void set(int **h) {
	*h = &b;
}
int main() {
	int *p;
	p = &a;
	set(&p);
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "b:D" {
		t.Errorf("p points to %q, want b:D (callee strong update through invisible)", got)
	}
}

func TestReturnValue(t *testing.T) {
	res := analyzeSrc(t, `
int g1, g2;
int *pick(int c) {
	if (c) return &g1;
	return &g2;
}
int main() {
	int *p;
	p = pick(1);
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "g1:P g2:P" {
		t.Errorf("p points to %q, want g1:P g2:P", got)
	}
}

func TestContextSensitivity(t *testing.T) {
	// The id function must not merge contexts: p gets only x, q only y.
	res := analyzeSrc(t, `
int *id(int *v) { return v; }
int main() {
	int x, y;
	int *p, *q;
	p = id(&x);
	q = id(&y);
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "x:D" {
		t.Errorf("p points to %q, want x:D (context-sensitive)", got)
	}
	if got := mainTargets(t, res, "q"); got != "y:D" {
		t.Errorf("q points to %q, want y:D (context-sensitive)", got)
	}
}

func TestInvisibleTwoLevels(t *testing.T) {
	// The paper's §4.1 mapping scheme: b and c invisible in f, named 1_x
	// and 2_x. Changes through **x flow back.
	res := analyzeSrc(t, `
int g;
void f(int ***x) {
	**x = &g;
}
int main() {
	int c0;
	int *b;
	int **m;
	b = &c0;
	m = &b;
	f(&m);
	return 0;
}
`)
	if got := mainTargets(t, res, "b"); got != "g:D" {
		t.Errorf("b points to %q, want g:D", got)
	}
	if got := mainTargets(t, res, "m"); got != "b:D" {
		t.Errorf("m points to %q, want b:D", got)
	}
}

func TestSharedInvisibleOneSymbolicName(t *testing.T) {
	// Both x and y definitely point to the same invisible b: it must be
	// represented by a single symbolic name (Property 3.1), so a write
	// through x is seen through y.
	res := analyzeSrc(t, `
int g;
void f(int **x, int **y) {
	*x = &g;
}
int main() {
	int a0;
	int *b;
	int *r;
	b = &a0;
	f(&b, &b);
	r = b;
	return 0;
}
`)
	if got := mainTargets(t, res, "b"); got != "g:D" {
		t.Errorf("b points to %q, want g:D", got)
	}
}

func TestRecursionFixedPoint(t *testing.T) {
	res := analyzeSrc(t, `
int a, b;
void rec(int **p, int n) {
	if (n > 0) {
		*p = &b;
		rec(p, n - 1);
	}
}
int main() {
	int *q;
	q = &a;
	rec(&q, 3);
	return 0;
}
`)
	// Through the recursion q may point to a (n==0 path) or b.
	if got := mainTargets(t, res, "q"); got != "a:P b:P" {
		t.Errorf("q points to %q, want a:P b:P", got)
	}
	// The invocation graph must contain a recursive/approximate pair.
	st := res.Graph.ComputeStats()
	if st.Recursive != 1 || st.Approximate != 1 {
		t.Errorf("IG stats R=%d A=%d, want 1/1", st.Recursive, st.Approximate)
	}
}

func TestMutualRecursion(t *testing.T) {
	res := analyzeSrc(t, `
int a, b;
void even(int **p, int n);
void odd(int **p, int n) {
	*p = &a;
	if (n > 0) even(p, n - 1);
}
void even(int **p, int n) {
	*p = &b;
	if (n > 0) odd(p, n - 1);
}
int main() {
	int *q;
	int x;
	q = &x;
	odd(&q, 5);
	return 0;
}
`)
	got := mainTargets(t, res, "q")
	if got != "a:P b:P" {
		t.Errorf("q points to %q, want a:P b:P", got)
	}
	st := res.Graph.ComputeStats()
	if st.Recursive == 0 || st.Approximate == 0 {
		t.Errorf("mutual recursion should produce recursive/approximate nodes, got R=%d A=%d",
			st.Recursive, st.Approximate)
	}
}

func TestPaperFigure6FunctionPointers(t *testing.T) {
	// The exact program of Figure 6.
	res := analyzeSrc(t, `
int a, b, c;
int *pa, *pb, *pc;
int (*fp)();
int foo();
int bar();
int main() {
	int cond;
	pc = &c;
	if (cond)
		fp = foo;
	else
		fp = bar;
	/* Point A */
	fp();
	/* Point B */
	return 0;
}
int foo() {
	int cond;
	pa = &a;
	if (cond)
		fp();
	/* Point C */
	return 0;
}
int bar() {
	pb = &b;
	/* Point D */
	return 0;
}
`)
	// Point B (end of main): (fp,foo,P) (fp,bar,P) (pc,c,D) (pa,a,P) (pb,b,P)
	if got := mainTargets(t, res, "fp"); got != "bar:P foo:P" {
		t.Errorf("fp points to %q, want bar:P foo:P", got)
	}
	if got := mainTargets(t, res, "pc"); got != "c:D" {
		t.Errorf("pc points to %q, want c:D", got)
	}
	if got := mainTargets(t, res, "pa"); got != "a:P" {
		t.Errorf("pa points to %q, want a:P", got)
	}
	if got := mainTargets(t, res, "pb"); got != "b:P" {
		t.Errorf("pb points to %q, want b:P", got)
	}

	// Inside foo (point C region): fp definitely points to foo, pa
	// definitely to a. Check the annotation at the "pa = &a" statement's
	// successor region via the input of the indirect call.
	in := annotatedInput(t, res, "foo", func(b *simple.Basic) bool {
		return b.Kind == simple.AsgnCallInd
	})
	if got := targetsIn(t, res, in, "foo", "fp"); got != "foo:D" {
		t.Errorf("at point C fp points to %q, want foo:D", got)
	}

	// Inside bar: fp definitely points to bar (when called via fp).
	inBar := annotatedInput(t, res, "bar", func(b *simple.Basic) bool {
		return b.Kind == simple.AsgnAddr
	})
	got := targetsIn(t, res, inBar, "bar", "fp")
	if got != "bar:D" {
		t.Errorf("at point D entry fp points to %q, want bar:D", got)
	}

	// Invocation graph: main calls foo and bar; foo's nested fp() call
	// resolves to foo only (fp definitely points to foo there), which is
	// recursive.
	st := res.Graph.ComputeStats()
	if st.Recursive != 1 || st.Approximate != 1 {
		t.Errorf("IG should have one recursive/approximate pair, got R=%d A=%d",
			st.Recursive, st.Approximate)
	}
	// Nodes: main, foo (recursive), foo-approx, bar = 4.
	if st.Nodes != 4 {
		t.Errorf("IG nodes = %d, want 4", st.Nodes)
	}
}

func TestFunctionPointerArray(t *testing.T) {
	res := analyzeSrc(t, `
int r;
int f1(void) { return 1; }
int f2(void) { return 2; }
int (*table[2])(void) = { f1, f2 };
int main() {
	int (*fp)(void);
	int i;
	fp = table[i];
	r = fp();
	return 0;
}
`)
	if got := mainTargets(t, res, "fp"); got != "f1:P f2:P" {
		t.Errorf("fp points to %q, want f1:P f2:P", got)
	}
	// Both f1 and f2 must appear in the invocation graph.
	fns := make(map[string]bool)
	res.Graph.Walk(func(n *invgraph.Node) { fns[n.Fn.Name()] = true })
	if !fns["f1"] || !fns["f2"] {
		t.Errorf("IG should include f1 and f2, got %v", fns)
	}
}

func TestFunctionPointerInStructField(t *testing.T) {
	// The vtable/callback pattern: the call site dispatches through a
	// struct field; the analysis must resolve it to exactly the stored
	// function, not all address-taken functions.
	res := analyzeSrc(t, `
int ra, rb;
void opA(void) { ra = 1; }
void opB(void) { rb = 1; }
struct ops { void (*run)(void); int tag; };
int main() {
	struct ops v;
	struct ops *pv;
	v.run = opA;
	pv = &v;
	pv->run();
	return 0;
}
`)
	// Only opA is invoked: ra set, rb untouched.
	fns := make(map[string]bool)
	res.Graph.Walk(func(n *invgraph.Node) { fns[n.Fn.Name()] = true })
	if !fns["opA"] {
		t.Error("opA must be in the invocation graph")
	}
	if fns["opB"] {
		t.Error("opB must NOT be invoked (field dispatch resolved precisely)")
	}
}

func TestFunctionPointerPassedAsArgument(t *testing.T) {
	res := analyzeSrc(t, `
int r1, r2;
void fa(void) { r1 = 1; }
void fb(void) { r2 = 1; }
void invoke(void (*cb)(void)) {
	cb();
}
int main() {
	invoke(fa);
	invoke(fb);
	return 0;
}
`)
	// Context sensitivity: the first invoke calls only fa, the second
	// only fb.
	var calls []string
	res.Graph.Walk(func(n *invgraph.Node) {
		if n.Parent != nil && n.Parent.Fn.Name() == "invoke" {
			calls = append(calls, n.Parent.Path()+" => "+n.Fn.Name())
		}
	})
	if len(calls) != 2 {
		t.Fatalf("expected 2 resolved indirect calls, got %v", calls)
	}
	for _, c := range calls {
		if strings.Contains(c, "fa") == strings.Contains(c, "fb") {
			t.Errorf("each invoke context must resolve to exactly one target: %v", calls)
		}
	}
}

func TestGlobalInitializers(t *testing.T) {
	res := analyzeSrc(t, `
int x;
int *gp = &x;
int main() {
	int *q;
	q = gp;
	return 0;
}
`)
	if got := mainTargets(t, res, "q"); got != "x:D" {
		t.Errorf("q points to %q, want x:D", got)
	}
}

func TestHeapToHeap(t *testing.T) {
	res := analyzeSrc(t, `
struct node { struct node *next; };
int main() {
	struct node *p, *q;
	p = (struct node *) malloc(8);
	q = (struct node *) malloc(8);
	p->next = q;   /* heap -> heap */
	q = p->next;
	return 0;
}
`)
	if got := mainTargets(t, res, "q"); got != "heap:P" {
		t.Errorf("q points to %q, want heap:P", got)
	}
}

func TestLoopFixedPointListWalk(t *testing.T) {
	res := analyzeSrc(t, `
struct node { struct node *next; int v; };
int main() {
	struct node a, b, c;
	struct node *p;
	a.next = &b;
	b.next = &c;
	c.next = 0;
	p = &a;
	while (p) {
		p = p->next;
	}
	return 0;
}
`)
	got := mainTargets(t, res, "p")
	// p walks the list: may point to a, b, c (and NULL, excluded).
	if got != "a:P b:P c:P" {
		t.Errorf("p points to %q, want a:P b:P c:P", got)
	}
}

func TestNoDefiniteAblation(t *testing.T) {
	res := analyzeSrcOpts(t, `
int main() {
	int x, y;
	int *p;
	p = &x;
	p = &y;
	return 0;
}
`, Options{NoDefinite: true})
	// Without strong updates both targets survive as possible.
	if got := mainTargets(t, res, "p"); got != "x:P y:P" {
		t.Errorf("p points to %q, want x:P y:P under NoDefinite", got)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	res := analyzeSrc(t, `
int main() {
	int a, b, c, n;
	int *p;
	p = &a;
	switch (n) {
	case 0:
		p = &b;
		/* fallthrough */
	case 1:
		p = &c;
		break;
	case 2:
		break;
	}
	return 0;
}
`)
	// Paths: case0->case1 => c; case1 => c; case2 => a; no match => a.
	if got := mainTargets(t, res, "p"); got != "a:P c:P" {
		t.Errorf("p points to %q, want a:P c:P", got)
	}
}

func TestIndirectCallContextBinding(t *testing.T) {
	// While analyzing a target of an indirect call, the function pointer
	// definitely points to that target (paper §5) — so a nested indirect
	// call inside the target goes only to the target itself.
	res := analyzeSrc(t, `
int depth;
void g(void);
void h(void);
void (*fp)(void);
void g(void) {
	depth = depth + 1;
	if (depth < 2) fp();
}
void h(void) {
	depth = depth + 10;
	if (depth < 2) fp();
}
int main() {
	int c;
	if (c) fp = g; else fp = h;
	fp();
	return 0;
}
`)
	// Each of g and h should appear; inside g the nested fp() call must
	// target only g (recursion), not h.
	var gNode *invgraph.Node
	res.Graph.Walk(func(n *invgraph.Node) {
		if n.Fn.Name() == "g" && n.Parent != nil && n.Parent.Fn.Name() == "main" {
			gNode = n
		}
	})
	if gNode == nil {
		t.Fatal("g not called from main in IG")
	}
	for _, c := range gNode.Children {
		if c.Fn.Name() != "g" {
			t.Errorf("nested indirect call inside g resolved to %s; want only g", c.Fn.Name())
		}
		if c.Kind != invgraph.Approximate {
			t.Errorf("nested g call should be approximate (recursive), got %s", c.Kind)
		}
	}
	if len(gNode.Children) != 1 {
		t.Errorf("g should have exactly 1 indirect child, got %d", len(gNode.Children))
	}
}

func TestUnionMembersCollapse(t *testing.T) {
	// Union members overlap in memory: a pointer stored through one
	// member must be visible through every member, so all members share
	// the collapsed $union location (conservatively possible-only).
	res := analyzeSrc(t, `
union u { int *p; int *q; };
int main() {
	union u v;
	int x, r;
	int *got;
	v.p = &x;
	got = v.q;   /* reads the same storage */
	*v.q = 5;
	r = x;
	return r;
}
`)
	if got := mainTargets(t, res, "got"); got != "x:P" {
		t.Errorf("got points to %q, want x:P (union member overlap)", got)
	}
}

func TestUnionWithNestedStruct(t *testing.T) {
	// Nested aggregates under a union collapse too (the absorbing
	// location swallows deeper selectors).
	res := analyzeSrc(t, `
union deep {
	struct { int *p; } s;
	int *q;
};
int main() {
	union deep v;
	int x;
	int *got;
	v.s.p = &x;
	got = v.q;
	return 0;
}
`)
	if got := mainTargets(t, res, "got"); got != "x:P" {
		t.Errorf("got points to %q, want x:P (nested union overlap)", got)
	}
}

func TestStringLiteral(t *testing.T) {
	res := analyzeSrc(t, `
int main() {
	char *s;
	s = "hello";
	return 0;
}
`)
	if got := mainTargets(t, res, "s"); got != "_string_:P" {
		t.Errorf("s points to %q, want _string_:P", got)
	}
}

func TestActualAliasedThroughPointerArg(t *testing.T) {
	// mp is passed by value as p AND is reachable through the second
	// argument (*mpp == mp). The formal p is a copy, so mp itself is an
	// invisible variable that needs its own symbolic name; reading *pp in
	// the callee must yield mp's contents, and the global must end up
	// pointing at m0. (Regression test for a mapping bug found by the
	// interpreter-oracle fuzzer.)
	res := analyzeSrc(t, `
int *gp0;
void helper(int *p, int **pp) {
	if (pp) { gp0 = *pp; }
}
int main() {
	int m0;
	int *mp;
	int **mpp;
	mp = &m0;
	mpp = &mp;
	helper(mp, mpp);
	return 0;
}
`)
	got := mainTargets(t, res, "gp0")
	if got != "m0:P" && got != "m0:D" {
		t.Errorf("gp0 points to %q, want m0", got)
	}
}

func TestWriteThroughAliasedActual(t *testing.T) {
	// Writing through *pp must update mp (the caller cell), not the
	// formal copy p.
	res := analyzeSrc(t, `
int g;
void helper(int *p, int **pp) {
	*pp = &g;
}
int main() {
	int m0;
	int *mp;
	int **mpp;
	mp = &m0;
	mpp = &mp;
	helper(mp, mpp);
	return 0;
}
`)
	if got := mainTargets(t, res, "mp"); got != "g:D" {
		t.Errorf("mp points to %q, want g:D", got)
	}
}

func TestLoopConditionWithCall(t *testing.T) {
	// The while condition contains a call whose effect must be re-applied
	// on every iteration (CondEval): advance() moves the global cursor.
	res := analyzeSrc(t, `
struct node { struct node *next; };
struct node *cursor;
int advance(void) {
	if (cursor)
		cursor = cursor->next;
	if (cursor)
		return 1;
	return 0;
}
int main() {
	struct node a, b, c;
	a.next = &b;
	b.next = &c;
	c.next = 0;
	cursor = &a;
	while (advance()) {
	}
	return 0;
}
`)
	// cursor walks the whole list: may be a, b, c or NULL at exit.
	if got := mainTargets(t, res, "cursor"); got != "a:P b:P c:P" {
		t.Errorf("cursor points to %q, want a:P b:P c:P", got)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	// No main.
	tu, err := parser.Parse("t.c", `void f(void) {}`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, Options{}); err == nil {
		t.Error("analysis without main should fail")
	}

	// Step-limit guard.
	tu2, err := parser.Parse("t.c", `
int g;
void churn(int *p) { *p = *p + 1; }
int main() {
	int i;
	for (i = 0; i < 100; i++)
		churn(&g);
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := simplify.Simplify(tu2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog2, Options{MaxSteps: 3}); err == nil {
		t.Error("tiny step budget should be reported as an error")
	}
}

func TestBottomNeverEscapes(t *testing.T) {
	// A function whose only call is recursive-from-itself still
	// terminates with a sound result.
	res := analyzeSrc(t, `
int g;
int *f(int n) {
	if (n <= 0) return &g;
	return f(n - 1);
}
int main() {
	int *p;
	p = f(3);
	return 0;
}
`)
	if res.MainOut.IsBottom() {
		t.Fatal("main output must not be BOTTOM")
	}
	// Every path through f returns &g, so the relationship is definite
	// even through the recursion fixed point.
	if got := mainTargets(t, res, "p"); got != "g:D" {
		t.Errorf("p points to %q, want g:D", got)
	}
}

// TestNoDefiniteFromMultiInvariant scans every benchmark's annotations and
// final sets: no definite relationship may originate at a location that
// represents more than one real stack location (DESIGN.md invariant; the
// kill rule depends on it).
func TestNoDefiniteFromMultiInvariant(t *testing.T) {
	for _, name := range bench.AvailableOnDisk() {
		prog, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		check := func(s ptset.Set, where string) {
			for _, tr := range s.Triples() {
				if tr.Def == ptset.D && tr.Src.Multi() {
					t.Errorf("%s %s: definite edge from multi location (%s,%s,D)",
						name, where, tr.Src.Name(), tr.Dst.Name())
				}
			}
		}
		check(res.MainOut, "main exit")
		res.Prog.ForEachBasic(func(b *simple.Basic) {
			if in, ok := res.Annots.At(b); ok {
				check(in, b.String())
			}
		})
	}
}

// TestConcurrentIndependentAnalyses documents that independent analyses are
// goroutine-safe (each Analyze builds its own tables and graphs). Run with
// -race for the real check.
func TestConcurrentIndependentAnalyses(t *testing.T) {
	names := []string{"hash", "xref", "mway", "travel"}
	done := make(chan error, len(names))
	for _, n := range names {
		n := n
		go func() {
			prog, err := bench.Load(n)
			if err != nil {
				done <- err
				return
			}
			_, err = Analyze(prog, Options{})
			done <- err
		}()
	}
	for range names {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// free() modeling: heap relationships retarget to the freed location.

// TestFreeRetargetsToFreed checks the strong case: free(p) on a definite,
// single pointer removes p's heap edge and replaces it with a freed edge.
func TestFreeRetargetsToFreed(t *testing.T) {
	res := analyzeSrc(t, `
int main(void) {
	int *p;
	p = (int *) malloc(4);
	free(p);
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "freed:P" {
		t.Errorf("after free(p): p targets %q, want %q", got, "freed:P")
	}
}

// TestFreeKeepsAliases checks that only the freed pointer is retargeted:
// aliases of the dead object keep their heap edge (the single heap location
// also stands for live objects, so dropping alias edges would be unsound).
func TestFreeKeepsAliases(t *testing.T) {
	res := analyzeSrc(t, `
int main(void) {
	int *p;
	int *q;
	p = (int *) malloc(4);
	q = p;
	free(p);
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "freed:P" {
		t.Errorf("after free(p): p targets %q, want %q", got, "freed:P")
	}
	if got := mainTargets(t, res, "q"); got != "heap:P" {
		t.Errorf("after free(p): alias q targets %q, want %q", got, "heap:P")
	}
}

// TestFreeWeakThroughPointer checks the weak case: freeing through a pointer
// with several possible targets keeps the heap edges and adds possible freed
// edges alongside them.
func TestFreeWeakThroughPointer(t *testing.T) {
	res := analyzeSrc(t, `
int main(void) {
	int *p;
	int *q;
	int **pp;
	int c;
	p = (int *) malloc(4);
	q = (int *) malloc(4);
	if (c)
		pp = &p;
	else
		pp = &q;
	free(*pp);
	return 0;
}
`)
	for _, v := range []string{"p", "q"} {
		if got := mainTargets(t, res, v); got != "freed:P heap:P" {
			t.Errorf("after free(*pp): %s targets %q, want %q", v, got, "freed:P heap:P")
		}
	}
}

// TestFreeThenNullIdiom checks the free-then-NULL idiom: the subsequent
// assignment strongly kills the freed edge, so p is definitely NULL.
func TestFreeThenNullIdiom(t *testing.T) {
	res := analyzeSrc(t, `
int main(void) {
	int *p;
	p = (int *) malloc(4);
	free(p);
	p = 0;
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "" {
		t.Errorf("after free(p); p = 0: p targets %q, want none (NULL only)", got)
	}
	obj := findObj(res, "main", "p")
	l := res.Table.VarLoc(obj, nil)
	if d, ok := res.MainOut.Lookup(l, res.Table.NullLoc()); !ok || d != ptset.D {
		t.Errorf("after free(p); p = 0: want (p,NULL,D), got ok=%v d=%v", ok, d)
	}
}

// TestFreeNonHeapNoEffect checks that free of a pointer with no heap edge
// changes nothing (the checker reports invalid frees; the analysis itself
// stays neutral).
func TestFreeNonHeapNoEffect(t *testing.T) {
	res := analyzeSrc(t, `
int main(void) {
	int x;
	int *p;
	p = &x;
	free(p);
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "x:D" {
		t.Errorf("after free(&x): p targets %q, want %q", got, "x:D")
	}
}

// TestFreeAcrossCall checks that free inside a callee retargets the caller's
// pointer through the invisible-variable machinery.
func TestFreeAcrossCall(t *testing.T) {
	res := analyzeSrc(t, `
void rel(int **pp) {
	free(*pp);
}
int main(void) {
	int *p;
	p = (int *) malloc(4);
	rel(&p);
	return 0;
}
`)
	if got := mainTargets(t, res, "p"); got != "freed:P" {
		t.Errorf("after rel(&p): p targets %q, want %q", got, "freed:P")
	}
}

// TestRecordContexts checks the per-invocation-graph-node annotations: the
// same statement analyzed from two call sites records a separate input per
// node, and the per-node merge of all nodes agrees with the global merge.
func TestRecordContexts(t *testing.T) {
	src := `
int g;
void set(int *q) {
	*q = 1;
}
int main(void) {
	int a;
	int *p;
	p = &a;
	set(p);
	set(&g);
	return 0;
}
`
	res := analyzeSrcOpts(t, src, Options{RecordContexts: true})
	var deref *simple.Basic
	res.Prog.ForEachBasic(func(b *simple.Basic) {
		if deref == nil && b.LHS != nil && b.LHS.Deref && b.LHS.Var.Name == "q" {
			deref = b
		}
	})
	if deref == nil {
		t.Fatal("no *q = ... statement found")
	}
	ctxs := res.Annots.ContextsAt(deref)
	if len(ctxs) != 2 {
		t.Fatalf("ContextsAt(*q=1): %d contexts, want 2", len(ctxs))
	}
	merged := ptset.NewBottom()
	for n, in := range ctxs {
		if n.Fn.Name() != "set" {
			t.Errorf("context node is %s, want set", n.Fn.Name())
		}
		merged = ptset.Merge(merged, in)
	}
	global, ok := res.Annots.At(deref)
	if !ok {
		t.Fatal("no global annotation for *q = 1")
	}
	if !ptset.Equal(merged, global) {
		t.Errorf("per-node merge %s != global merge %s", merged, global)
	}
}
