package pta

import (
	"sort"

	"repro/internal/cc/ast"
	"repro/internal/obsv"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// Pthread intrinsic names recognized by the analysis (and by the race
// detector walking the SIMPLE IR).
const (
	PthreadCreate       = "pthread_create"
	PthreadJoin         = "pthread_join"
	PthreadExit         = "pthread_exit"
	PthreadMutexInit    = "pthread_mutex_init"
	PthreadMutexLock    = "pthread_mutex_lock"
	PthreadMutexUnlock  = "pthread_mutex_unlock"
	PthreadMutexDestroy = "pthread_mutex_destroy"
)

// pthreadNoop lists the pthread intrinsics with no effect on stack points-to
// relationships: lock operations touch only the mutex cell's integer state,
// join/exit only thread control state. (pthread_join's second argument could
// receive the thread's return pointer; like the other external models, that
// write is not tracked.)
var pthreadNoop = map[string]bool{
	PthreadJoin:         true,
	PthreadExit:         true,
	PthreadMutexInit:    true,
	PthreadMutexLock:    true,
	PthreadMutexUnlock:  true,
	PthreadMutexDestroy: true,
}

// IsPthreadIntrinsic reports whether name is one of the pthread calls the
// analysis models (rather than treating as an opaque external).
func IsPthreadIntrinsic(name string) bool {
	return name == PthreadCreate || pthreadNoop[name]
}

// IsCallTo reports whether b is a direct call to the named function.
func IsCallTo(b *simple.Basic, name string) bool {
	return b.Kind == simple.AsgnCall && b.Callee != nil && b.Callee.Name == name
}

// processPthreadCall dispatches the modeled pthread intrinsics; ok is false
// when b calls none of them.
func (a *analyzer) processPthreadCall(b *simple.Basic, in ptset.Set, ign *invgraph.Node, tk obsv.Track) (ptset.Set, bool) {
	name := b.Callee.Name
	if name == PthreadCreate {
		return a.processPthreadCreate(b, in, ign, tk), true
	}
	if pthreadNoop[name] {
		return in, true
	}
	return ptset.Set{}, false
}

// ThreadEntries resolves the entry-function argument of a pthread_create
// call under the given points-to set, exposed for interprocedural clients.
func ThreadEntries(res *Result, b *simple.Basic, in ptset.Set) []*simple.Function {
	a := &analyzer{prog: res.Prog, tab: res.Table, opts: res.Opts}
	return a.threadEntries(b, in)
}

// threadEntries resolves pthread_create's third argument — the thread entry
// function pointer — to the functions it can denote, using the same strategy
// options as indirect call sites (paper §5): a function name resolves
// directly, anything else through its points-to targets.
func (a *analyzer) threadEntries(b *simple.Basic, in ptset.Set) []*simple.Function {
	if len(b.Args) < 4 {
		return nil
	}
	ref, ok := b.Args[2].(*simple.Ref)
	if !ok {
		return nil
	}
	seen := make(map[*simple.Function]bool)
	var targets []*simple.Function
	add := func(fn *simple.Function) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			targets = append(targets, fn)
		}
	}
	if ref.Var.Kind == ast.FuncObj {
		add(a.prog.Lookup(ref.Var.Name))
	} else {
		switch a.opts.FnPtr {
		case Precise:
			for _, ld := range a.llocs(ref, in) {
				for _, t := range in.Targets(ld.l) {
					if t.Dst.Kind == loc.Func {
						add(a.prog.Lookup(t.Dst.Obj.Name))
					}
				}
			}
		case AddrTaken:
			for _, fn := range a.prog.Functions {
				if fn.Obj.AddrTaken {
					add(fn)
				}
			}
		case AllFuncs:
			for _, fn := range a.prog.Functions {
				add(fn)
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Name() < targets[j].Name() })
	return targets
}

// processPthreadCreate models pthread_create(&t, attr, fn, arg): fn is
// resolved through the points-to results to the possible thread entries, and
// each entry is analyzed as a pseudo-root invocation-graph subtree whose
// single argument is arg — the ordinary map/unmap machinery names everything
// the thread can reach from arg (and the globals) with invisible variables.
//
// The spawner continues concurrently with the thread, so at any later point
// of the caller the thread body may or may not have executed yet: the output
// is the caller's set merged with each thread's unmapped effects, which
// keeps the relationships common to both definite and weakens one-sided
// ones to possible.
func (a *analyzer) processPthreadCreate(b *simple.Basic, in ptset.Set, ign *invgraph.Node, tk obsv.Track) ptset.Set {
	targets := a.threadEntries(b, in)
	if len(targets) == 0 {
		a.diagf("%s: pthread_create entry has no known thread targets", b.Pos)
		return in
	}
	// The entry receives exactly one argument: pthread_create's fourth.
	// A synthetic one-argument call shape drives map/unmap; the real
	// statement b stays the invocation-graph site. No LHS: the thread's
	// return value is not delivered to the spawner here.
	synth := &simple.Basic{Kind: simple.AsgnCall, Args: []simple.Operand{b.Args[3]}, Pos: b.Pos}

	// Children are created serially in sorted entry order (like indirect
	// call fan-out) so the graph is identical for every worker count; the
	// subtrees then evaluate in parallel on cloned inputs and merge in
	// index order.
	children := make([]*invgraph.Node, len(targets))
	for i, fn := range targets {
		children[i] = a.g.AddThreadChild(ign, b, fn)
	}
	outs := make([]ptset.Set, len(targets))
	a.runParallel(tk, len(targets), func(i int, tk obsv.Track) {
		outs[i] = a.invoke(children[i], synth, targets[i], in.Clone(), tk)
	})
	out := in.Clone()
	for _, o := range outs {
		out = ptset.Merge(out, o)
	}
	return out
}
