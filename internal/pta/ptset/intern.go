package ptset

import (
	"sync"
	"sync/atomic"
)

// Interned is a hash-consed, immutable points-to set: within one Interner,
// structurally equal sets intern to the same *Interned, so set equality is
// pointer equality and a stored summary can be reused without copying.
type Interned struct {
	owner   *Interner
	hash    uint64
	triples []Triple // canonical order (sorted by source, then target)
	set     Set      // frozen view sharing this node's storage
	bottom  bool
}

// AsSet returns a frozen Set view of the interned set. The view shares
// storage with the intern table: mutating operations panic, and Clone gives
// a mutable copy. Re-interning the view is O(1).
func (i *Interned) AsSet() Set { return i.set }

// Len returns the number of triples (0 for BOTTOM).
func (i *Interned) Len() int { return len(i.triples) }

// IsBottom reports whether the interned set is BOTTOM.
func (i *Interned) IsBottom() bool { return i.bottom }

// Triples returns the canonical triple ordering. Callers must not modify the
// returned slice.
func (i *Interned) Triples() []Triple { return i.triples }

// Hash returns the structural hash (stable within a process run).
func (i *Interned) Hash() uint64 { return i.hash }

func (i *Interned) String() string { return i.set.String() }

// DefaultInternShards is the shard count of NewInterner. Sharding exists
// because the intern table is the one structure every analysis worker hits
// on every statement: a single table mutex serializes the whole worker pool
// (BENCH_pta.json's flat speedup curve). Shard counts are powers of two so
// shard selection is a mask of the structural hash.
const DefaultInternShards = 64

// internShard is one independently locked slice of the intern table.
type internShard struct {
	mu      sync.RWMutex
	buckets map[uint64][]*Interned

	contended atomic.Uint64 // lock acquisitions that had to wait
	_         [24]byte      // keep neighbouring shards off one cache line
}

// lock acquires the shard's write lock, counting contended acquisitions.
func (s *internShard) lock() {
	if !s.mu.TryLock() {
		s.contended.Add(1)
		s.mu.Lock()
	}
}

// rlock acquires the shard's read lock, counting contended acquisitions.
func (s *internShard) rlock() {
	if !s.mu.TryRLock() {
		s.contended.Add(1)
		s.mu.RLock()
	}
}

// Interner is a global intern table for points-to sets, safe for concurrent
// use by the analysis worker pool. One Interner is shared by every goroutine
// of an analysis run; sets from different Interners never compare equal by
// pointer. The table is sharded by structural hash so concurrent workers
// interning unrelated sets do not serialize on one mutex.
type Interner struct {
	shards []*internShard
	mask   uint64
	bottom *Interned
	empty  *Interned

	hits   atomic.Uint64 // Intern calls answered by an existing node
	misses atomic.Uint64 // Intern calls that created a new node
}

// NewInterner returns an empty intern table with DefaultInternShards shards.
func NewInterner() *Interner { return NewInternerSharded(DefaultInternShards) }

// NewInternerSharded returns an empty intern table with the given shard
// count, rounded up to a power of two (minimum 1). The 1-shard table is the
// pre-sharding behavior: one mutex guarding everything.
func NewInternerSharded(shards int) *Interner {
	n := 1
	for n < shards {
		n <<= 1
	}
	it := &Interner{shards: make([]*internShard, n), mask: uint64(n - 1)}
	for i := range it.shards {
		it.shards[i] = &internShard{buckets: make(map[uint64][]*Interned)}
	}
	it.bottom = &Interned{owner: it, bottom: true}
	it.bottom.set = Set{bottom: true, frozen: true, interned: it.bottom}
	it.empty = &Interned{owner: it}
	it.empty.set = Set{m: map[Edge]Def{}, frozen: true, interned: it.empty}
	return it
}

// shard returns the shard owning structural hash h. The bucket maps are
// keyed by the full hash; only the shard choice uses the low bits.
func (it *Interner) shard(h uint64) *internShard {
	// Fold the high bits in so the low bits used by the mask are not the
	// same bits that pick the map bucket within the shard.
	return it.shards[(h^h>>32)&it.mask]
}

// InternStats reports intern-table activity.
type InternStats struct {
	Distinct  int    // distinct sets interned (excluding BOTTOM and empty)
	Hits      uint64 // lookups answered by an existing node
	Misses    uint64 // lookups that created a new node
	Shards    int    // shard count of the table
	Contended uint64 // shard-lock acquisitions that had to wait
}

// Stats returns a snapshot of the table's counters.
func (it *Interner) Stats() InternStats {
	st := InternStats{
		Hits:   it.hits.Load(),
		Misses: it.misses.Load(),
		Shards: len(it.shards),
	}
	for _, sh := range it.shards {
		sh.mu.RLock()
		for _, b := range sh.buckets {
			st.Distinct += len(b)
		}
		sh.mu.RUnlock()
		st.Contended += sh.contended.Load()
	}
	return st
}

// Intern returns the canonical interned form of s. Interning a frozen view
// produced by this table is O(1); otherwise the set is canonicalized (sorted
// triple order), hashed, and deduplicated against the shard owning its hash.
func (it *Interner) Intern(s Set) *Interned {
	if s.interned != nil && s.interned.owner == it {
		it.hits.Add(1)
		return s.interned
	}
	if s.IsBottom() {
		it.hits.Add(1)
		return it.bottom
	}
	if s.Len() == 0 {
		it.hits.Add(1)
		return it.empty
	}
	ts := s.Triples() // canonical: sorted by (src, dst) sort keys
	h := hashTriples(ts)
	sh := it.shard(h)

	sh.rlock()
	for _, cand := range sh.buckets[h] {
		if sameTriples(cand.triples, ts) {
			sh.mu.RUnlock()
			it.hits.Add(1)
			return cand
		}
	}
	sh.mu.RUnlock()

	sh.lock()
	defer sh.mu.Unlock()
	for _, cand := range sh.buckets[h] {
		if sameTriples(cand.triples, ts) {
			it.hits.Add(1)
			return cand
		}
	}
	m := make(map[Edge]Def, len(ts))
	for _, t := range ts {
		m[Edge{t.Src, t.Dst}] = t.Def
	}
	node := &Interned{owner: it, hash: h, triples: ts}
	node.set = Set{m: m, frozen: true, interned: node}
	sh.buckets[h] = append(sh.buckets[h], node)
	it.misses.Add(1)
	return node
}

// sameTriples compares canonicalized triple slices; locations are interned,
// so pointer comparison suffices.
func sameTriples(a, b []Triple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst || a[i].Def != b[i].Def {
			return false
		}
	}
	return true
}

// hashTriples computes an FNV-1a structural hash over the canonical triple
// order, using the locations' deterministic sort keys.
func hashTriples(ts []Triple) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	for _, t := range ts {
		mix(t.Src.SortKey())
		mix(t.Dst.SortKey())
		if t.Def == D {
			h ^= 1
		} else {
			h ^= 2
		}
		h *= prime64
	}
	return h
}
