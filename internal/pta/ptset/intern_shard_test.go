package ptset

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cc/ast"
	"repro/internal/pta/loc"
)

// shardLayouts are the shard geometries every boundary test runs under,
// including the 1-shard degenerate case (the pre-sharding single-mutex
// table) and a non-power-of-two request that must round up.
var shardLayouts = []int{1, 2, 3, 4, 16, 64}

func TestInternerShardRounding(t *testing.T) {
	for req, want := range map[int]int{-4: 1, 0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 64: 64, 65: 128} {
		it := NewInternerSharded(req)
		if got := it.Stats().Shards; got != want {
			t.Errorf("NewInternerSharded(%d): %d shards, want %d", req, got, want)
		}
	}
	if got := NewInterner().Stats().Shards; got != DefaultInternShards {
		t.Errorf("NewInterner: %d shards, want %d", got, DefaultInternShards)
	}
}

// TestInternShardBoundaries interns the same set concurrently from N
// goroutines under every shard layout and checks that exactly one canonical
// pointer comes back per distinct set, that distinct sets stay distinct, and
// that the stats add up across shards. Run with -race this exercises the
// per-shard locking, including the 1-shard degenerate case.
func TestInternShardBoundaries(t *testing.T) {
	tab := loc.NewTable(nil)
	ls := make([]*loc.Location, 32)
	for i := range ls {
		ls[i] = tab.VarLoc(&ast.Object{Name: fmt.Sprintf("g%02d", i), Global: true}, nil)
	}
	// mk builds the k-th distinct set (a chain of k+1 edges).
	mk := func(k int) Set {
		s := New()
		for i := 0; i <= k; i++ {
			s.Insert(ls[i%len(ls)], ls[(i+k+1)%len(ls)], Def(i%2 == 0))
		}
		return s
	}
	const distinct = 24
	const workers = 8
	for _, shards := range shardLayouts {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			it := NewInternerSharded(shards)
			got := make([][]*Interned, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for round := 0; round < 50; round++ {
						for k := 0; k < distinct; k++ {
							got[w] = append(got[w], it.Intern(mk(k)))
						}
					}
				}(w)
			}
			wg.Wait()
			// One canonical pointer per distinct set, across all workers
			// and rounds, regardless of shard layout.
			canon := got[0][:distinct]
			for w := 0; w < workers; w++ {
				for i, n := range got[w] {
					if n != canon[i%distinct] {
						t.Fatalf("worker %d intern %d returned a non-canonical node", w, i)
					}
				}
			}
			for i := 0; i < distinct; i++ {
				for j := i + 1; j < distinct; j++ {
					if canon[i] == canon[j] {
						t.Fatalf("distinct sets %d and %d collapsed to one node", i, j)
					}
				}
			}
			st := it.Stats()
			if st.Distinct != distinct {
				t.Errorf("Distinct = %d, want %d", st.Distinct, distinct)
			}
			if want := uint64(workers*50*distinct) - uint64(distinct); st.Hits != want {
				t.Errorf("Hits = %d, want %d", st.Hits, want)
			}
			if st.Misses != distinct {
				t.Errorf("Misses = %d, want %d", st.Misses, distinct)
			}
		})
	}
}

// TestInternShardLayoutsAgree checks that every shard layout interns the
// same canonical content: the table geometry must be invisible to clients.
func TestInternShardLayoutsAgree(t *testing.T) {
	tab := loc.NewTable(nil)
	ls := make([]*loc.Location, 16)
	for i := range ls {
		ls[i] = tab.VarLoc(&ast.Object{Name: fmt.Sprintf("h%02d", i), Global: true}, nil)
	}
	build := func(it *Interner) []string {
		var out []string
		for k := 0; k < 40; k++ {
			s := New()
			for i := 0; i < 1+k%5; i++ {
				s.Insert(ls[(k+i)%len(ls)], ls[(k*3+i)%len(ls)], Def(k%3 == 0))
			}
			out = append(out, it.Intern(s).String())
		}
		return out
	}
	want := build(NewInternerSharded(1))
	for _, shards := range shardLayouts[1:] {
		got := build(NewInternerSharded(shards))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d intern %d: %s, want %s", shards, i, got[i], want[i])
			}
		}
	}
}

// BenchmarkInternContention measures concurrent interning throughput under
// the 1-shard (pre-sharding, single mutex) and sharded layouts. On a
// multi-core host the 1-shard variant serializes every worker on one lock —
// this benchmark is the proof that the flat speedup curve in BENCH_pta.json
// was a real contention artifact, not an algorithmic property. Run with:
//
//	go test -bench InternContention -cpu 1,4,8 ./internal/pta/ptset
func BenchmarkInternContention(b *testing.B) {
	tab := loc.NewTable(nil)
	ls := make([]*loc.Location, 64)
	for i := range ls {
		ls[i] = tab.VarLoc(&ast.Object{Name: fmt.Sprintf("b%02d", i), Global: true}, nil)
	}
	// A working set of pre-built mutable sets: interning re-canonicalizes
	// and hashes each, like the analysis interning freshly computed outputs.
	sets := make([]Set, 512)
	for k := range sets {
		s := New()
		for i := 0; i < 2+k%6; i++ {
			s.Insert(ls[(k+7*i)%len(ls)], ls[(k*5+i)%len(ls)], Def(i%2 == 0))
		}
		sets[k] = s
	}
	for _, shards := range []int{1, DefaultInternShards} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			it := NewInternerSharded(shards)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				k := 0
				for pb.Next() {
					it.Intern(sets[k%len(sets)])
					k++
				}
			})
			st := it.Stats()
			b.ReportMetric(float64(st.Contended), "contended-locks")
		})
	}
}
