package ptset

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cc/ast"
	"repro/internal/pta/loc"
)

// mkLocs builds n distinct global-variable locations.
func mkLocs(t *testing.T, n int) []*loc.Location {
	t.Helper()
	tab := loc.NewTable(nil)
	out := make([]*loc.Location, n)
	for i := range out {
		out[i] = tab.VarLoc(&ast.Object{Name: fmt.Sprintf("v%02d", i), Global: true}, nil)
	}
	return out
}

func TestInternIdentity(t *testing.T) {
	ls := mkLocs(t, 4)
	it := NewInterner()

	a := New()
	a.Insert(ls[0], ls[1], D)
	a.Insert(ls[2], ls[3], P)

	// The same content built in the opposite insertion order.
	b := New()
	b.Insert(ls[2], ls[3], P)
	b.Insert(ls[0], ls[1], D)

	ia, ib := it.Intern(a), it.Intern(b)
	if ia != ib {
		t.Fatalf("structurally equal sets interned to different nodes:\n%s\n%s", ia, ib)
	}
	if !Equal(ia.AsSet(), a) {
		t.Fatalf("interned view %s != original %s", ia.AsSet(), a)
	}

	// Different content interns differently.
	c := a.Clone()
	c.Insert(ls[1], ls[3], P)
	if it.Intern(c) == ia {
		t.Fatal("distinct sets interned to the same node")
	}

	// Definiteness is part of identity.
	d := New()
	d.Insert(ls[0], ls[1], P)
	d.Insert(ls[2], ls[3], P)
	if it.Intern(d) == ia {
		t.Fatal("sets differing only in definiteness interned to the same node")
	}
}

func TestInternBottomAndEmpty(t *testing.T) {
	it := NewInterner()
	if !it.Intern(NewBottom()).IsBottom() {
		t.Fatal("interned BOTTOM is not BOTTOM")
	}
	if it.Intern(NewBottom()) != it.Intern(NewBottom()) {
		t.Fatal("BOTTOM does not intern canonically")
	}
	if it.Intern(New()) != it.Intern(New()) {
		t.Fatal("empty set does not intern canonically")
	}
	if it.Intern(New()) == it.Intern(NewBottom()) {
		t.Fatal("empty and BOTTOM interned to the same node")
	}
}

func TestInternReinternIsO1(t *testing.T) {
	ls := mkLocs(t, 2)
	it := NewInterner()
	s := New()
	s.Insert(ls[0], ls[1], D)
	i1 := it.Intern(s)
	// Re-interning the frozen view takes the backref fast path.
	if it.Intern(i1.AsSet()) != i1 {
		t.Fatal("re-interning a frozen view did not return the same node")
	}
}

func TestFrozenViewPanicsOnMutation(t *testing.T) {
	ls := mkLocs(t, 2)
	it := NewInterner()
	s := New()
	s.Insert(ls[0], ls[1], D)
	v := it.Intern(s).AsSet()
	if !v.Frozen() {
		t.Fatal("interned view is not frozen")
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on frozen set did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Insert", func() { v.Insert(ls[1], ls[0], P) })
	mustPanic("Remove", func() { v.Remove(ls[0], ls[1]) })
	mustPanic("Kill", func() { v.Kill(ls[0]) })
	mustPanic("Weaken", func() { v.Weaken(ls[0]) })

	// Clone unfreezes.
	c := v.Clone()
	c.Insert(ls[1], ls[0], P)
	if c.Len() != 2 || v.Len() != 1 {
		t.Fatalf("clone of frozen view is not independent: clone=%s view=%s", c, v)
	}
}

func TestInternEqualSubsetFastPaths(t *testing.T) {
	ls := mkLocs(t, 3)
	it := NewInterner()
	s := New()
	s.Insert(ls[0], ls[1], D)
	s.Insert(ls[1], ls[2], P)
	a, b := it.Intern(s).AsSet(), it.Intern(s.Clone()).AsSet()
	if !Equal(a, b) || !Subset(a, b) || !Subset(b, a) {
		t.Fatal("interned views of equal sets do not compare equal")
	}
	// Cross-interner views must still compare structurally.
	other := NewInterner().Intern(s.Clone()).AsSet()
	if !Equal(a, other) {
		t.Fatal("equal sets from different interners compare unequal")
	}
}

// TestInternConcurrent hammers one Interner from many goroutines; run under
// -race this checks the table's locking.
func TestInternConcurrent(t *testing.T) {
	ls := mkLocs(t, 8)
	it := NewInterner()
	const workers = 8
	got := make([][]*Interned, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				s := New()
				for i := 0; i < len(ls)-1; i++ {
					if (round>>(i%4))&1 == 0 {
						s.Insert(ls[i], ls[i+1], Def(i%2 == 0))
					}
				}
				got[w] = append(got[w], it.Intern(s))
			}
		}(w)
	}
	wg.Wait()
	// Every worker interned the same sequence of sets: identical handles.
	for w := 1; w < workers; w++ {
		for i := range got[0] {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d round %d interned a different node", w, i)
			}
		}
	}
	st := it.Stats()
	if st.Distinct == 0 || st.Hits == 0 {
		t.Fatalf("implausible intern stats: %+v", st)
	}
}
