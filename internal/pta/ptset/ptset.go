// Package ptset implements points-to sets: sets of triples (x, y, D|P)
// between abstract stack locations, with the lattice operations the analysis
// needs (merge, subset, kill, definite-to-possible weakening) — paper §3.
package ptset

import (
	"sort"
	"strings"

	"repro/internal/pta/loc"
)

// Def is the definiteness of a relationship: true for definite (D), false
// for possible (P).
type Def bool

// Definiteness constants.
const (
	D Def = true
	P Def = false
)

func (d Def) String() string {
	if d {
		return "D"
	}
	return "P"
}

// And conjoins definiteness (D ∧ D = D, anything else P).
func (d Def) And(o Def) Def { return d && o }

// Edge is a (source, target) pair of locations.
type Edge struct {
	Src, Dst *loc.Location
}

// Triple is one points-to relationship.
type Triple struct {
	Src, Dst *loc.Location
	Def      Def
}

func (t Triple) String() string {
	return "(" + t.Src.Name() + "," + t.Dst.Name() + "," + t.Def.String() + ")"
}

// Set is a points-to set. The zero value is an empty set; use NewBottom for
// the BOTTOM element that represents "no information / unreachable" in the
// recursion fixed-point (paper Figure 4).
//
// Invariant: a set holds at most one triple per (src, dst) edge; inserting
// both D and P for the same edge weakens it to P.
//
// A set can be frozen (see Interner): frozen sets share storage with the
// intern table and panic on mutation; Clone yields a mutable copy.
type Set struct {
	m      map[Edge]Def
	bottom bool
	frozen bool
	// interned points back to the canonical interned form when this set is
	// a frozen view of one, making re-interning O(1).
	interned *Interned
}

// New returns an empty set.
func New() Set { return Set{m: make(map[Edge]Def)} }

// NewBottom returns the BOTTOM element.
func NewBottom() Set { return Set{bottom: true} }

// IsBottom reports whether the set is BOTTOM.
func (s Set) IsBottom() bool { return s.bottom }

// Len returns the number of triples (0 for BOTTOM).
func (s Set) Len() int { return len(s.m) }

// Insert adds (src, dst, d), weakening to P when the edge already exists
// with a different definiteness. Inserting into BOTTOM panics: BOTTOM must
// be replaced by Merge before use.
func (s Set) Insert(src, dst *loc.Location, d Def) {
	if s.bottom {
		panic("ptset: insert into BOTTOM")
	}
	if s.frozen {
		panic("ptset: insert into frozen set")
	}
	e := Edge{src, dst}
	if old, ok := s.m[e]; ok {
		if old != d {
			s.m[e] = P
		}
		return
	}
	s.m[e] = d
}

// InsertTriple adds t.
func (s Set) InsertTriple(t Triple) { s.Insert(t.Src, t.Dst, t.Def) }

// Lookup returns the definiteness of edge (src, dst) and whether it exists.
func (s Set) Lookup(src, dst *loc.Location) (Def, bool) {
	if s.bottom {
		return P, false
	}
	d, ok := s.m[Edge{src, dst}]
	return d, ok
}

// Targets returns the triples with the given source, sorted.
func (s Set) Targets(src *loc.Location) []Triple {
	if s.bottom {
		return nil
	}
	var out []Triple
	for e, d := range s.m {
		if e.Src == src {
			out = append(out, Triple{e.Src, e.Dst, d})
		}
	}
	sortTriples(out)
	return out
}

// Sources returns the triples with the given target, sorted.
func (s Set) Sources(dst *loc.Location) []Triple {
	if s.bottom {
		return nil
	}
	var out []Triple
	for e, d := range s.m {
		if e.Dst == dst {
			out = append(out, Triple{e.Src, e.Dst, d})
		}
	}
	sortTriples(out)
	return out
}

// Remove deletes the single edge (src, dst) if present.
func (s Set) Remove(src, dst *loc.Location) {
	if s.bottom {
		return
	}
	if s.frozen {
		panic("ptset: remove from frozen set")
	}
	delete(s.m, Edge{src, dst})
}

// Kill removes every relationship whose source is src.
func (s Set) Kill(src *loc.Location) {
	if s.bottom {
		return
	}
	if s.frozen {
		panic("ptset: kill in frozen set")
	}
	for e := range s.m {
		if e.Src == src {
			delete(s.m, e)
		}
	}
}

// Weaken turns every definite relationship from src into a possible one.
func (s Set) Weaken(src *loc.Location) {
	if s.bottom {
		return
	}
	if s.frozen {
		panic("ptset: weaken in frozen set")
	}
	for e, d := range s.m {
		if e.Src == src && d == D {
			s.m[e] = P
		}
	}
}

// Frozen reports whether the set is an immutable interned view.
func (s Set) Frozen() bool { return s.frozen }

// Clone returns a deep, mutable copy.
func (s Set) Clone() Set {
	if s.bottom {
		return NewBottom()
	}
	n := Set{m: make(map[Edge]Def, len(s.m))}
	for e, d := range s.m {
		n.m[e] = d
	}
	return n
}

// Merge returns the join of a and b (paper's Merge): the union of edges,
// where an edge definite in both stays definite and anything else becomes
// possible. BOTTOM is the identity.
func Merge(a, b Set) Set {
	switch {
	case a.bottom && b.bottom:
		return NewBottom()
	case a.bottom:
		return b.Clone()
	case b.bottom:
		return a.Clone()
	}
	out := a.Clone()
	for e, db := range b.m {
		if da, ok := out.m[e]; ok {
			if da != db || db == P {
				out.m[e] = P
			}
			continue
		}
		// Present only in b: on the other path the relationship does not
		// hold, so it cannot be definite after the merge.
		out.m[e] = P
	}
	// Edges present only in a likewise lose definiteness.
	for e, da := range out.m {
		if da == D {
			if _, ok := b.m[e]; !ok {
				out.m[e] = P
			}
		}
	}
	return out
}

// MergeAll joins any number of sets.
func MergeAll(sets ...Set) Set {
	out := NewBottom()
	for _, s := range sets {
		out = Merge(out, s)
	}
	return out
}

// Subset reports whether every relationship in a is covered by b: each edge
// of a exists in b, and an edge definite in b is definite in a. (A possible
// edge in a covered by a definite edge in b would claim more than b knows,
// so D-in-b/P-in-a is NOT a subset.)
//
// BOTTOM is a subset of everything.
func Subset(a, b Set) bool {
	if a.interned != nil && a.interned == b.interned {
		return true // identical interned sets
	}
	if a.bottom {
		return true
	}
	if b.bottom {
		return false
	}
	for e, da := range a.m {
		db, ok := b.m[e]
		if !ok {
			return false
		}
		if db == D && da == P {
			return false
		}
	}
	return true
}

// Equal reports structural equality. Views of the same intern table compare
// by pointer.
func Equal(a, b Set) bool {
	if a.interned != nil && b.interned != nil {
		if a.interned == b.interned {
			return true
		}
		if a.interned.owner == b.interned.owner {
			return false // same table, different canonical sets
		}
	}
	if a.bottom || b.bottom {
		return a.bottom == b.bottom
	}
	if len(a.m) != len(b.m) {
		return false
	}
	for e, da := range a.m {
		if db, ok := b.m[e]; !ok || da != db {
			return false
		}
	}
	return true
}

// Range calls f for every triple in unspecified order. Use it in hot paths
// whose effects are order-independent (Insert and Kill are commutative);
// use Triples when deterministic iteration matters.
func (s Set) Range(f func(Triple)) {
	if s.bottom {
		return
	}
	for e, d := range s.m {
		f(Triple{e.Src, e.Dst, d})
	}
}

// Triples returns all relationships, sorted deterministically.
func (s Set) Triples() []Triple {
	if s.bottom {
		return nil
	}
	out := make([]Triple, 0, len(s.m))
	for e, d := range s.m {
		out = append(out, Triple{e.Src, e.Dst, d})
	}
	sortTriples(out)
	return out
}

// Filter returns the triples satisfying keep, sorted.
func (s Set) Filter(keep func(Triple) bool) []Triple {
	var out []Triple
	for e, d := range s.m {
		t := Triple{e.Src, e.Dst, d}
		if keep(t) {
			out = append(out, t)
		}
	}
	sortTriples(out)
	return out
}

func sortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		if a, b := ts[i].Src.SortKey(), ts[j].Src.SortKey(); a != b {
			return a < b
		}
		return ts[i].Dst.SortKey() < ts[j].Dst.SortKey()
	})
}

// String renders the set like the paper: (x,y,D) (y,z,P) …
func (s Set) String() string {
	if s.bottom {
		return "BOTTOM"
	}
	ts := s.Triples()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// StringNoNull renders the set without NULL and init-only relationships
// (the paper excludes NULL-initialization pairs from reported results).
func (s Set) StringNoNull() string {
	if s.bottom {
		return "BOTTOM"
	}
	var parts []string
	for _, t := range s.Triples() {
		if t.Dst.Kind == loc.Null {
			continue
		}
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}
