package ptset

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cc/ast"
	"repro/internal/pta/loc"
)

// testLocs builds a pool of distinct locations for property tests.
func testLocs(n int) []*loc.Location {
	tab := loc.NewTable(nil)
	out := make([]*loc.Location, n)
	for i := range out {
		obj := &ast.Object{Name: fmt.Sprintf("v%d", i), Kind: ast.Var, Global: true}
		out[i] = tab.VarLoc(obj, nil)
	}
	return out
}

// randomSet is a generatable points-to set over a fixed location pool.
type randomSet struct {
	edges []edgeSpec
}

type edgeSpec struct {
	src, dst uint8
	def      bool
}

func (randomSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(12)
	rs := randomSet{}
	for i := 0; i < n; i++ {
		rs.edges = append(rs.edges, edgeSpec{
			src: uint8(r.Intn(8)),
			dst: uint8(r.Intn(8)),
			def: r.Intn(2) == 0,
		})
	}
	return reflect.ValueOf(rs)
}

var pool = testLocs(8)

func (rs randomSet) build() Set {
	s := New()
	for _, e := range rs.edges {
		d := P
		if e.def {
			d = D
		}
		s.Insert(pool[e.src], pool[e.dst], d)
	}
	return s
}

func TestInsertWeakens(t *testing.T) {
	s := New()
	s.Insert(pool[0], pool[1], D)
	if d, ok := s.Lookup(pool[0], pool[1]); !ok || d != D {
		t.Fatal("expected definite edge")
	}
	s.Insert(pool[0], pool[1], P)
	if d, _ := s.Lookup(pool[0], pool[1]); d != P {
		t.Fatal("D+P insert must weaken to P")
	}
	if s.Len() != 1 {
		t.Fatalf("one edge expected, got %d", s.Len())
	}
}

func TestKillAndWeaken(t *testing.T) {
	s := New()
	s.Insert(pool[0], pool[1], D)
	s.Insert(pool[0], pool[2], P)
	s.Insert(pool[3], pool[1], D)
	s.Kill(pool[0])
	if s.Len() != 1 {
		t.Fatalf("kill should leave 1 edge, got %d", s.Len())
	}
	s.Weaken(pool[3])
	if d, _ := s.Lookup(pool[3], pool[1]); d != P {
		t.Fatal("weaken should turn D into P")
	}
}

func TestMergeBasics(t *testing.T) {
	a := New()
	a.Insert(pool[0], pool[1], D)
	b := New()
	b.Insert(pool[0], pool[1], D)
	b.Insert(pool[2], pool[3], D)
	m := Merge(a, b)
	// Edge in both and definite in both stays definite.
	if d, _ := m.Lookup(pool[0], pool[1]); d != D {
		t.Error("common definite edge should stay definite")
	}
	// Edge only in one side becomes possible.
	if d, ok := m.Lookup(pool[2], pool[3]); !ok || d != P {
		t.Error("one-sided edge should become possible")
	}
}

func TestBottomIdentity(t *testing.T) {
	a := New()
	a.Insert(pool[0], pool[1], D)
	if got := Merge(NewBottom(), a); !Equal(got, a) {
		t.Error("Merge(BOTTOM, a) should equal a")
	}
	if got := Merge(a, NewBottom()); !Equal(got, a) {
		t.Error("Merge(a, BOTTOM) should equal a")
	}
	if !Subset(NewBottom(), a) {
		t.Error("BOTTOM is a subset of everything")
	}
	if Subset(a, NewBottom()) {
		t.Error("a non-empty set is not a subset of BOTTOM")
	}
}

func TestSubsetDefiniteness(t *testing.T) {
	a := New()
	a.Insert(pool[0], pool[1], P)
	b := New()
	b.Insert(pool[0], pool[1], D)
	// a claims the edge is possible; b claims definite. a is NOT covered
	// by b (b says the relationship holds on all paths; a does not).
	if Subset(a, b) {
		t.Error("P edge is not a subset of D edge")
	}
	if !Subset(b, a) {
		t.Error("D edge should be covered by P edge")
	}
}

// --- quick properties ---

func TestQuickMergeCommutative(t *testing.T) {
	f := func(x, y randomSet) bool {
		a, b := x.build(), y.build()
		return Equal(Merge(a, b), Merge(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeAssociative(t *testing.T) {
	f := func(x, y, z randomSet) bool {
		a, b, c := x.build(), y.build(), z.build()
		l := Merge(Merge(a, b), c)
		r := Merge(a, Merge(b, c))
		return Equal(l, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeIdempotent(t *testing.T) {
	f := func(x randomSet) bool {
		a := x.build()
		return Equal(Merge(a, a), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetOfMerge(t *testing.T) {
	f := func(x, y randomSet) bool {
		a, b := x.build(), y.build()
		m := Merge(a, b)
		return Subset(a, m) && Subset(b, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetReflexiveTransitive(t *testing.T) {
	f := func(x, y, z randomSet) bool {
		a, b, c := x.build(), y.build(), z.build()
		if !Subset(a, a) {
			return false
		}
		ab := Merge(a, b)
		abc := Merge(ab, c)
		return Subset(a, ab) && Subset(ab, abc) && Subset(a, abc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneIndependent(t *testing.T) {
	f := func(x randomSet) bool {
		a := x.build()
		snapshot := fmt.Sprint(a.Triples())
		c := a.Clone()
		if !Equal(a, c) {
			return false
		}
		// Mutating the clone must leave the original untouched.
		c.Insert(pool[7], pool[7], P)
		c.Kill(pool[0])
		c.Weaken(pool[1])
		return fmt.Sprint(a.Triples()) == snapshot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNoDualEdges(t *testing.T) {
	// Invariant: a set never holds both a D and a P triple for one edge
	// (Insert collapses them).
	f := func(x randomSet) bool {
		a := x.build()
		seen := make(map[Edge]bool)
		for _, tr := range a.Triples() {
			e := Edge{tr.Src, tr.Dst}
			if seen[e] {
				return false
			}
			seen[e] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeDefiniteOnlyWhenBoth(t *testing.T) {
	f := func(x, y randomSet) bool {
		a, b := x.build(), y.build()
		m := Merge(a, b)
		for _, tr := range m.Triples() {
			if tr.Def == D {
				da, inA := a.Lookup(tr.Src, tr.Dst)
				db, inB := b.Lookup(tr.Src, tr.Dst)
				if !(inA && inB && da == D && db == D) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriplesDeterministic(t *testing.T) {
	a := New()
	a.Insert(pool[3], pool[1], P)
	a.Insert(pool[0], pool[2], D)
	a.Insert(pool[0], pool[1], P)
	got := fmt.Sprint(a.Triples())
	for i := 0; i < 10; i++ {
		b := New()
		b.Insert(pool[0], pool[1], P)
		b.Insert(pool[3], pool[1], P)
		b.Insert(pool[0], pool[2], D)
		if fmt.Sprint(b.Triples()) != got {
			t.Fatal("Triples() must be deterministic regardless of insert order")
		}
	}
}

func TestStringFormat(t *testing.T) {
	a := New()
	a.Insert(pool[0], pool[1], D)
	want := "(v0,v1,D)"
	if got := a.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if NewBottom().String() != "BOTTOM" {
		t.Error("BOTTOM should print as BOTTOM")
	}
}

func TestTargetsSources(t *testing.T) {
	a := New()
	a.Insert(pool[0], pool[1], D)
	a.Insert(pool[0], pool[2], P)
	a.Insert(pool[3], pool[2], P)
	if n := len(a.Targets(pool[0])); n != 2 {
		t.Errorf("Targets(v0) = %d, want 2", n)
	}
	if n := len(a.Sources(pool[2])); n != 2 {
		t.Errorf("Sources(v2) = %d, want 2", n)
	}
}
