package pta

import (
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
)

// This file implements the work-stealing scheduler that evaluates
// independent invocation subtrees concurrently. It replaces the earlier
// bounded pool, whose per-fan-out spawn-or-inline decision pinned every
// branch of a fan-out to whichever worker happened to reach it first: once
// the pool's slots were taken, an entire deep subtree ran inline on one
// goroutine while other workers finished their short branches and went
// idle. With stealing, the unfinished subtree's branches remain in a deque
// and idle workers take them, so imbalanced fan-outs (the common shape of
// real call graphs) keep every worker busy.
//
// Shape: one worker per Options.Workers slot, each with its own deque.
// A fan-out pushes its branches onto the current worker's deque (LIFO for
// the owner — depth-first, cache-warm) and runs the last branch itself;
// idle workers steal from the opposite end (FIFO — the oldest, typically
// largest, subtree). The forking worker then *joins*: while its fan-out has
// unfinished branches it keeps executing work (its own deque first, then
// steals), so nested fan-outs never deadlock and the scheduler is
// work-conserving. Determinism is unaffected: every fan-out writes results
// into an index-addressed slice and merges in index order, and panics are
// rethrown in index order after the join completes, exactly like the serial
// evaluator (see the stepsExceeded unwind in pta.go).

// wsTask is one fan-out branch: run task index idx of join j.
type wsTask struct {
	j   *wsJoin
	idx int
}

// wsJoin tracks one fork-join region: n branches, their panics captured by
// index, and the count still running.
type wsJoin struct {
	task    func(i int, tk obsv.Track)
	pending atomic.Int64
	panics  []any
}

// wsWorker is one scheduler worker: a deque plus the obsv track its spans
// render on. Worker 0 is the analysis's calling goroutine; the rest are
// spawned for the scheduler's lifetime.
type wsWorker struct {
	id    int
	track obsv.Track

	mu    sync.Mutex
	deque []wsTask
}

// push adds a task to the owner's end of the deque.
func (w *wsWorker) push(t wsTask) {
	w.mu.Lock()
	w.deque = append(w.deque, t)
	w.mu.Unlock()
}

// pop removes the most recently pushed task (owner end, LIFO).
func (w *wsWorker) pop() (wsTask, bool) {
	w.mu.Lock()
	n := len(w.deque)
	if n == 0 {
		w.mu.Unlock()
		return wsTask{}, false
	}
	t := w.deque[n-1]
	w.deque = w.deque[:n-1]
	w.mu.Unlock()
	return t, true
}

// stealFront removes the oldest task (thief end, FIFO).
func (w *wsWorker) stealFront() (wsTask, bool) {
	w.mu.Lock()
	if len(w.deque) == 0 {
		w.mu.Unlock()
		return wsTask{}, false
	}
	t := w.deque[0]
	w.deque = w.deque[1:]
	w.mu.Unlock()
	return t, true
}

func (w *wsWorker) queued() bool {
	w.mu.Lock()
	n := len(w.deque)
	w.mu.Unlock()
	return n > 0
}

// wsScheduler owns the workers and the idle-parking machinery. mu/cond
// guard only parking and shutdown; deque traffic stays on per-worker
// mutexes, and join completion is an atomic count.
type wsScheduler struct {
	workers []*wsWorker
	byTrack map[obsv.Track]*wsWorker
	tracer  *obsv.Tracer
	m       *obsv.Metrics

	mu       sync.Mutex
	cond     *sync.Cond
	waiters  int
	shutdown bool
	wg       sync.WaitGroup
}

// newScheduler starts a scheduler with n workers: the calling goroutine is
// worker 0, and n-1 worker goroutines are spawned immediately and parked
// until the first fan-out. Callers must stop() the scheduler when the
// analysis finishes (or unwinds).
func newScheduler(n int, tracer *obsv.Tracer, m *obsv.Metrics) *wsScheduler {
	s := &wsScheduler{
		workers: make([]*wsWorker, n),
		byTrack: make(map[obsv.Track]*wsWorker, n),
		tracer:  tracer,
		m:       m,
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < n; i++ {
		w := &wsWorker{id: i}
		if i > 0 {
			// Each worker renders as one timeline row. With tracing off,
			// NewTrack returns 0 for everyone, so fall back to synthetic
			// distinct track ids — nothing consumes them, but the scheduler
			// needs track->worker resolution for nested fan-outs.
			w.track = tracer.NewTrack()
			if w.track == 0 {
				w.track = obsv.Track(i)
			}
		}
		s.workers[i] = w
		s.byTrack[w.track] = w
	}
	for _, w := range s.workers[1:] {
		s.wg.Add(1)
		go s.workerLoop(w)
	}
	return s
}

// stop shuts the scheduler down and waits for the worker goroutines to
// exit. Every join must have completed: stop does not drain deques.
func (s *wsScheduler) stop() {
	s.mu.Lock()
	s.shutdown = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// anyQueued reports whether any worker's deque holds a task.
func (s *wsScheduler) anyQueued() bool {
	for _, w := range s.workers {
		if w.queued() {
			return true
		}
	}
	return false
}

// signal wakes parked workers after a push. Taking mu unconditionally
// (not just when waiters > 0 was *observed*) is what makes the park/push
// handshake lose no wakeups: a parker holds mu from its last anyQueued
// check until cond.Wait releases it, so this lock acquisition serializes
// after that check and the broadcast lands.
func (s *wsScheduler) signal() {
	s.mu.Lock()
	if s.waiters > 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// findWork returns a runnable task: the worker's own deque first (LIFO),
// then a steal sweep over the other workers (FIFO from the victim).
func (s *wsScheduler) findWork(w *wsWorker) (wsTask, bool) {
	if t, ok := w.pop(); ok {
		return t, true
	}
	for k := 1; k < len(s.workers); k++ {
		v := s.workers[(w.id+k)%len(s.workers)]
		if t, ok := v.stealFront(); ok {
			s.m.SchedSteals.Inc()
			if s.tracer != nil {
				s.tracer.Instant(w.track, obsv.CatWorker, "steal",
					"from w"+strconv.Itoa(v.id))
			}
			return t, true
		}
	}
	return wsTask{}, false
}

// runTask executes one branch on worker w, capturing its panic into the
// join and signalling completion.
func (s *wsScheduler) runTask(w *wsWorker, t wsTask) {
	var sp obsv.Span
	if s.tracer != nil {
		sp = s.tracer.Begin(w.track, obsv.CatWorker, "task", strconv.Itoa(t.idx))
	}
	defer func() {
		t.j.panics[t.idx] = recover()
		sp.End()
		if t.j.pending.Add(-1) == 0 {
			// The join's forker may be parked waiting for this completion.
			s.mu.Lock()
			if s.waiters > 0 {
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		}
	}()
	t.j.task(t.idx, w.track)
}

// workerLoop is the body of each spawned worker: run whatever is runnable,
// park when nothing is.
func (s *wsScheduler) workerLoop(w *wsWorker) {
	defer s.wg.Done()
	for {
		if t, ok := s.findWork(w); ok {
			s.runTask(w, t)
			continue
		}
		s.mu.Lock()
		for !s.shutdown && !s.anyQueued() {
			s.waiters++
			s.m.SchedParks.Inc()
			s.cond.Wait()
			s.waiters--
		}
		done := s.shutdown
		s.mu.Unlock()
		if done {
			return
		}
	}
}

// forkJoin evaluates task(0..n-1) and returns when all have finished,
// rethrowing the first captured panic in index order. tk identifies the
// calling worker (every analysis goroutine is a scheduler worker; the
// root call runs on worker 0's track).
func (s *wsScheduler) forkJoin(tk obsv.Track, n int, task func(i int, tk obsv.Track)) {
	w := s.byTrack[tk]
	if w == nil {
		// A caller outside the worker set (defensive; should not happen):
		// treat it as worker 0 for deque purposes.
		w = s.workers[0]
	}
	j := &wsJoin{task: task, panics: make([]any, n)}
	j.pending.Store(int64(n))
	s.m.SchedTasks.Add(int64(n))
	// Push branches 0..n-2; LIFO pop order means the owner descends into
	// branch n-2 next while thieves take branch 0 first.
	for i := 0; i < n-1; i++ {
		w.push(wsTask{j: j, idx: i})
	}
	s.signal()
	// The forker always contributes the last branch...
	s.runTask(w, wsTask{j: j, idx: n - 1})
	// ...then helps until the join completes: own deque, then steals, then
	// park. Helping may execute branches of *other* joins — that only
	// delays this join's return, never deadlocks it, and keeps the worker
	// busy instead of blocked.
	for j.pending.Load() > 0 {
		if t, ok := s.findWork(w); ok {
			s.runTask(w, t)
			continue
		}
		s.mu.Lock()
		for j.pending.Load() > 0 && !s.anyQueued() && !s.shutdown {
			s.waiters++
			s.m.SchedParks.Inc()
			s.cond.Wait()
			s.waiters--
		}
		s.mu.Unlock()
	}
	for _, p := range j.panics {
		if p != nil {
			panic(p)
		}
	}
}
