package pta

import (
	"sync/atomic"
	"testing"

	"repro/internal/obsv"
)

func newTestSched(workers int) (*wsScheduler, *obsv.Metrics) {
	m := obsv.NewMetrics()
	return newScheduler(workers, nil, m), m
}

// TestForkJoinRunsEveryIndexOnce checks the basic contract: every branch
// index runs exactly once and forkJoin returns only after all have run.
func TestForkJoinRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		s, m := newTestSched(workers)
		const n = 200
		var ran [n]atomic.Int32
		s.forkJoin(0, n, func(i int, tk obsv.Track) {
			ran[i].Add(1)
		})
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: branch %d ran %d times, want 1", workers, i, got)
			}
		}
		if got := m.SchedTasks.Load(); got != n {
			t.Errorf("workers=%d: SchedTasks = %d, want %d", workers, got, n)
		}
		s.stop()
	}
}

// TestForkJoinNested drives three levels of nested fan-out — the shape of
// indirect calls inside if/else branches inside indirect calls — and checks
// that every leaf runs exactly once and nothing deadlocks.
func TestForkJoinNested(t *testing.T) {
	s, _ := newTestSched(4)
	defer s.stop()
	var leaves atomic.Int64
	s.forkJoin(0, 8, func(i int, tk obsv.Track) {
		s.forkJoin(tk, 4, func(j int, tk obsv.Track) {
			s.forkJoin(tk, 4, func(k int, tk obsv.Track) {
				leaves.Add(1)
			})
		})
	})
	if got := leaves.Load(); got != 8*4*4 {
		t.Fatalf("leaves = %d, want %d", got, 8*4*4)
	}
}

// TestForkJoinPanicIndexOrder checks that when several branches panic, the
// one with the lowest index is rethrown — the property the deterministic
// stepsExceeded unwind depends on.
func TestForkJoinPanicIndexOrder(t *testing.T) {
	s, _ := newTestSched(4)
	defer s.stop()
	defer func() {
		if r := recover(); r != "panic-3" {
			t.Fatalf("recovered %v, want panic-3", r)
		}
	}()
	s.forkJoin(0, 10, func(i int, tk obsv.Track) {
		if i == 3 || i == 7 {
			panic("panic-" + string(rune('0'+i)))
		}
	})
	t.Fatal("forkJoin did not rethrow")
}

// TestForkJoinImbalancedStealing builds one deep, heavy branch next to many
// trivial ones. Under the old bounded pool the heavy branch ran inline on a
// single goroutine once slots were taken; with stealing its sub-branches
// must migrate. The test asserts completion (no deadlock) and, on multicore
// hosts, that steals were recorded. On a single-CPU host goroutines rarely
// overlap, so the steal count is only reported, not required.
func TestForkJoinImbalancedStealing(t *testing.T) {
	s, m := newTestSched(8)
	defer s.stop()
	var work atomic.Int64
	var heavy func(depth int, tk obsv.Track)
	heavy = func(depth int, tk obsv.Track) {
		if depth == 0 {
			work.Add(1)
			return
		}
		s.forkJoin(tk, 4, func(i int, tk obsv.Track) {
			heavy(depth-1, tk)
		})
	}
	s.forkJoin(0, 8, func(i int, tk obsv.Track) {
		if i == 0 {
			heavy(5, tk) // 4^5 leaves on one branch
		} else {
			work.Add(1)
		}
	})
	if got, want := work.Load(), int64(1024+7); got != want {
		t.Fatalf("work = %d, want %d", got, want)
	}
	t.Logf("steals=%d parks=%d tasks=%d",
		m.SchedSteals.Load(), m.SchedParks.Load(), m.SchedTasks.Load())
}

// TestSchedulerTracksDistinct checks every worker got a resolvable track:
// nested forkJoin from any worker's track must find that worker's deque
// (the byTrack map), with and without a tracer.
func TestSchedulerTracksDistinct(t *testing.T) {
	for _, tr := range []*obsv.Tracer{nil, obsv.NewTracer(4, 64)} {
		s := newScheduler(6, tr, obsv.NewMetrics())
		seen := make(map[obsv.Track]bool)
		for _, w := range s.workers {
			if seen[w.track] {
				t.Fatalf("tracer=%v: duplicate track %d", tr != nil, w.track)
			}
			seen[w.track] = true
			if s.byTrack[w.track] != w {
				t.Fatalf("tracer=%v: track %d does not resolve to its worker", tr != nil, w.track)
			}
		}
		s.stop()
	}
}
