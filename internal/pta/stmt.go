package pta

import (
	"repro/internal/obsv"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// flow is the result of processing a statement compositionally: the
// fall-through output plus the sets escaping through break, continue and
// return (the complete rules of [13] for the full SIMPLE statement set).
type flow struct {
	out   ptset.Set
	brks  []ptset.Set
	conts []ptset.Set
	rets  []ptset.Set
}

func bottomFlow() flow { return flow{out: ptset.NewBottom()} }

func (f *flow) absorbEscapes(g flow) {
	f.brks = append(f.brks, g.brks...)
	f.conts = append(f.conts, g.conts...)
	f.rets = append(f.rets, g.rets...)
}

// processStmt implements process_stmt of Figure 1 over all SIMPLE
// statements. A BOTTOM input denotes an unreachable/unknown state during
// recursion fixed-points and propagates unchanged. tk is the trace track of
// the goroutine evaluating this subtree (0 when tracing is disabled).
func (a *analyzer) processStmt(s simple.Stmt, in ptset.Set, ign *invgraph.Node, tk obsv.Track) flow {
	if in.IsBottom() {
		return bottomFlow()
	}
	switch s := s.(type) {
	case nil:
		return flow{out: in}

	case *simple.Basic:
		return flow{out: a.processBasic(s, in, ign, tk)}

	case *simple.Seq:
		return a.processSeq(s, in, ign, tk)

	case *simple.If:
		// The branches are independent subtrees over the same (read-only)
		// input set: statement processing never mutates its input, so they
		// can run concurrently; the merge below is in fixed branch order.
		var thenF, elseF flow
		if s.Else != nil {
			a.runBoth(tk,
				func(tk obsv.Track) { thenF = a.processStmt(s.Then, in, ign, tk) },
				func(tk obsv.Track) { elseF = a.processStmt(s.Else, in, ign, tk) },
			)
		} else {
			thenF = a.processStmt(s.Then, in, ign, tk)
			elseF = flow{out: in}
		}
		out := flow{out: ptset.Merge(thenF.out, elseF.out)}
		out.absorbEscapes(thenF)
		out.absorbEscapes(elseF)
		return out

	case *simple.While:
		return a.processLoop(nil, s.CondEval, s.Body, nil, false, in, ign, tk)

	case *simple.DoWhile:
		return a.processLoop(nil, s.CondEval, s.Body, nil, true, in, ign, tk)

	case *simple.For:
		return a.processLoop(s.Init, s.CondEval, s.Body, s.Post, false, in, ign, tk)

	case *simple.Switch:
		return a.processSwitch(s, in, ign, tk)

	case *simple.Break:
		return flow{out: ptset.NewBottom(), brks: []ptset.Set{in}}

	case *simple.Continue:
		return flow{out: ptset.NewBottom(), conts: []ptset.Set{in}}

	case *simple.Return:
		// The __retval assignment was emitted by the simplifier just
		// before this statement; here the path simply leaves the body.
		return flow{out: ptset.NewBottom(), rets: []ptset.Set{in}}
	}
	return flow{out: in}
}

func (a *analyzer) processSeq(s *simple.Seq, in ptset.Set, ign *invgraph.Node, tk obsv.Track) flow {
	f := flow{out: in}
	if s == nil {
		return f
	}
	for _, c := range s.List {
		g := a.processStmt(c, f.out, ign, tk)
		f.out = g.out
		f.absorbEscapes(g)
		if f.out.IsBottom() {
			// The rest of the sequence is unreachable on this path
			// (after break/continue/return) or pending (recursion).
			// Remaining statements see BOTTOM, which processStmt skips,
			// so we can stop here.
			break
		}
	}
	return f
}

// processLoop implements the fixed-point rules for while, do-while and for
// (paper Figure 1's process_while, generalized):
//
//	init; condEval; while (cond) { body; post; condEval }     (doFirst=false)
//	do { body; condEval } while (cond)                        (doFirst=true)
//
// Break escapes to the loop exit, continue re-enters at post/condEval.
func (a *analyzer) processLoop(init, condEval, body, post *simple.Seq, doFirst bool, in ptset.Set, ign *invgraph.Node, tk obsv.Track) flow {
	result := flow{}
	if init != nil {
		f := a.processSeq(init, in, ign, tk)
		in = f.out
		result.rets = append(result.rets, f.rets...)
		if in.IsBottom() {
			result.out = in
			return result
		}
	}

	var exits []ptset.Set // sets that can leave the loop
	evalOnce := func(s ptset.Set) ptset.Set {
		f := a.processSeq(condEval, s, ign, tk)
		result.rets = append(result.rets, f.rets...)
		return f.out
	}

	cur := in // set at the loop head (before the condition test)
	if !doFirst {
		cur = evalOnce(in)
	}

	const maxIter = 10000
	for iter := 0; ; iter++ {
		if iter > maxIter {
			a.diagf("loop fixed point did not converge at %s", body.Position())
			break
		}
		// One trip through the body from the current head set.
		bodyIn := cur
		f := a.processSeq(body, bodyIn, ign, tk)
		result.rets = append(result.rets, f.rets...)
		exits = append(exits, f.brks...)

		// continue joins the normal body exit before post/condEval.
		backIn := ptset.MergeAll(append(f.conts, f.out)...)
		if post != nil && !backIn.IsBottom() {
			pf := a.processSeq(post, backIn, ign, tk)
			result.rets = append(result.rets, pf.rets...)
			backIn = pf.out
		}
		if !backIn.IsBottom() {
			backIn = evalOnce(backIn)
		}

		next := ptset.Merge(cur, backIn)
		if ptset.Subset(next, cur) && ptset.Subset(cur, next) {
			break
		}
		cur = next
	}

	if doFirst {
		// The loop exits after the condition test, which follows one body
		// execution: the exit set is the post-condEval set, approximated
		// by the head fixed point after at least one iteration.
		f := a.processSeq(body, cur, ign, tk)
		result.rets = append(result.rets, f.rets...)
		exits = append(exits, f.brks...)
		after := ptset.MergeAll(append(f.conts, f.out)...)
		if !after.IsBottom() {
			after = evalOnce(after)
		}
		exits = append(exits, after)
	} else {
		// The condition may be false at the head: cur flows out.
		exits = append(exits, cur)
	}

	result.out = ptset.MergeAll(exits...)
	return result
}

func (a *analyzer) processSwitch(s *simple.Switch, in ptset.Set, ign *invgraph.Node, tk obsv.Track) flow {
	result := flow{}
	var exits []ptset.Set
	hasDefault := false
	fall := ptset.NewBottom() // set falling through from the previous arm
	for _, c := range s.Cases {
		if c.IsDefault {
			hasDefault = true
		}
		armIn := ptset.Merge(in, fall) // entered via label or fallthrough
		f := a.processSeq(c.Body, armIn, ign, tk)
		result.rets = append(result.rets, f.rets...)
		result.conts = append(result.conts, f.conts...)
		exits = append(exits, f.brks...) // break leaves the switch
		fall = f.out
	}
	exits = append(exits, fall)
	if !hasDefault || len(s.Cases) == 0 {
		exits = append(exits, in) // no case taken
	}
	result.out = ptset.MergeAll(exits...)
	return result
}
