package pta

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/ptagen"
)

// freezeWatchdogProgress installs a progress source that never advances, so
// the watchdog sees a stall on an analysis that is in fact progressing.
// Restores the real source on cleanup.
func freezeWatchdogProgress(t *testing.T) {
	t.Helper()
	testWatchdogProgress = func() int64 { return 0 }
	t.Cleanup(func() { testWatchdogProgress = nil })
}

// TestWatchdogKillAbortsRun is the end-to-end stall-abort path: frozen
// progress, a short window and StallKill must abort the analysis with the
// watchdog error, after writing the stall report and the flight record.
func TestWatchdogKillAbortsRun(t *testing.T) {
	freezeWatchdogProgress(t)
	prog, _, err := ptagen.Load(ptagen.Default())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fr := obsv.NewFlightRecorder(64, 10*time.Millisecond)
	_, err = Analyze(prog, Options{
		Workers:     2,
		Flight:      fr,
		FlightDump:  &buf,
		StallWindow: 10 * time.Millisecond,
		StallKill:   true,
	})
	if err == nil || !strings.Contains(err.Error(), "aborted by stall watchdog") {
		t.Fatalf("err = %v, want stall-watchdog abort", err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== stall watchdog: no progress for") {
		t.Errorf("missing stall report header:\n%.2000s", out)
	}
	if !strings.Contains(out, "goroutine ") {
		t.Error("stall report missing goroutine stacks")
	}
	if !strings.Contains(out, "=== flight record: stall after") {
		t.Error("stall report missing flight record")
	}
}

// TestWatchdogWarnOnly: without StallKill a stall produces the report but
// the analysis runs to completion and returns a result.
func TestWatchdogWarnOnly(t *testing.T) {
	freezeWatchdogProgress(t)
	prog, _, err := ptagen.Load(ptagen.Presets["small"])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := Analyze(prog, Options{
		Workers:     2,
		FlightDump:  &buf,
		StallWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("warn-only stall must not abort: %v", err)
	}
	if res.Metrics.Steps == 0 {
		t.Error("analysis reported no steps")
	}
	if !strings.Contains(buf.String(), "=== stall watchdog: no progress for") {
		t.Errorf("no stall report written:\n%.2000s", buf.String())
	}
}
