package ptagen_test

import (
	"os"
	"testing"

	"repro/internal/baseline"
	"repro/internal/pta"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/ptagen"
	"repro/internal/simple"
)

// The differential matrix: ~20 generated programs spanning the dial space.
// Each one is checked for (a) fingerprint equivalence across serial,
// parallel and unmemoized evaluation, and (b) the precision ordering
// CS ⊆ Andersen on the shared location domain. Sizes are kept small so the
// whole matrix runs inside a normal `go test ./...`; the CI smoke job runs
// the same checks on a mid-size program via PTAGEN_DIFF_LARGE=1.
func seedMatrix() []ptagen.Config {
	small := func(seed int64) ptagen.Config {
		return ptagen.Config{Seed: seed, Depth: 2, Width: 3, StmtsPerFunc: 10,
			FnPtrDensity: 0.3, Recursion: 0.15, HeapChurn: 0.25, StructDepth: 2, Threads: 2}
	}
	var out []ptagen.Config
	// Four seeds of the base shape.
	for s := int64(1); s <= 4; s++ {
		out = append(out, small(s))
	}
	// Dial sweeps, each at two seeds.
	for s := int64(5); s <= 6; s++ {
		c := small(s)
		c.FnPtrDensity = 1 // every node dispatches through a table
		out = append(out, c)

		c = small(s + 10)
		c.FnPtrDensity = 0 // pure direct calls
		c.Threads = 0
		out = append(out, c)

		c = small(s + 20)
		c.Recursion = 1 // every function self-recurses
		out = append(out, c)

		c = small(s + 30)
		c.HeapChurn = 1 // malloc/free on every draw
		c.StructDepth = 4
		out = append(out, c)

		c = small(s + 40)
		c.Depth = 3
		c.Width = 2 // deep and narrow
		c.Threads = 3
		out = append(out, c)

		c = small(s + 50)
		c.Depth = 1
		c.Width = 6 // flat and wide
		out = append(out, c)
	}
	return out
}

// comparableKind mirrors the fixture differential test: the location kinds
// whose points-to facts both the context-sensitive analysis and the Andersen
// baseline express.
func comparableKind(k loc.Kind) bool {
	switch k {
	case loc.Var, loc.Heap, loc.Str, loc.Func:
		return true
	}
	return false
}

func checkProgram(t *testing.T, cfg ptagen.Config) {
	t.Helper()
	prog, meta, err := ptagen.Load(cfg)
	if err != nil {
		t.Fatalf("%s: %v", meta.Name, err)
	}

	variants := []struct {
		name string
		opts pta.Options
	}{
		{"serial", pta.Options{Workers: 1}},
		{"parallel-2", pta.Options{Workers: 2}},
		{"parallel-8", pta.Options{Workers: 8}},
		{"no-memo", pta.Options{Workers: 1, NoMemo: true}},
	}
	var ref *pta.Result
	var refFP string
	for _, v := range variants {
		res, err := pta.Analyze(prog, v.opts)
		if err != nil {
			t.Fatalf("%s/%s: %v", meta.Name, v.name, err)
		}
		fp := pta.Fingerprint(res)
		if ref == nil {
			ref, refFP = res, fp
			continue
		}
		if fp != refFP {
			t.Errorf("%s: %s fingerprint diverges from serial", meta.Name, v.name)
		}
	}

	// Precision ordering: every comparable context-sensitive fact must be in
	// the Andersen may-point-to solution.
	and := baseline.Andersen(prog)
	have := make(map[[2]string]bool, and.Sol.Len())
	and.Sol.Range(func(tr ptset.Triple) {
		have[[2]string{tr.Src.SortKey(), tr.Dst.SortKey()}] = true
	})
	missing := 0
	check := func(s ptset.Set) {
		s.Range(func(tr ptset.Triple) {
			if !comparableKind(tr.Src.Kind) || !comparableKind(tr.Dst.Kind) {
				return
			}
			key := [2]string{tr.Src.SortKey(), tr.Dst.SortKey()}
			if !have[key] {
				missing++
				if missing <= 3 {
					t.Errorf("%s: fact (%s -> %s) missing from Andersen solution",
						meta.Name, tr.Src.Name(), tr.Dst.Name())
				}
			}
		})
	}
	prog.ForEachBasic(func(b *simple.Basic) {
		if s, ok := ref.Annots.At(b); ok {
			check(s)
		}
	})
	check(ref.MainOut)
	if missing > 3 {
		t.Errorf("%s: %d further facts missing from Andersen solution", meta.Name, missing-3)
	}
}

func TestPtagenDifferentialMatrix(t *testing.T) {
	for _, cfg := range seedMatrix() {
		cfg := cfg
		_, meta := ptagen.Generate(cfg)
		t.Run(meta.Name, func(t *testing.T) {
			t.Parallel()
			checkProgram(t, cfg)
		})
	}
}

// TestPtagenDifferentialLarge runs the same checks on one mid-size program
// (~25k statements). It is too slow for the default test run, so it only
// executes when PTAGEN_DIFF_LARGE=1 — the CI smoke job sets it.
func TestPtagenDifferentialLarge(t *testing.T) {
	if os.Getenv("PTAGEN_DIFF_LARGE") == "" {
		t.Skip("set PTAGEN_DIFF_LARGE=1 to run the mid-size differential check")
	}
	checkProgram(t, ptagen.Config{Seed: 1, Depth: 4, Width: 4, StmtsPerFunc: 40,
		FnPtrDensity: 0.25, Recursion: 0.15, HeapChurn: 0.2, StructDepth: 3, Threads: 2})
}
