package ptagen_test

import (
	"testing"

	"repro/internal/pta"
	"repro/internal/ptagen"
)

// FuzzPtagenRoundTrip feeds arbitrary dial settings through the full
// pipeline: generate → parse → simplify → analyze. Three properties must
// hold for every input: the generated source parses (the generator only
// emits the supported C subset), the analysis completes without panicking,
// and the result fingerprint is identical at 1 and 8 workers. Dial values
// are clamped to keep each execution small; the generator itself clamps
// again, so out-of-range fuzz values exercise the normalization paths too.
func FuzzPtagenRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(10), uint8(64), uint8(32), uint8(48), uint8(2), uint8(2))
	f.Add(int64(42), uint8(3), uint8(2), uint8(8), uint8(255), uint8(0), uint8(255), uint8(6), uint8(0))
	f.Add(int64(-9), uint8(0), uint8(0), uint8(0), uint8(0), uint8(255), uint8(0), uint8(0), uint8(4))
	f.Add(int64(7777), uint8(1), uint8(6), uint8(16), uint8(128), uint8(128), uint8(128), uint8(3), uint8(1))

	f.Fuzz(func(t *testing.T, seed int64, depth, width, stmts, fnptr, rec, churn, sdepth, threads uint8) {
		cfg := ptagen.Config{
			Seed:         seed,
			Depth:        int(depth % 4),   // 0..3
			Width:        int(width%3) + 1, // 1..3
			StmtsPerFunc: int(stmts % 16),  // 0..15 (clamped up by the generator)
			FnPtrDensity: float64(fnptr) / 255,
			Recursion:    float64(rec) / 255,
			HeapChurn:    float64(churn) / 255,
			StructDepth:  int(sdepth % 8), // exercises clamping at both ends
			Threads:      int(threads % 4),
		}
		prog, meta, err := ptagen.Load(cfg)
		if err != nil {
			t.Fatalf("%s: generated program failed to load: %v", meta.Name, err)
		}
		r1, err := pta.Analyze(prog, pta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: serial analysis failed: %v", meta.Name, err)
		}
		r8, err := pta.Analyze(prog, pta.Options{Workers: 8})
		if err != nil {
			t.Fatalf("%s: parallel analysis failed: %v", meta.Name, err)
		}
		if pta.Fingerprint(r1) != pta.Fingerprint(r8) {
			t.Fatalf("%s: fingerprints differ between 1 and 8 workers", meta.Name)
		}
	})
}
