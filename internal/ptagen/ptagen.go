// Package ptagen deterministically generates synthetic C-subset programs
// for scaling experiments. The 17 paper fixtures are a few hundred
// statements each — too small for parallel speedup or contention to show —
// so ptagen grows programs of 10k-500k statements with the structural
// features the analysis cares about: a call tree of tunable depth and
// width, function-pointer dispatch tables (the paper's motivating feature),
// self-recursion, heap allocation and free churn, nested struct selectors,
// and pthread spawns. Every program parses through internal/cc, simplifies,
// and analyzes; generation is a pure function of the Config (seeded PRNG,
// no global state), so a seed matrix is a reproducible corpus.
package ptagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cc/parser"
	"repro/internal/simple"
	"repro/internal/simplify"
)

// Config is the generator's dial set. The zero value is invalid; use
// Default() or fill every field. Programs are call trees: main dispatches
// through a function-pointer table to Width independent subtree roots, and
// each subtree is a Width-ary tree of depth Depth-1.
type Config struct {
	Seed int64

	// Depth and Width shape the call tree. The function count is
	// Width * (Width^Depth - 1) / (Width - 1) + Width for the dispatch
	// roots, plus thread entries and main.
	Depth int
	Width int

	// StmtsPerFunc is the number of straight-line pointer-manipulation
	// statements generated into each function body (besides the prologue,
	// calls, and control flow).
	StmtsPerFunc int

	// FnPtrDensity is the probability that an internal tree node calls its
	// children through a node-local function-pointer table instead of
	// directly. The top-level dispatch is always indirect.
	FnPtrDensity float64

	// Recursion is the probability that a function also calls itself with
	// a decremented depth argument (a Recursive invocation-graph node that
	// needs a fixed point).
	Recursion float64

	// HeapChurn is the probability weight of malloc/free statements in the
	// straight-line mix.
	HeapChurn float64

	// StructDepth is the nesting depth of the generated struct chain
	// (struct S1 holds a struct S0 pointer, and so on). Minimum 1.
	StructDepth int

	// Threads is the number of pthread_create spawns in main; each thread
	// entry calls one dispatch root.
	Threads int
}

// Default returns a mid-size baseline configuration (~10k statements).
func Default() Config {
	return Config{
		Seed:         1,
		Depth:        4,
		Width:        4,
		StmtsPerFunc: 24,
		FnPtrDensity: 0.25,
		Recursion:    0.15,
		HeapChurn:    0.2,
		StructDepth:  3,
		Threads:      2,
	}
}

// Presets are the calibrated base configurations shared by cmd/ptagen and
// ptabench -scale. Measured sizes (see EXPERIMENTS.md): small ≈ 1.4k source
// statements, mid ≈ 27k, large ≈ 55k, xlarge ≈ 400k.
var Presets = map[string]Config{
	"small":  {Seed: 1, Depth: 3, Width: 3, StmtsPerFunc: 16, FnPtrDensity: 0.25, Recursion: 0.15, HeapChurn: 0.2, StructDepth: 2, Threads: 2},
	"mid":    {Seed: 1, Depth: 4, Width: 4, StmtsPerFunc: 40, FnPtrDensity: 0.25, Recursion: 0.15, HeapChurn: 0.2, StructDepth: 3, Threads: 2},
	"large":  {Seed: 1, Depth: 5, Width: 4, StmtsPerFunc: 20, FnPtrDensity: 0.2, Recursion: 0.1, HeapChurn: 0.2, StructDepth: 3, Threads: 2},
	"xlarge": {Seed: 1, Depth: 5, Width: 5, StmtsPerFunc: 40, FnPtrDensity: 0.2, Recursion: 0.1, HeapChurn: 0.2, StructDepth: 3, Threads: 4},
}

// normalized clamps the dials to generatable ranges.
func (c Config) normalized() Config {
	if c.Depth < 1 {
		c.Depth = 1
	}
	if c.Width < 1 {
		c.Width = 1
	}
	if c.StmtsPerFunc < 4 {
		c.StmtsPerFunc = 4
	}
	if c.StructDepth < 1 {
		c.StructDepth = 1
	}
	if c.StructDepth > 6 {
		c.StructDepth = 6
	}
	if c.Threads < 0 {
		c.Threads = 0
	}
	if c.FnPtrDensity < 0 {
		c.FnPtrDensity = 0
	}
	if c.FnPtrDensity > 1 {
		c.FnPtrDensity = 1
	}
	if c.Recursion < 0 {
		c.Recursion = 0
	}
	if c.Recursion > 1 {
		c.Recursion = 1
	}
	if c.HeapChurn < 0 {
		c.HeapChurn = 0
	}
	if c.HeapChurn > 1 {
		c.HeapChurn = 1
	}
	return c
}

// Name renders a short deterministic label for the configuration, used as
// the program name in reports.
func (c Config) Name() string {
	return fmt.Sprintf("gen-s%d-d%dw%d-n%d", c.Seed, c.Depth, c.Width, c.StmtsPerFunc)
}

// Meta describes a generated program.
type Meta struct {
	Name      string `json:"name"`
	Seed      int64  `json:"seed"`
	Functions int    `json:"functions"`
	// Stmts counts generated executable statements (assignments, calls,
	// control-flow heads, returns) across all function bodies.
	Stmts int `json:"source_stmts"`
}

// gen carries generation state.
type gen struct {
	cfg    Config
	rng    *rand.Rand
	sb     strings.Builder
	nfuncs int
	nstmts int
	nextID int
}

// Generate renders the program for a configuration. Same Config, same
// bytes.
func Generate(cfg Config) (string, Meta) {
	cfg = cfg.normalized()
	g := &gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.emitHeader()
	g.emitStructsAndGlobals()

	// The dispatch roots and their subtrees, children before parents so no
	// forward declarations are needed.
	roots := make([]int, cfg.Width)
	for i := range roots {
		roots[i] = g.emitTree(cfg.Depth - 1)
	}
	g.emitTopTable(roots)
	g.emitThreads(roots)
	g.emitMain(roots)
	return g.sb.String(), Meta{
		Name:      cfg.Name(),
		Seed:      cfg.Seed,
		Functions: g.nfuncs,
		Stmts:     g.nstmts,
	}
}

// Load generates, parses and simplifies the configured program.
func Load(cfg Config) (*simple.Program, Meta, error) {
	src, meta := Generate(cfg)
	tu, err := parser.Parse(meta.Name+".c", src)
	if err != nil {
		return nil, meta, fmt.Errorf("ptagen %s: generated program does not parse: %w", meta.Name, err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		return nil, meta, fmt.Errorf("ptagen %s: generated program does not simplify: %w", meta.Name, err)
	}
	return prog, meta, nil
}

// line emits one line at the given indent; stmt marks it as an executable
// statement for the Meta count.
func (g *gen) line(indent int, stmt bool, format string, args ...any) {
	for i := 0; i < indent; i++ {
		g.sb.WriteString("    ")
	}
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
	if stmt {
		g.nstmts++
	}
}

func (g *gen) emitHeader() {
	c := g.cfg
	g.line(0, false, "/* Generated by ptagen: seed=%d depth=%d width=%d stmts=%d", c.Seed, c.Depth, c.Width, c.StmtsPerFunc)
	g.line(0, false, " * fnptr=%.2f rec=%.2f churn=%.2f structs=%d threads=%d.", c.FnPtrDensity, c.Recursion, c.HeapChurn, c.StructDepth, c.Threads)
	g.line(0, false, " * Deterministic: same config, same bytes. Do not edit. */")
	g.line(0, false, "")
}

func (g *gen) emitStructsAndGlobals() {
	g.line(0, false, "struct S0 {")
	g.line(1, false, "int v;")
	g.line(1, false, "int *ip;")
	g.line(1, false, "struct S0 *next;")
	g.line(0, false, "};")
	for k := 1; k < g.cfg.StructDepth; k++ {
		g.line(0, false, "struct S%d {", k)
		g.line(1, false, "int v;")
		g.line(1, false, "struct S%d *inner;", k-1)
		g.line(1, false, "struct S%d *next;", k)
		g.line(0, false, "};")
	}
	g.line(0, false, "")
	g.line(0, false, "int g_i0;")
	g.line(0, false, "int g_i1;")
	for i := 0; i < 4; i++ {
		g.line(0, false, "struct S0 g_n%d;", i)
	}
	for k := 1; k < g.cfg.StructDepth; k++ {
		g.line(0, false, "struct S%d g_s%d;", k, k)
	}
	for j := 0; j < g.cfg.Threads; j++ {
		g.line(0, false, "long g_tid%d;", j)
	}
	g.line(0, false, "")
}

// emitTree generates a subtree of the given remaining depth and returns the
// id of its root function. Children are emitted (and therefore declared)
// before their parent.
func (g *gen) emitTree(depth int) int {
	var children []int
	if depth > 0 {
		children = make([]int, g.cfg.Width)
		for i := range children {
			children[i] = g.emitTree(depth - 1)
		}
	}
	id := g.nextID
	g.nextID++
	g.emitFunc(id, children)
	return id
}

// emitFunc renders one tree function: prologue, the randomized straight-
// line statement mix, optional self-recursion, and the calls to children —
// direct, or indirect through a node-local table.
func (g *gen) emitFunc(id int, children []int) {
	g.nfuncs++
	indirect := len(children) > 0 && g.rng.Float64() < g.cfg.FnPtrDensity
	if indirect {
		entries := make([]string, len(children))
		for i, c := range children {
			entries[i] = fmt.Sprintf("f_%d", c)
		}
		g.line(0, false, "int (*tab_%d[%d])(struct S0 *, int) = { %s };", id, len(children), strings.Join(entries, ", "))
	}
	g.line(0, false, "int f_%d(struct S0 *a, int d) {", id)
	g.line(1, false, "struct S0 *p;")
	g.line(1, false, "struct S0 *q;")
	g.line(1, false, "int *ip;")
	g.line(1, false, "int i;")
	g.line(1, false, "int r;")
	for k := 1; k < g.cfg.StructDepth; k++ {
		g.line(1, false, "struct S%d *s%d;", k, k)
	}
	if indirect {
		g.line(1, false, "int (*fp)(struct S0 *, int);")
		g.line(1, false, "int k;")
	}
	g.line(1, true, "p = a;")
	g.line(1, true, "q = a;")
	g.line(1, true, "r = 0;")
	g.line(1, true, "i = d;")
	for n := 0; n < g.cfg.StmtsPerFunc; n++ {
		g.emitStraightLine()
	}
	if g.cfg.Recursion > 0 && g.rng.Float64() < g.cfg.Recursion {
		g.line(1, true, "if (d > 0) {")
		g.line(2, true, "r = r + f_%d(p, d - 1);", id)
		g.line(1, false, "}")
	}
	for _, c := range children {
		if !indirect {
			g.line(1, true, "r = r + f_%d(p, d);", c)
		}
	}
	if indirect {
		g.line(1, true, "for (k = 0; k < %d; k++) {", len(children))
		g.line(2, true, "fp = tab_%d[k];", id)
		g.line(2, true, "r = r + fp(p, d);")
		g.line(1, false, "}")
	}
	g.line(1, true, "return r;")
	g.line(0, false, "}")
	g.line(0, false, "")
}

// emitStraightLine renders one statement from the weighted template mix.
func (g *gen) emitStraightLine() {
	c := g.cfg
	// Heap churn gets its own draw so the dial is independent of the rest
	// of the mix.
	if c.HeapChurn > 0 && g.rng.Float64() < c.HeapChurn {
		if g.rng.Intn(3) == 0 {
			g.line(1, true, "q = (struct S0 *) malloc(sizeof(struct S0));")
			g.line(1, true, "q->next = p;")
			g.line(1, true, "free(q);")
		} else {
			g.line(1, true, "p = (struct S0 *) malloc(sizeof(struct S0));")
			g.line(1, true, "p->next = q;")
			g.line(1, true, "p->ip = &g_i0;")
		}
		return
	}
	switch g.rng.Intn(10) {
	case 0:
		g.line(1, true, "p = q;")
	case 1:
		g.line(1, true, "q = p->next;")
	case 2:
		g.line(1, true, "p->next = q;")
	case 3:
		g.line(1, true, "p = &g_n%d;", g.rng.Intn(4))
	case 4:
		g.line(1, true, "ip = &g_i%d;", g.rng.Intn(2))
	case 5:
		g.line(1, true, "p->ip = ip;")
	case 6:
		g.line(1, true, "if (i > %d) {", g.rng.Intn(8))
		g.line(2, true, "p = &g_n%d;", g.rng.Intn(4))
		g.line(1, false, "} else {")
		g.line(2, true, "p = q;")
		g.line(1, false, "}")
	case 7:
		g.line(1, true, "while (p) {")
		g.line(2, true, "p = p->next;")
		g.line(1, false, "}")
		g.line(1, true, "p = &g_n%d;", g.rng.Intn(4))
	case 8:
		if c.StructDepth > 1 {
			k := 1 + g.rng.Intn(c.StructDepth-1)
			g.line(1, true, "s%d = &g_s%d;", k, k)
			if k == 1 {
				g.line(1, true, "p = s1->inner;")
			} else {
				g.line(1, true, "s%d = s%d->inner;", k-1, k)
			}
		} else {
			g.line(1, true, "q = p;")
		}
	default:
		g.line(1, true, "i = i + 1;")
	}
}

// emitTopTable renders the dispatch table main indirects through.
func (g *gen) emitTopTable(roots []int) {
	entries := make([]string, len(roots))
	for i, r := range roots {
		entries[i] = fmt.Sprintf("f_%d", r)
	}
	g.line(0, false, "int (*top_tab[%d])(struct S0 *, int) = { %s };", len(roots), strings.Join(entries, ", "))
	g.line(0, false, "")
}

// emitThreads renders the pthread entry functions; thread j exercises
// dispatch root j mod Width.
func (g *gen) emitThreads(roots []int) {
	for j := 0; j < g.cfg.Threads; j++ {
		g.nfuncs++
		g.line(0, false, "void *thr_%d(void *arg) {", j)
		g.line(1, false, "struct S0 *p;")
		g.line(1, false, "int r;")
		g.line(1, true, "p = (struct S0 *) arg;")
		g.line(1, true, "p->ip = &g_i1;")
		g.line(1, true, "r = f_%d(p, 1);", roots[j%len(roots)])
		g.line(1, true, "return 0;")
		g.line(0, false, "}")
		g.line(0, false, "")
	}
}

func (g *gen) emitMain(roots []int) {
	g.nfuncs++
	g.line(0, false, "int main(void) {")
	g.line(1, false, "struct S0 *p;")
	g.line(1, false, "int (*fp)(struct S0 *, int);")
	g.line(1, false, "int k;")
	g.line(1, false, "int r;")
	g.line(1, true, "g_n0.next = &g_n1;")
	g.line(1, true, "g_n1.next = &g_n2;")
	g.line(1, true, "g_n2.next = &g_n3;")
	g.line(1, true, "g_n3.next = 0;")
	g.line(1, true, "p = &g_n0;")
	g.line(1, true, "r = 0;")
	for j := 0; j < g.cfg.Threads; j++ {
		g.line(1, true, "pthread_create(&g_tid%d, 0, thr_%d, &g_n%d);", j, j, j%4)
	}
	g.line(1, true, "for (k = 0; k < %d; k++) {", len(roots))
	g.line(2, true, "fp = top_tab[k];")
	g.line(2, true, "r = r + fp(p, %d);", g.cfg.Depth)
	g.line(1, false, "}")
	for j := 0; j < g.cfg.Threads; j++ {
		g.line(1, true, "pthread_join(g_tid%d, 0);", j)
	}
	g.line(1, true, "return r;")
	g.line(0, false, "}")
}
