package ptagen_test

import (
	"strings"
	"testing"

	"repro/internal/ptagen"
)

// TestGenerateDeterministic checks the generator's core promise: the same
// configuration yields byte-identical source, so a (config, seed) pair is a
// stable name for a benchmark program.
func TestGenerateDeterministic(t *testing.T) {
	cfg := ptagen.Default()
	a, ma := ptagen.Generate(cfg)
	b, mb := ptagen.Generate(cfg)
	if a != b {
		t.Fatal("same config generated different sources")
	}
	if ma != mb {
		t.Fatalf("same config generated different meta: %+v vs %+v", ma, mb)
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := ptagen.Default()
	a, _ := ptagen.Generate(cfg)
	cfg.Seed = 2
	b, _ := ptagen.Generate(cfg)
	if a == b {
		t.Fatal("different seeds generated identical sources")
	}
}

// TestSizeDials checks that the size dials are monotone: more depth, width
// or statements per function yields a bigger program. The absolute sizes are
// calibration data for picking -scale configurations.
func TestSizeDials(t *testing.T) {
	base := ptagen.Config{Seed: 1, Depth: 2, Width: 2, StmtsPerFunc: 8,
		FnPtrDensity: 0.25, Recursion: 0.1, HeapChurn: 0.2, StructDepth: 2, Threads: 1}
	_, m0 := ptagen.Generate(base)

	deeper := base
	deeper.Depth = 3
	_, m1 := ptagen.Generate(deeper)
	if m1.Functions <= m0.Functions {
		t.Errorf("Depth 3 produced %d functions, want > %d", m1.Functions, m0.Functions)
	}

	wider := base
	wider.Width = 4
	_, m2 := ptagen.Generate(wider)
	if m2.Functions <= m0.Functions {
		t.Errorf("Width 4 produced %d functions, want > %d", m2.Functions, m0.Functions)
	}

	fatter := base
	fatter.StmtsPerFunc = 24
	_, m3 := ptagen.Generate(fatter)
	if m3.Stmts <= m0.Stmts {
		t.Errorf("StmtsPerFunc 24 produced %d stmts, want > %d", m3.Stmts, m0.Stmts)
	}
}

// TestGeneratedShape spot-checks structural properties of the emitted C:
// function-pointer dispatch tables, thread spawns, and heap traffic all have
// to be present for the program to exercise the analysis paths the corpus
// exists to stress.
func TestGeneratedShape(t *testing.T) {
	src, meta := ptagen.Generate(ptagen.Default())
	for _, want := range []string{
		"int (*top_tab[", // indirect dispatch roots
		"pthread_create(", "pthread_join(",
		"malloc(sizeof(struct S0))", "free(",
		"struct S0 {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	if meta.Functions < 2 {
		t.Errorf("meta.Functions = %d, want >= 2", meta.Functions)
	}
	if got := strings.Count(src, "pthread_create("); got != 2 {
		t.Errorf("pthread_create count = %d, want 2 (Threads: 2)", got)
	}
}

// TestLoadParsesAcrossDials runs a program through the real parser and
// simplifier for each dial pushed to an extreme, so a template regression
// that only manifests under one dial (say, recursion or zero threads) is
// caught here rather than in the long-running differential matrix.
func TestLoadParsesAcrossDials(t *testing.T) {
	base := ptagen.Config{Seed: 7, Depth: 2, Width: 3, StmtsPerFunc: 10,
		FnPtrDensity: 0.3, Recursion: 0.2, HeapChurn: 0.3, StructDepth: 2, Threads: 2}
	variants := map[string]func(*ptagen.Config){
		"base":         func(c *ptagen.Config) {},
		"no-threads":   func(c *ptagen.Config) { c.Threads = 0 },
		"no-fnptr":     func(c *ptagen.Config) { c.FnPtrDensity = 0 },
		"all-fnptr":    func(c *ptagen.Config) { c.FnPtrDensity = 1 },
		"all-rec":      func(c *ptagen.Config) { c.Recursion = 1 },
		"churn-heavy":  func(c *ptagen.Config) { c.HeapChurn = 1 },
		"deep-structs": func(c *ptagen.Config) { c.StructDepth = 6 },
		"degenerate":   func(c *ptagen.Config) { c.Depth = 0; c.Width = 1; c.StmtsPerFunc = 0 },
	}
	for name, mutate := range variants {
		t.Run(name, func(t *testing.T) {
			cfg := base
			mutate(&cfg)
			prog, meta, err := ptagen.Load(cfg)
			if err != nil {
				t.Fatalf("%s: %v", meta.Name, err)
			}
			if prog.Main() == nil {
				t.Fatalf("%s: no main", meta.Name)
			}
		})
	}
}
