// Package race is a flow- and context-sensitive lockset-based static data
// race detector for pthread-style C, built on the D/P points-to results.
//
// Thread roots are the main invocation and every pseudo-root the analysis
// spawned for a pthread_create site (the entry function pointer resolved
// context-sensitively through the invocation graph). For each root the
// detector walks the SIMPLE IR of its invocation subtree, carrying
//
//   - the lockset: the mutexes definitely (D) or possibly (P) held, as
//     abstract locations in the root (main) naming — a pthread_mutex_lock
//     argument acquires definitely only when every abstract target of the
//     lock expression is one single definite, non-multi location;
//   - for the main root, the number of live (spawned, not yet joined)
//     threads, so accesses before the first spawn or after the last join do
//     not race.
//
// Every MOD/REF access (recorded with position and D/P certainty by package
// modref) translates through the invocation's map information back to the
// main naming and is kept when it touches a thread-shared location: a
// global, the heap, or anything reachable from a pthread_create argument.
//
// Two accesses race when their roots are concurrently live, they touch a
// common shared location, at least one writes, and the definite intersection
// of their locksets is empty. Severity follows the checker's definite/
// possible split: definite overlap (same single location, both derivations
// definite) with no possibly-common lock is an error; anything merely
// possible — may-alias overlap, or a possibly-held common lock — is a
// warning.
package race

import (
	"fmt"
	"sort"

	"repro/internal/cc/token"
	"repro/internal/modref"
	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/live"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// Severity grades a diagnostic, matching package check's convention.
type Severity int

// Severities: Warning for a possible race, Error for a definite one.
const (
	Warning Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diag is one positioned race diagnostic.
type Diag struct {
	Pos token.Pos // position of the first access of the pair
	Sev Severity
	Loc string // the raced location, in the main naming
	Msg string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: data-race: %s", d.Pos, d.Sev, d.Msg)
}

// Run detects data races over an analyzed program. The analysis must have
// been run with Options.RecordContexts and without ShareContexts (the same
// preconditions as package check: per-node annotations drive the per-context
// lockset evaluation, and shared-summary hits would leave contexts
// unannotated). mr must be computed from the same result.
func Run(res *pta.Result, mr *modref.Result) ([]Diag, error) {
	if res.Opts.ShareContexts {
		return nil, fmt.Errorf("race: analysis ran with ShareContexts; re-run without it")
	}
	if !res.Annots.ContextsEnabled() {
		return nil, fmt.Errorf("race: analysis ran without Options.RecordContexts")
	}
	d := &detector{
		res: res, mr: mr,
		shared: make(map[*loc.Location]bool),
		accBy:  make(map[*invgraph.Node]map[*simple.Basic][]modref.Access),
	}
	d.collectThreads()
	if len(d.threads) > 1 { // racing needs at least one spawned thread
		d.computeShared()
		for _, t := range d.threads {
			d.walkThread(t)
		}
		d.pair()
	}
	sort.SliceStable(d.diags, func(i, j int) bool {
		a, b := d.diags[i], d.diags[j]
		if a.Pos != b.Pos {
			return posLess(a.Pos, b.Pos)
		}
		if a.Loc != b.Loc {
			return a.Loc < b.Loc
		}
		return a.Msg < b.Msg
	})
	return d.diags, nil
}

func posLess(a, b token.Pos) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// access is one shared-location touch, translated to the main naming, with
// the lockset snapshot at its program point.
type access struct {
	loc   *loc.Location
	def   ptset.Def // certainty the statement touches exactly loc
	write bool
	pos   token.Pos
	locks map[*loc.Location]ptset.Def
	conc  bool // a concurrent thread can be live at this point
}

// thread is one concurrently-runnable root: main, or a spawned pseudo-root.
type thread struct {
	node *invgraph.Node
	name string
	main bool
	// multi marks a thread whose spawn site sits in a loop: several
	// instances can run at once, so its accesses race with themselves.
	multi    bool
	accesses []access
	// accKey dedupes accesses re-recorded by loop fixed-point iterations,
	// merging their lockset snapshots to the weakest observed.
	accKey map[accessKey]int
}

type accessKey struct {
	l     *loc.Location
	pos   token.Pos
	write bool
}

type detector struct {
	res     *pta.Result
	mr      *modref.Result
	threads []*thread
	shared  map[*loc.Location]bool
	accBy   map[*invgraph.Node]map[*simple.Basic][]modref.Access
	diags   []Diag
}

func (d *detector) collectThreads() {
	root := d.res.Graph.Root
	d.threads = append(d.threads, &thread{
		node: root, name: root.Fn.Name(), main: true, accKey: make(map[accessKey]int),
	})
	for _, n := range d.res.Graph.ThreadNodes() {
		d.threads = append(d.threads, &thread{
			node:   n,
			name:   fmt.Sprintf("thread %s (spawned at %s)", n.Fn.Name(), n.Site.Pos),
			multi:  spawnSiteInLoop(n.Parent.Fn.Body, n.Site),
			accKey: make(map[accessKey]int),
		})
	}
}

// spawnSiteInLoop reports whether the pthread_create statement sits inside a
// loop of the spawner's body: the site can then create several instances of
// the same pseudo-root, which are concurrent with each other.
func spawnSiteInLoop(body *simple.Seq, site *simple.Basic) bool {
	inLoop := false
	var find func(s simple.Stmt, depth int) bool
	find = func(s simple.Stmt, depth int) bool {
		switch s := s.(type) {
		case *simple.Basic:
			if s == site {
				inLoop = depth > 0
				return true
			}
		case *simple.Seq:
			if s == nil {
				return false
			}
			for _, c := range s.List {
				if find(c, depth) {
					return true
				}
			}
		case *simple.If:
			return find(s.Then, depth) || find(s.Else, depth)
		case *simple.While:
			return find(s.CondEval, depth+1) || find(s.Body, depth+1)
		case *simple.DoWhile:
			return find(s.Body, depth+1) || find(s.CondEval, depth+1)
		case *simple.For:
			if find(s.Init, depth) {
				return true
			}
			return find(s.CondEval, depth+1) || find(s.Body, depth+1) || find(s.Post, depth+1)
		case *simple.Switch:
			for _, c := range s.Cases {
				if find(c.Body, depth) {
					return true
				}
			}
		}
		return false
	}
	find(body, 0)
	return inLoop
}

// accessesAt groups a node's recorded accesses by statement, lazily.
func (d *detector) accessesAt(n *invgraph.Node, b *simple.Basic) []modref.Access {
	by, ok := d.accBy[n]
	if !ok {
		by = make(map[*simple.Basic][]modref.Access)
		for _, acc := range d.mr.Accesses(n) {
			by[acc.Stmt] = append(by[acc.Stmt], acc)
		}
		d.accBy[n] = by
	}
	return by[b]
}

// translateToRoot maps a location from n's naming to the main naming by
// translating through every map information on the chain from n to the
// root. Locations private to an invocation (callee locals, unmapped
// symbolics) translate to nothing and are dropped — they are not visible to
// any other thread. The result definiteness weakens to P when the
// translation fans out.
func (d *detector) translateToRoot(n *invgraph.Node, l *loc.Location) ([]*loc.Location, ptset.Def) {
	cur := []*loc.Location{l}
	def := ptset.D
	for node := n; node.Parent != nil; node = node.Parent {
		mi, ok := node.MapInfo.(*pta.MapInfo)
		if !ok {
			return nil, ptset.P
		}
		var next []*loc.Location
		for _, c := range cur {
			next = append(next, mi.Translate(d.res, c)...)
		}
		if len(next) == 0 {
			return nil, ptset.P
		}
		if len(next) > 1 {
			def = ptset.P
		}
		cur = next
	}
	return cur, def
}

// nodeInput is the per-context annotation of b under node n.
func (d *detector) nodeInput(n *invgraph.Node, b *simple.Basic) (ptset.Set, bool) {
	in, ok := d.res.Annots.ContextsAt(b)[n]
	return in, ok
}

// computeShared seeds the thread-shared location set with everything a
// pthread_create argument can point to (in the main naming) and closes it
// transitively over the points-to relationships visible at main's exit and
// at the spawn sites: a cell pointed to by a shared location is reachable
// by the thread, hence shared. Globals, the heap and string storage are
// shared by definition (IsGlobalish) and need no entry here.
func (d *detector) computeShared() {
	universe := d.res.MainOut.Clone()
	for _, t := range d.threads {
		if t.main {
			continue
		}
		site, parent := t.node.Site, t.node.Parent
		in, ok := d.nodeInput(parent, site)
		if !ok || len(site.Args) < 4 {
			continue
		}
		universe = ptset.Merge(universe, in)
		argRef, ok := site.Args[3].(*simple.Ref)
		if !ok {
			continue
		}
		for _, rl := range pta.EvalRLocsOfRef(d.res, argRef, in) {
			roots, _ := d.translateToRoot(parent, rl.Loc)
			for _, r := range roots {
				if r.Kind == loc.Var || r.Kind == loc.Symbolic {
					d.shared[r] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		universe.Range(func(tr ptset.Triple) {
			dst := tr.Dst
			if dst.Kind != loc.Var && dst.Kind != loc.Symbolic {
				return
			}
			if d.shared[dst] || dst.IsGlobalish() {
				return
			}
			if d.isShared(tr.Src) {
				d.shared[dst] = true
				changed = true
			}
		})
	}
}

// coveredBy reports whether location l lies inside the storage named by s:
// the same root with s's selector path a prefix of l's.
func coveredBy(s, l *loc.Location) bool {
	if s == l {
		return true
	}
	if s.Kind != l.Kind {
		return false
	}
	switch s.Kind {
	case loc.Var:
		if s.Obj != l.Obj {
			return false
		}
	case loc.Symbolic:
		if s.Fn != l.Fn || s.Sym != l.Sym {
			return false
		}
	default:
		return false
	}
	if len(s.Path) > len(l.Path) {
		return false
	}
	for i := range s.Path {
		if s.Path[i] != l.Path[i] {
			return false
		}
	}
	return true
}

// isShared reports whether a main-naming location is visible to more than
// one thread: globals/heap/strings, or (a cell of) something reachable from
// a spawn argument.
func (d *detector) isShared(l *loc.Location) bool {
	if l.Kind == loc.Null || l.Kind == loc.Func {
		return false
	}
	if l.IsGlobalish() {
		return true
	}
	for s := range d.shared {
		if coveredBy(s, l) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// The lockset walk

// lstate is the abstract state carried by the lockset walk: the held locks
// (main naming; D definitely held, P possibly held) and, under the main
// root, the saturating count of live spawned threads.
type lstate struct {
	locks map[*loc.Location]ptset.Def
	live  int
	dead  bool // unreachable (after break/continue/return)
}

func deadState() lstate { return lstate{dead: true} }

func (s lstate) clone() lstate {
	if s.dead {
		return s
	}
	locks := make(map[*loc.Location]ptset.Def, len(s.locks))
	for l, def := range s.locks {
		locks[l] = def
	}
	return lstate{locks: locks, live: s.live}
}

// mergeState joins two control-flow paths: a lock stays definite only when
// definitely held on both, the live-thread count takes the maximum
// (conservative: more concurrency, more reported races).
func mergeState(a, b lstate) lstate {
	if a.dead {
		return b.clone()
	}
	if b.dead {
		return a.clone()
	}
	out := lstate{locks: make(map[*loc.Location]ptset.Def), live: max(a.live, b.live)}
	for l, da := range a.locks {
		if db, ok := b.locks[l]; ok && da == ptset.D && db == ptset.D {
			out.locks[l] = ptset.D
		} else {
			out.locks[l] = ptset.P
		}
	}
	for l := range b.locks {
		if _, ok := a.locks[l]; !ok {
			out.locks[l] = ptset.P
		}
	}
	return out
}

func equalState(a, b lstate) bool {
	if a.dead != b.dead || a.live != b.live || len(a.locks) != len(b.locks) {
		return false
	}
	for l, da := range a.locks {
		if db, ok := b.locks[l]; !ok || da != db {
			return false
		}
	}
	return true
}

func mergeStates(states []lstate) lstate {
	out := deadState()
	for _, s := range states {
		out = mergeState(out, s)
	}
	return out
}

// lflow mirrors the analysis's flow structure: the fall-through state plus
// the states escaping through break, continue and return.
type lflow struct {
	out   lstate
	brks  []lstate
	conts []lstate
	rets  []lstate
}

func (f *lflow) absorbEscapes(g lflow) {
	f.brks = append(f.brks, g.brks...)
	f.conts = append(f.conts, g.conts...)
	f.rets = append(f.rets, g.rets...)
}

// walkThread runs the lockset walk over one thread root's subtree.
func (d *detector) walkThread(t *thread) {
	d.walkNode(t, t.node, lstate{locks: make(map[*loc.Location]ptset.Def)})
}

// walkNode walks one invocation's body, descending into (non-thread)
// callees, and returns the exit state. Approximate nodes have no walked
// body of their own: their lock effects are ignored (a recursion that
// changes the lockset is beyond this model).
func (d *detector) walkNode(t *thread, n *invgraph.Node, st lstate) lstate {
	if n.Kind == invgraph.Approximate {
		return st
	}
	f := d.walkStmt(t, n, n.Fn.Body, st)
	return mergeStates(append(f.rets, f.out))
}

func (d *detector) walkStmt(t *thread, n *invgraph.Node, s simple.Stmt, st lstate) lflow {
	if st.dead {
		return lflow{out: st}
	}
	switch s := s.(type) {
	case *simple.Basic:
		return lflow{out: d.walkBasic(t, n, s, st)}

	case *simple.Seq:
		f := lflow{out: st}
		if s == nil {
			return f
		}
		for _, c := range s.List {
			g := d.walkStmt(t, n, c, f.out)
			f.out = g.out
			f.absorbEscapes(g)
			if f.out.dead {
				break
			}
		}
		return f

	case *simple.If:
		thenF := d.walkStmt(t, n, s.Then, st)
		elseF := lflow{out: st}
		if s.Else != nil {
			elseF = d.walkStmt(t, n, s.Else, st)
		}
		out := lflow{out: mergeState(thenF.out, elseF.out)}
		out.absorbEscapes(thenF)
		out.absorbEscapes(elseF)
		return out

	case *simple.While:
		return d.walkLoop(t, n, nil, s.CondEval, s.Body, nil, false, st)

	case *simple.DoWhile:
		return d.walkLoop(t, n, nil, s.CondEval, s.Body, nil, true, st)

	case *simple.For:
		return d.walkLoop(t, n, s.Init, s.CondEval, s.Body, s.Post, false, st)

	case *simple.Switch:
		return d.walkSwitch(t, n, s, st)

	case *simple.Break:
		return lflow{out: deadState(), brks: []lstate{st}}

	case *simple.Continue:
		return lflow{out: deadState(), conts: []lstate{st}}

	case *simple.Return:
		return lflow{out: deadState(), rets: []lstate{st}}
	}
	return lflow{out: st}
}

// walkLoop runs the loop body to a lockset fixed point. doFirst is the
// do-while shape (body before first condition test). The loop's escaping
// returns accumulate; breaks and post-test states merge into the exit.
func (d *detector) walkLoop(t *thread, n *invgraph.Node, init, condEval, body, post *simple.Seq, doFirst bool, in lstate) lflow {
	result := lflow{}
	if init != nil {
		f := d.walkStmt(t, n, init, in)
		in = f.out
		result.rets = append(result.rets, f.rets...)
		if in.dead {
			result.out = in
			return result
		}
	}
	evalCond := func(s lstate) lstate {
		if condEval == nil || s.dead {
			return s
		}
		f := d.walkStmt(t, n, condEval, s)
		result.rets = append(result.rets, f.rets...)
		return f.out
	}
	var exits []lstate
	cur := in
	if !doFirst {
		cur = evalCond(in)
		exits = append(exits, cur) // zero-iteration exit
	}
	const maxIter = 64
	for iter := 0; ; iter++ {
		f := d.walkStmt(t, n, body, cur)
		result.rets = append(result.rets, f.rets...)
		exits = append(exits, f.brks...)
		backIn := mergeStates(append(f.conts, f.out))
		if post != nil && !backIn.dead {
			pf := d.walkStmt(t, n, post, backIn)
			result.rets = append(result.rets, pf.rets...)
			backIn = pf.out
		}
		backIn = evalCond(backIn)
		exits = append(exits, backIn) // exit after this iteration's test
		next := mergeState(cur, backIn)
		if equalState(next, cur) || iter >= maxIter {
			break
		}
		cur = next
	}
	result.out = mergeStates(exits)
	return result
}

func (d *detector) walkSwitch(t *thread, n *invgraph.Node, s *simple.Switch, in lstate) lflow {
	result := lflow{}
	var exits []lstate
	hasDefault := false
	fall := deadState()
	for _, c := range s.Cases {
		if c.IsDefault {
			hasDefault = true
		}
		f := d.walkStmt(t, n, c.Body, mergeState(in, fall))
		result.rets = append(result.rets, f.rets...)
		result.conts = append(result.conts, f.conts...)
		exits = append(exits, f.brks...)
		fall = f.out
	}
	exits = append(exits, fall)
	if !hasDefault {
		exits = append(exits, in) // no arm taken
	}
	result.out = mergeStates(exits)
	return result
}

// walkBasic records b's shared accesses under the current lockset, applies
// the pthread intrinsics to the state, and descends into resolved callees.
func (d *detector) walkBasic(t *thread, n *invgraph.Node, b *simple.Basic, st lstate) lstate {
	d.recordAccesses(t, n, b, st)

	if b.Kind == simple.AsgnCall && b.Callee != nil {
		switch b.Callee.Name {
		case pta.PthreadMutexLock:
			d.applyLock(n, b, &st, true)
			return st
		case pta.PthreadMutexUnlock:
			d.applyLock(n, b, &st, false)
			return st
		case pta.PthreadCreate:
			st = st.clone()
			if st.live < 2 {
				st.live++ // saturating: 2 means "several"
			}
			return st // thread children are separate roots, not callees
		case pta.PthreadJoin:
			st = st.clone()
			if st.live > 0 {
				st.live--
			}
			return st
		}
	}
	if b.Kind != simple.AsgnCall && b.Kind != simple.AsgnCallInd {
		return st
	}
	// Descend into every resolved (non-thread) callee of this site and
	// merge their exit states; an external call leaves the state unchanged.
	var outs []lstate
	for _, c := range n.Children {
		if c.Site != b || c.IsThread {
			continue
		}
		outs = append(outs, d.walkNode(t, c, st.clone()))
	}
	if len(outs) == 0 {
		return st
	}
	return mergeStates(outs)
}

// lockTargets resolves the mutex locations a lock/unlock argument can
// denote under b's per-context input, translated to the main naming.
// definite reports whether the argument denotes exactly one single,
// non-multi location with a definite derivation — the only case in which
// acquiring protects and releasing definitely unprotects.
func (d *detector) lockTargets(n *invgraph.Node, b *simple.Basic) (targets []*loc.Location, definite bool) {
	if len(b.Args) < 1 {
		return nil, false
	}
	argRef, ok := b.Args[0].(*simple.Ref)
	if !ok {
		return nil, false
	}
	in, ok := d.nodeInput(n, b)
	if !ok {
		return nil, false
	}
	definite = true
	seen := make(map[*loc.Location]bool)
	for _, rl := range pta.EvalRLocsOfRef(d.res, argRef, in) {
		if rl.Loc.Kind == loc.Null {
			continue
		}
		roots, rdef := d.translateToRoot(n, rl.Loc)
		if len(roots) == 0 {
			definite = false
			continue
		}
		if rl.Def == ptset.P || rdef == ptset.P {
			definite = false
		}
		for _, r := range roots {
			if r.Multi() {
				definite = false
			}
			if !seen[r] {
				seen[r] = true
				targets = append(targets, r)
			}
		}
	}
	loc.SortLocs(targets)
	if len(targets) != 1 {
		definite = false
	}
	return targets, definite
}

// applyLock mutates the state for pthread_mutex_lock/unlock: a definite
// single target acquires definitely / releases outright; anything weaker
// acquires possibly / downgrades the release targets to possibly held.
func (d *detector) applyLock(n *invgraph.Node, b *simple.Basic, st *lstate, acquire bool) {
	targets, definite := d.lockTargets(n, b)
	locks := make(map[*loc.Location]ptset.Def, len(st.locks)+1)
	for l, def := range st.locks {
		locks[l] = def
	}
	st.locks = locks
	for _, m := range targets {
		switch {
		case acquire && definite:
			st.locks[m] = ptset.D
		case acquire:
			if st.locks[m] != ptset.D {
				st.locks[m] = ptset.P
			}
		case definite:
			delete(st.locks, m)
		default:
			if _, held := st.locks[m]; held {
				st.locks[m] = ptset.P
			}
		}
	}
}

// recordAccesses emits b's recorded MOD/REF accesses (per-node naming) as
// thread accesses in the main naming, keeping only thread-shared locations.
// Loop fixed-point iterations revisit statements: re-recorded accesses merge
// lockset snapshots down to the weakest observed, so an access protected
// only on some iterations does not count as protected.
func (d *detector) recordAccesses(t *thread, n *invgraph.Node, b *simple.Basic, st lstate) {
	for _, acc := range d.accessesAt(n, b) {
		roots, rdef := d.translateToRoot(n, acc.Loc)
		for _, rl := range roots {
			if !d.isShared(rl) {
				continue
			}
			def := acc.Def.And(rdef)
			if rl.Multi() || len(roots) > 1 {
				def = ptset.P
			}
			conc := !t.main || st.live > 0
			key := accessKey{l: rl, pos: acc.Pos, write: acc.Write}
			if i, ok := t.accKey[key]; ok {
				prev := &t.accesses[i]
				prev.locks = intersectLocks(prev.locks, st.locks)
				prev.conc = prev.conc || conc
				prev.def = prev.def.And(def)
				continue
			}
			t.accKey[key] = len(t.accesses)
			t.accesses = append(t.accesses, access{
				loc: rl, def: def, write: acc.Write, pos: acc.Pos,
				locks: snapshotLocks(st.locks), conc: conc,
			})
		}
	}
}

func snapshotLocks(locks map[*loc.Location]ptset.Def) map[*loc.Location]ptset.Def {
	out := make(map[*loc.Location]ptset.Def, len(locks))
	for l, def := range locks {
		out[l] = def
	}
	return out
}

// intersectLocks keeps the weakest view of two lockset snapshots of the
// same access: a lock counts as definitely held only when both snapshots
// hold it definitely, and drops out entirely when either lacks it.
func intersectLocks(a, b map[*loc.Location]ptset.Def) map[*loc.Location]ptset.Def {
	out := make(map[*loc.Location]ptset.Def)
	for l, da := range a {
		if db, ok := b[l]; ok {
			if da == ptset.D && db == ptset.D {
				out[l] = ptset.D
			} else {
				out[l] = ptset.P
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Pairing

// overlap classifies how two main-naming locations can denote the same
// cell: equal single locations overlap definitely; equal multi locations
// (heap, array tails) and prefix-related aggregate paths only possibly.
func overlap(a, b *loc.Location) (possible, definite bool) {
	if a == b {
		return true, !a.Multi()
	}
	return coveredBy(a, b) || coveredBy(b, a), false
}

// lockIntersection inspects two lockset snapshots: definitely reports a
// mutex definitely held around both accesses (the pair is protected);
// possibly reports any common mutex at all (the pair may be protected).
func lockIntersection(a, b map[*loc.Location]ptset.Def) (definitely, possibly bool) {
	for l, da := range a {
		if db, ok := b[l]; ok {
			possibly = true
			if da == ptset.D && db == ptset.D {
				definitely = true
			}
		}
	}
	return definitely, possibly
}

type pairKey struct {
	loc    string
	pa, pb token.Pos
	wa, wb bool
}

func (d *detector) pair() {
	best := make(map[pairKey]int) // -> index into d.diags, keeping the worst
	for i := range d.threads {
		for j := i; j < len(d.threads); j++ {
			ta, tb := d.threads[i], d.threads[j]
			if i == j && (ta.main || !ta.multi) {
				continue // a single instance does not race with itself
			}
			if i != j && !ta.main && !tb.main &&
				ta.node.Parent == tb.node.Parent && ta.node.Site == tb.node.Site &&
				!ta.multi && !tb.multi {
				// Alternative entries resolved from one spawn site: the
				// call creates one thread, so at most one of them runs.
				continue
			}
			for ai := range ta.accesses {
				bStart := 0
				if i == j {
					bStart = ai // unordered pairs; self-pair included
				}
				for bi := bStart; bi < len(tb.accesses); bi++ {
					d.judge(ta, tb, &ta.accesses[ai], &tb.accesses[bi], best)
				}
			}
		}
	}
}

// judge decides whether two accesses race and emits (or upgrades) the
// diagnostic.
func (d *detector) judge(ta, tb *thread, a, b *access, best map[pairKey]int) {
	if !a.write && !b.write {
		return
	}
	if !a.conc || !b.conc {
		return
	}
	possOverlap, defOverlap := overlap(a.loc, b.loc)
	if !possOverlap {
		return
	}
	defLock, possLock := lockIntersection(a.locks, b.locks)
	if defLock {
		return // definitely protected by a common mutex
	}
	sev := Warning
	if defOverlap && !possLock && a.def == ptset.D && b.def == ptset.D {
		sev = Error
	}

	first, second, tf, ts := a, b, ta, tb
	if posLess(second.pos, first.pos) {
		first, second, tf, ts = b, a, tb, ta
	}
	note := "no common lock held"
	if possLock {
		note = "only possibly protected by a common lock"
	}
	var msg string
	if a == b {
		msg = fmt.Sprintf("%s of %s in %s races with itself in another instance (%s)",
			opName(first), first.loc.Name(), tf.name, note)
	} else {
		msg = fmt.Sprintf("%s of %s in %s races with %s of %s at %s in %s (%s)",
			opName(first), first.loc.Name(), tf.name,
			opName(second), second.loc.Name(), second.pos, ts.name, note)
	}

	key := pairKey{loc: first.loc.Name(), pa: first.pos, pb: second.pos, wa: first.write, wb: second.write}
	if idx, ok := best[key]; ok {
		if sev > d.diags[idx].Sev {
			d.diags[idx].Sev = sev
			d.diags[idx].Msg = msg
		}
		return
	}
	best[key] = len(d.diags)
	d.diags = append(d.diags, Diag{Pos: first.pos, Sev: sev, Loc: first.loc.Name(), Msg: msg})
}

func opName(a *access) string {
	if a.write {
		return "write"
	}
	return "read"
}

// DemandSeeds returns the demand the race detector places on a points-to
// analysis run in demand mode. The detector reads the per-context
// annotation of every reachable statement (access classification, lockset
// resolution) and transitively closes the thread-shared location set over
// whole annotation sets at spawn sites, so its demand is the degenerate
// all-statements seed. Liveness pruning still drops facts of dead
// non-address-taken locals, which can never be thread-shared (nothing can
// point to them), so detector output is unchanged.
func DemandSeeds(prog *simple.Program) *live.Seeds {
	return live.SeedAllStatements(prog)
}
