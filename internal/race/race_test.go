package race_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/modref"
	"repro/internal/obsv"
	"repro/internal/pta"
	"repro/internal/race"
	"repro/internal/simplify"
	"repro/internal/testutil"
	"repro/pointsto"
)

func counts(diags []race.Diag) (errs, warns int) {
	for _, d := range diags {
		if d.Sev == race.Error {
			errs++
		} else {
			warns++
		}
	}
	return errs, warns
}

// TestFixtures runs the detector over every examples/race fixture pair: each
// seeded-race variant must report (errors for definite races, warnings for
// possible ones), and each _ok twin must be completely clean.
func TestFixtures(t *testing.T) {
	cases := []struct {
		file        string
		errs, warns int
	}{
		{"unprotected.c", 3, 0},
		{"unprotected_ok.c", 0, 0},
		{"mutex.c", 3, 0},
		{"mutex_ok.c", 0, 0},
		{"aliasmutex.c", 0, 3},
		{"aliasmutex_ok.c", 0, 0},
		{"threadarg.c", 1, 0},
		{"threadarg_ok.c", 0, 0},
		{"fnptr.c", 6, 0},
		{"fnptr_ok.c", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			a := testutil.AnalyzeFile(t, filepath.Join(testutil.FixtureDir("race"), tc.file))
			diags, err := a.Races()
			if err != nil {
				t.Fatal(err)
			}
			errs, warns := counts(diags)
			if errs != tc.errs || warns != tc.warns {
				t.Fatalf("got %d errors, %d warnings, want %d errors, %d warnings:\n%s",
					errs, warns, tc.errs, tc.warns, strings.Join(testutil.Render(diags), "\n"))
			}
		})
	}
}

// TestGoldenMessages pins the full diagnostic text of the simplest fixture,
// so message drift is deliberate.
func TestGoldenMessages(t *testing.T) {
	a := testutil.AnalyzeFile(t, filepath.Join(testutil.FixtureDir("race"), "threadarg.c"))
	diags, err := a.Races()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"threadarg.c:9:5: error: data-race: write of counter in thread worker " +
			"(spawned at threadarg.c:16:19) races with write of counter at " +
			"threadarg.c:17:5 in main (no common lock held)",
	}
	if got := testutil.Render(diags); !reflect.DeepEqual(got, want) {
		t.Fatalf("got:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestMultiSpawnSelfRace: a spawn site inside a loop creates several
// instances of the same entry, so the thread's unprotected write races with
// itself in another instance; the lock-protected twin is clean.
func TestMultiSpawnSelfRace(t *testing.T) {
	raced := `
int g;
long t;
void *worker(void *arg) {
    g = g + 1;
    return 0;
}
int main(void) {
    int i;
    i = 0;
    while (i < 4) {
        pthread_create(&t, 0, worker, 0);
        i = i + 1;
    }
    return 0;
}
`
	diags := analyzeSrc(t, "multispawn.c", raced)
	if errs, _ := counts(diags); errs == 0 {
		t.Fatalf("expected self-race errors for loop-spawned thread, got:\n%s",
			strings.Join(testutil.Render(diags), "\n"))
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Msg, "races with itself in another instance") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a self-race diagnostic, got:\n%s", strings.Join(testutil.Render(diags), "\n"))
	}

	locked := `
int g;
pthread_mutex_t m;
long t;
void *worker(void *arg) {
    pthread_mutex_lock(&m);
    g = g + 1;
    pthread_mutex_unlock(&m);
    return 0;
}
int main(void) {
    int i;
    i = 0;
    while (i < 4) {
        pthread_create(&t, 0, worker, 0);
        i = i + 1;
    }
    return 0;
}
`
	if diags := analyzeSrc(t, "multispawn_ok.c", locked); len(diags) != 0 {
		t.Fatalf("locked loop-spawned thread should be clean, got:\n%s",
			strings.Join(testutil.Render(diags), "\n"))
	}
}

func analyzeSrc(t *testing.T, name, src string) []race.Diag {
	t.Helper()
	a, err := pointsto.AnalyzeSource(name, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := a.Races()
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestDeterminism: race verdicts and the points-to fingerprint are
// bit-identical across worker counts, traced and untraced.
func TestDeterminism(t *testing.T) {
	files := []string{"unprotected.c", "mutex.c", "aliasmutex.c", "threadarg.c", "fnptr.c"}
	for _, file := range files {
		t.Run(file, func(t *testing.T) {
			path := filepath.Join("..", "..", "examples", "race", file)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tu, err := parser.Parse(file, string(data))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := simplify.Simplify(tu)
			if err != nil {
				t.Fatal(err)
			}
			var baseDiags []string
			var baseFP string
			for _, workers := range []int{1, 2, 8} {
				for _, traced := range []bool{false, true} {
					opts := pta.Options{Workers: workers, RecordContexts: true}
					if traced {
						opts.Tracer = obsv.NewTracer(0, 0)
					}
					res, err := pta.Analyze(prog, opts)
					if err != nil {
						t.Fatal(err)
					}
					diags, err := race.Run(res, modref.Compute(res))
					if err != nil {
						t.Fatal(err)
					}
					got := testutil.Render(diags)
					fp := pta.Fingerprint(res)
					if baseFP == "" {
						baseDiags, baseFP = got, fp
						continue
					}
					if fp != baseFP {
						t.Errorf("workers=%d traced=%v: fingerprint differs from workers=1", workers, traced)
					}
					if !reflect.DeepEqual(got, baseDiags) {
						t.Errorf("workers=%d traced=%v: diagnostics differ:\ngot:  %s\nbase: %s",
							workers, traced, strings.Join(got, "\n"), strings.Join(baseDiags, "\n"))
					}
				}
			}
		})
	}
}

// TestNoThreadsNoDiags is the differential guard: any program without a
// pthread_create must yield zero race diagnostics — over the checker
// fixtures and the whole benchmark suite.
func TestNoThreadsNoDiags(t *testing.T) {
	checkDir := filepath.Join("..", "..", "examples", "check")
	entries, err := os.ReadDir(checkDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".c") {
			continue
		}
		a := testutil.AnalyzeFile(t, filepath.Join(checkDir, e.Name()))
		diags, err := a.Races()
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 0 {
			t.Errorf("%s: thread-free program produced race diagnostics:\n%s",
				e.Name(), strings.Join(testutil.Render(diags), "\n"))
		}
	}
	for _, name := range bench.Names() {
		src, err := bench.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := pointsto.AnalyzeSource(name+".c", src, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		diags, err := a.Races()
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 0 {
			t.Errorf("bench %s: thread-free program produced race diagnostics:\n%s",
				name, strings.Join(testutil.Render(diags), "\n"))
		}
	}
}

// TestRunGuards: Run rejects results without per-context annotations or with
// shared contexts, matching package check.
func TestRunGuards(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "race", "unprotected.c"))
	if err != nil {
		t.Fatal(err)
	}
	tu, err := parser.Parse("unprotected.c", string(src))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := pta.Analyze(prog, pta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := race.Run(plain, modref.Compute(plain)); err == nil {
		t.Error("Run accepted a result without recorded contexts")
	}
	shared, err := pta.Analyze(prog, pta.Options{Workers: 1, ShareContexts: true, RecordContexts: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := race.Run(shared, modref.Compute(shared)); err == nil {
		t.Error("Run accepted a result analyzed with ShareContexts")
	}
}
