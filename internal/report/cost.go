package report

import (
	"fmt"
	"io"

	"repro/internal/obsv"
)

// WriteCostTable renders the per-function cost table of a metrics snapshot:
// where the analysis spent its node evaluations, fixed-point iterations and
// wall time. Rows arrive most-expensive-first from the snapshot; limit
// truncates the table (0 means all rows).
func WriteCostTable(w io.Writer, funcs []obsv.FuncCostSnapshot, limit int) {
	if len(funcs) == 0 {
		fmt.Fprintln(w, "  (no function evaluations recorded)")
		return
	}
	fmt.Fprintf(w, "  %-20s %8s %10s %9s %10s\n", "function", "evals", "memo-hits", "fixpoint", "wall")
	shown := funcs
	if limit > 0 && len(shown) > limit {
		shown = shown[:limit]
	}
	for _, f := range shown {
		fmt.Fprintf(w, "  %-20s %8d %10d %9d %8.2fms\n",
			f.Name, f.Evals, f.MemoHits, f.FixpointIters, f.WallMS)
	}
	if n := len(funcs) - len(shown); n > 0 {
		fmt.Fprintf(w, "  ... and %d more functions\n", n)
	}
}

// WriteMetrics renders a full metrics snapshot in human-readable form: the
// engine counters, the memoization and hash-consing rates, the points-to set
// cardinality distribution, trace-buffer accounting, and the per-function
// cost table.
func WriteMetrics(w io.Writer, s *obsv.MetricsSnapshot) {
	if s == nil {
		fmt.Fprintln(w, "metrics: (none recorded)")
		return
	}
	fmt.Fprintln(w, "analysis metrics:")
	fmt.Fprintf(w, "  steps %d, node evals %d, map/unmap %d/%d\n",
		s.Steps, s.NodeEvals, s.MapOps, s.UnmapOps)
	fmt.Fprintf(w, "  memo: %d hits / %d misses (%.1f%% hit rate)",
		s.MemoHits, s.MemoMisses, 100*s.MemoHitRate)
	if s.SharedHits > 0 {
		fmt.Fprintf(w, ", shared summary hits %d", s.SharedHits)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  fixed point: %d extra iterations, %d pending restarts\n",
		s.FixpointIters, s.PendingRestarts)
	fmt.Fprintf(w, "  interning: %d distinct sets, %.1f%% hit rate\n",
		s.InternDistinct, 100*s.InternHitRate)
	c := s.Cardinality
	fmt.Fprintf(w, "  set cardinality: mean %.1f, p50 %d, p90 %d, p99 %d, max %d (peak %d)\n",
		c.Mean, c.P50, c.P90, c.P99, c.Max, s.PeakSet)
	if s.TraceEmitted > 0 || s.TraceDropped > 0 {
		fmt.Fprintf(w, "  trace: %d events emitted, %d dropped by ring overflow\n",
			s.TraceEmitted, s.TraceDropped)
	}
	fmt.Fprintln(w, "per-function cost (most expensive first):")
	WriteCostTable(w, s.Funcs, 20)
}
