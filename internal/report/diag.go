package report

import (
	"fmt"
	"io"

	"repro/internal/check"
)

// WriteDiags renders checker diagnostics in the conventional
// file:line:col: severity: message form, one per line, with the triggering
// invocation-graph context appended. Diagnostics arrive already sorted by
// position from check.Run.
func WriteDiags(w io.Writer, diags []check.Diag) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// DiagCounts tallies diagnostics by severity.
func DiagCounts(diags []check.Diag) (errors, warnings int) {
	for _, d := range diags {
		if d.Sev == check.Error {
			errors++
		} else {
			warnings++
		}
	}
	return errors, warnings
}

// WriteDiagSummary writes a one-line closing summary, matching compiler
// convention ("2 errors, 1 warning").
func WriteDiagSummary(w io.Writer, diags []check.Diag) {
	errs, warns := DiagCounts(diags)
	if errs == 0 && warns == 0 {
		fmt.Fprintln(w, "no issues found")
		return
	}
	fmt.Fprintf(w, "%s, %s\n", plural(errs, "error"), plural(warns, "warning"))
}

func plural(n int, what string) string {
	if n == 1 {
		return fmt.Sprintf("1 %s", what)
	}
	return fmt.Sprintf("%d %ss", n, what)
}
