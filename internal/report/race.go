package report

import (
	"fmt"
	"io"

	"repro/internal/race"
)

// WriteRaceDiags renders race diagnostics in the conventional
// file:line:col: severity: data-race: message form, one per line.
// Diagnostics arrive already sorted by position from race.Run.
func WriteRaceDiags(w io.Writer, diags []race.Diag) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// RaceDiagCounts tallies race diagnostics by severity.
func RaceDiagCounts(diags []race.Diag) (errors, warnings int) {
	for _, d := range diags {
		if d.Sev == race.Error {
			errors++
		} else {
			warnings++
		}
	}
	return errors, warnings
}

// WriteRaceDiagSummary writes the one-line closing summary of a race run.
func WriteRaceDiagSummary(w io.Writer, diags []race.Diag) {
	errs, warns := RaceDiagCounts(diags)
	if errs == 0 && warns == 0 {
		fmt.Fprintln(w, "no races found")
		return
	}
	fmt.Fprintf(w, "%s, %s\n", plural(errs, "error"), plural(warns, "warning"))
}
